module bittactical

go 1.22
