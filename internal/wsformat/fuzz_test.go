package wsformat

import (
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/sched"
)

// FuzzDecodeRobust feeds arbitrary bytes to the WS-image decoder: errors
// are fine, panics and hangs are not.
func FuzzDecodeRobust(f *testing.F) {
	// Seed with a valid image so the fuzzer explores deep paths.
	w := make([]int32, 6*16)
	for i := 0; i < len(w); i += 3 {
		w[i] = int32(i%100 + 1)
	}
	flt := sched.NewFilter(16, 6, w, nil)
	p := sched.T(2, 5)
	s := sched.ScheduleFilter(flt, p, sched.Algorithm1)
	buf, _ := Encode(p, s, fixed.W16)
	f.Add(buf)
	f.Add([]byte("TCLW"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			raw = raw[:1<<16]
		}
		img, err := Decode(raw, p)
		if err == nil && img.Schedule == nil {
			t.Fatal("nil schedule without error")
		}
	})
}
