package wsformat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bittactical/internal/fixed"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
)

func mkSchedule(t *testing.T, seed int64, steps int, sp float64, p sched.Pattern) (sched.Filter, *sched.Schedule) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := sparsity.RandomSparseFilter(rng, steps, 16, sp)
	for i := range w {
		if rng.Intn(2) == 0 {
			w[i] = -w[i]
		}
	}
	f := sched.NewFilter(16, steps, w, nil)
	s := sched.ScheduleFilter(f, p, sched.Algorithm1)
	if err := sched.Verify(f, p, s); err != nil {
		t.Fatal(err)
	}
	return f, s
}

func TestRoundTripBasic(t *testing.T) {
	for _, p := range []sched.Pattern{sched.T(2, 5), sched.L(1, 6), sched.L(4, 3)} {
		_, s := mkSchedule(t, 1, 24, 0.7, p)
		if err := RoundTrip(p, s, fixed.W16); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestRoundTripDecodedScheduleVerifies(t *testing.T) {
	// The decoded schedule must pass the same hardware-invariant checks the
	// original did — the decoder output is what the WSU actually executes.
	p := sched.T(2, 5)
	f, s := mkSchedule(t, 2, 30, 0.8, p)
	buf, err := Encode(p, s, fixed.W16)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Decode(buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Verify(f, p, img.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	p := sched.T(2, 5)
	f := func(seed int64, spRaw, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := 4 + int(stepsRaw%30)
		sp := float64(spRaw%10) / 10
		w := sparsity.RandomSparseFilter(rng, steps, 16, sp)
		flt := sched.NewFilter(16, steps, w, nil)
		s := sched.ScheduleFilter(flt, p, sched.Algorithm1)
		return RoundTrip(p, s, fixed.W16) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundTrip8Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := make([]int32, 10*16)
	for i := range w {
		if rng.Intn(3) != 0 {
			w[i] = int32(rng.Intn(255) - 127)
		}
	}
	f := sched.NewFilter(16, 10, w, nil)
	p := sched.T(2, 5)
	s := sched.ScheduleFilter(f, p, sched.Algorithm1)
	if err := RoundTrip(p, s, fixed.W8); err != nil {
		t.Fatal(err)
	}
}

func TestLongALCSkipEscapes(t *testing.T) {
	// A filter whose only weights sit at step 0 and at the far end forces a
	// long window skip; the 16-bit ALC escape must carry it.
	steps := 600
	w := make([]int32, steps*16)
	w[0] = 7
	w[(steps-1)*16+3] = -9
	f := sched.NewFilter(16, steps, w, nil)
	p := sched.T(2, 5)
	s := sched.ScheduleFilter(f, p, sched.Algorithm1)
	if err := sched.Verify(f, p, s); err != nil {
		t.Fatal(err)
	}
	if err := RoundTrip(p, s, fixed.W16); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsX(t *testing.T) {
	_, s := mkSchedule(t, 4, 8, 0.5, sched.T(2, 5))
	if _, err := Encode(sched.X(), s, fixed.W16); err == nil {
		t.Error("X<inf,15> must be rejected")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := sched.T(2, 5)
	_, s := mkSchedule(t, 5, 12, 0.6, p)
	buf, _ := Encode(p, s, fixed.W16)
	if _, err := Decode(buf[:8], p); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte{}, buf...)
	bad[0] = 'X'
	if _, err := Decode(bad, p); err == nil {
		t.Error("bad magic accepted")
	}
	other := sched.L(4, 3)
	if _, err := Decode(buf, other); err == nil {
		t.Error("pattern mismatch accepted")
	}
	short := append([]byte{}, buf[:len(buf)-2]...)
	if _, err := Decode(short, p); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestSizeBitsMatchesEncoding(t *testing.T) {
	p := sched.T(2, 5)
	_, s := mkSchedule(t, 6, 40, 0.75, p)
	buf, err := Encode(p, s, fixed.W16)
	if err != nil {
		t.Fatal(err)
	}
	want := SizeBits(p, s, fixed.W16)
	// Encoded length is the bit size rounded up to bytes.
	if got := int64(len(buf)) * 8; got < want || got >= want+8+21*8 {
		t.Errorf("encoded %d bits, accounting says %d", got, want)
	}
}

func TestSignExtend(t *testing.T) {
	if signExtend(0xFFFF, fixed.W16) != -1 {
		t.Error("16b sign extension broken")
	}
	if signExtend(0x7FFF, fixed.W16) != 32767 {
		t.Error("positive 16b value broken")
	}
	if signExtend(0xFF, fixed.W8) != -1 {
		t.Error("8b sign extension broken")
	}
}
