// Package wsformat defines the binary artifact Bit-Tactical's scheduling
// middleware hands to the hardware: the weight-scratchpad image. Each
// schedule column is stored exactly as the WS delivers it to a PE row
// (Section 5.1, Figure 5b) — a column of N (weight, ws) pairs plus the ALC
// field:
//
//	header:  magic "TCLW", version, lanes, dense steps, column count,
//	         pattern mux inputs, lookahead depth, data width, initial head
//	         (the ALC pre-advance past leading all-ineffectual steps)
//	columns: per column: [alcBits ALC] then per lane:
//	         [width-bit weight][selBits ws mux select]
//
// The ws select is the multiplexer input index: 0 = the dense "stay" input,
// 1..len(offsets) = the pattern's promotion edges in declaration order. The
// decoder reconstructs a sched.Schedule given the same pattern, and a
// verification pass proves the round trip preserves every entry — the
// contract between the software scheduler and the silicon.
package wsformat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bittactical/internal/compress"
	"bittactical/internal/fixed"
	"bittactical/internal/sched"
)

// Magic identifies a WS image.
const Magic = "TCLW"

// Version of the layout.
const Version = 1

// Image is a decoded weight-scratchpad image header plus its schedule.
type Image struct {
	Lanes      int
	DenseSteps int
	Width      fixed.Width
	Pattern    sched.Pattern
	Schedule   *sched.Schedule
}

// selIndex maps a schedule entry to its mux input index under the pattern.
func selIndex(p sched.Pattern, e sched.Entry, head, lane, lanes int) (int, error) {
	if e.Dt == 0 && e.Dl == 0 {
		return 0, nil
	}
	for i, o := range p.Offsets {
		if o.Dt == e.Dt && o.Dl == e.Dl {
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("wsformat: promotion (%d,%d) not in pattern %s", e.Dt, e.Dl, p.Name)
}

func selBits(p sched.Pattern) int {
	b := 0
	for v := 1; v < p.MuxInputs(); v <<= 1 {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

func alcBits(p sched.Pattern) int {
	b := 0
	for v := 1; v < p.H+2; v <<= 1 {
		b++
	}
	if b < 3 {
		b = 3 // ALC also encodes long skips; keep a floor
	}
	return b
}

// Encode packs a verified schedule into a WS image. The pattern must be
// finite (the X bound has no hardware form).
func Encode(p sched.Pattern, s *sched.Schedule, w fixed.Width) ([]byte, error) {
	if p.Infinite {
		return nil, errors.New("wsformat: X<inf,15> has no WS image")
	}
	head := make([]byte, 0, 24)
	head = append(head, Magic...)
	head = append(head, byte(Version), byte(s.Lanes), byte(int(w)), byte(p.H))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(s.DenseSteps))
	head = append(head, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(s.Columns)))
	head = append(head, u32[:]...)
	head = append(head, byte(p.MuxInputs()))
	head0 := 0
	if len(s.Columns) > 0 {
		head0 = s.Columns[0].Head
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(head0))
	head = append(head, u32[:]...)

	bw := &compress.BitWriter{}
	sb, ab := selBits(p), alcBits(p)
	maxALC := (1 << uint(ab)) - 1
	for _, col := range s.Columns {
		// Long all-ineffectual skips overflow the compact ALC field; the
		// saturated value escapes to a 16-bit extension (rare: only the
		// final column of a mostly-empty schedule region).
		if col.Advance >= maxALC {
			bw.WriteBits(uint32(maxALC), ab)
			bw.WriteBits(uint32(col.Advance), 16)
		} else {
			bw.WriteBits(uint32(col.Advance), ab)
		}
		for ln, e := range col.Entries {
			bw.WriteBits(uint32(e.Weight)&w.Mask(), int(w))
			sel := 0
			if e.Weight != 0 {
				var err error
				sel, err = selIndex(p, e, col.Head, ln, s.Lanes)
				if err != nil {
					return nil, err
				}
			}
			bw.WriteBits(uint32(sel), sb)
		}
	}
	return append(head, bw.Bytes()...), nil
}

// Decode reconstructs the schedule from a WS image; the caller supplies the
// pattern the image was scheduled for (hardware configuration state).
func Decode(buf []byte, p sched.Pattern) (*Image, error) {
	if len(buf) < 21 {
		return nil, errors.New("wsformat: truncated header")
	}
	if string(buf[:4]) != Magic {
		return nil, errors.New("wsformat: bad magic")
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("wsformat: version %d unsupported", buf[4])
	}
	lanes := int(buf[5])
	w := fixed.Width(buf[6])
	if !w.Valid() {
		return nil, fmt.Errorf("wsformat: invalid width %d", buf[6])
	}
	h := int(buf[7])
	if h != p.H {
		return nil, fmt.Errorf("wsformat: image lookahead %d != pattern %s", h, p.Name)
	}
	steps := int(binary.LittleEndian.Uint32(buf[8:12]))
	cols := int(binary.LittleEndian.Uint32(buf[12:16]))
	if int(buf[16]) != p.MuxInputs() {
		return nil, fmt.Errorf("wsformat: image mux width %d != pattern %s", buf[16], p.Name)
	}

	br := compress.NewBitReader(buf[21:])
	sb, ab := selBits(p), alcBits(p)
	s := &sched.Schedule{Lanes: lanes, DenseSteps: steps}
	maxALC := uint32(1)<<uint(ab) - 1
	head := int(binary.LittleEndian.Uint32(buf[17:21]))
	for ci := 0; ci < cols; ci++ {
		adv, err := br.ReadBits(ab)
		if err != nil {
			return nil, err
		}
		if adv == maxALC {
			if adv, err = br.ReadBits(16); err != nil {
				return nil, err
			}
		}
		col := sched.Column{Head: head, Advance: int(adv), Entries: make([]sched.Entry, lanes)}
		for ln := 0; ln < lanes; ln++ {
			raw, err := br.ReadBits(int(w))
			if err != nil {
				return nil, err
			}
			sel, err := br.ReadBits(sb)
			if err != nil {
				return nil, err
			}
			weight := signExtend(raw, w)
			if weight == 0 {
				col.Entries[ln] = sched.Entry{}
				continue
			}
			e := sched.Entry{Weight: weight}
			if sel == 0 {
				e.SrcStep, e.SrcLane = head, ln
			} else {
				if int(sel) > len(p.Offsets) {
					return nil, fmt.Errorf("wsformat: select %d out of range", sel)
				}
				o := p.Offsets[sel-1]
				e.Dt, e.Dl = o.Dt, o.Dl
				e.SrcStep = head + o.Dt
				e.SrcLane = ((ln+o.Dl)%lanes + lanes) % lanes
			}
			col.Entries[ln] = e
		}
		s.Columns = append(s.Columns, col)
		head += col.Advance
	}
	return &Image{Lanes: lanes, DenseSteps: steps, Width: w, Pattern: p, Schedule: s}, nil
}

func signExtend(raw uint32, w fixed.Width) int32 {
	shift := 32 - uint(w)
	return int32(raw<<shift) >> shift
}

// RoundTrip encodes and decodes a schedule and verifies the reconstruction
// matches entry-for-entry (columns whose saturated ALC was repaired by the
// decoder's head tracking included).
func RoundTrip(p sched.Pattern, s *sched.Schedule, w fixed.Width) error {
	buf, err := Encode(p, s, w)
	if err != nil {
		return err
	}
	img, err := Decode(buf, p)
	if err != nil {
		return err
	}
	g := img.Schedule
	if g.Lanes != s.Lanes || g.DenseSteps != s.DenseSteps || len(g.Columns) != len(s.Columns) {
		return errors.New("wsformat: geometry mismatch after round trip")
	}
	for ci := range s.Columns {
		a, b := s.Columns[ci], g.Columns[ci]
		if a.Head != b.Head {
			return fmt.Errorf("wsformat: column %d head %d != %d", ci, b.Head, a.Head)
		}
		for ln := range a.Entries {
			ea, eb := a.Entries[ln], b.Entries[ln]
			if ea.Weight != eb.Weight || (ea.Weight != 0 &&
				(ea.SrcStep != eb.SrcStep || ea.SrcLane != eb.SrcLane)) {
				return fmt.Errorf("wsformat: column %d lane %d entry mismatch: %+v != %+v", ci, ln, eb, ea)
			}
		}
	}
	return nil
}

// SizeBits reports the exact image footprint, the number the §5.4
// discussion optimizes (weights + per-weight ws selects + ALC + header).
func SizeBits(p sched.Pattern, s *sched.Schedule, w fixed.Width) int64 {
	ab := alcBits(p)
	maxALC := 1<<uint(ab) - 1
	var bits int64 = 21 * 8
	for _, col := range s.Columns {
		bits += int64(ab)
		if col.Advance >= maxALC {
			bits += 16
		}
		bits += int64(s.Lanes) * (int64(w) + int64(selBits(p)))
	}
	return bits
}
