package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"bittactical/internal/backend"
	"bittactical/internal/backend/dstripes"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
	"bittactical/internal/sim"
)

func testServer(t *testing.T, maxInFlight int) *Server {
	t.Helper()
	return New(Config{MaxInFlight: maxInFlight, DefaultTimeout: 30 * time.Second, MaxTimeout: time.Minute, Parallelism: 2})
}

// smallBody keeps handler tests fast: a tiny zoo instantiation of the
// smallest network.
func smallBody(extra string) string {
	body := `{"model":"AlexNet-ES","channel_scale":0.1,"spatial_scale":0.25`
	if extra != "" {
		body += "," + extra
	}
	return body + "}"
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHealthz(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := getPath(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	var resp map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp["status"] != "ok" {
		t.Fatalf("/healthz body = %q (err %v), want status ok", rec.Body.String(), err)
	}
}

func TestSimulateAndMetrics(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := postJSON(t, h, "/v1/simulate",
		smallBody(`"configs":[{"backend":"dense"},{"backend":"tcle","pattern":"T8<2,5>"}]`))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Configs) != 2 {
		t.Fatalf("got %d configs, want 2", len(resp.Configs))
	}
	if resp.Source != string(SourceEngine) {
		t.Errorf("first request source = %q, want engine", resp.Source)
	}
	if len(resp.Fingerprint) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex digest", resp.Fingerprint)
	}
	dense, tcle := resp.Configs[0], resp.Configs[1]
	if dense.Cycles == 0 || tcle.Cycles == 0 || len(tcle.Layers) == 0 {
		t.Fatalf("empty simulation result: %+v", resp)
	}
	if dense.Cycles != dense.DenseCycles {
		t.Errorf("dense baseline cycles %d != its own dense reference %d", dense.Cycles, dense.DenseCycles)
	}
	if tcle.Speedup <= 1 {
		t.Errorf("TCLe speedup = %.2f, want > 1 on a sparse model", tcle.Speedup)
	}

	// The acceptance gate: after a successful request, /metrics reports
	// nonzero cache and pool counters.
	mrec := getPath(t, h, "/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", mrec.Code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	mustNonzero := func(name string) {
		t.Helper()
		var v int64
		if err := json.Unmarshal(snap[name], &v); err != nil {
			t.Fatalf("metric %s = %s: %v", name, snap[name], err)
		}
		if v == 0 {
			t.Errorf("metric %s is zero after a successful simulate", name)
		}
	}
	mustNonzero("sched_cache_misses")
	mustNonzero("sim_pool_items_total")
	mustNonzero("serve_requests_total")
	var lat struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(snap["sim_layer_latency"], &lat); err != nil || lat.Count == 0 {
		t.Errorf("sim_layer_latency count = %d (err %v), want nonzero", lat.Count, err)
	}
}

// TestSimulatePlaneCacheSharing pins the sweep-sharing contract: a
// two-config request whose configs share a (back-end, width) builds each
// row-invariant layer's activation cost plane once and reuses it for the
// second config — at least one hit per row-invariant layer — and /metrics
// exposes the plane cache counters.
func TestSimulatePlaneCacheSharing(t *testing.T) {
	sim.SharedPlanes.Reset()
	defer sim.SharedPlanes.Reset()
	h := testServer(t, 2).Routes()
	// Three configs, two distinct back-ends at the same width: the two TCLe
	// configs share each layer's plane; the TCLp config — and any other
	// back-end, since planes are keyed on Backend.Name() — must not collide
	// with TCLe's planes and builds its own.
	rec := postJSON(t, h, "/v1/simulate",
		smallBody(`"configs":[{"backend":"tcle","pattern":"T8<2,5>"},{"backend":"tcle","pattern":"L8<1,6>"},{"backend":"tclp","pattern":"T8<2,5>"}]`))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/simulate = %d: %s", rec.Code, rec.Body.String())
	}

	// The request's model, rebuilt to count plane units: one per act group
	// per layer (AlexNet-ES has grouped convs, which build one plane per
	// filter group instead of one per layer).
	zoo := nn.DefaultZoo()
	zoo.ChannelScale, zoo.SpatialScale = 0.1, 0.25
	m, err := nn.BuildModel("AlexNet-ES", zoo)
	if err != nil {
		t.Fatal(err)
	}
	lws, err := m.Lowered(16, m.GenerateActs(7))
	if err != nil {
		t.Fatal(err)
	}
	planeUnits, groupUnits := 0, 0
	for _, lw := range lws {
		planeUnits += lw.ActGroups()
		if lw.ActGroups() > 1 {
			groupUnits += lw.ActGroups()
		}
	}
	if planeUnits == len(lws) {
		t.Fatal("model has no grouped layers; test is vacuous")
	}
	st := sim.SharedPlanes.Stats()
	if st.Misses != int64(2*planeUnits) {
		t.Errorf("plane cache misses = %d, want %d (one build per act group per back-end)", st.Misses, 2*planeUnits)
	}
	if st.Hits < int64(planeUnits) {
		t.Errorf("plane cache hits = %d, want >= %d (second TCLe config reuses every plane)", st.Hits, planeUnits)
	}
	if st.GroupBuilds != int64(2*groupUnits) {
		t.Errorf("grouped plane builds = %d, want %d (grouped convs take the plane path)", st.GroupBuilds, 2*groupUnits)
	}
	if st.GroupHits < int64(groupUnits) {
		t.Errorf("grouped plane hits = %d, want >= %d", st.GroupHits, groupUnits)
	}

	mrec := getPath(t, h, "/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", mrec.Code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	for name, want := range map[string]int64{
		"sim_plane_hits":            st.Hits,
		"sim_plane_misses":          st.Misses,
		"sim_plane_entries":         int64(st.Entries),
		"sim_plane_bytes":           st.Bytes,
		"sim_plane_group_builds":    st.GroupBuilds,
		"sim_plane_group_hits":      st.GroupHits,
		"sim_plane_group_evictions": st.GroupEvictions,
	} {
		var v int64
		if err := json.Unmarshal(snap[name], &v); err != nil {
			t.Fatalf("metric %s = %s: %v", name, snap[name], err)
		}
		if v != want {
			t.Errorf("metric %s = %d, want %d", name, v, want)
		}
	}
}

func TestSimulateDefaultsConfigs(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := postJSON(t, h, "/v1/simulate", smallBody(""))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Configs) != len(DefaultConfigs()) {
		t.Fatalf("default sweep ran %d configs, want %d", len(resp.Configs), len(DefaultConfigs()))
	}
}

// TestSimulateDeadline pins the acceptance criterion: a request with a
// too-short deadline fails with a timeout status, promptly, without leaking
// engine goroutines.
func TestSimulateDeadline(t *testing.T) {
	h := testServer(t, 2).Routes()
	before := runtime.NumGoroutine()
	start := time.Now()
	rec := postJSON(t, h, "/v1/simulate",
		`{"model":"AlexNet-ES","channel_scale":0.3,"spatial_scale":0.4,"timeout_ms":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("short-deadline simulate = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("timeout body lacks a deadline message: %s", rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timed-out request took %v, want prompt return", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak after timeout: %d before, %d after", before, after)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	h := testServer(t, 2).Routes()
	cases := []struct {
		name, body string
	}{
		{"unknown model", `{"model":"NotANet"}`},
		{"missing model", `{}`},
		{"unknown backend", smallBody(`"configs":[{"backend":"warp"}]`)},
		{"unknown pattern", smallBody(`"configs":[{"backend":"tcle","pattern":"Z9<9,9>"}]`)},
		{"front-end without pattern", smallBody(`"configs":[{"backend":"front-end"}]`)},
		{"bad width", smallBody(`"configs":[{"backend":"tcle","pattern":"T8<2,5>","width":12}]`)},
		{"unknown field", `{"model":"AlexNet-ES","wat":1}`},
		{"malformed json", `{"model":`},
	}
	for _, c := range cases {
		rec := postJSON(t, h, "/v1/simulate", c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", c.name, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", c.name, ct)
		}
	}
}

// TestErrorResponsesAreJSON sweeps every server-written error path —
// decode failures, bad model/config, saturation, timeout — and requires
// the JSON content type and a JSON object body with an "error" key on each.
func TestErrorResponsesAreJSON(t *testing.T) {
	s := testServer(t, 1)
	h := s.Routes()
	check := func(name string, rec *httptest.ResponseRecorder, wantStatus int) {
		t.Helper()
		if rec.Code != wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", name, rec.Code, wantStatus, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", name, ct)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
			t.Errorf("%s: body %q is not an {error: …} object (err %v)", name, rec.Body.String(), err)
		}
	}
	check("malformed json", postJSON(t, h, "/v1/simulate", `{`), http.StatusBadRequest)
	check("unknown model", postJSON(t, h, "/v1/simulate", `{"model":"NotANet"}`), http.StatusBadRequest)
	check("unknown backend in sweep", postJSON(t, h, "/v1/simulate",
		smallBody(`"configs":[{"backend":"dense"},{"backend":"warp"}]`)), http.StatusBadRequest)
	check("timeout", postJSON(t, h, "/v1/simulate",
		`{"model":"AlexNet-ES","channel_scale":0.3,"spatial_scale":0.4,"timeout_ms":1}`), http.StatusGatewayTimeout)
	check("schedule missing pattern", postJSON(t, h, "/v1/schedule", smallBody("")), http.StatusBadRequest)
	check("shard missing layers", postJSON(t, h, "/v1/shard",
		smallBody(`"configs":[{"backend":"dense"}]`)), http.StatusBadRequest)

	s.sem <- struct{}{}
	check("saturated", postJSON(t, h, "/v1/simulate", smallBody("")), http.StatusServiceUnavailable)
	<-s.sem
}

// TestSimulateUnknownBackendListsRegistry pins the error contract: an
// unknown back-end name is rejected with HTTP 400 and the body names every
// registered back-end, so API users can discover what the registry holds.
// The sweep path (bad name among good ones) must carry the same list.
func TestSimulateUnknownBackendListsRegistry(t *testing.T) {
	h := testServer(t, 2).Routes()
	for name, body := range map[string]string{
		"single": smallBody(`"configs":[{"backend":"warp"}]`),
		"sweep":  smallBody(`"configs":[{"backend":"dense"},{"backend":"tcle","pattern":"T8<2,5>"},{"backend":"warp"}]`),
	} {
		rec := postJSON(t, h, "/v1/simulate", body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: unknown backend = %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", name, ct)
		}
		got := rec.Body.String()
		if !strings.Contains(got, "warp") {
			t.Errorf("%s: 400 body does not echo the bad name: %s", name, got)
		}
		for _, be := range backend.Names() {
			if !strings.Contains(got, be) {
				t.Errorf("%s: 400 body does not list registered back-end %q: %s", name, be, got)
			}
		}
	}
}

// TestSimulatePluginBackend is the service-level seam proof: the
// sign-magnitude plugin back-end, registered by a blank import and never
// mentioned in the handler code, runs end-to-end over /v1/simulate.
func TestSimulatePluginBackend(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := postJSON(t, h, "/v1/simulate",
		smallBody(`"configs":[{"backend":"dstripes-sm","pattern":"T8<2,5>"},{"backend":"tclp","pattern":"T8<2,5>"}]`))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Configs) != 2 {
		t.Fatalf("got %d configs, want 2", len(resp.Configs))
	}
	sm, tclp := resp.Configs[0], resp.Configs[1]
	if !strings.Contains(sm.Name, dstripes.Name) {
		t.Errorf("config name %q does not carry the plugin back-end name", sm.Name)
	}
	if sm.Cycles == 0 || sm.Speedup <= 0 || len(sm.Layers) == 0 {
		t.Fatalf("empty plugin simulation result: %+v", sm)
	}
	// Sign-magnitude streams from bit 0 without trimming, so it can never
	// finish the model faster than TCLp's dynamic-precision window.
	if sm.Cycles < tclp.Cycles {
		t.Errorf("dstripes-sm cycles %d < TCLp cycles %d; cost ordering violated", sm.Cycles, tclp.Cycles)
	}
}

func TestSimulateRejectsWhenSaturated(t *testing.T) {
	s := testServer(t, 1)
	h := s.Routes()
	// Occupy the single in-flight slot, then observe the 503.
	s.sem <- struct{}{}
	rec := postJSON(t, h, "/v1/simulate", smallBody(""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated simulate = %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("503 Content-Type = %q, want application/json", ct)
	}
	<-s.sem
	// With the slot free the same request succeeds.
	if rec := postJSON(t, h, "/v1/simulate", smallBody(`"configs":[{"backend":"dense"}]`)); rec.Code != http.StatusOK {
		t.Fatalf("post-drain simulate = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestScheduleEndpoint(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := postJSON(t, h, "/v1/schedule", smallBody(`"pattern":"T8<2,5>"`))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/schedule = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Layers) == 0 || resp.Columns == 0 || resp.DenseCols == 0 {
		t.Fatalf("empty schedule response: %+v", resp)
	}
	if resp.Compaction <= 1 {
		t.Errorf("compaction = %.2f, want > 1 on a pruned model", resp.Compaction)
	}
	if resp.Algorithm != "algorithm1" {
		t.Errorf("default algorithm = %q, want algorithm1", resp.Algorithm)
	}

	if rec := postJSON(t, h, "/v1/schedule", smallBody("")); rec.Code != http.StatusBadRequest {
		t.Errorf("missing pattern: status = %d, want 400", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/schedule", smallBody(`"pattern":"T8<2,5>","algorithm":"psychic"`)); rec.Code != http.StatusBadRequest {
		t.Errorf("bad algorithm: status = %d, want 400", rec.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testServer(t, 2).Routes()
	if rec := getPath(t, h, "/v1/simulate"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate = %d, want 405", rec.Code)
	}
	rec := postJSON(t, h, "/healthz", "{}")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", rec.Code)
	}
}

// TestBodyTooLarge guards the request-size bound.
func TestBodyTooLarge(t *testing.T) {
	h := testServer(t, 2).Routes()
	big := `{"model":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	rec := postJSON(t, h, "/v1/simulate", big)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized body = %d, want 400", rec.Code)
	}
}

// poolItems reads the engine's lifetime work-item counter — the ground
// truth for "how many engine simulations actually ran".
func poolItems() int64 {
	return metrics.Default.Counter("sim_pool_items_total").Value()
}

// TestSimulateCoalescesDuplicates is the acceptance proof for request
// coalescing: N identical concurrent POSTs execute exactly one engine
// simulation. The engine's work-item count for this request shape is
// deterministic, so the counter delta across the concurrent batch must
// equal the delta of a single solo run — not N times it.
func TestSimulateCoalescesDuplicates(t *testing.T) {
	body := smallBody(`"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`)

	// Learn the per-run item count from a solo request on a throwaway server.
	solo := testServer(t, 8).Routes()
	before := poolItems()
	if rec := postJSON(t, solo, "/v1/simulate", body); rec.Code != http.StatusOK {
		t.Fatalf("solo simulate = %d: %s", rec.Code, rec.Body.String())
	}
	perRun := poolItems() - before
	if perRun == 0 {
		t.Fatal("solo run produced no pool items; counter proof is vacuous")
	}

	const n = 8
	s := testServer(t, n)
	h := s.Routes()
	before = poolItems()
	type result struct {
		code   int
		source string
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			rec := postJSON(t, h, "/v1/simulate", body)
			var resp SimulateResponse
			_ = json.Unmarshal(rec.Body.Bytes(), &resp)
			results <- result{code: rec.Code, source: resp.Source}
		}()
	}
	engines := 0
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("concurrent simulate = %d", r.code)
		}
		if r.source == string(SourceEngine) {
			engines++
		}
	}
	if delta := poolItems() - before; delta != perRun {
		t.Errorf("engine ran %d pool items for %d identical requests, want exactly one run's %d", delta, n, perRun)
	}
	if engines != 1 {
		t.Errorf("%d requests report source=engine, want exactly 1", engines)
	}
	st := s.Cache().Stats()
	if st.Runs != 1 {
		t.Errorf("cache led %d engine runs, want 1", st.Runs)
	}
	if st.Joined+st.Hits != n-1 {
		t.Errorf("joined %d + cache hits %d != %d followers", st.Joined, st.Hits, n-1)
	}
}

// TestSimulateResultCacheServesRepeats: a repeat of a finished request is
// served from the LRU — source "cache", zero new engine work — and spelling
// out the defaults changes nothing (the fingerprint canonicalizes first).
func TestSimulateResultCacheServesRepeats(t *testing.T) {
	s := testServer(t, 2)
	h := s.Routes()
	body := smallBody(`"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`)
	rec := postJSON(t, h, "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("first simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var first SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}

	before := poolItems()
	// Same request with defaults spelled out: seed and act_seed defaults,
	// explicit width 16, mixed-case backend name.
	explicit := `{"model":"AlexNet-ES","channel_scale":0.1,"spatial_scale":0.25,"seed":1,"act_seed":7,` +
		`"configs":[{"backend":"TCLe","pattern":"T8<2,5>","width":16}],"parallelism":1}`
	rec = postJSON(t, h, "/v1/simulate", explicit)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var second SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if second.Source != string(SourceCache) {
		t.Errorf("repeat source = %q, want cache", second.Source)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("explicit-defaults fingerprint %s != terse fingerprint %s", second.Fingerprint, first.Fingerprint)
	}
	if delta := poolItems() - before; delta != 0 {
		t.Errorf("cache hit still ran %d engine items, want 0", delta)
	}
	aj, _ := json.Marshal(first.Configs)
	bj, _ := json.Marshal(second.Configs)
	if string(aj) != string(bj) {
		t.Errorf("cached results differ from original:\n%s\nvs\n%s", aj, bj)
	}
	// A different act seed is a different fingerprint: no false sharing.
	rec = postJSON(t, h, "/v1/simulate", smallBody(`"act_seed":99,"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`))
	if rec.Code != http.StatusOK {
		t.Fatalf("distinct-seed simulate = %d", rec.Code)
	}
	var third SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &third); err != nil {
		t.Fatal(err)
	}
	if third.Fingerprint == first.Fingerprint {
		t.Error("different act_seed produced the same fingerprint")
	}
	if third.Source != string(SourceEngine) {
		t.Errorf("distinct request source = %q, want engine", third.Source)
	}
}
