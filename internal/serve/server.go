package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"bittactical/internal/arch"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// maxBodyBytes bounds request bodies; every valid request is a small JSON
// document.
const maxBodyBytes = 1 << 20

// Shard-mode resilience defaults: a Config.ShardRetries of 0 means
// defaultShardRetries re-dispatch rounds (negative disables retry), and a
// Config.ShardBackoff of 0 means defaultShardBackoff before the first
// retry round (doubling per round; negative disables the pause).
const (
	defaultShardRetries = 2
	defaultShardBackoff = 50 * time.Millisecond
)

// Config tunes one Server.
type Config struct {
	// MaxInFlight bounds concurrent evaluation requests (each sweep
	// saturates the engine's worker pool, so admitting more than a handful
	// just queues them on the scheduler); below 1 means 1.
	MaxInFlight int
	// DefaultTimeout applies when a request names no timeout_ms;
	// MaxTimeout clamps whatever the client asks for. Zero values default
	// to 60s and 5m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Parallelism is the engine worker count (0 = GOMAXPROCS); a request's
	// parallelism field overrides it.
	Parallelism int
	// CacheBudget is the finished-result LRU's byte budget: 0 means
	// DefaultCacheBudget, negative disables retention (in-flight
	// coalescing still applies).
	CacheBudget int64
	// Workers, when non-empty, puts the server in coordinator mode: every
	// /v1/simulate fans its (config, layer) grid out over these base URLs
	// (each a plain tclserve exposing /v1/shard) instead of simulating
	// locally.
	Workers []string
	// Client performs the coordinator's worker calls; nil means a default
	// client with no overall timeout (the request context bounds each
	// call).
	Client *http.Client
	// ShardRetries bounds the coordinator's re-dispatch rounds after the
	// first: a failed worker's layer slice is re-partitioned over the
	// survivors up to this many times before the request fails. 0 means
	// defaultShardRetries; negative disables failover entirely.
	ShardRetries int
	// ShardBackoff is the pause before the first re-dispatch round,
	// doubling each round. 0 means defaultShardBackoff; negative disables
	// the pause.
	ShardBackoff time.Duration
	// HealthInterval is the period of the coordinator's background
	// /healthz probes of the worker fleet; 0 or negative disables the
	// probe loop (dispatch outcomes still feed the liveness state).
	HealthInterval time.Duration
	// Partition picks the layer-partitioning strategy: "lpt" (default,
	// cost-balanced bin packing on predicted serial cycles) or
	// "roundrobin".
	Partition string
	// Metrics receives the server's instruments; nil means
	// metrics.Default.
	Metrics *metrics.Registry
}

// Server is the evaluation service: the HTTP surface over the simulation
// engine, fronted by the in-flight limiter, the request fingerprint
// single-flight, and the finished-result LRU.
type Server struct {
	cfg    Config
	sem    chan struct{}
	cache  *ResultCache
	client *http.Client
	health *fleetHealth // nil outside coordinator mode

	requests            *metrics.Counter
	rejected            *metrics.Counter
	failures            *metrics.Counter
	timeouts            *metrics.Counter
	inflight            *metrics.Gauge
	latency             *metrics.Histogram
	shardRequests       *metrics.Counter
	shardDispatches     *metrics.Counter
	shardFailures       *metrics.Counter
	shardRetryRounds    *metrics.Counter
	shardFailoverLayers *metrics.Counter
}

// New builds a Server; zero Config fields get the documented defaults.
func New(cfg Config) *Server {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	s := &Server{
		cfg:                 cfg,
		sem:                 make(chan struct{}, cfg.MaxInFlight),
		cache:               NewResultCache(cfg.CacheBudget),
		client:              client,
		requests:            reg.Counter("serve_requests_total"),
		rejected:            reg.Counter("serve_requests_rejected_total"),
		failures:            reg.Counter("serve_requests_failed_total"),
		timeouts:            reg.Counter("serve_requests_timeout_total"),
		inflight:            reg.Gauge("serve_inflight_requests"),
		latency:             reg.Histogram("serve_request_latency"),
		shardRequests:       reg.Counter("serve_shard_requests_total"),
		shardDispatches:     reg.Counter("serve_shard_dispatch_total"),
		shardFailures:       reg.Counter("serve_shard_failures_total"),
		shardRetryRounds:    reg.Counter("serve_shard_retry_rounds_total"),
		shardFailoverLayers: reg.Counter("serve_shard_failover_layers_total"),
	}
	s.cache.RegisterMetrics(reg, "serve")
	if len(cfg.Workers) > 0 {
		s.health = newFleetHealth(cfg.Workers, client, cfg.HealthInterval, reg)
	}
	return s
}

// Cache exposes the finished-result cache (stats for tests and tools).
func (s *Server) Cache() *ResultCache { return s.cache }

// Close stops the coordinator's background health prober (a no-op outside
// coordinator mode). Idempotent.
func (s *Server) Close() {
	if s.health != nil {
		s.health.close()
	}
}

// Routes wires the service surface: the evaluation endpoints behind the
// in-flight limiter, plus the probes.
func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/simulate", s.limited(s.handleSimulate))
	mux.HandleFunc("POST /v1/schedule", s.limited(s.handleSchedule))
	mux.HandleFunc("POST /v1/shard", s.limited(s.handleShard))
	return mux
}

// limited applies the bounded in-flight semaphore (rejecting with 503 when
// full rather than queueing — a sweep is seconds of CPU, and a deep queue
// only converts overload into timeouts) and records request metrics.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Inc()
			writeError(w, http.StatusServiceUnavailable, "server at capacity: too many in-flight requests")
			return
		}
		defer func() { <-s.sem }()
		s.inflight.Inc()
		defer s.inflight.Dec()
		s.requests.Inc()
		start := time.Now()
		h(w, r)
		s.latency.Observe(time.Since(start))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleModels lists every registered workload, so a client can discover
// what ModelSpec.Model accepts without provoking a 400. The paper's seven
// networks are reported separately from the full registry set.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"models": nn.Names(),
		"paper":  nn.ModelNames,
	})
}

// publishActProfile accumulates one engine run's activation tensors into
// the sparsity_slice_* counters (sparsity.SliceProfile): per-bit-plane
// zero fractions, the calibration feed a BitWave/SWIS-style back-end
// consumes. Only cache-missing engine runs pay the pass; hits reuse the
// already-published run.
func (s *Server) publishActProfile(acts []*tensor.T) {
	reg := s.cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	var p sparsity.SliceProfile
	for _, t := range acts {
		p.AddTensor(t)
	}
	p.Publish(reg)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	w.Header().Set("Content-Type", "application/json")
	if err := reg.WriteJSON(w); err != nil {
		// Headers are gone; nothing left to do but note the failure.
		s.failures.Inc()
	}
}

// requestContext derives the per-request deadline: the client's timeout_ms
// when given, the server default otherwise, clamped to the server maximum.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// buildConfigs resolves the request's config specs (the default sweep when
// none are named), reporting the failing index — and, through
// ConfigSpec.Build, the registry's back-end list on unknown names.
func buildConfigs(specs []ConfigSpec) ([]arch.Config, error) {
	if len(specs) == 0 {
		specs = DefaultConfigs()
	}
	cfgs := make([]arch.Config, len(specs))
	for i, spec := range specs {
		var err error
		if cfgs[i], err = spec.Build(); err != nil {
			return nil, fmt.Errorf("configs[%d]: %v", i, err)
		}
	}
	return cfgs, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	m, zoo, actSeed, err := req.ModelSpec.Build()
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfgs, err := buildConfigs(req.Configs)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	fp := Fingerprint(m, zoo, actSeed, cfgs)
	names := make([]string, len(cfgs))
	for i := range cfgs {
		names[i] = cfgs[i].Name
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	var st *streamWriter
	if req.Stream {
		st = newStreamWriter(w)
	}

	start := time.Now()
	// One engine invocation (or shard dispatch) per fingerprint: concurrent
	// identical requests coalesce onto the leader's run, and finished
	// sweeps serve follow-ups from the LRU without touching the engine.
	run := func() (*Sweep, error) {
		var emit func(cfg, layer int, lp LayerPayload)
		if st != nil {
			// This request leads the run, so its stream gets the layer
			// lines live as each (config, layer) cell merges.
			st.header(m.Name, fp, SourceEngine, names)
			emit = st.layer
		}
		if len(s.cfg.Workers) > 0 {
			grid, wnames, err := s.dispatchShards(ctx, req, m, cfgs, emit)
			if err != nil {
				return nil, err
			}
			sw := &Sweep{Model: m.Name}
			for k, name := range wnames {
				sw.Configs = append(sw.Configs, payloadFromLayers(name, grid[k]))
			}
			return sw, nil
		}
		opts := sim.Options{Parallelism: s.cfg.Parallelism}
		if req.Parallelism > 0 {
			opts.Parallelism = req.Parallelism
		}
		if emit != nil {
			opts.OnLayerResult = func(cfg, layer int, lr sim.LayerResult) {
				emit(cfg, layer, layerPayload(lr))
			}
		}
		acts := m.GenerateActs(actSeed)
		s.publishActProfile(acts)
		results, err := sim.SimulateSweepContext(ctx, cfgs, m, acts, opts)
		if err != nil {
			return nil, err
		}
		sw := &Sweep{Model: m.Name}
		for _, res := range results {
			layers := make([]LayerPayload, len(res.Layers))
			for i, l := range res.Layers {
				layers[i] = layerPayload(l)
			}
			sw.Configs = append(sw.Configs, payloadFromLayers(res.Config, layers))
		}
		return sw, nil
	}
	sweep, src, err := s.cache.Do(ctx, fp, run)
	if err != nil {
		if st != nil && st.Started() {
			// The stream already committed a 200; the error becomes the
			// terminal line.
			s.countEngineError(err)
			st.error(err.Error())
			return
		}
		s.writeEngineError(w, err)
		return
	}
	resp := &SimulateResponse{
		Model:       sweep.Model,
		Fingerprint: fp,
		Source:      string(src),
		Configs:     sweep.Configs,
		ElapsedMs:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if st != nil {
		if !st.Started() {
			// Coalesced or cached: the whole sweep is already in hand, so
			// the stream replays it in grid order.
			st.header(sweep.Model, fp, src, names)
			for k := range sweep.Configs {
				for i, l := range sweep.Configs[k].Layers {
					st.layer(k, i, l)
				}
			}
		}
		st.summary(resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShard is the worker side of shard mode: simulate an arbitrary
// layer slice of the (config, layer) grid and return the raw cells. No
// result caching here — the coordinator coalesces and caches at the
// whole-request level, and a worker's slice assignment varies with fleet
// size, so worker-level keys would fragment.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	s.shardRequests.Inc()
	var req ShardRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	m, _, actSeed, err := req.ModelSpec.Build()
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Configs) == 0 {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "missing configs (the coordinator names them explicitly)")
		return
	}
	cfgs, err := buildConfigs(req.Configs)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Layers) == 0 {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "missing layers")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	opts := sim.Options{Parallelism: s.cfg.Parallelism}
	if req.Parallelism > 0 {
		opts.Parallelism = req.Parallelism
	}
	acts := m.GenerateActs(actSeed)
	grid, err := sim.SimulateGridContext(ctx, cfgs, m, acts, req.Layers, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.writeEngineError(w, err)
			return
		}
		// Anything else from the grid entry is a request problem (layer
		// index out of range).
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := ShardResponse{Model: m.Name, Cells: make([][]LayerPayload, len(cfgs))}
	for _, cfg := range cfgs {
		resp.Configs = append(resp.Configs, cfg.Name)
	}
	for k := range grid {
		resp.Cells[k] = make([]LayerPayload, len(grid[k]))
		for i, l := range grid[k] {
			resp.Cells[k][i] = layerPayload(l)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSchedule runs the offline software front-end alone: every filter
// group of the model scheduled under the pattern, reported as schedule
// columns vs dense steps per layer — the compaction a deployment would bake
// into its weight-scratchpad images.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	m, _, actSeed, err := req.ModelSpec.Build()
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Pattern == "" {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "missing pattern (want one of "+strings.Join(sched.KnownPatternNames(), ", ")+")")
		return
	}
	p, err := sched.ByName(req.Pattern)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	alg, err := algorithmByName(req.Algorithm)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	lws, err := m.Lowered(16, m.GenerateActs(actSeed))
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	resp := ScheduleResponse{Model: m.Name, Pattern: p.Name, Algorithm: alg.String()}
	for _, lw := range lws {
		pad := make([]bool, lw.Steps*lw.Lanes)
		for st := 0; st < lw.Steps; st++ {
			for ln := 0; ln < lw.Lanes; ln++ {
				pad[st*lw.Lanes+ln] = lw.IsPad(st, ln)
			}
		}
		lr := ScheduleLayerPayload{Name: lw.Name, Filters: lw.Filters}
		for f0 := 0; f0 < lw.Filters; f0 += 16 {
			// Scheduling one group is milliseconds; the claim-grain check
			// keeps a large model's sweep cancellable between groups.
			if err := ctx.Err(); err != nil {
				s.writeEngineError(w, err)
				return
			}
			f1 := min(f0+16, lw.Filters)
			group := make([]sched.Filter, f1-f0)
			for i := range group {
				group[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
			}
			for _, sc := range sched.Shared.ScheduleGroup(group, p, alg) {
				lr.Columns += sc.Len()
				lr.DenseCols += lw.Steps
			}
		}
		if lr.Columns > 0 {
			lr.Compaction = float64(lr.DenseCols) / float64(lr.Columns)
		}
		resp.Layers = append(resp.Layers, lr)
		resp.Columns += lr.Columns
		resp.DenseCols += lr.DenseCols
	}
	if resp.Columns > 0 {
		resp.Compaction = float64(resp.DenseCols) / float64(resp.Columns)
	}
	resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// countEngineError books the failure class without writing a response
// (the streaming path already committed its status).
func (s *Server) countEngineError(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Inc()
	} else {
		s.failures.Inc()
	}
}

// writeEngineError maps a failed engine run to the response the client can
// act on: 504 for an expired deadline, 408 for a request the client itself
// abandoned, 502 for a shard worker failure.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	var se *shardError
	var fm *fleetMismatchError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "simulation exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		// The client disconnected; the status code is for the log only.
		s.failures.Inc()
		writeError(w, http.StatusRequestTimeout, "request cancelled")
	case errors.As(err, &se):
		s.failures.Inc()
		writeError(w, http.StatusBadGateway, se.Error())
	case errors.As(err, &fm):
		s.failures.Inc()
		writeError(w, http.StatusBadGateway, fm.Error())
	default:
		s.failures.Inc()
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// decodeRequest parses the JSON body, answering 400 (application/json,
// like every error here) on garbage and booking the failure.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError answers every error as a JSON object with the JSON content
// type — no error path falls back to text/plain.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
