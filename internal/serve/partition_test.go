package serve

import (
	"reflect"
	"sort"
	"testing"

	"bittactical/internal/nn"
	"bittactical/internal/sim"
)

// TestPartitionLPTCoverageAndDeterminism: every layer lands in exactly one
// shard, slices are sorted, and the packing is a pure function of its
// inputs.
func TestPartitionLPTCoverageAndDeterminism(t *testing.T) {
	layers := []int{0, 1, 2, 3, 4, 5, 6}
	costs := []int64{100, 7, 3, 90, 1, 5, 2}
	for _, n := range []int{1, 2, 3, 7, 9} {
		a := PartitionLPT(layers, costs, n)
		b := PartitionLPT(layers, costs, n)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("n=%d: LPT is not deterministic: %v vs %v", n, a, b)
		}
		if len(a) != n {
			t.Fatalf("n=%d: %d slices", n, len(a))
		}
		var flat []int
		for _, sl := range a {
			if !sort.IntsAreSorted(sl) {
				t.Errorf("n=%d: slice %v not sorted", n, sl)
			}
			flat = append(flat, sl...)
		}
		sort.Ints(flat)
		if !reflect.DeepEqual(flat, layers) {
			t.Errorf("n=%d: coverage %v != %v", n, flat, layers)
		}
	}
}

// TestPartitionLPTBeatsRoundRobinSynthetic: on a cost vector with one
// dominant entry (the conv1 shape), LPT isolates the heavy layer while
// round-robin stacks extra work on its shard.
func TestPartitionLPTBeatsRoundRobinSynthetic(t *testing.T) {
	layers := allLayers(8)
	costs := []int64{1000, 10, 10, 10, 10, 10, 10, 10}
	lpt := BalanceOf(PartitionLPT(layers, costs, 4), costs)
	rr := BalanceOf(PartitionRoundRobin(layers, 4), costs)
	if lpt.Imbalance > rr.Imbalance {
		t.Errorf("LPT imbalance %.3f > round-robin %.3f", lpt.Imbalance, rr.Imbalance)
	}
	// Round-robin gives worker 0 the dominant layer PLUS layer 4; LPT gives
	// it the dominant layer alone.
	if lpt.Max >= rr.Max {
		t.Errorf("LPT max %.0f >= round-robin max %.0f on a dominant-layer vector", lpt.Max, rr.Max)
	}
}

// TestPartitionLPTBeatsRoundRobinOnZooModel: the real thing — predicted
// sweep costs for a conv1-heavy zoo model, LPT's imbalance must not exceed
// round-robin's. This is the in-process twin of the BENCH_serve
// shard-balance gate.
func TestPartitionLPTBeatsRoundRobinOnZooModel(t *testing.T) {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	m, err := nn.BuildModel("AlexNet-ES", z)
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := buildConfigs(DefaultConfigs())
	if err != nil {
		t.Fatal(err)
	}
	costs, err := sim.EstimateSweepLayerCosts(cfgs, m)
	if err != nil {
		t.Fatal(err)
	}
	layers := allLayers(len(m.Layers))
	for _, n := range []int{2, 3, 4} {
		lpt := BalanceOf(PartitionLPT(layers, costs, n), costs)
		rr := BalanceOf(PartitionRoundRobin(layers, n), costs)
		if lpt.Imbalance > rr.Imbalance {
			t.Errorf("%d workers: LPT imbalance %.3f > round-robin %.3f", n, lpt.Imbalance, rr.Imbalance)
		}
		if lpt.Imbalance < 1 || rr.Imbalance < 1 {
			t.Errorf("%d workers: imbalance below 1 (lpt %.3f, rr %.3f) — Max/Mean is broken", n, lpt.Imbalance, rr.Imbalance)
		}
	}
}

// TestPartitionUnitCostFallback: nil costs degrade LPT to a balanced count
// split — no shard carries more than ceil(n/w) layers.
func TestPartitionUnitCostFallback(t *testing.T) {
	layers := allLayers(10)
	slices := PartitionLPT(layers, nil, 3)
	for w, sl := range slices {
		if len(sl) > 4 {
			t.Errorf("worker %d drew %d of 10 layers under unit costs", w, len(sl))
		}
	}
	b := BalanceOf(slices, nil)
	if b.Imbalance > 1.2+1e-9 {
		t.Errorf("unit-cost imbalance %.3f, want near 1 (4/3.33 max)", b.Imbalance)
	}
}

// TestBalanceOfCountsIdleShards: an empty shard is an idle worker the fleet
// paid for — it must drag the mean down (raising imbalance), or a
// degenerate everything-on-one-worker partition would score a perfect 1.0.
func TestBalanceOfCountsIdleShards(t *testing.T) {
	costs := []int64{5, 5}
	degenerate := [][]int{{0, 1}, {}}
	b := BalanceOf(degenerate, costs)
	if b.Imbalance != 2 {
		t.Errorf("degenerate partition imbalance = %.3f, want 2.0", b.Imbalance)
	}
}
