package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bittactical/internal/metrics"
)

// TestFleetHealthTransitions drives the liveness state machine through
// probeAll: unknown is dispatchable, one failure keeps a worker in rotation
// (transient hiccups must not drain the fleet), the second consecutive
// failure demotes it, and a single success snaps it back up.
func TestFleetHealthTransitions(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(worker.Close)

	// interval 0: no background loop; the test drives probeAll directly.
	fh := newFleetHealth([]string{worker.URL}, &http.Client{}, 0, metrics.NewRegistry())
	t.Cleanup(fh.close)

	if !fh.dispatchable(0) {
		t.Fatal("fresh (unknown) worker is not dispatchable")
	}
	fh.probeAll()
	if got := fh.workers[0].state.Load(); got != workerUp {
		t.Fatalf("after healthy probe: state %d, want up", got)
	}

	healthy.Store(false)
	fh.probeAll()
	if !fh.dispatchable(0) {
		t.Fatal("one failed probe drained the worker (threshold is 2)")
	}
	fh.probeAll()
	if fh.dispatchable(0) {
		t.Fatal("two consecutive failed probes did not demote the worker")
	}

	healthy.Store(true)
	fh.probeAll()
	if !fh.dispatchable(0) {
		t.Fatal("a healthy probe did not recover the down worker")
	}
}

// TestFleetHealthGauges: the coordinator's /metrics carries per-worker up
// gauges, the aggregate, and probe counters that move with probeAll.
func TestFleetHealthGauges(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(up.Close)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(down.Close)

	reg := metrics.NewRegistry()
	coord := New(Config{
		MaxInFlight:    2,
		DefaultTimeout: 30 * time.Second,
		MaxTimeout:     time.Minute,
		Workers:        []string{up.URL, down.URL},
		Metrics:        reg,
	})
	t.Cleanup(coord.Close)
	if coord.health == nil {
		t.Fatal("coordinator mode did not build a fleet health tracker")
	}
	coord.health.probeAll()
	coord.health.probeAll() // second failure demotes the down worker

	rec := httptest.NewRecorder()
	coord.Routes().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"serve_shard_worker_up_0": "1",
		"serve_shard_worker_up_1": "0",
		"serve_shard_workers_up":  "1",
	}
	for name, val := range want {
		got, ok := snap[name]
		if !ok {
			t.Errorf("/metrics missing %s", name)
			continue
		}
		if string(got) != val {
			t.Errorf("%s = %s, want %s", name, got, val)
		}
	}
	var probes int64
	if err := json.Unmarshal(snap["serve_shard_probes_total"], &probes); err != nil || probes != 4 {
		t.Errorf("serve_shard_probes_total = %s, want 4 (2 workers x 2 rounds)", snap["serve_shard_probes_total"])
	}
	var fails int64
	if err := json.Unmarshal(snap["serve_shard_probe_failures_total"], &fails); err != nil || fails != 2 {
		t.Errorf("serve_shard_probe_failures_total = %s, want 2", snap["serve_shard_probe_failures_total"])
	}
}

// TestDispatchFeedsHealth: shard RPC outcomes drive the same state machine
// as probes — two failed requests against a dead worker demote it, and the
// next request's partition routes around it (one round, no retry needed).
func TestDispatchFeedsHealth(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)
	coord := newCoordinator(t, []string{goodWorker(t), broken.URL})
	body := smallBody(`"configs":[{"backend":"dense"}]`)

	for i := 0; i < 2; i++ {
		// Distinct act seeds defeat the result cache so each request really
		// dispatches.
		b := smallBody(`"configs":[{"backend":"dense"}],"act_seed":` + string(rune('2'+i)))
		if rec := postJSON(t, coord.Routes(), "/v1/simulate", b); rec.Code != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if coord.health.dispatchable(1) {
		t.Fatal("two failed dispatches did not demote the broken worker")
	}
	// With the broken worker down, the next sweep partitions over the
	// survivor only — still byte-identical.
	refJSON := referenceSweep(t, body)
	rec := postJSON(t, coord.Routes(), "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-demotion simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var got SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got.Configs)
	if string(gotJSON) != refJSON {
		t.Errorf("post-demotion payload differs from single-process")
	}
}
