package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// sweepOfSize builds a sweep whose sizeBytes lands near want bytes, for
// budget-pressure tests.
func sweepOfSize(name string, want int64) *Sweep {
	sw := &Sweep{Model: name}
	cp := ConfigPayload{Name: name}
	for sw.sizeBytes() < want {
		cp.Layers = append(cp.Layers, LayerPayload{Name: "layer", Cycles: 1, DenseCycles: 2, MACs: 3})
		sw.Configs = []ConfigPayload{cp}
	}
	return sw
}

func mustDo(t *testing.T, c *ResultCache, key string, sw *Sweep) Source {
	t.Helper()
	_, src, err := c.Do(context.Background(), key, func() (*Sweep, error) { return sw, nil })
	if err != nil {
		t.Fatalf("Do(%s): %v", key, err)
	}
	return src
}

func TestResultCacheEvictsUnderByteBudget(t *testing.T) {
	one := sweepOfSize("a", 1<<10)
	budget := 3 * one.sizeBytes()
	c := NewResultCache(budget)

	// Fill past the budget: inserting d must push a (the cold end) out.
	for _, key := range []string{"a", "b", "c", "d"} {
		if src := mustDo(t, c, key, sweepOfSize(key, 1<<10)); src != SourceEngine {
			t.Fatalf("first Do(%s) source = %q, want engine", key, src)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions after overfilling the budget")
	}
	if st.Bytes > budget {
		t.Errorf("resident bytes %d exceed budget %d after eviction", st.Bytes, budget)
	}
	// The survivors are the warm keys; the evicted key re-runs.
	if src := mustDo(t, c, "d", nil); src != SourceCache {
		t.Errorf("warm key d source = %q, want cache", src)
	}
	if src := mustDo(t, c, "a", sweepOfSize("a", 1<<10)); src != SourceEngine {
		t.Errorf("evicted key a source = %q, want engine (it should have been evicted)", src)
	}

	// LRU order follows use, not insertion: touching an old key spares it.
	c2 := NewResultCache(budget)
	for _, key := range []string{"a", "b", "c"} {
		mustDo(t, c2, key, sweepOfSize(key, 1<<10))
	}
	mustDo(t, c2, "a", nil) // warm a
	mustDo(t, c2, "d", sweepOfSize("d", 1<<10))
	if src := mustDo(t, c2, "a", nil); src != SourceCache {
		t.Errorf("recently-used a was evicted; source = %q", src)
	}
	if src := mustDo(t, c2, "b", sweepOfSize("b", 1<<10)); src != SourceEngine {
		t.Errorf("cold b survived; source = %q, want engine", src)
	}
}

func TestResultCacheOversizedEntryPassesThrough(t *testing.T) {
	c := NewResultCache(512)
	big := sweepOfSize("big", 4<<10)
	mustDo(t, c, "big", big)
	// The just-inserted entry is never evicted, even over budget.
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("oversized entry not resident: %+v", st)
	}
	if src := mustDo(t, c, "big", nil); src != SourceCache {
		t.Errorf("oversized resident source = %q, want cache", src)
	}
	// The next insert displaces it.
	mustDo(t, c, "next", sweepOfSize("next", 64))
	if src := mustDo(t, c, "big", big); src != SourceEngine {
		t.Errorf("oversized entry survived a later insert; source = %q", src)
	}
}

func TestResultCacheNegativeBudgetDisablesRetention(t *testing.T) {
	c := NewResultCache(-1)
	sw := sweepOfSize("x", 64)
	mustDo(t, c, "x", sw)
	if src := mustDo(t, c, "x", sw); src != SourceEngine {
		t.Errorf("retention-disabled repeat source = %q, want engine", src)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("retention-disabled cache holds %d entries / %d bytes", st.Entries, st.Bytes)
	}
}

// TestResultCacheCoalesceConcurrentWithEviction is the satellite stress:
// single-flight waiters coalescing on hot keys while distinct cold keys
// churn the LRU past its byte budget. Every waiter must get the leader's
// result, and the eviction loop must never break the flights table.
func TestResultCacheCoalesceConcurrentWithEviction(t *testing.T) {
	one := sweepOfSize("seed", 1<<10)
	c := NewResultCache(2 * one.sizeBytes()) // room for ~2 sweeps: constant churn

	const followers = 8
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	leaderRan := make(chan struct{}, 1)

	var wg sync.WaitGroup
	results := make([]Source, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sw, src, err := c.Do(context.Background(), "hot", func() (*Sweep, error) {
				leaderRan <- struct{}{}
				started.Done()
				<-release // hold the flight open so followers pile up
				return sweepOfSize("hot", 1<<10), nil
			})
			if err != nil || sw == nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = src
		}(i)
	}
	started.Wait() // the leader is inside run; everyone else must join it

	// Churn the LRU with cold keys while the hot flight is open.
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("cold-%d", i)
		mustDo(t, c, key, sweepOfSize(key, 1<<10))
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("cold churn produced no evictions; pressure test is vacuous")
	}
	close(release)
	wg.Wait()

	engines, coalesced, cached := 0, 0, 0
	for _, src := range results {
		switch src {
		case SourceEngine:
			engines++
		case SourceCoalesced:
			coalesced++
		case SourceCache:
			cached++
		}
	}
	if engines != 1 {
		t.Errorf("%d hot-key callers led a run, want exactly 1", engines)
	}
	// A follower that races in after the flight closed hits the LRU instead;
	// either way nobody re-ran the engine.
	if coalesced+cached != followers {
		t.Errorf("coalesced %d + cached %d != %d followers", coalesced, cached, followers)
	}
	if got := len(leaderRan); got != 1 {
		t.Errorf("run executed %d times for the hot key, want 1", got+0)
	}
	// The hot sweep was inserted after the flight; it is now the warmest.
	if src := mustDo(t, c, "hot", nil); src != SourceCache {
		t.Errorf("post-flight hot key source = %q, want cache", src)
	}
}

// TestResultCacheFollowerRetriesAfterLeaderCancel pins the takeover
// semantics: a leader that dies of its own context must not poison
// followers whose contexts are still live — one of them re-leads.
func TestResultCacheFollowerRetriesAfterLeaderCancel(t *testing.T) {
	c := NewResultCache(0)
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(context.Background(), "k", func() (*Sweep, error) {
			close(leaderIn)
			<-leaderOut
			return nil, context.DeadlineExceeded // the leader's own deadline fired
		})
	}()
	<-leaderIn

	// The follower joins the doomed flight, then must retry and lead its own
	// successful run. (If it races in after the leader already failed, it
	// simply leads directly — the assertions hold either way.)
	var follower Source
	var followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, follower, followerErr = c.Do(context.Background(), "k", func() (*Sweep, error) {
			return sweepOfSize("k", 64), nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // give the follower time to join the flight
	close(leaderOut)
	wg.Wait()

	if !errors.Is(leaderErr, context.DeadlineExceeded) {
		t.Errorf("leader error = %v, want its own DeadlineExceeded", leaderErr)
	}
	if followerErr != nil {
		t.Fatalf("follower inherited the leader's death: %v", followerErr)
	}
	if follower != SourceEngine {
		t.Errorf("follower source = %q, want engine (it re-led the run)", follower)
	}
	if st := c.Stats(); st.Runs != 2 {
		t.Errorf("runs = %d, want 2 (failed leader + follower takeover)", st.Runs)
	}
}

// TestResultCacheFollowerHonorsOwnContext: a waiter whose own context dies
// while the flight is open returns its own error promptly.
func TestResultCacheFollowerHonorsOwnContext(t *testing.T) {
	c := NewResultCache(0)
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	defer close(leaderOut)
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (*Sweep, error) {
			close(leaderIn)
			<-leaderOut
			return sweepOfSize("k", 64), nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := c.Do(ctx, "k", func() (*Sweep, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled follower took %v to return", elapsed)
	}
}

// TestResultCacheRealErrorPropagates: a genuine engine failure (not a
// context death) reaches followers as-is — no retry storm.
func TestResultCacheRealErrorPropagates(t *testing.T) {
	c := NewResultCache(0)
	boom := errors.New("engine exploded")
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.Do(context.Background(), "k", func() (*Sweep, error) {
			close(leaderIn)
			<-leaderOut
			return nil, boom
		})
	}()
	<-leaderIn
	var followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, followerErr = c.Do(context.Background(), "k", func() (*Sweep, error) {
			t.Error("follower re-ran after a non-context failure")
			return nil, nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // give the follower time to join the flight
	close(leaderOut)
	wg.Wait()
	if !errors.Is(followerErr, boom) {
		t.Errorf("follower error = %v, want the leader's failure", followerErr)
	}
	// The failure is not retained: the next caller leads a fresh run.
	if src := mustDo(t, c, "k", sweepOfSize("k", 64)); src != SourceEngine {
		t.Errorf("post-failure source = %q, want engine", src)
	}
}
