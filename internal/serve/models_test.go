package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"bittactical/internal/nn"
	_ "bittactical/internal/workloads/attention" // registry coverage includes the external zoo
)

// TestSimulateUnknownModelListsRegistry pins the unknown-model error
// contract, the model-side twin of the unknown-backend one: HTTP 400, JSON
// content type, and a body that names every registered workload — including
// zoos registered entirely outside internal/nn — so API users can discover
// what the registry holds.
func TestSimulateUnknownModelListsRegistry(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := postJSON(t, h, "/v1/simulate", `{"model":"NotANet"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown model = %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("400 body %q is not an {error: …} object (err %v)", rec.Body.String(), err)
	}
	if !strings.Contains(body["error"], `"NotANet"`) {
		t.Errorf("400 body does not echo the bad name: %s", body["error"])
	}
	for _, name := range nn.Names() {
		if !strings.Contains(body["error"], name) {
			t.Errorf("400 body does not list registered model %q: %s", name, body["error"])
		}
	}
}

// TestModelsEndpoint: GET /v1/models serves the registry (every name, plus
// the paper's seven separately) so clients need no out-of-band model list.
func TestModelsEndpoint(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := getPath(t, h, "/v1/models")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/models = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var resp struct {
		Models []string `json:"models"`
		Paper  []string `json:"paper"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := nn.Names()
	if len(resp.Models) != len(want) {
		t.Fatalf("models = %v, want %v", resp.Models, want)
	}
	for i, name := range want {
		if resp.Models[i] != name {
			t.Errorf("models[%d] = %q, want %q", i, resp.Models[i], name)
		}
	}
	if len(resp.Paper) != len(nn.ModelNames) {
		t.Errorf("paper = %v, want the paper's %d networks", resp.Paper, len(nn.ModelNames))
	}
	got := make(map[string]bool, len(resp.Models))
	for _, name := range resp.Models {
		got[name] = true
	}
	for _, name := range []string{"BERT-Attn", "GPT2-Attn", "ViT-Attn", "ConvNeXt-DW"} {
		if !got[name] {
			t.Errorf("externally registered workload %q missing from /v1/models", name)
		}
	}
}

// TestSimulateAttentionWorkload is the service-level seam proof for the
// workload registry: a transformer-era model registered entirely outside
// internal/nn — and never mentioned in handler code — simulates end-to-end
// over /v1/simulate, and after the engine run the activation bit-plane
// profile shows up in /metrics.
func TestSimulateAttentionWorkload(t *testing.T) {
	h := testServer(t, 2).Routes()
	body := `{"model":"bert-attn","channel_scale":0.1,"spatial_scale":0.25,` +
		`"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]}`
	rec := postJSON(t, h, "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "BERT-Attn" {
		t.Errorf("model = %q, want the registry's display name BERT-Attn", resp.Model)
	}
	if len(resp.Configs) != 1 || resp.Configs[0].Cycles == 0 || len(resp.Configs[0].Layers) == 0 {
		t.Fatalf("empty attention simulation result: %+v", resp)
	}
	if resp.Configs[0].Speedup <= 1 {
		t.Errorf("TCLe speedup = %.2f, want > 1 on a sparse attention block", resp.Configs[0].Speedup)
	}

	mrec := getPath(t, h, "/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", mrec.Code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	for _, name := range []string{
		"sparsity_slice_values_total",
		"sparsity_slice_zero_values_total",
		"sparsity_slice_zero_bits_total",
	} {
		var v int64
		if err := json.Unmarshal(snap[name], &v); err != nil {
			t.Fatalf("metric %s = %s: %v", name, snap[name], err)
		}
		if v == 0 {
			t.Errorf("metric %s is zero after an engine run", name)
		}
	}
}

// TestFingerprintGrammar pins the content-address grammar across the
// registry refactor: every registered model (old and new) hashes to a
// distinct digest, batch is part of the address, and batch 1 coalesces with
// an unset batch (the canonical form).
func TestFingerprintGrammar(t *testing.T) {
	fp := func(spec ModelSpec) string {
		t.Helper()
		m, zoo, actSeed, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		return Fingerprint(m, zoo, actSeed, nil)
	}
	small := func(model string, batch int) ModelSpec {
		return ModelSpec{Model: model, ChannelScale: 0.1, SpatialScale: 0.25, Batch: batch}
	}

	seen := make(map[string]string)
	for _, name := range nn.Names() {
		d := fp(small(name, 0))
		if prev, ok := seen[d]; ok {
			t.Errorf("models %q and %q share fingerprint %s", prev, name, d)
		}
		seen[d] = name
	}

	if a, b := fp(small("BERT-Attn", 0)), fp(small("bert-attn", 1)); a != b {
		t.Errorf("batch 1 fingerprint %s != unset-batch fingerprint %s (canonicalization broken)", b, a)
	}
	if a, b := fp(small("BERT-Attn", 1)), fp(small("BERT-Attn", 2)); a == b {
		t.Error("batch 2 produced the same fingerprint as batch 1")
	}
	if a, b := fp(small("AlexNet-ES", 1)), fp(small("AlexNet-ES", 4)); a == b {
		t.Error("batch is not hashed for the paper zoo")
	}
}
