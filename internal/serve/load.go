package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions configures one RunLoad drive against a running tclserve.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8371".
	BaseURL string
	// Requests is the total POST /v1/simulate count.
	Requests int
	// Concurrency is the number of in-flight requests (min 1).
	Concurrency int
	// Body is the request template every POST sends.
	Body SimulateRequest
	// UniqueSeeds rotates act_seed per request, defeating the result cache
	// and coalescer — the cold-path (engine) load shape. Off, every request
	// is identical: the hot-path shape that measures coalescing + cache.
	UniqueSeeds bool
	// Client overrides the HTTP client (nil = default, no client timeout —
	// the server's own deadline governs).
	Client *http.Client
}

// LoadReport is RunLoad's outcome.
type LoadReport struct {
	Requests    int         `json:"requests"`
	Errors      int         `json:"errors"`
	WallMs      float64     `json:"wall_ms"`
	RPS         float64     `json:"rps"`
	P50Ms       float64     `json:"p50_ms"`
	P90Ms       float64     `json:"p90_ms"`
	P99Ms       float64     `json:"p99_ms"`
	MeanMs      float64     `json:"mean_ms"`
	StatusCount map[int]int `json:"status_count"`
	// Server-side deltas over the drive, read from /metrics before and
	// after: engine runs led, requests that joined an in-flight identical
	// run, and finished-result LRU hits.
	CoalesceRuns   int64 `json:"coalesce_runs"`
	CoalesceJoined int64 `json:"coalesce_joined"`
	CacheHits      int64 `json:"cache_hits"`
	// CoalesceHitRate is the fraction of successful requests served
	// without their own engine run: (joined + cache hits) / requests.
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
}

// RunLoad drives BaseURL with Requests POSTs at the given concurrency and
// reports client-observed latency percentiles plus the server's coalesce
// and cache deltas.
func RunLoad(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if o.Requests < 1 {
		o.Requests = 1
	}
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	before, err := fetchServeCounters(ctx, client, o.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("tclload: reading /metrics: %w", err)
	}

	type outcome struct {
		ms     float64
		status int
		err    error
	}
	outcomes := make([]outcome, o.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.Requests || ctx.Err() != nil {
					return
				}
				body := o.Body
				if o.UniqueSeeds {
					// Seed 0 means "default"; offset keeps every request
					// distinct from the template and from each other.
					body.ActSeed = int64(1000 + i)
				}
				buf, err := json.Marshal(body)
				if err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				t0 := time.Now()
				status, err := postSimulate(ctx, client, o.BaseURL, buf, body.Stream)
				outcomes[i] = outcome{
					ms:     float64(time.Since(t0)) / float64(time.Millisecond),
					status: status,
					err:    err,
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	after, err := fetchServeCounters(ctx, client, o.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("tclload: reading /metrics: %w", err)
	}

	rep := &LoadReport{
		Requests:    o.Requests,
		WallMs:      float64(wall) / float64(time.Millisecond),
		StatusCount: map[int]int{},
	}
	var lat []float64
	var sum float64
	for _, oc := range outcomes {
		if oc.err != nil || oc.status != http.StatusOK {
			rep.Errors++
		}
		if oc.status != 0 {
			rep.StatusCount[oc.status]++
		}
		if oc.err == nil {
			lat = append(lat, oc.ms)
			sum += oc.ms
		}
	}
	if wall > 0 {
		rep.RPS = float64(o.Requests) / wall.Seconds()
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.P50Ms = percentile(lat, 0.50)
		rep.P90Ms = percentile(lat, 0.90)
		rep.P99Ms = percentile(lat, 0.99)
		rep.MeanMs = sum / float64(len(lat))
	}
	rep.CoalesceRuns = after.runs - before.runs
	rep.CoalesceJoined = after.joined - before.joined
	rep.CacheHits = after.hits - before.hits
	if ok := o.Requests - rep.Errors; ok > 0 {
		rep.CoalesceHitRate = float64(rep.CoalesceJoined+rep.CacheHits) / float64(ok)
	}
	return rep, nil
}

// percentile reads the p-quantile from sorted latencies (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// postSimulate runs one request, draining the body fully (a streaming
// response measures time-to-last-line, same finish line as buffered).
func postSimulate(ctx context.Context, client *http.Client, base string, body []byte, stream bool) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if stream && resp.StatusCode == http.StatusOK {
		// Scan NDJSON lines so a mid-stream error line counts as a failure.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var line struct {
				Type string `json:"type"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Type == "error" {
				return resp.StatusCode, fmt.Errorf("stream error line")
			}
		}
		return resp.StatusCode, sc.Err()
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, err
}

// serveCounters is the /metrics subset the load report differences.
type serveCounters struct {
	runs, joined, hits int64
}

func fetchServeCounters(ctx context.Context, client *http.Client, base string) (serveCounters, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return serveCounters{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return serveCounters{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serveCounters{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	// The snapshot mixes integers with nested objects (gauges, histograms);
	// decode loosely and pick the integer counters out.
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return serveCounters{}, err
	}
	num := func(key string) int64 {
		v, ok := raw[key]
		if !ok {
			return 0
		}
		f, ok := v.(float64)
		if !ok {
			return 0
		}
		return int64(f)
	}
	return serveCounters{
		runs:   num("serve_coalesce_runs"),
		joined: num("serve_coalesce_joined"),
		hits:   num("serve_result_hits"),
	}, nil
}
