package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Shard mode spreads one sweep's (config, layer) grid across worker
// processes: a coordinator (tclserve -workers url,url,…) partitions the
// model's layers round-robin over the workers, each worker simulates its
// layer slice for every config (POST /v1/shard → sim.SimulateGridContext),
// and the coordinator reassembles cells in fixed (config, layer) order.
//
// The merge is deterministic and bit-identical to single-process output at
// any worker count for the same reason the in-process pool is: a layer's
// result depends only on its own filter groups, every cell is an integer
// census, and the reassembly (and the totals summed from it) touches cells
// in the same fixed order however they were computed.

// ShardRequest is the body of POST /v1/shard — the coordinator-to-worker
// leg. Layers indexes the model's layer list; the response carries cell
// [config][i] for Layers[i].
type ShardRequest struct {
	ModelSpec
	Configs     []ConfigSpec `json:"configs"`
	Layers      []int        `json:"layers"`
	Parallelism int          `json:"parallelism,omitempty"`
	TimeoutMs   int64        `json:"timeout_ms,omitempty"`
}

// ShardResponse is one worker's slice of the grid.
type ShardResponse struct {
	Model string `json:"model"`
	// Configs are the worker's resolved config names, for coordinator
	// cross-checking.
	Configs []string `json:"configs"`
	// Cells[k][i] is config k's result for layer Layers[i].
	Cells [][]LayerPayload `json:"cells"`
}

// shardError marks a worker-leg failure so the coordinator can answer 502
// (the request was fine; the backend fleet was not).
type shardError struct {
	worker string
	err    error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard worker %s: %v", e.worker, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// dispatchShards fans the request's layer grid out over s.cfg.Workers and
// reassembles the full [config][layer] grid. emit, when non-nil, observes
// each worker's cells as that worker's response lands (the shard analog of
// the engine's OnLayerResult).
func (s *Server) dispatchShards(ctx context.Context, req SimulateRequest, nLayers int, emit func(cfg, layer int, lp LayerPayload)) ([][]LayerPayload, []string, error) {
	workers := s.cfg.Workers
	// Round-robin layer partition: layer li goes to worker li % W. Slices
	// stay in increasing layer order, so cell i of worker w is layer
	// w + i*W.
	slices := make([][]int, len(workers))
	for li := 0; li < nLayers; li++ {
		w := li % len(workers)
		slices[w] = append(slices[w], li)
	}
	timeoutMs := int64(0)
	if dl, ok := ctx.Deadline(); ok {
		timeoutMs = int64(time.Until(dl) / time.Millisecond)
		if timeoutMs < 1 {
			timeoutMs = 1
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		results  = make([]*ShardResponse, len(workers))
	)
	for w, base := range workers {
		if len(slices[w]) == 0 {
			continue
		}
		sreq := ShardRequest{
			ModelSpec:   req.ModelSpec,
			Configs:     req.Configs,
			Layers:      slices[w],
			Parallelism: req.Parallelism,
			TimeoutMs:   timeoutMs,
		}
		wg.Add(1)
		go func(w int, base string) {
			defer wg.Done()
			s.shardDispatches.Inc()
			resp, err := s.postShard(ctx, base, sreq)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				s.shardFailures.Inc()
				if firstErr == nil {
					firstErr = &shardError{worker: base, err: err}
				}
				return
			}
			results[w] = resp
			if emit != nil {
				for k := range resp.Cells {
					for i, li := range slices[w] {
						emit(k, li, resp.Cells[k][i])
					}
				}
			}
		}(w, base)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	// Reassemble in fixed (config, layer) order and cross-check the workers
	// resolved the same configs.
	var names []string
	nConfigs := 0
	for w, resp := range results {
		if resp == nil {
			continue
		}
		if names == nil {
			names = resp.Configs
			nConfigs = len(resp.Configs)
		} else if len(resp.Configs) != nConfigs {
			return nil, nil, &shardError{worker: workers[w], err: fmt.Errorf("resolved %d configs, coordinator peer resolved %d", len(resp.Configs), nConfigs)}
		}
		if len(resp.Cells) != nConfigs {
			return nil, nil, &shardError{worker: workers[w], err: fmt.Errorf("returned %d cell rows for %d configs", len(resp.Cells), nConfigs)}
		}
		for k := range resp.Cells {
			if len(resp.Cells[k]) != len(slices[w]) {
				return nil, nil, &shardError{worker: workers[w], err: fmt.Errorf("returned %d cells for %d layers", len(resp.Cells[k]), len(slices[w]))}
			}
		}
	}
	grid := make([][]LayerPayload, nConfigs)
	for k := range grid {
		grid[k] = make([]LayerPayload, nLayers)
		for w := range results {
			if results[w] == nil {
				continue
			}
			for i, li := range slices[w] {
				grid[k][li] = results[w].Cells[k][i]
			}
		}
	}
	return grid, names, nil
}

// postShard runs one coordinator-to-worker call.
func (s *Server) postShard(ctx context.Context, base string, sreq ShardRequest) (*ShardResponse, error) {
	body, err := json.Marshal(sreq)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := s.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		return nil, fmt.Errorf("status %d: %s", hresp.StatusCode, bytes.TrimSpace(msg))
	}
	var out ShardResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
