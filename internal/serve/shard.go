package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/sim"
)

// Shard mode spreads one sweep's (config, layer) grid across worker
// processes: a coordinator (tclserve -workers url,url,…) partitions the
// model's layers over the workers — by LPT bin packing on predicted serial
// cycles (sim.EstimateSweepLayerCosts), so the conv1-class layers that
// dominate cost do not pile onto one shard — each worker simulates its
// layer slice for every config (POST /v1/shard → sim.SimulateGridContext),
// and the coordinator reassembles cells in fixed (config, layer) order.
//
// The merge is deterministic and bit-identical to single-process output at
// any worker count AND any partition for the same reason the in-process
// pool is: a layer's result depends only on its own filter groups, every
// cell is an integer census, and the reassembly (and the totals summed from
// it) touches cells in the same fixed order however they were computed.
// Failover preserves the property: a failed worker's layers are
// re-dispatched to surviving workers (already-landed cells are reused, a
// layer is never computed twice), and since every cell is
// partition-independent, a sweep that survives a mid-run worker death is
// byte-identical to one that never saw the failure.

// ShardRequest is the body of POST /v1/shard — the coordinator-to-worker
// leg. Layers indexes the model's layer list; the response carries cell
// [config][i] for Layers[i].
type ShardRequest struct {
	ModelSpec
	Configs     []ConfigSpec `json:"configs"`
	Layers      []int        `json:"layers"`
	Parallelism int          `json:"parallelism,omitempty"`
	TimeoutMs   int64        `json:"timeout_ms,omitempty"`
}

// ShardResponse is one worker's slice of the grid.
type ShardResponse struct {
	Model string `json:"model"`
	// Configs are the worker's resolved config names, for coordinator
	// cross-checking.
	Configs []string `json:"configs"`
	// Cells[k][i] is config k's result for layer Layers[i].
	Cells [][]LayerPayload `json:"cells"`
}

// shardError marks a worker-leg failure so the coordinator can answer 502
// (the request was fine; the backend fleet was not).
type shardError struct {
	worker string
	err    error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard worker %s: %v", e.worker, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// fleetMismatchError marks a cross-worker config divergence: a worker
// resolved the sweep's configs to different names than the coordinator.
// Unlike a transport failure this is NOT retryable — the fleet is
// inconsistent (version skew, divergent back-end registries) and any merge
// would silently mix grids from different designs — so the dispatch loop
// cancels every sibling RPC and fails the request immediately.
type fleetMismatchError struct {
	worker string
	detail string
}

func (e *fleetMismatchError) Error() string {
	return fmt.Sprintf("shard worker %s: config mismatch: %s", e.worker, e.detail)
}

// validateShardResponse checks a worker reply's shape BEFORE any cell is
// merged or emitted: resolved config names elementwise against the
// coordinator's own resolution, then the full Cells rectangle. A malformed
// reply (short rows, wrong counts) is a retryable worker failure; a
// config-name divergence is a fleetMismatchError. Nothing downstream may
// index resp.Cells until this returns nil.
func validateShardResponse(resp *ShardResponse, worker string, names []string, sliceLen int) error {
	if len(resp.Configs) != len(names) {
		return &shardError{worker: worker, err: fmt.Errorf("resolved %d configs, coordinator resolved %d", len(resp.Configs), len(names))}
	}
	for k, name := range resp.Configs {
		if name != names[k] {
			return &fleetMismatchError{worker: worker, detail: fmt.Sprintf("config %d resolved to %q, coordinator resolved %q", k, name, names[k])}
		}
	}
	if len(resp.Cells) != len(names) {
		return &shardError{worker: worker, err: fmt.Errorf("returned %d cell rows for %d configs", len(resp.Cells), len(names))}
	}
	for k := range resp.Cells {
		if len(resp.Cells[k]) != sliceLen {
			return &shardError{worker: worker, err: fmt.Errorf("returned %d cells for %d layers", len(resp.Cells[k]), sliceLen)}
		}
	}
	return nil
}

// partitionShards splits the pending layers over the candidate workers
// according to the configured strategy.
func (s *Server) partitionShards(layers []int, costs []int64, nWorkers int) [][]int {
	switch strings.ToLower(s.cfg.Partition) {
	case "roundrobin", "rr":
		return PartitionRoundRobin(layers, nWorkers)
	default: // "", "lpt"
		return PartitionLPT(layers, costs, nWorkers)
	}
}

// dispatchShards fans the request's layer grid out over s.cfg.Workers with
// retry/failover and reassembles the full [config][layer] grid. emit, when
// non-nil, observes each landed cell exactly once, outside the coordinator
// lock, as its worker's response lands (the shard analog of the engine's
// OnLayerResult).
//
// The dispatch is a bounded round loop: each round partitions the
// still-pending layers over the workers currently believed alive (LPT on
// predicted cost), fires the slices concurrently, folds successful
// responses into the grid, and carries failed workers' slices into the
// next round — landed cells are never recomputed. A worker that fails is
// excluded for the rest of the request and reported to the health tracker.
// Unrecoverable conditions (config mismatch, expired request context, no
// surviving workers) cancel every sibling RPC immediately instead of
// letting them simulate to completion for a doomed request.
func (s *Server) dispatchShards(ctx context.Context, req SimulateRequest, m *nn.Model, cfgs []arch.Config, emit func(cfg, layer int, lp LayerPayload)) ([][]LayerPayload, []string, error) {
	workers := s.cfg.Workers
	nLayers := len(m.Layers)
	names := make([]string, len(cfgs))
	for k := range cfgs {
		names[k] = cfgs[k].Name
	}
	grid := make([][]LayerPayload, len(cfgs))
	for k := range grid {
		grid[k] = make([]LayerPayload, nLayers)
	}
	if nLayers == 0 {
		return grid, names, nil
	}
	// Cost-keyed partitioning; estimation failure (a layer geometry the
	// estimator cannot lower) degrades to unit costs, never to a request
	// error — partition quality is a performance concern, not correctness.
	costs, err := sim.EstimateSweepLayerCosts(cfgs, m)
	if err != nil {
		costs = nil
	}
	// Workers require explicit configs (handleShard rejects an empty list),
	// so a default-sweep request is spelled out before dispatch.
	specs := req.Configs
	if len(specs) == 0 {
		specs = DefaultConfigs()
	}

	var (
		mu       sync.Mutex // guards grid writes, pending bookkeeping, lastErr
		lastErr  error
		excluded = make([]bool, len(workers)) // failed during THIS request
		pending  = allLayers(nLayers)
	)
	maxRounds := 1 + s.shardRetries()
	for round := 0; round < maxRounds && len(pending) > 0; round++ {
		if round > 0 {
			s.shardRetryRounds.Inc()
			s.shardFailoverLayers.Add(int64(len(pending)))
			if err := s.shardBackoffWait(ctx, round); err != nil {
				return nil, nil, err
			}
		}
		// Candidate workers: not failed this request, not known-down. When
		// health says the whole fleet is down, optimistically try everyone
		// not already excluded — the tracker may be stale, and a probe-by
		// -dispatch beats refusing service.
		var cand []int
		for w := range workers {
			if !excluded[w] && (s.health == nil || s.health.dispatchable(w)) {
				cand = append(cand, w)
			}
		}
		if len(cand) == 0 {
			for w := range workers {
				if !excluded[w] {
					cand = append(cand, w)
				}
			}
		}
		if len(cand) == 0 {
			break // every worker has failed this request
		}

		slices := s.partitionShards(pending, costs, len(cand))
		timeoutMs := int64(0)
		if dl, ok := ctx.Deadline(); ok {
			timeoutMs = int64(time.Until(dl) / time.Millisecond)
			if timeoutMs < 1 {
				timeoutMs = 1
			}
		}
		rctx, rcancel := context.WithCancel(ctx)
		var (
			wg          sync.WaitGroup
			nextPending []int
			fatal       error
			remaining   = len(workers) // workers not yet excluded, fleet-wide
		)
		for w := range workers {
			if excluded[w] {
				remaining--
			}
		}
		for ci, w := range cand {
			slice := slices[ci]
			if len(slice) == 0 {
				continue
			}
			sreq := ShardRequest{
				ModelSpec:   req.ModelSpec,
				Configs:     specs,
				Layers:      slice,
				Parallelism: req.Parallelism,
				TimeoutMs:   timeoutMs,
			}
			wg.Add(1)
			go func(w int, base string, slice []int) {
				defer wg.Done()
				s.shardDispatches.Inc()
				resp, err := s.postShard(rctx, base, sreq)
				if err == nil {
					err = validateShardResponse(resp, base, names, len(slice))
				}
				if err != nil {
					s.shardFailures.Inc()
					// Blame the worker only when the round was still live: an
					// RPC aborted by the request deadline or a sibling's
					// cancel says nothing about this worker's health.
					roundLive := rctx.Err() == nil
					if roundLive && s.health != nil {
						s.health.markFailure(w)
					}
					mu.Lock()
					if mm, ok := err.(*fleetMismatchError); ok {
						if fatal == nil {
							fatal = mm
						}
						mu.Unlock()
						rcancel() // satellite: cancel siblings, don't wg.Wait them out
						return
					}
					if roundLive || lastErr == nil {
						lastErr = &shardError{worker: base, err: err}
					}
					if roundLive {
						excluded[w] = true
						remaining--
					}
					doomed := remaining == 0
					nextPending = append(nextPending, slice...)
					mu.Unlock()
					if doomed {
						// No worker left to fail over to: the request cannot
						// succeed, so stop the siblings' simulations now.
						rcancel()
					}
					return
				}
				if s.health != nil {
					s.health.markSuccess(w)
				}
				// Merge under the lock, emit outside it: one slow NDJSON
				// client must not stall every other worker's merge.
				mu.Lock()
				for i, li := range slice {
					for k := range grid {
						grid[k][li] = resp.Cells[k][i]
					}
				}
				mu.Unlock()
				if emit != nil {
					for k := range resp.Cells {
						for i, li := range slice {
							emit(k, li, resp.Cells[k][i])
						}
					}
				}
			}(w, workers[w], slice)
		}
		wg.Wait()
		rcancel()
		if fatal != nil {
			return nil, nil, fatal
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		sort.Ints(nextPending)
		pending = nextPending
	}
	if len(pending) > 0 {
		if lastErr == nil {
			lastErr = &shardError{worker: "(fleet)", err: fmt.Errorf("%d layers undispatched after %d rounds", len(pending), maxRounds)}
		}
		return nil, nil, lastErr
	}
	return grid, names, nil
}

// shardRetries resolves the configured re-dispatch round budget.
func (s *Server) shardRetries() int {
	switch {
	case s.cfg.ShardRetries < 0:
		return 0
	case s.cfg.ShardRetries == 0:
		return defaultShardRetries
	default:
		return s.cfg.ShardRetries
	}
}

// shardBackoffWait pauses before re-dispatch round `round` (1-based),
// doubling the configured base per round, honoring ctx.
func (s *Server) shardBackoffWait(ctx context.Context, round int) error {
	d := s.cfg.ShardBackoff
	if d == 0 {
		d = defaultShardBackoff
	}
	if d < 0 {
		return ctx.Err()
	}
	d <<= uint(round - 1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// postShard runs one coordinator-to-worker call.
func (s *Server) postShard(ctx context.Context, base string, sreq ShardRequest) (*ShardResponse, error) {
	body, err := json.Marshal(sreq)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := s.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		return nil, fmt.Errorf("status %d: %s", hresp.StatusCode, bytes.TrimSpace(msg))
	}
	var out ShardResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
