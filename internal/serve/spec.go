// Package serve is the evaluation service behind cmd/tclserve: the HTTP
// surface over the simulation engine, plus the serving-tier performance
// machinery the engine itself does not provide — content-addressed request
// fingerprinting, request-level single-flight coalescing, a byte-budgeted
// LRU of finished sweeps, NDJSON streaming of per-(config, layer) results,
// and a shard mode that spreads one sweep's (config, layer) grid across
// worker processes and merges it deterministically. See DESIGN.md §13.
package serve

import (
	"errors"
	"fmt"
	"strings"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	_ "bittactical/internal/backend/dstripes" // register the plugin back-end
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// ConfigSpec names one accelerator configuration of the Table-2 family.
type ConfigSpec struct {
	// Backend: "dense" (DaDianNao++ baseline), "front-end" (weight skipping
	// with a bit-parallel back-end), or any registered back-end name
	// (backend.Names(): "TCLp", "TCLe", "dstripes-sm", ...).
	Backend string `json:"backend"`
	// Pattern is a connectivity pattern label (sched.KnownPatternNames);
	// required for "front-end", optional for the serial back-ends (empty =
	// no weight skipping, the Pragmatic/Dynamic-Stripes-like rows).
	Pattern string `json:"pattern,omitempty"`
	// Width is the datapath width: 16 (default) or 8.
	Width int `json:"width,omitempty"`
}

// Build resolves the spec against the process-wide back-end registry. The
// unknown-backend error lists every registered name, so a 400 tells the
// client what the server actually supports.
func (c ConfigSpec) Build() (arch.Config, error) {
	var p sched.Pattern
	if c.Pattern != "" {
		var err error
		p, err = sched.ByName(c.Pattern)
		if err != nil {
			return arch.Config{}, err
		}
	}
	var cfg arch.Config
	switch strings.ToLower(c.Backend) {
	case "dense", "dadiannao++", "dadiannao":
		if c.Pattern != "" {
			return arch.Config{}, fmt.Errorf("backend %q takes no pattern", c.Backend)
		}
		cfg = arch.DaDianNaoPP()
	case "front-end", "frontend", "fe":
		if c.Pattern == "" {
			return arch.Config{}, fmt.Errorf("backend %q requires a pattern", c.Backend)
		}
		cfg = arch.FrontEndOnly(p)
	default:
		// Everything else resolves through the process-wide back-end
		// registry, so plugin back-ends become reachable over the API by
		// registering themselves — no handler changes.
		be, err := backend.Lookup(c.Backend)
		if err != nil {
			return arch.Config{}, fmt.Errorf("unknown backend %q (want dense, front-end, or one of: %s)",
				c.Backend, strings.Join(backend.Names(), ", "))
		}
		cfg = arch.NewTCLBackend(p, be)
	}
	switch c.Width {
	case 0, 16:
	case 8:
		cfg = cfg.WithWidth(fixed.W8)
	default:
		return arch.Config{}, fmt.Errorf("unsupported width %d (want 8 or 16)", c.Width)
	}
	return cfg, nil
}

// DefaultConfigs is the sweep run when a request names none: the dense
// baseline and both serial back-ends under the paper's headline pattern.
func DefaultConfigs() []ConfigSpec {
	return []ConfigSpec{
		{Backend: "dense"},
		{Backend: "tclp", Pattern: "T8<2,5>"},
		{Backend: "tcle", Pattern: "T8<2,5>"},
	}
}

// ModelSpec is the shared model-selection part of every endpoint. Model
// resolves against the process-wide workload registry (nn.Names(), also
// served at GET /v1/models) — registered zoos outside internal/nn, like the
// transformer-era workloads, become reachable with no handler changes.
type ModelSpec struct {
	Model        string  `json:"model"`
	ChannelScale float64 `json:"channel_scale,omitempty"`
	SpatialScale float64 `json:"spatial_scale,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	ActSeed      int64   `json:"act_seed,omitempty"`
	// Batch multiplies sequence workloads' token windows (ZooConfig.Batch);
	// 0 means 1.
	Batch int `json:"batch,omitempty"`
}

// Build instantiates the model with every default applied, returning the
// resolved zoo configuration and activation seed alongside — the canonical
// values Fingerprint hashes, so a request that spells a default explicitly
// coalesces with one that omits it.
func (ms ModelSpec) Build() (*nn.Model, nn.ZooConfig, int64, error) {
	if ms.Model == "" {
		return nil, nn.ZooConfig{}, 0, errors.New("missing model (want one of " + strings.Join(nn.Names(), ", ") + ")")
	}
	zoo := nn.DefaultZoo()
	if ms.ChannelScale > 0 {
		zoo.ChannelScale = ms.ChannelScale
	}
	if ms.SpatialScale > 0 {
		zoo.SpatialScale = ms.SpatialScale
	}
	if ms.Seed != 0 {
		zoo.Seed = ms.Seed
	}
	if ms.Batch > 1 {
		zoo.Batch = ms.Batch
	}
	m, err := nn.BuildModel(ms.Model, zoo)
	if err != nil {
		return nil, nn.ZooConfig{}, 0, err
	}
	actSeed := ms.ActSeed
	if actSeed == 0 {
		actSeed = 7
	}
	return m, zoo, actSeed, nil
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	ModelSpec
	Configs     []ConfigSpec `json:"configs,omitempty"`
	Parallelism int          `json:"parallelism,omitempty"`
	TimeoutMs   int64        `json:"timeout_ms,omitempty"`
	// Stream switches the response to NDJSON: one header line, one line per
	// (config, layer) result the moment it merges, one summary line. See
	// DESIGN.md §13 for the line grammar.
	Stream bool `json:"stream,omitempty"`
}

// LayerPayload is one layer's result as the API reports it.
type LayerPayload struct {
	Name        string `json:"name"`
	Cycles      int64  `json:"cycles"`
	DenseCycles int64  `json:"dense_cycles"`
	MACs        int64  `json:"macs"`
}

// ConfigPayload is one configuration's result as the API reports it.
type ConfigPayload struct {
	Name        string         `json:"name"`
	Cycles      int64          `json:"cycles"`
	DenseCycles int64          `json:"dense_cycles"`
	Speedup     float64        `json:"speedup"`
	Layers      []LayerPayload `json:"layers"`
}

// SimulateResponse is the buffered (non-streaming) response of
// POST /v1/simulate.
type SimulateResponse struct {
	Model string `json:"model"`
	// Fingerprint is the request's content address; two requests with the
	// same fingerprint get bit-identical results (from one engine run).
	Fingerprint string `json:"fingerprint"`
	// Source says where the results came from: "engine" (this request ran
	// the simulation), "coalesced" (joined an identical in-flight request),
	// or "cache" (served from the finished-result LRU).
	Source    string          `json:"source"`
	Configs   []ConfigPayload `json:"configs"`
	ElapsedMs float64         `json:"elapsed_ms"`
}

// payloadFromLayers assembles one config's payload from its per-layer
// results. Both the single-process and the shard-merge paths shape through
// this one function — the totals are integer sums of the per-layer cells
// and the speedup a pure function of the totals, so identical cells give
// byte-identical payloads however the grid was partitioned.
func payloadFromLayers(name string, layers []LayerPayload) ConfigPayload {
	cp := ConfigPayload{Name: name, Layers: layers}
	for _, l := range layers {
		cp.Cycles += l.Cycles
		cp.DenseCycles += l.DenseCycles
	}
	cp.Speedup = 1
	if cp.Cycles > 0 {
		cp.Speedup = float64(cp.DenseCycles) / float64(cp.Cycles)
	}
	return cp
}

// layerPayload projects one engine result onto the API's layer shape.
func layerPayload(l sim.LayerResult) LayerPayload {
	return LayerPayload{Name: l.Name, Cycles: l.Cycles, DenseCycles: l.DenseCycles, MACs: l.MACs}
}

// ScheduleRequest is the body of POST /v1/schedule.
type ScheduleRequest struct {
	ModelSpec
	Pattern   string `json:"pattern"`
	Algorithm string `json:"algorithm,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
}

// ScheduleLayerPayload is one layer's schedule compaction report.
type ScheduleLayerPayload struct {
	Name       string  `json:"name"`
	Filters    int     `json:"filters"`
	DenseCols  int     `json:"dense_columns"`
	Columns    int     `json:"columns"`
	Compaction float64 `json:"compaction"`
}

// ScheduleResponse is the response of POST /v1/schedule.
type ScheduleResponse struct {
	Model      string                 `json:"model"`
	Pattern    string                 `json:"pattern"`
	Algorithm  string                 `json:"algorithm"`
	Layers     []ScheduleLayerPayload `json:"layers"`
	DenseCols  int                    `json:"dense_columns"`
	Columns    int                    `json:"columns"`
	Compaction float64                `json:"compaction"`
	ElapsedMs  float64                `json:"elapsed_ms"`
}

func algorithmByName(name string) (sched.Algorithm, error) {
	switch strings.ToLower(name) {
	case "", "algorithm1", "alg1":
		return sched.Algorithm1, nil
	case "greedy":
		return sched.GreedySimple, nil
	case "matching":
		return sched.Matching, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want algorithm1, greedy, or matching)", name)
}
