package serve

import "sort"

// Layer partitioning for shard mode. Round-robin (the original scheme)
// ignores that conv1-class layers dominate predicted cycles by orders of
// magnitude, so the shard that drew conv1 plus every W-th layer finishes
// long after its peers and sets the sweep's latency. The coordinator now
// packs layers onto workers with LPT (longest processing time first)
// greedy bin packing keyed on sim.EstimateSweepLayerCosts — the classic
// 4/3-approximation of makespan scheduling, which is deterministic and
// effectively optimal at fleet sizes of a handful of workers.

// PartitionLPT assigns the given layer indices to nWorkers shards by LPT
// bin packing on the predicted per-layer costs (costs[li] is layer li's
// key; a nil costs treats every layer as unit cost, degenerating to a
// balanced count split). The result is deterministic: layers are placed in
// (cost desc, index asc) order onto the least-loaded shard (ties to the
// lowest shard index), and each shard's slice is returned in increasing
// layer order. Every input index lands in exactly one shard; shards may be
// empty when there are fewer layers than workers.
func PartitionLPT(layers []int, costs []int64, nWorkers int) [][]int {
	if nWorkers < 1 {
		nWorkers = 1
	}
	order := make([]int, len(layers))
	copy(order, layers)
	costOf := func(li int) int64 {
		if costs == nil || li < 0 || li >= len(costs) {
			return 1
		}
		return costs[li]
	}
	sort.SliceStable(order, func(i, j int) bool {
		ci, cj := costOf(order[i]), costOf(order[j])
		if ci != cj {
			return ci > cj
		}
		return order[i] < order[j]
	})
	slices := make([][]int, nWorkers)
	loads := make([]int64, nWorkers)
	for _, li := range order {
		best := 0
		for w := 1; w < nWorkers; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		slices[best] = append(slices[best], li)
		loads[best] += costOf(li)
	}
	for w := range slices {
		sort.Ints(slices[w])
	}
	return slices
}

// PartitionRoundRobin is the original scheme — layers[i] goes to worker
// i % nWorkers — kept as the LPT comparison baseline (bench shard-balance
// stats) and as an explicit opt-out (Config.Partition "roundrobin").
func PartitionRoundRobin(layers []int, nWorkers int) [][]int {
	if nWorkers < 1 {
		nWorkers = 1
	}
	slices := make([][]int, nWorkers)
	for i, li := range layers {
		w := i % nWorkers
		slices[w] = append(slices[w], li)
	}
	return slices
}

// ShardBalance summarizes a partition under a cost model: the predicted
// cost of the heaviest shard, the mean shard cost over all shards (an
// empty shard is an idle worker the fleet paid for, so it counts), and
// their ratio (1.0 = perfectly balanced). The coordinator's sweep latency
// tracks Max; Max/Mean is the imbalance the BENCH_serve gate holds.
type ShardBalance struct {
	Max       float64 `json:"max"`
	Mean      float64 `json:"mean"`
	Imbalance float64 `json:"imbalance"`
}

// BalanceOf computes the balance stats of slices under costs (nil costs =
// unit cost per layer).
func BalanceOf(slices [][]int, costs []int64) ShardBalance {
	var b ShardBalance
	var total float64
	for _, sl := range slices {
		var load float64
		for _, li := range sl {
			c := int64(1)
			if costs != nil && li >= 0 && li < len(costs) {
				c = costs[li]
			}
			load += float64(c)
		}
		total += load
		if load > b.Max {
			b.Max = load
		}
	}
	if len(slices) > 0 {
		b.Mean = total / float64(len(slices))
	}
	if b.Mean > 0 {
		b.Imbalance = b.Max / b.Mean
	}
	return b
}

// allLayers returns [0, n) — the full-grid layer list the coordinator
// partitions on the first dispatch round.
func allLayers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
