package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bittactical/internal/metrics"
)

// Worker liveness for shard mode. Each worker carries a three-state
// liveness machine:
//
//	unknown ──success──▶ up ◀──success── down
//	   │                  │                ▲
//	   └──── failures ────┴── ≥ threshold ─┘
//
// fed from two sides: a background prober GETs every worker's /healthz on
// Config.HealthInterval, and the dispatch path reports every shard RPC
// outcome. One failure makes a worker suspect (consecutive-failure count);
// healthFailThreshold consecutive failures mark it down; any success snaps
// it back up. Down workers are excluded from partitioning (dispatch falls
// back to trying everyone when the whole fleet looks down — an optimistic
// probe beats refusing service on possibly-stale state). Per-worker
// serve_shard_worker_up_<i> gauges and the serve_shard_workers_up
// aggregate export the machine's view.

const (
	workerUnknown int32 = iota
	workerUp
	workerDown
)

// healthFailThreshold is how many consecutive failures (probe or dispatch)
// demote a worker to down. Two means a single lost RPC keeps the worker in
// rotation — transient network hiccups should not drain the fleet — while
// a dead process is out within two probe periods.
const healthFailThreshold = 2

// workerHealth is one worker's liveness state.
type workerHealth struct {
	base  string
	state atomic.Int32 // workerUnknown | workerUp | workerDown
	fails atomic.Int32 // consecutive failures since the last success
}

// fleetHealth owns the per-worker state machines and the probe loop.
type fleetHealth struct {
	workers  []*workerHealth
	client   *http.Client
	interval time.Duration

	probes        *metrics.Counter
	probeFailures *metrics.Counter

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newFleetHealth builds the tracker and registers its gauges; the probe
// loop starts only when interval > 0 (stop with close()).
func newFleetHealth(workers []string, client *http.Client, interval time.Duration, reg *metrics.Registry) *fleetHealth {
	fh := &fleetHealth{
		client:        client,
		interval:      interval,
		probes:        reg.Counter("serve_shard_probes_total"),
		probeFailures: reg.Counter("serve_shard_probe_failures_total"),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for i, base := range workers {
		w := &workerHealth{base: base}
		fh.workers = append(fh.workers, w)
		reg.Func(fmt.Sprintf("serve_shard_worker_up_%d", i), func() int64 {
			if w.state.Load() == workerDown {
				return 0
			}
			return 1
		})
	}
	reg.Func("serve_shard_workers_up", func() int64 {
		var up int64
		for _, w := range fh.workers {
			if w.state.Load() != workerDown {
				up++
			}
		}
		return up
	})
	if interval > 0 {
		go fh.run()
	} else {
		close(fh.done)
	}
	return fh
}

// run is the probe loop: every interval, probe the whole fleet
// concurrently (a hung worker must not delay its peers' probes).
func (fh *fleetHealth) run() {
	defer close(fh.done)
	t := time.NewTicker(fh.interval)
	defer t.Stop()
	for {
		select {
		case <-fh.stop:
			return
		case <-t.C:
			fh.probeAll()
		}
	}
}

// probeAll probes every worker once and folds the outcomes into the state
// machines. Exposed (package-internal) so tests can drive transitions
// without waiting on the ticker.
func (fh *fleetHealth) probeAll() {
	var wg sync.WaitGroup
	for i := range fh.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fh.probes.Inc()
			if fh.probe(fh.workers[i].base) {
				fh.markSuccess(i)
			} else {
				fh.probeFailures.Inc()
				fh.markFailure(i)
			}
		}(i)
	}
	wg.Wait()
}

// probe GETs one worker's /healthz under a deadline bounded by the probe
// period (minimum 1s so a tight test interval still tolerates scheduling
// jitter).
func (fh *fleetHealth) probe(base string) bool {
	d := fh.interval
	if d <= 0 || d < time.Second {
		d = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := fh.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markSuccess snaps worker i up and clears its failure streak.
func (fh *fleetHealth) markSuccess(i int) {
	w := fh.workers[i]
	w.fails.Store(0)
	w.state.Store(workerUp)
}

// markFailure books one failure against worker i, demoting it to down at
// the consecutive-failure threshold.
func (fh *fleetHealth) markFailure(i int) {
	w := fh.workers[i]
	if w.fails.Add(1) >= healthFailThreshold {
		w.state.Store(workerDown)
	}
}

// dispatchable reports whether worker i should receive new work: anything
// not known-down (unknown is optimistic — a fresh coordinator has no
// evidence against anyone).
func (fh *fleetHealth) dispatchable(i int) bool {
	return fh.workers[i].state.Load() != workerDown
}

// close stops the probe loop and waits for it to exit. Idempotent.
func (fh *fleetHealth) close() {
	fh.stopOnce.Do(func() { close(fh.stop) })
	<-fh.done
}
