package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"bittactical/internal/metrics"
)

// Source says how a request got its results.
type Source string

const (
	// SourceEngine: this request led the engine run (or the shard dispatch).
	SourceEngine Source = "engine"
	// SourceCoalesced: this request joined an identical in-flight run.
	SourceCoalesced Source = "coalesced"
	// SourceCache: this request hit the finished-result LRU.
	SourceCache Source = "cache"
)

// Sweep is one finished simulate request as the cache retains it: the
// response payload minus the per-request fields (source, elapsed time).
type Sweep struct {
	Model   string
	Configs []ConfigPayload
}

// sizeBytes estimates the sweep's retained footprint for the byte budget:
// struct sizes plus string bytes. An estimate is fine — the budget bounds
// memory order-of-magnitude, it is not an accounting ledger.
func (sw *Sweep) sizeBytes() int64 {
	const layerFixed = 64 // LayerPayload struct + string header slack
	const configFixed = 96
	n := int64(len(sw.Model)) + 64
	for i := range sw.Configs {
		c := &sw.Configs[i]
		n += configFixed + int64(len(c.Name))
		for j := range c.Layers {
			n += layerFixed + int64(len(c.Layers[j].Name))
		}
	}
	return n
}

// flight is one in-progress engine run; followers block on done.
type flight struct {
	done chan struct{}
	sw   *Sweep
	err  error
}

// cacheEntry is one retained sweep in LRU position.
type cacheEntry struct {
	key  string
	sw   *Sweep
	size int64
}

// ResultCache is the request-level generalization of the engine's
// PlaneCache: a byte-budgeted LRU of finished sweeps keyed by request
// fingerprint, with single-flight admission so N concurrent identical
// requests share one engine run. Unlike the PlaneCache's per-entry
// sync.Once (planes are tiny and permanent until reset), flights here are
// explicit: a leader can fail or be cancelled, and a waiting follower whose
// own context is still live must then be able to take over the run rather
// than inherit the corpse.
type ResultCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List               // front = most recent
	entries map[string]*list.Element // key -> *cacheEntry element
	flights map[string]*flight

	hits, misses, evictions atomic.Int64
	runs, joined            atomic.Int64
}

// DefaultCacheBudget retains roughly a few thousand full-zoo sweeps.
const DefaultCacheBudget = 64 << 20

// NewResultCache builds a cache with the given byte budget: 0 means
// DefaultCacheBudget, negative disables retention entirely (requests still
// coalesce while in flight, nothing is kept after).
func NewResultCache(budget int64) *ResultCache {
	if budget == 0 {
		budget = DefaultCacheBudget
	}
	return &ResultCache{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Do returns the sweep for key: from the LRU when finished earlier, by
// joining an identical in-flight run, or by leading the run itself (calling
// run exactly once across all concurrent callers of the same key). A
// follower whose leader failed with a cancellation error retries the loop —
// the leader's deadline is not the follower's — while a follower whose own
// ctx has expired returns its own error.
func (c *ResultCache) Do(ctx context.Context, key string, run func() (*Sweep, error)) (*Sweep, Source, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			sw := el.Value.(*cacheEntry).sw
			c.mu.Unlock()
			c.hits.Add(1)
			return sw, SourceCache, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, SourceCoalesced, ctx.Err()
			}
			if f.err == nil {
				c.joined.Add(1)
				return f.sw, SourceCoalesced, nil
			}
			if ctx.Err() != nil {
				return nil, SourceCoalesced, ctx.Err()
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				// The leader died of its own context; this caller is still
				// live, so loop and lead (or re-join) a fresh run.
				continue
			}
			return nil, SourceCoalesced, f.err
		}
		c.misses.Add(1)
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		c.runs.Add(1)
		sw, err := run()
		f.sw, f.err = sw, err
		c.mu.Lock()
		delete(c.flights, key)
		if err == nil {
			c.insertLocked(key, sw)
		}
		c.mu.Unlock()
		close(f.done)
		return sw, SourceEngine, err
	}
}

// insertLocked retains the sweep and evicts from the cold end until the
// budget holds again. The entry being inserted is never evicted — a sweep
// larger than the whole budget simply passes through as the only resident
// until the next insert displaces it.
func (c *ResultCache) insertLocked(key string, sw *Sweep) {
	if c.budget < 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A slower leader finished after an identical faster one (possible
		// across the retry loop); keep the resident entry.
		c.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, sw: sw, size: sw.sizeBytes()}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.size
	for c.bytes > c.budget && c.lru.Len() > 1 {
		cold := c.lru.Back()
		ce := cold.Value.(*cacheEntry)
		c.lru.Remove(cold)
		delete(c.entries, ce.key)
		c.bytes -= ce.size
		c.evictions.Add(1)
	}
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Runs, Joined            int64
	Entries                 int
	Bytes                   int64
}

// Stats snapshots the counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load(),
		Runs: c.runs.Load(), Joined: c.joined.Load(),
		Entries: entries, Bytes: bytes,
	}
}

// RegisterMetrics exposes the cache in the registry:
// <prefix>_result_{hits,misses,evictions,entries,bytes} for the LRU and
// <prefix>_coalesce_{runs,joined} for the single-flight, read live at
// snapshot time.
func (c *ResultCache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Func(prefix+"_result_hits", c.hits.Load)
	r.Func(prefix+"_result_misses", c.misses.Load)
	r.Func(prefix+"_result_evictions", c.evictions.Load)
	r.Func(prefix+"_result_entries", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.lru.Len())
	})
	r.Func(prefix+"_result_bytes", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.bytes
	})
	r.Func(prefix+"_coalesce_runs", c.runs.Load)
	r.Func(prefix+"_coalesce_joined", c.joined.Load)
}
