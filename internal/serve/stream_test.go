package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// parseStream splits an NDJSON response into its typed lines.
type streamLines struct {
	header  *streamHeader
	layers  []streamLayer
	summary *streamSummary
	errLine *streamError
	order   []string // line types in arrival order
}

func parseStream(t *testing.T, body string) streamLines {
	t.Helper()
	var out streamLines
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &tag); err != nil {
			t.Fatalf("non-JSON stream line %q: %v", line, err)
		}
		out.order = append(out.order, tag.Type)
		switch tag.Type {
		case "header":
			out.header = &streamHeader{}
			if err := json.Unmarshal(line, out.header); err != nil {
				t.Fatal(err)
			}
		case "layer":
			var l streamLayer
			if err := json.Unmarshal(line, &l); err != nil {
				t.Fatal(err)
			}
			out.layers = append(out.layers, l)
		case "summary":
			out.summary = &streamSummary{}
			if err := json.Unmarshal(line, out.summary); err != nil {
				t.Fatal(err)
			}
		case "error":
			out.errLine = &streamError{}
			if err := json.Unmarshal(line, out.errLine); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown stream line type %q", tag.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSimulateStreaming pins the NDJSON contract for a leader run: header
// first, one layer line per (config, layer) cell, summary last — and the
// streamed values agree exactly with the buffered response for the same
// request.
func TestSimulateStreaming(t *testing.T) {
	h := testServer(t, 2).Routes()
	configs := `"configs":[{"backend":"dense"},{"backend":"tcle","pattern":"T8<2,5>"}]`

	rec := postJSON(t, h, "/v1/simulate", smallBody(configs+`,"stream":true`))
	if rec.Code != http.StatusOK {
		t.Fatalf("streaming simulate = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	st := parseStream(t, rec.Body.String())
	if st.header == nil || st.summary == nil || st.errLine != nil {
		t.Fatalf("stream shape: order = %v", st.order)
	}
	if st.order[0] != "header" || st.order[len(st.order)-1] != "summary" {
		t.Errorf("stream framing: order = %v, want header first and summary last", st.order)
	}
	if st.header.Source != string(SourceEngine) {
		t.Errorf("leader stream source = %q, want engine", st.header.Source)
	}
	if len(st.header.Configs) != 2 {
		t.Fatalf("header names %d configs, want 2", len(st.header.Configs))
	}

	// A buffered run of the identical request (fresh server: no cache) is
	// the ground truth the stream must reproduce cell for cell.
	brec := postJSON(t, testServer(t, 2).Routes(), "/v1/simulate", smallBody(configs))
	if brec.Code != http.StatusOK {
		t.Fatalf("buffered simulate = %d", brec.Code)
	}
	var buffered SimulateResponse
	if err := json.Unmarshal(brec.Body.Bytes(), &buffered); err != nil {
		t.Fatal(err)
	}
	if buffered.Fingerprint != st.header.Fingerprint {
		t.Errorf("stream fingerprint %s != buffered %s", st.header.Fingerprint, buffered.Fingerprint)
	}
	nLayers := len(buffered.Configs[0].Layers)
	if want := 2 * nLayers; len(st.layers) != want {
		t.Fatalf("stream carried %d layer lines, want %d (2 configs x %d layers)", len(st.layers), want, nLayers)
	}
	// Every (config, layer) coordinate appears exactly once and matches the
	// buffered cell — order-independent, since engine workers interleave.
	seen := map[[2]int]streamLayer{}
	for _, l := range st.layers {
		key := [2]int{l.Config, l.Layer}
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate stream cell (%d,%d)", l.Config, l.Layer)
		}
		seen[key] = l
	}
	for k, cp := range buffered.Configs {
		for i, bl := range cp.Layers {
			sl, ok := seen[[2]int{k, i}]
			if !ok {
				t.Fatalf("stream missing cell (%d,%d)", k, i)
			}
			if sl.Name != bl.Name || sl.Cycles != bl.Cycles || sl.DenseCycles != bl.DenseCycles || sl.MACs != bl.MACs {
				t.Errorf("stream cell (%d,%d) = %+v, buffered = %+v", k, i, sl, bl)
			}
		}
	}
	for i, cp := range buffered.Configs {
		got := st.summary.Configs[i]
		if got.Name != cp.Name || got.Cycles != cp.Cycles || got.DenseCycles != cp.DenseCycles || got.Speedup != cp.Speedup {
			t.Errorf("summary config %d = %+v, buffered = %+v", i, got, cp)
		}
	}
}

// TestSimulateStreamCachedReplay: a streamed repeat of a finished request
// replays the identical cells from the LRU, in grid order, with zero new
// engine work.
func TestSimulateStreamCachedReplay(t *testing.T) {
	h := testServer(t, 2).Routes()
	configs := `"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`
	if rec := postJSON(t, h, "/v1/simulate", smallBody(configs)); rec.Code != http.StatusOK {
		t.Fatalf("warm-up simulate = %d", rec.Code)
	}

	before := poolItems()
	rec := postJSON(t, h, "/v1/simulate", smallBody(configs+`,"stream":true`))
	if rec.Code != http.StatusOK {
		t.Fatalf("cached stream = %d: %s", rec.Code, rec.Body.String())
	}
	if delta := poolItems() - before; delta != 0 {
		t.Errorf("cached stream ran %d engine items, want 0", delta)
	}
	st := parseStream(t, rec.Body.String())
	if st.header == nil || st.header.Source != string(SourceCache) {
		t.Fatalf("cached stream header = %+v, want source cache", st.header)
	}
	// Replay is in grid order: layer index strictly increases within the
	// single config.
	for i, l := range st.layers {
		if l.Config != 0 || l.Layer != i {
			t.Fatalf("replay out of grid order at line %d: (%d,%d)", i, l.Config, l.Layer)
		}
	}
	if st.summary == nil {
		t.Fatal("cached stream has no summary line")
	}
}

// TestSimulateStreamBadRequest: request errors are caught before any line
// goes out, so the client still gets a plain JSON 400.
func TestSimulateStreamBadRequest(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := postJSON(t, h, "/v1/simulate", `{"model":"NotANet","stream":true}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad streamed request = %d, want 400", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("pre-stream error Content-Type = %q, want application/json", ct)
	}
}

// TestSimulateStreamTimeout: once the stream has committed its 200, an
// engine failure becomes a terminal error line instead of a status code.
func TestSimulateStreamTimeout(t *testing.T) {
	h := testServer(t, 2).Routes()
	rec := postJSON(t, h, "/v1/simulate",
		`{"model":"AlexNet-ES","channel_scale":0.3,"spatial_scale":0.4,"stream":true,"timeout_ms":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("streamed timeout = %d, want 200 (status committed by the header line)", rec.Code)
	}
	st := parseStream(t, rec.Body.String())
	if st.errLine == nil {
		t.Fatalf("streamed timeout carried no error line: order = %v", st.order)
	}
	if st.summary != nil {
		t.Error("streamed timeout carried both an error line and a summary")
	}
	if last := st.order[len(st.order)-1]; last != "error" {
		t.Errorf("error line is not terminal: order = %v", st.order)
	}
	if !strings.Contains(st.errLine.Error, "deadline") {
		t.Errorf("error line %q does not name the deadline", st.errLine.Error)
	}
}

// TestSimulateStreamCoalescedFollower: followers of an in-flight identical
// request stream the full replay once the leader finishes.
func TestSimulateStreamCoalescedFollower(t *testing.T) {
	const n = 4
	s := testServer(t, n)
	h := s.Routes()
	body := smallBody(`"configs":[{"backend":"tcle","pattern":"T8<2,5>"}],"stream":true`)
	type res struct {
		code int
		st   streamLines
	}
	results := make(chan res, n)
	for i := 0; i < n; i++ {
		go func() {
			rec := postJSON(t, h, "/v1/simulate", body)
			results <- res{code: rec.Code, st: parseStream(t, rec.Body.String())}
		}()
	}
	var sources []string
	var layerCounts []int
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("concurrent stream = %d", r.code)
		}
		if r.st.header == nil || r.st.summary == nil {
			t.Fatalf("concurrent stream shape: order = %v", r.st.order)
		}
		sources = append(sources, r.st.header.Source)
		layerCounts = append(layerCounts, len(r.st.layers))
	}
	engines := 0
	for _, src := range sources {
		if src == string(SourceEngine) {
			engines++
		}
	}
	if engines != 1 {
		t.Errorf("concurrent streams report sources %v, want exactly one engine", sources)
	}
	for i := 1; i < n; i++ {
		if layerCounts[i] != layerCounts[0] {
			t.Errorf("stream %d carried %d layer lines, stream 0 carried %d — every caller gets the full grid", i, layerCounts[i], layerCounts[0])
		}
	}
	if st := s.Cache().Stats(); st.Runs != 1 {
		t.Errorf("cache led %d runs for %d identical streams, want 1", st.Runs, n)
	}
}
