package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newWorkerFleet starts n plain tclserve workers on loopback and returns a
// coordinator fronting them.
func newWorkerFleet(t *testing.T, n int) *Server {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		w := New(Config{MaxInFlight: 4, DefaultTimeout: 30 * time.Second, MaxTimeout: time.Minute, Parallelism: 2})
		ts := httptest.NewServer(w.Routes())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return newCoordinator(t, urls)
}

// newCoordinator fronts the given worker base URLs (background probing off;
// tests drive liveness through dispatch outcomes or probeAll directly).
func newCoordinator(t *testing.T, urls []string) *Server {
	t.Helper()
	coord := New(Config{
		MaxInFlight:    4,
		DefaultTimeout: 30 * time.Second,
		MaxTimeout:     time.Minute,
		Workers:        urls,
		ShardBackoff:   time.Millisecond,
	})
	t.Cleanup(coord.Close)
	return coord
}

// goodWorker starts one real worker and returns its base URL.
func goodWorker(t *testing.T) string {
	t.Helper()
	w := New(Config{MaxInFlight: 4, DefaultTimeout: 30 * time.Second, MaxTimeout: time.Minute, Parallelism: 2})
	ts := httptest.NewServer(w.Routes())
	t.Cleanup(ts.Close)
	return ts.URL
}

// resolvedNames resolves config specs exactly like the coordinator does, so
// fault-injecting worker fixtures can return the CORRECT names (exercising
// the malformed-shape path, not the name-mismatch path) or deliberately
// wrong ones.
func resolvedNames(t *testing.T, specs []ConfigSpec) []string {
	t.Helper()
	cfgs, err := buildConfigs(specs)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(cfgs))
	for i := range cfgs {
		names[i] = cfgs[i].Name
	}
	return names
}

// referenceSweep runs the request single-process and returns the marshalled
// config payloads — the byte-identity baseline.
func referenceSweep(t *testing.T, body string) string {
	t.Helper()
	rec := postJSON(t, testServer(t, 2).Routes(), "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("single-process simulate = %d: %s", rec.Code, rec.Body.String())
	}
	var ref SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return string(refJSON)
}

// TestShardEndpoint exercises the worker leg directly: a layer-slice grid
// whose cells match the corresponding layers of a full local sweep.
func TestShardEndpoint(t *testing.T) {
	h := testServer(t, 2).Routes()
	full := postJSON(t, h, "/v1/simulate", smallBody(`"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`))
	if full.Code != http.StatusOK {
		t.Fatalf("full simulate = %d", full.Code)
	}
	var ref SimulateResponse
	if err := json.Unmarshal(full.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}
	nLayers := len(ref.Configs[0].Layers)
	if nLayers < 3 {
		t.Fatalf("model has %d layers; slice test needs >= 3", nLayers)
	}

	// An out-of-order, non-contiguous slice: the response must follow the
	// request's layer list, not the model's.
	layers := []int{nLayers - 1, 0, 2}
	body := smallBody(fmt.Sprintf(`"configs":[{"backend":"tcle","pattern":"T8<2,5>"}],"layers":[%d,0,2]`, nLayers-1))
	rec := postJSON(t, h, "/v1/shard", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/shard = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ShardResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 1 || len(resp.Cells[0]) != len(layers) {
		t.Fatalf("shard cells shape %dx%d, want 1x%d", len(resp.Cells), len(resp.Cells[0]), len(layers))
	}
	for i, li := range layers {
		got, want := resp.Cells[0][i], ref.Configs[0].Layers[li]
		if got != want {
			t.Errorf("shard cell %d (layer %d) = %+v, full sweep has %+v", i, li, got, want)
		}
	}

	// Bad slices are request errors.
	for name, bad := range map[string]string{
		"out of range": smallBody(fmt.Sprintf(`"configs":[{"backend":"dense"}],"layers":[%d]`, nLayers)),
		"no layers":    smallBody(`"configs":[{"backend":"dense"}]`),
		"no configs":   smallBody(`"layers":[0]`),
	} {
		if rec := postJSON(t, h, "/v1/shard", bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: /v1/shard = %d, want 400", name, rec.Code)
		}
	}
}

// TestShardCoordinatorBitIdentical is the acceptance gate: the coordinator
// path produces byte-identical config payloads to a single-process run, at
// every worker count.
func TestShardCoordinatorBitIdentical(t *testing.T) {
	body := smallBody(`"configs":[{"backend":"dense"},{"backend":"tclp","pattern":"T8<2,5>"},{"backend":"tcle","pattern":"T8<2,5>"}]`)

	single := postJSON(t, testServer(t, 2).Routes(), "/v1/simulate", body)
	if single.Code != http.StatusOK {
		t.Fatalf("single-process simulate = %d", single.Code)
	}
	var ref SimulateResponse
	if err := json.Unmarshal(single.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref.Configs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3} {
		coord := newWorkerFleet(t, workers)
		rec := postJSON(t, coord.Routes(), "/v1/simulate", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%d-worker simulate = %d: %s", workers, rec.Code, rec.Body.String())
		}
		var got SimulateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint != ref.Fingerprint {
			t.Errorf("%d workers: fingerprint %s != single-process %s", workers, got.Fingerprint, ref.Fingerprint)
		}
		gotJSON, err := json.Marshal(got.Configs)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(refJSON) {
			t.Errorf("%d workers: sharded payload differs from single-process:\n%s\nvs\n%s", workers, gotJSON, refJSON)
		}
	}
}

// TestShardCoordinatorStreams: the coordinator's streamed response carries
// the full grid, cell values identical to single-process.
func TestShardCoordinatorStreams(t *testing.T) {
	configs := `"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`
	single := postJSON(t, testServer(t, 2).Routes(), "/v1/simulate", smallBody(configs))
	if single.Code != http.StatusOK {
		t.Fatalf("single-process simulate = %d", single.Code)
	}
	var ref SimulateResponse
	if err := json.Unmarshal(single.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}

	coord := newWorkerFleet(t, 2)
	rec := postJSON(t, coord.Routes(), "/v1/simulate", smallBody(configs+`,"stream":true`))
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded stream = %d: %s", rec.Code, rec.Body.String())
	}
	st := parseStream(t, rec.Body.String())
	if st.header == nil || st.summary == nil {
		t.Fatalf("sharded stream shape: order = %v", st.order)
	}
	if len(st.layers) != len(ref.Configs[0].Layers) {
		t.Fatalf("sharded stream carried %d layer lines, want %d", len(st.layers), len(ref.Configs[0].Layers))
	}
	for _, l := range st.layers {
		want := ref.Configs[0].Layers[l.Layer]
		if l.Name != want.Name || l.Cycles != want.Cycles || l.DenseCycles != want.DenseCycles || l.MACs != want.MACs {
			t.Errorf("sharded stream cell (0,%d) = %+v, single-process has %+v", l.Layer, l, want)
		}
	}
	if got, want := st.summary.Configs[0], ref.Configs[0]; got.Cycles != want.Cycles || got.Speedup != want.Speedup {
		t.Errorf("sharded summary = %+v, single-process totals %+v", got, want)
	}
}

// TestShardFailoverBrokenWorker: a fleet with one broken worker no longer
// answers 502 — the broken worker's layer slice fails over to the survivor
// and the merged sweep is byte-identical to single-process.
func TestShardFailoverBrokenWorker(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)
	body := smallBody(`"configs":[{"backend":"dense"},{"backend":"tcle","pattern":"T8<2,5>"}]`)
	refJSON := referenceSweep(t, body)

	coord := newCoordinator(t, []string{goodWorker(t), broken.URL})
	rec := postJSON(t, coord.Routes(), "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover simulate = %d, want 200 (%s)", rec.Code, rec.Body.String())
	}
	var got SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got.Configs)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != refJSON {
		t.Errorf("failover payload differs from single-process:\n%s\nvs\n%s", gotJSON, refJSON)
	}
}

// TestShardFailoverStreamNoDuplicates: a streamed sweep that survives a
// worker failure carries every (config, layer) cell exactly once — the
// failed worker's reply is validated before anything is emitted, so nothing
// streams twice.
func TestShardFailoverStreamNoDuplicates(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)
	configs := `"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`

	single := postJSON(t, testServer(t, 2).Routes(), "/v1/simulate", smallBody(configs))
	if single.Code != http.StatusOK {
		t.Fatalf("single-process simulate = %d", single.Code)
	}
	var ref SimulateResponse
	if err := json.Unmarshal(single.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}

	coord := newCoordinator(t, []string{goodWorker(t), broken.URL})
	rec := postJSON(t, coord.Routes(), "/v1/simulate", smallBody(configs+`,"stream":true`))
	if rec.Code != http.StatusOK {
		t.Fatalf("failover stream = %d: %s", rec.Code, rec.Body.String())
	}
	st := parseStream(t, rec.Body.String())
	if st.summary == nil {
		t.Fatalf("failover stream never reached the summary: order = %v", st.order)
	}
	if len(st.layers) != len(ref.Configs[0].Layers) {
		t.Fatalf("failover stream carried %d layer lines, want %d (each cell exactly once)", len(st.layers), len(ref.Configs[0].Layers))
	}
	seen := make(map[int]bool)
	for _, l := range st.layers {
		if seen[l.Layer] {
			t.Errorf("layer %d streamed more than once", l.Layer)
		}
		seen[l.Layer] = true
		want := ref.Configs[0].Layers[l.Layer]
		if l.Cycles != want.Cycles || l.DenseCycles != want.DenseCycles {
			t.Errorf("failover stream cell (0,%d) = %+v, single-process has %+v", l.Layer, l, want)
		}
	}
}

// TestShardAllWorkersBrokenIs502: when every worker fails, failover has
// nowhere to go and the answer is a Bad Gateway naming a worker, as JSON.
func TestShardAllWorkersBrokenIs502(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "worker on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)

	coord := newCoordinator(t, []string{broken.URL})
	rec := postJSON(t, coord.Routes(), "/v1/simulate", smallBody(`"configs":[{"backend":"dense"}]`))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("broken-fleet simulate = %d, want 502 (%s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("502 Content-Type = %q, want application/json", ct)
	}
	if !strings.Contains(rec.Body.String(), broken.URL) {
		t.Errorf("502 body does not name the failing worker: %s", rec.Body.String())
	}
	// The failure is not cached: with a healthy fleet the same fingerprint
	// succeeds.
	coord2 := newWorkerFleet(t, 2)
	if rec := postJSON(t, coord2.Routes(), "/v1/simulate", smallBody(`"configs":[{"backend":"dense"}]`)); rec.Code != http.StatusOK {
		t.Errorf("healthy-fleet retry = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestShardMalformedResponseNoPanic: a worker replying with a
// structurally-valid ShardResponse whose cell grid is SHORT (fewer cells
// than requested layers) used to panic the coordinator — the stream path
// emitted cells before validating the shape. Now the reply is validated
// before any merge or emit: alone, the malformed worker yields a 502 that
// names it; alongside a good worker its slice fails over and the sweep
// completes byte-identically.
func TestShardMalformedResponseNoPanic(t *testing.T) {
	specs := []ConfigSpec{{Backend: "tcle", Pattern: "T8<2,5>"}}
	names := resolvedNames(t, specs)
	// The fixture returns CORRECT resolved names (so it does not trip the
	// config cross-check) with zero-length cell rows.
	malformed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := ShardResponse{Model: "AlexNet-ES", Configs: names, Cells: make([][]LayerPayload, len(names))}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(malformed.Close)
	configs := `"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`

	// Alone (streamed, the old panic path): 502-class terminal, no panic.
	solo := newCoordinator(t, []string{malformed.URL})
	rec := postJSON(t, solo.Routes(), "/v1/simulate", smallBody(configs+`,"stream":true`))
	if rec.Code != http.StatusOK {
		t.Fatalf("streamed request committed %d before the failure, want 200+error line (%s)", rec.Code, rec.Body.String())
	}
	st := parseStream(t, rec.Body.String())
	if st.errLine == nil {
		t.Fatalf("malformed-fleet stream carried no error line: %s", rec.Body.String())
	}
	if !strings.Contains(st.errLine.Error, malformed.URL) {
		t.Errorf("stream error does not name the malformed worker: %s", st.errLine.Error)
	}
	if len(st.layers) != 0 {
		t.Errorf("%d cells emitted from a malformed reply (validate-before-emit violated)", len(st.layers))
	}

	// Alone, unstreamed: plain 502 naming the worker.
	rec = postJSON(t, newCoordinator(t, []string{malformed.URL}).Routes(), "/v1/simulate", smallBody(configs))
	if rec.Code != http.StatusBadGateway || !strings.Contains(rec.Body.String(), malformed.URL) {
		t.Errorf("malformed-fleet simulate = %d (%s), want 502 naming the worker", rec.Code, rec.Body.String())
	}

	// With a survivor: the malformed worker's slice fails over.
	body := smallBody(configs)
	refJSON := referenceSweep(t, body)
	rec = postJSON(t, newCoordinator(t, []string{goodWorker(t), malformed.URL}).Routes(), "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover from malformed worker = %d: %s", rec.Code, rec.Body.String())
	}
	var got SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got.Configs)
	if string(gotJSON) != refJSON {
		t.Errorf("failover payload differs from single-process")
	}
}

// TestShardConfigMismatchIs502: a worker that resolves the sweep's configs
// to different names than the coordinator marks the fleet inconsistent —
// NOT a retryable failure (re-dispatching could silently merge grids from
// divergent designs), even when healthy workers remain.
func TestShardConfigMismatchIs502(t *testing.T) {
	specs := []ConfigSpec{{Backend: "dense"}, {Backend: "tcle", Pattern: "T8<2,5>"}}
	names := resolvedNames(t, specs)
	wrong := make([]string, len(names))
	copy(wrong, names)
	wrong[len(wrong)-1] = "NotTheSameDesign"
	mismatch := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var sreq ShardRequest
		_ = json.NewDecoder(r.Body).Decode(&sreq)
		// Shape is perfectly well-formed — only the names diverge.
		resp := ShardResponse{Model: "AlexNet-ES", Configs: wrong, Cells: make([][]LayerPayload, len(wrong))}
		for k := range resp.Cells {
			resp.Cells[k] = make([]LayerPayload, len(sreq.Layers))
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(mismatch.Close)

	coord := newCoordinator(t, []string{goodWorker(t), mismatch.URL})
	rec := postJSON(t, coord.Routes(), "/v1/simulate", smallBody(`"configs":[{"backend":"dense"},{"backend":"tcle","pattern":"T8<2,5>"}]`))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("mismatched-fleet simulate = %d, want 502 (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "config mismatch") || !strings.Contains(rec.Body.String(), mismatch.URL) {
		t.Errorf("502 body does not attribute the config mismatch: %s", rec.Body.String())
	}
}

// TestShardMidResponseAbortFailsOver: a worker that dies mid-response
// (partial JSON, then an aborted connection) is a transport failure like
// any other — its slice fails over and the sweep stays byte-identical.
func TestShardMidResponseAbortFailsOver(t *testing.T) {
	abort := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"model":"AlexNet-ES","configs":["Dense`))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(abort.Close)

	body := smallBody(`"configs":[{"backend":"dense"},{"backend":"tclp","pattern":"T8<2,5>"}]`)
	refJSON := referenceSweep(t, body)
	coord := newCoordinator(t, []string{goodWorker(t), abort.URL})
	rec := postJSON(t, coord.Routes(), "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover from aborted worker = %d: %s", rec.Code, rec.Body.String())
	}
	var got SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got.Configs)
	if string(gotJSON) != refJSON {
		t.Errorf("mid-abort failover payload differs from single-process:\n%s\nvs\n%s", gotJSON, refJSON)
	}
}

// TestFingerprintSensitivity: the content address moves with every value
// the engine output depends on, and only those.
func TestFingerprintSensitivity(t *testing.T) {
	base := `{"model":"AlexNet-ES","channel_scale":0.1,"spatial_scale":0.25,"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]`
	fpOf := func(body string) string {
		t.Helper()
		rec := postJSON(t, testServer(t, 2).Routes(), "/v1/simulate", body+"}")
		if rec.Code != http.StatusOK {
			t.Fatalf("simulate = %d: %s", rec.Code, rec.Body.String())
		}
		var resp SimulateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Fingerprint
	}
	ref := fpOf(base)
	// Execution knobs do not move the fingerprint.
	for name, same := range map[string]string{
		"parallelism": base + `,"parallelism":3`,
		"timeout":     base + `,"timeout_ms":59000`,
	} {
		if got := fpOf(same); got != ref {
			t.Errorf("%s moved the fingerprint: %s vs %s", name, got, ref)
		}
	}
	// Content knobs do.
	for name, diff := range map[string]string{
		"weight seed":   strings.Replace(base, `"spatial_scale":0.25`, `"spatial_scale":0.25,"seed":2`, 1),
		"act seed":      strings.Replace(base, `"spatial_scale":0.25`, `"spatial_scale":0.25,"act_seed":9`, 1),
		"channel scale": strings.Replace(base, `"channel_scale":0.1`, `"channel_scale":0.12`, 1),
		"pattern":       strings.Replace(base, "T8<2,5>", "L8<1,6>", 1),
		"backend":       strings.Replace(base, "tcle", "tclp", 1),
		"width":         strings.Replace(base, `"pattern":"T8<2,5>"`, `"pattern":"T8<2,5>","width":8`, 1),
		"extra config":  strings.Replace(base, `"configs":[`, `"configs":[{"backend":"dense"},`, 1),
	} {
		if got := fpOf(diff); got == ref {
			t.Errorf("%s did NOT move the fingerprint", name)
		}
	}
}
