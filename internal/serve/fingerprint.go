package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
)

// Fingerprint content-addresses one simulate request: a stable hex digest
// over everything that determines the result bits — the resolved model
// identity (name, zoo scales, weight seed), the activation seed, and each
// resolved configuration (name, back-end, pattern, scheduler, width, and
// the datapath geometry) in request order.
//
// Everything that does NOT change the result is deliberately excluded:
// parallelism (the engine's shard merge is bit-identical at any worker
// count), timeouts, and the streaming flag. Defaults are hashed in their
// applied form — ModelSpec.Build and ConfigSpec.Build canonicalize first —
// so `{"model":"alexnet-es"}` and the same request with every default
// spelled out coalesce onto one digest, and one engine run.
func Fingerprint(m *nn.Model, zoo nn.ZooConfig, actSeed int64, cfgs []arch.Config) string {
	h := sha256.New()
	// v2 guards the grammar itself: bump when the canonical form changes so
	// stale cache keys can never alias fresh ones (v2 added batch).
	fmt.Fprintf(h, "tclserve-fp-v2\nmodel=%s cs=%g ss=%g seed=%d act=%d w=%d batch=%d\n",
		m.Name, zoo.ChannelScale, zoo.SpatialScale, zoo.Seed, actSeed, zoo.Width, zoo.BatchSize())
	for _, cfg := range cfgs {
		writeConfig(h, cfg)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeConfig(w io.Writer, cfg arch.Config) {
	be := "-"
	if cfg.Backend != nil {
		be = cfg.Backend.Name()
	}
	fmt.Fprintf(w, "cfg=%s be=%s pat=%s alg=%d w=%d t=%d f=%d l=%d win=%d ps=%d\n",
		cfg.Name, be, cfg.Pattern.Name, cfg.Scheduler, cfg.Width,
		cfg.Tiles, cfg.FiltersPerTile, cfg.Lanes, cfg.WindowsPerTile, cfg.PsumRegsPerPE)
}
