package serve

import (
	"encoding/json"
	"net/http"
	"sync"
)

// The streaming protocol: `"stream": true` turns /v1/simulate into an
// NDJSON response (Content-Type application/x-ndjson), one JSON object per
// line, flushed as written:
//
//	{"type":"header", "model":…, "fingerprint":…, "source":…, "configs":[names]}
//	{"type":"layer", "config":k, "layer":i, "name":…, "cycles":…, "dense_cycles":…, "macs":…}  × (configs × layers)
//	{"type":"summary", "configs":[{name, cycles, dense_cycles, speedup}], "elapsed_ms":…}
//	{"type":"error", "error":…}   — terminal, replaces the summary
//
// When the request leads an engine run, layer lines are emitted the moment
// each (config, layer) cell merges — concurrently-finishing layers
// interleave in arbitrary order, which is why every line carries its own
// (config, layer) coordinates. A coalesced or cached request emits the same
// lines from the finished sweep, in grid order. The set of lines (and every
// value on them) is identical either way; only line order varies.

type streamHeader struct {
	Type        string   `json:"type"`
	Model       string   `json:"model"`
	Fingerprint string   `json:"fingerprint"`
	Source      string   `json:"source"`
	Configs     []string `json:"configs"`
}

type streamLayer struct {
	Type        string `json:"type"`
	Config      int    `json:"config"`
	Layer       int    `json:"layer"`
	Name        string `json:"name"`
	Cycles      int64  `json:"cycles"`
	DenseCycles int64  `json:"dense_cycles"`
	MACs        int64  `json:"macs"`
}

type streamConfigTotal struct {
	Name        string  `json:"name"`
	Cycles      int64   `json:"cycles"`
	DenseCycles int64   `json:"dense_cycles"`
	Speedup     float64 `json:"speedup"`
}

type streamSummary struct {
	Type      string              `json:"type"`
	Configs   []streamConfigTotal `json:"configs"`
	ElapsedMs float64             `json:"elapsed_ms"`
}

type streamError struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

// streamWriter serializes NDJSON lines onto one response. Layer lines
// arrive from whichever engine worker finished a layer, so every write is
// mutex-serialized and flushed whole — a reader sees complete lines only.
type streamWriter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
	started bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	f, _ := w.(http.Flusher)
	return &streamWriter{w: w, flusher: f, enc: json.NewEncoder(w)}
}

// writeLine emits one NDJSON line; the first line commits the 200 status
// and the NDJSON content type.
func (sw *streamWriter) writeLine(v any) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if !sw.started {
		sw.started = true
		sw.w.Header().Set("Content-Type", "application/x-ndjson")
		sw.w.WriteHeader(http.StatusOK)
	}
	_ = sw.enc.Encode(v)
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// Started reports whether any line (hence the status) went out.
func (sw *streamWriter) Started() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.started
}

func (sw *streamWriter) header(model, fp string, src Source, configs []string) {
	sw.writeLine(streamHeader{Type: "header", Model: model, Fingerprint: fp, Source: string(src), Configs: configs})
}

func (sw *streamWriter) layer(cfg, layer int, lp LayerPayload) {
	sw.writeLine(streamLayer{
		Type: "layer", Config: cfg, Layer: layer,
		Name: lp.Name, Cycles: lp.Cycles, DenseCycles: lp.DenseCycles, MACs: lp.MACs,
	})
}

func (sw *streamWriter) summary(resp *SimulateResponse) {
	s := streamSummary{Type: "summary", ElapsedMs: resp.ElapsedMs}
	for _, c := range resp.Configs {
		s.Configs = append(s.Configs, streamConfigTotal{
			Name: c.Name, Cycles: c.Cycles, DenseCycles: c.DenseCycles, Speedup: c.Speedup,
		})
	}
	sw.writeLine(s)
}

func (sw *streamWriter) error(msg string) {
	sw.writeLine(streamError{Type: "error", Error: msg})
}
