package compress

import (
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/memory"
)

// FuzzCodecRoundTrip checks losslessness and size-accounting agreement on
// arbitrary byte-derived code streams.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 255, 128, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		vs := make([]int32, (len(raw)+1)/2)
		for i := range vs {
			v := int32(int8(raw[2*i])) * 129
			if 2*i+1 < len(raw) {
				v += int32(int8(raw[2*i+1]))
			}
			vs[i] = fixed.Sat(int64(v), fixed.W16)
		}
		if err := Validate(vs, fixed.W16); err != nil {
			t.Fatal(err)
		}
		if EncodedBits(vs, fixed.W16) != memory.CompressedBits(vs, fixed.W16) {
			t.Fatal("codec size disagrees with accounting")
		}
	})
}

// FuzzDecoderRobust feeds arbitrary bytes to the decoder: it must either
// decode or error, never panic or loop.
func FuzzDecoderRobust(f *testing.F) {
	f.Add([]byte{0xFF, 0x01, 0x02}, uint8(16))
	f.Fuzz(func(t *testing.T, buf []byte, nRaw uint8) {
		n := int(nRaw)
		_, _ = Decode(buf, n, fixed.W16)
	})
}
