// Package compress implements the off-chip compression Bit-Tactical applies
// to all layers (Section 6): zero compression plus fine-grain per-group
// dynamic precision. Values travel in groups of 16 as
//
//	[16-bit zero mask][5-bit precision header][nnz × (window+1) bits]
//
// where the header carries the group's (Hi, Lo) dynamic-precision window as
// a width and shift, and each non-zero value is its sign bit plus the
// magnitude bits inside the window. The encoding is exactly the layout the
// memory package's size accounting assumes — a test asserts bit-for-bit
// agreement — and it is lossless by construction because the group window
// covers every member's significant bits.
package compress

import (
	"errors"
	"fmt"

	"bittactical/internal/bits"
	"bittactical/internal/fixed"
)

// GroupSize is the compression granularity (matches the 16 activation lanes
// the dispatcher feeds).
const GroupSize = 16

// BitWriter packs bits little-endian-first into a byte slice.
type BitWriter struct {
	buf  []byte
	nbit int
}

// WriteBits appends the low n bits of v.
func (w *BitWriter) WriteBits(v uint32, n int) {
	for i := 0; i < n; i++ {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[w.nbit/8] |= 1 << uint(w.nbit%8)
		}
		w.nbit++
	}
}

// Bits returns the number of bits written.
func (w *BitWriter) Bits() int64 { return int64(w.nbit) }

// Bytes returns the packed stream.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes bits written by BitWriter.
type BitReader struct {
	buf  []byte
	nbit int
}

// NewBitReader wraps a packed stream.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits extracts n bits.
func (r *BitReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		idx := r.nbit / 8
		if idx >= len(r.buf) {
			return 0, errors.New("compress: bitstream exhausted")
		}
		if r.buf[idx]&(1<<uint(r.nbit%8)) != 0 {
			v |= 1 << uint(i)
		}
		r.nbit++
	}
	return v, nil
}

// Encode compresses a code stream at width w. The stream is processed in
// groups of GroupSize; a short tail forms a final small group.
func Encode(vs []int32, w fixed.Width) []byte {
	bw := &BitWriter{}
	for i := 0; i < len(vs); i += GroupSize {
		j := i + GroupSize
		if j > len(vs) {
			j = len(vs)
		}
		encodeGroup(bw, vs[i:j], w)
	}
	return bw.Bytes()
}

// EncodedBits returns the exact bit length Encode produces.
func EncodedBits(vs []int32, w fixed.Width) int64 {
	bw := &BitWriter{}
	for i := 0; i < len(vs); i += GroupSize {
		j := i + GroupSize
		if j > len(vs) {
			j = len(vs)
		}
		encodeGroup(bw, vs[i:j], w)
	}
	return bw.Bits()
}

func encodeGroup(bw *BitWriter, vs []int32, w fixed.Width) {
	var mask uint32
	for k, v := range vs {
		if v != 0 {
			mask |= 1 << uint(k)
		}
	}
	bw.WriteBits(mask, len(vs))
	p := bits.GroupPrecision(vs, w)
	if mask == 0 {
		bw.WriteBits(0, 5) // header only; an all-zero group costs 21 bits
		return
	}
	window := p.Hi - p.Lo + 1
	// Header: the window width; Lo is derived at decode time from a second
	// field packed into the same 5 bits' companion (shift rides along with
	// the width in a fixed 5+4 layout for 16-bit data).
	bw.WriteBits(uint32(window), 5)
	bw.WriteBits(uint32(p.Lo), 4)
	for _, v := range vs {
		if v == 0 {
			continue
		}
		neg := v < 0
		m := v
		if neg {
			m = -m
		}
		sign := uint32(0)
		if neg {
			sign = 1
		}
		bw.WriteBits(sign, 1)
		bw.WriteBits(uint32(m)>>uint(p.Lo), window)
	}
}

// Decode reconstructs n values from a compressed stream.
func Decode(buf []byte, n int, w fixed.Width) ([]int32, error) {
	br := NewBitReader(buf)
	out := make([]int32, 0, n)
	for len(out) < n {
		g := GroupSize
		if rem := n - len(out); rem < g {
			g = rem
		}
		vals, err := decodeGroup(br, g)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	return out, nil
}

func decodeGroup(br *BitReader, g int) ([]int32, error) {
	mask, err := br.ReadBits(g)
	if err != nil {
		return nil, err
	}
	window, err := br.ReadBits(5)
	if err != nil {
		return nil, err
	}
	out := make([]int32, g)
	if mask == 0 {
		return out, nil
	}
	lo, err := br.ReadBits(4)
	if err != nil {
		return nil, err
	}
	for k := 0; k < g; k++ {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		sign, err := br.ReadBits(1)
		if err != nil {
			return nil, err
		}
		mag, err := br.ReadBits(int(window))
		if err != nil {
			return nil, err
		}
		v := int32(mag << lo)
		if sign == 1 {
			v = -v
		}
		out[k] = v
	}
	return out, nil
}

// Ratio returns raw/compressed size for a stream.
func Ratio(vs []int32, w fixed.Width) float64 {
	if len(vs) == 0 {
		return 1
	}
	raw := int64(len(vs)) * int64(w)
	enc := EncodedBits(vs, w)
	if enc == 0 {
		return 1
	}
	return float64(raw) / float64(enc)
}

// Validate round-trips a stream and returns an error naming the first
// mismatch (the losslessness witness used in tests and by callers that
// want an end-to-end check on real tensors).
func Validate(vs []int32, w fixed.Width) error {
	got, err := Decode(Encode(vs, w), len(vs), w)
	if err != nil {
		return err
	}
	for i := range vs {
		if got[i] != vs[i] {
			return fmt.Errorf("compress: value %d decoded as %d, want %d", i, got[i], vs[i])
		}
	}
	return nil
}
