package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bittactical/internal/fixed"
	"bittactical/internal/memory"
	"bittactical/internal/sparsity"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0, 5)
	w.WriteBits(0b11, 2)
	if w.Bits() != 26 {
		t.Fatalf("wrote %d bits", w.Bits())
	}
	r := NewBitReader(w.Bytes())
	for _, c := range []struct {
		n    int
		want uint32
	}{{3, 0b101}, {16, 0xFFFF}, {5, 0}, {2, 0b11}} {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("ReadBits(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
	if _, err := r.ReadBits(16); err == nil {
		t.Error("reading past the end must fail")
	}
}

func TestEncodeDecodeKnown(t *testing.T) {
	vs := []int32{0, 100, -100, 0, 32767, 1, 0, 0, -32767, 0, 0, 0, 0, 0, 0, 0}
	if err := Validate(vs, fixed.W16); err != nil {
		t.Fatal(err)
	}
}

func TestAllZeroGroup(t *testing.T) {
	vs := make([]int32, 32)
	enc := Encode(vs, fixed.W16)
	// Two groups × 21 bits = 42 bits -> 6 bytes.
	if len(enc) != 6 {
		t.Errorf("all-zero stream is %d bytes, want 6", len(enc))
	}
	if err := Validate(vs, fixed.W16); err != nil {
		t.Fatal(err)
	}
}

func TestShortTailGroup(t *testing.T) {
	vs := []int32{5, 0, -7}
	if err := Validate(vs, fixed.W16); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raws []int32) bool {
		vs := make([]int32, len(raws))
		for i, r := range raws {
			vs[i] = fixed.Sat(int64(r), fixed.W16)
		}
		return Validate(vs, fixed.W16) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRoundTrip8Bit(t *testing.T) {
	f := func(raws []int32) bool {
		vs := make([]int32, len(raws))
		for i, r := range raws {
			vs[i] = fixed.Sat(int64(r), fixed.W8)
		}
		return Validate(vs, fixed.W8) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodedBitsMatchesMemoryAccounting(t *testing.T) {
	// The memory package's size model and the real bitstream must agree
	// bit-for-bit, on realistic streams and on adversarial ones.
	rng := rand.New(rand.NewSource(1))
	m := sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 9, SigmaLog2: 2.2, NegFrac: 0.3, SigBits: 5}
	vs := make([]int32, 4096)
	for i := range vs {
		vs[i] = m.Sample(rng, fixed.W16)
	}
	if got, want := EncodedBits(vs, fixed.W16), memory.CompressedBits(vs, fixed.W16); got != want {
		t.Errorf("codec %d bits != accounting %d bits", got, want)
	}
	f := func(raws []int32) bool {
		xs := make([]int32, len(raws))
		for i, r := range raws {
			xs[i] = fixed.Sat(int64(r), fixed.W16)
		}
		return EncodedBits(xs, fixed.W16) == memory.CompressedBits(xs, fixed.W16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRatioOnSparseStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := sparsity.ActModel{ZeroFrac: 0.45, MeanLog2: 9, SigmaLog2: 2, SigBits: 5}
	vs := make([]int32, 8192)
	for i := range vs {
		vs[i] = m.Sample(rng, fixed.W16)
	}
	r := Ratio(vs, fixed.W16)
	if r < 1.5 {
		t.Errorf("compression ratio %.2f too low for a sparse low-precision stream", r)
	}
	if Ratio(nil, fixed.W16) != 1 {
		t.Error("empty stream ratio should be 1")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	vs := []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	enc := Encode(vs, fixed.W16)
	if _, err := Decode(enc[:len(enc)/2], len(vs), fixed.W16); err == nil {
		t.Error("decoding a truncated stream must fail")
	}
}
