package datapath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bittactical/internal/arch"
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// mkLowered builds a pruned conv layer with realistic activations.
func mkLowered(t *testing.T, seed int64, k, c, in int, wSp float64) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: k, C: c, R: 3, S: 3, Stride: 1, Pad: 1, InH: in, InW: in}
	l.Weights = tensor.New(k, c, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, wSp)
	act := tensor.New(1, c, in, in)
	sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 8, SigmaLog2: 2, NegFrac: 0.2, SigBits: 5}.
		FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

// runOne schedules filter f of the lowered layer under cfg and executes it
// structurally for the window.
func runOne(t *testing.T, cfg arch.Config, lw *nn.Lowered, f, win int) (int64, Stats) {
	t.Helper()
	filter := sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f), nil)
	var s *sched.Schedule
	if cfg.HasFrontEnd() {
		s = sched.ScheduleFilter(filter, cfg.Pattern, cfg.Scheduler)
		if err := sched.Verify(filter, cfg.Pattern, s); err != nil {
			t.Fatal(err)
		}
	} else {
		s = denseSchedule(filter)
	}
	src := func(w, step, lane int) int32 { return lw.Act(f, w, step, lane) }
	psum, stats, err := RunFilter(cfg, filter, s, src, win)
	if err != nil {
		t.Fatal(err)
	}
	return psum, stats
}

// denseSchedule builds the value-agnostic one-column-per-step schedule.
func denseSchedule(f sched.Filter) *sched.Schedule {
	s := &sched.Schedule{Lanes: f.Lanes, DenseSteps: f.Steps}
	for st := 0; st < f.Steps; st++ {
		col := sched.Column{Head: st, Advance: 1, Entries: make([]sched.Entry, f.Lanes)}
		for ln := 0; ln < f.Lanes; ln++ {
			if w := f.At(st, ln); w != 0 {
				col.Entries[ln] = sched.Entry{Weight: w, SrcStep: st, SrcLane: ln}
			}
		}
		s.Columns = append(s.Columns, col)
	}
	return s
}

func TestStructuralMatchesReference(t *testing.T) {
	lw := mkLowered(t, 1, 4, 24, 6, 0.6)
	for _, cfg := range []arch.Config{
		arch.DaDianNaoPP(),
		arch.FrontEndOnly(sched.T(2, 5)),
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
		arch.NewTCL(sched.L(4, 3), arch.TCLe),
	} {
		for f := 0; f < lw.Filters; f++ {
			for win := 0; win < lw.WindowCount; win += 7 {
				psum, _ := runOne(t, cfg, lw, f, win)
				want := lw.ReferenceOutput(f, win)
				if psum != want {
					t.Fatalf("%s: filter %d window %d: structural %d != reference %d",
						cfg.Name, f, win, psum, want)
				}
			}
		}
	}
}

func TestStructuralCyclesMatchSimCostModel(t *testing.T) {
	// Per column the structural duration must equal the analytic cost
	// model's: max over lanes of the per-activation serial cost. Check the
	// filter-total: Σ columns max-lane-cost == structural PE cycles.
	lw := mkLowered(t, 2, 2, 20, 5, 0.5)
	for _, be := range []arch.BackEnd{arch.TCLp, arch.TCLe} {
		cfg := arch.NewTCL(sched.T(2, 5), be)
		filter := sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(0), nil)
		s := sched.ScheduleFilter(filter, cfg.Pattern, cfg.Scheduler)
		win := 3
		var want int64
		for _, col := range s.Columns {
			peMax := 1
			for _, e := range col.Entries {
				if e.Weight == 0 {
					continue
				}
				a := lw.Act(0, win, e.SrcStep, e.SrcLane)
				var c int
				if be == arch.TCLe {
					c = bits.OneffsetCount(a, fixed.W16)
				} else {
					c = bits.ValuePrecision(a, fixed.W16).Bits()
				}
				if c > peMax {
					peMax = c
				}
			}
			want += int64(peMax)
		}
		src := func(w, step, lane int) int32 { return lw.Act(0, w, step, lane) }
		_, stats, err := RunFilter(cfg, filter, s, src, win)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Cycles != want {
			t.Errorf("%s: structural cycles %d != analytic %d", be, stats.Cycles, want)
		}
	}
}

func TestASUSlideReusesABRs(t *testing.T) {
	loads := 0
	src := func(win, step, lane int) int32 { loads++; return int32(step*16 + lane) }
	asu := NewASU(16, 2, 0, src)
	asu.SlideTo(0, 100)
	if asu.Loads != 3 {
		t.Fatalf("initial fill loaded %d ABRs, want 3", asu.Loads)
	}
	// Advance by 1: exactly one ABR refills; two survive in place.
	asu.SlideTo(1, 100)
	if asu.Loads != 4 {
		t.Errorf("slide-by-1 loaded %d total, want 4", asu.Loads)
	}
	if asu.Rotations != 1 {
		t.Errorf("rotations = %d, want 1", asu.Rotations)
	}
	// Values follow the logical order after rotation.
	for dt := 0; dt <= 2; dt++ {
		v, err := asu.Select(dt, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := int32((1+dt)*16 + 5); v != want {
			t.Errorf("Select(%d, 5) = %d, want %d", dt, v, want)
		}
	}
	// Advance beyond the window: everything refills.
	before := asu.Loads
	asu.SlideTo(50, 100)
	if asu.Loads != before+3 {
		t.Errorf("long jump loaded %d, want 3 fresh ABRs", asu.Loads-before)
	}
}

func TestASUSelectErrors(t *testing.T) {
	asu := NewASU(16, 1, 0, func(win, step, lane int) int32 { return 1 })
	asu.SlideTo(0, 0) // only step 0 exists; lookahead slot is invalid
	if _, err := asu.Select(1, 0); err == nil {
		t.Error("Select beyond maxStep should fail")
	}
	if _, err := asu.Select(5, 0); err == nil {
		t.Error("Select outside window should fail")
	}
	if _, err := asu.Select(0, 3); err != nil {
		t.Errorf("valid select failed: %v", err)
	}
}

func TestTermsForSemantics(t *testing.T) {
	// TCLe: terms reconstruct the value; count == oneffsets.
	for _, v := range []int32{0x008F, -5, 1, 32767, -32767} {
		ts := termsFor(v, arch.TCLe.Impl(), fixed.W16)
		var sum int64
		for _, x := range ts {
			sum += x.Factor
		}
		if sum != int64(v) {
			t.Errorf("TCLe terms of %d sum to %d", v, sum)
		}
		if len(ts) != bits.OneffsetCount(v, fixed.W16) {
			t.Errorf("TCLe term count %d != oneffsets", len(ts))
		}
	}
	// TCLp: stream length == precision bits; factors reconstruct.
	for _, v := range []int32{0x008E, -6, 255, -32767} {
		ts := termsFor(v, arch.TCLp.Impl(), fixed.W16)
		if len(ts) != bits.ValuePrecision(v, fixed.W16).Bits() {
			t.Errorf("TCLp stream of %d has %d steps, want %d",
				v, len(ts), bits.ValuePrecision(v, fixed.W16).Bits())
		}
		var sum int64
		for _, x := range ts {
			sum += x.Factor
		}
		if sum != int64(v) {
			t.Errorf("TCLp terms of %d sum to %d", v, sum)
		}
	}
	// Zero costs nothing serially (column sync supplies the floor).
	if len(termsFor(0, arch.TCLe.Impl(), fixed.W16)) != 0 || len(termsFor(0, arch.TCLp.Impl(), fixed.W16)) != 0 {
		t.Error("zero activation must stream no terms")
	}
	// Bit-parallel: exactly one step.
	if len(termsFor(1234, arch.BitParallel.Impl(), fixed.W16)) != 1 {
		t.Error("bit-parallel must take one step")
	}
}

func TestStructuralProperty(t *testing.T) {
	// Random filters and activations: structural psum == direct dot
	// product, for both serial back-ends.
	f := func(seed int64, sp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := 4 + rng.Intn(6)
		w := sparsity.RandomSparseFilter(rng, steps, 16, float64(sp%10)/10)
		for i := range w {
			if rng.Intn(2) == 0 {
				w[i] = -w[i]
			}
		}
		filter := sched.NewFilter(16, steps, w, nil)
		acts := make([]int32, steps*16)
		for i := range acts {
			acts[i] = int32(rng.Intn(2001) - 1000)
		}
		src := func(win, step, lane int) int32 { return acts[step*16+lane] }
		var want int64
		for st := 0; st < steps; st++ {
			for ln := 0; ln < 16; ln++ {
				want += int64(w[st*16+ln]) * int64(acts[st*16+ln])
			}
		}
		for _, be := range []arch.BackEnd{arch.TCLp, arch.TCLe} {
			cfg := arch.NewTCL(sched.T(2, 5), be)
			s := sched.ScheduleFilter(filter, cfg.Pattern, cfg.Scheduler)
			got, _, err := RunFilter(cfg, filter, s, src, 0)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestRunFilterRejectsX(t *testing.T) {
	filter := sched.NewFilter(16, 2, make([]int32, 32), nil)
	cfg := arch.FrontEndOnly(sched.X())
	s := sched.ScheduleFilter(filter, sched.X(), sched.Algorithm1)
	if _, _, err := RunFilter(cfg, filter, s, func(int, int, int) int32 { return 0 }, 0); err == nil {
		t.Error("X<inf,15> must be rejected: it has no physical datapath")
	}
}

func TestABRLoadCountTracksALCSkips(t *testing.T) {
	// A schedule that skips fully-ineffectual steps loads fewer ABRs than
	// one that walks them: ALC jumps save activation-buffer energy.
	rng := rand.New(rand.NewSource(9))
	steps := 40
	w := sparsity.RandomSparseFilter(rng, steps, 16, 0.9)
	filter := sched.NewFilter(16, steps, w, nil)
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	s := sched.ScheduleFilter(filter, cfg.Pattern, cfg.Scheduler)
	src := func(win, step, lane int) int32 { return 1 }
	_, stats, err := RunFilter(cfg, filter, s, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ABRLoads > int64(steps)+int64(cfg.Pattern.H) {
		t.Errorf("ABR loads %d exceed the dense walk %d", stats.ABRLoads, steps)
	}
	if stats.ABRRotations == 0 {
		t.Error("no ABR rotations recorded")
	}
}
