// Package datapath is a structural, cycle-stepped model of one Bit-Tactical
// processing-element row — the hardware of the paper's Figures 5 and 6 at
// register-transfer granularity:
//
//   - the Weight Skipping Unit (WSU) issues one schedule column of
//     (weight, mux-select) pairs per step;
//   - the Activation Select Unit (ASU) keeps h+1 Activation Block Registers
//     (ABRs) as a circular queue over the lookahead window, advanced by the
//     per-column ALC field, with the shuffling multiplexers that keep the
//     logical lookahead order stable without copying data between ABRs;
//   - the back-end lanes consume the selected activation serially —
//     bit-by-bit over the trimmed precision window (TCLp) or oneffset-by-
//     oneffset (TCLe) — shift-adding through the adder tree into a psum
//     register.
//
// Where the sim package *accounts* for column durations analytically, this
// package *executes* them: every multiplexer select, ABR rotation, shifter
// step and adder-tree reduction happens explicitly, cycle by cycle. Outputs
// are checked bit-exactly against the reference convolution and cycle
// counts against sim's cost model — the cross-validation that ties the
// paper's architecture description to the timing model (DESIGN.md §5).
package datapath

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	"bittactical/internal/fixed"
	"bittactical/internal/sched"
)

// ActSource supplies the activation value at a dense-schedule position for
// one window (what the activation scratchpad + dispatcher deliver).
type ActSource func(win, step, lane int) int32

// abr is one Activation Block Register: the N activations of one lookahead
// position.
type abr struct {
	vals  []int32
	step  int
	valid bool
}

// ASU models the Activation Select Unit of Figure 5c for one window: h+1
// ABRs operated as a circular queue with a head register. Each ABR has a
// dedicated activation-buffer read port, so any number of ABRs refill in
// one advance.
type ASU struct {
	lanes    int
	abrs     []abr
	head     int
	baseStep int
	win      int
	src      ActSource
	// Rotations counts head advances; Loads counts ABR refills — the
	// control/buffer activity an energy model would price.
	Rotations int64
	Loads     int64
}

// NewASU builds an ASU with lookahead depth h (h+1 ABRs) for one window.
func NewASU(lanes, h, win int, src ActSource) *ASU {
	a := &ASU{lanes: lanes, abrs: make([]abr, h+1), baseStep: -1, win: win, src: src}
	for i := range a.abrs {
		a.abrs[i].vals = make([]int32, lanes)
		a.abrs[i].step = -1
	}
	return a
}

// SlideTo positions the window base at dense step base (the ALC semantics):
// the head register advances, surviving ABRs keep their data in place, and
// only vacated ABRs refill from the activation buffer.
func (a *ASU) SlideTo(base, maxStep int) {
	if a.baseStep >= 0 && base > a.baseStep {
		adv := base - a.baseStep
		if adv > len(a.abrs) {
			adv = len(a.abrs)
		}
		a.head = (a.head + adv) % len(a.abrs)
		a.Rotations += int64(adv)
	}
	a.baseStep = base
	for k := 0; k < len(a.abrs); k++ {
		step := base + k
		idx := (a.head + k) % len(a.abrs)
		if step > maxStep {
			a.abrs[idx].valid = false
			a.abrs[idx].step = -1
			continue
		}
		if a.abrs[idx].step != step {
			for ln := 0; ln < a.lanes; ln++ {
				a.abrs[idx].vals[ln] = a.src(a.win, step, ln)
			}
			a.abrs[idx].step = step
			a.Loads++
		}
		a.abrs[idx].valid = true
	}
}

// Select returns the activation at lookahead distance dt and lane through
// the shuffling multiplexer mapping logical order onto the rotated ABRs.
func (a *ASU) Select(dt, lane int) (int32, error) {
	if dt < 0 || dt >= len(a.abrs) {
		return 0, fmt.Errorf("datapath: lookahead %d outside the %d-deep window", dt, len(a.abrs))
	}
	b := &a.abrs[(a.head+dt)%len(a.abrs)]
	if !b.valid || b.step != a.baseStep+dt {
		return 0, fmt.Errorf("datapath: ABR at lookahead %d stale (holds %d, want %d)",
			dt, b.step, a.baseStep+dt)
	}
	return b.vals[lane], nil
}

// term is one serial step of a lane: the lane contributes weight×Factor to
// the adder tree that cycle (Factor 0 = the lane idles the step, e.g. a
// zero bit inside a TCLp precision window or a column-sync stall).
type term struct {
	Factor int64
}

// termsFor expands an activation into the back-end's serial stream.
func termsFor(a int32, be backend.Backend, w fixed.Width) []term {
	fs := be.Terms(a, w)
	out := make([]term, len(fs))
	for i, f := range fs {
		out[i] = term{Factor: f}
	}
	return out
}

// PE is one processing element: weight lanes feeding an adder tree and a
// psum register.
type PE struct {
	backEnd backend.Backend
	Psum    int64
	// Cycles counts serial cycles; TreeReductions counts adder-tree
	// activations; ShiftOps counts lane shift-add events.
	Cycles         int64
	TreeReductions int64
	ShiftOps       int64
}

// laneStream is a lane's issued work for one column.
type laneStream struct {
	weight int32
	terms  []term
}

// issueColumn executes one schedule column: every lane streams its terms;
// the column completes when the slowest lane drains (per-PE column sync).
func (pe *PE) issueColumn(lanes []laneStream) int {
	max := 1
	for _, ls := range lanes {
		if len(ls.terms) > max {
			max = len(ls.terms)
		}
	}
	for k := 0; k < max; k++ {
		var tree int64
		active := false
		for _, ls := range lanes {
			if k >= len(ls.terms) || ls.terms[k].Factor == 0 {
				continue
			}
			tree += int64(ls.weight) * ls.terms[k].Factor
			pe.ShiftOps++
			active = true
		}
		if active {
			pe.TreeReductions++
			pe.Psum += tree
		}
	}
	pe.Cycles += int64(max)
	return max
}

// Stats summarizes a structural run.
type Stats struct {
	Cycles         int64
	ABRRotations   int64
	ABRLoads       int64
	TreeReductions int64
	ShiftOps       int64
}

// RunFilter executes one filter's verified schedule for one window through
// the structural datapath and returns the accumulated psum with run stats.
// The mux select of each entry is derived exactly as the hardware stores
// it: the lookahead distance (SrcStep − column head) and source lane.
func RunFilter(cfg arch.Config, f sched.Filter, s *sched.Schedule, src ActSource, win int) (int64, Stats, error) {
	h := cfg.Pattern.H
	if cfg.Pattern.Infinite {
		return 0, Stats{}, fmt.Errorf("datapath: the X<inf,15> bound has no physical datapath")
	}
	if !cfg.HasFrontEnd() {
		h = 0
	}
	asu := NewASU(f.Lanes, h, win, src)
	pe := &PE{backEnd: cfg.Backend}
	lanes := make([]laneStream, f.Lanes)
	for ci, col := range s.Columns {
		asu.SlideTo(col.Head, f.Steps-1)
		for ln, e := range col.Entries {
			lanes[ln] = laneStream{}
			if e.Weight == 0 {
				continue
			}
			dt := e.SrcStep - col.Head
			a, err := asu.Select(dt, e.SrcLane)
			if err != nil {
				return 0, Stats{}, fmt.Errorf("datapath: column %d lane %d: %w", ci, ln, err)
			}
			lanes[ln] = laneStream{weight: e.Weight, terms: termsFor(a, cfg.Backend, cfg.Width)}
		}
		pe.issueColumn(lanes)
	}
	return pe.Psum, Stats{
		Cycles:         pe.Cycles,
		ABRRotations:   asu.Rotations,
		ABRLoads:       asu.Loads,
		TreeReductions: pe.TreeReductions,
		ShiftOps:       pe.ShiftOps,
	}, nil
}
