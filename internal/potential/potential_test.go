package potential

import (
	"math"
	"math/rand"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// denseLayer builds a conv layer with every weight and activation set to a
// full-precision pattern so no source can remove work.
func denseLayer(t *testing.T) *nn.Lowered {
	t.Helper()
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 4, C: 16, R: 1, S: 1, Stride: 1, Pad: 0, InH: 4, InW: 4}
	l.Weights = tensor.New(4, 16, 1, 1)
	l.Weights.Fill(3)
	act := tensor.New(1, 16, 4, 4)
	act.Fill(0x5555) // alternating bits: 8 oneffsets, full 15-bit window
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

func TestDenseLayerHasNoPotential(t *testing.T) {
	tal := AnalyzeLayer(denseLayer(t), fixed.W16)
	p := tal.Potentials()
	for _, k := range []string{"A", "W", "W+A"} {
		if math.Abs(p[k]-1.0) > 1e-9 {
			t.Errorf("%s = %v, want 1.0 for dense layer", k, p[k])
		}
	}
	// 0x5555 needs bits 0..14 → precision 15 of 16.
	if math.Abs(p["Ap"]-16.0/15.0) > 1e-9 {
		t.Errorf("Ap = %v, want 16/15", p["Ap"])
	}
	// 0x5555 has 8 set bits, CSD gives 8 terms → Ae = 2.
	if math.Abs(p["Ae"]-2.0) > 1e-9 {
		t.Errorf("Ae = %v, want 2.0", p["Ae"])
	}
}

func TestHalfZeroWeights(t *testing.T) {
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 2, C: 16, R: 1, S: 1, Stride: 1, Pad: 0, InH: 2, InW: 2}
	l.Weights = tensor.New(2, 16, 1, 1)
	for i := range l.Weights.Data {
		if i%2 == 0 {
			l.Weights.Data[i] = 5
		}
	}
	act := tensor.New(1, 16, 2, 2)
	act.Fill(1)
	lw, _ := nn.Lower(l, act, 16)
	p := AnalyzeLayer(lw, fixed.W16).Potentials()
	if math.Abs(p["W"]-2.0) > 1e-9 {
		t.Errorf("W = %v, want 2.0 with half the weights pruned", p["W"])
	}
	if math.Abs(p["A"]-1.0) > 1e-9 {
		t.Errorf("A = %v, want 1.0 with dense activations", p["A"])
	}
}

func TestZeroActivationsSaturate(t *testing.T) {
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 1, C: 16, R: 1, S: 1, Stride: 1, Pad: 0, InH: 2, InW: 2}
	l.Weights = tensor.New(1, 16, 1, 1)
	l.Weights.Fill(1)
	act := tensor.New(1, 16, 2, 2) // all zero
	lw, _ := nn.Lower(l, act, 16)
	p := AnalyzeLayer(lw, fixed.W16).Potentials()
	if p["A"] != 16.0 {
		t.Errorf("A = %v, want saturation value 16 for all-zero acts", p["A"])
	}
	if p["Ap"] != 16.0 {
		t.Errorf("Ap = %v, want 16 (zero groups cost nothing)", p["Ap"])
	}
}

func TestPaddingExcluded(t *testing.T) {
	// C=3 of 16 lanes: pads must not count as removable work.
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 2, C: 3, R: 1, S: 1, Stride: 1, Pad: 0, InH: 2, InW: 2}
	l.Weights = tensor.New(2, 3, 1, 1)
	l.Weights.Fill(7)
	act := tensor.New(1, 3, 2, 2)
	act.Fill(1)
	lw, _ := nn.Lower(l, act, 16)
	tal := AnalyzeLayer(lw, fixed.W16)
	p := tal.Potentials()
	if math.Abs(p["A"]-1.0) > 1e-9 || math.Abs(p["W"]-1.0) > 1e-9 {
		t.Errorf("A/W = %v/%v, want 1.0/1.0 (pads excluded)", p["A"], p["W"])
	}
	if tal.totalPairs != float64(2*3*4) {
		t.Errorf("totalPairs = %v, want 24 real MACs", tal.totalPairs)
	}
}

func TestCombinedDominatesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 8, C: 32, R: 3, S: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	l.Weights = tensor.New(8, 32, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.6)
	act := tensor.New(1, 32, 8, 8)
	sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 6, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	lw, _ := nn.Lower(l, act, 16)
	p := AnalyzeLayer(lw, fixed.W16).Potentials()
	if p["W+A"] < p["W"] || p["W+A"] < p["A"] {
		t.Errorf("W+A (%v) must dominate W (%v) and A (%v)", p["W+A"], p["W"], p["A"])
	}
	if p["W+Ap"] < p["Ap"] || p["W+Ae"] < p["Ae"] {
		t.Error("weight skipping must not reduce bit potentials")
	}
	if p["W+Ae"] < p["W+Ap"] {
		t.Errorf("W+Ae (%v) must dominate W+Ap (%v)", p["W+Ae"], p["W+Ap"])
	}
	if p["Ae"] < p["Ap"] {
		t.Errorf("Ae (%v) must dominate Ap (%v)", p["Ae"], p["Ap"])
	}
}

func TestDepthwisePath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := &nn.Layer{Name: "dw", Kind: nn.Depthwise, K: 16, C: 16, R: 3, S: 3, Stride: 1, Pad: 1, InH: 6, InW: 6}
	l.Weights = tensor.New(16, 1, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.4)
	act := tensor.New(1, 16, 6, 6)
	sparsity.ActModel{ZeroFrac: 0.3, MeanLog2: 6, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	lw, _ := nn.Lower(l, act, 16)
	tal := AnalyzeLayer(lw, fixed.W16)
	p := tal.Potentials()
	if tal.totalPairs != float64(l.MACs()) {
		t.Errorf("totalPairs %v != MACs %d", tal.totalPairs, l.MACs())
	}
	// Sanity bands rather than exact values for the stochastic workload.
	if p["W"] < 1.5 || p["W"] > 1.8 {
		t.Errorf("W = %v, want ≈1/(1-0.4)", p["W"])
	}
	if p["Ae"] <= p["Ap"] {
		t.Error("Ae must exceed Ap on depthwise layers too")
	}
}

func TestTallyAdd(t *testing.T) {
	a := Tally{widthBits: 16, totalPairs: 10, remA: 5, remApBits: 80}
	b := Tally{widthBits: 16, totalPairs: 10, remA: 5, remApBits: 80}
	a.Add(b)
	p := a.Potentials()
	if math.Abs(p["A"]-2.0) > 1e-9 {
		t.Errorf("merged A = %v, want 2.0", p["A"])
	}
	if math.Abs(p["Ap"]-2.0) > 1e-9 {
		t.Errorf("merged Ap = %v, want 2.0", p["Ap"])
	}
}

func TestAnalyzeModelMatchesCalibration(t *testing.T) {
	// Loose acceptance bands around the paper's Table 1, demonstrating the
	// calibration holds end-to-end (exact paper-vs-measured values are
	// recorded in EXPERIMENTS.md).
	type band struct {
		k      string
		lo, hi float64
	}
	cases := map[string][]band{
		"AlexNet-SS":  {{"W", 6.0, 7.4}, {"A", 1.4, 2.3}, {"Ap", 2.8, 4.8}, {"Ae", 7.0, 16.0}},
		"ResNet50-SS": {{"W", 1.5, 1.9}, {"A", 2.2, 3.3}, {"Ap", 6.0, 11.0}, {"Ae", 14.0, 30.0}},
		"Bi-LSTM":     {{"W", 3.3, 4.1}, {"Ap", 1.9, 3.2}},
	}
	for name, bands := range cases {
		m, err := nn.BuildModel(name, nn.DefaultZoo())
		if err != nil {
			t.Fatal(err)
		}
		tal, err := AnalyzeModel(m, m.GenerateActs(1))
		if err != nil {
			t.Fatal(err)
		}
		p := tal.Potentials()
		for _, b := range bands {
			if p[b.k] < b.lo || p[b.k] > b.hi {
				t.Errorf("%s %s = %.2f, want within [%.1f, %.1f]", name, b.k, p[b.k], b.lo, b.hi)
			}
		}
	}
}

func TestFormatRow(t *testing.T) {
	row := FormatRow("X", map[string]float64{"A": 1.5, "W": 2, "W+A": 3, "Ap": 4, "Ae": 5, "W+Ap": 6, "W+Ae": 7})
	if len(row) == 0 || row[0] != 'X' {
		t.Errorf("FormatRow = %q", row)
	}
}
