// Package potential computes the paper's Table 1: the fraction of work that
// could ideally be removed by each sparsity source, expressed as a speedup
// over performing every computation. Definitions follow Section 2:
//
//	A    — skip multiply-accumulates whose activation is zero;
//	W    — skip MACs whose weight is zero;
//	W+A  — skip MACs where either operand is zero;
//	Ap   — process activations at their dynamic precision, detected per
//	       group of 16 concurrent activations as Dynamic Stripes' hardware
//	       does (zero groups cost nothing);
//	Ae   — process only each activation's effectual Booth terms (Pragmatic);
//	W+Ap — skip zero weights and pay group precision on the survivors;
//	W+Ae — skip zero weights and pay effectual terms on the survivors.
//
// Bit-granular sources normalize serial cycles against the full data width,
// so a dense 16-bit execution counts 16 cycle-units per MAC.
package potential

import (
	"fmt"

	"bittactical/internal/bits"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/tensor"
)

// Keys lists the Table 1 columns in order.
var Keys = []string{"A", "W", "W+A", "Ap", "Ae", "W+Ap", "W+Ae"}

// Tally accumulates total and per-source remaining work in MAC-units
// (bit-granular sources are divided by the data width at the end).
type Tally struct {
	widthBits float64
	// total is the dense pair count ×1 (value sources) and ×width (bit
	// sources share the same denominator after normalization).
	totalPairs float64
	remA       float64
	remW       float64
	remWA      float64
	remApBits  float64
	remAeBits  float64
	remWApBits float64
	remWAeBits float64
}

// Add merges another tally.
func (t *Tally) Add(o Tally) {
	t.totalPairs += o.totalPairs
	t.remA += o.remA
	t.remW += o.remW
	t.remWA += o.remWA
	t.remApBits += o.remApBits
	t.remAeBits += o.remAeBits
	t.remWApBits += o.remWApBits
	t.remWAeBits += o.remWAeBits
}

// Potentials returns the speedup potential per source key.
func (t Tally) Potentials() map[string]float64 {
	ratio := func(remaining float64) float64 {
		if remaining <= 0 {
			return float64(t.widthBits) // every cycle removed saturates at width×
		}
		return t.totalPairs / remaining
	}
	return map[string]float64{
		"A":    ratio(t.remA),
		"W":    ratio(t.remW),
		"W+A":  ratio(t.remWA),
		"Ap":   ratio(t.remApBits / t.widthBits),
		"Ae":   ratio(t.remAeBits / t.widthBits),
		"W+Ap": ratio(t.remWApBits / t.widthBits),
		"W+Ae": ratio(t.remWAeBits / t.widthBits),
	}
}

// AnalyzeLayer tallies one lowered layer at the given data width.
func AnalyzeLayer(lw *nn.Lowered, width fixed.Width) Tally {
	w := lw.Layer()
	t := Tally{widthBits: float64(int(width))}

	lanes, steps, wins := lw.Lanes, lw.Steps, lw.WindowCount
	F := lw.Filters

	// Channel-padding slots of the laned layout are not work: the paper's
	// potentials are over real MACs. Mask them out of every count.
	pad := make([]bool, steps*lanes)
	realPositions := 0
	for st := 0; st < steps; st++ {
		for ln := 0; ln < lanes; ln++ {
			pad[st*lanes+ln] = lw.IsPad(st, ln)
			if !pad[st*lanes+ln] {
				realPositions++
			}
		}
	}

	// cntW[step*lanes+lane] = filters with a non-zero weight there.
	cntW := make([]int32, steps*lanes)
	var nnzW int64
	for f := 0; f < F; f++ {
		for st := 0; st < steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				if lw.Weight(f, st, ln) != 0 {
					cntW[st*lanes+ln]++
					nnzW++
				}
			}
		}
	}

	pairsPerPos := float64(F)
	t.totalPairs = float64(F) * float64(realPositions) * float64(wins)
	t.remW = float64(nnzW) * float64(wins)

	if w.Kind == nn.Depthwise || (w.Kind == nn.Conv && w.Groups > 1) {
		// Per-filter activation fetch (depthwise channels / grouped convs).
		analyzePerFilter(lw, width, pad, &t)
		return t
	}

	group := make([]int32, lanes)
	for win := 0; win < wins; win++ {
		for st := 0; st < steps; st++ {
			var nzActs, groupOneff, realLanes int64
			var wPairs, waPairs float64
			var aeW float64
			for ln := 0; ln < lanes; ln++ {
				if pad[st*lanes+ln] {
					group[ln] = 0
					continue
				}
				realLanes++
				a := lw.Act(0, win, st, ln)
				group[ln] = a
				cw := float64(cntW[st*lanes+ln])
				wPairs += cw
				if a != 0 {
					nzActs++
					waPairs += cw
					oe := int64(bits.OneffsetCount(a, width))
					groupOneff += oe
					aeW += float64(oe) * cw
				}
			}
			prec := float64(bits.GroupPrecision(group, width).Bits())
			t.remA += float64(nzActs) * pairsPerPos
			t.remWA += waPairs
			t.remApBits += prec * float64(realLanes) * pairsPerPos
			t.remAeBits += float64(groupOneff) * pairsPerPos
			t.remWApBits += prec * wPairs
			t.remWAeBits += aeW
		}
	}
	return t
}

// analyzePerFilter handles layers whose activation fetch depends on the
// filter index: depthwise layers (each PE row reads its own channel) and
// grouped convolutions (each filter group reads its own channel slice).
func analyzePerFilter(lw *nn.Lowered, width fixed.Width, pad []bool, t *Tally) {
	lanes, steps, wins := lw.Lanes, lw.Steps, lw.WindowCount
	group := make([]int32, lanes)
	for f := 0; f < lw.Filters; f++ {
		for win := 0; win < wins; win++ {
			for st := 0; st < steps; st++ {
				var nzActs, groupOneff, realLanes int64
				var waPairs, aeW, wCnt float64
				for ln := 0; ln < lanes; ln++ {
					if pad[st*lanes+ln] {
						group[ln] = 0
						continue
					}
					realLanes++
					a := lw.Act(f, win, st, ln)
					group[ln] = a
					wNZ := lw.Weight(f, st, ln) != 0
					if wNZ {
						wCnt++
					}
					if a != 0 {
						nzActs++
						oe := float64(bits.OneffsetCount(a, width))
						groupOneff += int64(oe)
						if wNZ {
							waPairs++
							aeW += oe
						}
					}
				}
				prec := float64(bits.GroupPrecision(group, width).Bits())
				t.remA += float64(nzActs)
				t.remWA += waPairs
				t.remApBits += prec * float64(realLanes)
				t.remAeBits += float64(groupOneff)
				t.remWApBits += prec * wCnt
				t.remWAeBits += aeW
			}
		}
	}
}

// AnalyzeModel tallies a full model against its activation tensors.
func AnalyzeModel(m *nn.Model, acts []*tensor.T) (Tally, error) {
	lws, err := m.Lowered(16, acts)
	if err != nil {
		return Tally{}, err
	}
	var total Tally
	total.widthBits = float64(int(m.Width))
	for _, lw := range lws {
		total.Add(AnalyzeLayer(lw, m.Width))
	}
	return total, nil
}

// FormatRow renders one model's potentials in the Table 1 column order.
func FormatRow(name string, p map[string]float64) string {
	s := fmt.Sprintf("%-14s", name)
	for _, k := range Keys {
		s += fmt.Sprintf(" %6.1fx", p[k])
	}
	return s
}
