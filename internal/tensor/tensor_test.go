package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	if (Shape{2, 3, 4, 5}).Elems() != 120 {
		t.Error("Elems of 2x3x4x5 != 120")
	}
	if (Shape{1, 1, 1, 1}).Elems() != 1 {
		t.Error("Elems of unit shape != 1")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{1, 2, 3, 4}).String(); got != "1x2x3x4" {
		t.Errorf("String() = %q", got)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with negative dim should panic")
		}
	}()
	New(1, -1, 1, 1)
}

func TestSetAt(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.Set(1, 2, 3, 4, 42)
	if x.At(1, 2, 3, 4) != 42 {
		t.Error("Set/At round trip failed")
	}
	if x.At(0, 0, 0, 0) != 0 {
		t.Error("untouched element should be zero")
	}
}

func TestIndexUnique(t *testing.T) {
	// Every coordinate maps to a distinct flat index.
	x := New(2, 3, 4, 5)
	seen := map[int]bool{}
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 4; c++ {
				for d := 0; d < 5; d++ {
					i := x.index(a, b, c, d)
					if seen[i] {
						t.Fatalf("duplicate index %d at (%d,%d,%d,%d)", i, a, b, c, d)
					}
					seen[i] = true
				}
			}
		}
	}
	if len(seen) != 120 {
		t.Errorf("covered %d indices, want 120", len(seen))
	}
}

func TestAtPadded(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Set(0, 0, 0, 0, 7)
	if x.AtPadded(0, 0, 0, 0) != 7 {
		t.Error("in-bounds AtPadded wrong")
	}
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		if x.AtPadded(0, 0, c[0], c[1]) != 0 {
			t.Errorf("AtPadded(%d,%d) should be 0", c[0], c[1])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(1, 1, 1, 2)
	x.Set(0, 0, 0, 0, 1)
	y := x.Clone()
	y.Set(0, 0, 0, 0, 2)
	if x.At(0, 0, 0, 0) != 1 {
		t.Error("Clone aliases original data")
	}
	if !Equal(x, x.Clone()) {
		t.Error("Clone should equal original")
	}
}

func TestNNZSparsity(t *testing.T) {
	x := New(1, 1, 2, 2)
	if x.NNZ() != 0 || x.Sparsity() != 1.0 {
		t.Error("fresh tensor should be fully sparse")
	}
	x.Set(0, 0, 0, 0, 5)
	if x.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", x.NNZ())
	}
	if x.Sparsity() != 0.75 {
		t.Errorf("Sparsity = %v, want 0.75", x.Sparsity())
	}
}

func TestFill(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Fill(3)
	if x.NNZ() != 4 {
		t.Error("Fill should set all elements")
	}
}

func TestFillRandomBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(2, 2, 8, 8)
	x.FillRandom(rng, 100)
	for _, v := range x.Data {
		if v < -100 || v > 100 {
			t.Fatalf("value %d out of bounds", v)
		}
	}
	x.FillRandom(rng, 0)
	if x.NNZ() != 0 {
		t.Error("FillRandom(amp=0) should zero the tensor")
	}
}

func TestFillGaussianClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := New(1, 1, 32, 32)
	x.FillGaussian(rng, 1000, 50)
	for _, v := range x.Data {
		if v < -50 || v > 50 {
			t.Fatalf("value %d exceeds clamp", v)
		}
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(1, 1, 1, 2), New(1, 1, 2, 1)) {
		t.Error("different shapes must not be Equal")
	}
	a, b := New(1, 1, 1, 2), New(1, 1, 1, 2)
	a.Set(0, 0, 0, 1, 9)
	if Equal(a, b) {
		t.Error("different data must not be Equal")
	}
}

func TestSparsityProperty(t *testing.T) {
	f := func(vals []int32) bool {
		n := len(vals)
		if n == 0 || n > 256 {
			return true
		}
		x := &T{Shape: Shape{1, 1, 1, n}, Data: vals}
		s := x.Sparsity()
		return s >= 0 && s <= 1 && x.NNZ()+int(s*float64(n)+0.5) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
