// Package tensor provides the dense 4-D integer tensors the simulator
// operates on. Layout is NCHW for activations and KCRS (filter, channel,
// kernel-row, kernel-col) for weights, the layouts the Bit-Tactical dataflow
// assumes: input channels are the innermost "weight lane" dimension.
package tensor

import (
	"fmt"
	"math/rand"
)

// Shape is a 4-D tensor shape.
type Shape [4]int

// Elems returns the number of elements.
func (s Shape) Elems() int { return s[0] * s[1] * s[2] * s[3] }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s[0], s[1], s[2], s[3])
}

// T is a dense 4-D tensor of fixed-point codes.
type T struct {
	Shape Shape
	Data  []int32
}

// New allocates a zero tensor of the given shape.
func New(d0, d1, d2, d3 int) *T {
	s := Shape{d0, d1, d2, d3}
	if d0 < 0 || d1 < 0 || d2 < 0 || d3 < 0 {
		panic(fmt.Sprintf("tensor: negative shape %v", s))
	}
	return &T{Shape: s, Data: make([]int32, s.Elems())}
}

// index computes the flat offset of (a,b,c,d).
func (t *T) index(a, b, c, d int) int {
	s := t.Shape
	return ((a*s[1]+b)*s[2]+c)*s[3] + d
}

// At returns the element at (a,b,c,d).
func (t *T) At(a, b, c, d int) int32 { return t.Data[t.index(a, b, c, d)] }

// Set stores v at (a,b,c,d).
func (t *T) Set(a, b, c, d int, v int32) { t.Data[t.index(a, b, c, d)] = v }

// AtPadded returns the element at (a,b,c,d), or 0 when c or d fall outside
// the tensor (zero padding, as convolution edges require).
func (t *T) AtPadded(a, b, c, d int) int32 {
	if c < 0 || d < 0 || c >= t.Shape[2] || d >= t.Shape[3] {
		return 0
	}
	return t.Data[t.index(a, b, c, d)]
}

// Clone returns a deep copy.
func (t *T) Clone() *T {
	c := &T{Shape: t.Shape, Data: make([]int32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Fill sets every element to v.
func (t *T) Fill(v int32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// NNZ returns the number of non-zero elements.
func (t *T) NNZ() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements (0 for an empty tensor).
func (t *T) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return 1 - float64(t.NNZ())/float64(len(t.Data))
}

// FillRandom fills the tensor with uniform values in [-amp, amp] using rng.
func (t *T) FillRandom(rng *rand.Rand, amp int32) {
	if amp <= 0 {
		t.Fill(0)
		return
	}
	for i := range t.Data {
		t.Data[i] = rng.Int31n(2*amp+1) - amp
	}
}

// FillGaussian fills the tensor with round(N(0, sigma)) values clamped to
// [-clamp, clamp]. This is the weight generator the model zoo uses before
// magnitude pruning.
func (t *T) FillGaussian(rng *rand.Rand, sigma float64, clamp int32) {
	for i := range t.Data {
		v := int32(rng.NormFloat64() * sigma)
		if v > clamp {
			v = clamp
		}
		if v < -clamp {
			v = -clamp
		}
		t.Data[i] = v
	}
}

// Equal reports whether two tensors have identical shape and contents.
func Equal(a, b *T) bool {
	if a.Shape != b.Shape {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
