package dataflow

import (
	"math/rand"
	"strings"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

func mkLayer(t *testing.T, k, c, in, windows int) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: k, C: c, R: 3, S: 3, Stride: 1, Pad: 1, InH: in, InW: in}
	l.Weights = tensor.New(k, c, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.5)
	act := tensor.New(1, c, in, in)
	sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 8, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	_ = windows
	return lw
}

func TestEnumerateCoversSpace(t *testing.T) {
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	lw := mkLayer(t, 32, 32, 16, 0)
	cands := Enumerate(cfg, lw, DefaultCosts())
	if len(cands) != 2*cfg.PsumRegsPerPE {
		t.Fatalf("got %d candidates, want %d", len(cands), 2*cfg.PsumRegsPerPE)
	}
	for _, c := range cands {
		if c.EnergyPJ <= 0 || c.WSColumnReads <= 0 || c.ASValueReads <= 0 {
			t.Errorf("degenerate candidate %+v", c)
		}
	}
}

func TestOptimizeIsMinimum(t *testing.T) {
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	lw := mkLayer(t, 64, 32, 16, 0)
	k := DefaultCosts()
	best := Optimize(cfg, lw, k)
	for _, c := range Enumerate(cfg, lw, k) {
		if c.EnergyPJ < best.EnergyPJ {
			t.Fatalf("Optimize missed a cheaper blocking: %v < %v", c, best)
		}
	}
}

func TestMorePsumRegsNeverHurt(t *testing.T) {
	// Deeper psum blocking strictly reduces weight re-reads, so the optimum
	// with 4 registers is at least as cheap as with 1.
	lw := mkLayer(t, 64, 32, 16, 0)
	k := DefaultCosts()
	cfg1 := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	cfg1.PsumRegsPerPE = 1
	cfg4 := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	cfg4.PsumRegsPerPE = 4
	if Optimize(cfg4, lw, k).EnergyPJ > Optimize(cfg1, lw, k).EnergyPJ {
		t.Error("4 psum registers costed more than 1")
	}
}

func TestManyFiltersFavorActStationary(t *testing.T) {
	// With many filter groups, re-streaming activations per group dominates:
	// the optimizer must pick act-stationary.
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	lw := mkLayer(t, 512, 32, 16, 0) // 32 filter groups
	best := Optimize(cfg, lw, DefaultCosts())
	if best.Order != ActStationary {
		t.Errorf("512-filter layer chose %v", best.Order)
	}
}

func TestSingleGroupIndifferent(t *testing.T) {
	// One filter group: the two orders price identically at equal psum
	// blocking; the optimizer must still return a minimal choice.
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	lw := mkLayer(t, 16, 32, 16, 0)
	k := DefaultCosts()
	best := Optimize(cfg, lw, k)
	for _, c := range Enumerate(cfg, lw, k) {
		if c.PsumBlock == best.PsumBlock && c.EnergyPJ != best.EnergyPJ {
			t.Errorf("orders disagree at equal blocking for one group: %v vs %v", c, best)
		}
	}
	if best.PsumBlock != cfg.PsumRegsPerPE {
		t.Errorf("single group should still use full psum blocking, got %d", best.PsumBlock)
	}
}

func TestPlanAggregates(t *testing.T) {
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	lws := []*nn.Lowered{mkLayer(t, 32, 32, 16, 0), mkLayer(t, 64, 32, 8, 0)}
	choices, total := Plan(cfg, lws, DefaultCosts())
	if len(choices) != 2 {
		t.Fatalf("got %d choices", len(choices))
	}
	if total != choices[0].EnergyPJ+choices[1].EnergyPJ {
		t.Error("Plan total disagrees with per-layer sum")
	}
}

func TestStrings(t *testing.T) {
	if WeightStationary.String() != "weight-stationary" || ActStationary.String() != "act-stationary" {
		t.Error("Order labels wrong")
	}
	if !strings.Contains((Choice{Order: ActStationary, PsumBlock: 2}).String(), "psum block 2") {
		t.Error("Choice.String missing blocking")
	}
}
