// Package dataflow chooses each layer's blocking — the loop order and
// partial-sum blocking factor — to minimize on-chip access energy, the
// optimization the paper applies to its baseline ("the dataflow is
// optimized to minimize energy for DaDianNao++", Section 6, after the
// systematic-blocking approach of Yang et al.).
//
// The architecture fixes the inner dataflow (weights shared along PE rows,
// activations along PE columns, Section 5.3); what remains free per layer
// is the outer traversal:
//
//   - how many window groups to process per weight-column residency
//     (bounded by the PE's psum registers — each resident window group
//     needs one);
//   - whether the outer loop walks windows inside filter groups
//     (weight-stationary: weights read once, activations re-streamed per
//     filter group) or filter groups inside windows (activation-stationary:
//     activations read once, weights re-streamed per window block).
//
// Optimize enumerates the candidate blockings, prices their scratchpad
// traffic, and returns the cheapest — with the access counts the energy
// model consumes.
package dataflow

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
)

// Order is the outer traversal choice.
type Order int

const (
	// WeightStationary keeps a filter group resident and streams all its
	// windows before moving on (the default the sim package assumes).
	WeightStationary Order = iota
	// ActStationary keeps a window block resident and streams all filter
	// groups over it.
	ActStationary
)

func (o Order) String() string {
	if o == ActStationary {
		return "act-stationary"
	}
	return "weight-stationary"
}

// Choice is one evaluated blocking.
type Choice struct {
	Order Order
	// PsumBlock is the number of window groups resident per weight-column
	// read (1..PsumRegsPerPE).
	PsumBlock int
	// WSColumnReads and ASValueReads are the scratchpad access counts the
	// blocking induces for the whole layer.
	WSColumnReads int64
	ASValueReads  int64
	// EnergyPJ is the priced scratchpad traffic (the objective).
	EnergyPJ float64
}

func (c Choice) String() string {
	return fmt.Sprintf("%s, psum block %d (%.0f pJ)", c.Order, c.PsumBlock, c.EnergyPJ)
}

// Costs price one scratchpad access of each kind (defaults match the energy
// package's 65 nm constants for a 16-bit value).
type Costs struct {
	WSColumnPJ float64 // one weight-column read (lanes × width bits)
	ASValuePJ  float64 // one activation value read
}

// DefaultCosts returns the 65 nm per-access prices at 16 bits.
func DefaultCosts() Costs {
	return Costs{WSColumnPJ: 0.65 * 32, ASValuePJ: 1.35 * 2}
}

// Enumerate returns every candidate blocking for the layer under the
// configuration, priced.
func Enumerate(cfg arch.Config, lw *nn.Lowered, k Costs) []Choice {
	cols := int64(lw.Steps) // dense columns bound the schedule length
	wg := int64(cfg.WindowsPerTile)
	numWGroups := (int64(lw.WindowCount) + wg - 1) / wg
	groups := int64((lw.Filters + cfg.FiltersPerTile - 1) / cfg.FiltersPerTile)
	// Activation footprint streamed per full pass over the windows.
	actPass := int64(lw.Steps) * int64(lw.Lanes) * numWGroups

	var out []Choice
	for r := 1; r <= cfg.PsumRegsPerPE; r++ {
		rounds := (numWGroups + int64(r) - 1) / int64(r)
		// Weight-stationary: per filter group, every column is re-read once
		// per psum round; activations stream once per filter group.
		ws := Choice{
			Order:         WeightStationary,
			PsumBlock:     r,
			WSColumnReads: groups * cols * rounds,
			ASValueReads:  groups * actPass,
		}
		// Act-stationary: activations stream once; weights re-read per
		// window block of r groups.
		as := Choice{
			Order:         ActStationary,
			PsumBlock:     r,
			WSColumnReads: groups * cols * rounds,
			ASValueReads:  actPass,
		}
		// Act-stationary needs the window block's psums to survive the
		// filter-group sweep: the same psum registers hold them, so the
		// factor applies identically; the difference is the activation
		// stream amortization.
		for _, c := range []Choice{ws, as} {
			c.EnergyPJ = float64(c.WSColumnReads)*k.WSColumnPJ + float64(c.ASValueReads)*k.ASValuePJ
			out = append(out, c)
		}
	}
	return out
}

// Optimize returns the cheapest blocking for the layer.
func Optimize(cfg arch.Config, lw *nn.Lowered, k Costs) Choice {
	cands := Enumerate(cfg, lw, k)
	best := cands[0]
	for _, c := range cands[1:] {
		if c.EnergyPJ < best.EnergyPJ {
			best = c
		}
	}
	return best
}

// Plan optimizes every layer of a lowered model and returns the choices
// with the summed energy.
func Plan(cfg arch.Config, lws []*nn.Lowered, k Costs) ([]Choice, float64) {
	out := make([]Choice, len(lws))
	var total float64
	for i, lw := range lws {
		out[i] = Optimize(cfg, lw, k)
		total += out[i].EnergyPJ
	}
	return out, total
}
