package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("items")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("items") != c {
		t.Error("Counter did not return the existing instrument")
	}

	g := r.Gauge("busy")
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 || g.Max() != 2 {
		t.Errorf("gauge = (%d, max %d), want (1, 2)", g.Value(), g.Max())
	}
}

func TestGaugeMaxUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("busy")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Errorf("gauge value = %d after balanced inc/dec, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > 8 {
		t.Errorf("gauge max = %d, want within [1, 8]", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 500ns lands in the first bucket (< 1µs); 3µs in the < 4µs bucket;
	// an hour lands in the overflow bucket.
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Hour)
	s := h.snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	want := map[int64]int64{1: 1, 4: 1, -1: 1}
	for _, b := range s.Buckets {
		if want[b.UpperMicros] != b.Count {
			t.Errorf("bucket le_us=%d count=%d, want %d", b.UpperMicros, b.Count, want[b.UpperMicros])
		}
		delete(want, b.UpperMicros)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
}

func TestSnapshotAndWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(7)
	r.Gauge("inflight").Inc()
	r.Histogram("lat").Observe(2 * time.Millisecond)
	r.Func("external", func() int64 { return 42 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"hits", "inflight", "lat", "external"} {
		if _, ok := got[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
	if string(got["hits"]) != "7" || string(got["external"]) != "42" {
		t.Errorf("hits=%s external=%s, want 7 and 42", got["hits"], got["external"])
	}
}

func TestResetPreservesFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	g := r.Gauge("g")
	g.Inc()
	r.Histogram("h").Observe(time.Millisecond)
	r.Func("f", func() int64 { return 9 })
	r.Reset()
	snap := r.Snapshot()
	if snap["c"].(int64) != 0 {
		t.Errorf("counter survived Reset: %v", snap["c"])
	}
	if gs := snap["g"].(gaugeSnapshot); gs.Value != 0 || gs.Max != 0 {
		t.Errorf("gauge survived Reset: %+v", gs)
	}
	if hs := snap["h"].(HistogramSnapshot); hs.Count != 0 {
		t.Errorf("histogram survived Reset: %+v", hs)
	}
	if snap["f"].(int64) != 9 {
		t.Errorf("Func deregistered by Reset: %v", snap["f"])
	}
}
