// Package metrics is the engine's process-wide instrumentation layer:
// atomic counters, gauges with high-water marks, and fixed-bucket latency
// histograms, exported as an expvar-style JSON snapshot. It exists so the
// long-running evaluation service (cmd/tclserve) and the batch tools
// (tclsim/tclreport -metrics) can report schedule-cache effectiveness, pool
// occupancy, and simulate latency without coupling the hot paths to any
// particular export format.
//
// All instruments are allocation-free and lock-free on the update path;
// only Snapshot takes the registry lock. The package imports nothing from
// the rest of the repo, so any layer (sched, sim, cmd) may instrument
// itself against the Default registry without cycles.
package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. busy pool workers, in-flight HTTP
// requests) that also tracks its lifetime high-water mark, so a snapshot
// taken after the burst still shows how full the pool got.
type Gauge struct{ v, max atomic.Int64 }

// Inc raises the level by one and updates the high-water mark.
func (g *Gauge) Inc() {
	cur := g.v.Add(1)
	for {
		m := g.max.Load()
		if cur <= m || g.max.CompareAndSwap(m, cur) {
			return
		}
	}
}

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the lifetime high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histBuckets is the fixed bucket count: power-of-two microsecond bounds
// 1µs, 2µs, …, 2^20µs (~1s), plus one overflow bucket. Fixed buckets keep
// Observe a single atomic add with no allocation and make snapshots
// mergeable across processes.
const histBuckets = 22

// Histogram is a fixed-bucket latency histogram over power-of-two
// microsecond bounds.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	us := d.Microseconds()
	i := 0
	for i < histBuckets-1 && us >= int64(1)<<i {
		i++
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramBucket is one non-empty bucket of a snapshot. UpperMicros is the
// exclusive upper bound in microseconds; -1 marks the overflow bucket.
type HistogramBucket struct {
	UpperMicros int64 `json:"le_us"`
	Count       int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram: totals plus only the
// non-empty buckets.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumMs   float64           `json:"sum_ms"`
	MeanMs  float64           `json:"mean_ms"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	s.SumMs = float64(h.sumNs.Load()) / 1e6
	if s.Count > 0 {
		s.MeanMs = s.SumMs / float64(s.Count)
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		upper := int64(1) << i
		if i == histBuckets-1 {
			upper = -1
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperMicros: upper, Count: n})
	}
	return s
}

// Registry holds named instruments. Instruments are created on first use
// and live for the registry's lifetime; Func registers a read-only callback
// (expvar.Func-style) for values owned elsewhere, e.g. sched.Cache counters.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
	}
}

// Default is the process-wide registry the engine instruments itself
// against.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Func registers (or replaces) a callback gauge evaluated at snapshot time.
// The callback must be safe for concurrent use.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// gaugeSnapshot pairs a gauge's level with its high-water mark.
type gaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot returns a JSON-marshalable view of every instrument: counters
// and funcs as integers, gauges as {value, max}, histograms as
// HistogramSnapshot. Keys are the instrument names; encoding/json emits
// them sorted.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = gaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.histograms {
		out[name] = h.snapshot()
	}
	for name, fn := range r.funcs {
		out[name] = fn()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// Reset zeroes every owned instrument (Func callbacks are left registered;
// the state they read belongs to their owner). Intended for tests and batch
// tools that report per-run deltas.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
		g.max.Store(0)
	}
	for _, h := range r.histograms {
		h.count.Store(0)
		h.sumNs.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}
