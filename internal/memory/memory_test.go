package memory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bittactical/internal/arch"
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

func TestTechTable(t *testing.T) {
	if len(Techs) != 6 {
		t.Fatalf("want 6 technologies, got %d", len(Techs))
	}
	prev := 0.0
	for _, tech := range Techs[:5] {
		if tech.GBs <= prev {
			t.Errorf("%s: bandwidths must ascend (got %v after %v)", tech.Name, tech.GBs, prev)
		}
		prev = tech.GBs
	}
	if !Techs[5].Infinite() {
		t.Error("last tech must be infinite")
	}
	if _, ok := TechByName("HBM"); !ok {
		t.Error("TechByName(HBM) failed")
	}
	if _, ok := TechByName("SDRAM-66"); ok {
		t.Error("TechByName accepted unknown name")
	}
}

func TestBytesPerCycle(t *testing.T) {
	tech := Tech{GBs: 12.8}
	if got := tech.BytesPerCycle(1.0); got != 12.8 {
		t.Errorf("BytesPerCycle = %v, want 12.8 at 1 GHz", got)
	}
	if got := (Tech{}).BytesPerCycle(1.0); got != 0 {
		t.Errorf("infinite tech BytesPerCycle = %v", got)
	}
}

func TestCompressedBitsAllZero(t *testing.T) {
	vs := make([]int32, 32)
	got := CompressedBits(vs, fixed.W16)
	// Two groups × (16 mask + 5 precision) bits.
	if got != 2*(16+5) {
		t.Errorf("all-zero compressed bits = %d, want 42", got)
	}
}

func TestCompressedBitsBeatsRawOnSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]int32, 4096)
	m := sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 5, SigmaLog2: 2}
	for i := range vs {
		vs[i] = m.Sample(rng, fixed.W16)
	}
	raw := int64(len(vs) * 16)
	got := CompressedBits(vs, fixed.W16)
	if got >= raw {
		t.Errorf("compressed %d bits >= raw %d on a sparse low-precision stream", got, raw)
	}
}

func TestCompressedBitsBoundedOverhead(t *testing.T) {
	// Worst case (dense full-precision groups) must stay within the mask +
	// header overhead of raw.
	f := func(raws []int32) bool {
		if len(raws) == 0 {
			return true
		}
		vs := make([]int32, len(raws))
		for i, r := range raws {
			vs[i] = fixed.Sat(int64(r), fixed.W16)
		}
		got := CompressedBits(vs, fixed.W16)
		raw := int64(len(vs)) * 16
		groups := int64((len(vs) + 15) / 16)
		return got <= raw+groups*(16+5)+int64(len(vs)) // mask+header+sign bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressRoundTripLossless(t *testing.T) {
	f := func(raws []int32) bool {
		if len(raws) == 0 || len(raws) > 16 {
			return true
		}
		vs := make([]int32, len(raws))
		for i, r := range raws {
			vs[i] = fixed.Sat(int64(r), fixed.W16)
		}
		got := CompressRoundTrip(vs, fixed.W16)
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGroupWindowCoversMembers(t *testing.T) {
	// The group precision window must reconstruct every member exactly —
	// the property CompressRoundTrip exercises; double-check the bits
	// package contract the codec relies on.
	vs := []int32{0x0080, -0x0002, 0, 0x7FFF}
	p := bits.GroupPrecision(vs, fixed.W16)
	for _, v := range vs {
		if v == 0 {
			continue
		}
		m := v
		if m < 0 {
			m = -m
		}
		if uint32(m)>>uint(p.Lo)<<uint(p.Lo) != uint32(m) {
			t.Errorf("value %#x loses bits below Lo=%d", v, p.Lo)
		}
	}
}

func TestMetadataBits(t *testing.T) {
	p := sched.T(2, 5) // 8-input mux -> 3 select bits
	s := &sched.Schedule{Lanes: 16, DenseSteps: 4, Columns: make([]sched.Column, 4)}
	got := MetadataBits(s, p)
	want := int64(4) * (16*3 + 2) // 4 columns × (16 lanes × 3b + 2b ALC)
	if got != want {
		t.Errorf("MetadataBits = %d, want %d", got, want)
	}
	if MetadataBits(&sched.Schedule{Lanes: 16}, p) != 0 {
		t.Error("empty schedule should have no metadata")
	}
}

func TestCeilLog2(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4} {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func mkLayer(t *testing.T) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 20, C: 32, R: 3, S: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	l.Weights = tensor.New(20, 32, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.6)
	act := tensor.New(1, 32, 8, 8)
	sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 5, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

func TestLayerTraffic(t *testing.T) {
	lw := mkLayer(t)
	base := LayerTraffic(arch.DaDianNaoPP(), lw)
	tcl := LayerTraffic(arch.NewTCL(sched.T(2, 5), arch.TCLe), lw)
	if base.MetadataBytes != 0 {
		t.Error("baseline must not carry schedule metadata")
	}
	if tcl.MetadataBytes <= 0 {
		t.Error("TCL must carry schedule metadata")
	}
	if base.WeightBytes != tcl.WeightBytes || base.ActInBytes != tcl.ActInBytes {
		t.Error("compressed value streams should match across configs")
	}
	if base.ActOutBytes <= 0 || base.WeightBytes <= 0 {
		t.Errorf("missing traffic components: %+v", base)
	}
	// Compression must beat raw.
	raw := int64(lw.Layer().Weights.Shape.Elems() * 2)
	if base.WeightBytes >= raw {
		t.Errorf("compressed weights %dB >= raw %dB", base.WeightBytes, raw)
	}
}

func TestMemCyclesAndBound(t *testing.T) {
	tr := Traffic{WeightBytes: 640, ActInBytes: 640}
	tech := Tech{Name: "x", GBs: 12.8}
	if got := MemCycles(tr, tech, 1.0); got != 100 {
		t.Errorf("MemCycles = %d, want 100", got)
	}
	if got := BoundedCycles(50, tr, tech, 1.0); got != 100 {
		t.Errorf("memory-bound layer should take 100 cycles, got %d", got)
	}
	if got := BoundedCycles(500, tr, tech, 1.0); got != 500 {
		t.Errorf("compute-bound layer should take 500 cycles, got %d", got)
	}
	inf, _ := TechByName("infinite")
	if got := BoundedCycles(50, tr, inf, 1.0); got != 50 {
		t.Errorf("infinite memory must never bind, got %d", got)
	}
}

func TestWeakerMemoryNeverFaster(t *testing.T) {
	lw := mkLayer(t)
	tr := LayerTraffic(arch.NewTCL(sched.T(2, 5), arch.TCLe), lw)
	prev := int64(0)
	for i := len(Techs) - 1; i >= 0; i-- { // strongest (infinite) to weakest
		c := BoundedCycles(1000, tr, Techs[i], 1.0)
		if c < prev {
			t.Errorf("%s: bounded cycles %d faster than stronger tech %d", Techs[i].Name, c, prev)
		}
		prev = c
	}
}

func TestSSMetadataBeatsRaw(t *testing.T) {
	lw := mkLayer(t)
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	pad := make([]bool, lw.Steps*lw.Lanes)
	var raw, ss int64
	for f0 := 0; f0 < lw.Filters; f0 += 16 {
		f1 := f0 + 16
		if f1 > lw.Filters {
			f1 = lw.Filters
		}
		filters := make([]sched.Filter, f1-f0)
		for i := range filters {
			filters[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
		}
		for _, s := range sched.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler) {
			raw += MetadataBits(s, cfg.Pattern)
			ss += SSMetadataBits(s, cfg.Pattern)
		}
	}
	ss += SSTableBits(cfg.Pattern, lw.Lanes)
	if ss >= raw {
		t.Errorf("SS metadata %d bits should undercut raw %d", ss, raw)
	}
	if ss <= 0 {
		t.Error("SS metadata empty")
	}
}

func TestSSMetadataEmptySchedule(t *testing.T) {
	if SSMetadataBits(&sched.Schedule{Lanes: 16}, sched.T(2, 5)) != 0 {
		t.Error("empty schedule should cost nothing")
	}
	if SSTableBits(sched.T(2, 5), 16) != 16*16*3 {
		t.Errorf("SS table bits = %d", SSTableBits(sched.T(2, 5), 16))
	}
}

func TestActRefetchOnCapacityCliff(t *testing.T) {
	lw := mkLayer(t)
	small := arch.DaDianNaoPP()
	small.ASBytesPerTile = 64 // far below the layer's activation footprint
	big := arch.DaDianNaoPP()
	ts, tb := LayerTraffic(small, lw), LayerTraffic(big, lw)
	// 20 filters -> 2 groups -> 1 round on 4 tiles: no refetch even when
	// starved...
	if ts.ActInBytes != tb.ActInBytes {
		t.Fatalf("single-round layer should not refetch (%d vs %d)", ts.ActInBytes, tb.ActInBytes)
	}
	// ...but a 5-round layer must refetch 5x.
	rng := rand.New(rand.NewSource(3))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 320, C: 32, R: 3, S: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	l.Weights = tensor.New(320, 32, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.5)
	act := tensor.New(1, 32, 8, 8)
	sparsity.ActModel{ZeroFrac: 0.3, MeanLog2: 8, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	wide, _ := nn.Lower(l, act, 16)
	ws, wb := LayerTraffic(small, wide), LayerTraffic(big, wide)
	if ws.ActInBytes != 5*wb.ActInBytes {
		t.Errorf("starved 5-round layer refetched %dx, want 5x", ws.ActInBytes/wb.ActInBytes)
	}
}
