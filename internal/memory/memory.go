// Package memory models Bit-Tactical's memory system: the off-chip
// technologies of Figure 10, the off-chip compression the paper applies to
// all layers (zero compression + fine-grain per-group precision, Section 6),
// the TCL schedule metadata stream, and per-layer traffic accounting used by
// both the bandwidth-bound timing of Figure 10 and the energy model of
// Figure 8c.
package memory

import (
	"sort"

	"bittactical/internal/arch"
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// Tech is one off-chip memory configuration.
type Tech struct {
	Name string
	// GBs is sustained bandwidth in GB/s; 0 means infinite.
	GBs float64
	// PJPerByte is transfer energy including I/O.
	PJPerByte float64
}

// Infinite reports whether the tech imposes no bandwidth bound.
func (t Tech) Infinite() bool { return t.GBs <= 0 }

// BytesPerCycle returns bytes deliverable per cycle at freqGHz.
func (t Tech) BytesPerCycle(freqGHz float64) float64 {
	if t.Infinite() {
		return 0
	}
	return t.GBs / freqGHz
}

// Techs lists the Figure 10 sweep, weakest first (JEDEC LPDDR3/LPDDR4/
// LPDDR4X and HBM configurations, then the infinite-bandwidth reference).
var Techs = []Tech{
	{Name: "LPDDR3-1600", GBs: 12.8, PJPerByte: 130},
	{Name: "LPDDR4-3200", GBs: 25.6, PJPerByte: 90},
	{Name: "LPDDR4X-4266", GBs: 34.1, PJPerByte: 70},
	{Name: "2xLPDDR4-3200", GBs: 51.2, PJPerByte: 90},
	{Name: "HBM", GBs: 128, PJPerByte: 35},
	{Name: "infinite", GBs: 0, PJPerByte: 90},
}

// TechByName resolves a Figure 10 label.
func TechByName(name string) (Tech, bool) {
	for _, t := range Techs {
		if t.Name == name {
			return t, true
		}
	}
	return Tech{}, false
}

// compressGroupBits returns the compressed size in bits of one group of up
// to 16 values under the paper's scheme: a 16-bit zero mask, a 5-bit window
// width, a 4-bit window shift, and the non-zero values at the group's
// dynamic precision plus a sign bit (trimmed magnitudes are sign-magnitude
// coded). The compress package implements the actual bitstream; a test
// asserts the two agree bit-for-bit.
func compressGroupBits(vs []int32, w fixed.Width) int64 {
	nnz := 0
	for _, v := range vs {
		if v != 0 {
			nnz++
		}
	}
	maskBits := int64(len(vs))
	if nnz == 0 {
		return maskBits + 5
	}
	p := bits.GroupPrecision(vs, w)
	per := int64(p.Hi - p.Lo + 1 + 1) // magnitude window + sign
	return maskBits + 5 + 4 + int64(nnz)*per
}

// CompressedBits returns the compressed footprint of a code stream in
// groups of 16.
func CompressedBits(vs []int32, w fixed.Width) int64 {
	var total int64
	for i := 0; i < len(vs); i += 16 {
		j := i + 16
		if j > len(vs) {
			j = len(vs)
		}
		total += compressGroupBits(vs[i:j], w)
	}
	return total
}

// CompressRoundTrip is the lossless-ness witness used by tests: it encodes
// and decodes a group, returning the reconstructed values.
func CompressRoundTrip(vs []int32, w fixed.Width) []int32 {
	out := make([]int32, len(vs))
	p := bits.GroupPrecision(vs, w)
	for i, v := range vs {
		if v == 0 {
			continue
		}
		neg := v < 0
		m := v
		if neg {
			m = -m
		}
		// Encode: keep bits [Lo, Hi]; values are guaranteed to fit.
		enc := (uint32(m) >> uint(p.Lo)) & ((1 << uint(p.Hi-p.Lo+1)) - 1)
		dec := int32(enc << uint(p.Lo))
		if neg {
			dec = -dec
		}
		out[i] = dec
	}
	return out
}

// MetadataBits returns the raw TCL schedule-select stream footprint for one
// filter's schedule: per weight-lane slot a mux select of
// ceil(log2(muxInputs)) bits, plus a per-column ALC field.
func MetadataBits(s *sched.Schedule, p sched.Pattern) int64 {
	if len(s.Columns) == 0 {
		return 0
	}
	selBits := int64(ceilLog2(p.MuxInputs()))
	alcBits := int64(ceilLog2(p.H + 2))
	if alcBits < 1 {
		alcBits = 1
	}
	return int64(len(s.Columns)) * (int64(s.Lanes)*selBits + alcBits)
}

// SSMetadataBits returns the schedule stream footprint under the Section
// 5.4 reduced-overhead front-end: a 4-bit schedule-select (SS) field per
// column of 16 weights indexes a table of 16 ws-vectors. Columns whose
// ws-vector falls outside the table fall back to the raw encoding (the
// paper profiles ≈96% coverage on GoogLeNet-ES). The table itself is
// provided "at an appropriate granularity such as per filter or per layer"
// (Section 5.4); LayerTraffic charges it once per layer.
func SSMetadataBits(s *sched.Schedule, p sched.Pattern) int64 {
	if len(s.Columns) == 0 {
		return 0
	}
	selBits := ceilLog2(p.MuxInputs())
	alcBits := ceilLog2(p.H + 2)
	if alcBits < 1 {
		alcBits = 1
	}
	covered := int(SSCoveredColumns(s))
	ssBits := int64(covered) * int64(4+alcBits)
	rawBits := int64(len(s.Columns)-covered) * int64(s.Lanes*selBits+alcBits+4)
	return ssBits + rawBits
}

// SSTableBits is the one-off per-layer footprint of the SS mapping table.
func SSTableBits(p sched.Pattern, lanes int) int64 {
	return int64(16 * lanes * ceilLog2(p.MuxInputs()))
}

// SSCoveredColumns counts the schedule columns whose mux-select vector is
// one of the 16 most frequent — the columns a 4-bit schedule-select field
// can encode (Section 5.4).
func SSCoveredColumns(s *sched.Schedule) int64 {
	counts := map[string]int{}
	for _, col := range s.Columns {
		counts[wsKey(col)]++
	}
	if len(counts) <= 16 {
		return int64(len(s.Columns))
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	covered := 0
	for _, c := range freqs[:16] {
		covered += c
	}
	return int64(covered)
}

// wsKey canonicalizes a column's mux-select vector.
func wsKey(col sched.Column) string {
	b := make([]byte, 0, len(col.Entries)*2)
	for _, e := range col.Entries {
		if e.Weight == 0 {
			b = append(b, 0xFF, 0xFF)
		} else {
			b = append(b, byte(e.Dt), byte(int8(e.Dl)))
		}
	}
	return string(b)
}

func ceilLog2(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// Traffic is one layer's off-chip byte movement.
type Traffic struct {
	WeightBytes   int64
	MetadataBytes int64
	ActInBytes    int64
	ActOutBytes   int64
}

// Total sums all streams.
func (t Traffic) Total() int64 {
	return t.WeightBytes + t.MetadataBytes + t.ActInBytes + t.ActOutBytes
}

// Add accumulates another layer's traffic.
func (t *Traffic) Add(o Traffic) {
	t.WeightBytes += o.WeightBytes
	t.MetadataBytes += o.MetadataBytes
	t.ActInBytes += o.ActInBytes
	t.ActOutBytes += o.ActOutBytes
}

// LayerTraffic computes one layer's off-chip traffic under the
// configuration. The on-chip scratchpads are sized so each weight and
// activation is read from DRAM at most once per layer (Section 5.3, after
// Siu et al.); output activations are written once at the input stream's
// measured compression rate. TCL configurations additionally stream the
// schedule metadata in the Section 5.4 schedule-select encoding; the dense
// baseline streams raw (still compressed) weights.
func LayerTraffic(cfg arch.Config, lw *nn.Lowered) Traffic {
	var t Traffic
	l := lw.Layer()
	w := cfg.Width

	// Weights: compressed once.
	t.WeightBytes = (CompressedBits(l.Weights.Data, w) + 7) / 8

	// Schedule metadata for front-end configs: one schedule per filter.
	if cfg.HasFrontEnd() && !cfg.Pattern.Infinite {
		var bitsTotal int64
		pad := make([]bool, lw.Steps*lw.Lanes)
		for st := 0; st < lw.Steps; st++ {
			for ln := 0; ln < lw.Lanes; ln++ {
				pad[st*lw.Lanes+ln] = lw.IsPad(st, ln)
			}
		}
		for f0 := 0; f0 < lw.Filters; f0 += cfg.FiltersPerTile {
			f1 := f0 + cfg.FiltersPerTile
			if f1 > lw.Filters {
				f1 = lw.Filters
			}
			filters := make([]sched.Filter, f1-f0)
			for i := range filters {
				filters[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
			}
			for _, s := range sched.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler) {
				bitsTotal += SSMetadataBits(s, cfg.Pattern)
			}
		}
		bitsTotal += SSTableBits(cfg.Pattern, lw.Lanes)
		t.MetadataBytes = (bitsTotal + 7) / 8
	}

	// Input activations: compressed, fetched once when the tile's
	// activation scratchpad holds the layer's working set (the Siu et al.
	// sizing the paper adopts), re-fetched per filter-group round when it
	// does not — the capacity cliff that makes on-chip memory "a more
	// energy efficient and thus higher performing choice" (Section 6.2).
	in := lw.Input()
	inBits := CompressedBits(in.Data, w)
	t.ActInBytes = (inBits + 7) / 8
	if cfg.ASBytesPerTile > 0 && t.ActInBytes > int64(cfg.ASBytesPerTile) {
		groups := (lw.Filters + cfg.FiltersPerTile - 1) / cfg.FiltersPerTile
		rounds := int64((groups + cfg.Tiles - 1) / cfg.Tiles)
		if rounds > 1 {
			t.ActInBytes *= rounds
		}
	}

	// Output activations: written once at the input stream's mean
	// compressed bits per value (the next layer's input distribution is the
	// same law).
	outElems := int64(lw.Filters) * int64(lw.WindowCount)
	meanBits := float64(inBits) / float64(len(in.Data))
	t.ActOutBytes = int64(meanBits*float64(outElems)+7) / 8
	return t
}

// MemCycles returns the cycles needed to move the traffic at the tech's
// bandwidth (0 for infinite).
func MemCycles(t Traffic, tech Tech, freqGHz float64) int64 {
	if tech.Infinite() {
		return 0
	}
	bpc := tech.BytesPerCycle(freqGHz)
	return int64(float64(t.Total())/bpc + 0.5)
}

// BoundedCycles overlaps compute with memory: a layer's time is the max of
// its compute cycles and its transfer cycles.
func BoundedCycles(compute int64, t Traffic, tech Tech, freqGHz float64) int64 {
	m := MemCycles(t, tech, freqGHz)
	if m > compute {
		return m
	}
	return compute
}
