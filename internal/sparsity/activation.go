package sparsity

import (
	"math"
	"math/rand"

	"bittactical/internal/fixed"
	"bittactical/internal/tensor"
)

// ActivationModel is the pluggable activation-distribution seam: anything
// that can draw single codes (what the Table-1 potential analysis sees) and
// fill whole layer-input tensors (what the simulator consumes). The legacy
// post-ReLU log-normal law (ActModel) implements it, as do the
// transformer-era GELU and softmax shapes below; workload packages outside
// internal/nn pick one per model — or per layer, via Layer.Act — without
// the engine enumerating distributions anywhere.
//
// Implementations must be usable by value and deterministic in the rng:
// models are cached and shared across goroutines, so a model must carry no
// mutable state.
type ActivationModel interface {
	// Name identifies the distribution family (for fingerprints and docs).
	Name() string
	// Sample draws one activation code at width w from the marginal law.
	Sample(rng *rand.Rand, w fixed.Width) int32
	// FillTensor fills t — interpreted as (1, C, H, W) — with the law's
	// full structure (spatial/channel correlation, row normalization, ...).
	FillTensor(rng *rand.Rand, t *tensor.T, w fixed.Width)
}

// Name identifies the legacy calibrated law: ReLU value sparsity over a
// log-normal magnitude distribution.
func (m ActModel) Name() string { return "relu-lognormal" }

// Compile-time interface checks for every shipped distribution.
var (
	_ ActivationModel = ActModel{}
	_ ActivationModel = GELUAct{}
	_ ActivationModel = SoftmaxAct{}
)

// GELUAct models post-GELU (or post-LayerNorm) activations: signed codes
// whose positive lobe follows the same two-level log-normal law as ActModel,
// but with a substantial negative fraction whose magnitudes are *bounded* —
// GELU's negative output never exceeds ≈0.17·σ while the positive lobe is
// unbounded, so negative codes cluster below a magnitude cap. The signed
// lobe is what sign-magnitude bit-serial back-ends and Booth-term encodings
// (Pragmatic/TCLe) must handle; the bounded cap keeps the negative lobe's
// dynamic precision low, which per-bit-plane accounting (SliceProfile)
// makes visible.
type GELUAct struct {
	// ZeroFrac is the probability a code underflows to exactly zero.
	ZeroFrac float64
	// MeanLog2/SigmaLog2 parameterize the positive lobe's log2-magnitude
	// law, as in ActModel.
	MeanLog2  float64
	SigmaLog2 float64
	// NegFrac is the probability a non-zero code is negative (the token
	// fraction in GELU's negative lobe). Zero value defaults to 0.30.
	NegFrac float64
	// NegCapLog2 caps the log2 magnitude of negative codes. Zero value
	// defaults to MeanLog2 − 2 (the bounded GELU dip).
	NegCapLog2 float64
	// GroupShare / ZeroGroupShare structure the two-level law exactly as in
	// ActModel (token neighborhoods are loud or quiet together); zero
	// values default to 0.95 / 0.92.
	GroupShare     float64
	ZeroGroupShare float64
	// SigBits bounds significant bits of a non-zero code (0 = unlimited).
	SigBits int
}

// Name identifies the GELU-shaped signed law.
func (m GELUAct) Name() string { return "gelu-signed" }

func (m GELUAct) negFrac() float64 {
	if m.NegFrac == 0 {
		return 0.30
	}
	return m.NegFrac
}

func (m GELUAct) negCapLog2() float64 {
	if m.NegCapLog2 == 0 {
		return m.MeanLog2 - 2
	}
	return m.NegCapLog2
}

func (m GELUAct) groupShare() float64 {
	if m.GroupShare == 0 {
		return 0.95
	}
	return m.GroupShare
}

func (m GELUAct) zeroGroupShare() float64 {
	if m.ZeroGroupShare == 0 {
		return 0.92
	}
	return m.ZeroGroupShare
}

// code draws sign and magnitude for one non-zero GELU activation given its
// log2 magnitude before sign handling.
func (m GELUAct) code(rng *rand.Rand, lg float64, w fixed.Width) int32 {
	neg := rng.Float64() < m.negFrac()
	if neg {
		// The negative lobe is bounded: fold the tail back under the cap.
		if c := m.negCapLog2(); lg > c {
			lg = c - (lg-c)*0.25
		}
	}
	return quantizeLog2(lg, neg, m.SigBits, w)
}

// Sample draws one code from the marginal law.
func (m GELUAct) Sample(rng *rand.Rand, w fixed.Width) int32 {
	if rng.Float64() < m.ZeroFrac {
		return 0
	}
	lg := m.MeanLog2 + m.SigmaLog2*rng.NormFloat64()
	return m.code(rng, lg, w)
}

// FillTensor fills t with the structured two-level law: block zero-gating
// and a shared per-patch magnitude factor as in ActModel.FillTensor, with
// GELU sign handling per value.
func (m GELUAct) FillTensor(rng *rand.Rand, t *tensor.T, w fixed.Width) {
	c, h, wd := t.Shape[1], t.Shape[2], t.Shape[3]
	gShare := m.groupShare()
	gSigma := m.SigmaLog2 * math.Sqrt(gShare)
	vSigma := m.SigmaLog2 * math.Sqrt(1-gShare)
	zg := m.zeroGroupShare() * m.ZeroFrac
	zv := 0.0
	if zg < 1 {
		zv = (m.ZeroFrac - zg) / (1 - zg)
	}
	hPatches := (h + blockSpatial - 1) / blockSpatial
	wPatches := (wd + blockSpatial - 1) / blockSpatial
	patchFactor := make([]float64, hPatches*wPatches)
	for i := range patchFactor {
		patchFactor[i] = gSigma * rng.NormFloat64()
	}
	for c0 := 0; c0 < c; c0 += blockChannels {
		for h0 := 0; h0 < h; h0 += blockSpatial {
			for w0 := 0; w0 < wd; w0 += blockSpatial {
				if rng.Float64() < zg {
					continue
				}
				gFactor := patchFactor[(h0/blockSpatial)*wPatches+w0/blockSpatial]
				for ci := c0; ci < c0+blockChannels && ci < c; ci++ {
					for hi := h0; hi < h0+blockSpatial && hi < h; hi++ {
						for wi := w0; wi < w0+blockSpatial && wi < wd; wi++ {
							if rng.Float64() < zv {
								continue
							}
							lg := m.MeanLog2 + gFactor + vSigma*rng.NormFloat64()
							t.Set(0, ci, hi, wi, m.code(rng, lg, w))
						}
					}
				}
			}
		}
	}
}

// SoftmaxAct models attention-probability inputs: within each reduction row
// (the channel axis, i.e. one query's probabilities over all keys) the
// values are a softmax over Gaussian logits, scaled to fixed point. Mass
// concentrates on a few keys per row, so most codes underflow to zero —
// the value sparsity is *emergent* from the row normalization rather than
// dialed in — and the survivors span a wide dynamic range, exactly the
// regime dynamic-precision back-ends exploit on attention×V matmuls.
type SoftmaxAct struct {
	// Temp is the logit standard deviation: higher is peakier rows (more
	// underflow zeros). Zero value defaults to 4 — trained attention heads
	// concentrate, and at 64 keys / Q12 that default underflows a majority
	// of codes.
	Temp float64
	// FracBits is the fixed-point scale of a probability: code =
	// round(p · 2^FracBits). Zero value defaults to 12 (Q12 in a 16-bit
	// datapath; requantization to 8 bits drops the bottom planes).
	FracBits int
	// Keys is the synthetic row length Sample uses for the marginal law
	// (FillTensor uses the tensor's real channel depth). Defaults to 64.
	Keys int
	// SigBits bounds significant bits of a non-zero code (0 = unlimited).
	SigBits int
}

// Name identifies the softmax-row-shaped law.
func (m SoftmaxAct) Name() string { return "softmax-rows" }

func (m SoftmaxAct) temp() float64 {
	if m.Temp == 0 {
		return 4
	}
	return m.Temp
}

func (m SoftmaxAct) fracBits() int {
	if m.FracBits == 0 {
		return 12
	}
	return m.FracBits
}

func (m SoftmaxAct) keys() int {
	if m.Keys == 0 {
		return 64
	}
	return m.Keys
}

// softmaxCodes converts logits in place to fixed-point probability codes,
// returning nothing: logits[i] becomes round(softmax(logits)[i] · 2^frac).
func (m SoftmaxAct) softmaxCodes(logits []float64) {
	maxl := math.Inf(-1)
	for _, l := range logits {
		if l > maxl {
			maxl = l
		}
	}
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxl)
		logits[i] = e
		sum += e
	}
	scale := math.Exp2(float64(m.fracBits()))
	for i, e := range logits {
		logits[i] = math.Round(e / sum * scale)
	}
}

func (m SoftmaxAct) clampCode(p float64, w fixed.Width) int32 {
	v := int32(p)
	if v <= 0 {
		return 0
	}
	v = TruncateSigBits(v, m.SigBits)
	if v > w.MaxInt() {
		v = w.MaxInt()
	}
	return v
}

// Sample draws one code from the marginal law: one element of a synthetic
// Keys-long softmax row (row elements are exchangeable, so any fixed
// position is the marginal).
func (m SoftmaxAct) Sample(rng *rand.Rand, w fixed.Width) int32 {
	logits := make([]float64, m.keys())
	temp := m.temp()
	for i := range logits {
		logits[i] = temp * rng.NormFloat64()
	}
	m.softmaxCodes(logits)
	return m.clampCode(logits[0], w)
}

// FillTensor fills t — (1, C, H, W) — normalizing along the channel axis:
// each (h, w) position is one query's probability row over C keys, the
// layout FC-lowered attention×V layers use (channels are the reduction).
func (m SoftmaxAct) FillTensor(rng *rand.Rand, t *tensor.T, w fixed.Width) {
	c, h, wd := t.Shape[1], t.Shape[2], t.Shape[3]
	logits := make([]float64, c)
	temp := m.temp()
	for hi := 0; hi < h; hi++ {
		for wi := 0; wi < wd; wi++ {
			for ci := range logits {
				logits[ci] = temp * rng.NormFloat64()
			}
			m.softmaxCodes(logits)
			for ci := range logits {
				if v := m.clampCode(logits[ci], w); v != 0 {
					t.Set(0, ci, hi, wi, v)
				}
			}
		}
	}
}
