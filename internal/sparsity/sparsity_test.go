package sparsity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bittactical/internal/bits"
	"bittactical/internal/fixed"
	"bittactical/internal/tensor"
)

func TestPruneMagnitudeExactFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, frac := range []float64{0, 0.25, 0.5, 0.77, 0.95, 1} {
		x := tensor.New(1, 1, 20, 20)
		x.FillGaussian(rng, 300, 30000)
		for i := range x.Data {
			if x.Data[i] == 0 {
				x.Data[i] = 1
			}
		}
		PruneMagnitude(x, frac)
		want := int(frac * 400)
		zeros := 400 - x.NNZ()
		if zeros != want {
			t.Errorf("frac %.2f: zeroed %d, want %d", frac, zeros, want)
		}
	}
}

func TestPruneMagnitudeKeepsLargest(t *testing.T) {
	x := tensor.New(1, 1, 1, 6)
	copy(x.Data, []int32{10, -200, 3, 50, -7, 100})
	PruneMagnitude(x, 0.5)
	want := []int32{0, -200, 0, 50, 0, 100}
	for i := range want {
		if x.Data[i] != want[i] {
			t.Errorf("data[%d] = %d, want %d", i, x.Data[i], want[i])
		}
	}
}

func TestPruneMagnitudeClamps(t *testing.T) {
	x := tensor.New(1, 1, 1, 4)
	x.Fill(5)
	PruneMagnitude(x, 1.7)
	if x.NNZ() != 0 {
		t.Error("frac > 1 should zero everything")
	}
	y := tensor.New(1, 1, 1, 4)
	y.Fill(5)
	PruneMagnitude(y, -0.3)
	if y.NNZ() != 4 {
		t.Error("negative frac should be a no-op")
	}
}

func TestPruneMagnitudeTies(t *testing.T) {
	// All-equal magnitudes: exactly k zeroed despite ties.
	x := tensor.New(1, 1, 1, 10)
	x.Fill(7)
	PruneMagnitude(x, 0.3)
	if got := 10 - x.NNZ(); got != 3 {
		t.Errorf("zeroed %d of tied values, want 3", got)
	}
}

func TestPruneFractionProperty(t *testing.T) {
	f := func(seed int64, fr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		frac := float64(fr%100) / 100
		x := tensor.New(1, 1, 8, 8)
		x.FillGaussian(rng, 500, 30000)
		for i := range x.Data {
			if x.Data[i] == 0 {
				x.Data[i] = -1
			}
		}
		PruneMagnitude(x, frac)
		return 64-x.NNZ() == int(frac*64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestActModelZeroFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := ActModel{ZeroFrac: 0.4, MeanLog2: 6, SigmaLog2: 2}
	n, zeros := 50000, 0
	for i := 0; i < n; i++ {
		if m.Sample(rng, fixed.W16) == 0 {
			zeros++
		}
	}
	got := float64(zeros) / float64(n)
	if math.Abs(got-0.4) > 0.02 {
		t.Errorf("zero fraction %.3f, want ≈0.40", got)
	}
}

func TestActModelMagnitudeLaw(t *testing.T) {
	// Mean log2 magnitude of non-zeros tracks MeanLog2 (truncation shifts
	// it slightly); mean precision must land in the calibrated band.
	rng := rand.New(rand.NewSource(3))
	m := ActModel{ZeroFrac: 0, MeanLog2: 6.5, SigmaLog2: 2.0}
	var sumLog float64
	n := 20000
	for i := 0; i < n; i++ {
		v := m.Sample(rng, fixed.W16)
		if v <= 0 {
			t.Fatalf("NegFrac=0 must yield positive codes, got %d", v)
		}
		sumLog += math.Log2(float64(v))
	}
	mean := sumLog / float64(n)
	if math.Abs(mean-6.5) > 0.5 {
		t.Errorf("mean log2 = %.2f, want ≈6.5", mean)
	}
}

func TestActModelRespectsWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := ActModel{ZeroFrac: 0.1, MeanLog2: 7, SigmaLog2: 3, NegFrac: 0.5}
	for i := 0; i < 10000; i++ {
		v := m.Sample(rng, fixed.W8)
		if v > 127 || v < -127 {
			t.Fatalf("8-bit sample %d out of range", v)
		}
	}
}

func TestWeightModelFillPruned(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(16, 16, 3, 3)
	WeightModel{Sigma: 400}.FillPruned(rng, x, fixed.W16, 0.6)
	got := x.Sparsity()
	if math.Abs(got-0.6) > 0.001 {
		t.Errorf("sparsity %.4f, want 0.60", got)
	}
	for _, v := range x.Data {
		if v > 32767 || v < -32767 {
			t.Fatalf("weight %d out of 16b range", v)
		}
	}
}

func TestRandomSparseFilterExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, sp := range []float64{0, 0.1, 0.5, 0.9, 1.0} {
		w := RandomSparseFilter(rng, 288, 16, sp) // 3×3×512 channels over 16 lanes
		if len(w) != 288*16 {
			t.Fatalf("len = %d", len(w))
		}
		got := SliceSparsity(w)
		if math.Abs(got-sp) > 0.001 {
			t.Errorf("sparsity %.3f, want %.1f", got, sp)
		}
	}
}

func TestSliceSparsityEmpty(t *testing.T) {
	if SliceSparsity(nil) != 0 {
		t.Error("empty slice sparsity should be 0")
	}
}

func TestRequantize8RangeFit(t *testing.T) {
	x := tensor.New(1, 1, 1, 4)
	copy(x.Data, []int32{32000, -16000, 100, 0})
	q := Requantize8(x)
	if q.Data[0] != 125 { // 32000>>8 = 125
		t.Errorf("requantized max = %d, want 125", q.Data[0])
	}
	if q.Data[1] != -63 && q.Data[1] != -62 {
		t.Errorf("requantized -16000 = %d, want ≈-62", q.Data[1])
	}
	if q.Data[2] != 0 {
		t.Errorf("sub-LSB value should round to zero, got %d", q.Data[2])
	}
}

func TestRequantize8SmallRange(t *testing.T) {
	// Values already within 8 bits are preserved exactly.
	x := tensor.New(1, 1, 1, 3)
	copy(x.Data, []int32{100, -100, 7})
	q := Requantize8(x)
	for i, want := range []int32{100, -100, 7} {
		if q.Data[i] != want {
			t.Errorf("data[%d] = %d, want %d", i, q.Data[i], want)
		}
	}
}

func TestRequantize8GrowsSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := ActModel{ZeroFrac: 0.4, MeanLog2: 6, SigmaLog2: 2}
	x := tensor.New(1, 1, 50, 50)
	m.FillTensor(rng, x, fixed.W16)
	q := Requantize8(x)
	if q.Sparsity() <= x.Sparsity() {
		t.Errorf("8b sparsity %.3f should exceed 16b %.3f (sub-LSB rounding)",
			q.Sparsity(), x.Sparsity())
	}
}

func TestCalibrationShapes(t *testing.T) {
	// The calibrated law must produce ResNet-like streams whose ideal Ap
	// and Ae potentials dwarf AlexNet-like streams (Table 1 ordering).
	rng := rand.New(rand.NewSource(8))
	measure := func(m ActModel) (ap, ae float64) {
		var precSum, termSum, n int64
		for i := 0; i < 30000; i++ {
			v := m.Sample(rng, fixed.W16)
			precSum += int64(bits.ValuePrecision(v, fixed.W16).Bits())
			termSum += int64(bits.OneffsetCount(v, fixed.W16))
			n++
		}
		return float64(16*n) / float64(precSum), float64(16*n) / float64(termSum)
	}
	alex := ActModel{ZeroFrac: 0.38, MeanLog2: 6.6, SigmaLog2: 2.4}
	res := ActModel{ZeroFrac: 0.60, MeanLog2: 3.8, SigmaLog2: 2.0}
	apA, aeA := measure(alex)
	apR, aeR := measure(res)
	if apR < 1.5*apA {
		t.Errorf("ResNet Ap %.1f should far exceed AlexNet Ap %.1f", apR, apA)
	}
	if aeR < 1.5*aeA {
		t.Errorf("ResNet Ae %.1f should far exceed AlexNet Ae %.1f", aeR, aeA)
	}
	if aeA < apA {
		t.Errorf("Ae (%.1f) must exceed Ap (%.1f): oneffsets ≤ precision bits", aeA, apA)
	}
}

func TestPruneStructuredAlignsAcrossFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := tensor.New(32, 16, 3, 3)
	WeightModel{Sigma: 300}.FillPruned(rng, w, fixed.W16, 0)
	PruneStructured(w, 0.6, 16)
	got := w.Sparsity()
	if math.Abs(got-0.6) > 0.02 {
		t.Fatalf("structured sparsity %.3f, want ≈0.6", got)
	}
	// Within each 16-filter group, zero positions must coincide exactly.
	positions := 16 * 3 * 3
	for f0 := 0; f0 < 32; f0 += 16 {
		for p := 0; p < positions; p++ {
			zero := w.Data[f0*positions+p] == 0
			for f := f0 + 1; f < f0+16; f++ {
				if (w.Data[f*positions+p] == 0) != zero {
					t.Fatalf("group %d position %d not aligned", f0/16, p)
				}
			}
		}
	}
}

func TestPruneStructuredClamps(t *testing.T) {
	w := tensor.New(4, 4, 1, 1)
	w.Fill(9)
	PruneStructured(w, -1, 16)
	if w.NNZ() != 16 {
		t.Error("negative frac should be a no-op")
	}
	PruneStructured(w, 2, 16)
	if w.NNZ() != 0 {
		t.Error("frac > 1 should zero everything")
	}
}
