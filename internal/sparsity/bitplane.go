package sparsity

import (
	"fmt"

	"bittactical/internal/metrics"
	"bittactical/internal/tensor"
)

// BitPlanes is the number of magnitude bit planes SliceProfile tracks — the
// full 16-bit datapath; 8-bit codes simply never populate the top planes.
const BitPlanes = 16

// SliceProfile extends SliceSparsity to per-bit-plane zero-fraction
// accounting: besides the value-level zero count, it tallies, for each
// magnitude bit plane, how many codes have a zero bit there. Column-based
// bit-serial designs (BitWave) and bit-slice schedulers (SWIS) are
// sensitive to exactly these per-plane fractions — a plane that is zero
// across a whole column can be skipped wholesale — so the profile is the
// calibration input such back-ends read from a workload. Signs are
// accounted separately (NegValues): bit-serial magnitude loops operate on
// |code|, with sign handled out of band.
//
// The zero value is ready to use; Add accumulates across slices.
type SliceProfile struct {
	// Values is the number of codes inspected.
	Values int
	// ZeroValues counts codes that are exactly zero (value sparsity).
	ZeroValues int
	// NegValues counts negative codes (sign-handling load).
	NegValues int
	// PlaneZeros[p] counts codes whose magnitude has a zero bit in plane p
	// (p = 0 is the LSB). A zero code contributes to every plane.
	PlaneZeros [BitPlanes]int
}

// Add accumulates one code slice into the profile.
func (p *SliceProfile) Add(vs []int32) {
	for _, v := range vs {
		p.Values++
		if v == 0 {
			p.ZeroValues++
			for i := 0; i < BitPlanes; i++ {
				p.PlaneZeros[i]++
			}
			continue
		}
		if v < 0 {
			p.NegValues++
			v = -v
		}
		u := uint32(v)
		for i := 0; i < BitPlanes; i++ {
			if u>>uint(i)&1 == 0 {
				p.PlaneZeros[i]++
			}
		}
	}
}

// AddTensor accumulates a whole tensor.
func (p *SliceProfile) AddTensor(t *tensor.T) { p.Add(t.Data) }

// ProfileSlice profiles one slice, the per-bit-plane companion of
// SliceSparsity.
func ProfileSlice(vs []int32) SliceProfile {
	var p SliceProfile
	p.Add(vs)
	return p
}

// ValueSparsity is the exact-zero code fraction — identical to
// SliceSparsity over the same codes.
func (p SliceProfile) ValueSparsity() float64 {
	if p.Values == 0 {
		return 0
	}
	return float64(p.ZeroValues) / float64(p.Values)
}

// PlaneSparsity is the zero-bit fraction of one magnitude plane.
func (p SliceProfile) PlaneSparsity(plane int) float64 {
	if p.Values == 0 || plane < 0 || plane >= BitPlanes {
		return 0
	}
	return float64(p.PlaneZeros[plane]) / float64(p.Values)
}

// BitSparsity is the zero-bit fraction aggregated over every plane: the
// ideal work reduction of a bit-serial engine that could skip every zero
// bit (the Pragmatic bound, before term alignment costs).
func (p SliceProfile) BitSparsity() float64 {
	if p.Values == 0 {
		return 0
	}
	var z int
	for _, n := range p.PlaneZeros {
		z += n
	}
	return float64(z) / float64(p.Values*BitPlanes)
}

// Publish accumulates the profile into the registry's sparsity_slice_*
// counters: aggregate value/bit totals plus one zero-bit counter per plane,
// so a /metrics snapshot exposes the calibration profile a BitWave/SWIS
// style back-end would consume.
func (p SliceProfile) Publish(r *metrics.Registry) {
	r.Counter("sparsity_slice_values_total").Add(int64(p.Values))
	r.Counter("sparsity_slice_zero_values_total").Add(int64(p.ZeroValues))
	r.Counter("sparsity_slice_neg_values_total").Add(int64(p.NegValues))
	r.Counter("sparsity_slice_bits_total").Add(int64(p.Values) * BitPlanes)
	var z int64
	for i, n := range p.PlaneZeros {
		r.Counter(fmt.Sprintf("sparsity_slice_plane_%02d_zero_bits_total", i)).Add(int64(n))
		z += int64(n)
	}
	r.Counter("sparsity_slice_zero_bits_total").Add(z)
}
