package sparsity

import (
	"math/rand"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/tensor"
)

func testGELU() GELUAct {
	return GELUAct{ZeroFrac: 0.15, MeanLog2: 10.5, SigmaLog2: 2.2, NegFrac: 0.35, SigBits: 5}
}

func TestActivationModelNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range []ActivationModel{
		ActModel{ZeroFrac: 0.4, MeanLog2: 10, SigmaLog2: 2},
		testGELU(),
		SoftmaxAct{},
	} {
		n := m.Name()
		if n == "" || names[n] {
			t.Errorf("Name() = %q: empty or duplicate across distributions", n)
		}
		names[n] = true
	}
}

func TestGELUSampleShape(t *testing.T) {
	m := testGELU()
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	zeros, negs, nonzero := 0, 0, 0
	var maxPos, maxNegMag int32
	for i := 0; i < n; i++ {
		v := m.Sample(rng, fixed.W16)
		switch {
		case v == 0:
			zeros++
		case v < 0:
			negs++
			nonzero++
			if -v > maxNegMag {
				maxNegMag = -v
			}
		default:
			nonzero++
			if v > maxPos {
				maxPos = v
			}
		}
		if v > fixed.W16.MaxInt() || v < -fixed.W16.MaxInt() {
			t.Fatalf("code %d out of W16 range", v)
		}
	}
	if zf := float64(zeros) / n; zf < m.ZeroFrac-0.02 || zf > m.ZeroFrac+0.02 {
		t.Errorf("zero fraction = %.3f, want ≈ %.2f", zf, m.ZeroFrac)
	}
	if nf := float64(negs) / float64(nonzero); nf < m.NegFrac-0.03 || nf > m.NegFrac+0.03 {
		t.Errorf("negative fraction = %.3f, want ≈ %.2f", nf, m.NegFrac)
	}
	// The defining GELU property: the negative lobe is bounded well below
	// the positive lobe's tail (the cap folds the tail back).
	if maxNegMag >= maxPos {
		t.Errorf("max |negative| %d >= max positive %d; negative lobe is not bounded", maxNegMag, maxPos)
	}
}

func TestGELUSigBits(t *testing.T) {
	m := testGELU()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		v := m.Sample(rng, fixed.W16)
		if v < 0 {
			v = -v
		}
		if v == 0 {
			continue
		}
		if got := TruncateSigBits(v, m.SigBits); got != v {
			// One documented exception: at the clamp edge, quantizeLog2 drops
			// the rounding-carry LSB instead of overflowing the width.
			if v == fixed.W16.MaxInt()&^1 {
				continue
			}
			t.Fatalf("code %d carries more than %d significant bits", v, m.SigBits)
		}
	}
}

func TestGELUFillTensorDeterministic(t *testing.T) {
	m := testGELU()
	fill := func() *tensor.T {
		a := tensor.New(1, 32, 8, 8)
		m.FillTensor(rand.New(rand.NewSource(11)), a, fixed.W16)
		return a
	}
	a, b := fill(), fill()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("FillTensor not deterministic in the rng at %d: %d vs %d", i, a.Data[i], b.Data[i])
		}
	}
	// The fill carries both lobes and a plausible zero fraction.
	negs, zeros := 0, 0
	for _, v := range a.Data {
		if v < 0 {
			negs++
		}
		if v == 0 {
			zeros++
		}
	}
	if negs == 0 {
		t.Error("GELU fill has no negative codes")
	}
	if zf := float64(zeros) / float64(len(a.Data)); zf < 0.05 || zf > 0.60 {
		t.Errorf("GELU fill zero fraction = %.3f, implausible for ZeroFrac %.2f", zf, m.ZeroFrac)
	}
}

func TestSoftmaxRowsNormalize(t *testing.T) {
	m := SoftmaxAct{FracBits: 12} // default Temp: the peaky trained-attention shape
	a := tensor.New(1, 64, 4, 4)
	m.FillTensor(rand.New(rand.NewSource(7)), a, fixed.W16)
	c, h, w := a.Shape[1], a.Shape[2], a.Shape[3]
	scale := int64(1) << 12
	for hi := 0; hi < h; hi++ {
		for wi := 0; wi < w; wi++ {
			var sum int64
			for ci := 0; ci < c; ci++ {
				v := a.At(0, ci, hi, wi)
				if v < 0 {
					t.Fatalf("softmax code %d is negative", v)
				}
				sum += int64(v)
			}
			// Each row is a rounded probability distribution: the codes sum
			// to 2^FracBits up to per-element rounding (±½ each).
			if diff := sum - scale; diff < -int64(c) || diff > int64(c) {
				t.Errorf("row (%d,%d) codes sum to %d, want ≈ %d", hi, wi, sum, scale)
			}
		}
	}
	// Row normalization concentrates mass: most codes underflow to zero.
	var p SliceProfile
	p.AddTensor(a)
	if vs := p.ValueSparsity(); vs < 0.5 {
		t.Errorf("softmax value sparsity = %.3f, want the emergent majority of zeros", vs)
	}
	if p.NegValues != 0 {
		t.Errorf("softmax profile counts %d negative codes, want 0", p.NegValues)
	}
}

func TestSoftmaxSampleMarginal(t *testing.T) {
	m := SoftmaxAct{} // all defaults: Temp 4, FracBits 12, Keys 64
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	zeros := 0
	for i := 0; i < n; i++ {
		v := m.Sample(rng, fixed.W16)
		if v < 0 || v > fixed.W16.MaxInt() {
			t.Fatalf("sample %d out of range", v)
		}
		if v == 0 {
			zeros++
		}
	}
	zf := float64(zeros) / n
	if zf < 0.4 || zf > 0.99 {
		t.Errorf("marginal zero fraction = %.3f, want the peaky-row majority", zf)
	}
}

// TestSoftmaxRespectsWidth: an 8-bit datapath clamps the peaks instead of
// overflowing.
func TestSoftmaxRespectsWidth(t *testing.T) {
	m := SoftmaxAct{Temp: 6, FracBits: 12}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		if v := m.Sample(rng, fixed.W8); v < 0 || v > fixed.W8.MaxInt() {
			t.Fatalf("W8 sample %d out of range", v)
		}
	}
}
