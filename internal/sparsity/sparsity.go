// Package sparsity provides the value-distribution machinery of the
// reproduction: magnitude pruning to target weight-sparsity levels, the
// calibrated activation synthesizer that stands in for real IMAGENET
// activation traces, and the random sparse filter generator behind the
// paper's Figure 11 sensitivity study.
//
// Substitution note (see DESIGN.md §2): the paper uses published pruned
// models and real activations. Timing and energy depend on (a) the
// zero/non-zero structure of weights, (b) the zero fraction of activations,
// and (c) the bit-level magnitude distribution of activations. This package
// reproduces all three from explicit, calibrated distributions.
package sparsity

import (
	"math"
	mathbits "math/bits"
	"math/rand"
	"sort"

	"bittactical/internal/fixed"
	"bittactical/internal/tensor"
)

// PruneMagnitude zeroes the fraction frac of t's elements with the smallest
// magnitudes, the magnitude-based per-layer pruning rule the paper follows
// for MobileNet and Bi-LSTM (after Narang et al. and Zhu & Gupta). Ties are
// broken arbitrarily but deterministically. frac is clamped to [0, 1].
func PruneMagnitude(t *tensor.T, frac float64) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	n := len(t.Data)
	k := int(frac * float64(n))
	if k <= 0 {
		return
	}
	if k >= n {
		t.Fill(0)
		return
	}
	mags := make([]int32, n)
	for i, v := range t.Data {
		if v < 0 {
			v = -v
		}
		mags[i] = v
	}
	sorted := make([]int32, n)
	copy(sorted, mags)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	threshold := sorted[k-1]
	// Zero strictly-below-threshold first, then zero at-threshold elements
	// until exactly k are gone, so the realized sparsity matches frac.
	zeroed := 0
	for i := range t.Data {
		if mags[i] < threshold {
			t.Data[i] = 0
			zeroed++
		}
	}
	for i := range t.Data {
		if zeroed >= k {
			break
		}
		if mags[i] == threshold && t.Data[i] != 0 {
			t.Data[i] = 0
			zeroed++
		}
	}
}

// ActModel describes the synthetic activation distribution for one network:
// a zero fraction (ReLU value sparsity) and a log-normal magnitude law for
// the non-zero codes, parameterized in the log2 domain so the mean dynamic
// precision is directly controlled.
//
// Real post-ReLU activations are strongly structured: whole channels go
// quiet over image regions (features absent) and magnitudes are locally
// smooth, so the max precision over a hardware sync group tracks the
// per-value precision instead of the distribution tail. FillTensor
// reproduces that structure with a two-level law — a per-block factor shared
// by 16 consecutive channels over a 4×4 spatial patch (the lane-group ×
// window-group sync neighborhood), plus per-value jitter — while Sample
// draws from the equivalent marginal (what the Table 1 per-value potential
// analysis sees).
type ActModel struct {
	// ZeroFrac is the total probability an activation is exactly zero.
	ZeroFrac float64
	// MeanLog2 is the mean of log2(code) for non-zero codes — approximately
	// the mean msb position, i.e. the mean dynamic precision minus one.
	MeanLog2 float64
	// SigmaLog2 is the total standard deviation of log2(code).
	SigmaLog2 float64
	// NegFrac is the probability a non-zero activation is negative (zero for
	// post-ReLU layers; small for network inputs).
	NegFrac float64
	// GroupShare is the fraction of the log-magnitude variance carried by
	// the block factor (0 ⇒ i.i.d.). Zero value defaults to 0.95.
	GroupShare float64
	// ZeroGroupShare is the fraction of zeros arising from fully-inactive
	// blocks. Zero value defaults to 0.92.
	ZeroGroupShare float64
	// SigBits bounds the significant bits of a non-zero code: the value is
	// rounded to its top SigBits bits, leaving trailing zeros below. Real
	// activation traces carry limited mantissa information across a wide
	// dynamic range — the property that makes Dynamic Stripes' prefix+suffix
	// trimming effective at 16 bits AND keeps it effective after 8-bit
	// requantization (Figure 13). Zero means unlimited.
	SigBits int
}

func (m ActModel) groupShare() float64 {
	if m.GroupShare == 0 {
		return 0.95
	}
	return m.GroupShare
}

func (m ActModel) zeroGroupShare() float64 {
	if m.ZeroGroupShare == 0 {
		return 0.92
	}
	return m.ZeroGroupShare
}

// quantizeLog2 converts a log2 magnitude to a clamped non-zero code,
// rounded to sigBits significant bits (0 = unlimited).
func quantizeLog2(lg float64, neg bool, sigBits int, w fixed.Width) int32 {
	if lg < 0 {
		lg = 0
	}
	if limit := float64(int(w) - 1); lg > limit {
		lg = limit
	}
	v := int32(math.Exp2(lg))
	if v < 1 {
		v = 1
	}
	if v > w.MaxInt() {
		v = w.MaxInt()
	}
	v = TruncateSigBits(v, sigBits)
	if v > w.MaxInt() {
		v = w.MaxInt() &^ 1 // rounding carry past the clamp: drop the LSB instead
	}
	if neg {
		v = -v
	}
	return v
}

// TruncateSigBits rounds a positive code to its top sigBits significant
// bits (round half up); sigBits <= 0 returns v unchanged.
func TruncateSigBits(v int32, sigBits int) int32 {
	if sigBits <= 0 || v <= 0 {
		return v
	}
	msb := 31 - mathbits.LeadingZeros32(uint32(v))
	drop := msb - sigBits + 1
	if drop <= 0 {
		return v
	}
	half := int32(1) << uint(drop-1)
	return (v + half) >> uint(drop) << uint(drop)
}

// Sample draws one activation code at width w from the marginal law.
func (m ActModel) Sample(rng *rand.Rand, w fixed.Width) int32 {
	if rng.Float64() < m.ZeroFrac {
		return 0
	}
	lg := m.MeanLog2 + m.SigmaLog2*rng.NormFloat64()
	neg := m.NegFrac > 0 && rng.Float64() < m.NegFrac
	return quantizeLog2(lg, neg, m.SigBits, w)
}

// Correlation neighborhoods of FillTensor: the magnitude scale is shared by
// every channel over a spatial patch (layer regions are loud or quiet as a
// whole), while ReLU zero-gating clusters per channel-block × patch (a
// feature is absent over a region).
const (
	blockChannels = 16
	blockSpatial  = 4
)

// FillTensor fills t — interpreted as (1, C, H, W) — with the structured
// two-level law described on ActModel.
func (m ActModel) FillTensor(rng *rand.Rand, t *tensor.T, w fixed.Width) {
	c, h, wd := t.Shape[1], t.Shape[2], t.Shape[3]
	gShare := m.groupShare()
	gSigma := m.SigmaLog2 * math.Sqrt(gShare)
	vSigma := m.SigmaLog2 * math.Sqrt(1-gShare)
	zg := m.zeroGroupShare() * m.ZeroFrac
	zv := 0.0
	if zg < 1 {
		zv = (m.ZeroFrac - zg) / (1 - zg)
	}
	hPatches := (h + blockSpatial - 1) / blockSpatial
	wPatches := (wd + blockSpatial - 1) / blockSpatial
	// One magnitude factor per spatial patch, shared by all channels.
	patchFactor := make([]float64, hPatches*wPatches)
	for i := range patchFactor {
		patchFactor[i] = gSigma * rng.NormFloat64()
	}
	for c0 := 0; c0 < c; c0 += blockChannels {
		for h0 := 0; h0 < h; h0 += blockSpatial {
			for w0 := 0; w0 < wd; w0 += blockSpatial {
				if rng.Float64() < zg {
					continue // inactive feature block: stays zero
				}
				gFactor := patchFactor[(h0/blockSpatial)*wPatches+w0/blockSpatial]
				for ci := c0; ci < c0+blockChannels && ci < c; ci++ {
					for hi := h0; hi < h0+blockSpatial && hi < h; hi++ {
						for wi := w0; wi < w0+blockSpatial && wi < wd; wi++ {
							if rng.Float64() < zv {
								continue
							}
							lg := m.MeanLog2 + gFactor + vSigma*rng.NormFloat64()
							neg := m.NegFrac > 0 && rng.Float64() < m.NegFrac
							t.Set(0, ci, hi, wi, quantizeLog2(lg, neg, m.SigBits, w))
						}
					}
				}
			}
		}
	}
}

// WeightModel describes the synthetic weight distribution before pruning:
// Gaussian codes with the given sigma, clamped to the width.
type WeightModel struct {
	Sigma float64
}

// FillPruned fills t with Gaussian codes and magnitude-prunes to frac. Any
// value that would round to zero is pushed to ±1 first so the realized
// sparsity is set by pruning alone.
func (wm WeightModel) FillPruned(rng *rand.Rand, t *tensor.T, w fixed.Width, frac float64) {
	for i := range t.Data {
		v := int32(math.Round(rng.NormFloat64() * wm.Sigma))
		if v == 0 {
			if rng.Intn(2) == 0 {
				v = 1
			} else {
				v = -1
			}
		}
		if v > w.MaxInt() {
			v = w.MaxInt()
		}
		if v < w.MinInt() {
			v = w.MinInt()
		}
		t.Data[i] = v
	}
	PruneMagnitude(t, frac)
}

// RandomSparseFilter builds one randomly sparsified filter laid out as a
// Steps×Lanes dense schedule (row-major), the workload of the paper's
// Figure 11: "randomly sparsified 3×3 filters with 512 channels". Exactly
// round(sparsity*len) positions are zero.
func RandomSparseFilter(rng *rand.Rand, steps, lanes int, sparsity float64) []int32 {
	n := steps * lanes
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Intn(200) + 1) // non-zero magnitudes; sign irrelevant
	}
	k := int(math.Round(sparsity * float64(n)))
	if k > n {
		k = n
	}
	// Zero a uniformly random subset of size k.
	perm := rng.Perm(n)
	for _, idx := range perm[:k] {
		out[idx] = 0
	}
	return out
}

// SliceSparsity returns the zero fraction of a code slice.
func SliceSparsity(vs []int32) float64 {
	if len(vs) == 0 {
		return 0
	}
	z := 0
	for _, v := range vs {
		if v == 0 {
			z++
		}
	}
	return float64(z) / float64(len(vs))
}

// Requantize8 derives 8-bit codes from 16-bit codes by the paper's
// range-oblivious linear quantization (Section 6.5): the tensor's value
// range is mapped onto the 8-bit range (largest power-of-two rescale that
// fits), and each code is rounded. Values that land below the new LSB round
// to zero, exactly as an 8-bit quantizer of the same real values produces.
func Requantize8(t *tensor.T) *tensor.T {
	var maxAbs int64
	for _, v := range t.Data {
		a := int64(v)
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	shift := 0
	for maxAbs>>uint(shift) > int64(fixed.W8.MaxInt()) {
		shift++
	}
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = fixed.RequantizeProduct(int64(v), shift, fixed.W8)
	}
	return out
}

// PruneStructured applies Cambricon-S-style coarse-grained pruning to a
// (K, C, R, S) weight tensor: the same (c, r, s) positions are zeroed for
// every filter of a 16-filter group, chosen by the group's summed
// magnitude at each position. The resulting sparsity is "structural" —
// aligned across the filters that share a Bit-Tactical tile — which the
// paper notes TCL supports without requiring (Section 7): the joint
// group schedule compacts structured zeros especially well because every
// filter's window advances together.
func PruneStructured(t *tensor.T, frac float64, filterGroup int) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	k, c, r, s := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	positions := c * r * s
	for f0 := 0; f0 < k; f0 += filterGroup {
		f1 := f0 + filterGroup
		if f1 > k {
			f1 = k
		}
		// Rank positions by group magnitude.
		mags := make([]int64, positions)
		for f := f0; f < f1; f++ {
			for p := 0; p < positions; p++ {
				v := t.Data[f*positions+p]
				if v < 0 {
					v = -v
				}
				mags[p] += int64(v)
			}
		}
		idx := make([]int, positions)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return mags[idx[a]] < mags[idx[b]] })
		kill := int(frac * float64(positions))
		for _, p := range idx[:kill] {
			for f := f0; f < f1; f++ {
				t.Data[f*positions+p] = 0
			}
		}
	}
}
