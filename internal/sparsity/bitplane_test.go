package sparsity

import (
	"fmt"
	"math/rand"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/metrics"
)

func TestSliceProfileKnownCodes(t *testing.T) {
	// 0 (all planes zero), 1 (plane 0 set), -5 (0b101: planes 0 and 2 set,
	// counted as a negative with magnitude accounting), 0x8000 is out of W16
	// positive range so use 0x4000 (plane 14 set).
	p := ProfileSlice([]int32{0, 1, -5, 0x4000})
	if p.Values != 4 || p.ZeroValues != 1 || p.NegValues != 1 {
		t.Fatalf("counts = %+v, want 4 values, 1 zero, 1 negative", p)
	}
	// Set bits per plane across the four codes: plane 0 ← {1, 5}, plane 2 ←
	// {5}, plane 14 ← {0x4000}; every other plane is zero in all four.
	wantZeros := map[int]int{0: 2, 2: 3, 14: 3}
	for plane := 0; plane < BitPlanes; plane++ {
		want := 4
		if z, ok := wantZeros[plane]; ok {
			want = z
		}
		if p.PlaneZeros[plane] != want {
			t.Errorf("PlaneZeros[%d] = %d, want %d", plane, p.PlaneZeros[plane], want)
		}
	}
	if got := p.ValueSparsity(); got != 0.25 {
		t.Errorf("ValueSparsity = %v, want 0.25", got)
	}
	if got, want := p.PlaneSparsity(0), 0.5; got != want {
		t.Errorf("PlaneSparsity(0) = %v, want %v", got, want)
	}
	// Total set bits: 1 has one, 5 has two, 0x4000 has one → 4 of 64.
	if got, want := p.BitSparsity(), 60.0/64.0; got != want {
		t.Errorf("BitSparsity = %v, want %v", got, want)
	}
}

func TestSliceProfileZeroValue(t *testing.T) {
	var p SliceProfile
	if p.ValueSparsity() != 0 || p.BitSparsity() != 0 || p.PlaneSparsity(0) != 0 {
		t.Error("empty profile must report zero sparsity, not NaN")
	}
	if p.PlaneSparsity(-1) != 0 || p.PlaneSparsity(BitPlanes) != 0 {
		t.Error("out-of-range plane must report 0")
	}
}

func TestSliceProfileMatchesSliceSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := ActModel{ZeroFrac: 0.45, MeanLog2: 10, SigmaLog2: 2.5, SigBits: 5}
	vs := make([]int32, 4096)
	for i := range vs {
		vs[i] = m.Sample(rng, fixed.W16)
	}
	p := ProfileSlice(vs)
	if got, want := p.ValueSparsity(), SliceSparsity(vs); got != want {
		t.Errorf("ValueSparsity = %v, SliceSparsity = %v; must agree exactly", got, want)
	}
	// Zero-value planes dominate: bit sparsity can never be below value
	// sparsity (a zero code zeroes every plane).
	if p.BitSparsity() < p.ValueSparsity() {
		t.Errorf("BitSparsity %.3f < ValueSparsity %.3f", p.BitSparsity(), p.ValueSparsity())
	}
}

// TestSliceProfileAccumulates: Add is an accumulator — two slices through
// one profile equal their concatenation.
func TestSliceProfileAccumulates(t *testing.T) {
	a := []int32{0, 7, -3}
	b := []int32{128, 0}
	var p SliceProfile
	p.Add(a)
	p.Add(b)
	whole := ProfileSlice(append(append([]int32{}, a...), b...))
	if p != whole {
		t.Errorf("accumulated profile %+v != whole-slice profile %+v", p, whole)
	}
}

func TestSliceProfilePublish(t *testing.T) {
	r := metrics.NewRegistry()
	p := ProfileSlice([]int32{0, 1, -5, 0x4000})
	p.Publish(r)
	for name, want := range map[string]int64{
		"sparsity_slice_values_total":      4,
		"sparsity_slice_zero_values_total": 1,
		"sparsity_slice_neg_values_total":  1,
		"sparsity_slice_bits_total":        64,
		"sparsity_slice_zero_bits_total":   60,
	} {
		if got := r.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for plane := 0; plane < BitPlanes; plane++ {
		name := fmt.Sprintf("sparsity_slice_plane_%02d_zero_bits_total", plane)
		if got, want := r.Counter(name).Value(), int64(p.PlaneZeros[plane]); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Publish accumulates — a second publish doubles every counter.
	p.Publish(r)
	if got := r.Counter("sparsity_slice_values_total").Value(); got != 8 {
		t.Errorf("second publish: values_total = %d, want 8", got)
	}
}
