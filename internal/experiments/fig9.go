package experiments

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// Fig9 reproduces Figure 9: execution-time breakdowns for TCLe T8<2,5>.
// Parts (a)–(g) census the front-end schedule slots (unpromoted, lookahead,
// lookaside, zero reads, padding) per network; parts (h)–(n) census
// back-end lane time (useful, column sync, tile sync, A-zero, W-zero,
// both-zero). Rows cover a few representative layers plus the total, as in
// the paper.
func Fig9(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	t := &Table{
		ID:    "fig9",
		Title: "Execution time breakdown, TCLe T8<2,5>",
		Header: []string{
			"Model", "Layer",
			"unprom", "lookahead", "lookaside", "zero", "pad", // front-end (a-g)
			"useful", "colsync", "tilesync", "Azero", "Wzero", "bothzero", // back-end (h-n)
		},
	}
	type rowData struct {
		model, layer string
		fe           sched.Stats
		be           sim.Breakdown
	}
	var mu []([]rowData) = make([][]rowData, len(wls))
	errs := make([]error, len(wls))
	parallelDo(o, len(wls), func(wi int) {
		wl := wls[wi]
		picks := representativeLayers(len(wl.Low))
		var total sim.LayerResult
		var rows []rowData
		for li, lw := range wl.Low {
			r := sim.SimulateLayerOpts(cfg, lw, o.simOpts())
			total.BackEnd.Add(r.BackEnd)
			total.FrontEnd.Columns += r.FrontEnd.Columns
			for k := range total.FrontEnd.Slots {
				total.FrontEnd.Slots[k] += r.FrontEnd.Slots[k]
			}
			if picks[li] {
				rows = append(rows, rowData{wl.Model.Name, lw.Name, r.FrontEnd, r.BackEnd})
			}
		}
		rows = append(rows, rowData{wl.Model.Name, "Total", total.FrontEnd, total.BackEnd})
		mu[wi] = rows
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, rows := range mu {
		for _, r := range rows {
			t.Rows = append(t.Rows, formatFig9Row(r.model, r.layer, r.fe, r.be))
		}
	}
	t.Notes = append(t.Notes, "front-end columns are fractions of schedule slots; back-end columns are fractions of lane time")
	return t, nil
}

// representativeLayers picks ~5 evenly-spaced layer indices.
func representativeLayers(n int) map[int]bool {
	picks := map[int]bool{}
	if n <= 5 {
		for i := 0; i < n; i++ {
			picks[i] = true
		}
		return picks
	}
	for i := 0; i < 5; i++ {
		picks[i*(n-1)/4] = true
	}
	return picks
}

func formatFig9Row(model, layer string, fe sched.Stats, be sim.Breakdown) []string {
	var feTotal int64
	for _, v := range fe.Slots {
		feTotal += v
	}
	frac := func(v, total int64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(v)/float64(total))
	}
	beTotal := be.Total()
	return []string{
		model, layer,
		frac(fe.Slots[sched.SlotUnpromoted], feTotal),
		frac(fe.Slots[sched.SlotLookahead], feTotal),
		frac(fe.Slots[sched.SlotLookaside], feTotal),
		frac(fe.Slots[sched.SlotZero], feTotal),
		frac(fe.Slots[sched.SlotPad], feTotal),
		frac(be.Useful, beTotal),
		frac(be.ColumnSync, beTotal),
		frac(be.TileSync, beTotal),
		frac(be.AZero, beTotal),
		frac(be.WZero, beTotal),
		frac(be.BothZero, beTotal),
	}
}
