package experiments

import (
	"context"
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	_ "bittactical/internal/backend/dstripes" // register the plugin back-end
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// configSweep runs an arbitrary config list over the workloads and renders a
// Figure-8-style speedup table: one row per config, one column per model,
// plus the geomean. Shared by the fig8b/fig13 back-end sweep, the
// backends-ext extension, and tclsim's ad-hoc -backend mode.
func configSweep(o Options, wls []*workload, cfgs []arch.Config, id, title string) (*Table, error) {
	for i := range cfgs {
		cfgs[i] = cfgs[i].WithWidth(wls[0].Model.Width)
	}
	t := &Table{ID: id, Title: title, Header: []string{"Config"}}
	for _, wl := range wls {
		t.Header = append(t.Header, wl.Model.Name)
	}
	t.Header = append(t.Header, "Geomean")

	// All (config, model) cells run as one batched engine invocation —
	// parallelism flows through the engine pool, and steady-state re-runs
	// reuse the pooled sweep state and per-worker arenas wholesale.
	cellCfgs := make([]arch.Config, 0, len(cfgs)*len(wls))
	lwss := make([][]*nn.Lowered, 0, len(cfgs)*len(wls))
	for _, cfg := range cfgs {
		for _, wl := range wls {
			cellCfgs = append(cellCfgs, cfg)
			lwss = append(lwss, wl.Low)
		}
	}
	layerss, err := sim.SimulateLoweredSweepContext(context.Background(), cellCfgs, lwss, o.simOpts())
	if err != nil {
		return nil, err
	}
	for ci, cfg := range cfgs {
		label := fmt.Sprintf("%s<%d,%d>", cfg.Backend.Name(), cfg.Pattern.H, cfg.Pattern.D)
		row := []string{label}
		speed := make([]float64, len(wls))
		for wi := range wls {
			speed[wi] = speedupOf(layerss[ci*len(wls)+wi])
			row = append(row, f1(speed[wi]))
		}
		row = append(row, f1(geomean(speed)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// BackendsExt compares the sign-magnitude streaming plugin (dstripes-sm)
// against TCLp — its dynamic-precision counterpart — over the paper's T8<2,5>
// front-end on two zoo networks. The gap between the rows is exactly the
// value of trimming the serial window to [Lo, Hi]: sign-magnitude walks
// every magnitude bit from bit 0, so TCLp can only be faster.
func BackendsExt(o Options) (*Table, error) {
	if len(o.Models) == 0 {
		o.Models = []string{"AlexNet-ES", "GoogLeNet-ES"}
	}
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	sm, err := backend.Lookup("dstripes-sm")
	if err != nil {
		return nil, err
	}
	cfgs := []arch.Config{
		arch.NewTCLBackend(sched.T(2, 5), sm),
		arch.NewTCLBackend(sched.T(2, 5), backend.MustLookup("TCLp")),
	}
	t, err := configSweep(o, wls, cfgs,
		"backends-ext", "Speedup of the dstripes-sm plugin back-end vs TCLp (T8<2,5> front-end)")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"dstripes-sm streams magnitude bits 0..Hi without dynamic-precision trimming; TCLp's advantage is the trimmed window")
	return t, nil
}

// BackendSpeedup runs one registered back-end, by registry name, over the
// fig8b pattern set and the selected models — tclsim's -backend mode. The
// name resolves through backend.Lookup, so plugin back-ends registered by a
// blank import run with no experiment-code changes.
func BackendSpeedup(o Options, name string) (*Table, error) {
	be, err := backend.Lookup(name)
	if err != nil {
		return nil, err
	}
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	var cfgs []arch.Config
	for _, p := range []sched.Pattern{sched.L(1, 6), sched.T(2, 5), sched.L(4, 3)} {
		cfgs = append(cfgs, arch.NewTCLBackend(p, be))
	}
	return configSweep(o, wls, cfgs,
		"backend", fmt.Sprintf("Speedup of back-end %s over DaDianNao++ (all layers)", be.Name()))
}
