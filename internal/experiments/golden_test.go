package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
)

// figureGolden pins every figure output of the legacy zoo bit-identical
// through workload-path refactors: one SHA-256 per (experiment, width) over
// the rendered table, run at a small deterministic scale with all seven
// models. Captured against the pre-registry zooEntry switch; the registry
// path must render byte-identical tables.
//
// Regenerate (after an intentional result change only) with:
//
//	TCL_FIG_GOLDEN_PRINT=1 go test ./internal/experiments -run TestFigureGolden -v
var figureGolden = map[string]string{
	"ablation-sched/w16": "0d994ca841048f44b602e8cac75e7f059fcf9f8cdc53125aa283d3d32f9fde17",
	"ablation-sched/w8":  "0d994ca841048f44b602e8cac75e7f059fcf9f8cdc53125aa283d3d32f9fde17",
	"ablation-sync/w16":  "cc1c90345545a10320184f75f62ae17e860e4c47fc044ab24b860b4dfb7123aa",
	"ablation-sync/w8":   "6d993868df61b767dadcea400e0d633ff8445741685632f98e27811cd2ca4bf0",
	"backends-ext/w16":   "3c06e3bdf8eb9fcc267d54a0b4eed332efd637570a345e5269d98a3131fe08fd",
	"backends-ext/w8":    "dfccf5cb4b77af4f99c9929542fc09bc33809a5defba661c4cd726106fd6f1dc",
	"baselines-ext/w16":  "8c45a13cef7b416b85393c8ce42cbcfd540a0234234047e9a78902d91250da63",
	"baselines-ext/w8":   "44adcde958c5b2a043a9c0c64601aeefd7284fb06283258c475653230f4e4d1d",
	"dataflow/w16":       "c95356d4c2b47e7a9e637b1227e6f897918544c81abab79d0424dd3e22f4fab1",
	"dataflow/w8":        "c95356d4c2b47e7a9e637b1227e6f897918544c81abab79d0424dd3e22f4fab1",
	"fig10/w16":          "f27751d95384c2b16e553ac81fa30a86139f2a0e424c57611a5e2bbb3c725ab4",
	"fig10/w8":           "00d127e7e01fac6c39b74e95734f44f949474fd93fddcfc831834356818fbffd",
	"fig11a/w16":         "e90cd57d90e410be25bd4faddb9bae7e07da5015b19a5ed6eb57424d90d4e532",
	"fig11a/w8":          "e90cd57d90e410be25bd4faddb9bae7e07da5015b19a5ed6eb57424d90d4e532",
	"fig11b/w16":         "046970b7a2896d5496dedad454757f53a668dd5760b3fa5deb2b87ac5cd3c891",
	"fig11b/w8":          "046970b7a2896d5496dedad454757f53a668dd5760b3fa5deb2b87ac5cd3c891",
	"fig12/w16":          "7c47c4f28f956da1a6584e67c9e797fdb92880b2fcd2bb1bc9a087651d3bd9ef",
	"fig12/w8":           "c0db7f24a1719c6cb6c6edaac1e6299aa516cd337dec6ed0c1dd1e70f34fdcdb",
	"fig13/w16":          "72b1e5800ccc9bde1750001ec61520a4becb086aae028d1775029472a0e9b5a8",
	"fig13/w8":           "72b1e5800ccc9bde1750001ec61520a4becb086aae028d1775029472a0e9b5a8",
	"fig8a/w16":          "7adb529cd6b2289500c7198b9716e5ebae156a03aabd11b459be562cb660f8cb",
	"fig8a/w8":           "7adb529cd6b2289500c7198b9716e5ebae156a03aabd11b459be562cb660f8cb",
	"fig8b/w16":          "13840b79414d1ade24753b092358dd714819e02397bc94f1d50c2e0a18dbb4ff",
	"fig8b/w8":           "87be4028d1c7d510fa956697c623232fe28640e700704ff750be4388bbee46a0",
	"fig8c/w16":          "64a788e41035312b7fbc1660dac66a243e7f80bb55ad79d5696d3981dda75b05",
	"fig8c/w8":           "46587e956c708bebfc8d9b720422c423f7c62895bbb2e2d6a75aacf8850ed76c",
	"fig9/w16":           "67af36107d351c44271529e088a0c1548b252dbaece6e544d7b55ccbbab44ed6",
	"fig9/w8":            "3efe105bbd0661210507c58b4508acd1194fa4ad089860e4a4219d683c252c15",
	"ss-coverage/w16":    "666f419e943b94f94dae8180ba3791e1de9fb037799a38b8682562be050e1646",
	"ss-coverage/w8":     "666f419e943b94f94dae8180ba3791e1de9fb037799a38b8682562be050e1646",
	"structured/w16":     "f6a7a97fbcf2d69b1b2569bfd37a731bf8036d8083d03074135c31dc04189eb0",
	"structured/w8":      "f6a7a97fbcf2d69b1b2569bfd37a731bf8036d8083d03074135c31dc04189eb0",
	"table1/w16":         "19efed2ac032efe91eaf7a69c9c78e2d19c8355b9c0c8f671290fd2a6983d47a",
	"table1/w8":          "19efed2ac032efe91eaf7a69c9c78e2d19c8355b9c0c8f671290fd2a6983d47a",
	"table1q8/w16":       "ff1c42cbe9da4294ee33323a774304a7bc123e853a0fa845ff1ab11fe5729ed4",
	"table1q8/w8":        "ff1c42cbe9da4294ee33323a774304a7bc123e853a0fa845ff1ab11fe5729ed4",
}

// goldenOptions is the deterministic small-scale harness the goldens were
// captured at: all seven networks, 0.1/0.25 zoo scale, 3 fig11 trials.
func goldenOptions(w fixed.Width) Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	z.Width = w
	return Options{Zoo: z, Trials: 3}
}

func TestFigureGolden(t *testing.T) {
	printMode := os.Getenv("TCL_FIG_GOLDEN_PRINT") == "1"
	// Every registry experiment that consumes the zoo, at both widths. The
	// width-specific ids (table1q8, fig13) bake their widths in; running
	// them under the W8 harness double-covers the quantized path, which is
	// exactly the point.
	type run struct {
		id string
		w  fixed.Width
	}
	var runs []run
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		switch id {
		case "table2", "table3":
			continue // static tables, no zoo input
		case "attn-table1", "attn-fig8", "attn-batch":
			continue // transformer-era analogs postdate the goldens
		}
		runs = append(runs, run{id, fixed.W16})
		runs = append(runs, run{id, fixed.W8})
	}
	for _, r := range runs {
		key := fmt.Sprintf("%s/w%d", r.id, r.w)
		tab, err := Registry[r.id](goldenOptions(r.w))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		sum := sha256.Sum256([]byte(tab.Render()))
		got := hex.EncodeToString(sum[:])
		if printMode {
			fmt.Printf("\t%q: %q,\n", key, got)
			continue
		}
		want, ok := figureGolden[key]
		if !ok {
			t.Errorf("%s: no golden hash recorded", key)
			continue
		}
		if got != want {
			t.Errorf("%s: render hash %s, golden %s — figure output changed through the workload path", key, got, want)
		}
	}
}
