package experiments

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/energy"
	"bittactical/internal/sched"
)

// Table2 reproduces Table 2: the evaluated configurations.
func Table2() *Table {
	base := arch.DaDianNaoPP()
	t := &Table{
		ID:     "table2",
		Title:  "Baseline DaDianNao++ and TCL configurations",
		Header: []string{"Parameter", "Value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("Tiles", fmt.Sprintf("%d", base.Tiles))
	add("Filters/Tile", fmt.Sprintf("%d", base.FiltersPerTile))
	add("Weights/Filter", fmt.Sprintf("%d", base.Lanes))
	add("AS/Tile", "32KB x 32 banks")
	add("WS/Tile", "2KB x 32 banks")
	add("Precision", base.Width.String())
	add("PSum SPad/PE", "128B DaDianNao++ / 8B TCL")
	add("Act. Buffer/Tile", "1KB x (h+1)")
	add("Frequency", fmt.Sprintf("%.0f GHz", base.FrequencyGHz))
	add("Tech Node", "65nm")
	add("Lookahead", "0-4")
	add("Lookaside", "0-6")
	add("DaDianNao++ Peak Compute BW", fmt.Sprintf("%.0f TOPS", base.PeakTOPS()))
	add("DaDianNao++ Area", fmt.Sprintf("%.2f mm2", energy.AreaOf(base).Total()))
	return t
}

// Table3 reproduces Table 3: area in mm², itemized for the L8<1,6>
// configurations, with normalized totals for the other patterns.
func Table3() *Table {
	t := &Table{
		ID:     "table3",
		Title:  "TCLe and TCLp area (mm2, 65nm)",
		Header: []string{"Component", "TCLe L8<1,6>", "TCLp L8<1,6>", "DaDN++"},
	}
	p16 := sched.L(1, 6)
	e := energy.AreaOf(arch.NewTCL(p16, arch.TCLe))
	p := energy.AreaOf(arch.NewTCL(p16, arch.TCLp))
	d := energy.AreaOf(arch.DaDianNaoPP())
	row := func(name string, a, b, c float64) {
		cell := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", v)
		}
		t.Rows = append(t.Rows, []string{name, cell(a), cell(b), cell(c)})
	}
	row("Compute Core", e.ComputeCore, p.ComputeCore, d.ComputeCore)
	row("Weight Memory", e.WeightMemory, p.WeightMemory, d.WeightMemory)
	row("Activation Select Unit", e.ActSelectUnit, p.ActSelectUnit, d.ActSelectUnit)
	row("Act. Input Buffer", e.ActInputBuffer, p.ActInputBuffer, d.ActInputBuffer)
	row("Act. Output Buffer", e.ActOutputBuf, p.ActOutputBuf, d.ActOutputBuf)
	row("Activation Memory", e.ActMemory, p.ActMemory, d.ActMemory)
	row("Dispatcher", e.Dispatcher, p.Dispatcher, d.Dispatcher)
	row("Offset Generator", e.OffsetGen, p.OffsetGen, d.OffsetGen)
	row("Total", e.Total(), p.Total(), d.Total())
	for _, pat := range []sched.Pattern{sched.L(1, 6), sched.L(2, 5), sched.L(4, 3), sched.T(2, 5)} {
		t.Rows = append(t.Rows, []string{
			"Normalized Total " + pat.Name,
			fmt.Sprintf("%.2fx", energy.NormalizedArea(arch.NewTCL(pat, arch.TCLe))),
			fmt.Sprintf("%.2fx", energy.NormalizedArea(arch.NewTCL(pat, arch.TCLp))),
			"1.00x",
		})
	}
	return t
}
