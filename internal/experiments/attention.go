package experiments

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/sched"
	"bittactical/internal/workloads/attention"
)

// The transformer-era analogs of Table 1 and Figure 8b, over the workload
// zoo internal/workloads/attention registers from outside the engine.
// Importing it here (for its registration side effect and its name list)
// is the only coupling — the runners below reuse the same potential
// analysis and config sweep every paper figure flows through, which is the
// point of the workload seam: a new zoo costs a name list, not a new
// harness.

// attnOptions defaults the model set to the transformer-era zoo.
func attnOptions(o Options) Options {
	if len(o.Models) == 0 {
		o.Models = attention.ModelNames
	}
	return o
}

// AttnTable1 is the Table-1 analog for the transformer-era workloads: the
// ideal performance-improvement potential of each sparsity source, at the
// zoo width.
func AttnTable1(o Options) (*Table, error) {
	o = attnOptions(o)
	return table1At(o, o.zoo().Width, "attn-table1",
		"Transformer-era workloads: performance improvement potential")
}

// AttnFig8 is the Figure-8b analog: full TCLp and TCLe speedups over
// DaDianNao++ for the attention-block and depthwise/group-conv workloads.
func AttnFig8(o Options) (*Table, error) {
	o = attnOptions(o)
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	return configSweep(o, wls, fig8bConfigs(), "attn-fig8",
		"Transformer-era workloads: speedup with activation back-ends (all layers)")
}

// attnBatchSizes is the batch sweep of AttnBatch.
var attnBatchSizes = []int{1, 2, 4}

// AttnBatch sweeps the zoo's batch-size knob on one attention workload
// (the first selected model): token windows multiply, weights are reused
// across the batch, and the speedup of both serial back-ends is reported
// per batch size under the paper's headline T8<2,5> front-end.
func AttnBatch(o Options) (*Table, error) {
	o = attnOptions(o)
	name := o.models()[0]
	cfgs := []arch.Config{
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
	}
	t := &Table{
		ID:     "attn-batch",
		Title:  fmt.Sprintf("Batch-size sweep (%s): weight reuse vs back-end speedup", name),
		Header: []string{"Batch", "MACs", "TCLp", "TCLe"},
	}
	for _, b := range attnBatchSizes {
		ob := o
		ob.Zoo = o.zoo()
		ob.Zoo.Batch = b
		ob.Models = []string{name}
		wls, err := buildWorkloads(ob, ob.Zoo.Width)
		if err != nil {
			return nil, err
		}
		sweep, err := configSweep(ob, wls, cfgs, "attn-batch", "")
		if err != nil {
			return nil, err
		}
		// sweep rows: one per config, cells [label, model, geomean].
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", wls[0].Model.TotalMACs()),
			sweep.Rows[0][1],
			sweep.Rows[1][1],
		})
	}
	t.Notes = append(t.Notes,
		"batch multiplies FC token windows (ZooConfig.Batch); spatial layers are batch-invariant per image")
	return t, nil
}
