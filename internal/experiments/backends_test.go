package experiments

import (
	"strings"
	"testing"
)

func TestBackendsExtQuick(t *testing.T) {
	tab, err := BackendsExt(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want dstripes-sm and TCLp", len(tab.Rows))
	}
	if !strings.HasPrefix(tab.Rows[0][0], "dstripes-sm") || !strings.HasPrefix(tab.Rows[1][0], "TCLp") {
		t.Fatalf("unexpected row order: %q, %q", tab.Rows[0][0], tab.Rows[1][0])
	}
	gm := len(tab.Header) - 1
	sm, tclp := parse(t, tab.Rows[0][gm]), parse(t, tab.Rows[1][gm])
	if sm <= 1 {
		t.Errorf("dstripes-sm geomean speedup %v, want > 1 on pruned models", sm)
	}
	// Sign-magnitude never trims the serial window, so TCLp must win.
	if sm > tclp {
		t.Errorf("dstripes-sm %v outran TCLp %v; cost ordering violated", sm, tclp)
	}
}

func TestBackendSpeedupResolvesRegistry(t *testing.T) {
	o := Quick()
	o.Models = []string{"AlexNet-ES"}
	tab, err := BackendSpeedup(o, "dstripes-sm")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want one per pattern", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if v := parse(t, row[len(row)-1]); v <= 1 {
			t.Errorf("%s: speedup %v, want > 1", row[0], v)
		}
	}
	if _, err := BackendSpeedup(o, "warp"); err == nil {
		t.Error("unknown back-end name must fail")
	} else if !strings.Contains(err.Error(), "warp") {
		t.Errorf("error %q should name the back-end", err)
	}
}
