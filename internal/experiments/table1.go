package experiments

import (
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/potential"
)

// Table1 reproduces Table 1: the ideal performance-improvement potential of
// each sparsity source over a value-agnostic dense execution, at 16 bits.
func Table1(o Options) (*Table, error) {
	return table1At(o, fixed.W16, "table1",
		"Performance improvement potential (16b fixed-point)")
}

// Table1Q8 is the Section 6.5 companion: the same potentials at 8 bits.
func Table1Q8(o Options) (*Table, error) {
	return table1At(o, fixed.W8, "table1q8",
		"Performance improvement potential (8b range-oblivious quantization)")
}

func table1At(o Options, w fixed.Width, id, title string) (*Table, error) {
	wls, err := buildWorkloads(o, w)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Header: append([]string{"Model"}, potential.Keys...)}
	per := make([]map[string]float64, len(wls))
	errs := make([]error, len(wls))
	parallelDo(o, len(wls), func(i int) {
		tal, err := potential.AnalyzeModel(wls[i].Model, wls[i].Acts)
		if err != nil {
			errs[i] = err
			return
		}
		per[i] = tal.Potentials()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	gm := map[string][]float64{}
	for i, wl := range wls {
		row := []string{wl.Model.Name}
		for _, k := range potential.Keys {
			row = append(row, f1(per[i][k]))
			gm[k] = append(gm[k], per[i][k])
		}
		t.Rows = append(t.Rows, row)
	}
	grow := []string{"Geomean"}
	for _, k := range potential.Keys {
		grow = append(grow, f1(geomean(gm[k])))
	}
	t.Rows = append(t.Rows, grow)
	t.Notes = append(t.Notes,
		"A/W/W+A are value-level; Ap uses per-group-of-16 dynamic precision "+
			"(Dynamic Stripes detection), Ae per-value Booth terms (Pragmatic).")
	_ = nn.ModelNames
	return t, nil
}
