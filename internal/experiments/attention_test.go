package experiments

import (
	"strconv"
	"strings"
	"testing"

	"bittactical/internal/nn"
	"bittactical/internal/workloads/attention"
)

// attnQuick sizes the transformer-era runners for unit tests: the smallest
// zoo instantiation, two workloads covering both new activation laws
// (BERT-Attn: GELU + softmax rows; ConvNeXt-DW: depthwise/group convs).
func attnQuick() Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	return Options{Zoo: z, Models: []string{"BERT-Attn", "ConvNeXt-DW"}, Trials: 5}
}

func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a speedup: %v", cell, err)
	}
	return v
}

// TestAttnTable1 runs the Table-1 analog end-to-end over the externally
// registered zoo: a row per workload plus the geomean, every potential > 1
// (the workloads carry both value and bit sparsity worth exploiting).
func TestAttnTable1(t *testing.T) {
	tab, err := AttnTable1(attnQuick())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "attn-table1" {
		t.Errorf("ID = %q", tab.ID)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want 2 workloads + geomean", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if v := parseSpeedup(t, cell); v <= 1 {
				t.Errorf("%s: potential %q <= 1", row[0], cell)
			}
		}
	}
}

// TestAttnFig8 runs the Figure-8b analog: every back-end config beats the
// dense baseline on the attention workloads, and TCLe (effectual terms)
// beats TCLp (dynamic precision) at the same front-end — softmax rows and
// the GELU negative lobe are exactly the bit-sparse regime.
func TestAttnFig8(t *testing.T) {
	tab, err := AttnFig8(attnQuick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty sweep")
	}
	geo := map[string]float64{}
	for _, row := range tab.Rows {
		last := row[len(row)-1]
		if v := parseSpeedup(t, last); v <= 1 {
			t.Errorf("config %q geomean %q <= 1", row[0], last)
		} else {
			geo[row[0]] = v
		}
	}
	var tclp, tcle float64
	for label, v := range geo {
		switch {
		case strings.HasPrefix(label, "TCLp"):
			tclp = v
		case strings.HasPrefix(label, "TCLe"):
			tcle = v
		}
	}
	if tclp == 0 || tcle == 0 {
		t.Fatalf("sweep rows missing TCLp/TCLe labels: %v", geo)
	}
	if tcle <= tclp {
		t.Errorf("TCLe geomean %.2f <= TCLp %.2f; effectual terms should win on attention", tcle, tclp)
	}
}

// TestAttnBatch pins the batch knob's semantics: MACs scale linearly with
// batch (every layer in the attention stack is a batch-scaled FC), and the
// speedups stay > 1 at every batch size.
func TestAttnBatch(t *testing.T) {
	o := attnQuick()
	o.Models = []string{"BERT-Attn"}
	tab, err := AttnBatch(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(attnBatchSizes) {
		t.Fatalf("got %d rows, want %d batch sizes", len(tab.Rows), len(attnBatchSizes))
	}
	var macs1 int64
	for i, row := range tab.Rows {
		b, err := strconv.Atoi(row[0])
		if err != nil || b != attnBatchSizes[i] {
			t.Fatalf("row %d batch = %q, want %d", i, row[0], attnBatchSizes[i])
		}
		m, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			macs1 = m
		} else if m != macs1*int64(b) {
			t.Errorf("batch %d MACs = %d, want %d× batch-1's %d", b, m, b, macs1)
		}
		for _, cell := range row[2:] {
			if v := parseSpeedup(t, cell); v <= 1 {
				t.Errorf("batch %d speedup %q <= 1", b, cell)
			}
		}
	}
}

// TestAttentionZooRegistered: the blank-import seam holds — every
// transformer-era workload resolves through the registry and builds at the
// test scale with layers of both kinds the machinery must lower.
func TestAttentionZooRegistered(t *testing.T) {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	for _, name := range attention.ModelNames {
		m, err := nn.BuildModel(name, z)
		if err != nil {
			t.Fatalf("BuildModel(%q): %v", name, err)
		}
		if len(m.Layers) == 0 || m.TotalMACs() == 0 {
			t.Errorf("%s: empty model", name)
		}
		if m.WeightSparsity() == 0 {
			t.Errorf("%s: weights not pruned", name)
		}
		if m.Act == nil {
			t.Errorf("%s: no activation law", name)
		}
	}
}
