package experiments

import (
	"fmt"
	"math/rand"

	"bittactical/internal/arch"
	"bittactical/internal/dataflow"
	"bittactical/internal/memory"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
	"bittactical/internal/sparsity"
)

// newDeterministicRand builds a seeded source for parallel workers.
func newDeterministicRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SSCoverage quantifies the Section 5.4 reduced-memory front-end: the
// fraction of schedule columns whose mux-select vector falls within a
// 16-entry schedule-select table, and the metadata compression it buys.
// The paper profiles ≈96% coverage on GoogLeNet-ES and does not evaluate
// further; this extension measures it for every network.
func SSCoverage(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	t := &Table{
		ID:     "ss-coverage",
		Title:  "Section 5.4 schedule-select compaction (TCLe T8<2,5>)",
		Header: []string{"Model", "Columns", "Coverage", "Raw KB", "SS KB", "Ratio"},
	}
	type res struct {
		cols, covered int64
		raw, ss       int64
	}
	rs := make([]res, len(wls))
	parallelDo(o, len(wls), func(wi int) {
		wl := wls[wi]
		var r res
		for _, lw := range wl.Low {
			pad := make([]bool, lw.Steps*lw.Lanes)
			for st := 0; st < lw.Steps; st++ {
				for ln := 0; ln < lw.Lanes; ln++ {
					pad[st*lw.Lanes+ln] = lw.IsPad(st, ln)
				}
			}
			for f0 := 0; f0 < lw.Filters; f0 += cfg.FiltersPerTile {
				f1 := f0 + cfg.FiltersPerTile
				if f1 > lw.Filters {
					f1 = lw.Filters
				}
				filters := make([]sched.Filter, f1-f0)
				for i := range filters {
					filters[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
				}
				for _, s := range sched.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler) {
					r.cols += int64(s.Len())
					r.covered += memory.SSCoveredColumns(s)
					r.raw += memory.MetadataBits(s, cfg.Pattern)
					r.ss += memory.SSMetadataBits(s, cfg.Pattern)
				}
			}
			r.ss += memory.SSTableBits(cfg.Pattern, lw.Lanes)
		}
		rs[wi] = r
	})
	for wi, wl := range wls {
		r := rs[wi]
		cov := 0.0
		if r.cols > 0 {
			cov = float64(r.covered) / float64(r.cols)
		}
		t.Rows = append(t.Rows, []string{
			wl.Model.Name,
			fmt.Sprintf("%d", r.cols),
			fmt.Sprintf("%.0f%%", cov*100),
			fmt.Sprintf("%.1f", float64(r.raw)/8/1024),
			fmt.Sprintf("%.1f", float64(r.ss)/8/1024),
			fmt.Sprintf("%.2fx", float64(r.raw)/float64(max64(1, r.ss))),
		})
	}
	t.Notes = append(t.Notes, "paper profiles ~96% coverage for GoogLeNet-ES and leaves evaluation as future work")
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// AblationSync isolates the synchronization costs DESIGN.md calls out: per
// network it reports the front-end speedup with the physically-required
// joint filter-group scheduling versus an idealized per-filter schedule
// (no shared ALC), and the back-end's realized gain versus its
// ideal per-value potential — the two places the design trades performance
// for hardware simplicity.
func AblationSync(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	p := sched.T(2, 5)
	t := &Table{
		ID:    "ablation-sync",
		Title: "Synchronization ablation (T8<2,5>)",
		Header: []string{"Model", "FE joint", "FE per-filter", "group sync cost",
			"TCLe", "FExBE ideal-free", "backend sync cost"},
	}
	type res struct{ feJoint, feSolo, tcle, ideal float64 }
	rs := make([]res, len(wls))
	parallelDo(o, len(wls), func(wi int) {
		wl := wls[wi]
		var r res
		var jointCols, soloCols, dense int64
		for _, lw := range wl.Low {
			pad := make([]bool, lw.Steps*lw.Lanes)
			for st := 0; st < lw.Steps; st++ {
				for ln := 0; ln < lw.Lanes; ln++ {
					pad[st*lw.Lanes+ln] = lw.IsPad(st, ln)
				}
			}
			w := int64(lw.WindowCount)
			for f0 := 0; f0 < lw.Filters; f0 += 16 {
				f1 := f0 + 16
				if f1 > lw.Filters {
					f1 = lw.Filters
				}
				filters := make([]sched.Filter, f1-f0)
				for i := range filters {
					filters[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
				}
				joint := sched.ScheduleGroup(filters, p, sched.Algorithm1)
				jointCols += int64(joint[0].Len()) * w
				// Idealized: every filter compacts independently; the group
				// would finish with the slowest filter.
				worst := 0
				for _, f := range filters {
					if c := sched.ScheduleFilter(f, p, sched.Algorithm1).Len(); c > worst {
						worst = c
					}
				}
				soloCols += int64(worst) * w
				dense += int64(lw.Steps) * w
			}
		}
		r.feJoint = float64(dense) / float64(max64(1, jointCols))
		r.feSolo = float64(dense) / float64(max64(1, soloCols))
		tcle, _ := simulateAll(o, arch.NewTCL(p, arch.TCLe), wl, nil)
		r.tcle = tcle.Speedup()
		// Ideal-free product: FE joint × per-value Ae over the layers.
		be, _ := simulateAll(o, arch.NewTCL(sched.Pattern{}, arch.TCLe), wl, nil)
		r.ideal = r.feJoint * be.Speedup()
		rs[wi] = r
	})
	for wi, wl := range wls {
		r := rs[wi]
		t.Rows = append(t.Rows, []string{
			wl.Model.Name, f2(r.feJoint), f2(r.feSolo),
			fmt.Sprintf("%.0f%%", 100*(1-r.feJoint/r.feSolo)),
			f2(r.tcle), f2(r.ideal),
			fmt.Sprintf("%.0f%%", 100*(1-r.tcle/r.ideal)),
		})
	}
	t.Notes = append(t.Notes,
		"group sync: cost of the shared ASU window across a tile's 16 filters (Section 5.2)",
		"backend sync: the gap between realized TCLe and the front-end x Pragmatic-back-end product")
	_ = nn.ModelNames
	_ = sim.Breakdown{}
	return t, nil
}

// AblationSched extends Figure 11b with the column-optimal matching
// scheduler (maximum bipartite matching per column): how much headroom
// Algorithm 1's exclusive-first heuristic leaves on the table.
func AblationSched(o Options) (*Table, error) {
	series := []struct {
		Label string
		P     sched.Pattern
		Alg   sched.Algorithm
	}{
		{"T8<2,5>/matching", sched.T(2, 5), sched.Matching},
		{"T8<2,5>/Alg1", sched.T(2, 5), sched.Algorithm1},
		{"T8<2,5>/greedy", sched.T(2, 5), sched.GreedySimple},
	}
	res := fig11Sweep(o, series)
	t := fig11Table("ablation-sched",
		"Scheduler ablation: column-optimal matching vs Algorithm 1 vs greedy",
		series2labels(series), res)
	t.Notes = append(t.Notes,
		"matching solves each column exactly (Kuhn's algorithm); Algorithm 1 tracks it within a few percent — the paper's 'nearly optimal' claim, quantified")
	return t, nil
}

// StructuredSparsity measures the front-end on Cambricon-S-style structured
// pruning (zeros aligned across a tile's 16 filters) versus unstructured
// magnitude pruning at the same level — Section 7's claim that "TCL fully
// supports this form of structural sparsity without requiring it".
func StructuredSparsity(o Options) (*Table, error) {
	t := &Table{
		ID:     "structured",
		Title:  "Front-end speedup: structured (Cambricon-S-style) vs unstructured pruning (T8<2,5>)",
		Header: []string{"Sparsity", "unstructured", "structured"},
	}
	lanes, steps, group := 16, fig11Steps, 16
	levels := []float64{0.3, 0.5, 0.7, 0.9}
	rows := make([][2]float64, len(levels))
	parallelDo(o, len(levels)*2, func(ji int) {
		li, structured := ji/2, ji%2 == 1
		rng := newDeterministicRand(o.seed()*77 + int64(li))
		var cols, dense int64
		for trial := 0; trial < o.trials()/4+1; trial++ {
			fs := make([]sched.Filter, group)
			if structured {
				mask := make([]bool, steps*lanes)
				perm := rng.Perm(steps * lanes)
				for _, i := range perm[:int(levels[li]*float64(steps*lanes))] {
					mask[i] = true
				}
				for f := range fs {
					w := make([]int32, steps*lanes)
					for i := range w {
						if !mask[i] {
							w[i] = int32(rng.Intn(200) + 1)
						}
					}
					fs[f] = sched.NewFilter(lanes, steps, w, nil)
				}
			} else {
				for f := range fs {
					fs[f] = sched.NewFilter(lanes, steps,
						sparsity.RandomSparseFilter(rng, steps, lanes, levels[li]), nil)
				}
			}
			cols += int64(sched.ScheduleGroup(fs, sched.T(2, 5), sched.Algorithm1)[0].Len())
			dense += int64(steps)
		}
		rows[li][map[bool]int{false: 0, true: 1}[structured]] = float64(dense) / float64(cols)
	})
	for li, sp := range levels {
		t.Rows = append(t.Rows, []string{
			fmtPct(sp), f2(rows[li][0]), f2(rows[li][1]),
		})
	}
	t.Notes = append(t.Notes, "structured zeros align the 16 filters' windows, so the shared ALC advances freely")
	return t, nil
}

func fmtPct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// Dataflow reports the per-network outcome of the energy-minimizing
// blocking optimization the paper applies to its baseline dataflow
// (Section 6, after Yang et al.): the scratchpad energy of the optimized
// blocking versus the naive single-psum weight-stationary walk.
func Dataflow(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	naive := cfg
	naive.PsumRegsPerPE = 1
	k := dataflow.DefaultCosts()
	t := &Table{
		ID:     "dataflow",
		Title:  "Blocking optimization: scratchpad energy, optimized vs naive walk",
		Header: []string{"Model", "naive uJ", "optimized uJ", "saving", "act-stationary layers"},
	}
	type res struct {
		naive, opt float64
		actSt, n   int
	}
	rs := make([]res, len(wls))
	parallelDo(o, len(wls), func(wi int) {
		wl := wls[wi]
		var r res
		_, r.naive = dataflowNaive(naive, wl.Low, k)
		choices, opt := dataflow.Plan(cfg, wl.Low, k)
		r.opt = opt
		for _, c := range choices {
			if c.Order == dataflow.ActStationary {
				r.actSt++
			}
			r.n++
		}
		rs[wi] = r
	})
	for wi, wl := range wls {
		r := rs[wi]
		t.Rows = append(t.Rows, []string{
			wl.Model.Name,
			fmt.Sprintf("%.1f", r.naive*1e-6),
			fmt.Sprintf("%.1f", r.opt*1e-6),
			fmt.Sprintf("%.0f%%", 100*(1-r.opt/r.naive)),
			fmt.Sprintf("%d/%d", r.actSt, r.n),
		})
	}
	return t, nil
}

// dataflowNaive prices the single-psum weight-stationary walk.
func dataflowNaive(cfg arch.Config, lws []*nn.Lowered, k dataflow.Costs) ([]dataflow.Choice, float64) {
	var total float64
	out := make([]dataflow.Choice, len(lws))
	for i, lw := range lws {
		cands := dataflow.Enumerate(cfg, lw, k)
		// First candidate: weight-stationary, psum block 1.
		out[i] = cands[0]
		total += cands[0].EnergyPJ
	}
	return out, total
}
