package experiments

import (
	"bittactical/internal/accel"
	"bittactical/internal/arch"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// Fig12 reproduces Figure 12: performance versus the other accelerators —
// DaDianNao++ (the 1.0 reference), SCNN, Dynamic Stripes, Pragmatic, and
// TCLp/TCLe at T<2,5> — over convolutional layers (Section 6.4 limits the
// comparison to conv layers because SCNN's FC peak bandwidth is 4× lower).
// SCNNp appears as the paper's Section 6.4 thought experiment.
func Fig12(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	labels := []string{"DaDianNao++", "SCNN", "SCNNp", "DStripes", "Pragmatic", "TCLp<2,5>", "TCLe<2,5>"}
	t := &Table{ID: "fig12", Title: "Performance vs other accelerators (conv layers)", Header: []string{"Accelerator"}}
	for _, wl := range wls {
		t.Header = append(t.Header, wl.Model.Name)
	}
	t.Header = append(t.Header, "Geomean")

	speed := make([][]float64, len(labels))
	for i := range speed {
		speed[i] = make([]float64, len(wls))
	}
	parallelDo(o, len(wls), func(wi int) {
		wl := wls[wi]
		convOnly := func(l *nn.Layer) bool { return l.Kind != nn.FC }
		// sim-backed designs.
		simCfgs := map[int]arch.Config{
			0: arch.DaDianNaoPP(),
			3: arch.NewTCL(sched.Pattern{}, arch.TCLp), // Dynamic Stripes
			4: arch.NewTCL(sched.Pattern{}, arch.TCLe), // Pragmatic
			5: arch.NewTCL(sched.T(2, 5), arch.TCLp),
			6: arch.NewTCL(sched.T(2, 5), arch.TCLe),
		}
		for idx, cfg := range simCfgs {
			res, err := simulateAll(o, cfg, wl, convOnly)
			if err == nil {
				speed[idx][wi] = res.Speedup()
			}
		}
		// Analytic baselines.
		var scnnC, scnnD, scnnpC int64
		for li, lw := range wl.Low {
			if wl.Model.Layers[li].Kind == nn.FC {
				continue
			}
			r := accel.SCNN(lw)
			scnnC += r.Cycles
			scnnD += r.DenseCycles
			scnnpC += accel.SCNNp(lw, wl.Model.Width).Cycles
		}
		if scnnC > 0 {
			speed[1][wi] = float64(scnnD) / float64(scnnC)
		}
		if scnnpC > 0 {
			speed[2][wi] = float64(scnnD) / float64(scnnpC)
		}
	})
	for i, label := range labels {
		row := []string{label}
		for wi := range wls {
			row = append(row, f1(speed[i][wi]))
		}
		row = append(row, f1(geomean(speed[i])))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"DStripes/Pragmatic are the TCL back-ends without the front-end (Section 7's taxonomy)",
		"SCNNp is the Section 6.4 bit-serial SCNN variant with 16x the tiles")
	return t, nil
}

// ExtendedBaselines reports the Section 7 accelerators that do not appear
// in Figure 12's bars — Cambricon-X (W-only) and Cnvlutin (A-only) — as an
// extension table referenced from the related-work discussion.
func ExtendedBaselines(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	labels := []string{"Cambricon-X", "Cnvlutin"}
	t := &Table{ID: "baselines-ext", Title: "Related-work accelerators (conv layers)", Header: []string{"Accelerator"}}
	for _, wl := range wls {
		t.Header = append(t.Header, wl.Model.Name)
	}
	t.Header = append(t.Header, "Geomean")
	speed := make([][]float64, len(labels))
	for i := range speed {
		speed[i] = make([]float64, len(wls))
	}
	parallelDo(o, len(wls), func(wi int) {
		wl := wls[wi]
		var cxC, cxD, cvC int64
		for li, lw := range wl.Low {
			if wl.Model.Layers[li].Kind == nn.FC {
				continue
			}
			r := accel.CambriconX(lw)
			cxC += r.Cycles
			cxD += r.DenseCycles
			cvC += accel.Cnvlutin(lw).Cycles
		}
		if cxC > 0 {
			speed[0][wi] = float64(cxD) / float64(cxC)
		}
		if cvC > 0 {
			speed[1][wi] = float64(cxD) / float64(cvC)
		}
	})
	for i, label := range labels {
		row := []string{label}
		for wi := range wls {
			row = append(row, f1(speed[i][wi]))
		}
		row = append(row, f1(geomean(speed[i])))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: the Figure 8b sweep with 8-bit range-oblivious
// quantization for all systems.
func Fig13(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, fixed.W8)
	if err != nil {
		return nil, err
	}
	return backEndSweep(o, wls, "fig13", "Speedup with 8b quantization (all layers)")
}
