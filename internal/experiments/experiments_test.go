package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse extracts a float from a "1.23x" cell.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table1q8", "table2", "table3", "fig8a", "fig8b",
		"fig8c", "fig9", "fig10", "fig11a", "fig11b", "fig12", "fig13"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Error("IDs() shorter than the required experiment set")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"A", "B"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tab.Render()
	for _, want := range []string{"== x: t ==", "A", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	tab, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // 2 models + geomean
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Ordering invariants: W+A >= W, W+A >= A, Ae >= Ap, W+Ae >= W+Ap.
		a, w, wa := parse(t, row[1]), parse(t, row[2]), parse(t, row[3])
		ap, ae, wap, wae := parse(t, row[4]), parse(t, row[5]), parse(t, row[6]), parse(t, row[7])
		if wa < w-0.05 || wa < a-0.05 {
			t.Errorf("%s: W+A %v below components %v/%v", row[0], wa, w, a)
		}
		if ae < ap || wae < wap {
			t.Errorf("%s: term potentials must dominate precision potentials", row[0])
		}
	}
}

func TestTable1Q8Quick(t *testing.T) {
	tab, err := Table1Q8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t16, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 8-bit Ap/Ae potentials shrink versus 16-bit (less prefix to skip).
	for i := range tab.Rows {
		ap8, ap16 := parse(t, tab.Rows[i][4]), parse(t, t16.Rows[i][4])
		if ap8 >= ap16 {
			t.Errorf("%s: 8b Ap %v should be below 16b %v", tab.Rows[i][0], ap8, ap16)
		}
	}
}

func TestTable2Static(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) < 10 {
		t.Errorf("Table 2 has %d rows", len(tab.Rows))
	}
	s := tab.Render()
	for _, want := range []string{"Tiles", "65nm", "TOPS", "61.2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3Static(t *testing.T) {
	tab := Table3()
	s := tab.Render()
	for _, want := range []string{"Compute Core", "Offset Generator", "Normalized Total", "54.25"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestFig8aQuick(t *testing.T) {
	tab, err := Fig8a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 9 configs × 2 modes − 1 (X has no lookahead-only row).
	if len(tab.Rows) != 17 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	byLabel := map[string][]string{}
	for _, r := range tab.Rows {
		byLabel[r[0]] = r
	}
	gm := len(tab.Header) - 1
	// Lookaside adds on top of lookahead-only for every config.
	full := parse(t, byLabel["T8<2,5>"][gm])
	laOnly := parse(t, byLabel["T8<2,5> (la-only)"][gm])
	if full < laOnly {
		t.Errorf("T8<2,5> full %v below lookahead-only %v", full, laOnly)
	}
	// X<inf,15> is the upper bound.
	x := parse(t, byLabel["X<inf,15>"][gm])
	for label, row := range byLabel {
		if label == "X<inf,15>" {
			continue
		}
		if v := parse(t, row[gm]); v > x+0.05 {
			t.Errorf("%s (%v) exceeds X upper bound (%v)", label, v, x)
		}
	}
	// All speedups >= ~1.
	for _, row := range tab.Rows {
		if v := parse(t, row[gm]); v < 0.99 {
			t.Errorf("%s geomean %v below 1", row[0], v)
		}
	}
}

func TestFig8bQuick(t *testing.T) {
	tab, err := Fig8b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	gm := len(tab.Header) - 1
	// Every TCLe config beats its TCLp sibling (rows 0-2 TCLp, 3-5 TCLe).
	for i := 0; i < 3; i++ {
		p, e := parse(t, tab.Rows[i][gm]), parse(t, tab.Rows[i+3][gm])
		if e <= p {
			t.Errorf("TCLe (%v) must beat TCLp (%v) for config row %d", e, p, i)
		}
	}
}

func TestFig8cQuick(t *testing.T) {
	tab, err := Fig8c(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 2 models × 3 configs
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 3 {
		if eff := parse(t, tab.Rows[i][6]); eff != 1.0 {
			t.Errorf("baseline efficiency %v != 1.0", eff)
		}
		for j := 1; j < 3; j++ {
			if eff := parse(t, tab.Rows[i+j][6]); eff <= 1.0 {
				t.Errorf("%s efficiency %v should exceed baseline", tab.Rows[i+j][1], eff)
			}
		}
	}
}

func TestFig9Quick(t *testing.T) {
	tab, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Fractions in each census sum to ≈1.
	for _, row := range tab.Rows {
		var fe, be float64
		for _, c := range row[2:7] {
			if c != "-" {
				v, _ := strconv.ParseFloat(c, 64)
				fe += v
			}
		}
		for _, c := range row[7:13] {
			if c != "-" {
				v, _ := strconv.ParseFloat(c, 64)
				be += v
			}
		}
		if fe < 0.97 || fe > 1.03 {
			t.Errorf("%s/%s: front-end census sums to %v", row[0], row[1], fe)
		}
		if be < 0.97 || be > 1.03 {
			t.Errorf("%s/%s: back-end census sums to %v", row[0], row[1], be)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	tab, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 2 models × 2 configs
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Speedup must be non-decreasing with memory strength (columns 2..7).
	for _, row := range tab.Rows {
		prev := 0.0
		for c := 2; c <= 7; c++ {
			v := parse(t, row[c])
			if v < prev-0.01 {
				t.Errorf("%s/%s: speedup fell from %v to %v with stronger memory", row[0], row[1], prev, v)
			}
			prev = v
		}
	}
}

func TestFig11aQuick(t *testing.T) {
	tab, err := Fig11a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Dense filters: no speedup; highest sparsity: strong speedup,
	// monotonically non-decreasing for the leading config.
	if v := parse(t, tab.Rows[0][1]); v != 1.0 {
		t.Errorf("0%% sparsity speedup %v != 1.0", v)
	}
	prev := 0.0
	for _, row := range tab.Rows {
		v := parse(t, row[1])
		if v < prev-0.05 {
			t.Errorf("T8<2,5> speedup fell to %v at %s", v, row[0])
		}
		prev = v
	}
	if prev < 3.0 {
		t.Errorf("90%% sparsity speedup %v implausibly low", prev)
	}
}

func TestFig11bQuick(t *testing.T) {
	tab, err := Fig11b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// At high sparsity Algorithm 1 beats greedy on the trident (Figure 11b).
	last := tab.Rows[len(tab.Rows)-1]
	alg1, greedy := parse(t, last[1]), parse(t, last[2])
	if alg1 < greedy-0.05 {
		t.Errorf("Algorithm 1 (%v) below greedy (%v) at 90%% sparsity", alg1, greedy)
	}
}

func TestFig12Quick(t *testing.T) {
	tab, err := Fig12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	gm := len(tab.Header) - 1
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = parse(t, row[gm])
	}
	if vals["DaDianNao++"] != 1.0 {
		t.Errorf("baseline must be 1.0, got %v", vals["DaDianNao++"])
	}
	if vals["TCLe<2,5>"] <= vals["TCLp<2,5>"] {
		t.Error("TCLe must beat TCLp")
	}
	if vals["TCLp<2,5>"] <= vals["DStripes"] {
		t.Error("TCLp must beat Dynamic Stripes (front-end on top)")
	}
	if vals["TCLe<2,5>"] <= vals["Pragmatic"] {
		t.Error("TCLe must beat Pragmatic")
	}
	if vals["TCLe<2,5>"] <= vals["SCNN"] {
		t.Error("TCLe must beat SCNN")
	}
}

func TestFig13Quick(t *testing.T) {
	tab, err := Fig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t16, err := Fig8b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	gm := len(tab.Header) - 1
	for i := range tab.Rows {
		v8, v16 := parse(t, tab.Rows[i][gm]), parse(t, t16.Rows[i][gm])
		if v8 <= 1.0 {
			t.Errorf("%s: 8b speedup %v should remain considerable", tab.Rows[i][0], v8)
		}
		if v8 >= v16 {
			t.Errorf("%s: 8b speedup %v should trail 16b %v", tab.Rows[i][0], v8, v16)
		}
	}
}

func TestExtendedBaselinesQuick(t *testing.T) {
	tab, err := ExtendedBaselines(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
}

func TestQuickOptionsHelpers(t *testing.T) {
	o := Options{}
	if len(o.models()) != 7 {
		t.Error("default models should be the paper's seven")
	}
	if o.seed() == 0 || o.workers() <= 0 {
		t.Error("defaults unset")
	}
	if o.trials() != 100 {
		t.Errorf("default trials = %d, want the paper's 100", o.trials())
	}
	if Quick().trials() != 5 {
		t.Error("quick trials should be small")
	}
}

func TestSSCoverageQuick(t *testing.T) {
	tab, err := SSCoverage(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio := parse(t, row[5])
		if ratio <= 1.0 {
			t.Errorf("%s: SS compaction ratio %v should exceed 1", row[0], ratio)
		}
	}
}

func TestAblationSyncQuick(t *testing.T) {
	tab, err := AblationSync(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		joint, solo := parse(t, row[1]), parse(t, row[2])
		if joint > solo+0.05 {
			t.Errorf("%s: joint scheduling (%v) cannot beat per-filter ideal (%v)", row[0], joint, solo)
		}
		tcle, ideal := parse(t, row[4]), parse(t, row[5])
		if tcle > ideal*1.35 {
			t.Errorf("%s: realized TCLe %v too far above the ideal-free product %v", row[0], tcle, ideal)
		}
	}
}

func TestAblationSchedQuick(t *testing.T) {
	tab, err := AblationSched(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		matching, alg1, greedy := parse(t, row[1]), parse(t, row[2]), parse(t, row[3])
		if alg1 > matching*1.05 {
			t.Errorf("%s: Algorithm 1 (%v) implausibly beats matching (%v)", row[0], alg1, matching)
		}
		if greedy > alg1*1.05 {
			t.Errorf("%s: greedy (%v) implausibly beats Algorithm 1 (%v)", row[0], greedy, alg1)
		}
	}
}

func TestStructuredSparsityQuick(t *testing.T) {
	tab, err := StructuredSparsity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		un, st := parse(t, row[1]), parse(t, row[2])
		if st < un*0.98 {
			t.Errorf("%s: structured (%v) should not trail unstructured (%v)", row[0], st, un)
		}
	}
	// At 90% sparsity structured zeros eliminate the group-sync loss
	// entirely: the group schedules as well as a single filter would
	// (compare fig11a's T8<2,5> at 90%), clearly ahead of unstructured.
	last := tab.Rows[len(tab.Rows)-1]
	if parse(t, last[2]) < 1.05*parse(t, last[1]) {
		t.Errorf("at 90%% sparsity structured (%s) should clearly exceed unstructured (%s)", last[2], last[1])
	}
}

func TestDataflowQuick(t *testing.T) {
	tab, err := Dataflow(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		naive, opt := parseF(t, row[1]), parseF(t, row[2])
		if opt > naive {
			t.Errorf("%s: optimized %v costs more than naive %v", row[0], opt, naive)
		}
	}
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}
