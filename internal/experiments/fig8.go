package experiments

import (
	"context"
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/energy"
	"bittactical/internal/memory"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// fig8aConfigs are Figure 8a's front-end sweep, in the paper's order.
var fig8aConfigs = []string{
	"L4<1,2>", "L8<1,6>", "L8<2,5>", "L8<3,4>", "L8<4,3>", "L8<5,2>",
	"L8<6,1>", "T8<2,5>", "X<inf,15>",
}

// Fig8a reproduces Figure 8a: speedup from front-end weight skipping alone
// (bit-parallel back-end), reporting lookahead-only and full (lookahead +
// lookaside) speedups per configuration.
func Fig8a(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig8a",
		Title:  "Speedup with front-end weight skipping only (bottom: lookahead only, top: +lookaside)",
		Header: []string{"Config"},
	}
	for _, wl := range wls {
		t.Header = append(t.Header, wl.Model.Name)
	}
	t.Header = append(t.Header, "Geomean")

	// Every (config, mode, model) cell joins one batched engine invocation:
	// parallelism flows through the engine's own pool instead of one engine
	// entry per cell, which is what lets the pooled sweep state and worker
	// arenas reach their zero-alloc steady state across the whole figure.
	type cell struct{ cfgIdx, wlIdx, mode int } // mode 0 = lookahead-only, 1 = full
	speed := make([][2][]float64, len(fig8aConfigs))
	for i := range speed {
		speed[i][0] = make([]float64, len(wls))
		speed[i][1] = make([]float64, len(wls))
	}
	var (
		cells []cell
		cfgs  []arch.Config
		lwss  [][]*nn.Lowered
	)
	for ci, name := range fig8aConfigs {
		p, err := sched.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mode := range []int{0, 1} {
			pm := p
			if mode == 0 {
				if p.Infinite {
					for wi := range wls {
						speed[ci][0][wi] = 1 // X has no lookahead-only form
					}
					continue
				}
				pm = p.LookaheadOnly()
			}
			cfg := arch.FrontEndOnly(pm)
			for wi := range wls {
				cells = append(cells, cell{ci, wi, mode})
				cfgs = append(cfgs, cfg)
				lwss = append(lwss, wls[wi].Low)
			}
		}
	}
	layerss, err := sim.SimulateLoweredSweepContext(context.Background(), cfgs, lwss, o.simOpts())
	if err != nil {
		return nil, err
	}
	for k, c := range cells {
		speed[c.cfgIdx][c.mode][c.wlIdx] = speedupOf(layerss[k])
	}
	for ci, name := range fig8aConfigs {
		for _, mode := range []int{0, 1} {
			label := name + " (la-only)"
			if mode == 1 {
				label = name
			}
			if name == "X<inf,15>" && mode == 0 {
				continue
			}
			row := []string{label}
			for wi := range wls {
				row = append(row, f2(speed[ci][mode][wi]))
			}
			row = append(row, f2(geomean(speed[ci][mode])))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// fig8bConfigs returns Figure 8b's six accelerator configurations: both
// back-ends over <1,6>, <2,5> and <4,3>; the <2,5> designs use the Trident
// interconnect (Section 6.2), the others the L shape.
func fig8bConfigs() []arch.Config {
	pats := []sched.Pattern{sched.L(1, 6), sched.T(2, 5), sched.L(4, 3)}
	var out []arch.Config
	for _, be := range []arch.BackEnd{arch.TCLp, arch.TCLe} {
		for _, p := range pats {
			out = append(out, arch.NewTCL(p, be))
		}
	}
	return out
}

// Fig8b reproduces Figure 8b: full TCLp and TCLe speedups over DaDianNao++
// for all layers.
func Fig8b(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	return backEndSweep(o, wls, "fig8b", "Speedup with activation back-ends (all layers)")
}

// backEndSweep runs fig8bConfigs over the workloads (shared with Fig13).
func backEndSweep(o Options, wls []*workload, id, title string) (*Table, error) {
	return configSweep(o, wls, fig8bConfigs(), id, title)
}

// Fig8c reproduces Figure 8c: per-image energy breakdown (logic, on-chip
// buffers, off-chip transfers) and energy efficiency relative to
// DaDianNao++, over convolutional layers (Section 6.2 limits attention to
// conv layers to enable the SCNN comparison).
func Fig8c(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	cfgs := []arch.Config{
		arch.DaDianNaoPP(),
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
	}
	tech, _ := memory.TechByName("LPDDR4-3200")
	k := energy.Defaults65nm()
	t := &Table{
		ID:     "fig8c",
		Title:  "Energy breakdown (uJ/image, conv layers) and efficiency vs DaDianNao++",
		Header: []string{"Model", "Config", "Logic", "On-chip", "Off-chip", "Total", "Efficiency"},
	}
	type cell struct{ b energy.Breakdown }
	grid := make([][]cell, len(wls))
	for i := range grid {
		grid[i] = make([]cell, len(cfgs))
	}
	parallelDo(o, len(wls)*len(cfgs), func(i int) {
		wi, ci := i/len(cfgs), i%len(cfgs)
		wl, cfg := wls[wi], cfgs[ci]
		var sum energy.Breakdown
		for li, lw := range wl.Low {
			if wl.Model.Layers[li].Kind == nn.FC {
				continue
			}
			r := sim.SimulateLayerOpts(cfg, lw, o.simOpts())
			tr := memory.LayerTraffic(cfg, lw)
			sum.Add(energy.Price(cfg, r.Activity, tr, tech, k))
		}
		grid[wi][ci] = cell{b: sum}
	})
	uj := func(pj float64) string { return fmt.Sprintf("%.1f", pj*1e-6) }
	var effP, effE []float64
	for wi, wl := range wls {
		base := grid[wi][0].b.TotalPJ()
		for ci, cfg := range cfgs {
			b := grid[wi][ci].b
			eff := base / b.TotalPJ()
			t.Rows = append(t.Rows, []string{
				wl.Model.Name, cfg.Name, uj(b.LogicPJ), uj(b.OnChipPJ),
				uj(b.OffChipPJ), uj(b.TotalPJ()), f2(eff),
			})
			switch ci {
			case 1:
				effP = append(effP, eff)
			case 2:
				effE = append(effE, eff)
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("average efficiency: TCLp %.2fx, TCLe %.2fx (paper: 2.22x / 2.13x)",
			geomean(effP), geomean(effE)))
	return t, nil
}

// simulateAll simulates every layer of a workload under cfg on o's engine
// options; layerFilter (when non-nil) selects layers.
func simulateAll(o Options, cfg arch.Config, wl *workload, layerFilter func(*nn.Layer) bool) (*sim.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &sim.Result{Config: cfg.Name}
	for li, lw := range wl.Low {
		if layerFilter != nil && !layerFilter(wl.Model.Layers[li]) {
			continue
		}
		res.Layers = append(res.Layers, sim.SimulateLayerOpts(cfg, lw, o.simOpts()))
	}
	return res, nil
}
