package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
)

// fig11Steps is the Figure 11 workload geometry: 3×3 filters with 512
// channels over 16 lanes -> 288 schedule steps.
const (
	fig11Steps = 3 * 3 * 512 / 16
	fig11Lanes = 16
)

func (o Options) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	return 100
}

// sparsityLevels is Figure 11's x-axis: 0%..90% in 10% increments.
var sparsityLevels = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// fig11Sweep schedules `trials` random filters per sparsity level for each
// (pattern, algorithm) series and returns geomean speedups (dense steps /
// schedule columns) per level.
func fig11Sweep(o Options, series []struct {
	Label string
	P     sched.Pattern
	Alg   sched.Algorithm
}) [][]float64 {
	out := make([][]float64, len(series))
	for i := range out {
		out[i] = make([]float64, len(sparsityLevels))
	}
	type job struct{ si, li int }
	var jobs []job
	for si := range series {
		for li := range sparsityLevels {
			jobs = append(jobs, job{si, li})
		}
	}
	parallelDo(o, len(jobs), func(ji int) {
		j := jobs[ji]
		s := series[j.si]
		// The seed depends only on the sparsity level, not the series, so
		// every series schedules the same filters (paired comparison).
		rng := rand.New(rand.NewSource(o.seed()*1000 + int64(j.li)))
		// Incremental log-sum geomean: same accumulation order (and so the
		// same float result) as collecting the per-trial speedups and calling
		// geomean, without growing a slice per (series, level) point. Speedups
		// are always positive (cols >= 1), so geomean's nonpositive guard
		// never fired here.
		n := o.trials()
		var logSum float64
		for trial := 0; trial < n; trial++ {
			w := sparsity.RandomSparseFilter(rng, fig11Steps, fig11Lanes, sparsityLevels[j.li])
			f := sched.NewFilter(fig11Lanes, fig11Steps, w, nil)
			cols := sched.ScheduleFilter(f, s.P, s.Alg).Len()
			if cols == 0 {
				cols = 1
			}
			logSum += math.Log(float64(fig11Steps) / float64(cols))
		}
		out[j.si][j.li] = math.Exp(logSum / float64(n))
	})
	return out
}

// Fig11a reproduces Figure 11a: speedup vs weight sparsity for the
// lookahead/lookaside trade-off — T8<2,5>, T8<3,4>, T8<1,6> and T4<2,2> on
// randomly sparsified 3×3×512 filters.
func Fig11a(o Options) (*Table, error) {
	mk := func(name string) sched.Pattern {
		p, err := sched.ByName(name)
		if err != nil {
			panic(err)
		}
		return p
	}
	series := []struct {
		Label string
		P     sched.Pattern
		Alg   sched.Algorithm
	}{
		{"T8<2,5>", mk("T8<2,5>"), sched.Algorithm1},
		{"T8<3,4>", mk("T8<3,4>"), sched.Algorithm1},
		{"T8<1,6>", mk("T8<1,6>"), sched.Algorithm1},
		{"T4<2,2>", mk("T4<2,2>"), sched.Algorithm1},
	}
	res := fig11Sweep(o, series)
	return fig11Table("fig11a",
		"Speedup vs weight sparsity: lookahead/lookaside configurations "+
			fmt.Sprintf("(random 3x3x512 filters, %d/point)", o.trials()),
		series2labels(series), res), nil
}

// Fig11b reproduces Figure 11b: the effect of the scheduler (Algorithm 1 vs
// simple greedy) and the interconnect (Trident vs L) at each sparsity level.
func Fig11b(o Options) (*Table, error) {
	series := []struct {
		Label string
		P     sched.Pattern
		Alg   sched.Algorithm
	}{
		{"T8<2,5>/Alg1", sched.T(2, 5), sched.Algorithm1},
		{"T8<2,5>/greedy", sched.T(2, 5), sched.GreedySimple},
		{"L8<2,5>/Alg1", sched.L(2, 5), sched.Algorithm1},
		{"L8<2,5>/greedy", sched.L(2, 5), sched.GreedySimple},
	}
	res := fig11Sweep(o, series)
	return fig11Table("fig11b",
		"Speedup vs weight sparsity: scheduler and interconnect effects "+
			fmt.Sprintf("(random 3x3x512 filters, %d/point)", o.trials()),
		series2labels(series), res), nil
}

func series2labels(series []struct {
	Label string
	P     sched.Pattern
	Alg   sched.Algorithm
}) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func fig11Table(id, title string, labels []string, res [][]float64) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"Sparsity"}}
	t.Header = append(t.Header, labels...)
	for li, sp := range sparsityLevels {
		row := []string{fmt.Sprintf("%.0f%%", sp*100)}
		for si := range labels {
			row = append(row, f2(res[si][li]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
