// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each runner returns a Table whose rows mirror the
// paper's rows/series; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sim"
	"bittactical/internal/tensor"
)

// Options configures a run.
type Options struct {
	// Zoo instantiates the model zoo; zero value uses nn.DefaultZoo().
	Zoo nn.ZooConfig
	// ActSeed drives activation synthesis.
	ActSeed int64
	// Models restricts the networks (nil = the paper's seven).
	Models []string
	// Trials is the per-point filter count for Figure 11 (0 = the paper's
	// 100).
	Trials int
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
}

func (o Options) zoo() nn.ZooConfig {
	if o.Zoo == (nn.ZooConfig{}) {
		return nn.DefaultZoo()
	}
	return o.Zoo
}

func (o Options) models() []string {
	if len(o.Models) == 0 {
		return nn.ModelNames
	}
	return o.Models
}

func (o Options) seed() int64 {
	if o.ActSeed == 0 {
		return 7
	}
	return o.ActSeed
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// simOpts threads the experiment worker budget into the simulation engine,
// so one flag governs both the job-level fan-out (configs × models) and the
// per-simulation (layer, filter-group) pool.
func (o Options) simOpts() sim.Options {
	return sim.Options{Parallelism: o.Parallelism}
}

// Quick returns options sized for unit tests: two small networks.
func Quick() Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	return Options{Zoo: z, Models: []string{"AlexNet-ES", "MobileNet"}, Trials: 5}
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	line(dashes(widths))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// workload is a built model with its activation tensors and lowered layers.
// Workloads returned by buildWorkloads are shared through a process-wide
// cache and must be treated as immutable.
type workload struct {
	Model *nn.Model
	Acts  []*tensor.T
	Low   []*nn.Lowered
}

// workloadKey is everything a built workload depends on: the (fully
// resolved) zoo configuration including the width override, the model
// name, and the activation seed. Model construction and activation
// generation are deterministic functions of exactly these inputs, so a
// cached workload is bit-identical to a fresh build.
type workloadKey struct {
	zoo  nn.ZooConfig
	name string
	seed int64
}

// workloadEntry single-flights one build; concurrent requesters share it.
// The built workload is published through an atomic pointer so the cache's
// fast path can observe a completed build without entering the sync.Once
// (a plain field write inside the Do would race with that peek).
type workloadEntry struct {
	once sync.Once
	wl   atomic.Pointer[workload]
	err  error
}

// workloadCacheCap bounds resident workloads. An experiment session uses a
// handful of (zoo, width) variants over at most the seven zoo models;
// the bound only matters for long-lived processes sweeping many zoo
// scales, and the drop-all-on-overflow policy matches the other caches.
const workloadCacheCap = 64

// workloadCache memoizes built workloads process-wide. Model building
// dominated the steady-state allocation profile of every figure runner
// (PruneMagnitude, weight fill, tensor allocation — rebuilt per run before
// this cache); the figures re-run over identical options, so steady state
// now rebuilds nothing.
var (
	workloadMu    sync.Mutex
	workloadCache = make(map[workloadKey]*workloadEntry)
)

// buildWorkload returns the cached workload for the key, building it on
// first use (single-flighted: racing runners share one build).
func buildWorkload(key workloadKey) (*workload, error) {
	workloadMu.Lock()
	e, ok := workloadCache[key]
	if !ok {
		if len(workloadCache) >= workloadCacheCap {
			workloadCache = make(map[workloadKey]*workloadEntry)
		}
		e = &workloadEntry{}
		workloadCache[key] = e
	}
	workloadMu.Unlock()
	e.once.Do(func() {
		m, err := nn.BuildModel(key.name, key.zoo)
		if err != nil {
			e.err = err
			return
		}
		acts := m.GenerateActs(key.seed)
		low, err := m.Lowered(16, acts)
		if err != nil {
			e.err = err
			return
		}
		e.wl.Store(&workload{Model: m, Acts: acts, Low: low})
	})
	return e.wl.Load(), e.err
}

// buildWorkloads instantiates and lowers the selected models in parallel,
// through the process-wide cache — steady-state re-runs of a figure hit
// every model.
func buildWorkloads(o Options, width fixed.Width) ([]*workload, error) {
	names := o.models()
	out := make([]*workload, len(names))
	z := o.zoo()
	z.Width = width
	// Steady-state fast path: when every workload is already resident the
	// lookups are map probes — spawning the parallelDo scaffolding
	// (goroutines, closures, a semaphore channel) per figure run would be
	// the only allocation left on an otherwise warm path, and it scales
	// with the worker count, breaking parallel-vs-serial alloc parity.
	if cachedWorkloads(z, names, o.seed(), out) {
		return out, nil
	}
	errs := make([]error, len(names))
	parallelDo(o, len(names), func(i int) {
		out[i], errs[i] = buildWorkload(workloadKey{zoo: z, name: names[i], seed: o.seed()})
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// cachedWorkloads fills out from the cache alone, reporting whether every
// named workload was already built (it stops at the first absent or
// still-building entry; partial fills are ignored by the caller).
func cachedWorkloads(z nn.ZooConfig, names []string, seed int64, out []*workload) bool {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	for i, name := range names {
		e, ok := workloadCache[workloadKey{zoo: z, name: name, seed: seed}]
		if !ok {
			return false
		}
		wl := e.wl.Load()
		if wl == nil {
			return false
		}
		out[i] = wl
	}
	return true
}

// parallelDo runs fn(i) for i in [0, n) on the option's worker budget.
func parallelDo(o Options, n int, fn func(i int)) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.workers())
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// fx formats v as a fixed-precision "1.23x" cell. strconv.AppendFloat into
// a stack buffer costs exactly the result string — fmt.Sprintf's boxing
// and buffer management was a visible slice of the figure runners'
// residual steady-state allocations — and rounds identically to %.Nf
// (fmt's float verbs are AppendFloat underneath).
func fx(v float64, prec int) string {
	var arr [24]byte
	b := strconv.AppendFloat(arr[:0], v, 'f', prec, 64)
	b = append(b, 'x')
	return string(b)
}

func f1(v float64) string { return fx(v, 1) }
func f2(v float64) string { return fx(v, 2) }

// speedupOf is sim.Result.Speedup over a bare layer slice: total dense
// cycles against total actual cycles. The batched figure runners consume
// engine cells as []sim.LayerResult without assembling a Result per cell.
func speedupOf(layers []sim.LayerResult) float64 {
	var cycles, dense int64
	for i := range layers {
		cycles += layers[i].Cycles
		dense += layers[i].DenseCycles
	}
	if cycles == 0 {
		return 1
	}
	return float64(dense) / float64(cycles)
}

// Registry maps experiment ids to runners.
var Registry = map[string]func(Options) (*Table, error){
	"table1":   Table1,
	"table1q8": Table1Q8,
	"table2":   func(o Options) (*Table, error) { return Table2(), nil },
	"table3":   func(o Options) (*Table, error) { return Table3(), nil },
	"fig8a":    Fig8a,
	"fig8b":    Fig8b,
	"fig8c":    Fig8c,
	"fig9":     Fig9,
	"fig10":    Fig10,
	"fig11a":   Fig11a,
	"fig11b":   Fig11b,
	"fig12":    Fig12,
	"fig13":    Fig13,
	// Extensions beyond the paper's figures.
	"attn-table1":    AttnTable1,
	"attn-fig8":      AttnFig8,
	"attn-batch":     AttnBatch,
	"backends-ext":   BackendsExt,
	"baselines-ext":  ExtendedBaselines,
	"ss-coverage":    SSCoverage,
	"ablation-sync":  AblationSync,
	"ablation-sched": AblationSched,
	"structured":     StructuredSparsity,
	"dataflow":       Dataflow,
}

// IDs returns the experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
