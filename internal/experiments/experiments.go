// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each runner returns a Table whose rows mirror the
// paper's rows/series; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sim"
	"bittactical/internal/tensor"
)

// Options configures a run.
type Options struct {
	// Zoo instantiates the model zoo; zero value uses nn.DefaultZoo().
	Zoo nn.ZooConfig
	// ActSeed drives activation synthesis.
	ActSeed int64
	// Models restricts the networks (nil = the paper's seven).
	Models []string
	// Trials is the per-point filter count for Figure 11 (0 = the paper's
	// 100).
	Trials int
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
}

func (o Options) zoo() nn.ZooConfig {
	if o.Zoo == (nn.ZooConfig{}) {
		return nn.DefaultZoo()
	}
	return o.Zoo
}

func (o Options) models() []string {
	if len(o.Models) == 0 {
		return nn.ModelNames
	}
	return o.Models
}

func (o Options) seed() int64 {
	if o.ActSeed == 0 {
		return 7
	}
	return o.ActSeed
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// simOpts threads the experiment worker budget into the simulation engine,
// so one flag governs both the job-level fan-out (configs × models) and the
// per-simulation (layer, filter-group) pool.
func (o Options) simOpts() sim.Options {
	return sim.Options{Parallelism: o.Parallelism}
}

// Quick returns options sized for unit tests: two small networks.
func Quick() Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	return Options{Zoo: z, Models: []string{"AlexNet-ES", "MobileNet"}, Trials: 5}
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	line(dashes(widths))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// workload is a built model with its activation tensors and lowered layers.
type workload struct {
	Model *nn.Model
	Acts  []*tensor.T
	Low   []*nn.Lowered
}

// buildWorkloads instantiates and lowers the selected models in parallel.
func buildWorkloads(o Options, width fixed.Width) ([]*workload, error) {
	names := o.models()
	out := make([]*workload, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.workers())
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			z := o.zoo()
			z.Width = width
			m, err := nn.BuildModel(name, z)
			if err != nil {
				errs[i] = err
				return
			}
			acts := m.GenerateActs(o.seed())
			low, err := m.Lowered(16, acts)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = &workload{Model: m, Acts: acts, Low: low}
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parallelDo runs fn(i) for i in [0, n) on the option's worker budget.
func parallelDo(o Options, n int, fn func(i int)) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.workers())
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

func f1(v float64) string { return fmt.Sprintf("%.1fx", v) }
func f2(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Registry maps experiment ids to runners.
var Registry = map[string]func(Options) (*Table, error){
	"table1":   Table1,
	"table1q8": Table1Q8,
	"table2":   func(o Options) (*Table, error) { return Table2(), nil },
	"table3":   func(o Options) (*Table, error) { return Table3(), nil },
	"fig8a":    Fig8a,
	"fig8b":    Fig8b,
	"fig8c":    Fig8c,
	"fig9":     Fig9,
	"fig10":    Fig10,
	"fig11a":   Fig11a,
	"fig11b":   Fig11b,
	"fig12":    Fig12,
	"fig13":    Fig13,
	// Extensions beyond the paper's figures.
	"backends-ext":   BackendsExt,
	"baselines-ext":  ExtendedBaselines,
	"ss-coverage":    SSCoverage,
	"ablation-sync":  AblationSync,
	"ablation-sched": AblationSched,
	"structured":     StructuredSparsity,
	"dataflow":       Dataflow,
}

// IDs returns the experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
