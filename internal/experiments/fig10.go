package experiments

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/memory"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// Fig10 reproduces Figure 10: TCLp and TCLe (T<2,5>) speedup over
// DaDianNao++ under each off-chip memory technology, annotated with the
// peak frames/s and effective TOPS at the least capable technology that
// reaches peak performance (the paper's bar labels).
func Fig10(o Options) (*Table, error) {
	wls, err := buildWorkloads(o, o.zoo().Width)
	if err != nil {
		return nil, err
	}
	cfgs := []arch.Config{
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Speedup with off-chip memory technologies (T<2,5>)",
		Header: []string{"Model", "Config"},
	}
	for _, tech := range memory.Techs {
		t.Header = append(t.Header, tech.Name)
	}
	t.Header = append(t.Header, "peak fps", "eff TOPS")

	type res struct {
		speed   []float64
		fps     float64
		effTOPS float64
	}
	grid := make([][]res, len(wls))
	for i := range grid {
		grid[i] = make([]res, len(cfgs))
	}
	parallelDo(o, len(wls)*len(cfgs), func(i int) {
		wi, ci := i/len(cfgs), i%len(cfgs)
		wl, cfg := wls[wi], cfgs[ci]
		// Per-layer compute cycles and traffic are technology-independent.
		type layerRun struct {
			compute, baseCompute int64
			traffic              memory.Traffic
			baseTraffic          memory.Traffic
			macs                 int64
		}
		base := arch.DaDianNaoPP()
		runs := make([]layerRun, len(wl.Low))
		for li, lw := range wl.Low {
			r := sim.SimulateLayerOpts(cfg, lw, o.simOpts())
			runs[li] = layerRun{
				compute:     r.Cycles,
				baseCompute: r.DenseCycles,
				traffic:     memory.LayerTraffic(cfg, lw),
				baseTraffic: memory.LayerTraffic(base, lw),
				macs:        r.MACs,
			}
		}
		out := res{speed: make([]float64, len(memory.Techs))}
		for ti, tech := range memory.Techs {
			var tcl, dense, macs int64
			for _, lr := range runs {
				tcl += memory.BoundedCycles(lr.compute, lr.traffic, tech, cfg.FrequencyGHz)
				dense += memory.BoundedCycles(lr.baseCompute, lr.baseTraffic, tech, cfg.FrequencyGHz)
				macs += lr.macs
			}
			if tcl > 0 {
				out.speed[ti] = float64(dense) / float64(tcl)
			}
			// Peak fps/TOPS at the strongest (infinite) configuration.
			if tech.Infinite() && tcl > 0 {
				out.fps = cfg.FrequencyGHz * 1e9 / float64(tcl)
				out.effTOPS = 2 * float64(macs) * out.fps / 1e12
			}
		}
		grid[wi][ci] = out
	})
	for wi, wl := range wls {
		for ci, cfg := range cfgs {
			r := grid[wi][ci]
			row := []string{wl.Model.Name, cfg.Backend.Name()}
			for _, s := range r.speed {
				row = append(row, f2(s))
			}
			row = append(row, fmt.Sprintf("%.0f", r.fps), fmt.Sprintf("%.2f", r.effTOPS))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, "rightmost bandwidth column is the infinite off-chip bandwidth reference used elsewhere")
	return t, nil
}
