// Package accel models the comparison accelerators of the paper's Figure 12
// and Section 7, each with the dataflow bottlenecks the paper attributes to
// it. All models are normalized to the same 1K-multiplier budget as
// DaDianNao++ and TCL (Section 6: SCNN was evaluated with 1K multipliers, so
// TCL and DaDianNao++ are configured with 4 tiles).
//
//   - SCNN (Parashar et al.): W+A Cartesian-product dataflow — 64 PEs with
//     4×4 multiplier arrays, input activations spatially tiled, products
//     routed through a crossbar to accumulator banks. Losses modeled:
//     4-way fragmentation ceilings, spatial tiling imbalance (small feature
//     maps leave PEs idle), crossbar/accumulator contention, and the 4×
//     peak-bandwidth penalty on fully-connected layers.
//   - SCNNp (Section 6.4): the paper's thought experiment replacing SCNN's
//     multipliers with bit-serial MACs at 16× the tile count; inter-tile
//     imbalance grows with the finer spatial tiling.
//   - Cambricon-X (Zhang et al.): weight skipping only — each PE fetches 16
//     compacted non-zero weights; inter-filter imbalance bounds the gain.
//   - Cnvlutin (Albericio et al.): activation skipping only — per-lane
//     non-zero activation streams with independent weight ports, lane
//     imbalance bounds the gain.
//
// Dynamic Stripes and Pragmatic are exactly TCL back-ends without the
// front-end and are produced by the sim package (arch.NewTCL with an empty
// pattern); see experiments.Fig12.
package accel

import (
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
)

// LayerCycles is a baseline model's outcome for one layer.
type LayerCycles struct {
	Name        string
	Cycles      int64
	DenseCycles int64
	MACs        int64
}

// Speedup returns DenseCycles/Cycles.
func (l LayerCycles) Speedup() float64 {
	if l.Cycles == 0 {
		return 1
	}
	return float64(l.DenseCycles) / float64(l.Cycles)
}

// denseCycles is the DaDianNao++ reference used by every model here,
// matching sim.SimulateLayer's normalization: 64 resident filters (4 tiles ×
// 16 rows), 16 lanes, one window at a time per tile.
func denseCycles(lw *nn.Lowered) int64 {
	groups := (lw.Filters + 15) / 16
	rounds := (groups + 3) / 4
	return int64(rounds) * int64(lw.Steps) * int64(lw.WindowCount)
}

// ---- SCNN ----

// scnnGeom describes an SCNN-style PE grid.
type scnnGeom struct {
	gridH, gridW int // PE grid
	vecA, vecW   int // per-PE activation/weight vector widths (4×4 array)
	// crossbarStall derates for output-crossbar and accumulator-bank
	// contention (SCNN's dynamic product routing, Section 1: >21% PE area
	// and measurable stalls).
	crossbarStall float64
}

var scnnBase = scnnGeom{gridH: 8, gridW: 8, vecA: 4, vecW: 4, crossbarStall: 1.15}

// SCNN models the layer on the 8×8-PE SCNN configuration.
func SCNN(lw *nn.Lowered) LayerCycles {
	return scnnModel(lw, scnnBase, nil, fixed.W16, "SCNN")
}

// SCNNp models the bit-serial SCNN variant of Section 6.4: a 32×32 grid of
// bit-serial PEs; each product group costs its activations' dynamic
// precision instead of one cycle.
func SCNNp(lw *nn.Lowered, width fixed.Width) LayerCycles {
	g := scnnGeom{gridH: 32, gridW: 32, vecA: 4, vecW: 4, crossbarStall: 1.15}
	prec := func(vs []int32) int {
		p := bits.GroupPrecision(vs, width).Bits()
		if p < 1 {
			p = 1
		}
		return p
	}
	return scnnModel(lw, g, prec, width, "SCNNp")
}

// scnnModel runs the Cartesian-product timing model. When prec is non-nil,
// each activation-vector fetch costs the group's dynamic precision
// (bit-serial MACs); otherwise one cycle.
func scnnModel(lw *nn.Lowered, g scnnGeom, prec func([]int32) int, width fixed.Width, name string) LayerCycles {
	r := LayerCycles{Name: name, DenseCycles: denseCycles(lw), MACs: lw.Layer().MACs()}
	l := lw.Layer()
	if l.Kind == nn.FC {
		r.Cycles = scnnFC(lw, g)
		return r
	}

	in := lw.Input()
	h, w := l.InH, l.InW
	npe := g.gridH * g.gridW

	// Non-zero weights per absolute input channel across all filters and
	// kernel positions (broadcast to every PE). Grouped convolutions map a
	// filter's local channel index into its group's slice.
	nzW := make([]int64, l.C)
	if l.Kind == nn.Depthwise {
		for c := 0; c < l.C; c++ {
			for rr := 0; rr < l.R; rr++ {
				for ss := 0; ss < l.S; ss++ {
					if l.Weights.At(c, 0, rr, ss) != 0 {
						nzW[c]++
					}
				}
			}
		}
	} else {
		gc := l.GroupChannels()
		for k := 0; k < l.K; k++ {
			off := 0
			if l.Groups > 1 {
				off = (k / (l.K / l.Groups)) * gc
			}
			for c := 0; c < gc; c++ {
				for rr := 0; rr < l.R; rr++ {
					for ss := 0; ss < l.S; ss++ {
						if l.Weights.At(k, c, rr, ss) != 0 {
							nzW[off+c]++
						}
					}
				}
			}
		}
	}

	// Per-PE cycles: Σ_c Σ_phases ceil(nzA_pe/vecA) × ceil(nzW_phase/vecW)
	// [× precision]. SCNN's "any weight × any activation" property holds
	// per stride phase: for stride s the layer decomposes into s² unit-
	// stride sub-convolutions, each pairing 1/s² of the activations with
	// 1/s² of the weights.
	phases := l.Stride * l.Stride
	if phases < 1 {
		phases = 1
	}
	peCycles := make([]int64, npe)
	vals := make([]int32, 0, 16)
	for c := 0; c < l.C; c++ {
		nzWPhase := (nzW[c] + int64(phases) - 1) / int64(phases)
		wCost := (nzWPhase + int64(g.vecW) - 1) / int64(g.vecW)
		if wCost == 0 {
			continue
		}
		for pi := 0; pi < g.gridH; pi++ {
			y0, y1 := pi*h/g.gridH, (pi+1)*h/g.gridH
			for pj := 0; pj < g.gridW; pj++ {
				x0, x1 := pj*w/g.gridW, (pj+1)*w/g.gridW
				var nzA int64
				vals = vals[:0]
				for y := y0; y < y1; y++ {
					for x := x0; x < x1; x++ {
						if v := in.At(0, c, y, x); v != 0 {
							nzA++
							if prec != nil && len(vals) < cap(vals) {
								vals = append(vals, v)
							}
						}
					}
				}
				if nzA == 0 {
					continue
				}
				nzAPhase := (nzA + int64(phases) - 1) / int64(phases)
				cost := (nzAPhase + int64(g.vecA) - 1) / int64(g.vecA) * wCost * int64(phases)
				if prec != nil {
					cost *= int64(prec(vals))
				}
				peCycles[pi*g.gridW+pj] += cost
			}
		}
	}
	var max int64
	for _, c := range peCycles {
		if c > max {
			max = c
		}
	}
	r.Cycles = int64(float64(max) * g.crossbarStall)
	if r.Cycles < 1 {
		r.Cycles = 1
	}
	// Bit-serial SCNNp must normalize against a bit-parallel budget: its
	// extra tiles already compensate, so no width scaling here — the 16×
	// grid supplies the throughput, imbalance supplies the loss.
	return r
}

// scnnFC models the 4×-reduced peak bandwidth on fully-connected layers:
// effectual products stream at a quarter of the multiplier budget.
func scnnFC(lw *nn.Lowered, g scnnGeom) int64 {
	l := lw.Layer()
	in := lw.Input()
	var products int64
	for win := 0; win < lw.WindowCount; win++ {
		for c := 0; c < l.C; c++ {
			var a int32
			if in.Shape[3] == lw.WindowCount && lw.WindowCount > 1 {
				a = in.At(0, c, 0, win)
			} else {
				a = in.Data[c]
			}
			if a == 0 {
				continue
			}
			for k := 0; k < l.K; k++ {
				if l.Weights.At(k, c, 0, 0) != 0 {
					products++
				}
			}
		}
	}
	budget := int64(g.gridH * g.gridW * g.vecA * g.vecW / 4)
	cycles := (products + budget - 1) / budget
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}

// ---- Cambricon-X ----

// CambriconX models weight-only skipping: 64 resident filters (matching the
// multiplier budget), each PE consuming 16 compacted non-zero weights per
// cycle; a window completes when its slowest resident filter does.
func CambriconX(lw *nn.Lowered) LayerCycles {
	r := LayerCycles{Name: "Cambricon-X", DenseCycles: denseCycles(lw), MACs: lw.Layer().MACs()}
	const resident = 64
	lanes := lw.Lanes
	var total int64
	for f0 := 0; f0 < lw.Filters; f0 += resident {
		f1 := f0 + resident
		if f1 > lw.Filters {
			f1 = lw.Filters
		}
		var worst int64
		for f := f0; f < f1; f++ {
			var nnz int64
			for st := 0; st < lw.Steps; st++ {
				for ln := 0; ln < lanes; ln++ {
					if lw.Weight(f, st, ln) != 0 {
						nnz++
					}
				}
			}
			if c := (nnz + int64(lanes) - 1) / int64(lanes); c > worst {
				worst = c
			}
		}
		if worst < 1 {
			worst = 1
		}
		total += worst
	}
	r.Cycles = total * int64(lw.WindowCount)
	return r
}

// ---- Cnvlutin ----

// Cnvlutin models activation-only skipping: each of the 16 activation lanes
// streams its channel's non-zeros with an independent weight port; a window
// completes when the slowest lane drains (ZeNA behaves comparably). Grouped
// convolutions are approximated by the first group's activation stream.
func Cnvlutin(lw *nn.Lowered) LayerCycles {
	r := LayerCycles{Name: "Cnvlutin", DenseCycles: denseCycles(lw), MACs: lw.Layer().MACs()}
	lanes := lw.Lanes
	groups := (lw.Filters + 15) / 16
	rounds := int64((groups + 3) / 4)
	var sum int64
	laneNNZ := make([]int64, lanes)
	for win := 0; win < lw.WindowCount; win++ {
		for ln := 0; ln < lanes; ln++ {
			laneNNZ[ln] = 0
		}
		for st := 0; st < lw.Steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				if lw.Act(0, win, st, ln) != 0 {
					laneNNZ[ln]++
				}
			}
		}
		var worst int64 = 1
		for _, n := range laneNNZ {
			if n > worst {
				worst = n
			}
		}
		sum += worst
	}
	r.Cycles = sum * rounds
	return r
}

// SCNNe is the paper's other unevaluated extension (Section 6.4 closes with
// "SCNNp and SCNNe"): SCNN with Pragmatic-style term-serial MACs at 16× the
// tiles — each activation-vector fetch costs the group's worst oneffset
// count instead of its dynamic precision.
func SCNNe(lw *nn.Lowered, width fixed.Width) LayerCycles {
	g := scnnGeom{gridH: 32, gridW: 32, vecA: 4, vecW: 4, crossbarStall: 1.15}
	cost := func(vs []int32) int {
		c := bits.SerialCyclesTCLe(vs, width)
		if c < 1 {
			c = 1
		}
		return c
	}
	return scnnModel(lw, g, cost, width, "SCNNe")
}
