package accel

import (
	"math/rand"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

func mkConv(t *testing.T, seed int64, k, c, in int, wSp, aZero float64) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: k, C: c, R: 3, S: 3, Stride: 1, Pad: 1, InH: in, InW: in}
	l.Weights = tensor.New(k, c, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, wSp)
	act := tensor.New(1, c, in, in)
	sparsity.ActModel{ZeroFrac: aZero, MeanLog2: 5, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

func TestSCNNGainsFromBothSparsities(t *testing.T) {
	dense := mkConv(t, 1, 32, 32, 16, 0, 0)
	sparse := mkConv(t, 2, 32, 32, 16, 0.7, 0.5)
	sd := SCNN(dense).Speedup()
	ss := SCNN(sparse).Speedup()
	if ss <= sd {
		t.Errorf("SCNN on sparse layer (%.2f) must beat dense layer (%.2f)", ss, sd)
	}
	if ss < 2.0 {
		t.Errorf("SCNN on 70%%W/50%%A layer speedup %.2f implausibly low", ss)
	}
}

func TestSCNNSmallMapImbalance(t *testing.T) {
	// Section 6.4: 7×7-class feature maps map poorly onto SCNN's 8×8 PEs;
	// per-MAC efficiency must drop versus a large map at equal sparsity.
	big := mkConv(t, 3, 32, 32, 32, 0.6, 0.4)
	small := mkConv(t, 4, 32, 32, 7, 0.6, 0.4)
	sb, ssm := SCNN(big).Speedup(), SCNN(small).Speedup()
	if ssm >= sb {
		t.Errorf("small map speedup %.2f should trail large map %.2f", ssm, sb)
	}
}

func TestSCNNFCPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := &nn.Layer{Name: "fc", Kind: nn.FC, K: 256, C: 256, R: 1, S: 1}
	l.Weights = tensor.New(256, 256, 1, 1)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.5)
	act := tensor.New(1, 256, 1, 1)
	sparsity.ActModel{ZeroFrac: 0.3, MeanLog2: 5, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	lw, _ := nn.Lower(l, act, 16)
	got := SCNN(lw)
	// W+A potential here ≈ 1/(0.5×0.7) ≈ 2.9, but the 4× FC bandwidth
	// penalty must cap the realized speedup well below it.
	if got.Speedup() > 1.5 {
		t.Errorf("SCNN FC speedup %.2f should be throttled by the 1/4 peak BW", got.Speedup())
	}
}

func TestSCNNpBeatsSCNNOnLargeFirstLayer(t *testing.T) {
	// Section 6.4: SCNNp wins on first-layer-sized maps (large x/y).
	big := mkConv(t, 6, 16, 16, 64, 0.4, 0.35)
	s, sp := SCNN(big).Speedup(), SCNNp(big, fixed.W16).Speedup()
	if sp <= s {
		t.Errorf("SCNNp (%.2f) should beat SCNN (%.2f) on a 64×64 map", sp, s)
	}
}

func TestSCNNpDegradesOnSmallMaps(t *testing.T) {
	small := mkConv(t, 7, 32, 32, 8, 0.5, 0.4)
	s, sp := SCNN(small).Speedup(), SCNNp(small, fixed.W16).Speedup()
	if sp >= s*1.6 {
		t.Errorf("SCNNp (%.2f) should lose most of its edge on an 8×8 map (SCNN %.2f)", sp, s)
	}
}

func TestCambriconXTracksWeightSparsity(t *testing.T) {
	for _, wsp := range []float64{0.0, 0.5, 0.8} {
		lw := mkConv(t, 8, 64, 32, 12, wsp, 0.4)
		got := CambriconX(lw).Speedup()
		ideal := 1.0 / (1.0 - wsp)
		if got > ideal+1e-9 {
			t.Errorf("Cambricon-X speedup %.2f exceeds ideal %.2f at sparsity %.1f", got, ideal, wsp)
		}
		if got < 0.5*ideal {
			t.Errorf("Cambricon-X speedup %.2f below half of ideal %.2f", got, ideal)
		}
	}
}

func TestCambriconXIgnoresActivations(t *testing.T) {
	a := mkConv(t, 9, 32, 32, 12, 0.6, 0.0)
	b := mkConv(t, 9, 32, 32, 12, 0.6, 0.0)
	// Rewrite b's activations to all-dense large values; cycles must match.
	b.Input().Fill(12345)
	ca, cb := CambriconX(a).Cycles, CambriconX(b).Cycles
	if ca != cb {
		t.Errorf("Cambricon-X cycles vary with activations: %d vs %d", ca, cb)
	}
}

func TestCnvlutinTracksActivationSparsity(t *testing.T) {
	low := mkConv(t, 10, 32, 32, 12, 0.6, 0.1)
	high := mkConv(t, 11, 32, 32, 12, 0.6, 0.6)
	sl, sh := Cnvlutin(low).Speedup(), Cnvlutin(high).Speedup()
	if sh <= sl {
		t.Errorf("Cnvlutin speedup %.2f at 60%%A should beat %.2f at 10%%A", sh, sl)
	}
	if sl < 1.0 {
		t.Errorf("Cnvlutin speedup %.2f below 1", sl)
	}
}

func TestCnvlutinIgnoresWeights(t *testing.T) {
	a := mkConv(t, 12, 32, 32, 12, 0.0, 0.4)
	cyc := Cnvlutin(a).Cycles
	for i := range a.Layer().Weights.Data {
		if i%3 == 0 {
			a.Layer().Weights.Data[i] = 0
		}
	}
	if got := Cnvlutin(a).Cycles; got != cyc {
		t.Errorf("Cnvlutin cycles vary with weights: %d vs %d", got, cyc)
	}
}

func TestDenseCyclesNormalization(t *testing.T) {
	lw := mkConv(t, 13, 70, 32, 12, 0.5, 0.4)
	// 70 filters -> 5 groups of 16 -> 2 rounds of 4 tiles.
	want := int64(2) * int64(lw.Steps) * int64(lw.WindowCount)
	if got := denseCycles(lw); got != want {
		t.Errorf("denseCycles = %d, want %d", got, want)
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	l := LayerCycles{Cycles: 0, DenseCycles: 100}
	if l.Speedup() != 1 {
		t.Error("zero-cycle layer should report neutral speedup")
	}
}

func TestSCNNeBeatsSCNNpOnLargeMaps(t *testing.T) {
	// Term-serial MACs beat bit-serial MACs wherever SCNNp itself is
	// viable: oneffsets <= precision bits per value.
	big := mkConv(t, 14, 16, 16, 64, 0.4, 0.35)
	e, p := SCNNe(big, fixed.W16).Speedup(), SCNNp(big, fixed.W16).Speedup()
	if e <= p {
		t.Errorf("SCNNe (%.2f) should beat SCNNp (%.2f)", e, p)
	}
}
