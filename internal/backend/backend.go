// Package backend defines the activation back-end seam of the Bit-Tactical
// design family. A Backend captures everything the simulator, the golden
// model, the structural datapath, and the energy/area model need to know
// about how a processing element consumes activations:
//
//   - the per-value serial cost at a datapath width (the quantity cost
//     tables and activation cost planes memoize);
//   - the reference arithmetic (how a weight×activation product is formed,
//     exactly — the golden model's semantic-preservation invariant);
//   - the cycle-by-cycle serial term stream (what the structural datapath's
//     lanes shift through the adder tree);
//   - the energy and area coefficients of the lane hardware.
//
// The paper's three back-ends — bit-parallel DaDianNao++, TCLp
// (Dynamic-Stripes-style dynamic precision) and TCLe (Pragmatic-style
// oneffsets) — are registered here at init. New back-ends register
// themselves from their own package (see internal/backend/dstripes) and
// become runnable end-to-end through every engine package without touching
// any of them: the engines dispatch exclusively through this interface.
package backend

import (
	"bittactical/internal/fixed"
)

// Backend is one activation consumption model. Implementations must be
// stateless (safe for concurrent use) and registered under a unique name.
type Backend interface {
	// Name is the display and registry name ("bit-parallel", "TCLp", ...).
	// Lookup is case-insensitive; Name's casing is used in config labels.
	Name() string

	// Serial reports whether activations stream over multiple cycles. A
	// serial tile provisions one PE window column per data bit to match the
	// bit-parallel baseline's peak throughput; false means one full
	// activation is consumed per cycle.
	Serial() bool

	// OffsetEncoder reports whether activations pass through an offset
	// generator before the lanes (TCLe's Booth encoder). It drives the
	// OffsetEncodes activity census and the offset-generator energy/area.
	OffsetEncoder() bool

	// Cost returns the serial cycles one lane spends on activation code v
	// at width w: oneffset count for TCLe, dynamic precision bits for TCLp,
	// 1 for bit-parallel. This is the value cost tables and activation cost
	// planes precompute per code.
	Cost(v int32, w fixed.Width) int

	// MAC returns the contribution of one (weight, activation) pair to a
	// partial sum, computed through the back-end's own arithmetic (e.g. a
	// Booth shift-add sequence for TCLe). Every back-end must be value
	// exact: the result always equals weight*act — the golden model
	// verifies the route, not the destination.
	MAC(weight, act int32, w fixed.Width) int64

	// Terms expands an activation into the serial factor stream a lane
	// shifts through the adder tree, in issue order. A zero factor is an
	// idle lane cycle (e.g. a zero bit inside a TCLp precision window);
	// the stream's length must equal Cost(act, w) for nonzero activations
	// so the structural datapath's cycle counts cross-validate against the
	// analytic cost model.
	Terms(act int32, w fixed.Width) []int64

	// Energy returns the back-end's per-event energy coefficients.
	Energy() EnergyCoeffs

	// Area returns the back-end's post-layout area coefficients.
	Area() AreaCoeffs
}

// EnergyCoeffs are the back-end-specific per-event energies in pJ at
// 65 nm / 1 GHz / 16-bit; the energy model scales them linearly for
// narrower datapaths.
type EnergyCoeffs struct {
	// SerialOpPJ prices one serial lane cycle (a 16-bit weight shift-add
	// for TCLe, a bit-AND-add for TCLp). Zero for bit-parallel back-ends,
	// whose work is priced per full multiply instead.
	SerialOpPJ float64
	// OffsetEncodePJ prices one activation through the offset generator;
	// zero when the back-end has none.
	OffsetEncodePJ float64
}

// AreaCoeffs are the back-end-specific terms of the Table 3 area
// accounting, in mm² at 65 nm.
type AreaCoeffs struct {
	// ComputeCorePerLaneMM2 is the lane datapath area (multiplier or
	// serial shift/AND-add stage plus its adder-tree share) per lane.
	ComputeCorePerLaneMM2 float64
	// DispatcherMM2 is the serial dispatcher; zero for bit-parallel.
	DispatcherMM2 float64
	// OffsetGenMM2 is the offset generator; zero when the back-end has
	// none.
	OffsetGenMM2 float64
	// ASUWireBits is the per-activation wire width through the ASU
	// shuffling network: 1 for bit-serial, 4 for oneffset streams, 16 for
	// a full bit-parallel value.
	ASUWireBits float64
}
