package backend

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The process-wide registry. Registration normally happens from package
// init functions (the three paper back-ends below, plugins from their own
// packages), but the mutex makes late registration from tests safe too.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend) // keyed by lowercased name
)

// Register adds a back-end to the process-wide registry. It panics on an
// empty name or a duplicate (case-insensitive) registration: both are
// programming errors a deployment must fail loudly on, not race to win.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("backend: Register with empty name")
	}
	key := strings.ToLower(name)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := registry[key]; ok {
		panic(fmt.Sprintf("backend: duplicate registration of %q (already registered as %q)", name, prev.Name()))
	}
	registry[key] = b
}

// Lookup resolves a registered back-end by name, case-insensitively. A
// miss returns an error listing every registered name.
func Lookup(name string) (Backend, error) {
	regMu.RLock()
	b, ok := registry[strings.ToLower(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown back-end %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// MustLookup is Lookup for back-ends the program itself registered;
// it panics on a miss.
func MustLookup(name string) Backend {
	b, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Names returns the display names of every registered back-end, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for _, b := range registry {
		out = append(out, b.Name())
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}
