package backend

import (
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
)

// The paper's three back-ends (Table 2 / Section 5.2), registered at init.
func init() {
	Register(bitParallel{})
	Register(tclp{})
	Register(tcle{})
}

// ---- bit-parallel (DaDianNao++ and the Figure 8a front-end-only rows) ----

// bitParallel multiplies one full-width activation per cycle.
type bitParallel struct{}

func (bitParallel) Name() string         { return "bit-parallel" }
func (bitParallel) Serial() bool         { return false }
func (bitParallel) OffsetEncoder() bool  { return false }
func (bitParallel) Energy() EnergyCoeffs { return EnergyCoeffs{} }
func (bitParallel) Area() AreaCoeffs {
	return AreaCoeffs{ComputeCorePerLaneMM2: 0.003193, ASUWireBits: 16}
}

// Cost is one cycle per value regardless of content: the multiplier does
// not exploit the activation's bits.
func (bitParallel) Cost(v int32, w fixed.Width) int { return 1 }

func (bitParallel) MAC(weight, act int32, w fixed.Width) int64 {
	return int64(weight) * int64(act)
}

func (bitParallel) Terms(act int32, w fixed.Width) []int64 {
	if act == 0 {
		return []int64{0} // the lane still burns the multiply cycle
	}
	return []int64{int64(act)} // one full-width multiply
}

// ---- TCLp (Dynamic-Stripes-style dynamic precision, Section 5.2) ----

// tclp streams activations bit-serially over their per-value dynamic
// precision window [Lo, Hi], with a trailing sign-handling step for
// negative values.
type tclp struct{}

func (tclp) Name() string        { return "TCLp" }
func (tclp) Serial() bool        { return true }
func (tclp) OffsetEncoder() bool { return false }
func (tclp) Energy() EnergyCoeffs {
	return EnergyCoeffs{SerialOpPJ: 0.26}
}
func (tclp) Area() AreaCoeffs {
	return AreaCoeffs{ComputeCorePerLaneMM2: 0.000552, DispatcherMM2: 0.39, ASUWireBits: 1}
}

func (tclp) Cost(v int32, w fixed.Width) int {
	return bits.ValuePrecision(v, w).Bits()
}

// MAC forms the product by AND-adding each bit of the trimmed magnitude
// window, sign applied at the end — the bit-serial lane's arithmetic.
func (tclp) MAC(weight, act int32, w fixed.Width) int64 {
	m := int64(act)
	neg := m < 0
	if neg {
		m = -m
	}
	var acc int64
	for b := 0; m != 0; b++ {
		if m&1 == 1 {
			acc += int64(weight) << uint(b)
		}
		m >>= 1
	}
	if neg {
		acc = -acc
	}
	return acc
}

func (tclp) Terms(act int32, w fixed.Width) []int64 {
	if act == 0 {
		return nil
	}
	neg := act < 0
	m := act
	if neg {
		m = -m
	}
	p := bits.ValuePrecision(act, w)
	out := make([]int64, 0, p.Bits())
	for b := p.Lo; b <= p.Hi; b++ {
		if m&(1<<uint(b)) != 0 {
			f := int64(1) << uint(b)
			if neg {
				f = -f
			}
			out = append(out, f)
		} else {
			out = append(out, 0) // zero bit still costs the cycle
		}
	}
	if neg {
		out = append(out, 0) // sign-handling step
	}
	return out
}

// ---- TCLe (Pragmatic-style oneffsets, Section 5.2) ----

// tcle streams activations serially over their Booth-encoded effectual
// terms, one signed shift-add per oneffset.
type tcle struct{}

func (tcle) Name() string        { return "TCLe" }
func (tcle) Serial() bool        { return true }
func (tcle) OffsetEncoder() bool { return true }
func (tcle) Energy() EnergyCoeffs {
	return EnergyCoeffs{SerialOpPJ: 0.55, OffsetEncodePJ: 0.35}
}
func (tcle) Area() AreaCoeffs {
	return AreaCoeffs{ComputeCorePerLaneMM2: 0.001132, DispatcherMM2: 0.37, OffsetGenMM2: 2.89, ASUWireBits: 4}
}

func (tcle) Cost(v int32, w fixed.Width) int {
	return bits.OneffsetCount(v, w)
}

// MAC shift-adds one signed term per oneffset of the Booth encoding.
func (tcle) MAC(weight, act int32, w fixed.Width) int64 {
	var psum int64
	for _, t := range bits.Booth(act, w) {
		term := int64(weight) << uint(t.Exp)
		if t.Sign < 0 {
			psum -= term
		} else {
			psum += term
		}
	}
	return psum
}

func (tcle) Terms(act int32, w fixed.Width) []int64 {
	ts := bits.Booth(act, w)
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.Value()
	}
	return out
}
