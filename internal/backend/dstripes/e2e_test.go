package dstripes_test

import (
	"math/rand"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	"bittactical/internal/backend/dstripes"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// mkLowered builds a pruned conv layer with realistic activations.
func mkLowered(t *testing.T, seed int64) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 6, C: 20, R: 3, S: 3, Stride: 1, Pad: 1, InH: 6, InW: 6}
	l.Weights = tensor.New(6, 20, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.6)
	act := tensor.New(1, 20, 6, 6)
	sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 8, SigmaLog2: 2, NegFrac: 0.2, SigBits: 5}.
		FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

// TestEndToEndThroughEngine is the seam proof: a config carrying the plugin
// back-end — which internal/sim, internal/arch's constructors, and the
// golden model have never heard of by name — runs the full engine and the
// value-exact golden model with zero edits to any engine package.
func TestEndToEndThroughEngine(t *testing.T) {
	lw := mkLowered(t, 41)
	cfg := arch.NewTCLBackend(sched.T(2, 5), backend.MustLookup(dstripes.Name))
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r := sim.SimulateLayer(cfg, lw)
	if r.Cycles <= 0 {
		t.Fatalf("no cycles accounted: %+v", r)
	}
	if r.Speedup() <= 0 {
		t.Fatalf("speedup = %v", r.Speedup())
	}
	if r.Activity.SerialLaneCycles <= 0 {
		t.Fatal("serial back-end recorded no serial lane cycles")
	}
	if r.Activity.OffsetEncodes != 0 {
		t.Fatal("sign-magnitude streaming has no offset encoder")
	}
	if err := sim.ExecuteGolden(cfg, lw); err != nil {
		t.Fatalf("golden model: %v", err)
	}
}

// TestCostOrderingVsTCLp pins the modeled trade-off on the same data: the
// sign-magnitude stream walks from bit 0, so a layer can never be faster
// under dstripes-sm than under TCLp's trimmed window minus its sign step
// overhead — per value, Cost_sm >= Bits - 1 and Cost_sm >= Hi+1.
func TestCostOrderingVsTCLp(t *testing.T) {
	sm := backend.MustLookup(dstripes.Name)
	tclp := backend.MustLookup("TCLp")
	for _, w := range []fixed.Width{fixed.W16, fixed.W8} {
		for v := w.MinInt(); v <= w.MaxInt(); v += 3 {
			c, p := sm.Cost(v, w), tclp.Cost(v, w)
			if c < p-1 {
				t.Fatalf("Cost(%d, %s): dstripes-sm %d < TCLp %d - 1", v, w, c, p)
			}
		}
	}
}

// TestEngineAtBothWidths runs the plugin at W8 as well, exercising the
// width-indexed cost table and the serial window provisioning.
func TestEngineAtBothWidths(t *testing.T) {
	lw := mkLowered(t, 43)
	base := arch.NewTCLBackend(sched.T(2, 5), backend.MustLookup(dstripes.Name))
	for _, cfg := range []arch.Config{base, base.WithWidth(fixed.W8)} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		if r := sim.SimulateLayer(cfg, lw); r.Cycles <= 0 {
			t.Fatalf("%s: no cycles", cfg.Name)
		}
	}
	if w8 := base.WithWidth(fixed.W8); w8.WindowsPerTile != 8 {
		t.Fatalf("W8 plugin tile has %d windows, want 8", w8.WindowsPerTile)
	}
}
