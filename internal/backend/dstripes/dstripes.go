// Package dstripes ships the sign-magnitude Dynamic Stripes back-end as a
// registry plugin: importing it (usually blank, from a main package or the
// facade) makes "dstripes-sm" available to every engine package through
// backend.Lookup, with zero edits to internal/sim, internal/energy, or
// internal/datapath.
//
// Semantics: activations stream bit-serially in sign-magnitude form. The
// lane walks every magnitude bit from bit 0 up to the value's highest set
// bit — unlike TCLp there is no trailing-zero trim (the serial counter
// always starts at bit 0) and no extra sign-handling cycle (the sign
// travels beside the magnitude and steers the adder tree directly). A zero
// activation costs nothing; the front-end scheduler skips it like any
// other ineffectual value.
package dstripes

import (
	"bittactical/internal/backend"
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
)

// Name is the registry name of the sign-magnitude Dynamic Stripes back-end.
const Name = "dstripes-sm"

func init() {
	backend.Register(signMagnitude{})
}

type signMagnitude struct{}

func (signMagnitude) Name() string        { return Name }
func (signMagnitude) Serial() bool        { return true }
func (signMagnitude) OffsetEncoder() bool { return false }

// Energy and area mirror the TCLp lane: the sign-magnitude stage is the
// same AND-add datapath, with the sign folded into the adder tree instead
// of a terminal correction step.
func (signMagnitude) Energy() backend.EnergyCoeffs {
	return backend.EnergyCoeffs{SerialOpPJ: 0.26}
}

func (signMagnitude) Area() backend.AreaCoeffs {
	return backend.AreaCoeffs{ComputeCorePerLaneMM2: 0.000552, DispatcherMM2: 0.39, ASUWireBits: 1}
}

// Cost is Hi+1 cycles: every magnitude bit from 0 through the highest set
// bit, no low-order trim, no sign cycle. Zero for zero.
func (signMagnitude) Cost(v int32, w fixed.Width) int {
	return bits.ValuePrecision(v, w).Hi + 1
}

// MAC AND-adds each magnitude bit, the sign steering add vs. subtract —
// value exact by construction.
func (signMagnitude) MAC(weight, act int32, w fixed.Width) int64 {
	m := int64(act)
	neg := m < 0
	if neg {
		m = -m
	}
	var acc int64
	for b := 0; m != 0; b++ {
		if m&1 == 1 {
			if neg {
				acc -= int64(weight) << uint(b)
			} else {
				acc += int64(weight) << uint(b)
			}
		}
		m >>= 1
	}
	return acc
}

// Terms emits one signed factor per magnitude bit in [0, Hi], zeros for
// unset bits; length equals Cost for nonzero activations.
func (signMagnitude) Terms(act int32, w fixed.Width) []int64 {
	if act == 0 {
		return nil
	}
	neg := act < 0
	m := act
	if neg {
		m = -m
	}
	p := bits.ValuePrecision(act, w)
	out := make([]int64, 0, p.Hi+1)
	for b := 0; b <= p.Hi; b++ {
		if m&(1<<uint(b)) != 0 {
			f := int64(1) << uint(b)
			if neg {
				f = -f
			}
			out = append(out, f)
		} else {
			out = append(out, 0)
		}
	}
	return out
}
