package dstripes

import (
	"testing"

	"bittactical/internal/backend"
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
)

func TestRegisteredByImport(t *testing.T) {
	be, err := backend.Lookup(Name)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", Name, err)
	}
	if be.Name() != Name {
		t.Errorf("Name() = %q, want %q", be.Name(), Name)
	}
	if !be.Serial() || be.OffsetEncoder() {
		t.Errorf("traits Serial=%v OffsetEncoder=%v, want true/false", be.Serial(), be.OffsetEncoder())
	}
}

func TestCostIsMagnitudeBitsFromZero(t *testing.T) {
	be := backend.MustLookup(Name)
	cases := []struct {
		v    int32
		want int
	}{
		{0, 0},   // skipped entirely
		{1, 1},   // bit 0 only
		{8, 4},   // bits 0..3 walked even though 0..2 are clear
		{-8, 4},  // sign is free in sign-magnitude
		{5, 3},   // bits 0..2
		{255, 8}, // bits 0..7
		{-1, 1},
	}
	for _, c := range cases {
		if got := be.Cost(c.v, fixed.W16); got != c.want {
			t.Errorf("Cost(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Distinct from TCLp on both ends: no low-order trim, no sign cycle.
	tclp := backend.MustLookup("TCLp")
	if be.Cost(8, fixed.W16) == tclp.Cost(8, fixed.W16) {
		t.Error("Cost(8) should differ from TCLp (no trailing-zero trim)")
	}
	if be.Cost(-1, fixed.W16) == tclp.Cost(-1, fixed.W16) {
		t.Error("Cost(-1) should differ from TCLp (no sign cycle)")
	}
}

func TestMACIsValueExact(t *testing.T) {
	be := backend.MustLookup(Name)
	for _, w := range []fixed.Width{fixed.W16, fixed.W8} {
		for act := w.MinInt(); act <= w.MaxInt(); act += 7 {
			for _, weight := range []int32{0, 1, -1, 3, -97, w.MaxInt(), w.MinInt()} {
				want := int64(weight) * int64(act)
				if got := be.MAC(weight, act, w); got != want {
					t.Fatalf("MAC(%d, %d, %s) = %d, want %d", weight, act, w, got, want)
				}
			}
		}
	}
}

func TestTermsMatchCostAndValue(t *testing.T) {
	be := backend.MustLookup(Name)
	for _, w := range []fixed.Width{fixed.W16, fixed.W8} {
		for v := w.MinInt(); v <= w.MaxInt(); v += 5 {
			ts := be.Terms(v, w)
			var sum int64
			for _, f := range ts {
				sum += f
			}
			if sum != int64(v) {
				t.Fatalf("Terms(%d, %s) sums to %d", v, w, sum)
			}
			if v != 0 {
				if got, want := len(ts), be.Cost(v, w); got != want {
					t.Fatalf("len(Terms(%d, %s)) = %d, Cost = %d", v, w, got, want)
				}
				if got, want := len(ts), bits.ValuePrecision(v, w).Hi+1; got != want {
					t.Fatalf("len(Terms(%d, %s)) = %d, want Hi+1 = %d", v, w, got, want)
				}
			}
		}
	}
}
