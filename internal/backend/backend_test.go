package backend

import (
	"strings"
	"testing"

	"bittactical/internal/bits"
	"bittactical/internal/fixed"
)

func TestRegistryHasPaperBackends(t *testing.T) {
	for _, name := range []string{"bit-parallel", "TCLp", "TCLe"} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, b.Name())
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, name := range []string{"tclp", "TCLP", "tClE", "BIT-PARALLEL"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
}

func TestLookupMissListsNames(t *testing.T) {
	_, err := Lookup("no-such-backend")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("miss error %q does not list registered back-end %q", err, name)
		}
	}
}

func TestMustLookupPanicsOnMiss(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of unknown name did not panic")
		}
	}()
	MustLookup("no-such-backend")
}

// namedStub lets registry tests exercise Register without real semantics.
type namedStub struct {
	bitParallel
	name string
}

func (s namedStub) Name() string { return s.name }

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(namedStub{name: "tclP"}) // case-insensitive clash with TCLp
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty-name Register did not panic")
		}
	}()
	Register(namedStub{})
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v, want at least the three paper back-ends", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not strictly sorted: %v", names)
		}
	}
}

// TestMACIsValueExact pins the golden-model invariant: every back-end's
// arithmetic route must land exactly on weight*act.
func TestMACIsValueExact(t *testing.T) {
	for _, name := range Names() {
		be := MustLookup(name)
		for _, w := range []fixed.Width{fixed.W16, fixed.W8} {
			for _, act := range []int32{0, 1, -1, 5, -5, 127, -127, w.MaxInt(), w.MinInt(), 0x70, -0x70} {
				for _, weight := range []int32{0, 1, -1, 3, -97, w.MaxInt(), w.MinInt()} {
					want := int64(weight) * int64(act)
					if got := be.MAC(weight, act, w); got != want {
						t.Fatalf("%s: MAC(%d, %d, %s) = %d, want %d", name, weight, act, w, got, want)
					}
				}
			}
		}
	}
}

// TestTermsMatchCostAndValue pins the structural-datapath contract: the
// serial term stream reconstructs the activation and its length equals the
// analytic per-value cost for nonzero activations.
func TestTermsMatchCostAndValue(t *testing.T) {
	for _, name := range Names() {
		be := MustLookup(name)
		for _, w := range []fixed.Width{fixed.W16, fixed.W8} {
			for v := w.MinInt(); v <= w.MaxInt(); v += 13 {
				ts := be.Terms(v, w)
				var sum int64
				for _, f := range ts {
					sum += f
				}
				if sum != int64(v) {
					t.Fatalf("%s: Terms(%d, %s) sums to %d", name, v, w, sum)
				}
				if v != 0 {
					if got, want := len(ts), be.Cost(v, w); got != want {
						t.Fatalf("%s: len(Terms(%d, %s)) = %d, Cost = %d", name, v, w, got, want)
					}
				}
			}
		}
	}
}

// TestPaperCostSemantics pins each paper back-end's cost to the bits
// package primitive it models.
func TestPaperCostSemantics(t *testing.T) {
	bp, p, e := MustLookup("bit-parallel"), MustLookup("TCLp"), MustLookup("TCLe")
	for _, v := range []int32{0, 1, -1, 0x8f, -0x8f, 255, 256, -4096} {
		if got := bp.Cost(v, fixed.W16); got != 1 {
			t.Errorf("bit-parallel Cost(%d) = %d, want 1", v, got)
		}
		if got, want := p.Cost(v, fixed.W16), bits.ValuePrecision(v, fixed.W16).Bits(); got != want {
			t.Errorf("TCLp Cost(%d) = %d, want %d", v, got, want)
		}
		if got, want := e.Cost(v, fixed.W16), bits.OneffsetCount(v, fixed.W16); got != want {
			t.Errorf("TCLe Cost(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestTraits(t *testing.T) {
	cases := []struct {
		name          string
		serial, offen bool
	}{
		{"bit-parallel", false, false},
		{"TCLp", true, false},
		{"TCLe", true, true},
	}
	for _, c := range cases {
		be := MustLookup(c.name)
		if be.Serial() != c.serial || be.OffsetEncoder() != c.offen {
			t.Errorf("%s: Serial=%v OffsetEncoder=%v, want %v/%v",
				c.name, be.Serial(), be.OffsetEncoder(), c.serial, c.offen)
		}
	}
}
