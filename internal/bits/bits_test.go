package bits

import (
	"testing"
	"testing/quick"

	"bittactical/internal/fixed"
)

func TestBoothPaperExample(t *testing.T) {
	// Paper Section 5.2: 0b0000_0000_1000_1111 -> {+2^7, +2^4, -2^0}.
	v := int32(0x008F)
	terms := Booth(v, fixed.W16)
	want := []Term{{7, +1}, {4, +1}, {0, -1}}
	if len(terms) != len(want) {
		t.Fatalf("Booth(%#x) = %v, want %v", v, terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Errorf("term[%d] = %v, want %v", i, terms[i], want[i])
		}
	}
}

func TestBoothZero(t *testing.T) {
	if got := Booth(0, fixed.W16); got != nil {
		t.Errorf("Booth(0) = %v, want nil", got)
	}
	if OneffsetCount(0, fixed.W16) != 0 {
		t.Error("OneffsetCount(0) != 0")
	}
}

func TestBoothReconstruct(t *testing.T) {
	for v := int32(-512); v <= 512; v++ {
		if got := ReconstructBooth(Booth(v, fixed.W16)); got != int64(v) {
			t.Fatalf("Booth(%d) reconstructs to %d", v, got)
		}
	}
}

func TestBoothReconstructProperty(t *testing.T) {
	f := func(raw int32) bool {
		v := fixed.Sat(int64(raw), fixed.W16)
		return ReconstructBooth(Booth(v, fixed.W16)) == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBoothMinimality(t *testing.T) {
	// CSD encoding is minimal: term count must never exceed popcount, and
	// must beat it on runs of ones.
	f := func(raw int32) bool {
		v := fixed.Sat(int64(raw), fixed.W16)
		n := OneffsetCount(v, fixed.W16)
		if v >= 0 && n > SetBitCount(v, fixed.W16) {
			return false
		}
		// CSD of a w-bit value has at most ceil((w+1)/2) nonzero digits.
		return n <= (16+2)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// 0b0111_1111 (127): popcount 7, CSD 2 (+2^7 - 2^0).
	if n := OneffsetCount(127, fixed.W16); n != 2 {
		t.Errorf("OneffsetCount(127) = %d, want 2", n)
	}
}

func TestOneffsetCountMatchesBoothLen(t *testing.T) {
	f := func(raw int32) bool {
		v := fixed.Sat(int64(raw), fixed.W16)
		return OneffsetCount(v, fixed.W16) == len(Booth(v, fixed.W16))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValuePrecision(t *testing.T) {
	// Paper Section 5.2 TCLp example: 0b0000_0000_1000_1110 -> 7 bits.
	p := ValuePrecision(0x008E, fixed.W16)
	if p.Hi != 7 || p.Lo != 1 {
		t.Errorf("precision window = [%d,%d], want [7,1]", p.Lo, p.Hi)
	}
	if p.Bits() != 7 {
		t.Errorf("Bits() = %d, want 7", p.Bits())
	}
}

func TestValuePrecisionZero(t *testing.T) {
	p := ValuePrecision(0, fixed.W16)
	if p.Bits() != 0 {
		t.Errorf("zero value should need 0 bits, got %d", p.Bits())
	}
}

func TestValuePrecisionNegative(t *testing.T) {
	p := ValuePrecision(-6, fixed.W16) // magnitude 0b110 -> window [1,2] + sign
	if p.Hi != 2 || p.Lo != 1 || !p.Neg {
		t.Errorf("precision of -6 = %+v", p)
	}
	if p.Bits() != 3 {
		t.Errorf("Bits() = %d, want 3 (2 magnitude + sign)", p.Bits())
	}
}

func TestGroupPrecision(t *testing.T) {
	// Group window is the union of member windows.
	g := GroupPrecision([]int32{0x0080, 0x0002, 0}, fixed.W16)
	if g.Hi != 7 || g.Lo != 1 {
		t.Errorf("group window = [%d,%d], want [1,7]", g.Lo, g.Hi)
	}
	if g.Bits() != 7 {
		t.Errorf("group Bits() = %d, want 7", g.Bits())
	}
}

func TestGroupPrecisionAllZero(t *testing.T) {
	if g := GroupPrecision([]int32{0, 0, 0}, fixed.W16); g.Bits() != 0 {
		t.Errorf("all-zero group Bits() = %d, want 0", g.Bits())
	}
	if g := GroupPrecision(nil, fixed.W16); g.Bits() != 0 {
		t.Errorf("empty group Bits() = %d, want 0", g.Bits())
	}
}

func TestGroupPrecisionDominates(t *testing.T) {
	f := func(raws []int32) bool {
		vs := make([]int32, len(raws))
		for i, r := range raws {
			vs[i] = fixed.Sat(int64(r), fixed.W16)
		}
		g := GroupPrecision(vs, fixed.W16)
		for _, v := range vs {
			p := ValuePrecision(v, fixed.W16)
			if v == 0 {
				continue
			}
			if p.Hi > g.Hi || p.Lo < g.Lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSerialCyclesTCLp(t *testing.T) {
	if got := SerialCyclesTCLp([]int32{0x008E}, fixed.W16); got != 7 {
		t.Errorf("TCLp cycles = %d, want 7", got)
	}
	if got := SerialCyclesTCLp([]int32{0, 0}, fixed.W16); got != 0 {
		t.Errorf("TCLp cycles for zero group = %d, want 0", got)
	}
}

func TestSerialCyclesTCLe(t *testing.T) {
	// 0x008F has 3 oneffsets; group max governs.
	if got := SerialCyclesTCLe([]int32{0x008F, 1, 0}, fixed.W16); got != 3 {
		t.Errorf("TCLe cycles = %d, want 3", got)
	}
	if got := SerialCyclesTCLe(nil, fixed.W16); got != 0 {
		t.Errorf("TCLe cycles of empty group = %d, want 0", got)
	}
}

func TestTCLeNeverSlowerThanTCLpOnSingles(t *testing.T) {
	// For any single value, oneffset count <= precision window width + 1:
	// serial-by-term is at least as compact as serial-by-bit for the values
	// the paper cares about. (Booth can need hi-lo+2 terms in the worst
	// alternating case; we check the documented <= popcount bound instead.)
	f := func(raw int32) bool {
		v := fixed.Sat(int64(raw), fixed.W16)
		if v < 0 {
			v = -v
		}
		return OneffsetCount(v, fixed.W16) <= SetBitCount(v, fixed.W16) || v == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEffectualTerms(t *testing.T) {
	got := EffectualTerms([]int32{0x008F, 0, 1}, fixed.W16)
	if got != 4 {
		t.Errorf("EffectualTerms = %d, want 4", got)
	}
}

func TestTermValue(t *testing.T) {
	if (Term{Exp: 3, Sign: 1}).Value() != 8 {
		t.Error("Term{3,+1}.Value() != 8")
	}
	if (Term{Exp: 3, Sign: -1}).Value() != -8 {
		t.Error("Term{3,-1}.Value() != -8")
	}
}
