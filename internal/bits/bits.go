// Package bits provides the bit-level value analyses that drive the two
// Bit-Tactical back-ends:
//
//   - TCLe processes activations serially over their "oneffsets": the
//     non-zero signed powers of two of the modified-Booth-encoded value
//     (Section 5.2, following Pragmatic). Oneffsets reduce the term count
//     versus plain binary, e.g. 0b0000_0000_1000_1111 encodes as
//     {+2^7, +2^4, -2^0}: three terms instead of five set bits.
//   - TCLp processes activations bit-serially between the group's most- and
//     least-significant non-zero bit positions ("dynamic precision",
//     following Dynamic Stripes): 0b0000_0000_1000_1110 costs 7 cycles —
//     8 prefix and 1 suffix zero bits are skipped.
//
// All functions operate on two's-complement codes carried in int32 at a
// declared width.
package bits

import (
	"math/bits"

	"bittactical/internal/fixed"
)

// Term is one signed power of two of a Booth-encoded value: Sign * 2^Exp.
type Term struct {
	Exp  int  // power of two, 0-based
	Sign int8 // +1 or -1
}

// Value reconstructs the numeric contribution of the term.
func (t Term) Value() int64 {
	v := int64(1) << uint(t.Exp)
	if t.Sign < 0 {
		return -v
	}
	return v
}

// Booth returns the modified-Booth ("canonical signed digit") encoding of v
// at width w: the minimal-length list of signed powers of two summing to v.
// Terms are returned most-significant first, which is the order the TCLe
// offset generator streams them to the shifters.
func Booth(v int32, w fixed.Width) []Term {
	if v == 0 {
		return nil
	}
	// Canonical signed-digit recoding: scan from LSB, replace runs of ones
	// 0111..1 with 1000..-1. Work in int64 to keep the +2^w carry visible.
	x := int64(v)
	var terms []Term
	for i := 0; x != 0; i++ {
		if x&1 == 1 {
			// Two's-complement remainder mod 4 decides the digit.
			if x&3 == 3 { // ...11 -> digit -1, carry
				terms = append(terms, Term{Exp: i, Sign: -1})
				x++
			} else { // ...01 -> digit +1
				terms = append(terms, Term{Exp: i, Sign: +1})
				x--
			}
		}
		x >>= 1
	}
	// Reverse to MSB-first.
	for i, j := 0, len(terms)-1; i < j; i, j = i+1, j-1 {
		terms[i], terms[j] = terms[j], terms[i]
	}
	return terms
}

// OneffsetCount returns the number of effectual terms of v, i.e. the number
// of back-end cycles TCLe spends on this activation.
func OneffsetCount(v int32, w fixed.Width) int {
	if v == 0 {
		return 0
	}
	// Count digits of the canonical signed-digit form without materializing
	// the term list: number of transitions trick. CSD digit count of x equals
	// popcount(x XOR (x<<1) ... ) is subtle for negatives; do the scan.
	x := int64(v)
	n := 0
	for x != 0 {
		if x&1 == 1 {
			n++
			if x&3 == 3 {
				x++
			} else {
				x--
			}
		}
		x >>= 1
	}
	return n
}

// SetBitCount returns the plain popcount of the magnitude representation
// used for "ineffectual bit content" statistics.
func SetBitCount(v int32, w fixed.Width) int {
	return bits.OnesCount32(uint32(v) & w.Mask())
}

// Precision describes the dynamic precision window of a value or group:
// the bit positions [Lo, Hi] that must be transmitted/processed serially.
type Precision struct {
	Hi int // most significant needed bit position (0-based)
	Lo int // least significant needed bit position (0-based)
	// Neg records whether any member was negative (needs the sign path).
	Neg bool
}

// Bits returns the number of serial cycles the window costs; zero for an
// empty (all-zero) window.
func (p Precision) Bits() int {
	if p.Hi < p.Lo {
		return 0
	}
	n := p.Hi - p.Lo + 1
	if p.Neg {
		n++ // sign bit is streamed alongside for negative groups
	}
	return n
}

// ValuePrecision returns the precision window of a single value at width w.
// For negative values the magnitude is analysed, matching the paper's
// sign-magnitude serial streaming (Dynamic Stripes).
func ValuePrecision(v int32, w fixed.Width) Precision {
	if v == 0 {
		return Precision{Hi: -1, Lo: 0}
	}
	neg := v < 0
	m := uint32(v)
	if neg {
		m = uint32(-int64(v))
	}
	hi := 31 - bits.LeadingZeros32(m)
	lo := bits.TrailingZeros32(m)
	return Precision{Hi: hi, Lo: lo, Neg: neg}
}

// GroupPrecision returns the union precision window of a group of values:
// Hi is the max needed msb, Lo the min needed lsb. This is the per-group
// dynamic precision TCLp detects in hardware and the off-chip compressor
// stores per group of 16 values.
func GroupPrecision(vs []int32, w fixed.Width) Precision {
	g := Precision{Hi: -1, Lo: int(w)}
	any := false
	for _, v := range vs {
		if v == 0 {
			continue
		}
		p := ValuePrecision(v, w)
		if !any {
			g = p
			any = true
			continue
		}
		if p.Hi > g.Hi {
			g.Hi = p.Hi
		}
		if p.Lo < g.Lo {
			g.Lo = p.Lo
		}
		g.Neg = g.Neg || p.Neg
	}
	if !any {
		return Precision{Hi: -1, Lo: 0}
	}
	return g
}

// SerialCyclesTCLp returns the number of bit-serial cycles TCLp needs for a
// synchronized group of activations (its per-group dynamic precision).
func SerialCyclesTCLp(vs []int32, w fixed.Width) int {
	return GroupPrecision(vs, w).Bits()
}

// SerialCyclesTCLe returns the number of serial cycles TCLe needs for a
// synchronized group of activations: the max oneffset count in the group.
func SerialCyclesTCLe(vs []int32, w fixed.Width) int {
	max := 0
	for _, v := range vs {
		if n := OneffsetCount(v, w); n > max {
			max = n
		}
	}
	return max
}

// EffectualTerms returns the total oneffset count over a slice, used by the
// ideal-potential analysis (Table 1 column Ae).
func EffectualTerms(vs []int32, w fixed.Width) int64 {
	var n int64
	for _, v := range vs {
		n += int64(OneffsetCount(v, w))
	}
	return n
}

// ReconstructBooth sums a term list back into a value (test/verification
// helper and the functional model of TCLe's shift-add datapath).
func ReconstructBooth(terms []Term) int64 {
	var v int64
	for _, t := range terms {
		v += t.Value()
	}
	return v
}
