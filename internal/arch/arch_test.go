package arch

import (
	"fmt"
	"math"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/sched"
)

func TestDaDianNaoPPDefaults(t *testing.T) {
	c := DaDianNaoPP()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Tiles != 4 || c.FiltersPerTile != 16 || c.Lanes != 16 || c.WindowsPerTile != 1 {
		t.Errorf("geometry %+v disagrees with Table 2", c)
	}
	if c.HasFrontEnd() {
		t.Error("baseline must not have a front-end")
	}
	if c.Backend.Name() != "bit-parallel" || c.Serial() {
		t.Error("baseline back-end must be bit-parallel")
	}
	// Table 2: 2 TOPS peak.
	if math.Abs(c.PeakTOPS()-2.048) > 0.05 {
		t.Errorf("peak = %v TOPS", c.PeakTOPS())
	}
}

func TestNewTCLWindows(t *testing.T) {
	e := NewTCL(sched.T(2, 5), TCLe)
	if e.WindowsPerTile != 16 {
		t.Errorf("serial back-end needs 16 windows, got %d", e.WindowsPerTile)
	}
	if !e.HasFrontEnd() {
		t.Error("TCL config must have a front-end")
	}
	if e.ActBufBanks != 3 {
		t.Errorf("activation buffer banks = %d, want h+1 = 3", e.ActBufBanks)
	}
	fe := FrontEndOnly(sched.T(2, 5))
	if fe.WindowsPerTile != 1 || fe.Serial() {
		t.Error("front-end-only keeps the bit-parallel single-window tile")
	}
}

func TestPeakThroughputParity(t *testing.T) {
	// The serial tiles' peak dense-equivalent throughput matches the
	// bit-parallel baseline (Section 5.2: 16 windows compensate 16b serial).
	base := DaDianNaoPP().PeakMACsPerCycle()
	for _, be := range []BackEnd{TCLp, TCLe} {
		c := NewTCL(sched.T(2, 5), be)
		if got := c.PeakMACsPerCycle(); got != base {
			t.Errorf("%s peak %d != baseline %d", be, got, base)
		}
		c8 := c.WithWidth(fixed.W8)
		if c8.WindowsPerTile != 8 {
			t.Errorf("8b %s windows = %d, want 8", be, c8.WindowsPerTile)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	c := DaDianNaoPP()
	c.Tiles = 0
	if c.Validate() == nil {
		t.Error("accepted zero tiles")
	}
	c = DaDianNaoPP()
	c.Width = 13
	if c.Validate() == nil {
		t.Error("accepted invalid width")
	}
	c = NewTCL(sched.T(2, 5), TCLe)
	c.WindowsPerTile = 2
	if c.Validate() == nil {
		t.Error("accepted starved serial tile")
	}
	bad := NewTCL(sched.Pattern{Name: "x", H: 1, Offsets: []sched.Offset{{Dt: 9}}}, TCLe)
	if bad.Validate() == nil {
		t.Error("accepted invalid pattern")
	}
}

func TestBackEndString(t *testing.T) {
	for be, want := range map[BackEnd]string{BitParallel: "bit-parallel", TCLp: "TCLp", TCLe: "TCLe"} {
		if be.String() != want {
			t.Errorf("%d.String() = %q", int(be), be.String())
		}
	}
	// Default branch: values outside the historical enum format as
	// BackEnd(n), never a registered name.
	for _, be := range []BackEnd{BackEnd(-1), BackEnd(3), BackEnd(42)} {
		want := fmt.Sprintf("BackEnd(%d)", int(be))
		if got := be.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(be), got, want)
		}
	}
}

func TestBackEndImpl(t *testing.T) {
	for be, want := range map[BackEnd]string{BitParallel: "bit-parallel", TCLp: "TCLp", TCLe: "TCLe"} {
		if got := be.Impl().Name(); got != want {
			t.Errorf("%v.Impl().Name() = %q, want %q", be, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Impl() on an out-of-range enum value did not panic")
		}
	}()
	BackEnd(42).Impl()
}

func TestValidateRejectsNilBackend(t *testing.T) {
	c := DaDianNaoPP()
	c.Backend = nil
	if c.Validate() == nil {
		t.Error("accepted nil back-end")
	}
}

func TestConfigNames(t *testing.T) {
	if n := NewTCL(sched.T(2, 5), TCLe).Name; n != "TCLe/T8<2,5>" {
		t.Errorf("name = %q", n)
	}
	if n := FrontEndOnly(sched.L(1, 6)).Name; n != "TCL-FE/L8<1,6>" {
		t.Errorf("name = %q", n)
	}
}

func TestTotalFilterRows(t *testing.T) {
	if got := DaDianNaoPP().TotalFilterRows(); got != 64 {
		t.Errorf("TotalFilterRows = %d, want 64", got)
	}
}
