// Package arch describes the hardware configurations of the paper's Table 2:
// the DaDianNao++ dense baseline and the TCL variants (front-end pattern ×
// back-end kind), plus the tile geometry every timing model shares.
package arch

import (
	"fmt"

	"bittactical/internal/backend"
	"bittactical/internal/fixed"
	"bittactical/internal/sched"
)

// BackEnd selects how a processing element consumes activations.
//
// Deprecated: the enum survives only so the Table-2 constructors keep their
// historical signatures. New code should resolve a backend.Backend through
// the registry (backend.Lookup) and build configs with NewTCLBackend.
type BackEnd int

const (
	// BitParallel multiplies a full activation per cycle (DaDianNao++-style
	// back-end; also the "front-end only" TCL rows of Figure 8a).
	BitParallel BackEnd = iota
	// TCLp streams activations bit-serially over their per-group dynamic
	// precision window (Dynamic-Stripes-style, Section 5.2).
	TCLp
	// TCLe streams activations serially over their Booth-encoded effectual
	// terms (Pragmatic-style oneffsets, Section 5.2).
	TCLe
)

// legacyNames maps the enum values onto their registry names.
var legacyNames = map[BackEnd]string{
	BitParallel: "bit-parallel",
	TCLp:        "TCLp",
	TCLe:        "TCLe",
}

func (b BackEnd) String() string {
	if s, ok := legacyNames[b]; ok {
		return s
	}
	return fmt.Sprintf("BackEnd(%d)", int(b))
}

// Impl resolves the enum value to its registered backend implementation.
// It panics on a value outside the historical enum — those were undefined
// behavior under the switch dispatch this shim replaces.
func (b BackEnd) Impl() backend.Backend {
	return backend.MustLookup(b.String())
}

// Config is one accelerator configuration (Table 2).
type Config struct {
	Name string
	// Tiles in the chip grid (4 in the evaluation, matching SCNN's 1K
	// multipliers).
	Tiles int
	// FiltersPerTile is the number of PE rows (filters resident) per tile.
	FiltersPerTile int
	// Lanes is the number of weight lanes (multipliers) per PE.
	Lanes int
	// WindowsPerTile is the number of PE columns — activation windows
	// processed concurrently. 1 for the bit-parallel baseline; 16 for the
	// serial back-ends (needed to exceed bit-parallel throughput).
	WindowsPerTile int
	// Width is the datapath width.
	Width fixed.Width
	// Pattern is the front-end connectivity; zero-valued (no offsets, H=0)
	// means no weight skipping (the dense baseline).
	Pattern sched.Pattern
	// Backend is the activation consumption model: per-value serial cost,
	// reference arithmetic, serial term stream, and energy/area coefficients
	// (see internal/backend). Any registered back-end drops in here.
	Backend backend.Backend
	// Scheduler is the software scheduling heuristic.
	Scheduler sched.Algorithm
	// PsumRegsPerPE is the number of output partial-sum registers (4 in the
	// studied configurations), enabling temporal reuse.
	PsumRegsPerPE int
	// FrequencyGHz is the clock (1 GHz in the paper).
	FrequencyGHz float64

	// ASBytesPerTile and WSBytesPerTile size the on-chip scratchpads
	// (Table 2: 32 KB × 32 banks AS, 2 KB × 32 banks WS per tile).
	ASBytesPerTile int
	WSBytesPerTile int
	// ActBufBanks is h+1: the per-tile activation buffer banks feeding the
	// ABRs.
	ActBufBanks int
}

// HasFrontEnd reports whether the config performs weight skipping.
func (c Config) HasFrontEnd() bool {
	return c.Pattern.Infinite || len(c.Pattern.Offsets) > 0
}

// TotalFilterRows is the number of filters resident at once chip-wide.
func (c Config) TotalFilterRows() int { return c.Tiles * c.FiltersPerTile }

// Serial reports whether the configured back-end streams activations over
// multiple cycles (false for a nil back-end, like the zero Config).
func (c Config) Serial() bool {
	return c.Backend != nil && c.Backend.Serial()
}

// PeakMACsPerCycle is the chip's dense-equivalent multiply bandwidth.
func (c Config) PeakMACsPerCycle() int64 {
	per := int64(c.Tiles) * int64(c.FiltersPerTile) * int64(c.Lanes) * int64(c.WindowsPerTile)
	if c.Serial() {
		// A serial lane needs Width cycles for a full-precision activation.
		per /= int64(c.Width)
	}
	return per
}

// PeakTOPS is peak tera-operations (MAC = 2 ops) per second.
func (c Config) PeakTOPS() float64 {
	return float64(2*c.PeakMACsPerCycle()) * c.FrequencyGHz / 1e3
}

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.Tiles <= 0 || c.FiltersPerTile <= 0 || c.Lanes <= 0 || c.WindowsPerTile <= 0 {
		return fmt.Errorf("arch: %s: non-positive geometry", c.Name)
	}
	if !c.Width.Valid() {
		return fmt.Errorf("arch: %s: invalid width %d", c.Name, int(c.Width))
	}
	if c.Backend == nil {
		return fmt.Errorf("arch: %s: nil back-end (build configs through the arch constructors or set Backend explicitly)", c.Name)
	}
	if c.Serial() && c.WindowsPerTile < int(c.Width)/2 {
		return fmt.Errorf("arch: %s: serial back-end with %d windows cannot reach baseline throughput",
			c.Name, c.WindowsPerTile)
	}
	return c.Pattern.Validate()
}

// base returns the common Table 2 skeleton.
func base() Config {
	return Config{
		Tiles:          4,
		FiltersPerTile: 16,
		Lanes:          16,
		WindowsPerTile: 1,
		Width:          fixed.W16,
		PsumRegsPerPE:  4,
		FrequencyGHz:   1.0,
		ASBytesPerTile: 32 * 1024 * 32,
		WSBytesPerTile: 2 * 1024 * 32,
		ActBufBanks:    1,
		Backend:        backend.MustLookup("bit-parallel"),
	}
}

// DaDianNaoPP is the dense bit-parallel baseline all results normalize to.
func DaDianNaoPP() Config {
	c := base()
	c.Name = "DaDianNao++"
	return c
}

// FrontEndOnly is a TCL configuration with weight skipping but a
// bit-parallel back-end (the subject of Figure 8a).
func FrontEndOnly(p sched.Pattern) Config {
	c := base()
	c.Name = "TCL-FE/" + p.Name
	c.Pattern = p
	c.ActBufBanks = p.H + 1
	return c
}

// NewTCL builds a full TCL configuration with the given pattern and serial
// back-end; serial back-ends process 16 windows concurrently (Section 5.2).
//
// Deprecated: NewTCL keeps the enum-based signature for the Table-2 call
// sites; it delegates to NewTCLBackend.
func NewTCL(p sched.Pattern, be BackEnd) Config {
	return NewTCLBackend(p, be.Impl())
}

// NewTCLBackend builds a full TCL configuration with the given pattern and
// any registered back-end implementation.
func NewTCLBackend(p sched.Pattern, be backend.Backend) Config {
	c := base()
	c.Pattern = p
	c.Backend = be
	c.ActBufBanks = p.H + 1
	if be.Serial() {
		c.WindowsPerTile = 16
	}
	c.Name = fmt.Sprintf("%s/%s", be.Name(), p.Name)
	return c
}

// WithWidth returns a copy of the config at a different data width. Serial
// back-ends provision one PE column per data bit — the count that matches
// the bit-parallel baseline's peak throughput at full precision — so an
// 8-bit TCL tile has 8 window columns where the 16-bit tile has 16.
func (c Config) WithWidth(w fixed.Width) Config {
	c.Width = w
	if c.Serial() {
		c.WindowsPerTile = int(w)
	}
	return c
}
