package sched

import "sync"

// schedulerPool recycles kernels (and the scratch they have grown) across
// ScheduleGroup calls. Steady-state scheduling through the package entry
// points therefore allocates only the returned schedules themselves — four
// exactly sized allocations per group — while all working state (candidate
// bitsets, matching buffers, column arena) is reused.
var schedulerPool = sync.Pool{New: func() any { return NewScheduler() }}

// ScheduleFilter schedules a single filter.
func ScheduleFilter(f Filter, p Pattern, alg Algorithm) *Schedule {
	return ScheduleGroup([]Filter{f}, p, alg)[0]
}

// ScheduleGroup jointly schedules the filters that share a tile's activation
// window (one per PE row). The ASU and its ALC advance are physically shared
// across rows (Section 5.2: all ASU slices operate in tandem), so the window
// slides only when every filter has consumed the head step; a filter that
// drains early idles until the group finishes — the inter-filter
// synchronization charged as lost time in Figure 9.
//
// All returned schedules have identical column counts, heads, and advances.
// The returned schedules are freshly allocated and safe to retain (the
// schedule cache depends on this); hot paths that schedule many groups and
// discard the result immediately should hold a *Scheduler instead.
func ScheduleGroup(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	if len(filters) == 0 {
		return nil
	}
	s := schedulerPool.Get().(*Scheduler)
	out := s.scheduleGroup(filters, p, alg, true)
	schedulerPool.Put(s)
	return out
}
