package sched

import (
	"strconv"
	"sync"
	"sync/atomic"

	"bittactical/internal/metrics"
)

// Cache memoizes ScheduleGroup results. A schedule depends only on the
// group's weight values, the connectivity pattern, and the scheduling
// algorithm — it is the static artifact the paper's software front-end
// produces once offline — so experiment sweeps that vary only the back-end
// (TCLp vs TCLe, Figure 8b) or re-simulate a model under several widths can
// schedule each filter group once and share the result. Cached schedules
// are immutable; callers must not modify the returned columns.
//
// The key deliberately excludes the channel-padding mask: scheduling reads
// only the weight values (buildColumn consults Filter.W alone), so groups
// that differ only in padding share an entry.
type Cache struct {
	mu        sync.RWMutex
	m         map[groupKey][]*Schedule
	slab      schedSlab
	capacity  int
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// groupKey identifies one (filter group, pattern, algorithm) triple. Two
// independent 64-bit FNV-1a streams over the full group content make an
// accidental 128-bit collision implausible at any realistic cache size.
type groupKey struct {
	h1, h2  uint64
	pattern string
	alg     Algorithm
}

// defaultCacheCap bounds resident entries. One entry holds a whole group's
// schedules (up to 16 filters), so the default accommodates every distinct
// group of a full-zoo sweep while capping worst-case memory; on overflow the
// cache drops everything and refills, which keeps results correct and the
// implementation trivial.
const defaultCacheCap = 1 << 14

// NewCache returns an empty cache. capacity <= 0 selects the default bound.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	return &Cache{m: make(map[groupKey][]*Schedule), capacity: capacity}
}

// Shared is the process-wide schedule cache the simulator uses by default.
var Shared = NewCache(0)

func init() {
	// The shared cache is the one an operator of a long-running service
	// cares about; expose its lifetime counters in the default registry.
	Shared.RegisterMetrics(metrics.Default, "sched_cache")
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInt(h uint64, v int64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// patKeys interns the canonical pattern strings: the handful of patterns a
// process sweeps are keyed thousands of times, and the hot path below
// renders into a stack buffer and probes with a byte-slice map lookup (no
// conversion allocation), so repeat keying is allocation-free. Interning by
// the full rendered content — not the pattern name — keeps the no-collision
// property of the rendering itself.
var (
	patKeyMu sync.RWMutex
	patKeys  = make(map[string]string)
)

// patternKey canonicalizes a pattern for keying: the name alone is not
// trustworthy (LookaheadOnly and hand-built patterns reuse labels), so the
// key spells out the structural fields and every offset.
func patternKey(p Pattern) string {
	var arr [96]byte
	b := arr[:0]
	b = strconv.AppendInt(b, int64(p.H), 10)
	b = append(b, '/')
	if p.Infinite {
		b = append(b, 'x')
	}
	for _, o := range p.Offsets {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(o.Dt), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(o.Dl), 10)
	}
	patKeyMu.RLock()
	s, ok := patKeys[string(b)]
	patKeyMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	patKeyMu.Lock()
	patKeys[s] = s
	patKeyMu.Unlock()
	return s
}

// HashFilters computes the filter-content half of a group key: two
// independent hash streams over the group's geometry and weight values.
// Callers that look the same group up repeatedly (the sweep engine's
// filter bank re-keys one group under every config) compute this once and
// pass it to Keyer.ScheduleGroup instead of re-hashing the weights on
// every lookup.
func HashFilters(filters []Filter) (h1, h2 uint64) {
	h1, h2 = uint64(fnvOffset), uint64(5381)
	mix := func(v int64) {
		h1 = fnvInt(h1, v)
		h2 = h2*33 + uint64(v) + (h2 >> 27)
	}
	mix(int64(len(filters)))
	for _, f := range filters {
		mix(int64(f.Lanes))
		mix(int64(f.Steps))
		for _, w := range f.W {
			mix(int64(w))
		}
	}
	return h1, h2
}

// Keyer carries the pattern/algorithm half of a group key in precomputed
// form. Pattern canonicalization builds a string per call; a sweep that
// looks up thousands of groups under one (pattern, algorithm) pays it
// once here instead.
type Keyer struct {
	c   *Cache
	pat string
	p   Pattern
	alg Algorithm
}

// Keyer returns a precomputed-key view of the cache for one
// (pattern, algorithm) pair.
func (c *Cache) Keyer(p Pattern, alg Algorithm) Keyer {
	return Keyer{c: c, pat: patternKey(p), p: p, alg: alg}
}

// ScheduleGroup is Cache.ScheduleGroup with both key halves precomputed:
// the pattern half in the Keyer, the filter-content hash (HashFilters
// over the same filters) by the caller.
func (k Keyer) ScheduleGroup(h1, h2 uint64, filters []Filter) []*Schedule {
	key := groupKey{h1: h1, h2: fnvString(h2, k.pat), pattern: k.pat, alg: k.alg}
	return k.c.lookupOrFill(key, filters, k.p, k.alg)
}

// ScheduleGroup returns the memoized joint schedule for the filter group,
// computing and storing it on first use. Concurrent callers may race to fill
// the same key; both compute the identical deterministic result and one
// wins the store, so no caller ever observes a partial entry.
func (c *Cache) ScheduleGroup(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	h1, h2 := HashFilters(filters)
	pat := patternKey(p)
	key := groupKey{h1: h1, h2: fnvString(h2, pat), pattern: pat, alg: alg}
	return c.lookupOrFill(key, filters, p, alg)
}

func (c *Cache) lookupOrFill(key groupKey, filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	c.mu.RLock()
	ss, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return ss
	}
	ss = c.fill(filters, p, alg)
	c.misses.Add(1)
	c.mu.Lock()
	if len(c.m) >= c.capacity {
		c.evictions.Add(int64(len(c.m)))
		c.m = make(map[groupKey][]*Schedule)
		// The dropped entries were carved from the slab; drop its chunks
		// with them so the memory actually retires. Chunks still referenced
		// by schedules callers hold stay alive through those references.
		c.slab = schedSlab{}
	}
	c.m[key] = ss
	c.mu.Unlock()
	return ss
}

// fill computes the group's schedules into cache-owned storage. The
// scheduling itself runs in a pooled kernel's arena; the result is then
// carved out of the cache slab (four amortized-zero "allocations") and
// copied with one bulk memmove per filter. Only the carve itself holds
// the cache mutex — concurrent fills copy in parallel.
func (c *Cache) fill(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	s := schedulerPool.Get().(*Scheduler)
	nf, lanes, steps, cols, fallback := s.runGroup(filters, p, alg)
	if fallback != nil || nf == 0 {
		schedulerPool.Put(s)
		return fallback
	}
	c.mu.Lock()
	ents, fcols, schs, ptrs := c.slab.take(nf, cols, lanes)
	c.mu.Unlock()
	s.assembleInto(ents, fcols, schs, ptrs, nf, lanes, steps, cols)
	schedulerPool.Put(s)
	return ptrs
}

// CacheStats is a cache's lifetime counters and current residency.
// Evictions counts individual entries dropped by the overflow policy, so a
// full-map drop of k entries records k evictions.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Stats reports lifetime hit/miss/eviction counters and the current entry
// count.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// RegisterMetrics exposes the cache's counters in the registry as
// <prefix>_{hits,misses,evictions,entries}, read live at snapshot time.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Func(prefix+"_hits", c.hits.Load)
	r.Func(prefix+"_misses", c.misses.Load)
	r.Func(prefix+"_evictions", c.evictions.Load)
	r.Func(prefix+"_entries", func() int64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return int64(len(c.m))
	})
}

// Reset drops every entry and zeroes the counters. The dropped entries are
// deliberate, not capacity pressure, so they do not count as evictions.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[groupKey][]*Schedule)
	c.slab = schedSlab{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}
