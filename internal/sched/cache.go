package sched

import (
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"bittactical/internal/metrics"
)

// Cache memoizes ScheduleGroup results. A schedule depends only on the
// group's weight values, the connectivity pattern, and the scheduling
// algorithm — it is the static artifact the paper's software front-end
// produces once offline — so experiment sweeps that vary only the back-end
// (TCLp vs TCLe, Figure 8b) or re-simulate a model under several widths can
// schedule each filter group once and share the result. Cached schedules
// are immutable; callers must not modify the returned columns.
//
// The key deliberately excludes the channel-padding mask: scheduling reads
// only the weight values (buildColumn consults Filter.W alone), so groups
// that differ only in padding share an entry.
//
// The cache is striped: entries are sharded over a power-of-two number of
// independent stripes selected by the low bits of the filter-content
// fingerprint (h1), each with its own lock, map, slab and counters, so
// parallel sweeps stop serializing on one mutex. The capacity bound stays
// global — a shared atomic entry count, checked before each insert — with
// the rare overflow sweep locking every stripe and dropping everything,
// exactly the pre-striping drop-all policy. Bounding per stripe instead
// would shrink the effective capacity to nStripes × the fullest stripe's
// share: a working set under the total bound but hashed unevenly would
// thrash hot stripes every sweep, reintroducing the steady-state
// scheduling work the cache exists to remove.
type Cache struct {
	stripes  []cacheStripe
	mask     uint64 // len(stripes) - 1
	capacity int
	count    atomic.Int64 // resident entries, summed over stripes
}

// cacheStripe is one independent shard: its own lock, entry map, slab
// arena, and counters. Counters live per stripe so eight workers hammering
// the cache do not all bounce one hits cache line.
type cacheStripe struct {
	mu        sync.RWMutex
	m         map[groupKey][]*Schedule
	slab      schedSlab
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// groupKey identifies one (filter group, pattern, algorithm) triple. Two
// independent 64-bit FNV-1a streams over the full group content make an
// accidental 128-bit collision implausible at any realistic cache size.
type groupKey struct {
	h1, h2  uint64
	pattern string
	alg     Algorithm
}

// defaultCacheCap bounds resident entries. One entry holds a whole group's
// schedules (up to 16 filters), so the default accommodates every distinct
// group of a full-zoo sweep while capping worst-case memory; on overflow a
// stripe drops everything and refills, which keeps results correct and the
// implementation trivial.
const defaultCacheCap = 1 << 14

// defaultCacheStripes is the stripe count for caches whose capacity can
// support it; tiny capacities use fewer stripes so a near-empty cache does
// not spread a handful of entries over mostly-idle shards.
const defaultCacheStripes = 16

// stripeCount picks the power-of-two stripe count for a capacity: the
// default, reduced so every stripe holds at least one entry.
func stripeCount(capacity int) int {
	n := defaultCacheStripes
	if capacity < n {
		// Largest power of two <= capacity (capacity >= 1 here).
		n = 1 << (bits.Len(uint(capacity)) - 1)
	}
	return n
}

// NewCache returns an empty cache. capacity <= 0 selects the default bound.
// The bound is global across stripes: the cache holds at most capacity
// entries in total, wherever they hash.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	n := stripeCount(capacity)
	c := &Cache{stripes: make([]cacheStripe, n), mask: uint64(n - 1), capacity: capacity}
	for i := range c.stripes {
		c.stripes[i].m = make(map[groupKey][]*Schedule)
	}
	return c
}

// stripe selects the shard for a key. The filter-content hash alone picks
// the stripe (not the pattern-mixed h2), so one group keyed under several
// patterns or algorithms stays on one stripe — batched lookups for a sweep
// touch the minimum number of stripes.
func (c *Cache) stripe(h1 uint64) *cacheStripe {
	return &c.stripes[h1&c.mask]
}

// Shared is the process-wide schedule cache the simulator uses by default.
var Shared = NewCache(0)

func init() {
	// The shared cache is the one an operator of a long-running service
	// cares about; expose its lifetime counters in the default registry.
	Shared.RegisterMetrics(metrics.Default, "sched_cache")
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInt(h uint64, v int64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// patKeys interns the canonical pattern strings: the handful of patterns a
// process sweeps are keyed thousands of times, and the hot path below
// renders into a stack buffer and probes with a byte-slice map lookup (no
// conversion allocation), so repeat keying is allocation-free. Interning by
// the full rendered content — not the pattern name — keeps the no-collision
// property of the rendering itself.
var (
	patKeyMu sync.RWMutex
	patKeys  = make(map[string]string)
)

// patternKey canonicalizes a pattern for keying: the name alone is not
// trustworthy (LookaheadOnly and hand-built patterns reuse labels), so the
// key spells out the structural fields and every offset.
func patternKey(p Pattern) string {
	var arr [96]byte
	b := arr[:0]
	b = strconv.AppendInt(b, int64(p.H), 10)
	b = append(b, '/')
	if p.Infinite {
		b = append(b, 'x')
	}
	for _, o := range p.Offsets {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(o.Dt), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(o.Dl), 10)
	}
	patKeyMu.RLock()
	s, ok := patKeys[string(b)]
	patKeyMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	patKeyMu.Lock()
	patKeys[s] = s
	patKeyMu.Unlock()
	return s
}

// HashFilters computes the filter-content half of a group key: two
// independent hash streams over the group's geometry and weight values.
// Callers that look the same group up repeatedly (the sweep engine's
// filter bank re-keys one group under every config) compute this once and
// pass it to Keyer.ScheduleGroup instead of re-hashing the weights on
// every lookup.
func HashFilters(filters []Filter) (h1, h2 uint64) {
	h1, h2 = uint64(fnvOffset), uint64(5381)
	mix := func(v int64) {
		h1 = fnvInt(h1, v)
		h2 = h2*33 + uint64(v) + (h2 >> 27)
	}
	mix(int64(len(filters)))
	for _, f := range filters {
		mix(int64(f.Lanes))
		mix(int64(f.Steps))
		for _, w := range f.W {
			mix(int64(w))
		}
	}
	return h1, h2
}

// Keyer carries the pattern/algorithm half of a group key in precomputed
// form. Pattern canonicalization builds a string per call; a sweep that
// looks up thousands of groups under one (pattern, algorithm) pays it
// once here instead.
type Keyer struct {
	c   *Cache
	pat string
	p   Pattern
	alg Algorithm
}

// Keyer returns a precomputed-key view of the cache for one
// (pattern, algorithm) pair.
func (c *Cache) Keyer(p Pattern, alg Algorithm) Keyer {
	return Keyer{c: c, pat: patternKey(p), p: p, alg: alg}
}

// ScheduleGroup is Cache.ScheduleGroup with both key halves precomputed:
// the pattern half in the Keyer, the filter-content hash (HashFilters
// over the same filters) by the caller.
func (k Keyer) ScheduleGroup(h1, h2 uint64, filters []Filter) []*Schedule {
	key := groupKey{h1: h1, h2: fnvString(h2, k.pat), pattern: k.pat, alg: k.alg}
	return k.c.lookupOrFill(key, filters, k.p, k.alg)
}

// GroupRef is one filter group in a batched lookup: the group's filters
// plus its precomputed content hash (HashFilters over the same filters).
type GroupRef struct {
	H1, H2  uint64
	Filters []Filter
}

// ScheduleGroups is the batched lookup path: it resolves every group in
// refs under the Keyer's (pattern, algorithm) and writes the schedules
// into out (len(out) must equal len(refs)). Instead of len(refs) separate
// lock acquisitions, the batch takes each touched stripe's read lock
// exactly once for the probe; misses are then scheduled outside any lock
// and inserted with a constant number of critical sections per touched
// stripe. Duplicate groups within one batch are detected and filled once.
func (k Keyer) ScheduleGroups(refs []GroupRef, out [][]*Schedule) {
	if len(out) != len(refs) {
		panic("sched: ScheduleGroups out length mismatch")
	}
	if len(refs) == 0 {
		return
	}
	c := k.c
	keys := make([]groupKey, len(refs))
	for i, r := range refs {
		keys[i] = groupKey{h1: r.H1, h2: fnvString(r.H2, k.pat), pattern: k.pat, alg: k.alg}
	}
	// Probe phase: visit each touched stripe once under its read lock.
	// order[] sorts indices by stripe so each stripe's keys are contiguous.
	miss := make([]int, 0, len(refs))
	done := make([]bool, len(refs))
	for i := range refs {
		if done[i] {
			continue
		}
		s := c.stripe(keys[i].h1)
		s.mu.RLock()
		for j := i; j < len(refs); j++ {
			if done[j] || c.stripe(keys[j].h1) != s {
				continue
			}
			done[j] = true
			if ss, ok := s.m[keys[j]]; ok {
				out[j] = ss
				s.hits.Add(1)
			} else {
				miss = append(miss, j)
			}
		}
		s.mu.RUnlock()
	}
	if len(miss) == 0 {
		return
	}
	// Fill phase: compute each missed group once (batch-internal duplicates
	// share the first computation), then insert. The schedule computation
	// and the arena copy both run outside any stripe lock; only the slab
	// carve and the map insert hold it.
	first := make(map[groupKey]int, len(miss))
	for _, j := range miss {
		if fj, dup := first[keys[j]]; dup {
			out[j] = out[fj]
			c.stripe(keys[j].h1).misses.Add(1)
			continue
		}
		first[keys[j]] = j
		s := c.stripe(keys[j].h1)
		out[j] = s.fill(refs[j].Filters, k.p, k.alg)
		s.misses.Add(1)
		c.insert(s, keys[j], out[j])
	}
}

// ScheduleGroup returns the memoized joint schedule for the filter group,
// computing and storing it on first use. Concurrent callers may race to fill
// the same key; both compute the identical deterministic result and one
// wins the store, so no caller ever observes a partial entry.
func (c *Cache) ScheduleGroup(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	h1, h2 := HashFilters(filters)
	pat := patternKey(p)
	key := groupKey{h1: h1, h2: fnvString(h2, pat), pattern: pat, alg: alg}
	return c.lookupOrFill(key, filters, p, alg)
}

func (c *Cache) lookupOrFill(key groupKey, filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	s := c.stripe(key.h1)
	s.mu.RLock()
	ss, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
		return ss
	}
	ss = s.fill(filters, p, alg)
	s.misses.Add(1)
	c.insert(s, key, ss)
	return ss
}

// insert stores a filled entry, applying the global overflow policy: when
// the cache-wide entry count has reached capacity, everything is dropped
// (recording one eviction per dropped entry) and the cache refills.
func (c *Cache) insert(s *cacheStripe, key groupKey, ss []*Schedule) {
	if c.count.Load() >= int64(c.capacity) {
		c.evictAll()
	}
	s.mu.Lock()
	if _, exists := s.m[key]; !exists {
		c.count.Add(1)
	}
	s.m[key] = ss
	s.mu.Unlock()
}

// evictAll is the overflow sweep: it locks every stripe (ascending, so
// concurrent sweeps cannot deadlock), re-checks residency — a racing
// inserter may have swept already — and drops every entry. The dropped
// entries were carved from the stripes' slabs; the slabs retire with them.
// Chunks still referenced by schedules callers hold stay alive through
// those references.
func (c *Cache) evictAll() {
	for i := range c.stripes {
		c.stripes[i].mu.Lock()
	}
	if c.count.Load() >= int64(c.capacity) {
		for i := range c.stripes {
			s := &c.stripes[i]
			s.evictions.Add(int64(len(s.m)))
			s.m = make(map[groupKey][]*Schedule)
			s.slab = schedSlab{}
		}
		c.count.Store(0)
	}
	for i := len(c.stripes) - 1; i >= 0; i-- {
		c.stripes[i].mu.Unlock()
	}
}

// fill computes the group's schedules into stripe-owned storage. The
// scheduling itself runs in a pooled kernel's arena; the result is then
// carved out of the stripe slab (four amortized-zero "allocations") and
// copied with one bulk memmove per filter. Only the carve itself holds
// the stripe mutex — concurrent fills copy in parallel.
func (s *cacheStripe) fill(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	k := schedulerPool.Get().(*Scheduler)
	nf, lanes, steps, cols, fallback := k.runGroup(filters, p, alg)
	if fallback != nil || nf == 0 {
		schedulerPool.Put(k)
		return fallback
	}
	s.mu.Lock()
	ents, fcols, schs, ptrs := s.slab.take(nf, cols, lanes)
	s.mu.Unlock()
	k.assembleInto(ents, fcols, schs, ptrs, nf, lanes, steps, cols)
	schedulerPool.Put(k)
	return ptrs
}

// CacheStats is a cache's lifetime counters and current residency.
// Evictions counts individual entries dropped by the overflow policy, so a
// sweep that drops k entries records k evictions; summed across stripes
// the accounting stays exact (evictions + entries == inserts).
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Stats reports lifetime hit/miss/eviction counters and the current entry
// count, summed across stripes.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	for i := range c.stripes {
		s := &c.stripes[i]
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}

// RegisterMetrics exposes the cache's counters in the registry as
// <prefix>_{hits,misses,evictions,entries}, read live at snapshot time.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Func(prefix+"_hits", func() int64 { return c.Stats().Hits })
	r.Func(prefix+"_misses", func() int64 { return c.Stats().Misses })
	r.Func(prefix+"_evictions", func() int64 { return c.Stats().Evictions })
	r.Func(prefix+"_entries", func() int64 { return int64(c.Stats().Entries) })
}

// Reset drops every entry and zeroes the counters. The dropped entries are
// deliberate, not capacity pressure, so they do not count as evictions.
func (c *Cache) Reset() {
	for i := range c.stripes {
		c.stripes[i].mu.Lock()
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.m = make(map[groupKey][]*Schedule)
		s.slab = schedSlab{}
		s.hits.Store(0)
		s.misses.Store(0)
		s.evictions.Store(0)
	}
	c.count.Store(0)
	for i := len(c.stripes) - 1; i >= 0; i-- {
		c.stripes[i].mu.Unlock()
	}
}
