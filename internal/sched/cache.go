package sched

import (
	"strconv"
	"sync"
	"sync/atomic"

	"bittactical/internal/metrics"
)

// Cache memoizes ScheduleGroup results. A schedule depends only on the
// group's weight values, the connectivity pattern, and the scheduling
// algorithm — it is the static artifact the paper's software front-end
// produces once offline — so experiment sweeps that vary only the back-end
// (TCLp vs TCLe, Figure 8b) or re-simulate a model under several widths can
// schedule each filter group once and share the result. Cached schedules
// are immutable; callers must not modify the returned columns.
//
// The key deliberately excludes the channel-padding mask: scheduling reads
// only the weight values (buildColumn consults Filter.W alone), so groups
// that differ only in padding share an entry.
type Cache struct {
	mu        sync.RWMutex
	m         map[groupKey][]*Schedule
	capacity  int
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// groupKey identifies one (filter group, pattern, algorithm) triple. Two
// independent 64-bit FNV-1a streams over the full group content make an
// accidental 128-bit collision implausible at any realistic cache size.
type groupKey struct {
	h1, h2  uint64
	pattern string
	alg     Algorithm
}

// defaultCacheCap bounds resident entries. One entry holds a whole group's
// schedules (up to 16 filters), so the default accommodates every distinct
// group of a full-zoo sweep while capping worst-case memory; on overflow the
// cache drops everything and refills, which keeps results correct and the
// implementation trivial.
const defaultCacheCap = 1 << 14

// NewCache returns an empty cache. capacity <= 0 selects the default bound.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	return &Cache{m: make(map[groupKey][]*Schedule), capacity: capacity}
}

// Shared is the process-wide schedule cache the simulator uses by default.
var Shared = NewCache(0)

func init() {
	// The shared cache is the one an operator of a long-running service
	// cares about; expose its lifetime counters in the default registry.
	Shared.RegisterMetrics(metrics.Default, "sched_cache")
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInt(h uint64, v int64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// patternKey canonicalizes a pattern for keying: the name alone is not
// trustworthy (LookaheadOnly and hand-built patterns reuse labels), so the
// key spells out the structural fields and every offset.
func patternKey(p Pattern) string {
	b := make([]byte, 0, 16+8*len(p.Offsets))
	b = strconv.AppendInt(b, int64(p.H), 10)
	b = append(b, '/')
	if p.Infinite {
		b = append(b, 'x')
	}
	for _, o := range p.Offsets {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(o.Dt), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(o.Dl), 10)
	}
	return string(b)
}

func keyOf(filters []Filter, p Pattern, alg Algorithm) groupKey {
	h1, h2 := uint64(fnvOffset), uint64(5381)
	mix := func(v int64) {
		h1 = fnvInt(h1, v)
		h2 = h2*33 + uint64(v) + (h2 >> 27)
	}
	mix(int64(len(filters)))
	for _, f := range filters {
		mix(int64(f.Lanes))
		mix(int64(f.Steps))
		for _, w := range f.W {
			mix(int64(w))
		}
	}
	return groupKey{h1: h1, h2: fnvString(h2, patternKey(p)), pattern: patternKey(p), alg: alg}
}

// ScheduleGroup returns the memoized joint schedule for the filter group,
// computing and storing it on first use. Concurrent callers may race to fill
// the same key; both compute the identical deterministic result and one
// wins the store, so no caller ever observes a partial entry.
func (c *Cache) ScheduleGroup(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	key := keyOf(filters, p, alg)
	c.mu.RLock()
	ss, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return ss
	}
	ss = ScheduleGroup(filters, p, alg)
	c.misses.Add(1)
	c.mu.Lock()
	if len(c.m) >= c.capacity {
		c.evictions.Add(int64(len(c.m)))
		c.m = make(map[groupKey][]*Schedule)
	}
	c.m[key] = ss
	c.mu.Unlock()
	return ss
}

// CacheStats is a cache's lifetime counters and current residency.
// Evictions counts individual entries dropped by the overflow policy, so a
// full-map drop of k entries records k evictions.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Stats reports lifetime hit/miss/eviction counters and the current entry
// count.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// RegisterMetrics exposes the cache's counters in the registry as
// <prefix>_{hits,misses,evictions,entries}, read live at snapshot time.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Func(prefix+"_hits", c.hits.Load)
	r.Func(prefix+"_misses", c.misses.Load)
	r.Func(prefix+"_evictions", c.evictions.Load)
	r.Func(prefix+"_entries", func() int64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return int64(len(c.m))
	})
}

// Reset drops every entry and zeroes the counters. The dropped entries are
// deliberate, not capacity pressure, so they do not count as evictions.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[groupKey][]*Schedule)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}
