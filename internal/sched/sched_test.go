package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bittactical/internal/sparsity"
)

// figure12Filter is the worked example of the paper's Figures 1 and 2:
// 4 lanes, weights at (step, lane) positions (0,0), (0,1), (0,3), (1,1),
// (2,2), (3,3).
func figure12Filter() Filter {
	w := make([]int32, 4*4)
	for _, p := range [][2]int{{0, 0}, {0, 1}, {0, 3}, {1, 1}, {2, 2}, {3, 3}} {
		w[p[0]*4+p[1]] = int32(p[0]*4 + p[1] + 1)
	}
	return NewFilter(4, 4, w, nil)
}

func TestFigure1LookaheadOnly(t *testing.T) {
	// Figure 1: lookahead 1 alone processes the example in 3 cycles.
	f := figure12Filter()
	p := L(1, 0)
	s := ScheduleFilter(f, p, Algorithm1)
	if err := Verify(f, p, s); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("lookahead-1 schedule = %d columns, paper shows 3", s.Len())
	}
	// Cycle 1 must promote w²₂ into lane 2 and then advance two steps.
	col := s.Columns[1]
	e := col.Entries[2]
	if e.SrcStep != 2 || e.SrcLane != 2 || e.Dt != 1 {
		t.Errorf("cycle 1 lane 2 = %+v, want promotion of (2,2)", e)
	}
	if col.Advance != 2 {
		t.Errorf("cycle 1 advance = %d, want 2 (paper: window progresses two steps)", col.Advance)
	}
}

func TestFigure2Lookahead1Lookaside1(t *testing.T) {
	// Figure 2: lookahead 1 + lookaside 1 reaches the 2-cycle minimum, with
	// lane 2 stealing w¹₁ from lane 1 in cycle 0.
	f := figure12Filter()
	p := L(1, 1)
	s := ScheduleFilter(f, p, Algorithm1)
	if err := Verify(f, p, s); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("schedule = %d columns, paper shows the minimum 2", s.Len())
	}
	e := s.Columns[0].Entries[2]
	if e.SrcStep != 1 || e.SrcLane != 1 {
		t.Errorf("cycle 0 lane 2 = %+v, want steal of (1,1)", e)
	}
	if s.Columns[0].Advance != 2 {
		t.Errorf("cycle 0 advance = %d, want 2", s.Columns[0].Advance)
	}
}

func TestFigure4ExclusivePromotion(t *testing.T) {
	// Figure 4's toy: 3 lanes, weights (0,0), (1,0), (1,1); lookahead 1,
	// lookaside 1. A naive assignment can take 2 cycles; Algorithm 1's
	// exclusive-first rule reaches the optimal single cycle:
	// lane 0 keeps w⁰₀, lane 1 must take w¹₁... the exclusive slot analysis
	// routes w¹₀ and w¹₁ to the two free lanes.
	w := make([]int32, 2*3)
	w[0*3+0] = 1 // w00
	w[1*3+0] = 2 // w10
	w[1*3+1] = 3 // w11
	f := NewFilter(3, 2, w, nil)
	p := Pattern{Name: "toy", H: 1, D: 1,
		Offsets: []Offset{{Dt: 1, Dl: 0}, {Dt: 1, Dl: -1}}}
	s := ScheduleFilter(f, p, Algorithm1)
	if err := Verify(f, p, s); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Algorithm 1 schedule = %d columns, optimal is 1", s.Len())
	}
}

func TestDenseFilterMatchesDenseSchedule(t *testing.T) {
	// A fully dense filter cannot be compressed: columns == steps.
	rng := rand.New(rand.NewSource(3))
	w := sparsity.RandomSparseFilter(rng, 12, 16, 0)
	f := NewFilter(16, 12, w, nil)
	for _, p := range []Pattern{L(2, 5), T(2, 5), X()} {
		s := ScheduleFilter(f, p, Algorithm1)
		if s.Len() != 12 {
			t.Errorf("%s: dense filter took %d columns, want 12", p.Name, s.Len())
		}
		if err := Verify(f, p, s); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestAllZeroFilter(t *testing.T) {
	f := NewFilter(16, 8, make([]int32, 128), nil)
	s := ScheduleFilter(f, T(2, 5), Algorithm1)
	if s.Len() != 0 {
		t.Errorf("all-zero filter scheduled %d columns, want 0", s.Len())
	}
	if err := Verify(f, T(2, 5), s); err != nil {
		t.Error(err)
	}
}

func TestXInfIsPerfectCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, sp := range []float64{0.3, 0.6, 0.9} {
		w := sparsity.RandomSparseFilter(rng, 20, 16, sp)
		f := NewFilter(16, 20, w, nil)
		s := ScheduleFilter(f, X(), Algorithm1)
		want := (f.NNZ() + 15) / 16
		if s.Len() != want {
			t.Errorf("sparsity %.1f: X schedule %d columns, want ceil(nnz/16)=%d", sp, s.Len(), want)
		}
		if err := Verify(f, X(), s); err != nil {
			t.Error(err)
		}
	}
}

func TestScheduleInvariantsProperty(t *testing.T) {
	patterns := []Pattern{L(1, 2), L(2, 5), L(4, 3), T(2, 5), T(1, 6), T(3, 4)}
	f := func(seed int64, spRaw uint8, pIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := float64(spRaw%10) / 10.0
		p := patterns[int(pIdx)%len(patterns)]
		w := sparsity.RandomSparseFilter(rng, 10, 16, sp)
		flt := NewFilter(16, 10, w, nil)
		for _, alg := range []Algorithm{Algorithm1, GreedySimple} {
			s := ScheduleFilter(flt, p, alg)
			if err := Verify(flt, p, s); err != nil {
				t.Logf("seed=%d sp=%.1f pattern=%s alg=%v: %v", seed, sp, p.Name, alg, err)
				return false
			}
			// Columns bounded below by perfect compaction.
			if lower := (flt.NNZ() + 15) / 16; s.Len() < lower {
				t.Logf("schedule beat perfect compaction: %d < %d", s.Len(), lower)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMoreConnectivityNeverHurts(t *testing.T) {
	// DESIGN.md §5: a pattern whose offsets are a superset can only shorten
	// the Algorithm-1 schedule or tie on these nested L patterns.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		sp := 0.1 + 0.8*rng.Float64()
		w := sparsity.RandomSparseFilter(rng, 16, 16, sp)
		f := NewFilter(16, 16, w, nil)
		prev := 1 << 30
		// L(2,0) ⊂ L(2,1) ⊂ L(2,3) ⊂ L(2,5): strict offset-set nesting.
		for _, p := range []Pattern{L(2, 0), L(2, 1), L(2, 3), L(2, 5)} {
			got := ScheduleFilter(f, p, Algorithm1).Len()
			if got > prev+1 { // heuristic scheduler: allow 1 column of slack
				t.Errorf("trial %d: %s took %d columns but smaller pattern took %d", trial, p.Name, got, prev)
			}
			if got < prev {
				prev = got
			}
		}
		xLen := ScheduleFilter(f, X(), Algorithm1).Len()
		if prev < xLen {
			t.Errorf("trial %d: constrained schedule (%d) beat X upper bound (%d)", trial, prev, xLen)
		}
	}
}

func TestGroupSharedAdvance(t *testing.T) {
	// Two filters: one dense, one nearly empty. The group must advance in
	// lockstep: both schedules have identical lengths, heads, and advances,
	// and the sparse filter idles while the dense one works.
	rng := rand.New(rand.NewSource(6))
	dense := NewFilter(8, 10, sparsity.RandomSparseFilter(rng, 10, 8, 0), nil)
	sparse := NewFilter(8, 10, sparsity.RandomSparseFilter(rng, 10, 8, 0.95), nil)
	ss := ScheduleGroup([]Filter{dense, sparse}, T(2, 5), Algorithm1)
	if len(ss) != 2 {
		t.Fatalf("got %d schedules", len(ss))
	}
	if ss[0].Len() != ss[1].Len() {
		t.Fatalf("group schedules diverge: %d vs %d columns", ss[0].Len(), ss[1].Len())
	}
	if ss[0].Len() != 10 {
		t.Errorf("dense member forces %d columns, want 10", ss[0].Len())
	}
	for i := range ss[0].Columns {
		a, b := ss[0].Columns[i], ss[1].Columns[i]
		if a.Head != b.Head || a.Advance != b.Advance {
			t.Fatalf("column %d: heads/advances diverge (%d/%d vs %d/%d)",
				i, a.Head, a.Advance, b.Head, b.Advance)
		}
	}
	for _, f := range []Filter{dense, sparse} {
		i := 0
		if f.NNZ() == sparse.NNZ() {
			i = 1
		}
		if err := Verify(f, T(2, 5), ss[i]); err != nil {
			t.Error(err)
		}
	}
}

func TestGroupFasterAlone(t *testing.T) {
	// A sparse filter scheduled alone is at least as fast as inside a group
	// with a dense partner.
	rng := rand.New(rand.NewSource(7))
	sparse := NewFilter(8, 12, sparsity.RandomSparseFilter(rng, 12, 8, 0.8), nil)
	dense := NewFilter(8, 12, sparsity.RandomSparseFilter(rng, 12, 8, 0.05), nil)
	alone := ScheduleFilter(sparse, T(2, 5), Algorithm1).Len()
	grouped := ScheduleGroup([]Filter{sparse, dense}, T(2, 5), Algorithm1)[0].Len()
	if alone > grouped {
		t.Errorf("alone (%d) slower than grouped (%d)", alone, grouped)
	}
}

func TestAlgorithm1NotWorseThanGreedyOnAverage(t *testing.T) {
	// Figure 11b: the optimized scheduler outperforms the simple greedy as
	// sparsity rises. Check the aggregate over many random filters.
	rng := rand.New(rand.NewSource(8))
	var a1, gr int
	for trial := 0; trial < 60; trial++ {
		w := sparsity.RandomSparseFilter(rng, 24, 16, 0.7)
		f := NewFilter(16, 24, w, nil)
		a1 += ScheduleFilter(f, T(2, 5), Algorithm1).Len()
		gr += ScheduleFilter(f, T(2, 5), GreedySimple).Len()
	}
	if a1 > gr {
		t.Errorf("Algorithm 1 total %d columns > greedy %d", a1, gr)
	}
}

func TestStatsClassification(t *testing.T) {
	f := figure12Filter()
	p := L(1, 1)
	s := ScheduleFilter(f, p, Algorithm1)
	st := s.Stats(f)
	if st.Columns != 2 {
		t.Fatalf("columns = %d", st.Columns)
	}
	total := int64(0)
	for _, n := range st.Slots {
		total += n
	}
	if total != int64(2*4) {
		t.Errorf("slot census %d != columns×lanes %d", total, 8)
	}
	if st.Slots[SlotUnpromoted] != 4 { // (0,0),(0,1),(0,3) + (2,2) at head 2
		t.Errorf("unpromoted = %d, want 4", st.Slots[SlotUnpromoted])
	}
	if st.Slots[SlotLookaside] != 1 || st.Slots[SlotLookahead] != 1 {
		t.Errorf("lookaside/lookahead = %d/%d, want 1/1",
			st.Slots[SlotLookaside], st.Slots[SlotLookahead])
	}
}

func TestPadClassification(t *testing.T) {
	// A filter whose lane 3 is padding: idle slots there count as SlotPad.
	w := []int32{1, 2, 3, 0, 4, 5, 6, 0}
	pad := []bool{false, false, false, true, false, false, false, true}
	f := NewFilter(4, 2, w, pad)
	s := ScheduleFilter(f, L(1, 0), Algorithm1)
	st := s.Stats(f)
	if st.Slots[SlotPad] == 0 {
		t.Error("expected pad slots in census")
	}
	if st.Slots[SlotZero] != 0 {
		t.Errorf("zero slots = %d, want 0 (all idles are padding)", st.Slots[SlotZero])
	}
}

func TestSchedulerFillsPadding(t *testing.T) {
	// Section 6.1: "The scheduler can promote effectual weights into
	// channel-induced padding". Lane 3 pad at step 0, weight at (1,3):
	// lookahead promotes it into the pad slot's cycle.
	w := []int32{1, 1, 1, 0, 0, 0, 0, 9}
	pad := []bool{false, false, false, true, false, false, false, false}
	f := NewFilter(4, 2, w, pad)
	s := ScheduleFilter(f, L(1, 0), Algorithm1)
	if s.Len() != 1 {
		t.Fatalf("schedule = %d columns, want 1 (promotion into padding)", s.Len())
	}
	if e := s.Columns[0].Entries[3]; e.SrcStep != 1 || e.SrcLane != 3 {
		t.Errorf("lane 3 entry = %+v, want promotion of (1,3)", e)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	f := figure12Filter()
	p := L(1, 1)
	good := ScheduleFilter(f, p, Algorithm1)
	if err := Verify(f, p, good); err != nil {
		t.Fatal(err)
	}
	// Drop a scheduled weight.
	bad := ScheduleFilter(f, p, Algorithm1)
	for ci := range bad.Columns {
		for li := range bad.Columns[ci].Entries {
			if bad.Columns[ci].Entries[li].Weight != 0 {
				bad.Columns[ci].Entries[li] = Entry{}
				if Verify(f, p, bad) == nil {
					t.Fatal("Verify accepted a schedule with a dropped weight")
				}
				return
			}
		}
	}
}

func TestPatternValidate(t *testing.T) {
	if err := L(2, 5).Validate(); err != nil {
		t.Error(err)
	}
	if err := T(2, 5).Validate(); err != nil {
		t.Error(err)
	}
	bad := Pattern{Name: "bad", H: 1, Offsets: []Offset{{Dt: 0, Dl: 1}}}
	if bad.Validate() == nil {
		t.Error("Validate accepted Dt=0 offset")
	}
	deep := Pattern{Name: "deep", H: 1, Offsets: []Offset{{Dt: 2, Dl: 0}}}
	if deep.Validate() == nil {
		t.Error("Validate accepted offset beyond window")
	}
	dup := Pattern{Name: "dup", H: 1, Offsets: []Offset{{Dt: 1}, {Dt: 1}}}
	if dup.Validate() == nil {
		t.Error("Validate accepted duplicate offsets")
	}
}

func TestPatternMuxInputs(t *testing.T) {
	// The paper's labels encode mux size: L8<2,5> needs an 8-input mux.
	for _, tc := range []struct {
		p    Pattern
		want int
	}{{L(2, 5), 8}, {L(1, 2), 4}, {T(2, 5), 8}, {T(2, 2), 5}} {
		if got := tc.p.MuxInputs(); got != tc.want {
			t.Errorf("%s MuxInputs = %d, want %d", tc.p.Name, got, tc.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range KnownPatternNames() {
		p, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
			continue
		}
		if p.Name != n {
			t.Errorf("ByName(%q) returned %q", n, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := ByName("Z9<9,9>"); err == nil {
		t.Error("ByName accepted unknown pattern")
	}
}

func TestLookaheadOnlyStripsLookaside(t *testing.T) {
	p := T(2, 5).LookaheadOnly()
	for _, o := range p.Offsets {
		if o.Dl != 0 {
			t.Errorf("lookaside offset %+v survived LookaheadOnly", o)
		}
	}
	if len(p.Offsets) != 2 {
		t.Errorf("lookahead-only T<2,5> has %d offsets, want 2", len(p.Offsets))
	}
}

func TestTridentSpreadsOverDepth(t *testing.T) {
	p := T(2, 5)
	depths := map[int]int{}
	for _, o := range p.Offsets {
		if o.Dl != 0 {
			depths[o.Dt]++
		}
	}
	if len(depths) < 2 {
		t.Errorf("trident lookaside uses a single depth: %v", depths)
	}
	// Lane offsets must be non-contiguous (the defining trident property).
	lanes := map[int]bool{}
	for _, o := range p.Offsets {
		if o.Dl != 0 {
			lanes[o.Dl] = true
		}
	}
	if lanes[2] && lanes[1] && lanes[3] {
		t.Error("trident lane offsets are contiguous")
	}
}

func TestGroupGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ScheduleGroup should panic on geometry mismatch")
		}
	}()
	a := NewFilter(4, 2, make([]int32, 8), nil)
	b := NewFilter(4, 3, make([]int32, 12), nil)
	ScheduleGroup([]Filter{a, b}, L(1, 1), Algorithm1)
}

func TestMatchingSchedulerValid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		sp := 0.2 + 0.7*rng.Float64()
		w := sparsity.RandomSparseFilter(rng, 20, 16, sp)
		f := NewFilter(16, 20, w, nil)
		for _, p := range []Pattern{T(2, 5), L(1, 6)} {
			s := ScheduleFilter(f, p, Matching)
			if err := Verify(f, p, s); err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.Name, err)
			}
		}
	}
}

func TestMatchingAtLeastAsGoodAsAlg1PerColumn(t *testing.T) {
	// Column-optimal matching must not lose to Algorithm 1 in aggregate:
	// over many filters the total column count is <=, with tiny slack for
	// the greedy-in-time interaction between columns.
	rng := rand.New(rand.NewSource(22))
	var alg1, match int
	for trial := 0; trial < 60; trial++ {
		w := sparsity.RandomSparseFilter(rng, 24, 16, 0.7)
		f := NewFilter(16, 24, w, nil)
		alg1 += ScheduleFilter(f, T(2, 5), Algorithm1).Len()
		match += ScheduleFilter(f, T(2, 5), Matching).Len()
	}
	// Column-optimal is not schedule-optimal (maximizing one column can
	// starve later windows), so allow a small two-sided band: the two must
	// track each other within ~2-5% — the quantified form of the paper's
	// "nearly optimal performance" claim for Algorithm 1.
	if float64(match) > 1.02*float64(alg1) {
		t.Errorf("matching total %d columns worse than Algorithm 1 %d", match, alg1)
	}
	if float64(alg1) > 1.05*float64(match) {
		t.Errorf("Algorithm 1 (%d) more than 5%% behind column-optimal matching (%d)", alg1, match)
	}
}

func TestAlgorithmString(t *testing.T) {
	if Algorithm1.String() != "algorithm1" || GreedySimple.String() != "greedy" || Matching.String() != "matching" {
		t.Error("Algorithm String() labels wrong")
	}
}

func TestStructuredSparsitySchedulesBetter(t *testing.T) {
	// Section 7: "TCL fully supports this form of structural sparsity
	// without requiring it." Structured zeros (aligned across the tile's
	// filters) must let the joint group schedule compact at least as well
	// as — in practice better than — random sparsity at the same level.
	rng := rand.New(rand.NewSource(23))
	lanes, steps, group := 16, 24, 8
	mkGroup := func(structured bool) []Filter {
		fs := make([]Filter, group)
		var mask []bool
		if structured {
			mask = make([]bool, steps*lanes)
			perm := rng.Perm(steps * lanes)
			for _, i := range perm[:steps*lanes*7/10] {
				mask[i] = true
			}
		}
		for f := range fs {
			var w []int32
			if structured {
				w = make([]int32, steps*lanes)
				for i := range w {
					if !mask[i] {
						w[i] = int32(rng.Intn(200) + 1)
					}
				}
			} else {
				w = sparsity.RandomSparseFilter(rng, steps, lanes, 0.7)
			}
			fs[f] = NewFilter(lanes, steps, w, nil)
		}
		return fs
	}
	st := ScheduleGroup(mkGroup(true), T(2, 5), Algorithm1)[0].Len()
	rd := ScheduleGroup(mkGroup(false), T(2, 5), Algorithm1)[0].Len()
	if st > rd {
		t.Errorf("structured sparsity scheduled %d columns, random %d — structure should help the group", st, rd)
	}
}
