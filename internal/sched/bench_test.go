package sched

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"bittactical/internal/sparsity"
)

// benchGroup builds a Table-2-sized filter group: 16 filters (one tile's PE
// rows) × 16 lanes × 54 dense steps at 70% sparsity — the geometry and
// density regime of the paper's pruned conv layers.
func benchGroup(seed int64) []Filter {
	rng := rand.New(rand.NewSource(seed))
	const lanes, steps, nf = 16, 54, 16
	filters := make([]Filter, nf)
	for i := range filters {
		filters[i] = NewFilter(lanes, steps, sparsity.RandomSparseFilter(rng, steps, lanes, 0.7), nil)
	}
	return filters
}

// benchConfigs is the pattern × algorithm sweep the scheduler benchmarks
// cover: the Table-2 pattern family under each promotion heuristic.
func benchConfigs() []struct {
	p   Pattern
	alg Algorithm
} {
	var out []struct {
		p   Pattern
		alg Algorithm
	}
	for _, p := range []Pattern{L(1, 2), L(2, 5), T(2, 5), T(1, 6)} {
		for _, alg := range []Algorithm{Algorithm1, GreedySimple, Matching} {
			out = append(out, struct {
				p   Pattern
				alg Algorithm
			}{p, alg})
		}
	}
	return out
}

// BenchmarkScheduleGroup measures the optimized kernel in steady state: one
// reused Scheduler, schedules written into its arena. This is the
// allocation-free hot path; allocs/op must be 0.
func BenchmarkScheduleGroup(b *testing.B) {
	filters := benchGroup(1)
	for _, c := range benchConfigs() {
		b.Run(fmt.Sprintf("%s/%s", c.p.Name, c.alg), func(b *testing.B) {
			sc := NewScheduler()
			sc.ScheduleGroup(filters, c.p, c.alg) // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.ScheduleGroup(filters, c.p, c.alg)
			}
		})
	}
}

// BenchmarkScheduleGroupFresh measures the pooled package entry point, which
// copies the arena into retainable schedules (the schedule-cache fill path).
func BenchmarkScheduleGroupFresh(b *testing.B) {
	filters := benchGroup(1)
	for _, c := range benchConfigs() {
		b.Run(fmt.Sprintf("%s/%s", c.p.Name, c.alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ScheduleGroup(filters, c.p, c.alg)
			}
		})
	}
}

// BenchmarkScheduleGroupReference measures the pre-optimization scheduler
// kept as the differential-fuzz specification, for the kernel-vs-reference
// ratio recorded in BENCH_sched.json.
func BenchmarkScheduleGroupReference(b *testing.B) {
	filters := benchGroup(1)
	for _, c := range benchConfigs() {
		b.Run(fmt.Sprintf("%s/%s", c.p.Name, c.alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scheduleGroupReference(filters, c.p, c.alg)
			}
		})
	}
}

// TestEmitBenchSched regenerates BENCH_sched.json at the repo root: per
// (pattern, algorithm) ns/op and allocs/op for the optimized kernel (arena
// mode), the pooled fresh-copy path, and the reference scheduler, plus the
// reference/kernel speedup. Gated behind TCL_BENCH_SCHED=1 (`make
// bench-sched`).
func TestEmitBenchSched(t *testing.T) {
	if os.Getenv("TCL_BENCH_SCHED") == "" {
		t.Skip("set TCL_BENCH_SCHED=1 to regenerate BENCH_sched.json")
	}
	type record struct {
		Pattern         string  `json:"pattern"`
		Algorithm       string  `json:"algorithm"`
		KernelNsPerOp   int64   `json:"kernel_ns_per_op"`
		KernelAllocs    int64   `json:"kernel_allocs_per_op"`
		FreshNsPerOp    int64   `json:"fresh_ns_per_op"`
		FreshAllocs     int64   `json:"fresh_allocs_per_op"`
		RefNsPerOp      int64   `json:"reference_ns_per_op"`
		RefAllocs       int64   `json:"reference_allocs_per_op"`
		SpeedupVsRef    float64 `json:"kernel_speedup_vs_reference"`
		FreshSpeedupRef float64 `json:"fresh_speedup_vs_reference"`
	}
	out := struct {
		Generated  string   `json:"generated"`
		GoMaxProcs int      `json:"go_max_procs"`
		NumCPU     int      `json:"num_cpu"`
		Group      string   `json:"group"`
		Benchmarks []record `json:"benchmarks"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Group:      "16 filters x 16 lanes x 54 steps, 70% sparsity",
	}
	filters := benchGroup(1)
	for _, c := range benchConfigs() {
		sc := NewScheduler()
		sc.ScheduleGroup(filters, c.p, c.alg)
		kernel := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc.ScheduleGroup(filters, c.p, c.alg)
			}
		})
		fresh := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ScheduleGroup(filters, c.p, c.alg)
			}
		})
		ref := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scheduleGroupReference(filters, c.p, c.alg)
			}
		})
		rec := record{
			Pattern:       c.p.Name,
			Algorithm:     c.alg.String(),
			KernelNsPerOp: kernel.NsPerOp(),
			KernelAllocs:  int64(kernel.AllocsPerOp()),
			FreshNsPerOp:  fresh.NsPerOp(),
			FreshAllocs:   int64(fresh.AllocsPerOp()),
			RefNsPerOp:    ref.NsPerOp(),
			RefAllocs:     int64(ref.AllocsPerOp()),
		}
		if rec.KernelNsPerOp > 0 {
			rec.SpeedupVsRef = float64(rec.RefNsPerOp) / float64(rec.KernelNsPerOp)
		}
		if rec.FreshNsPerOp > 0 {
			rec.FreshSpeedupRef = float64(rec.RefNsPerOp) / float64(rec.FreshNsPerOp)
		}
		out.Benchmarks = append(out.Benchmarks, rec)
		t.Logf("%s/%s: kernel %d ns/op (%d allocs), fresh %d ns/op (%d allocs), reference %d ns/op (%d allocs), %.2fx",
			c.p.Name, c.alg, rec.KernelNsPerOp, rec.KernelAllocs,
			rec.FreshNsPerOp, rec.FreshAllocs, rec.RefNsPerOp, rec.RefAllocs, rec.SpeedupVsRef)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_sched.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
