package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"bittactical/internal/sparsity"
)

// benchGroup builds a Table-2-sized filter group: 16 filters (one tile's PE
// rows) × 16 lanes × 54 dense steps at 70% sparsity — the geometry and
// density regime of the paper's pruned conv layers.
func benchGroup(seed int64) []Filter {
	rng := rand.New(rand.NewSource(seed))
	const lanes, steps, nf = 16, 54, 16
	filters := make([]Filter, nf)
	for i := range filters {
		filters[i] = NewFilter(lanes, steps, sparsity.RandomSparseFilter(rng, steps, lanes, 0.7), nil)
	}
	return filters
}

// benchConfigs is the pattern × algorithm sweep the scheduler benchmarks
// cover: the Table-2 pattern family under each promotion heuristic.
func benchConfigs() []struct {
	p   Pattern
	alg Algorithm
} {
	var out []struct {
		p   Pattern
		alg Algorithm
	}
	for _, p := range []Pattern{L(1, 2), L(2, 5), T(2, 5), T(1, 6)} {
		for _, alg := range []Algorithm{Algorithm1, GreedySimple, Matching} {
			out = append(out, struct {
				p   Pattern
				alg Algorithm
			}{p, alg})
		}
	}
	return out
}

// BenchmarkScheduleGroup measures the optimized kernel in steady state: one
// reused Scheduler, schedules written into its arena. This is the
// allocation-free hot path; allocs/op must be 0.
func BenchmarkScheduleGroup(b *testing.B) {
	filters := benchGroup(1)
	for _, c := range benchConfigs() {
		b.Run(fmt.Sprintf("%s/%s", c.p.Name, c.alg), func(b *testing.B) {
			sc := NewScheduler()
			sc.ScheduleGroup(filters, c.p, c.alg) // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.ScheduleGroup(filters, c.p, c.alg)
			}
		})
	}
}

// BenchmarkScheduleGroupFresh measures the pooled package entry point, which
// copies the arena into retainable schedules (the schedule-cache fill path).
func BenchmarkScheduleGroupFresh(b *testing.B) {
	filters := benchGroup(1)
	for _, c := range benchConfigs() {
		b.Run(fmt.Sprintf("%s/%s", c.p.Name, c.alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ScheduleGroup(filters, c.p, c.alg)
			}
		})
	}
}

// BenchmarkScheduleGroupReference measures the pre-optimization scheduler
// kept as the differential-fuzz specification, for the kernel-vs-reference
// ratio recorded in BENCH_sched.json.
func BenchmarkScheduleGroupReference(b *testing.B) {
	filters := benchGroup(1)
	for _, c := range benchConfigs() {
		b.Run(fmt.Sprintf("%s/%s", c.p.Name, c.alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scheduleGroupReference(filters, c.p, c.alg)
			}
		})
	}
}

// BENCH_sched.json regeneration lives in emit_test.go (package sched_test):
// the shared internal/bench suite imports this package, so the emitter must
// sit outside it to avoid an import cycle in the test binary.
