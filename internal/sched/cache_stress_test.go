package sched

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// stressWorkload builds per-worker disjoint filter groups plus their fresh
// (uncached) schedules as the correctness oracle. Disjoint key sets keep the
// eviction accounting exact under concurrency: a key is only ever filled by
// its owning worker, so every recorded miss corresponds to exactly one
// insert, and at quiescence evictions + resident entries must equal misses
// across all stripes.
func stressWorkload(workers, groupsPer int, p Pattern, alg Algorithm) ([][][]Filter, [][][]*Schedule) {
	groups := make([][][]Filter, workers)
	fresh := make([][][]*Schedule, workers)
	for w := 0; w < workers; w++ {
		groups[w] = make([][]Filter, groupsPer)
		fresh[w] = make([][]*Schedule, groupsPer)
		for g := 0; g < groupsPer; g++ {
			seed := int64(1000 + w*groupsPer + g)
			groups[w][g] = cacheTestGroup(seed, 10, 8, 0.6, nil)
			fresh[w][g] = ScheduleGroup(groups[w][g], p, alg)
		}
	}
	return groups, fresh
}

// TestCacheConcurrentMixedLoad hammers the striped cache with a mixed
// hit/miss/evict load: each worker loops over its own working set, so early
// rounds miss and fill, later rounds hit — unless a capacity sweep dropped
// the entry, forcing a re-fill. Run across capacities that exercise the
// full stripe ladder (capacity 1 = single stripe and eviction on nearly
// every insert; 8 = reduced stripes; default = 16 stripes, no evictions).
// Every lookup must return schedules identical to the uncached computation,
// and the cross-stripe counters must balance exactly:
//
//	hits + misses == lookups
//	evictions + entries == misses   (disjoint keys: one insert per miss)
func TestCacheConcurrentMixedLoad(t *testing.T) {
	const workers, groupsPer, rounds = 8, 12, 12
	p, alg := T(2, 5), Algorithm1
	groups, fresh := stressWorkload(workers, groupsPer, p, alg)

	for _, capacity := range []int{1, 8, 0} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			c := NewCache(capacity)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for g := range groups[w] {
							got := c.ScheduleGroup(groups[w][g], p, alg)
							if !reflect.DeepEqual(fresh[w][g], got) {
								t.Errorf("worker %d group %d round %d: cached schedules differ from fresh computation", w, g, r)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			st := c.Stats()
			lookups := int64(workers * groupsPer * rounds)
			if st.Hits+st.Misses != lookups {
				t.Errorf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
			}
			if st.Evictions+int64(st.Entries) != st.Misses {
				t.Errorf("evictions %d + resident %d != misses %d: cross-stripe eviction accounting drifted",
					st.Evictions, st.Entries, st.Misses)
			}
			if capacity == 1 && st.Evictions == 0 {
				t.Error("capacity-1 churn recorded no evictions")
			}
			if capacity == 0 && st.Evictions != 0 {
				t.Errorf("default capacity evicted %d entries for a %d-entry working set", st.Evictions, workers*groupsPer)
			}
		})
	}
}

// TestKeyerMatchesScheduleGroup pins the precomputed-key path against the
// hash-per-call entry point: same schedules, and a Keyer hit returns the
// cached pointers the plain path stored.
func TestKeyerMatchesScheduleGroup(t *testing.T) {
	c := NewCache(0)
	p, alg := T(2, 5), Algorithm1
	group := cacheTestGroup(500, 12, 8, 0.6, nil)

	direct := c.ScheduleGroup(group, p, alg)
	k := c.Keyer(p, alg)
	h1, h2 := HashFilters(group)
	viaKeyer := k.ScheduleGroup(h1, h2, group)
	for i := range direct {
		if direct[i] != viaKeyer[i] {
			t.Fatalf("filter %d: Keyer lookup missed the entry ScheduleGroup stored", i)
		}
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want the Keyer path to hit", st.Hits, st.Misses)
	}
}

// TestScheduleGroupsBatchDuplicates pins batch-internal dedup: duplicate
// refs in one batch are computed once and share the first occurrence's
// result, while each ref still counts toward the lookup tally.
func TestScheduleGroupsBatchDuplicates(t *testing.T) {
	c := NewCache(0)
	p, alg := T(2, 5), Algorithm1
	a := cacheTestGroup(600, 10, 8, 0.6, nil)
	b := cacheTestGroup(601, 10, 8, 0.6, nil)
	ah1, ah2 := HashFilters(a)
	bh1, bh2 := HashFilters(b)

	refs := []GroupRef{
		{H1: ah1, H2: ah2, Filters: a},
		{H1: bh1, H2: bh2, Filters: b},
		{H1: ah1, H2: ah2, Filters: a}, // duplicate of refs[0]
	}
	out := make([][]*Schedule, len(refs))
	c.Keyer(p, alg).ScheduleGroups(refs, out)

	for i := range out[0] {
		if out[0][i] != out[2][i] {
			t.Fatalf("filter %d: batch duplicate did not share the first fill", i)
		}
	}
	if !reflect.DeepEqual(out[0], ScheduleGroup(a, p, alg)) || !reflect.DeepEqual(out[1], ScheduleGroup(b, p, alg)) {
		t.Fatal("batch fill differs from direct ScheduleGroup")
	}
	st := c.Stats()
	if st.Hits+st.Misses != int64(len(refs)) {
		t.Fatalf("hits %d + misses %d != %d refs", st.Hits, st.Misses, len(refs))
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 distinct groups", st.Entries)
	}
}

// TestScheduleGroupsBatchConcurrent drives the batched lookup path from
// many workers over disjoint dup-free batches with a capacity small enough
// to force overflow sweeps mid-batch. Results must match the uncached
// computation on every round and the cross-stripe accounting must stay
// exact, including entries dropped while other workers' batches were in
// their probe or fill phases.
func TestScheduleGroupsBatchConcurrent(t *testing.T) {
	const workers, groupsPer, rounds = 8, 10, 10
	p, alg := T(2, 5), Algorithm1
	groups, fresh := stressWorkload(workers, groupsPer, p, alg)

	c := NewCache(workers * groupsPer / 4) // working set 4x capacity: constant churn
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := c.Keyer(p, alg)
			refs := make([]GroupRef, groupsPer)
			for g := range refs {
				h1, h2 := HashFilters(groups[w][g])
				refs[g] = GroupRef{H1: h1, H2: h2, Filters: groups[w][g]}
			}
			out := make([][]*Schedule, groupsPer)
			for r := 0; r < rounds; r++ {
				for g := range out {
					out[g] = nil
				}
				k.ScheduleGroups(refs, out)
				for g := range out {
					if !reflect.DeepEqual(fresh[w][g], out[g]) {
						t.Errorf("worker %d group %d round %d: batched schedules differ from fresh computation", w, g, r)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := c.Stats()
	lookups := int64(workers * groupsPer * rounds)
	if st.Hits+st.Misses != lookups {
		t.Errorf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
	}
	if st.Evictions+int64(st.Entries) != st.Misses {
		t.Errorf("evictions %d + resident %d != misses %d: cross-stripe eviction accounting drifted",
			st.Evictions, st.Entries, st.Misses)
	}
	if st.Evictions == 0 {
		t.Error("4x-capacity churn recorded no evictions")
	}
}
