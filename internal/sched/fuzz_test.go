package sched

import (
	"testing"
)

// FuzzScheduleInvariants drives the three schedulers with arbitrary weight
// matrices and checks every hardware invariant plus the compaction bounds.
// Run with `go test -fuzz FuzzScheduleInvariants ./internal/sched` to
// explore beyond the seed corpus; the seeds run as regular tests.
func FuzzScheduleInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 3, 0, 4}, uint8(4), uint8(0))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, lanesRaw, pIdx uint8) {
		lanes := 2 + int(lanesRaw%15) // 2..16
		if len(raw) == 0 {
			return
		}
		steps := (len(raw) + lanes - 1) / lanes
		if steps > 64 {
			steps = 64
		}
		w := make([]int32, steps*lanes)
		for i := range w {
			if i < len(raw) {
				w[i] = int32(int8(raw[i])) // signed, zeros possible
			}
		}
		flt := NewFilter(lanes, steps, w, nil)
		patterns := []Pattern{L(1, 2), L(2, 5), T(2, 5), T(1, 6)}
		p := patterns[int(pIdx)%len(patterns)]
		for _, alg := range []Algorithm{Algorithm1, GreedySimple, Matching} {
			s := ScheduleFilter(flt, p, alg)
			if err := Verify(flt, p, s); err != nil {
				t.Fatalf("alg %v pattern %s: %v", alg, p.Name, err)
			}
			if lower := (flt.NNZ() + lanes - 1) / lanes; s.Len() < lower {
				t.Fatalf("schedule %d columns beats perfect compaction %d", s.Len(), lower)
			}
			if flt.NNZ() > 0 && s.Len() > steps {
				t.Fatalf("schedule %d columns exceeds dense %d", s.Len(), steps)
			}
		}
	})
}

// FuzzGroupScheduleLockstep checks the joint-group invariants: identical
// column counts, heads and advances across members, and per-member
// verification.
func FuzzGroupScheduleLockstep(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 0, 0, 3, 1}, []byte{0, 0, 0, 1, 2, 3, 0, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		const lanes = 4
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if n == 0 {
			return
		}
		steps := (n + lanes - 1) / lanes
		if steps > 32 {
			steps = 32
		}
		mk := func(raw []byte) Filter {
			w := make([]int32, steps*lanes)
			for i := range w {
				if i < len(raw) {
					w[i] = int32(int8(raw[i]))
				}
			}
			return NewFilter(lanes, steps, w, nil)
		}
		fa, fb := mk(rawA), mk(rawB)
		ss := ScheduleGroup([]Filter{fa, fb}, T(2, 5), Algorithm1)
		if ss[0].Len() != ss[1].Len() {
			t.Fatal("group schedules diverge in length")
		}
		for i := range ss[0].Columns {
			if ss[0].Columns[i].Head != ss[1].Columns[i].Head ||
				ss[0].Columns[i].Advance != ss[1].Columns[i].Advance {
				t.Fatal("group schedules diverge in window state")
			}
		}
		if err := Verify(fa, T(2, 5), ss[0]); err != nil {
			t.Fatal(err)
		}
		if err := Verify(fb, T(2, 5), ss[1]); err != nil {
			t.Fatal(err)
		}
	})
}
