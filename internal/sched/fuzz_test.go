package sched

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzScheduleInvariants drives the three schedulers with arbitrary weight
// matrices and checks every hardware invariant plus the compaction bounds.
// Run with `go test -fuzz FuzzScheduleInvariants ./internal/sched` to
// explore beyond the seed corpus; the seeds run as regular tests.
func FuzzScheduleInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 3, 0, 4}, uint8(4), uint8(0))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, lanesRaw, pIdx uint8) {
		lanes := 2 + int(lanesRaw%15) // 2..16
		if len(raw) == 0 {
			return
		}
		steps := (len(raw) + lanes - 1) / lanes
		if steps > 64 {
			steps = 64
		}
		w := make([]int32, steps*lanes)
		for i := range w {
			if i < len(raw) {
				w[i] = int32(int8(raw[i])) // signed, zeros possible
			}
		}
		flt := NewFilter(lanes, steps, w, nil)
		patterns := []Pattern{L(1, 2), L(2, 5), T(2, 5), T(1, 6)}
		p := patterns[int(pIdx)%len(patterns)]
		for _, alg := range []Algorithm{Algorithm1, GreedySimple, Matching} {
			s := ScheduleFilter(flt, p, alg)
			if err := Verify(flt, p, s); err != nil {
				t.Fatalf("alg %v pattern %s: %v", alg, p.Name, err)
			}
			if lower := (flt.NNZ() + lanes - 1) / lanes; s.Len() < lower {
				t.Fatalf("schedule %d columns beats perfect compaction %d", s.Len(), lower)
			}
			if flt.NNZ() > 0 && s.Len() > steps {
				t.Fatalf("schedule %d columns exceeds dense %d", s.Len(), steps)
			}
		}
	})
}

// diffPatterns is the pattern family the differential suites sweep: L and T
// shapes across the Table-2 design space plus the X upper bound.
func diffPatterns() []Pattern {
	return []Pattern{L(1, 2), L(2, 5), L(6, 1), T(2, 5), T(1, 6), T(3, 4), X()}
}

// assertKernelMatchesReference schedules the group through both the
// optimized bitset kernel and the reference scheduler and fails on any
// divergence — same column counts, heads, advances, entries, promotions.
func assertKernelMatchesReference(t *testing.T, sc *Scheduler, filters []Filter, p Pattern, alg Algorithm) {
	t.Helper()
	want := scheduleGroupReference(filters, p, alg)
	got := sc.ScheduleGroup(filters, p, alg)
	if len(got) != len(want) {
		t.Fatalf("pattern %s alg %v: kernel returned %d schedules, reference %d",
			p.Name, alg, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(*got[i], *want[i]) {
			t.Fatalf("pattern %s alg %v filter %d: kernel schedule diverges from reference\nkernel:    %+v\nreference: %+v",
				p.Name, alg, i, *got[i], *want[i])
		}
	}
	// The pooled package entry point must agree too (fresh-copy path).
	fresh := ScheduleGroup(filters, p, alg)
	for i := range want {
		if !reflect.DeepEqual(*fresh[i], *want[i]) {
			t.Fatalf("pattern %s alg %v filter %d: pooled schedule diverges from reference",
				p.Name, alg, i)
		}
	}
}

// FuzzKernelMatchesReference differentially fuzzes the optimized kernel
// against the reference scheduler: random weight matrices and group sizes,
// L/T/X patterns, all three algorithms, asserting bit-identical schedules.
// The reference is the executable specification; any divergence is a kernel
// bug. Run with `go test -fuzz FuzzKernelMatchesReference ./internal/sched`.
func FuzzKernelMatchesReference(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 3, 0, 4}, uint8(4), uint8(0), uint8(1))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 9, 3, 3, 0, 1}, uint8(3), uint8(3), uint8(2))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, uint8(2), uint8(6), uint8(3))
	patterns := diffPatterns()
	f.Fuzz(func(t *testing.T, raw []byte, lanesRaw, pIdx, nfRaw uint8) {
		lanes := 2 + int(lanesRaw%15) // 2..16
		nf := 1 + int(nfRaw%4)        // 1..4 filters per group
		per := len(raw) / nf
		if per == 0 {
			return
		}
		steps := (per + lanes - 1) / lanes
		if steps > 48 {
			steps = 48
		}
		filters := make([]Filter, nf)
		for fi := range filters {
			w := make([]int32, steps*lanes)
			for i := range w {
				if k := fi*per + i; k < len(raw) && i < per {
					w[i] = int32(int8(raw[k]))
				}
			}
			filters[fi] = NewFilter(lanes, steps, w, nil)
		}
		p := patterns[int(pIdx)%len(patterns)]
		sc := NewScheduler()
		for _, alg := range []Algorithm{Algorithm1, GreedySimple, Matching} {
			assertKernelMatchesReference(t, sc, filters, p, alg)
		}
	})
}

// TestKernelMatchesReferenceSustained is the always-on differential run: a
// few thousand random (filter group, pattern, algorithm) triples across the
// sparsity range, reusing one Scheduler throughout so scratch-state leakage
// between groups would be caught as a divergence.
func TestKernelMatchesReferenceSustained(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	patterns := diffPatterns()
	sc := NewScheduler()
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		lanes := 2 + rng.Intn(15)
		steps := 1 + rng.Intn(24)
		nf := 1 + rng.Intn(4)
		sparsity := rng.Float64()
		filters := make([]Filter, nf)
		for fi := range filters {
			w := make([]int32, steps*lanes)
			for i := range w {
				if rng.Float64() >= sparsity {
					w[i] = int32(rng.Intn(255)) - 127
				}
			}
			filters[fi] = NewFilter(lanes, steps, w, nil)
		}
		p := patterns[rng.Intn(len(patterns))]
		for _, alg := range []Algorithm{Algorithm1, GreedySimple, Matching} {
			assertKernelMatchesReference(t, sc, filters, p, alg)
		}
	}
}

// FuzzGroupScheduleLockstep checks the joint-group invariants: identical
// column counts, heads and advances across members, and per-member
// verification.
func FuzzGroupScheduleLockstep(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 0, 0, 3, 1}, []byte{0, 0, 0, 1, 2, 3, 0, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		const lanes = 4
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if n == 0 {
			return
		}
		steps := (n + lanes - 1) / lanes
		if steps > 32 {
			steps = 32
		}
		mk := func(raw []byte) Filter {
			w := make([]int32, steps*lanes)
			for i := range w {
				if i < len(raw) {
					w[i] = int32(int8(raw[i]))
				}
			}
			return NewFilter(lanes, steps, w, nil)
		}
		fa, fb := mk(rawA), mk(rawB)
		ss := ScheduleGroup([]Filter{fa, fb}, T(2, 5), Algorithm1)
		if ss[0].Len() != ss[1].Len() {
			t.Fatal("group schedules diverge in length")
		}
		for i := range ss[0].Columns {
			if ss[0].Columns[i].Head != ss[1].Columns[i].Head ||
				ss[0].Columns[i].Advance != ss[1].Columns[i].Advance {
				t.Fatal("group schedules diverge in window state")
			}
		}
		if err := Verify(fa, T(2, 5), ss[0]); err != nil {
			t.Fatal(err)
		}
		if err := Verify(fb, T(2, 5), ss[1]); err != nil {
			t.Fatal(err)
		}
	})
}
