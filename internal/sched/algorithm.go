package sched

import (
	"fmt"
	"sort"
)

// Algorithm selects the promotion heuristic.
type Algorithm int

const (
	// Algorithm1 is the paper's scheduler (Section 4): at each window
	// position it counts, for every ineffectual slot, how many effectual
	// weights could be promoted into it, and fills the least-flexible
	// (ideally exclusive) slots first, avoiding the blocked-promotion
	// pathology of Figure 4.
	Algorithm1 Algorithm = iota
	// GreedySimple is the baseline scheduler of Figure 11b: lanes claim the
	// first reachable weight in fixed order, with no exclusivity analysis.
	GreedySimple
	// Matching fills each column with a maximum bipartite matching between
	// free lanes and reachable weights (Kuhn's augmenting paths) — the
	// per-column optimum, an upper bound on what Algorithm 1's
	// exclusive-first heuristic can achieve within a single column. It is
	// an extension beyond the paper, used to measure how close Algorithm 1
	// gets to column-optimal.
	Matching
)

func (a Algorithm) String() string {
	switch a {
	case GreedySimple:
		return "greedy"
	case Matching:
		return "matching"
	default:
		return "algorithm1"
	}
}

// scheduleGroupReference is the straightforward scheduler: it re-enumerates
// every lane's promotion candidates from scratch each column with fresh
// slices and sorts. It is kept as the executable specification the optimized
// kernel (kernel.go) is differentially fuzzed against, and as the fallback
// for patterns with more than 64 offsets (beyond the kernel's per-lane
// candidate bitset).
//
// All returned schedules have identical column counts, heads, and advances.
func scheduleGroupReference(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	return scheduleGroupRef(filters, p, alg)
}

// ScheduleGroupReference exposes the reference scheduler to differential
// tooling outside the package (the benchmark suite measures kernel vs
// reference); engine code must use ScheduleGroup or a Cache.
func ScheduleGroupReference(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	return scheduleGroupRef(filters, p, alg)
}

func scheduleGroupRef(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	if len(filters) == 0 {
		return nil
	}
	lanes, steps := filters[0].Lanes, filters[0].Steps
	for _, f := range filters {
		if f.Lanes != lanes || f.Steps != steps {
			panic(fmt.Sprintf("sched: group filters disagree on geometry (%dx%d vs %dx%d)",
				f.Steps, f.Lanes, steps, lanes))
		}
	}
	if p.Infinite {
		return scheduleInfinite(filters)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}

	nf := len(filters)
	done := make([][]bool, nf)
	stepPending := make([][]int, nf)
	pending := 0
	for i, f := range filters {
		done[i] = make([]bool, steps*lanes)
		stepPending[i] = make([]int, steps)
		for st := 0; st < steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				if f.W[st*lanes+ln] != 0 {
					stepPending[i][st]++
					pending++
				}
			}
		}
	}
	out := make([]*Schedule, nf)
	for i := range out {
		out[i] = &Schedule{Lanes: lanes, DenseSteps: steps}
	}

	stepClear := func(st int) bool {
		for i := range filters {
			if stepPending[i][st] != 0 {
				return false
			}
		}
		return true
	}

	head := 0
	for head < steps && stepClear(head) {
		head++ // skip leading all-ineffectual steps (ALC pre-advance)
	}
	for pending > 0 {
		for i, f := range filters {
			col := Column{Head: head, Entries: make([]Entry, lanes)}
			referenceBuildColumn(f, p, alg, done[i], stepPending[i], head, col.Entries)
			out[i].Columns = append(out[i].Columns, col)
		}
		// Count what each filter executed this column against pending.
		for i := range filters {
			cols := out[i].Columns
			for _, e := range cols[len(cols)-1].Entries {
				if e.Weight != 0 {
					pending--
				}
			}
		}
		// Shared ALC advance: slide past every fully-consumed step.
		adv := 0
		for head+adv < steps && stepClear(head+adv) {
			adv++
		}
		if adv == 0 {
			// Cannot happen: the head step is always consumed in-column.
			panic("sched: window failed to advance")
		}
		if pending == 0 {
			// Remaining steps (if any) are all ineffectual; the ALC skips
			// them outright.
			adv = steps - head
			if adv < 1 {
				adv = 1
			}
		}
		for i := range filters {
			out[i].Columns[len(out[i].Columns)-1].Advance = adv
		}
		head += adv
	}
	return out
}

// cand is a reachable promotion candidate for one lane.
type cand struct {
	off     Offset
	srcStep int
	srcLane int
}

// referenceBuildColumn fills entries for one filter at the given head,
// marking executed weights in done/stepPending. Returns the number of idle
// lanes. Every choice is fully deterministic: candidate order is the stable
// (srcStep, |Dl|, pattern-offset index) order, and lanes are visited in
// ascending index order — the exact tie-breaking contract the optimized
// kernel reproduces.
func referenceBuildColumn(f Filter, p Pattern, alg Algorithm, done []bool, stepPending []int, head int, entries []Entry) int {
	lanes, steps := f.Lanes, f.Steps
	take := func(lane, srcStep, srcLane, dt, dl int) {
		pos := srcStep*lanes + srcLane
		entries[lane] = Entry{Weight: f.W[pos], SrcStep: srcStep, SrcLane: srcLane, Dt: dt, Dl: dl}
		done[pos] = true
		stepPending[srcStep]--
	}

	assigned := make([]bool, lanes)
	// Pass 1: effectual weights at the head execute in place.
	for ln := 0; ln < lanes; ln++ {
		pos := head*lanes + ln
		if f.W[pos] != 0 && !done[pos] {
			take(ln, head, ln, 0, 0)
			assigned[ln] = true
		}
	}

	candidatesOf := func(lane int) []cand {
		var cs []cand
		for _, o := range p.Offsets {
			u := head + o.Dt
			if u >= steps {
				continue
			}
			v := ((lane+o.Dl)%lanes + lanes) % lanes
			pos := u*lanes + v
			if f.W[pos] != 0 && !done[pos] {
				cs = append(cs, cand{off: o, srcStep: u, srcLane: v})
			}
		}
		return cs
	}

	idle := 0
	switch alg {
	case Matching:
		// Maximum bipartite matching between free lanes and reachable
		// weights; candidates are ordered earliest-step-first so augmenting
		// favors draining the window head. Lanes augment in ascending index
		// order so the matching (not just its size) is deterministic.
		laneCands := make([][]cand, lanes)
		posOwner := map[int]int{} // weight position -> lane
		for ln := 0; ln < lanes; ln++ {
			if assigned[ln] {
				continue
			}
			cs := candidatesOf(ln)
			sort.SliceStable(cs, func(a, b int) bool { return better(cs[a], cs[b]) })
			laneCands[ln] = cs
		}
		laneMatch := make([]*cand, lanes)
		var try func(ln int, visited map[int]bool) bool
		try = func(ln int, visited map[int]bool) bool {
			for i := range laneCands[ln] {
				c := laneCands[ln][i]
				pos := c.srcStep*lanes + c.srcLane
				if visited[pos] {
					continue
				}
				visited[pos] = true
				owner, taken := posOwner[pos]
				if !taken || try(owner, visited) {
					posOwner[pos] = ln
					laneMatch[ln] = &laneCands[ln][i]
					return true
				}
			}
			return false
		}
		for ln := 0; ln < lanes; ln++ {
			if !assigned[ln] {
				try(ln, map[int]bool{})
			}
		}
		for ln := 0; ln < lanes; ln++ {
			c := laneMatch[ln]
			if c == nil || posOwner[c.srcStep*lanes+c.srcLane] != ln {
				continue // unmatched, or displaced by an augmenting path
			}
			take(ln, c.srcStep, c.srcLane, c.off.Dt, c.off.Dl)
			assigned[ln] = true
		}
		for ln := 0; ln < lanes; ln++ {
			if !assigned[ln] {
				idle++
			}
		}
	case GreedySimple:
		for ln := 0; ln < lanes; ln++ {
			if assigned[ln] {
				continue
			}
			cs := candidatesOf(ln)
			if len(cs) == 0 {
				idle++
				continue
			}
			c := cs[0]
			take(ln, c.srcStep, c.srcLane, c.off.Dt, c.off.Dl)
			assigned[ln] = true
		}
	default: // Algorithm1
		for {
			type openSlot struct {
				lane int
				n    int // flexibility: how many candidates can fill the slot
				best cand
			}
			var open []openSlot
			for ln := 0; ln < lanes; ln++ {
				if assigned[ln] {
					continue
				}
				if cs := candidatesOf(ln); len(cs) > 0 {
					b := cs[0]
					for _, c := range cs[1:] {
						if better(c, b) {
							b = c
						}
					}
					open = append(open, openSlot{lane: ln, n: len(cs), best: b})
				}
			}
			if len(open) == 0 {
				break
			}
			// Fill the least-flexible slot first (exclusive promotions when
			// the minimum is 1), per Algorithm 1 lines 13–24. Ties go to the
			// slot whose best candidate moves the least (in-lane lookahead
			// before lane-crossing lookaside), then to the lowest lane
			// (implicit: open is built in ascending lane order).
			slot := open[0]
			for _, o := range open[1:] {
				if o.n < slot.n || (o.n == slot.n && abs(o.best.off.Dl) < abs(slot.best.off.Dl)) {
					slot = o
				}
			}
			take(slot.lane, slot.best.srcStep, slot.best.srcLane, slot.best.off.Dt, slot.best.off.Dl)
			assigned[slot.lane] = true
		}
		for ln := 0; ln < lanes; ln++ {
			if !assigned[ln] {
				idle++
			}
		}
	}
	return idle
}

// better orders promotion candidates: drain the earliest dense step first
// (maximizing the ALC advance), then prefer the shortest lane displacement
// (pure lookahead first, leaving lookaside reach for other lanes).
func better(a, b cand) bool {
	if a.srcStep != b.srcStep {
		return a.srcStep < b.srcStep
	}
	return abs(a.off.Dl) < abs(b.off.Dl)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// scheduleInfinite realizes the X<inf,15> upper bound: arbitrary promotion
// compacts each filter to ⌈nnz/L⌉ columns; the group pads to the slowest
// filter.
func scheduleInfinite(filters []Filter) []*Schedule {
	lanes, steps := filters[0].Lanes, filters[0].Steps
	maxCols := 0
	packed := make([][]Entry, len(filters))
	for i, f := range filters {
		var es []Entry
		for st := 0; st < steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				if w := f.W[st*lanes+ln]; w != 0 {
					es = append(es, Entry{Weight: w, SrcStep: st, SrcLane: ln})
				}
			}
		}
		packed[i] = es
		if c := (len(es) + lanes - 1) / lanes; c > maxCols {
			maxCols = c
		}
	}
	out := make([]*Schedule, len(filters))
	for i, es := range packed {
		s := &Schedule{Lanes: lanes, DenseSteps: steps}
		for c := 0; c < maxCols; c++ {
			col := Column{Head: min(c, steps-1), Advance: 1, Entries: make([]Entry, lanes)}
			for ln := 0; ln < lanes; ln++ {
				k := c*lanes + ln
				if k < len(es) {
					e := es[k]
					e.Dt = e.SrcStep - col.Head
					e.Dl = e.SrcLane - ln
					col.Entries[ln] = e
				}
			}
			s.Columns = append(s.Columns, col)
		}
		if maxCols > 0 {
			s.Columns[maxCols-1].Advance = steps - s.Columns[maxCols-1].Head
			if s.Columns[maxCols-1].Advance < 1 {
				s.Columns[maxCols-1].Advance = 1
			}
		}
		out[i] = s
	}
	return out
}
