package sched

import (
	"fmt"
	"sort"
)

// Algorithm selects the promotion heuristic.
type Algorithm int

const (
	// Algorithm1 is the paper's scheduler (Section 4): at each window
	// position it counts, for every ineffectual slot, how many effectual
	// weights could be promoted into it, and fills the least-flexible
	// (ideally exclusive) slots first, avoiding the blocked-promotion
	// pathology of Figure 4.
	Algorithm1 Algorithm = iota
	// GreedySimple is the baseline scheduler of Figure 11b: lanes claim the
	// first reachable weight in fixed order, with no exclusivity analysis.
	GreedySimple
	// Matching fills each column with a maximum bipartite matching between
	// free lanes and reachable weights (Kuhn's augmenting paths) — the
	// per-column optimum, an upper bound on what Algorithm 1's
	// exclusive-first heuristic can achieve within a single column. It is
	// an extension beyond the paper, used to measure how close Algorithm 1
	// gets to column-optimal.
	Matching
)

func (a Algorithm) String() string {
	switch a {
	case GreedySimple:
		return "greedy"
	case Matching:
		return "matching"
	default:
		return "algorithm1"
	}
}

// ScheduleFilter schedules a single filter.
func ScheduleFilter(f Filter, p Pattern, alg Algorithm) *Schedule {
	return ScheduleGroup([]Filter{f}, p, alg)[0]
}

// ScheduleGroup jointly schedules the filters that share a tile's activation
// window (one per PE row). The ASU and its ALC advance are physically shared
// across rows (Section 5.2: all ASU slices operate in tandem), so the window
// slides only when every filter has consumed the head step; a filter that
// drains early idles until the group finishes — the inter-filter
// synchronization charged as lost time in Figure 9.
//
// All returned schedules have identical column counts, heads, and advances.
func ScheduleGroup(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	if len(filters) == 0 {
		return nil
	}
	lanes, steps := filters[0].Lanes, filters[0].Steps
	for _, f := range filters {
		if f.Lanes != lanes || f.Steps != steps {
			panic(fmt.Sprintf("sched: group filters disagree on geometry (%dx%d vs %dx%d)",
				f.Steps, f.Lanes, steps, lanes))
		}
	}
	if p.Infinite {
		return scheduleInfinite(filters)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}

	nf := len(filters)
	done := make([][]bool, nf)
	stepPending := make([][]int, nf)
	pending := 0
	for i, f := range filters {
		done[i] = make([]bool, steps*lanes)
		stepPending[i] = make([]int, steps)
		for st := 0; st < steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				if f.W[st*lanes+ln] != 0 {
					stepPending[i][st]++
					pending++
				}
			}
		}
	}
	out := make([]*Schedule, nf)
	for i := range out {
		out[i] = &Schedule{Lanes: lanes, DenseSteps: steps}
	}

	stepClear := func(st int) bool {
		for i := range filters {
			if stepPending[i][st] != 0 {
				return false
			}
		}
		return true
	}

	head := 0
	for head < steps && stepClear(head) {
		head++ // skip leading all-ineffectual steps (ALC pre-advance)
	}
	for pending > 0 {
		for i, f := range filters {
			col := Column{Head: head, Entries: make([]Entry, lanes)}
			buildColumn(f, p, alg, done[i], stepPending[i], head, col.Entries)
			out[i].Columns = append(out[i].Columns, col)
		}
		// Count what each filter executed this column against pending.
		for i := range filters {
			cols := out[i].Columns
			for _, e := range cols[len(cols)-1].Entries {
				if e.Weight != 0 {
					pending--
				}
			}
		}
		// Shared ALC advance: slide past every fully-consumed step.
		adv := 0
		for head+adv < steps && stepClear(head+adv) {
			adv++
		}
		if adv == 0 {
			// Cannot happen: the head step is always consumed in-column.
			panic("sched: window failed to advance")
		}
		if pending == 0 {
			// Remaining steps (if any) are all ineffectual; the ALC skips
			// them outright.
			adv = steps - head
			if adv < 1 {
				adv = 1
			}
		}
		for i := range filters {
			out[i].Columns[len(out[i].Columns)-1].Advance = adv
		}
		head += adv
	}
	return out
}

// cand is a reachable promotion candidate for one lane.
type cand struct {
	off     Offset
	srcStep int
	srcLane int
}

// buildColumn fills entries for one filter at the given head, marking
// executed weights in done/stepPending. Returns the number of idle lanes.
func buildColumn(f Filter, p Pattern, alg Algorithm, done []bool, stepPending []int, head int, entries []Entry) int {
	lanes, steps := f.Lanes, f.Steps
	take := func(lane, srcStep, srcLane, dt, dl int) {
		pos := srcStep*lanes + srcLane
		entries[lane] = Entry{Weight: f.W[pos], SrcStep: srcStep, SrcLane: srcLane, Dt: dt, Dl: dl}
		done[pos] = true
		stepPending[srcStep]--
	}

	assigned := make([]bool, lanes)
	// Pass 1: effectual weights at the head execute in place.
	for ln := 0; ln < lanes; ln++ {
		pos := head*lanes + ln
		if f.W[pos] != 0 && !done[pos] {
			take(ln, head, ln, 0, 0)
			assigned[ln] = true
		}
	}

	candidatesOf := func(lane int) []cand {
		var cs []cand
		for _, o := range p.Offsets {
			u := head + o.Dt
			if u >= steps {
				continue
			}
			v := ((lane+o.Dl)%lanes + lanes) % lanes
			pos := u*lanes + v
			if f.W[pos] != 0 && !done[pos] {
				cs = append(cs, cand{off: o, srcStep: u, srcLane: v})
			}
		}
		return cs
	}

	idle := 0
	switch alg {
	case Matching:
		// Maximum bipartite matching between free lanes and reachable
		// weights; candidates are ordered earliest-step-first so augmenting
		// favors draining the window head.
		laneCands := make(map[int][]cand)
		posOwner := map[int]int{} // weight position -> lane
		for ln := 0; ln < lanes; ln++ {
			if assigned[ln] {
				continue
			}
			cs := candidatesOf(ln)
			sort.Slice(cs, func(a, b int) bool { return better(cs[a], cs[b]) })
			laneCands[ln] = cs
		}
		laneMatch := map[int]cand{}
		var try func(ln int, visited map[int]bool) bool
		try = func(ln int, visited map[int]bool) bool {
			for _, c := range laneCands[ln] {
				pos := c.srcStep*lanes + c.srcLane
				if visited[pos] {
					continue
				}
				visited[pos] = true
				owner, taken := posOwner[pos]
				if !taken || try(owner, visited) {
					posOwner[pos] = ln
					laneMatch[ln] = c
					return true
				}
			}
			return false
		}
		for ln := range laneCands {
			try(ln, map[int]bool{})
		}
		for ln, c := range laneMatch {
			if posOwner[c.srcStep*lanes+c.srcLane] != ln {
				continue // displaced by an augmenting path
			}
			take(ln, c.srcStep, c.srcLane, c.off.Dt, c.off.Dl)
			assigned[ln] = true
		}
		for ln := 0; ln < lanes; ln++ {
			if !assigned[ln] {
				idle++
			}
		}
	case GreedySimple:
		for ln := 0; ln < lanes; ln++ {
			if assigned[ln] {
				continue
			}
			cs := candidatesOf(ln)
			if len(cs) == 0 {
				idle++
				continue
			}
			c := cs[0]
			take(ln, c.srcStep, c.srcLane, c.off.Dt, c.off.Dl)
			assigned[ln] = true
		}
	default: // Algorithm1
		for {
			type laneCands struct {
				lane int
				cs   []cand
			}
			var open []laneCands
			for ln := 0; ln < lanes; ln++ {
				if assigned[ln] {
					continue
				}
				if cs := candidatesOf(ln); len(cs) > 0 {
					open = append(open, laneCands{lane: ln, cs: cs})
				}
			}
			if len(open) == 0 {
				break
			}
			// Fill the least-flexible slot first (exclusive promotions when
			// the minimum is 1), per Algorithm 1 lines 13–24. Ties go to the
			// slot whose best candidate moves the least (in-lane lookahead
			// before lane-crossing lookaside), then to the lowest lane.
			bests := make([]cand, len(open))
			for i, oc := range open {
				b := oc.cs[0]
				for _, c := range oc.cs[1:] {
					if better(c, b) {
						b = c
					}
				}
				bests[i] = b
			}
			sort.SliceStable(open, func(a, b int) bool {
				if len(open[a].cs) != len(open[b].cs) {
					return len(open[a].cs) < len(open[b].cs)
				}
				if da, db := abs(bests[a].off.Dl), abs(bests[b].off.Dl); da != db {
					return da < db
				}
				return open[a].lane < open[b].lane
			})
			// Recompute the winning slot's best candidate after the sort
			// (bests was indexed pre-sort).
			slot := open[0]
			best := slot.cs[0]
			for _, c := range slot.cs[1:] {
				if better(c, best) {
					best = c
				}
			}
			take(slot.lane, best.srcStep, best.srcLane, best.off.Dt, best.off.Dl)
			assigned[slot.lane] = true
		}
		for ln := 0; ln < lanes; ln++ {
			if !assigned[ln] {
				idle++
			}
		}
	}
	return idle
}

// better orders promotion candidates: drain the earliest dense step first
// (maximizing the ALC advance), then prefer the shortest lane displacement
// (pure lookahead first, leaving lookaside reach for other lanes).
func better(a, b cand) bool {
	if a.srcStep != b.srcStep {
		return a.srcStep < b.srcStep
	}
	return abs(a.off.Dl) < abs(b.off.Dl)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// scheduleInfinite realizes the X<inf,15> upper bound: arbitrary promotion
// compacts each filter to ⌈nnz/L⌉ columns; the group pads to the slowest
// filter.
func scheduleInfinite(filters []Filter) []*Schedule {
	lanes, steps := filters[0].Lanes, filters[0].Steps
	maxCols := 0
	packed := make([][]Entry, len(filters))
	for i, f := range filters {
		var es []Entry
		for st := 0; st < steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				if w := f.W[st*lanes+ln]; w != 0 {
					es = append(es, Entry{Weight: w, SrcStep: st, SrcLane: ln})
				}
			}
		}
		packed[i] = es
		if c := (len(es) + lanes - 1) / lanes; c > maxCols {
			maxCols = c
		}
	}
	out := make([]*Schedule, len(filters))
	for i, es := range packed {
		s := &Schedule{Lanes: lanes, DenseSteps: steps}
		for c := 0; c < maxCols; c++ {
			col := Column{Head: min(c, steps-1), Advance: 1, Entries: make([]Entry, lanes)}
			for ln := 0; ln < lanes; ln++ {
				k := c*lanes + ln
				if k < len(es) {
					e := es[k]
					e.Dt = e.SrcStep - col.Head
					e.Dl = e.SrcLane - ln
					col.Entries[ln] = e
				}
			}
			s.Columns = append(s.Columns, col)
		}
		if maxCols > 0 {
			s.Columns[maxCols-1].Advance = steps - s.Columns[maxCols-1].Head
			if s.Columns[maxCols-1].Advance < 1 {
				s.Columns[maxCols-1].Advance = 1
			}
		}
		out[i] = s
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
