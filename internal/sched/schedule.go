package sched

import (
	"fmt"
)

// Filter is a single filter's dense schedule: Steps×Lanes weight codes in
// row-major order. Pad marks channel-padding slots (always-zero positions
// that exist only because the reduction is not a multiple of the lane
// count); it may be nil when no padding exists.
type Filter struct {
	Lanes, Steps int
	W            []int32
	Pad          []bool
}

// NewFilter wraps a weight matrix; it panics if the slice sizes disagree
// (construction bug, not a runtime condition).
func NewFilter(lanes, steps int, w []int32, pad []bool) Filter {
	if len(w) != lanes*steps {
		panic(fmt.Sprintf("sched: filter weights %d != %d steps × %d lanes", len(w), steps, lanes))
	}
	if pad != nil && len(pad) != lanes*steps {
		panic("sched: pad mask size mismatch")
	}
	return Filter{Lanes: lanes, Steps: steps, W: w, Pad: pad}
}

// At returns the weight at (step, lane).
func (f Filter) At(step, lane int) int32 { return f.W[step*f.Lanes+lane] }

// IsPad reports whether (step, lane) is a channel-padding slot.
func (f Filter) IsPad(step, lane int) bool {
	return f.Pad != nil && f.Pad[step*f.Lanes+lane]
}

// NNZ returns the number of effectual weights.
func (f Filter) NNZ() int {
	n := 0
	for _, v := range f.W {
		if v != 0 {
			n++
		}
	}
	return n
}

// Entry is one lane's work in one schedule column. A zero Weight means the
// lane idles that column.
type Entry struct {
	Weight int32
	// SrcStep, SrcLane locate the weight in the dense schedule; the paired
	// activation at runtime is the one for that dense position.
	SrcStep, SrcLane int
	// Dt, Dl record the promotion offset used ((0,0) for in-place
	// execution); they index the lane's activation multiplexer.
	Dt, Dl int
}

// Column is one schedule step emitted by the scheduler: what each lane
// multiplies, plus the ALC window advance that follows.
type Column struct {
	// Head is the dense step at the lookahead window's base when the column
	// issues.
	Head int
	// Advance is the ALC field: how many dense steps the window slides
	// after the column (≥ 1; > 1 skips fully-consumed or all-zero steps).
	Advance int
	Entries []Entry
}

// Schedule is the scheduler's output for one filter (or one filter of a
// jointly-scheduled group).
type Schedule struct {
	Lanes      int
	DenseSteps int
	Columns    []Column
}

// Len returns the schedule length in columns — the front-end execution time
// in the unit of "dense schedule columns".
func (s *Schedule) Len() int { return len(s.Columns) }

// SlotKind classifies one (column, lane) work slot for the Figure 9
// front-end breakdown.
type SlotKind int

const (
	// SlotUnpromoted: an effectual weight executed at its dense position.
	SlotUnpromoted SlotKind = iota
	// SlotLookahead: an effectual weight promoted in time only.
	SlotLookahead
	// SlotLookaside: an effectual weight promoted across lanes.
	SlotLookaside
	// SlotZero: an idle lane over a sparsity zero the scheduler could not
	// fill ("Zero Reads" in Figure 9).
	SlotZero
	// SlotPad: an idle lane over a channel-padding position.
	SlotPad
)

func (k SlotKind) String() string {
	switch k {
	case SlotUnpromoted:
		return "unpromoted"
	case SlotLookahead:
		return "lookahead"
	case SlotLookaside:
		return "lookaside"
	case SlotZero:
		return "zero"
	case SlotPad:
		return "padding"
	default:
		return fmt.Sprintf("SlotKind(%d)", int(k))
	}
}

// Stats is the front-end slot census of a schedule.
type Stats struct {
	Columns    int
	Slots      [5]int64 // indexed by SlotKind
	DenseSteps int
}

// Stats classifies every slot of the schedule against the filter.
func (s *Schedule) Stats(f Filter) Stats {
	st := Stats{Columns: s.Len(), DenseSteps: s.DenseSteps}
	for _, col := range s.Columns {
		for lane, e := range col.Entries {
			switch {
			case e.Weight == 0:
				if f.IsPad(col.Head, lane) {
					st.Slots[SlotPad]++
				} else {
					st.Slots[SlotZero]++
				}
			case e.Dt == 0 && e.Dl == 0:
				st.Slots[SlotUnpromoted]++
			case e.Dl == 0:
				st.Slots[SlotLookahead]++
			default:
				st.Slots[SlotLookaside]++
			}
		}
	}
	return st
}

// Verify checks every invariant the hardware depends on (DESIGN.md §5):
// each effectual weight scheduled exactly once; every promotion is an edge
// of the pattern; promoted weights stay inside the lookahead window; lanes
// hold at most one weight per column; the ALC advances monotonically and
// never abandons unexecuted weights; column count never exceeds dense steps.
func Verify(f Filter, p Pattern, s *Schedule) error {
	if s.Lanes != f.Lanes || s.DenseSteps != f.Steps {
		return fmt.Errorf("sched: verify: geometry mismatch")
	}
	if s.Len() > f.Steps && f.Steps > 0 {
		return fmt.Errorf("sched: verify: %d columns exceed %d dense steps", s.Len(), f.Steps)
	}
	edge := map[Offset]bool{}
	for _, o := range p.Offsets {
		edge[o] = true
	}
	seen := make(map[int]bool, f.NNZ())
	head := 0
	for ci, col := range s.Columns {
		if col.Head < head {
			return fmt.Errorf("sched: verify: column %d head %d moved backwards (prev %d)", ci, col.Head, head)
		}
		head = col.Head
		if col.Advance < 1 {
			return fmt.Errorf("sched: verify: column %d advance %d < 1", ci, col.Advance)
		}
		if len(col.Entries) != f.Lanes {
			return fmt.Errorf("sched: verify: column %d has %d entries", ci, len(col.Entries))
		}
		for lane, e := range col.Entries {
			if e.Weight == 0 {
				continue
			}
			pos := e.SrcStep*f.Lanes + e.SrcLane
			if f.W[pos] != e.Weight {
				return fmt.Errorf("sched: verify: column %d lane %d claims weight %d at (%d,%d) but dense holds %d",
					ci, lane, e.Weight, e.SrcStep, e.SrcLane, f.W[pos])
			}
			if seen[pos] {
				return fmt.Errorf("sched: verify: weight at (%d,%d) scheduled twice", e.SrcStep, e.SrcLane)
			}
			seen[pos] = true
			if p.Infinite {
				continue
			}
			if e.Dt == 0 && e.Dl == 0 {
				if e.SrcStep != col.Head || e.SrcLane != lane {
					return fmt.Errorf("sched: verify: stay entry at column %d lane %d references (%d,%d)",
						ci, lane, e.SrcStep, e.SrcLane)
				}
				continue
			}
			if !edge[Offset{Dt: e.Dt, Dl: e.Dl}] {
				return fmt.Errorf("sched: verify: promotion (%d,%d) not in pattern %s", e.Dt, e.Dl, p.Name)
			}
			if e.SrcStep != col.Head+e.Dt {
				return fmt.Errorf("sched: verify: entry dt %d inconsistent with src step %d at head %d",
					e.Dt, e.SrcStep, col.Head)
			}
			if want := ((lane+e.Dl)%f.Lanes + f.Lanes) % f.Lanes; e.SrcLane != want {
				return fmt.Errorf("sched: verify: entry dl %d inconsistent with src lane %d (lane %d)",
					e.Dl, e.SrcLane, lane)
			}
			if e.Dt > p.H {
				return fmt.Errorf("sched: verify: promotion depth %d exceeds window %d", e.Dt, p.H)
			}
		}
	}
	// Completeness: every effectual weight executed.
	for step := 0; step < f.Steps; step++ {
		for lane := 0; lane < f.Lanes; lane++ {
			pos := step*f.Lanes + lane
			if f.W[pos] != 0 && !seen[pos] {
				return fmt.Errorf("sched: verify: weight at (%d,%d) never scheduled", step, lane)
			}
		}
	}
	return nil
}
