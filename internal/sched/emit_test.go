// External test package: the emitter delegates to internal/bench, which
// imports sched — an internal test file would close an import cycle.
package sched_test

import (
	"os"
	"testing"

	"bittactical/internal/bench"
)

// TestEmitBenchSched regenerates BENCH_sched.json at the repo root
// through the shared internal/bench sched suite: per (pattern, algorithm)
// the arena-mode kernel, the pooled fresh-copy path, and the reference
// scheduler. Gated behind TCL_BENCH_SCHED=1 (`make bench-sched`);
// TCL_BENCH_FORCE=1 overrides the contended-baseline refusal.
func TestEmitBenchSched(t *testing.T) {
	if os.Getenv("TCL_BENCH_SCHED") == "" {
		t.Skip("set TCL_BENCH_SCHED=1 to regenerate BENCH_sched.json")
	}
	f, err := bench.RunSched(t.Logf, bench.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteBaseline("../../BENCH_sched.json", f, os.Getenv("TCL_BENCH_FORCE") != ""); err != nil {
		t.Fatal(err)
	}
}
