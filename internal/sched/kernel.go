package sched

import (
	"fmt"
	mathbits "math/bits"
)

// maxKernelOffsets bounds the optimized kernel's per-lane candidate bitset:
// one uint64 bit per pattern offset. Every pattern in the paper's design
// space has at most 15 offsets; larger hand-built patterns fall back to the
// reference scheduler.
const maxKernelOffsets = 64

// Scheduler is a reusable scheduling kernel. It owns every piece of scratch
// the scheduler needs — per-filter done/pending state, per-lane candidate
// bitsets, the matching algorithm's owner/visited buffers, and the output
// arena — so that steady-state scheduling performs zero heap allocations.
//
// Schedules returned by (*Scheduler).ScheduleGroup live in the scheduler's
// arena: they are valid only until the next call on the same Scheduler, and
// must not be retained or mutated. Callers that need persistent schedules
// (the schedule cache, anything that outlives one group) use the package
// ScheduleGroup/ScheduleFilter functions, which copy the arena into exactly
// sized fresh allocations.
//
// A Scheduler is not safe for concurrent use; use one per goroutine (the
// package-level entry points draw from a sync.Pool).
type Scheduler struct {
	// Pattern plan, rebuilt per group (allocation-free once grown):
	offs  []Offset  // the pattern's offsets, bit i of a candidate set == offs[i]
	order []int16   // offset indices in stable (Dt, |Dl|, index) visit order
	byDt  [][]int16 // byDt[dt]: offset indices with that lookahead depth
	dtCap int       // len(byDt): 1 + the largest usable Dt this group

	// Per-group scratch:
	done        []bool  // nf × steps × lanes: weight executed
	stepPending []int32 // nf × steps: effectual weights left per dense step
	cand        []uint64
	assigned    []bool

	// Matching scratch (window-position space: dt × lanes):
	owner     []int32 // wpos -> owning lane during augmentation, -1 free
	visited   []uint64
	epoch     uint64
	matchCand []int16 // lane -> matched offset index, -1 unmatched

	// Output arena:
	entArena []Entry
	colArena []Column
	schArena []Schedule
	ptrArena []*Schedule
}

// NewScheduler returns an empty kernel; buffers grow on first use and are
// retained across calls.
func NewScheduler() *Scheduler { return &Scheduler{} }

// ScheduleGroup jointly schedules the filter group into the scheduler's
// arena. Semantics are identical to the package-level ScheduleGroup — the
// differential fuzz suite asserts bit-identical output against the reference
// scheduler — but the returned schedules are only valid until the next call
// on this Scheduler. Patterns beyond the kernel's bitset width (> 64
// offsets) take the allocating reference path; the infinite upper bound
// runs arena-backed like the rest.
func (s *Scheduler) ScheduleGroup(filters []Filter, p Pattern, alg Algorithm) []*Schedule {
	return s.scheduleGroup(filters, p, alg, false)
}

func (s *Scheduler) scheduleGroup(filters []Filter, p Pattern, alg Algorithm, fresh bool) []*Schedule {
	nf, lanes, steps, cols, fallback := s.runGroup(filters, p, alg)
	if fallback != nil || nf == 0 {
		return fallback
	}
	return s.assemble(nf, lanes, steps, cols, fresh)
}

// runGroup validates the group, runs it into the scheduler's arena, and
// returns the geometry plus column count the assemblers need. Patterns
// beyond the kernel's bitset width cannot use the arena; for those the
// reference scheduler's freshly allocated result comes back as fallback
// and the arena is untouched.
func (s *Scheduler) runGroup(filters []Filter, p Pattern, alg Algorithm) (nf, lanes, steps, cols int, fallback []*Schedule) {
	nf = len(filters)
	if nf == 0 {
		return
	}
	lanes, steps = filters[0].Lanes, filters[0].Steps
	for _, f := range filters {
		if f.Lanes != lanes || f.Steps != steps {
			panic(fmt.Sprintf("sched: group filters disagree on geometry (%dx%d vs %dx%d)",
				f.Steps, f.Lanes, steps, lanes))
		}
	}
	if p.Infinite {
		cols = s.runInfinite(filters, lanes, steps)
		return
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if len(p.Offsets) > maxKernelOffsets {
		fallback = scheduleGroupReference(filters, p, alg)
		return
	}
	cols = s.runKernel(filters, p, alg, lanes, steps)
	return
}

// runInfinite realizes the X<inf,15> upper bound in the arena with the
// same column layout as runKernel: entries of filter i, column c at
// entArena[(i*steps+c)*lanes]. Semantics match scheduleInfinite (the
// reference, still used by scheduleGroupReference) bit for bit —
// arbitrary promotion compacts each filter to ⌈nnz/L⌉ columns and the
// group pads to the slowest filter.
func (s *Scheduler) runInfinite(filters []Filter, lanes, steps int) int {
	nf := len(filters)
	maxCols := 0
	for _, f := range filters {
		nnz := 0
		for _, w := range f.W {
			if w != 0 {
				nnz++
			}
		}
		if c := (nnz + lanes - 1) / lanes; c > maxCols {
			maxCols = c
		}
	}
	s.entArena = growSlice(s.entArena, nf*steps*lanes)
	s.colArena = growSlice(s.colArena, nf*steps)
	for i, f := range filters {
		ents := s.entArena[i*steps*lanes : i*steps*lanes+maxCols*lanes]
		for j := range ents {
			ents[j] = Entry{}
		}
		k := 0
		for st := 0; st < steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				w := f.W[st*lanes+ln]
				if w == 0 {
					continue
				}
				c, dl := k/lanes, k%lanes
				head := min(c, steps-1)
				ents[c*lanes+dl] = Entry{Weight: w, SrcStep: st, SrcLane: ln, Dt: st - head, Dl: ln - dl}
				k++
			}
		}
		for c := 0; c < maxCols; c++ {
			head := min(c, steps-1)
			adv := 1
			if c == maxCols-1 {
				adv = steps - head
				if adv < 1 {
					adv = 1
				}
			}
			s.colArena[i*steps+c] = Column{Head: head, Advance: adv,
				Entries: s.entArena[(i*steps+c)*lanes : (i*steps+c+1)*lanes]}
		}
	}
	return maxCols
}

// runKernel is the optimized scheduling kernel proper: it fills the
// arena and returns the shared column count.
func (s *Scheduler) runKernel(filters []Filter, p Pattern, alg Algorithm, lanes, steps int) int {
	nf := len(filters)
	s.plan(p, steps)

	// Per-filter execution state, flattened: done[i*steps*lanes + pos],
	// stepPending[i*steps + st].
	s.done = growSlice(s.done, nf*steps*lanes)
	for i := range s.done {
		s.done[i] = false
	}
	s.stepPending = growSlice(s.stepPending, nf*steps)
	pending := 0
	for i, f := range filters {
		sp := s.stepPending[i*steps : (i+1)*steps]
		for st := 0; st < steps; st++ {
			n := int32(0)
			for ln := 0; ln < lanes; ln++ {
				if f.W[st*lanes+ln] != 0 {
					n++
				}
			}
			sp[st] = n
			pending += int(n)
		}
	}
	s.assigned = growSlice(s.assigned, lanes)
	s.cand = growSlice(s.cand, lanes)
	s.matchCand = growSlice(s.matchCand, lanes)
	s.owner = growSlice(s.owner, s.dtCap*lanes)
	s.visited = growSlice(s.visited, s.dtCap*lanes)

	// Output arena: a schedule never exceeds the dense step count, so
	// nf × steps columns is the exact worst case.
	s.entArena = growSlice(s.entArena, nf*steps*lanes)
	s.colArena = growSlice(s.colArena, nf*steps)

	stepClear := func(st int) bool {
		for i := 0; i < nf; i++ {
			if s.stepPending[i*steps+st] != 0 {
				return false
			}
		}
		return true
	}

	head := 0
	for head < steps && stepClear(head) {
		head++ // skip leading all-ineffectual steps (ALC pre-advance)
	}
	cols := 0
	for pending > 0 {
		for i, f := range filters {
			entries := s.entArena[(i*steps+cols)*lanes : (i*steps+cols+1)*lanes]
			for j := range entries {
				entries[j] = Entry{}
			}
			pending -= s.buildColumn(f, alg,
				s.done[i*steps*lanes:(i+1)*steps*lanes],
				s.stepPending[i*steps:(i+1)*steps],
				head, entries)
			s.colArena[i*steps+cols] = Column{Head: head, Entries: entries}
		}
		// Shared ALC advance: slide past every fully-consumed step.
		adv := 0
		for head+adv < steps && stepClear(head+adv) {
			adv++
		}
		if adv == 0 {
			// Cannot happen: the head step is always consumed in-column.
			panic("sched: window failed to advance")
		}
		if pending == 0 {
			// Remaining steps (if any) are all ineffectual; the ALC skips
			// them outright.
			adv = steps - head
			if adv < 1 {
				adv = 1
			}
		}
		for i := 0; i < nf; i++ {
			s.colArena[i*steps+cols].Advance = adv
		}
		head += adv
		cols++
	}
	return cols
}

// assemble materializes the schedules over the column arena — in place for
// arena mode, into exactly sized fresh allocations for the persistent mode.
func (s *Scheduler) assemble(nf, lanes, steps, cols int, fresh bool) []*Schedule {
	if fresh {
		ents := make([]Entry, nf*cols*lanes)
		fcols := make([]Column, nf*cols)
		scheds := make([]Schedule, nf)
		out := make([]*Schedule, nf)
		s.assembleInto(ents, fcols, scheds, out, nf, lanes, steps, cols)
		return out
	}
	s.schArena = growSlice(s.schArena, nf)
	s.ptrArena = growSlice(s.ptrArena, nf)
	for i := 0; i < nf; i++ {
		s.schArena[i] = Schedule{Lanes: lanes, DenseSteps: steps}
		if cols > 0 {
			s.schArena[i].Columns = s.colArena[i*steps : i*steps+cols]
		}
		s.ptrArena[i] = &s.schArena[i]
	}
	return s.ptrArena[:nf]
}

// assembleInto copies the arena group into caller-provided storage (a
// fresh allocation or a cache slab carve). The arena keeps filter i's
// entries contiguous across columns — [(i*steps)*lanes, (i*steps+cols)*lanes)
// — so the bulk of the copy is a single memmove per filter rather than
// one per column; at full-zoo sweep scale the per-column variant was the
// single largest memmove source in the profile.
func (s *Scheduler) assembleInto(ents []Entry, fcols []Column, scheds []Schedule, out []*Schedule, nf, lanes, steps, cols int) {
	for i := 0; i < nf; i++ {
		copy(ents[i*cols*lanes:(i+1)*cols*lanes], s.entArena[i*steps*lanes:(i*steps+cols)*lanes])
		for c := 0; c < cols; c++ {
			src := &s.colArena[i*steps+c]
			fcols[i*cols+c] = Column{Head: src.Head, Advance: src.Advance,
				Entries: ents[(i*cols+c)*lanes : (i*cols+c+1)*lanes : (i*cols+c+1)*lanes]}
		}
		scheds[i] = Schedule{Lanes: lanes, DenseSteps: steps}
		if cols > 0 {
			scheds[i].Columns = fcols[i*cols : (i+1)*cols]
		}
		out[i] = &scheds[i]
	}
}

// plan rebuilds the pattern plan: the candidate visit order (stable
// (Dt, |Dl|, index), matching the reference's sorted candidate lists) and
// the per-depth offset index used for incremental candidate invalidation.
// Offsets whose depth can never fit the filter (Dt > steps-1) keep a bit
// position but never enter a candidate set.
func (s *Scheduler) plan(p Pattern, steps int) {
	k := len(p.Offsets)
	s.offs = p.Offsets
	s.order = growSlice(s.order, k)
	for i := range s.order[:k] {
		s.order[i] = int16(i)
	}
	// Insertion sort: k ≤ 64, stable, allocation-free.
	ord := s.order[:k]
	for i := 1; i < k; i++ {
		for j := i; j > 0; j-- {
			a, b := p.Offsets[ord[j]], p.Offsets[ord[j-1]]
			if a.Dt < b.Dt || (a.Dt == b.Dt && abs(a.Dl) < abs(b.Dl)) {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			} else {
				break
			}
		}
	}
	maxDt := 0
	for _, o := range p.Offsets {
		if o.Dt <= steps-1 && o.Dt > maxDt {
			maxDt = o.Dt
		}
	}
	s.dtCap = maxDt + 1
	if cap(s.byDt) < s.dtCap {
		s.byDt = make([][]int16, s.dtCap)
	}
	s.byDt = s.byDt[:s.dtCap]
	for dt := range s.byDt {
		s.byDt[dt] = s.byDt[dt][:0]
	}
	for i, o := range p.Offsets {
		if o.Dt < s.dtCap {
			s.byDt[o.Dt] = append(s.byDt[o.Dt], int16(i))
		}
	}
}

// rebuildCands recomputes every lane's candidate bitset for the current
// window head: bit i is set when offset i reaches an effectual, unexecuted
// weight. Called once per (filter, column); takes within the column keep the
// sets current incrementally via consume.
func (s *Scheduler) rebuildCands(f Filter, done []bool, head int) {
	lanes, steps := f.Lanes, f.Steps
	cand := s.cand[:lanes]
	for ln := range cand {
		cand[ln] = 0
	}
	for i, o := range s.offs {
		u := head + o.Dt
		if u >= steps {
			continue
		}
		row := u * lanes
		bit := uint64(1) << uint(i)
		v := o.Dl % lanes
		if v < 0 {
			v += lanes
		}
		// v tracks (ln + Dl) mod lanes as ln walks 0..lanes-1.
		for ln := 0; ln < lanes; ln++ {
			pos := row + v
			if f.W[pos] != 0 && !done[pos] {
				cand[ln] |= bit
			}
			v++
			if v == lanes {
				v = 0
			}
		}
	}
}

// consume invalidates the just-executed weight at (u, v) in every lane's
// candidate set: each offset of depth u-head that reaches (u, v) does so
// from exactly one lane.
func (s *Scheduler) consume(head, lanes, u, v int) {
	dt := u - head
	if dt < 1 || dt >= s.dtCap {
		return
	}
	for _, i := range s.byDt[dt] {
		ln := (v - s.offs[i].Dl) % lanes
		if ln < 0 {
			ln += lanes
		}
		s.cand[ln] &^= uint64(1) << uint(i)
	}
}

// buildColumn is the optimized kernel for one (filter, column): identical
// decisions to referenceBuildColumn, but candidates live in per-lane bitsets
// maintained incrementally, and the matching algorithm runs on flat arrays
// with an epoch-stamped visited buffer. Returns the number of weights
// executed.
func (s *Scheduler) buildColumn(f Filter, alg Algorithm, done []bool, stepPending []int32, head int, entries []Entry) int {
	lanes := f.Lanes
	executed := 0
	take := func(lane, srcStep, srcLane, dt, dl int) {
		pos := srcStep*lanes + srcLane
		entries[lane] = Entry{Weight: f.W[pos], SrcStep: srcStep, SrcLane: srcLane, Dt: dt, Dl: dl}
		done[pos] = true
		stepPending[srcStep]--
		executed++
		s.consume(head, lanes, srcStep, srcLane)
	}
	assigned := s.assigned[:lanes]
	// Pass 1: effectual weights at the head execute in place. Head positions
	// (dt = 0) are never promotion candidates, so the candidate rebuild can
	// follow the whole pass.
	for ln := 0; ln < lanes; ln++ {
		pos := head*lanes + ln
		assigned[ln] = f.W[pos] != 0 && !done[pos]
		if assigned[ln] {
			take(ln, head, ln, 0, 0)
		}
	}
	s.rebuildCands(f, done, head)

	switch alg {
	case Matching:
		s.matchColumn(head, lanes, take)
	case GreedySimple:
		// Lanes claim the first reachable weight in pattern-offset order;
		// consume keeps later lanes' sets current.
		for ln := 0; ln < lanes; ln++ {
			if assigned[ln] || s.cand[ln] == 0 {
				continue
			}
			i := mathbits.TrailingZeros64(s.cand[ln])
			o := s.offs[i]
			u, v := head+o.Dt, wrapLane(ln+o.Dl, lanes)
			take(ln, u, v, o.Dt, o.Dl)
			assigned[ln] = true
		}
	default: // Algorithm1
		for {
			// Select the least-flexible open slot: fewest candidates, then
			// smallest |Dl| of the best candidate, then lowest lane.
			bestLane, bestN, bestDl, bestOff := -1, 0, 0, -1
			for ln := 0; ln < lanes; ln++ {
				if assigned[ln] || s.cand[ln] == 0 {
					continue
				}
				n := mathbits.OnesCount64(s.cand[ln])
				ci := s.firstCandidate(ln)
				dl := abs(s.offs[ci].Dl)
				if bestLane < 0 || n < bestN || (n == bestN && dl < bestDl) {
					bestLane, bestN, bestDl, bestOff = ln, n, dl, ci
				}
			}
			if bestLane < 0 {
				break
			}
			o := s.offs[bestOff]
			u, v := head+o.Dt, wrapLane(bestLane+o.Dl, lanes)
			take(bestLane, u, v, o.Dt, o.Dl)
			assigned[bestLane] = true
		}
	}
	return executed
}

// firstCandidate returns the lane's best candidate offset index: the first
// set bit in (Dt, |Dl|, index) order — the same ordering the reference's
// better() scan selects.
func (s *Scheduler) firstCandidate(ln int) int {
	c := s.cand[ln]
	for _, i := range s.order[:len(s.offs)] {
		if c&(uint64(1)<<uint(i)) != 0 {
			return int(i)
		}
	}
	return -1
}

// matchColumn fills the column with a maximum bipartite matching (Kuhn's
// augmenting paths) between free lanes and reachable weights. Weight
// positions index a compact (dt, lane) window space; owner[] is reset per
// column, visited[] is epoch-stamped per augmentation root.
func (s *Scheduler) matchColumn(head, lanes int, take func(lane, srcStep, srcLane, dt, dl int)) {
	assigned := s.assigned[:lanes]
	nw := s.dtCap * lanes
	owner := s.owner[:nw]
	for i := range owner {
		owner[i] = -1
	}
	matchCand := s.matchCand[:lanes]
	for ln := range matchCand {
		matchCand[ln] = -1
	}
	for ln := 0; ln < lanes; ln++ {
		if !assigned[ln] {
			s.epoch++
			s.augment(ln, lanes)
		}
	}
	for ln := 0; ln < lanes; ln++ {
		ci := matchCand[ln]
		if ci < 0 {
			continue
		}
		o := s.offs[ci]
		u, v := head+o.Dt, wrapLane(ln+o.Dl, lanes)
		if owner[o.Dt*lanes+v] != int32(ln) {
			continue // displaced by an augmenting path
		}
		take(ln, u, v, o.Dt, o.Dl)
		assigned[ln] = true
	}
}

// augment tries to match lane ln, recursively displacing owners along an
// augmenting path. Candidates are visited in the plan's sorted order so the
// search explores exactly the reference's candidate sequence.
func (s *Scheduler) augment(ln, lanes int) bool {
	c := s.cand[ln]
	for _, oi := range s.order[:len(s.offs)] {
		if c&(uint64(1)<<uint(oi)) == 0 {
			continue
		}
		o := s.offs[oi]
		v := wrapLane(ln+o.Dl, lanes)
		wpos := o.Dt*lanes + v
		if s.visited[wpos] == s.epoch {
			continue
		}
		s.visited[wpos] = s.epoch
		own := s.owner[wpos]
		if own < 0 || s.augment(int(own), lanes) {
			s.owner[wpos] = int32(ln)
			s.matchCand[ln] = oi
			return true
		}
	}
	return false
}

func wrapLane(v, lanes int) int {
	v %= lanes
	if v < 0 {
		v += lanes
	}
	return v
}

// growSlice returns sl with length n, reusing capacity when possible. The
// reused region may hold stale contents: callers either fully initialize it
// (done is cleared, stepPending/arenas overwritten) or tolerate staleness by
// construction (epoch-stamped buffers rely on monotone epochs).
func growSlice[T any](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}
