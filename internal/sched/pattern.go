// Package sched implements Bit-Tactical's software scheduling middleware —
// the paper's primary contribution. Given a filter's dense schedule (weights
// laid out over L lanes × T steps), the scheduler statically plans weight
// "promotions" that skip ineffectual (zero) weight slots, constrained by a
// hardware connectivity pattern:
//
//   - lookahead: a weight moves earlier in time within its own lane
//     (offset (dt, 0), 1 ≤ dt ≤ h);
//   - lookaside: a weight moves to another lane of the same adder tree
//     (offset (dt, dl), dl ≠ 0).
//
// The hardware realizes a promotion with an (h+d+1)-input activation
// multiplexer per lane (Section 3); the scheduler emits the per-weight mux
// select and the per-column activation-lane-control (ALC) window advance.
package sched

import (
	"fmt"
	"sort"
)

// Offset is one promotion edge of the connectivity pattern: a weight at
// dense-schedule position (t+Dt, lane+Dl mod L) may execute on `lane` at
// window head t. Dt ≥ 1 always; Dl == 0 is lookahead, Dl != 0 lookaside.
type Offset struct {
	Dt int // steps ahead in the dense schedule
	Dl int // lane displacement (wraps mod L)
}

// Pattern is a front-end connectivity configuration.
type Pattern struct {
	// Name is the paper's label, e.g. "T8<2,5>".
	Name string
	// H is the lookahead window depth: the ASU buffers steps [t, t+H].
	H int
	// D is the number of lookaside edges (for labeling; == count of Dl!=0).
	D int
	// Offsets are the promotion edges, excluding the implicit (0,0) "stay".
	Offsets []Offset
	// Infinite marks the impractical X<inf,15> upper bound: any weight may
	// move anywhere within the filter.
	Infinite bool
}

// MuxInputs returns the per-lane activation multiplexer width the pattern
// needs: one input per offset plus the dense "stay" input.
func (p Pattern) MuxInputs() int { return len(p.Offsets) + 1 }

// LookaheadOnly returns a copy of the pattern with all lookaside edges
// removed (the bottom segments of Figure 8a).
func (p Pattern) LookaheadOnly() Pattern {
	q := Pattern{Name: p.Name + "-la", H: p.H, Infinite: p.Infinite}
	for _, o := range p.Offsets {
		if o.Dl == 0 {
			q.Offsets = append(q.Offsets, o)
		}
	}
	return q
}

// Validate checks structural sanity.
func (p Pattern) Validate() error {
	if p.Infinite {
		return nil
	}
	seen := map[Offset]bool{}
	for _, o := range p.Offsets {
		if o.Dt < 1 {
			return fmt.Errorf("sched: %s: offset %+v has Dt < 1 (promotions move earlier only)", p.Name, o)
		}
		if o.Dt > p.H {
			return fmt.Errorf("sched: %s: offset %+v exceeds lookahead depth %d", p.Name, o, p.H)
		}
		if seen[o] {
			return fmt.Errorf("sched: %s: duplicate offset %+v", p.Name, o)
		}
		seen[o] = true
	}
	return nil
}

// L returns the contiguous pattern L<h,d> of Figure 3a: lookahead
// (1,0)…(h,0) plus lookaside to the d neighboring lanes one step ahead.
// The lane direction follows the paper's Figure 2, where lane 2 steals
// w¹₁ from lane 1: a lane reaches the d lanes below it (wrapping mod L).
func L(h, d int) Pattern {
	p := Pattern{Name: fmt.Sprintf("L%d<%d,%d>", h+d+1, h, d), H: h, D: d}
	for k := 1; k <= h; k++ {
		p.Offsets = append(p.Offsets, Offset{Dt: k})
	}
	for j := 1; j <= d; j++ {
		p.Offsets = append(p.Offsets, Offset{Dt: 1, Dl: -j})
	}
	return p
}

// T returns the sparse trident pattern T<h,d> of Figure 3b: lookahead
// (1,0)…(h,0) plus d lookaside prongs with alternating sign and widening
// stride, spread over the lookahead depth so neighboring lanes' search
// windows overlap less (the property Section 3.1 credits for the Trident's
// edge over the L shape). The exact prong geometry is shown only pictorially
// in the paper; DESIGN.md §7 documents this reconstruction.
func T(h, d int) Pattern {
	p := Pattern{Name: fmt.Sprintf("T%d<%d,%d>", h+d+1, h, d), H: h, D: d}
	for k := 1; k <= h; k++ {
		p.Offsets = append(p.Offsets, Offset{Dt: k})
	}
	for i := 0; i < d; i++ {
		mag := 1 + (i/2)*2 // 1,1,3,3,5,5,…
		dl := mag
		if i%2 == 1 {
			dl = -mag
		}
		dt := 1 + i/2
		if dt > h {
			dt = h
		}
		p.Offsets = append(p.Offsets, Offset{Dt: dt, Dl: dl})
	}
	return p
}

// X returns the unrestricted upper-bound pattern X<inf,15>.
func X() Pattern {
	return Pattern{Name: "X<inf,15>", H: 1 << 30, D: 15, Infinite: true}
}

// ByName resolves the configuration labels used throughout the evaluation.
func ByName(name string) (Pattern, error) {
	known := map[string]func() Pattern{
		"L4<1,2>": func() Pattern { return L(1, 2) },
		"L8<1,6>": func() Pattern { return L(1, 6) },
		"L8<2,5>": func() Pattern { return L(2, 5) },
		"L8<3,4>": func() Pattern { return L(3, 4) },
		"L8<4,3>": func() Pattern { return L(4, 3) },
		"L8<5,2>": func() Pattern { return L(5, 2) },
		"L8<6,1>": func() Pattern { return L(6, 1) },
		"T8<2,5>": func() Pattern { return T(2, 5) },
		"T8<3,4>": func() Pattern { return T(3, 4) },
		"T8<1,6>": func() Pattern { return T(1, 6) },
		// T4<2,2> (Section 6.3) is the 4-input-mux trident: window depth 2
		// with a single deep lookahead prong and two shallow side prongs.
		"T4<2,2>": func() Pattern {
			return Pattern{Name: "T4<2,2>", H: 2, D: 2,
				Offsets: []Offset{{Dt: 2}, {Dt: 1, Dl: 1}, {Dt: 1, Dl: -1}}}
		},
		"X<inf,15>": X,
	}
	if f, ok := known[name]; ok {
		return f(), nil
	}
	return Pattern{}, fmt.Errorf("sched: unknown pattern %q", name)
}

// KnownPatternNames returns the resolvable labels, sorted.
func KnownPatternNames() []string {
	names := []string{
		"L4<1,2>", "L8<1,6>", "L8<2,5>", "L8<3,4>", "L8<4,3>", "L8<5,2>",
		"L8<6,1>", "T8<2,5>", "T8<3,4>", "T8<1,6>", "T4<2,2>", "X<inf,15>",
	}
	sort.Strings(names)
	return names
}
