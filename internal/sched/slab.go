package sched

// schedSlab is the stripe-owned arena cached schedules are carved from.
// Filling a cache entry used to cost four exactly sized heap allocations
// per group (entries, columns, schedules, pointers); across a full-zoo
// figure sweep that is tens of thousands of allocations per run, all
// with identical lifetime — they live exactly as long as the cache map.
// The slab makes that lifetime explicit: entries are carved out of large
// chunks that grow geometrically-bounded (a new chunk only when the
// current one cannot fit the request), so steady-state fills allocate
// nothing and the allocator's bookkeeping amortizes to one allocation
// per ~thousand groups.
//
// Carved regions are never reclaimed individually: the slab's memory is
// dropped wholesale when the owning stripe resets or overflows, exactly
// when the map entries referencing it are dropped. A chunk that is
// retired full stays reachable through the schedules carved from it, so
// dropping the slab never invalidates a schedule a caller still holds.
//
// All carving happens under the owning stripe's mutex; the carved region
// is private to the filler afterwards, so the (potentially large) copy
// into it runs outside the lock.
type schedSlab struct {
	ents []Entry
	cols []Column
	schs []Schedule
	ptrs []*Schedule
}

// Chunk sizes, in elements. Entries dominate the footprint (a 16-filter
// group of a mid-size layer is tens of thousands of entries), so their
// chunk is the largest; the metadata chunks are sized so all four run
// out at roughly the same fill count.
const (
	slabEntChunk = 1 << 15
	slabColChunk = 1 << 12
	slabSchChunk = 1 << 9
)

// slabTake carves n elements, starting a fresh chunk when the current
// one cannot fit them. The caller must hold the owning stripe's mutex.
func slabTake[T any](buf *[]T, n, chunk int) []T {
	if cap(*buf)-len(*buf) < n {
		if chunk < n {
			chunk = n
		}
		*buf = make([]T, 0, chunk)
	}
	s := (*buf)[len(*buf) : len(*buf)+n : len(*buf)+n]
	*buf = (*buf)[:len(*buf)+n]
	return s
}

// take carves the slices for one group of nf schedules with cols columns
// of lanes entries each. Caller holds the stripe mutex.
func (sl *schedSlab) take(nf, cols, lanes int) (ents []Entry, fcols []Column, schs []Schedule, ptrs []*Schedule) {
	ents = slabTake(&sl.ents, nf*cols*lanes, slabEntChunk)
	fcols = slabTake(&sl.cols, nf*cols, slabColChunk)
	schs = slabTake(&sl.schs, nf, slabSchChunk)
	ptrs = slabTake(&sl.ptrs, nf, slabSchChunk)
	return
}
