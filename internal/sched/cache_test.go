package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"bittactical/internal/sparsity"
)

func cacheTestGroup(seed int64, steps, lanes int, sp float64, pad []bool) []Filter {
	rng := rand.New(rand.NewSource(seed))
	group := make([]Filter, 3)
	for i := range group {
		w := sparsity.RandomSparseFilter(rng, steps, lanes, sp)
		group[i] = NewFilter(lanes, steps, w, pad)
	}
	return group
}

func TestCacheHitReturnsIdenticalSchedules(t *testing.T) {
	c := NewCache(0)
	group := cacheTestGroup(3, 12, 8, 0.6, nil)
	p := T(2, 5)

	fresh := ScheduleGroup(group, p, Algorithm1)
	first := c.ScheduleGroup(group, p, Algorithm1)
	if !reflect.DeepEqual(fresh, first) {
		t.Fatal("cached computation differs from direct ScheduleGroup")
	}
	second := c.ScheduleGroup(group, p, Algorithm1)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("filter %d: hit returned a new schedule instead of the cached pointer", i)
		}
	}
	if hits, misses, entries := c.Stats(); hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 1, 1)", hits, misses, entries)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewCache(0)
	group := cacheTestGroup(4, 12, 8, 0.6, nil)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)

	// A different pattern, a different algorithm, and different weights must
	// each miss, even when the pattern shares a mux arity.
	c.ScheduleGroup(group, L(2, 5), Algorithm1)
	c.ScheduleGroup(group, T(2, 5), GreedySimple)
	c.ScheduleGroup(cacheTestGroup(5, 12, 8, 0.6, nil), T(2, 5), Algorithm1)
	if hits, misses, _ := c.Stats(); hits != 0 || misses != 4 {
		t.Fatalf("stats = (%d hits, %d misses), want (0, 4)", hits, misses)
	}
}

// TestCachePadIndependent pins the deliberate key choice: scheduling reads
// only the weight values, so groups differing only in the padding mask
// share one entry.
func TestCachePadIndependent(t *testing.T) {
	c := NewCache(0)
	pad := make([]bool, 12*8)
	for i := range pad {
		pad[i] = i%3 == 0
	}
	plain := cacheTestGroup(6, 12, 8, 0.6, nil)
	padded := cacheTestGroup(6, 12, 8, 0.6, pad)

	a := c.ScheduleGroup(plain, T(2, 5), Algorithm1)
	b := c.ScheduleGroup(padded, T(2, 5), Algorithm1)
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want pad-only difference to hit", hits, misses)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("filter %d: padded group did not share the cached schedule", i)
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(0)
	group := cacheTestGroup(7, 12, 8, 0.6, nil)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	c.Reset()
	if hits, misses, entries := c.Stats(); hits != 0 || misses != 0 || entries != 0 {
		t.Fatalf("after Reset: stats = (%d, %d, %d), want zeros", hits, misses, entries)
	}
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	if hits, misses, _ := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after Reset: stats = (%d hits, %d misses), want a cold miss", hits, misses)
	}
}

// TestCacheCapacityClears checks the overflow policy: at capacity the cache
// drops everything and refills rather than growing without bound.
func TestCacheCapacityClears(t *testing.T) {
	c := NewCache(4)
	for seed := int64(0); seed < 10; seed++ {
		c.ScheduleGroup(cacheTestGroup(100+seed, 6, 4, 0.5, nil), T(2, 5), Algorithm1)
	}
	_, misses, entries := c.Stats()
	if misses != 10 {
		t.Fatalf("misses = %d, want 10 distinct groups", misses)
	}
	if entries > 4 {
		t.Fatalf("entries = %d, exceeds capacity 4", entries)
	}
}

// TestCacheSchedulesVerify makes sure memoization never serves a schedule
// that violates the hardware invariants for the group it keys.
func TestCacheSchedulesVerify(t *testing.T) {
	c := NewCache(0)
	for seed := int64(0); seed < 5; seed++ {
		group := cacheTestGroup(200+seed, 18, 16, 0.7, nil)
		p := T(2, 5)
		for round := 0; round < 2; round++ { // miss, then hit
			for i, s := range c.ScheduleGroup(group, p, Algorithm1) {
				if err := Verify(group[i], p, s); err != nil {
					t.Fatalf("seed %d round %d filter %d: %v", seed, round, i, err)
				}
			}
		}
	}
}
