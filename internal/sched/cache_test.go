package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"bittactical/internal/metrics"
	"bittactical/internal/sparsity"
)

func cacheTestGroup(seed int64, steps, lanes int, sp float64, pad []bool) []Filter {
	rng := rand.New(rand.NewSource(seed))
	group := make([]Filter, 3)
	for i := range group {
		w := sparsity.RandomSparseFilter(rng, steps, lanes, sp)
		group[i] = NewFilter(lanes, steps, w, pad)
	}
	return group
}

func TestCacheHitReturnsIdenticalSchedules(t *testing.T) {
	c := NewCache(0)
	group := cacheTestGroup(3, 12, 8, 0.6, nil)
	p := T(2, 5)

	fresh := ScheduleGroup(group, p, Algorithm1)
	first := c.ScheduleGroup(group, p, Algorithm1)
	if !reflect.DeepEqual(fresh, first) {
		t.Fatal("cached computation differs from direct ScheduleGroup")
	}
	second := c.ScheduleGroup(group, p, Algorithm1)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("filter %d: hit returned a new schedule instead of the cached pointer", i)
		}
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 1, 1)", st.Hits, st.Misses, st.Entries)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewCache(0)
	group := cacheTestGroup(4, 12, 8, 0.6, nil)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)

	// A different pattern, a different algorithm, and different weights must
	// each miss, even when the pattern shares a mux arity.
	c.ScheduleGroup(group, L(2, 5), Algorithm1)
	c.ScheduleGroup(group, T(2, 5), GreedySimple)
	c.ScheduleGroup(cacheTestGroup(5, 12, 8, 0.6, nil), T(2, 5), Algorithm1)
	if st := c.Stats(); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("stats = (%d hits, %d misses), want (0, 4)", st.Hits, st.Misses)
	}
}

// TestCachePadIndependent pins the deliberate key choice: scheduling reads
// only the weight values, so groups differing only in the padding mask
// share one entry.
func TestCachePadIndependent(t *testing.T) {
	c := NewCache(0)
	pad := make([]bool, 12*8)
	for i := range pad {
		pad[i] = i%3 == 0
	}
	plain := cacheTestGroup(6, 12, 8, 0.6, nil)
	padded := cacheTestGroup(6, 12, 8, 0.6, pad)

	a := c.ScheduleGroup(plain, T(2, 5), Algorithm1)
	b := c.ScheduleGroup(padded, T(2, 5), Algorithm1)
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want pad-only difference to hit", st.Hits, st.Misses)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("filter %d: padded group did not share the cached schedule", i)
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(0)
	group := cacheTestGroup(7, 12, 8, 0.6, nil)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	c.Reset()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("after Reset: stats = %+v, want zeros", st)
	}
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after Reset: stats = (%d hits, %d misses), want a cold miss", st.Hits, st.Misses)
	}
}

// TestCacheCapacityClears checks the overflow policy: at capacity the cache
// drops everything and refills rather than growing without bound.
func TestCacheCapacityClears(t *testing.T) {
	c := NewCache(4)
	for seed := int64(0); seed < 10; seed++ {
		c.ScheduleGroup(cacheTestGroup(100+seed, 6, 4, 0.5, nil), T(2, 5), Algorithm1)
	}
	st := c.Stats()
	if st.Misses != 10 {
		t.Fatalf("misses = %d, want 10 distinct groups", st.Misses)
	}
	if st.Entries > 4 {
		t.Fatalf("entries = %d, exceeds capacity 4", st.Entries)
	}
	// Ten distinct groups through a 4-entry cache force at least one
	// full-map drop, and every dropped entry must be recorded.
	if st.Evictions == 0 {
		t.Fatal("overflow recorded no evictions")
	}
	if st.Evictions+int64(st.Entries) != st.Misses {
		t.Fatalf("evictions %d + resident %d != inserted %d: dropped entries went unrecorded",
			st.Evictions, st.Entries, st.Misses)
	}
}

// TestCacheCapacityOneChurn is the overflow-policy regression test: a
// capacity-1 cache evicts on essentially every insert, and it must keep
// returning schedules identical to the uncached path — eviction may cost
// recomputation, never correctness.
func TestCacheCapacityOneChurn(t *testing.T) {
	c := NewCache(1)
	p := T(2, 5)
	groups := make([][]Filter, 4)
	for i := range groups {
		groups[i] = cacheTestGroup(300+int64(i), 10, 8, 0.6, nil)
	}
	for round := 0; round < 3; round++ {
		for i, g := range groups {
			got := c.ScheduleGroup(g, p, Algorithm1)
			want := ScheduleGroup(g, p, Algorithm1)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d group %d: churned cache returned a wrong schedule", round, i)
			}
		}
	}
	st := c.Stats()
	if st.Entries > 1 {
		t.Fatalf("entries = %d, exceeds capacity 1", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("capacity-1 churn recorded no evictions")
	}
	if st.Evictions+int64(st.Entries) != st.Misses {
		t.Fatalf("evictions %d + resident %d != inserted %d",
			st.Evictions, st.Entries, st.Misses)
	}
}

// TestCacheRegisterMetrics checks the registry view tracks the live
// counters.
func TestCacheRegisterMetrics(t *testing.T) {
	c := NewCache(1)
	r := metrics.NewRegistry()
	c.RegisterMetrics(r, "cache")
	group := cacheTestGroup(400, 10, 8, 0.6, nil)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	c.ScheduleGroup(group, T(2, 5), Algorithm1)
	c.ScheduleGroup(cacheTestGroup(401, 10, 8, 0.6, nil), T(2, 5), Algorithm1)
	snap := r.Snapshot()
	st := c.Stats()
	want := map[string]int64{
		"cache_hits":      st.Hits,
		"cache_misses":    st.Misses,
		"cache_evictions": st.Evictions,
		"cache_entries":   int64(st.Entries),
	}
	for name, v := range want {
		if snap[name].(int64) != v {
			t.Errorf("%s = %v, want %d", name, snap[name], v)
		}
	}
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses, 1 eviction", st)
	}
}

// TestCacheSchedulesVerify makes sure memoization never serves a schedule
// that violates the hardware invariants for the group it keys.
func TestCacheSchedulesVerify(t *testing.T) {
	c := NewCache(0)
	for seed := int64(0); seed < 5; seed++ {
		group := cacheTestGroup(200+seed, 18, 16, 0.7, nil)
		p := T(2, 5)
		for round := 0; round < 2; round++ { // miss, then hit
			for i, s := range c.ScheduleGroup(group, p, Algorithm1) {
				if err := Verify(group[i], p, s); err != nil {
					t.Fatalf("seed %d round %d filter %d: %v", seed, round, i, err)
				}
			}
		}
	}
}
