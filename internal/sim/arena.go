package sim

import (
	"sync"

	"bittactical/internal/backend"
	"bittactical/internal/fixed"
	"bittactical/internal/sched"
)

// Per-group buffer reuse, mirroring the internal/sched kernel's arena
// design. A figure sweep prepares tens of thousands of filter groups, and
// before this file each prepared group heap-allocated its filter-row
// materializations, its lane-reference and participation-mask grids, and
// its chunk accumulators — identical shapes every time, with two distinct
// lifetimes:
//
//   - groupScratch lives only within one prepareGroup call (weight rows,
//     the filter headers over them, and the dense-schedule arena for
//     front-end-less configs). Recycled the moment prepareGroup returns.
//   - groupBufs lives from prepareGroup to finishGroup (lane refs, SWAR
//     masks, per-row plane pointers, per-chunk PE totals). Recycled when
//     the group's last window chunk folds.
//
// Both recycle through sync.Pools, so steady-state group turnover
// allocates nothing once the pools have warmed to the largest group
// shape. Buffers that are rebuilt wholesale (refs, planes, weights) are
// reused dirty; buffers built incrementally (gated masks with |=, PE
// totals with +=) are zeroed at carve time.

// groupScratch is the transient working set of one prepareGroup call.
type groupScratch struct {
	weights []int32
	filters []sched.Filter
	// Dense-schedule arena for configs without a front-end; laid out like
	// the sched kernel's arena (entries of filter i contiguous).
	entries []sched.Entry
	cols    []sched.Column
	schs    []sched.Schedule
	ptrs    []*sched.Schedule
	// Arena-mode scheduler for the cache-disabled front-end path: the
	// schedules are read only within prepareGroup, so the kernel arena's
	// valid-until-next-call contract holds trivially.
	sched *sched.Scheduler
}

var groupScratchPool = sync.Pool{New: func() any { return &groupScratch{} }}

// groupBufs is the prepare-to-finish working set of one filter group.
type groupBufs struct {
	refs     []laneRef
	masks    []uint64
	planes   []*costPlane
	peTotals []int64
}

var groupBufsPool = sync.Pool{New: func() any { return &groupBufs{} }}

// releaseTo returns the group's buffers — to the finishing worker's
// freelist when ws is non-nil, to the shared pool otherwise — and severs
// the context's views into them. Called by finishGroup after the fold;
// contexts built by tests that never finish simply let the GC take the
// buffers.
func (ctx *groupCtx) releaseTo(ws *workerState) {
	b := ctx.bufs
	if b == nil {
		return
	}
	ctx.bufs = nil
	ctx.refs, ctx.masks, ctx.rowPlanes, ctx.peTotals = nil, nil, nil, nil
	if ws != nil {
		ws.putBufs(b)
	} else {
		groupBufsPool.Put(b)
	}
}

// release is releaseTo without a worker — the tests' entry point.
func (ctx *groupCtx) release() { ctx.releaseTo(nil) }

// workerState is one pool worker's private arena set, handed out at pool
// spin-up (indexed by the worker id runPool passes fn) and retained inside
// the pooled sweepState across engine entries. Unlike the sync.Pools —
// which the GC clears, and which eight workers hit per chunk — these live
// as long as the sweepState and are touched with zero synchronization, so
// the parallel path's per-chunk arena traffic allocates exactly as little
// as the serial path's: nothing, once warm.
//
// The scratch arena (sc) is safe per worker because a worker runs one item
// at a time and prepareGroupInto consumes it synchronously. groupBufs
// cross workers (acquired by the preparing worker, released by whichever
// worker folds the group's last chunk), so they route through per-worker
// freelists: pop on prepare, push on finish.
type workerState struct {
	sc   *groupScratch
	free []*groupBufs
	// Pad to 128 bytes so adjacent workers' states never share a cache
	// line (the slice header is rewritten on every push/pop).
	_ [96]byte
}

// scratch returns the worker's transient prepare arena, creating it on the
// worker's first group (the one-time warmup this design accepts).
func (ws *workerState) scratch() *groupScratch {
	if ws.sc == nil {
		ws.sc = new(groupScratch)
	}
	return ws.sc
}

// getBufs pops a prepare-to-finish buffer set from the worker's freelist,
// falling back to the shared pool when the freelist is dry (first groups,
// or a workload where other workers finish this worker's groups).
func (ws *workerState) getBufs() *groupBufs {
	if n := len(ws.free); n > 0 {
		b := ws.free[n-1]
		ws.free[n-1] = nil
		ws.free = ws.free[:n-1]
		return b
	}
	return groupBufsPool.Get().(*groupBufs)
}

// putBufs pushes a released buffer set onto the worker's freelist.
func (ws *workerState) putBufs(b *groupBufs) { ws.free = append(ws.free, b) }

// grow returns sl with length n, reusing capacity when possible. Reused
// contents are stale; see the lifetime notes above for which buffers
// tolerate that.
func grow[T any](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}

// sweepState is the pooled per-invocation assembly of simulateSweep: the
// config/layer/group bookkeeping structs and the work-item queue, sized by
// the pre-pass and carved into per-config and per-layer views. The
// experiment drivers invoke the engine once per (config, layer), so before
// this pool every invocation re-allocated the entire assembly — the
// dominant remainder of fig8a's allocation profile after the group arenas
// landed. Only the LayerResult slices returned to the caller escape; they
// are allocated fresh per run.
type sweepState struct {
	works    []configWork
	layers   []layerWork
	accums   []groupAccum
	partials []windowPartial
	slots    []planeSlot
	items    []workItem
	// wstates is the per-worker arena set, indexed by runPool's worker id.
	// Deliberately NOT cleared by carve: the scratch arenas and freelists
	// are exactly what must survive from one engine entry to the next for
	// the steady state to allocate nothing.
	wstates []workerState
}

// workerStates returns the state array for a pool of `workers`, growing it
// (and preserving existing warm arenas) when a sweep asks for more workers
// than any before it.
func (st *sweepState) workerStates(workers int) []workerState {
	if workers < 1 {
		workers = 1
	}
	for len(st.wstates) < workers {
		st.wstates = append(st.wstates, workerState{})
	}
	return st.wstates
}

var sweepStatePool = sync.Pool{New: func() any { return new(sweepState) }}

// carve resizes the state's backing arrays to one sweep's exact totals and
// zeroes them: every struct here carries one-shot synchronization
// (sync.Once, atomic countdowns) or incrementally-built contents that must
// start clean, and the clear also drops the previous run's pointers
// (schedules, planes, lowered layers) so pooling never extends their
// lifetime past the next engine entry.
func (st *sweepState) carve(nCfgs, nLayers, nAccums, nPartials, nSlots, nItems int) {
	st.works = grow(st.works, nCfgs)
	clear(st.works)
	st.layers = grow(st.layers, nLayers)
	clear(st.layers)
	st.accums = grow(st.accums, nAccums)
	clear(st.accums)
	st.partials = grow(st.partials, nPartials)
	clear(st.partials)
	st.slots = grow(st.slots, nSlots)
	clear(st.slots)
	if cap(st.items) < nItems {
		st.items = make([]workItem, 0, nItems)
	} else {
		st.items = st.items[:0]
		clear(st.items[:cap(st.items)])
	}
}

// fullMasks memoizes the ungated participation mask per lane count: the
// all-lanes SWAR mask is immutable and identical for every ungated group
// of a given geometry, so groups share one slice instead of building one
// each.
var fullMasks sync.Map // int (lanes) -> []uint64

func fullLaneMaskShared(lanes int) []uint64 {
	if m, ok := fullMasks.Load(lanes); ok {
		return m.([]uint64)
	}
	m, _ := fullMasks.LoadOrStore(lanes, fullLaneMask(lanes))
	return m.([]uint64)
}

// costTableKey identifies a memoized cost table: back-ends ride by
// registry name (names are unique per registry), widths in the clear.
type costTableKey struct {
	be string
	w  fixed.Width
}

// costTables memoizes cost tables process-wide. A table is a pure
// function of (back-end, width) — 2^width bytes built by 2^width Cost
// calls — and the experiment drivers invoke the engine once per (config,
// layer), so without the memo a full-zoo sweep rebuilt the same handful
// of tables hundreds of times over.
var costTables sync.Map // costTableKey -> *costTable

func costTableFor(be backend.Backend, w fixed.Width) *costTable {
	k := costTableKey{be: be.Name(), w: w}
	if v, ok := costTables.Load(k); ok {
		return v.(*costTable)
	}
	v, _ := costTables.LoadOrStore(k, newCostTable(be, w))
	return v.(*costTable)
}

// denseSchedules builds the value-agnostic dense schedule — one column per
// step, every weight in place, nothing skipped — in the scratch arena.
// The schedules are consumed (census, activity, lane refs) before
// prepareGroup returns, so arena backing is safe.
func denseSchedules(sc *groupScratch, filters []sched.Filter) []*sched.Schedule {
	nf := len(filters)
	if nf == 0 {
		return nil
	}
	lanes, steps := filters[0].Lanes, filters[0].Steps
	sc.entries = grow(sc.entries, nf*steps*lanes)
	sc.cols = grow(sc.cols, nf*steps)
	sc.schs = grow(sc.schs, nf)
	sc.ptrs = grow(sc.ptrs, nf)
	for i, f := range filters {
		for st := 0; st < steps; st++ {
			ents := sc.entries[(i*steps+st)*lanes : (i*steps+st+1)*lanes]
			for ln := 0; ln < lanes; ln++ {
				if w := f.At(st, ln); w != 0 {
					ents[ln] = sched.Entry{Weight: w, SrcStep: st, SrcLane: ln}
				} else {
					ents[ln] = sched.Entry{}
				}
			}
			sc.cols[i*steps+st] = sched.Column{Head: st, Advance: 1, Entries: ents}
		}
		sc.schs[i] = sched.Schedule{Lanes: lanes, DenseSteps: steps}
		if steps > 0 {
			sc.schs[i].Columns = sc.cols[i*steps : (i+1)*steps]
		}
		sc.ptrs[i] = &sc.schs[i]
	}
	return sc.ptrs[:nf]
}
