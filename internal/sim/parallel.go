package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bittactical/internal/sched"
)

// Options tunes the simulation engine without changing its results: any
// Parallelism and any cache setting produce bit-identical output, because
// every worker accumulates a private per-filter-group shard and the shards
// are merged in a fixed order.
type Options struct {
	// Parallelism bounds the worker goroutines executing (layer,
	// filter-group) work items; 0 means GOMAXPROCS. 1 runs fully inline
	// (no goroutines), which is also the fallback for single-item loads.
	Parallelism int
	// Cache overrides the schedule cache (nil = sched.Shared). Schedules
	// depend only on (weights, pattern, scheduler), so the default shared
	// cache lets back-end sweeps schedule each filter group once.
	Cache *sched.Cache
	// DisableCache forces every group to be rescheduled from scratch.
	DisableCache bool
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) cache() *sched.Cache {
	if o.DisableCache {
		return nil
	}
	if o.Cache != nil {
		return o.Cache
	}
	return sched.Shared
}

// runPool executes fn(0..n-1) on up to `workers` goroutines. Items live in
// a single shared queue and idle workers steal the next unclaimed index, so
// a slow filter group (large layer, dense weights) never idles the rest of
// the pool behind a static partition. Worker panics are re-raised on the
// caller's goroutine to preserve the engine's synchronous panic contract.
func runPool(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicBox]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicBox{val: r})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
}

type panicBox struct{ val any }
