package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"bittactical/internal/metrics"
	"bittactical/internal/sched"
)

// Options tunes the simulation engine without changing its results: any
// Parallelism and any cache setting produce bit-identical output, because
// every worker accumulates a private per-filter-group shard and the shards
// are merged in a fixed order.
type Options struct {
	// Parallelism bounds the worker goroutines executing (layer,
	// filter-group) work items; 0 means GOMAXPROCS. 1 runs fully inline
	// (no goroutines), which is also the fallback for single-item loads.
	Parallelism int
	// Cache overrides the schedule cache (nil = sched.Shared). Schedules
	// depend only on (weights, pattern, scheduler), so the default shared
	// cache lets back-end sweeps schedule each filter group once.
	Cache *sched.Cache
	// DisableCache forces every group to be rescheduled from scratch.
	DisableCache bool
	// PlaneCache overrides the activation cost plane cache (nil =
	// SharedPlanes). Planes depend only on (activations, lowering geometry,
	// back-end, width), so the default shared cache lets sweeps over
	// front-end patterns build each layer's plane once.
	PlaneCache *PlaneCache
	// DisablePlaneCache builds planes privately per run, memoizing nothing.
	DisablePlaneCache bool
	// OnLayerResult, when set, is invoked the moment one (config, layer)
	// result has fully merged — from whichever worker goroutine finished
	// the layer's last chunk, concurrently with callbacks for other
	// layers. cfg indexes the sweep's config list, layer the config's
	// lowered-layer list (for SimulateGridContext, the position within the
	// requested layer subset). The callback must be safe for concurrent
	// use and should not block: the pool worker that fired it cannot
	// claim more work until it returns. The returned results are
	// unaffected — streaming consumers get early sight of each layer, not
	// a different answer.
	OnLayerResult func(cfg, layer int, r LayerResult)
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) cache() *sched.Cache {
	if o.DisableCache {
		return nil
	}
	if o.Cache != nil {
		return o.Cache
	}
	return sched.Shared
}

func (o Options) planeCache() *PlaneCache {
	if o.DisablePlaneCache {
		return nil
	}
	if o.PlaneCache != nil {
		return o.PlaneCache
	}
	return SharedPlanes
}

// Pool occupancy and throughput, exported process-wide: the busy-worker
// gauge (with its high-water mark) shows how full the pool runs, the item
// counter its lifetime throughput.
var (
	poolBusy  = metrics.Default.Gauge("sim_pool_busy_workers")
	poolItems = metrics.Default.Counter("sim_pool_items_total")
)

// runPool executes fn(w, 0..n-1) on up to `workers` goroutines, passing
// each invocation the dense index w of the worker running it (0 on the
// serial inline path) so callers can hand every worker private scratch at
// pool spin-up instead of per item. Items live in a single shared queue
// and idle workers steal the next unclaimed index, so a slow filter group
// (large layer, dense weights) never idles the rest of the pool behind a
// static partition.
//
// Pool metrics are worker-granular: each worker ticks the busy gauge once
// for its lifetime and folds its item count into the process counter once
// at drain, so the hot claim loop performs no shared atomic writes. Totals
// are exact whenever runPool has returned.
//
// The done channel (a context's Done, or nil for run-to-completion) is
// checked before every claim: once it closes, no worker claims another item
// and runPool returns false. Items already claimed run to completion, so a
// cancelled pool leaves no goroutines behind — the WaitGroup drains as each
// worker finishes its current item.
//
// A worker panic poisons the queue the same way: every worker stops
// claiming at its next iteration instead of draining the remaining items,
// and the first panic is re-raised on the caller's goroutine as a
// *WorkerPanic carrying the original value and the worker's stack (the
// runtime traceback of the re-raise shows only the caller's stack).
func runPool(done <-chan struct{}, workers, n int, fn func(w, i int)) (completed bool) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		poolBusy.Inc()
		defer poolBusy.Dec()
		var count int64
		defer func() { poolItems.Add(count) }()
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return false
			default:
			}
			fn(0, i)
			count++
		}
		return true
	}
	// One poolRun carries all shared state, so spawning a pool of any width
	// in steady state costs no heap allocations that scale with the worker
	// count: the argless per-index spawn closures (a `go` statement with
	// arguments heap-allocates a hidden thunk per spawn) are built once per
	// poolRun and recycled with it.
	st := poolRunPool.Get().(*poolRun)
	st.done, st.fn, st.n = done, fn, n
	st.next.Store(0)
	st.panicked.Store(nil)
	st.poisoned.Store(false)
	for len(st.wfns) < workers {
		w := len(st.wfns)
		st.wfns = append(st.wfns, func() { st.worker(w) })
	}
	for w := 0; w < workers; w++ {
		st.wg.Add(1)
		go st.wfns[w]()
	}
	st.wg.Wait()
	p := st.panicked.Load()
	completed = int(st.next.Load()) >= n
	st.done, st.fn = nil, nil
	poolRunPool.Put(st)
	if p != nil {
		panic(p)
	}
	select {
	case <-done:
		return false
	default:
		return completed
	}
}

// poolRun is one parallel runPool invocation's shared state, pooled so a
// steady stream of pool entries reuses one allocation.
type poolRun struct {
	next     atomic.Int64
	wg       sync.WaitGroup
	panicked atomic.Pointer[WorkerPanic]
	poisoned atomic.Bool
	done     <-chan struct{}
	fn       func(w, i int)
	n        int
	// wfns[w] is the reusable spawn closure for worker index w; it reads
	// the run's work through the stable *poolRun receiver, so the same
	// closure serves every invocation this state is recycled into.
	wfns []func()
}

var poolRunPool = sync.Pool{New: func() any { return new(poolRun) }}

// worker is the goroutine body of one pool worker; see runPool for the
// claim-loop, cancellation, metrics, and panic contracts.
func (st *poolRun) worker(w int) {
	defer st.wg.Done()
	poolBusy.Inc()
	defer poolBusy.Dec()
	var count int64
	defer func() { poolItems.Add(count) }()
	defer func() {
		if r := recover(); r != nil {
			st.panicked.CompareAndSwap(nil, &WorkerPanic{Value: r, Stack: debug.Stack()})
			st.poisoned.Store(true)
		}
	}()
	for !st.poisoned.Load() {
		select {
		case <-st.done:
			return
		default:
		}
		i := int(st.next.Add(1)) - 1
		if i >= st.n {
			return
		}
		st.fn(w, i)
		count++
	}
}

// WorkerPanic is the value runPool re-raises after a worker panic: the
// original panic value plus the worker goroutine's stack at recover time.
// It implements error (and Unwrap, when the original value was an error) so
// recovering callers can still match the underlying cause.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("sim: worker panic: %v\n\nworker stack:\n%s", p.Value, p.Stack)
}

func (p *WorkerPanic) String() string { return p.Error() }

// Unwrap exposes the original panic value when it was an error.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}
