package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"bittactical/internal/metrics"
	"bittactical/internal/sched"
)

// Options tunes the simulation engine without changing its results: any
// Parallelism and any cache setting produce bit-identical output, because
// every worker accumulates a private per-filter-group shard and the shards
// are merged in a fixed order.
type Options struct {
	// Parallelism bounds the worker goroutines executing (layer,
	// filter-group) work items; 0 means GOMAXPROCS. 1 runs fully inline
	// (no goroutines), which is also the fallback for single-item loads.
	Parallelism int
	// Cache overrides the schedule cache (nil = sched.Shared). Schedules
	// depend only on (weights, pattern, scheduler), so the default shared
	// cache lets back-end sweeps schedule each filter group once.
	Cache *sched.Cache
	// DisableCache forces every group to be rescheduled from scratch.
	DisableCache bool
	// PlaneCache overrides the activation cost plane cache (nil =
	// SharedPlanes). Planes depend only on (activations, lowering geometry,
	// back-end, width), so the default shared cache lets sweeps over
	// front-end patterns build each layer's plane once.
	PlaneCache *PlaneCache
	// DisablePlaneCache builds planes privately per run, memoizing nothing.
	DisablePlaneCache bool
	// OnLayerResult, when set, is invoked the moment one (config, layer)
	// result has fully merged — from whichever worker goroutine finished
	// the layer's last chunk, concurrently with callbacks for other
	// layers. cfg indexes the sweep's config list, layer the config's
	// lowered-layer list (for SimulateGridContext, the position within the
	// requested layer subset). The callback must be safe for concurrent
	// use and should not block: the pool worker that fired it cannot
	// claim more work until it returns. The returned results are
	// unaffected — streaming consumers get early sight of each layer, not
	// a different answer.
	OnLayerResult func(cfg, layer int, r LayerResult)
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) cache() *sched.Cache {
	if o.DisableCache {
		return nil
	}
	if o.Cache != nil {
		return o.Cache
	}
	return sched.Shared
}

func (o Options) planeCache() *PlaneCache {
	if o.DisablePlaneCache {
		return nil
	}
	if o.PlaneCache != nil {
		return o.PlaneCache
	}
	return SharedPlanes
}

// Pool occupancy and throughput, exported process-wide: the busy-worker
// gauge (with its high-water mark) shows how full the pool runs, the item
// counter its lifetime throughput.
var (
	poolBusy  = metrics.Default.Gauge("sim_pool_busy_workers")
	poolItems = metrics.Default.Counter("sim_pool_items_total")
)

// runPool executes fn(0..n-1) on up to `workers` goroutines. Items live in
// a single shared queue and idle workers steal the next unclaimed index, so
// a slow filter group (large layer, dense weights) never idles the rest of
// the pool behind a static partition.
//
// The done channel (a context's Done, or nil for run-to-completion) is
// checked before every claim: once it closes, no worker claims another item
// and runPool returns false. Items already claimed run to completion, so a
// cancelled pool leaves no goroutines behind — the WaitGroup drains as each
// worker finishes its current item.
//
// A worker panic poisons the queue the same way: every worker stops
// claiming at its next iteration instead of draining the remaining items,
// and the first panic is re-raised on the caller's goroutine as a
// *WorkerPanic carrying the original value and the worker's stack (the
// runtime traceback of the re-raise shows only the caller's stack).
func runPool(done <-chan struct{}, workers, n int, fn func(i int)) (completed bool) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return false
			default:
			}
			runItem(fn, i)
		}
		return true
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[WorkerPanic]
		poisoned atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &WorkerPanic{Value: r, Stack: debug.Stack()})
					poisoned.Store(true)
				}
			}()
			for !poisoned.Load() {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runItem(fn, i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	select {
	case <-done:
		return false
	default:
		return int(next.Load()) >= n
	}
}

// runItem tracks pool occupancy around one work item; the deferred Dec
// keeps the gauge balanced even when fn panics.
func runItem(fn func(i int), i int) {
	poolBusy.Inc()
	defer poolBusy.Dec()
	fn(i)
	poolItems.Inc()
}

// WorkerPanic is the value runPool re-raises after a worker panic: the
// original panic value plus the worker goroutine's stack at recover time.
// It implements error (and Unwrap, when the original value was an error) so
// recovering callers can still match the underlying cause.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("sim: worker panic: %v\n\nworker stack:\n%s", p.Value, p.Stack)
}

func (p *WorkerPanic) String() string { return p.Error() }

// Unwrap exposes the original panic value when it was an error.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}
