// Package sim is the cycle-level execution model of Bit-Tactical and its
// dense baseline. It is exact at the schedule-column granularity: the TCL
// datapath is synchronous at column boundaries (the WS issues one column of
// weight/mux-select pairs at a time, and all PE columns of a tile share the
// weight schedule), so accounting column durations reproduces cycle counts
// (DESIGN.md §2).
//
// One Simulate covers the whole family:
//
//   - DaDianNao++: no front-end, bit-parallel back-end;
//   - Figure 8a front-end-only rows: pattern + bit-parallel back-end;
//   - TCLp / TCLe: pattern + serial back-end;
//   - Dynamic Stripes / Pragmatic: no front-end + serial back-end.
package sim

import (
	"bittactical/internal/backend"
	"bittactical/internal/fixed"
)

// costTable memoizes the back-end's per-value serial cost of every code at
// a width: oneffset count for TCLe, dynamic precision bits for TCLp, 1 for
// the bit-parallel back-end — whatever the registered Backend's Cost says.
type costTable struct {
	width fixed.Width
	tab   []uint8
}

func newCostTable(be backend.Backend, w fixed.Width) *costTable {
	n := 1 << uint(w)
	ct := &costTable{width: w, tab: make([]uint8, n)}
	for i := 0; i < n; i++ {
		v := fixed.SignExtend(uint32(i), w)
		c := be.Cost(v, w)
		// The SWAR column-max compares costs as 7-bit bytes (kernel.go);
		// every real cost is far below this bound (TCLp <= width+1, TCLe
		// <= ceil((width+1)/2)), so the clamp is defensive only.
		if c > maxLaneCost {
			c = maxLaneCost
		}
		ct.tab[i] = uint8(c)
	}
	return ct
}

// cost returns the serial cycles the back-end spends on code v.
func (ct *costTable) cost(v int32) int {
	return int(ct.tab[uint32(v)&ct.width.Mask()])
}

// costU8 is cost without the int widening, for the hot loop's cost grids.
func (ct *costTable) costU8(v int32) uint8 {
	return ct.tab[uint32(v)&ct.width.Mask()]
}
