// SWAR column-max kernel. Lanes within a PE are lockstep every schedule
// column (they feed one adder tree), so the back-end's column duration is
// the maximum serial cost over the PE's participating lanes — the single
// hottest reduction in the simulator: it runs once per (schedule column, PE
// row, window). The kernel packs 8 lanes of uint8 costs per uint64 and
// computes the lane max branch-free with word-parallel byte compares, so a
// 16-lane tile folds 2 words per column instead of iterating a 16-element
// byte loop with a data-dependent branch per lane.
//
// Invariants:
//
//   - every cost byte is <= maxLaneCost (127): the word-parallel unsigned
//     compare borrows through bit 7 of each byte, so costs must leave the
//     high bit clear. newCostTable clamps accordingly; real costs never
//     exceed width+1 <= 17.
//   - cost slices are zero-padded to a whole number of 8-byte words
//     (padLanes), and mask bytes are exactly 0x00 (lane excluded) or 0xFF
//     (lane participates); padding bytes are 0x00.
//
// columnMaxScalar is the reference implementation; FuzzColumnMaxSWAR and
// TestColumnMaxMatchesScalar pin the two bit-identical over random planes
// and lane counts, including lane counts not divisible by 8.
package sim

import "encoding/binary"

// maxLaneCost bounds the per-value serial cost stored in cost tables and
// activation cost planes, keeping bit 7 of every packed byte clear for the
// SWAR compare.
const maxLaneCost = 127

// laneWords returns the number of uint64 words that hold `lanes` packed
// byte costs.
func laneWords(lanes int) int { return (lanes + 7) / 8 }

// padLanes rounds a lane count up to a whole number of SWAR words, the
// required length of a cost buffer.
func padLanes(lanes int) int { return laneWords(lanes) * 8 }

// swarHigh selects bit 7 of every byte of a word.
const swarHigh = 0x8080808080808080

// byteMax returns the byte-wise unsigned max of two words, valid for byte
// values <= 127: (a|H)-b sets bit 7 of a byte exactly when that byte of a
// is >= the byte of b (no inter-byte borrow, since every minuend byte is >=
// 0x80 and every subtrahend byte <= 0x7F), and ge*0xFF spreads each
// resulting comparison bit into a full byte-select mask.
func byteMax(a, b uint64) uint64 {
	ge := (((a | swarHigh) - b) & swarHigh) >> 7
	m := ge * 0xff
	return (a & m) | (b &^ m)
}

// columnMax returns max(1, max cost over participating lanes): the cycles
// the PE spends on this schedule column. cost is a padLanes-sized buffer of
// per-lane serial costs; mask holds laneWords words with 0xFF bytes for
// participating lanes (effectual weights, or every lane when the config has
// no front-end to gate ineffectual ones) and 0x00 elsewhere. The floor of 1
// models the column issue slot: even a column whose every participating
// lane is zero-cost occupies the PE for a cycle.
func columnMax(cost []uint8, mask []uint64) int {
	var m uint64
	for i, w := range mask {
		m = byteMax(m, binary.LittleEndian.Uint64(cost[i*8:])&w)
	}
	m = byteMax(m, m>>32)
	m = byteMax(m, m>>16)
	m = byteMax(m, m>>8)
	if c := int(m & 0xff); c > 1 {
		return c
	}
	return 1
}

// columnMaxScalar is the reference column-max: the byte loop the engine ran
// before the SWAR kernel, kept as the executable specification the kernel
// is differentially tested against.
func columnMaxScalar(cost []uint8, mask []uint64) int {
	peMax := 1
	for ln := 0; ln < len(cost); ln++ {
		if mask[ln>>3]>>(8*uint(ln&7))&0xff != 0 && int(cost[ln]) > peMax {
			peMax = int(cost[ln])
		}
	}
	return peMax
}

// ColumnMax exposes the SWAR column-max to benchmark tooling outside the
// package; ColumnMaxScalar is its executable reference. Engine code calls
// the unexported kernels directly.
func ColumnMax(cost []uint8, mask []uint64) int       { return columnMax(cost, mask) }
func ColumnMaxScalar(cost []uint8, mask []uint64) int { return columnMaxScalar(cost, mask) }

// fullLaneMask returns the participation mask with the first `lanes` lanes
// set — the mask every PE row shares when the config has no front-end
// (nothing gates ineffectual lanes out of the column sync).
func fullLaneMask(lanes int) []uint64 {
	mask := make([]uint64, laneWords(lanes))
	for ln := 0; ln < lanes; ln++ {
		mask[ln>>3] |= 0xff << (8 * uint(ln&7))
	}
	return mask
}
