package sim

import (
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// TestEstimateLayerCostMatchesDenseCycles pins the cost estimate to the
// engine: for every layer of a real zoo model, under both a dense and a
// serial configuration, EstimateLayerCost must equal the DenseCycles the
// simulator reports — the estimate IS the merge arithmetic, computed
// without running anything.
func TestEstimateLayerCostMatchesDenseCycles(t *testing.T) {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	m, err := nn.BuildModel("AlexNet-ES", z)
	if err != nil {
		t.Fatal(err)
	}
	acts := m.GenerateActs(7)
	for _, cfg := range []arch.Config{
		arch.DaDianNaoPP(),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
	} {
		res, err := SimulateModelOpts(cfg, m, acts, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range m.Layers {
			est, err := EstimateLayerCost(cfg, l)
			if err != nil {
				t.Fatalf("%s layer %d: %v", cfg.Name, i, err)
			}
			if got := res.Layers[i].DenseCycles; est != got {
				t.Errorf("%s layer %s: estimate %d != simulated dense cycles %d",
					cfg.Name, l.Name, est, got)
			}
		}
	}
}

// TestEstimateSweepLayerCosts: the sweep aggregate is the per-config sum,
// and conv1-class layers dominate the prediction — the skew the shard
// partitioner exists to balance.
func TestEstimateSweepLayerCosts(t *testing.T) {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.1, 0.25
	m, err := nn.BuildModel("AlexNet-ES", z)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []arch.Config{arch.DaDianNaoPP(), arch.NewTCL(sched.T(2, 5), arch.TCLe)}
	costs, err := EstimateSweepLayerCosts(cfgs, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(m.Layers) {
		t.Fatalf("%d costs for %d layers", len(costs), len(m.Layers))
	}
	for i, l := range m.Layers {
		var want int64
		for _, cfg := range cfgs {
			c, err := EstimateLayerCost(cfg, l)
			if err != nil {
				t.Fatal(err)
			}
			want += c
		}
		if costs[i] != want {
			t.Errorf("layer %d: sweep cost %d != per-config sum %d", i, costs[i], want)
		}
		if costs[i] <= 0 {
			t.Errorf("layer %d: non-positive predicted cost %d", i, costs[i])
		}
	}
	// The early convolution must out-cost the mean by a wide margin —
	// uniform partitioning of such a model is exactly the imbalance the
	// LPT partitioner corrects.
	var sum int64
	for _, c := range costs {
		sum += c
	}
	mean := sum / int64(len(costs))
	var max int64
	for _, c := range costs {
		if c > max {
			max = c
		}
	}
	if max < 2*mean {
		t.Errorf("expected a dominant layer: max %d < 2x mean %d", max, mean)
	}
}
