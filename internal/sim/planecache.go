package sim

import (
	"sync"
	"sync/atomic"

	"bittactical/internal/backend"
	"bittactical/internal/fixed"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
)

// PlaneCache memoizes activation cost planes, mirroring sched.Cache for the
// other half of the sweep workload: schedules are keyed on weights, planes
// on activations. The key spells out why planes are shareable — a plane
// depends on the input activations, the lowering geometry (the coords map
// from (window, step, lane) to the tensor), the back-end kind, and the
// datapath width, but NOT on the connectivity pattern, scheduler, tile
// geometry, or weights — so a Figure-8b-style sweep of L<h,d>/T<h,d>
// configs over one model builds each layer's plane once per back-end and
// shares it across every pattern, both within one tclserve /v1/simulate
// request and across requests (or tclsim experiment runs) through
// SharedPlanes. Width is in the key because an 8-bit plane costs the same
// value differently than a 16-bit one.
//
// Unlike sched.Cache, fills are single-flighted: a plane is megabytes of
// work, so concurrent requesters of the same key (two sweep configs hitting
// the same layer in the pool) wait on the first builder's sync.Once instead
// of racing to duplicate the build.
//
// The entry map is striped over a power-of-two number of shards selected
// by the content fingerprint (h1), each with its own lock, so parallel
// sweeps hitting warm planes stop serializing on one mutex. The byte
// budget stays global: resident bytes are tracked in one atomic off the
// lookup path, and the (rare) overflow drop locks every stripe, preserving
// the single-mutex cache's exact semantics — drop everything but the entry
// being inserted, count each dropped entry as one eviction.
type PlaneCache struct {
	stripes  []planeStripe
	mask     uint64
	bytes    atomic.Int64
	maxBytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// Grouped-plane counters: the same events, restricted to planes of
	// row-variant layers (act group in the key). They answer the question
	// the aggregate counters cannot: is the grouped/depthwise fast path
	// actually being taken, and is it churning the budget?
	groupBuilds    atomic.Int64
	groupHits      atomic.Int64
	groupEvictions atomic.Int64
}

// planeStripe is one shard of the entry map with its own lock.
type planeStripe struct {
	mu sync.Mutex
	m  map[planeKey]*planeEntry
}

// planeCacheStripes is the fixed stripe count. A process caches at most a
// few hundred planes (layers x back-ends x widths), so a handful of
// stripes already makes lock collisions between eight workers unlikely.
const planeCacheStripes = 8

// planeEntry single-flights one plane build: the creator runs the Once body;
// later requesters of the same key block on it and share the result.
type planeEntry struct {
	once  sync.Once
	plane *costPlane
}

// planeKey identifies one (layer activations+geometry, act group,
// back-end, width) tuple. Two independent 64-bit hash streams over the
// full content make an accidental collision implausible at any realistic
// cache size. The back-end rides in the key by registry name, in the
// clear: any two registered back-ends — including plugins the engine has
// never heard of — key distinct planes at the same width. The act group
// rides in the clear too (-1 for row-invariant layers, the group index
// for grouped/depthwise), so a grouped layer's planes share one content
// hash instead of re-hashing the input tensor per group.
type planeKey struct {
	h1, h2 uint64
	be     string
	width  fixed.Width
	group  int
}

// defaultPlaneCacheBytes bounds resident plane bytes. Planes are large (a
// full-size conv layer is megabytes), so unlike the schedule cache the
// budget is in bytes, not entries; the default holds every layer of a
// multi-model sweep at the evaluation scales while capping worst-case
// memory. On overflow the cache drops everything but the entry being
// inserted and refills — correct, bounded, trivial.
const defaultPlaneCacheBytes = 256 << 20

// NewPlaneCache returns an empty cache. maxBytes <= 0 selects the default
// budget.
func NewPlaneCache(maxBytes int64) *PlaneCache {
	if maxBytes <= 0 {
		maxBytes = defaultPlaneCacheBytes
	}
	c := &PlaneCache{
		stripes:  make([]planeStripe, planeCacheStripes),
		mask:     planeCacheStripes - 1,
		maxBytes: maxBytes,
	}
	for i := range c.stripes {
		c.stripes[i].m = make(map[planeKey]*planeEntry)
	}
	return c
}

// stripe selects the shard for a key by its content fingerprint.
func (c *PlaneCache) stripe(h1 uint64) *planeStripe {
	return &c.stripes[h1&c.mask]
}

// SharedPlanes is the process-wide plane cache the simulator uses by
// default.
var SharedPlanes = NewPlaneCache(0)

func init() {
	SharedPlanes.RegisterMetrics(metrics.Default, "sim_plane")
}

const (
	planeFNVOffset = 14695981039346656037
	planeFNVPrime  = 1099511628211
)

// planeKeyOf hashes everything the plane build reads: the back-end and
// width (in the clear), the lowering geometry, the layer parameters the
// coords/Act mapping consults, and the full input activation tensor.
func planeKeyOf(lw *nn.Lowered, be backend.Backend, w fixed.Width) planeKey {
	h1, h2 := uint64(planeFNVOffset), uint64(5381)
	mix := func(v int64) {
		for i := 0; i < 8; i++ {
			h1 ^= uint64(byte(v >> (8 * i)))
			h1 *= planeFNVPrime
		}
		h2 = h2*33 + uint64(v) + (h2 >> 27)
	}
	l := lw.Layer()
	mix(int64(lw.Kind))
	mix(int64(lw.Lanes))
	mix(int64(lw.Steps))
	mix(int64(lw.WindowCount))
	mix(int64(l.C))
	mix(int64(l.R))
	mix(int64(l.S))
	mix(int64(l.Stride))
	mix(int64(l.Pad))
	mix(int64(l.Groups))
	in := lw.Input()
	for _, d := range in.Shape {
		mix(int64(d))
	}
	for _, v := range in.Data {
		mix(int64(v))
	}
	return planeKey{h1: h1, h2: h2, be: be.Name(), width: w, group: -1}
}

// get returns the memoized plane for (lw, be, w), building and storing it
// on first use. ct must be the cost table of (be, w); it is consulted only
// on a fill. This is the single-plane entry point for row-invariant
// layers; grouped layers go through getKeyed with a precomputed base key
// so the input tensor is hashed once per layer, not once per act group.
func (c *PlaneCache) get(lw *nn.Lowered, be backend.Backend, w fixed.Width, ct *costTable) *costPlane {
	return c.getKeyed(planeKeyOf(lw, be, w), lw, ct, 0)
}

// getKeyed is get with the key fully formed by the caller: key.group is
// -1 for row-invariant layers and the act group index otherwise, and
// actGroup is the group a fill builds from. Grouped events additionally
// tick the sim_plane_group_* counters.
func (c *PlaneCache) getKeyed(key planeKey, lw *nn.Lowered, ct *costTable, actGroup int) *costPlane {
	grouped := key.group >= 0
	s := c.stripe(key.h1)
	s.mu.Lock()
	e, ok := s.m[key]
	if ok {
		c.hits.Add(1)
		if grouped {
			c.groupHits.Add(1)
		}
	} else {
		c.misses.Add(1)
		if grouped {
			c.groupBuilds.Add(1)
		}
		e = &planeEntry{}
		s.m[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.plane = buildPlane(lw, ct, actGroup)
		s.mu.Lock()
		// Account the bytes only if the entry is still resident: an overflow
		// drop that raced this build already discarded it from the map, and
		// the builder's reference keeps the plane alive for its caller alone.
		live := false
		if cur, ok := s.m[key]; ok && cur == e {
			live = true
			c.bytes.Add(e.plane.sizeBytes())
		}
		over := c.bytes.Load() > c.maxBytes
		s.mu.Unlock()
		if live && over {
			c.evictAllBut(key, e)
		}
	})
	return e.plane
}

// evictAllBut is the overflow drop: everything except the inserting entry
// goes, each dropped entry counting one eviction. It locks every stripe —
// overflow is rare by construction (the default budget holds a whole
// multi-model sweep), so the hot lookup path never pays for this.
func (c *PlaneCache) evictAllBut(key planeKey, e *planeEntry) {
	for i := range c.stripes {
		c.stripes[i].mu.Lock()
	}
	// Re-check under full lock: a concurrent drop may already have fixed
	// the budget (and possibly discarded our entry with it).
	if c.bytes.Load() > c.maxBytes {
		var dropped int64
		for i := range c.stripes {
			s := &c.stripes[i]
			for k2, e2 := range s.m {
				if k2 == key && e2 == e {
					continue
				}
				dropped++
				if k2.group >= 0 {
					c.groupEvictions.Add(1)
				}
				delete(s.m, k2)
			}
		}
		c.evictions.Add(dropped)
		// The only survivor is the inserting entry (if still resident); any
		// dropped in-flight build skips its accounting via the live-check.
		var resident int64
		if cur, ok := c.stripe(key.h1).m[key]; ok && cur == e {
			resident = e.plane.sizeBytes()
		}
		c.bytes.Store(resident)
	}
	for i := len(c.stripes) - 1; i >= 0; i-- {
		c.stripes[i].mu.Unlock()
	}
}

// PlaneCacheStats is a plane cache's lifetime counters and current
// residency. Evictions counts individual entries dropped by the overflow
// policy. A hit may still wait for the plane to finish building (the
// single-flight case); it never duplicates the build.
type PlaneCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64

	// Grouped-plane (row-variant layer) slices of the same events.
	GroupBuilds    int64
	GroupHits      int64
	GroupEvictions int64
}

// Stats reports lifetime hit/miss/eviction counters and current residency.
func (c *PlaneCache) Stats() PlaneCacheStats {
	n := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return PlaneCacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Entries:        n,
		Bytes:          c.bytes.Load(),
		GroupBuilds:    c.groupBuilds.Load(),
		GroupHits:      c.groupHits.Load(),
		GroupEvictions: c.groupEvictions.Load(),
	}
}

// RegisterMetrics exposes the cache's counters in the registry as
// <prefix>_{hits,misses,evictions,entries,bytes}, read live at snapshot
// time.
func (c *PlaneCache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Func(prefix+"_hits", c.hits.Load)
	r.Func(prefix+"_misses", c.misses.Load)
	r.Func(prefix+"_evictions", c.evictions.Load)
	r.Func(prefix+"_entries", func() int64 { return int64(c.Stats().Entries) })
	r.Func(prefix+"_bytes", c.bytes.Load)
	r.Func(prefix+"_group_builds", c.groupBuilds.Load)
	r.Func(prefix+"_group_hits", c.groupHits.Load)
	r.Func(prefix+"_group_evictions", c.groupEvictions.Load)
}

// Reset drops every entry and zeroes the counters. The dropped entries are
// deliberate, not capacity pressure, so they do not count as evictions.
func (c *PlaneCache) Reset() {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		s.m = make(map[planeKey]*planeEntry)
		s.mu.Unlock()
	}
	c.bytes.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.groupBuilds.Store(0)
	c.groupHits.Store(0)
	c.groupEvictions.Store(0)
}
