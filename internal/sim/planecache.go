package sim

import (
	"sync"
	"sync/atomic"

	"bittactical/internal/backend"
	"bittactical/internal/fixed"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
)

// PlaneCache memoizes activation cost planes, mirroring sched.Cache for the
// other half of the sweep workload: schedules are keyed on weights, planes
// on activations. The key spells out why planes are shareable — a plane
// depends on the input activations, the lowering geometry (the coords map
// from (window, step, lane) to the tensor), the back-end kind, and the
// datapath width, but NOT on the connectivity pattern, scheduler, tile
// geometry, or weights — so a Figure-8b-style sweep of L<h,d>/T<h,d>
// configs over one model builds each layer's plane once per back-end and
// shares it across every pattern, both within one tclserve /v1/simulate
// request and across requests (or tclsim experiment runs) through
// SharedPlanes. Width is in the key because an 8-bit plane costs the same
// value differently than a 16-bit one.
//
// Unlike sched.Cache, fills are single-flighted: a plane is megabytes of
// work, so concurrent requesters of the same key (two sweep configs hitting
// the same layer in the pool) wait on the first builder's sync.Once instead
// of racing to duplicate the build.
type PlaneCache struct {
	mu       sync.Mutex
	m        map[planeKey]*planeEntry
	bytes    int64
	maxBytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// Grouped-plane counters: the same events, restricted to planes of
	// row-variant layers (act group in the key). They answer the question
	// the aggregate counters cannot: is the grouped/depthwise fast path
	// actually being taken, and is it churning the budget?
	groupBuilds    atomic.Int64
	groupHits      atomic.Int64
	groupEvictions atomic.Int64
}

// planeEntry single-flights one plane build: the creator runs the Once body;
// later requesters of the same key block on it and share the result.
type planeEntry struct {
	once  sync.Once
	plane *costPlane
}

// planeKey identifies one (layer activations+geometry, act group,
// back-end, width) tuple. Two independent 64-bit hash streams over the
// full content make an accidental collision implausible at any realistic
// cache size. The back-end rides in the key by registry name, in the
// clear: any two registered back-ends — including plugins the engine has
// never heard of — key distinct planes at the same width. The act group
// rides in the clear too (-1 for row-invariant layers, the group index
// for grouped/depthwise), so a grouped layer's planes share one content
// hash instead of re-hashing the input tensor per group.
type planeKey struct {
	h1, h2 uint64
	be     string
	width  fixed.Width
	group  int
}

// defaultPlaneCacheBytes bounds resident plane bytes. Planes are large (a
// full-size conv layer is megabytes), so unlike the schedule cache the
// budget is in bytes, not entries; the default holds every layer of a
// multi-model sweep at the evaluation scales while capping worst-case
// memory. On overflow the cache drops everything but the entry being
// inserted and refills — correct, bounded, trivial.
const defaultPlaneCacheBytes = 256 << 20

// NewPlaneCache returns an empty cache. maxBytes <= 0 selects the default
// budget.
func NewPlaneCache(maxBytes int64) *PlaneCache {
	if maxBytes <= 0 {
		maxBytes = defaultPlaneCacheBytes
	}
	return &PlaneCache{m: make(map[planeKey]*planeEntry), maxBytes: maxBytes}
}

// SharedPlanes is the process-wide plane cache the simulator uses by
// default.
var SharedPlanes = NewPlaneCache(0)

func init() {
	SharedPlanes.RegisterMetrics(metrics.Default, "sim_plane")
}

const (
	planeFNVOffset = 14695981039346656037
	planeFNVPrime  = 1099511628211
)

// planeKeyOf hashes everything the plane build reads: the back-end and
// width (in the clear), the lowering geometry, the layer parameters the
// coords/Act mapping consults, and the full input activation tensor.
func planeKeyOf(lw *nn.Lowered, be backend.Backend, w fixed.Width) planeKey {
	h1, h2 := uint64(planeFNVOffset), uint64(5381)
	mix := func(v int64) {
		for i := 0; i < 8; i++ {
			h1 ^= uint64(byte(v >> (8 * i)))
			h1 *= planeFNVPrime
		}
		h2 = h2*33 + uint64(v) + (h2 >> 27)
	}
	l := lw.Layer()
	mix(int64(lw.Kind))
	mix(int64(lw.Lanes))
	mix(int64(lw.Steps))
	mix(int64(lw.WindowCount))
	mix(int64(l.C))
	mix(int64(l.R))
	mix(int64(l.S))
	mix(int64(l.Stride))
	mix(int64(l.Pad))
	mix(int64(l.Groups))
	in := lw.Input()
	for _, d := range in.Shape {
		mix(int64(d))
	}
	for _, v := range in.Data {
		mix(int64(v))
	}
	return planeKey{h1: h1, h2: h2, be: be.Name(), width: w, group: -1}
}

// get returns the memoized plane for (lw, be, w), building and storing it
// on first use. ct must be the cost table of (be, w); it is consulted only
// on a fill. This is the single-plane entry point for row-invariant
// layers; grouped layers go through getKeyed with a precomputed base key
// so the input tensor is hashed once per layer, not once per act group.
func (c *PlaneCache) get(lw *nn.Lowered, be backend.Backend, w fixed.Width, ct *costTable) *costPlane {
	return c.getKeyed(planeKeyOf(lw, be, w), lw, ct, 0)
}

// getKeyed is get with the key fully formed by the caller: key.group is
// -1 for row-invariant layers and the act group index otherwise, and
// actGroup is the group a fill builds from. Grouped events additionally
// tick the sim_plane_group_* counters.
func (c *PlaneCache) getKeyed(key planeKey, lw *nn.Lowered, ct *costTable, actGroup int) *costPlane {
	grouped := key.group >= 0
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		c.hits.Add(1)
		if grouped {
			c.groupHits.Add(1)
		}
	} else {
		c.misses.Add(1)
		if grouped {
			c.groupBuilds.Add(1)
		}
		e = &planeEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.plane = buildPlane(lw, ct, actGroup)
		c.mu.Lock()
		// Account the bytes only if the entry is still resident: an overflow
		// drop that raced this build already discarded it from the map, and
		// the builder's reference keeps the plane alive for its caller alone.
		if cur, live := c.m[key]; live && cur == e {
			c.bytes += e.plane.sizeBytes()
			if c.bytes > c.maxBytes {
				c.evictions.Add(int64(len(c.m) - 1))
				for k2 := range c.m {
					if k2 != key && k2.group >= 0 {
						c.groupEvictions.Add(1)
					}
				}
				c.m = map[planeKey]*planeEntry{key: e}
				c.bytes = e.plane.sizeBytes()
			}
		}
		c.mu.Unlock()
	})
	return e.plane
}

// PlaneCacheStats is a plane cache's lifetime counters and current
// residency. Evictions counts individual entries dropped by the overflow
// policy. A hit may still wait for the plane to finish building (the
// single-flight case); it never duplicates the build.
type PlaneCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64

	// Grouped-plane (row-variant layer) slices of the same events.
	GroupBuilds    int64
	GroupHits      int64
	GroupEvictions int64
}

// Stats reports lifetime hit/miss/eviction counters and current residency.
func (c *PlaneCache) Stats() PlaneCacheStats {
	c.mu.Lock()
	n, b := len(c.m), c.bytes
	c.mu.Unlock()
	return PlaneCacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Entries:        n,
		Bytes:          b,
		GroupBuilds:    c.groupBuilds.Load(),
		GroupHits:      c.groupHits.Load(),
		GroupEvictions: c.groupEvictions.Load(),
	}
}

// RegisterMetrics exposes the cache's counters in the registry as
// <prefix>_{hits,misses,evictions,entries,bytes}, read live at snapshot
// time.
func (c *PlaneCache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.Func(prefix+"_hits", c.hits.Load)
	r.Func(prefix+"_misses", c.misses.Load)
	r.Func(prefix+"_evictions", c.evictions.Load)
	r.Func(prefix+"_entries", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.m))
	})
	r.Func(prefix+"_bytes", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.bytes
	})
	r.Func(prefix+"_group_builds", c.groupBuilds.Load)
	r.Func(prefix+"_group_hits", c.groupHits.Load)
	r.Func(prefix+"_group_evictions", c.groupEvictions.Load)
}

// Reset drops every entry and zeroes the counters. The dropped entries are
// deliberate, not capacity pressure, so they do not count as evictions.
func (c *PlaneCache) Reset() {
	c.mu.Lock()
	c.m = make(map[planeKey]*planeEntry)
	c.bytes = 0
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.groupBuilds.Store(0)
	c.groupHits.Store(0)
	c.groupEvictions.Store(0)
}
