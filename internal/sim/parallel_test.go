package sim

import (
	"reflect"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// table2Configs is the Table-2 design family the determinism tests sweep:
// the dense baseline, front-end-only skipping, both serial back-ends with
// and without a front-end, and a second pattern shape.
func table2Configs() []arch.Config {
	return []arch.Config{
		arch.DaDianNaoPP(),
		arch.FrontEndOnly(sched.T(2, 5)),
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
		arch.NewTCL(sched.L(1, 6), arch.TCLe),
		arch.NewTCL(sched.L(2, 5), arch.TCLp),
		arch.NewTCL(sched.Pattern{}, arch.TCLe), // Pragmatic-like
		arch.NewTCL(sched.Pattern{}, arch.TCLp), // Dynamic-Stripes-like
	}
}

// buildDeterminismModel instantiates a small zoo model whose layer mix
// covers conv, depthwise/grouped, and FC lowering paths.
func buildDeterminismModel(t *testing.T, name string) *nn.Model {
	t.Helper()
	cfg := nn.DefaultZoo()
	cfg.ChannelScale, cfg.SpatialScale = 0.1, 0.2
	m, err := nn.BuildModel(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestParallelDeterminism asserts the engine's central contract: any
// Parallelism, with or without the schedule cache, produces results
// bit-identical to the inline serial engine, across every Table-2 config
// and two activation seeds.
func TestParallelDeterminism(t *testing.T) {
	for _, modelName := range []string{"AlexNet-ES", "MobileNet"} {
		m := buildDeterminismModel(t, modelName)
		for _, seed := range []int64{7, 13} {
			acts := m.GenerateActs(seed)
			for _, cfg := range table2Configs() {
				serial, err := SimulateModelOpts(cfg, m, acts, Options{Parallelism: 1, DisableCache: true})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", modelName, cfg.Name, seed, err)
				}
				for _, par := range []int{1, 2, 8} {
					got, err := SimulateModelOpts(cfg, m, acts, Options{Parallelism: par, Cache: sched.NewCache(0)})
					if err != nil {
						t.Fatalf("%s/%s seed %d par %d: %v", modelName, cfg.Name, seed, par, err)
					}
					if !reflect.DeepEqual(serial, got) {
						t.Errorf("%s/%s seed %d: Parallelism=%d result differs from serial",
							modelName, cfg.Name, seed, par)
					}
				}
			}
		}
	}
}

// TestScheduleCacheSharedAcrossBackEnds asserts the memoization win the
// cache exists for: TCLp and TCLe differ only in the back-end, so the
// second simulation of the same layer group hits every schedule the first
// one computed.
func TestScheduleCacheSharedAcrossBackEnds(t *testing.T) {
	lw := testConv(t, 11, 40, 24, 3, 3, 6, 0.6, 0.4)
	cache := sched.NewCache(0)
	p := SimulateLayerOpts(arch.NewTCL(sched.T(2, 5), arch.TCLp), lw, Options{Cache: cache})
	st := cache.Stats()
	if st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("first run: hits=%d misses=%d, want cold misses only", st.Hits, st.Misses)
	}
	e := SimulateLayerOpts(arch.NewTCL(sched.T(2, 5), arch.TCLe), lw, Options{Cache: cache})
	st2 := cache.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("TCLe re-scheduled %d groups the TCLp run already cached", st2.Misses-st.Misses)
	}
	if st2.Hits != st.Misses {
		t.Errorf("TCLe hit %d cached groups, want all %d", st2.Hits, st.Misses)
	}
	// Front-end results are back-end independent; the shared schedules must
	// reproduce the same slot census.
	if !reflect.DeepEqual(p.FrontEnd, e.FrontEnd) {
		t.Error("cached schedules changed the front-end census across back-ends")
	}
	// And a cached re-run of the identical config is bit-identical.
	p2 := SimulateLayerOpts(arch.NewTCL(sched.T(2, 5), arch.TCLp), lw, Options{Cache: cache})
	if !reflect.DeepEqual(p, p2) {
		t.Error("cache hit changed the simulation result")
	}
}

// TestSubGroupChunkDeterminism pins the fig8b fix: layers that lower to a
// single filter group (or just a few) split below the group grain into
// window chunks, and the stitched result must stay bit-identical to serial
// at every worker count — including counts that do not divide the layer's
// window-group count evenly, which exercises uneven chunk boundaries and a
// partial final window group.
func TestSubGroupChunkDeterminism(t *testing.T) {
	lws := []*nn.Lowered{
		// 12 filters < FiltersPerTile: exactly one group, many windows.
		testConv(t, 31, 12, 24, 3, 3, 7, 0.6, 0.4),
		// Depthwise single group, row-variant activation fetch.
		testDW(t, 32, 14, 7),
		// FC: windows = timesteps, fewer windows than a full tile column set.
		testFC(t, 33, 12, 64, 6, 0.7),
	}
	for _, lw := range lws {
		for _, cfg := range table2Configs() {
			want := SimulateLayerOpts(cfg, lw, Options{Parallelism: 1, DisableCache: true})
			for _, par := range []int{2, 3, 5, 8, 16} {
				got := SimulateLayerOpts(cfg, lw, Options{Parallelism: par, DisableCache: true})
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s: Parallelism=%d chunked result differs from serial",
						lw.Name, cfg.Name, par)
				}
			}
		}
	}
}

// TestParallelLayerMatchesSerial covers the direct SimulateLayerOpts path
// on hand-built layers, including the row-variant depthwise lowering whose
// cost grid optimization must not change the census.
func TestParallelLayerMatchesSerial(t *testing.T) {
	lws := []*nn.Lowered{
		testConv(t, 21, 40, 24, 3, 3, 6, 0.6, 0.4),
		testFC(t, 22, 40, 64, 18, 0.7),
		testDW(t, 23, 40, 5),
	}
	for _, lw := range lws {
		for _, cfg := range table2Configs() {
			want := SimulateLayerOpts(cfg, lw, Options{Parallelism: 1, DisableCache: true})
			got := SimulateLayerOpts(cfg, lw, Options{Parallelism: 8, Cache: sched.NewCache(0)})
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: parallel layer result differs from serial", lw.Name, cfg.Name)
			}
		}
	}
}
