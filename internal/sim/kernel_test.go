package sim

import (
	"math/rand"
	"testing"
)

// randColumn generates one (cost, mask) pair respecting the kernel
// invariants: costs <= maxLaneCost in a padLanes-sized buffer with zero
// padding, mask bytes exactly 0x00 or 0xFF with zero padding.
func randColumn(rng *rand.Rand, lanes int) ([]uint8, []uint64) {
	cost := make([]uint8, padLanes(lanes))
	mask := make([]uint64, laneWords(lanes))
	for ln := 0; ln < lanes; ln++ {
		cost[ln] = uint8(rng.Intn(maxLaneCost + 1))
		if rng.Intn(2) == 0 {
			mask[ln>>3] |= 0xff << (8 * uint(ln&7))
		}
	}
	return cost, mask
}

func TestColumnMaxMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Lane counts straddling the word size, including non-multiples of 8
	// (the padding path) and the 16-lane Table-2 geometry.
	for _, lanes := range []int{1, 2, 7, 8, 9, 15, 16, 17, 24, 33, 64} {
		for trial := 0; trial < 2000; trial++ {
			cost, mask := randColumn(rng, lanes)
			got, want := columnMax(cost, mask), columnMaxScalar(cost, mask)
			if got != want {
				t.Fatalf("lanes=%d trial=%d: columnMax=%d, scalar=%d (cost=%v mask=%x)",
					lanes, trial, got, want, cost, mask)
			}
		}
	}
}

func TestColumnMaxEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  func(cost []uint8, mask []uint64)
		want int
	}{
		{"empty mask floors at 1", func(cost []uint8, mask []uint64) {
			for i := range cost {
				cost[i] = maxLaneCost
			}
		}, 1},
		{"all zero costs floor at 1", func(cost []uint8, mask []uint64) {
			copy(mask, fullLaneMask(16))
		}, 1},
		{"max cost survives", func(cost []uint8, mask []uint64) {
			copy(mask, fullLaneMask(16))
			cost[15] = maxLaneCost
		}, maxLaneCost},
		{"masked-out max is ignored", func(cost []uint8, mask []uint64) {
			copy(mask, fullLaneMask(16))
			cost[3] = maxLaneCost
			mask[0] &^= 0xff << (8 * 3)
			cost[9] = 5
		}, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cost := make([]uint8, padLanes(16))
			mask := make([]uint64, laneWords(16))
			tc.set(cost, mask)
			if got := columnMax(cost, mask); got != tc.want {
				t.Fatalf("columnMax=%d, want %d", got, tc.want)
			}
			if got := columnMaxScalar(cost, mask); got != tc.want {
				t.Fatalf("columnMaxScalar=%d, want %d", got, tc.want)
			}
		})
	}
}

func TestByteMax(t *testing.T) {
	// Exhaustive over all 7-bit byte pairs, in every byte position at once:
	// lane 0..7 carry (a, b), (a+1, b+1), ... so each position exercises a
	// different pair in the same word.
	for a := 0; a <= maxLaneCost; a++ {
		for b := 0; b <= maxLaneCost; b++ {
			var wa, wb, want uint64
			for i := 0; i < 8; i++ {
				ba := uint64((a + i) % (maxLaneCost + 1))
				bb := uint64((b + 7 - i) % (maxLaneCost + 1))
				wa |= ba << (8 * i)
				wb |= bb << (8 * i)
				m := ba
				if bb > ba {
					m = bb
				}
				want |= m << (8 * i)
			}
			if got := byteMax(wa, wb); got != want {
				t.Fatalf("byteMax(%#x, %#x) = %#x, want %#x", wa, wb, got, want)
			}
		}
	}
}

func TestFullLaneMask(t *testing.T) {
	for _, lanes := range []int{1, 7, 8, 9, 16, 20} {
		mask := fullLaneMask(lanes)
		if len(mask) != laneWords(lanes) {
			t.Fatalf("lanes=%d: %d words, want %d", lanes, len(mask), laneWords(lanes))
		}
		for ln := 0; ln < padLanes(lanes); ln++ {
			b := mask[ln>>3] >> (8 * uint(ln&7)) & 0xff
			want := uint64(0)
			if ln < lanes {
				want = 0xff
			}
			if b != want {
				t.Fatalf("lanes=%d lane=%d: byte %#x, want %#x", lanes, ln, b, want)
			}
		}
	}
}

// FuzzColumnMaxSWAR pins the SWAR kernel bit-identical to the scalar
// reference over arbitrary lane counts, costs, and participation sets.
func FuzzColumnMaxSWAR(f *testing.F) {
	f.Add(uint8(16), []byte{3, 0, 127, 9}, []byte{0b1011})
	f.Add(uint8(1), []byte{}, []byte{})
	f.Add(uint8(33), []byte{255, 128, 127, 1, 0}, []byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, nLanes uint8, costBytes, maskBits []byte) {
		lanes := int(nLanes)%64 + 1
		cost := make([]uint8, padLanes(lanes))
		mask := make([]uint64, laneWords(lanes))
		for ln := 0; ln < lanes; ln++ {
			if ln < len(costBytes) {
				// Clamp into the kernel's documented 7-bit domain.
				cost[ln] = costBytes[ln] & maxLaneCost
			}
			if ln < 8*len(maskBits) && maskBits[ln>>3]>>(uint(ln)&7)&1 != 0 {
				mask[ln>>3] |= 0xff << (8 * uint(ln&7))
			}
		}
		if got, want := columnMax(cost, mask), columnMaxScalar(cost, mask); got != want {
			t.Fatalf("lanes=%d: columnMax=%d, scalar=%d (cost=%v mask=%x)", lanes, got, want, cost, mask)
		}
	})
}

// benchColumns is the kernel benchmark workload: 256 distinct (cost, mask)
// pairs at the Table-2 lane count, cycled per op so the scalar loop's
// data-dependent branch cannot settle into a predicted pattern.
func benchColumns(lanes int) ([][]uint8, [][]uint64) {
	rng := rand.New(rand.NewSource(7))
	const n = 256
	costs := make([][]uint8, n)
	masks := make([][]uint64, n)
	for i := range costs {
		costs[i], masks[i] = randColumn(rng, lanes)
	}
	return costs, masks
}

func BenchmarkColumnMaxSWAR(b *testing.B) {
	costs, masks := benchColumns(16)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		j := i & 255
		sink += columnMax(costs[j], masks[j])
	}
	benchSink = sink
}

func BenchmarkColumnMaxScalar(b *testing.B) {
	costs, masks := benchColumns(16)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		j := i & 255
		sink += columnMaxScalar(costs[j], masks[j])
	}
	benchSink = sink
}

// benchSink defeats dead-code elimination of the benchmark loops.
var benchSink int
