// External test package: the emitter delegates to internal/bench, which
// imports sim — an internal test file would close an import cycle.
package sim_test

import (
	"os"
	"testing"

	"bittactical/internal/bench"
)

// TestEmitBenchKernel regenerates BENCH_kernel.json at the repo root
// through the shared internal/bench kernel suite: SWAR vs scalar
// column-max per lane count over the randomized 256-column workload.
// Gated behind TCL_BENCH_KERNEL=1 (`make bench-kernel`); TCL_BENCH_FORCE=1
// overrides the contended-baseline refusal.
func TestEmitBenchKernel(t *testing.T) {
	if os.Getenv("TCL_BENCH_KERNEL") == "" {
		t.Skip("set TCL_BENCH_KERNEL=1 to regenerate BENCH_kernel.json")
	}
	f, err := bench.RunKernel(t.Logf, bench.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteBaseline("../../BENCH_kernel.json", f, os.Getenv("TCL_BENCH_FORCE") != ""); err != nil {
		t.Fatal(err)
	}
}
