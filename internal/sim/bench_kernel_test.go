package sim

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestEmitBenchKernel regenerates BENCH_kernel.json at the repo root: SWAR
// vs scalar column-max ns/op and allocs/op per lane count, plus the
// speedup, over the randomized 256-column workload. Gated behind
// TCL_BENCH_KERNEL=1 (`make bench-kernel`).
func TestEmitBenchKernel(t *testing.T) {
	if os.Getenv("TCL_BENCH_KERNEL") == "" {
		t.Skip("set TCL_BENCH_KERNEL=1 to regenerate BENCH_kernel.json")
	}
	type record struct {
		Lanes        int     `json:"lanes"`
		SWARNsPerOp  float64 `json:"swar_ns_per_op"`
		SWARAllocs   int64   `json:"swar_allocs_per_op"`
		ScalarNsOp   float64 `json:"scalar_ns_per_op"`
		ScalarAllocs int64   `json:"scalar_allocs_per_op"`
		Speedup      float64 `json:"swar_speedup_vs_scalar"`
	}
	out := struct {
		Generated  string   `json:"generated"`
		GoMaxProcs int      `json:"go_max_procs"`
		NumCPU     int      `json:"num_cpu"`
		Workload   string   `json:"workload"`
		Benchmarks []record `json:"benchmarks"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload:   "256 random (cost, mask) columns cycled per op",
	}
	for _, lanes := range []int{8, 16, 32, 64} {
		costs, masks := benchColumns(lanes)
		var sink int
		swar := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i & 255
				sink += columnMax(costs[j], masks[j])
			}
		})
		scalar := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i & 255
				sink += columnMaxScalar(costs[j], masks[j])
			}
		})
		benchSink = sink
		nsOp := func(r testing.BenchmarkResult) float64 {
			if r.N <= 0 {
				return 0
			}
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		rec := record{
			Lanes:        lanes,
			SWARNsPerOp:  nsOp(swar),
			SWARAllocs:   int64(swar.AllocsPerOp()),
			ScalarNsOp:   nsOp(scalar),
			ScalarAllocs: int64(scalar.AllocsPerOp()),
		}
		if rec.SWARNsPerOp > 0 {
			rec.Speedup = rec.ScalarNsOp / rec.SWARNsPerOp
		}
		out.Benchmarks = append(out.Benchmarks, rec)
		t.Logf("lanes=%d: SWAR %.2f ns/op (%d allocs), scalar %.2f ns/op (%d allocs), %.2fx",
			lanes, rec.SWARNsPerOp, rec.SWARAllocs, rec.ScalarNsOp, rec.ScalarAllocs, rec.Speedup)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_kernel.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
