package sim

import "bittactical/internal/sched"

// Breakdown is the Figure 9 (h)–(n) lane-time census: how every
// lane-duration unit of the back-end was spent, in lane-cycles.
type Breakdown struct {
	// Useful: serial cycles a lane spent on its own effectual work.
	Useful int64
	// ColumnSync: idle cycles waiting for the slowest lane of the same PE
	// (same window) — "Column Sync".
	ColumnSync int64
	// TileSync: idle cycles waiting for the slowest PE of the tile (other
	// windows / rows) — "Tile Sync".
	TileSync int64
	// AZero: lane-cycles burnt on an effectual weight paired with a zero
	// activation ("A Zero").
	AZero int64
	// WZero: lane-cycles burnt on an unfilled zero-weight slot whose
	// activation was non-zero ("W Zero").
	WZero int64
	// BothZero: lane-cycles where both weight and activation were zero.
	BothZero int64
}

// Total returns the census denominator.
func (b Breakdown) Total() int64 {
	return b.Useful + b.ColumnSync + b.TileSync + b.AZero + b.WZero + b.BothZero
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Useful += o.Useful
	b.ColumnSync += o.ColumnSync
	b.TileSync += o.TileSync
	b.AZero += o.AZero
	b.WZero += o.WZero
	b.BothZero += o.BothZero
}

// Activity counts the datapath events the energy model prices.
type Activity struct {
	// SerialLaneCycles: lane-cycles doing real serial work (shift-add for
	// TCLe, bit-AND-add for TCLp).
	SerialLaneCycles int64
	// ParallelMACs: full-width multiplies (bit-parallel back-ends).
	ParallelMACs int64
	// WSColumnReads: weight-scratchpad column reads (one per schedule column
	// per window-group round, amortized over psum registers).
	WSColumnReads int64
	// ActReads: activation values fetched from the activation buffer.
	ActReads int64
	// MuxSelects: activation multiplexer switch events.
	MuxSelects int64
	// PsumAccesses: partial-sum register read+write pairs.
	PsumAccesses int64
	// OffsetEncodes: activations pushed through the TCLe offset generator.
	OffsetEncodes int64
}

// Add accumulates another activity set.
func (a *Activity) Add(o Activity) {
	a.SerialLaneCycles += o.SerialLaneCycles
	a.ParallelMACs += o.ParallelMACs
	a.WSColumnReads += o.WSColumnReads
	a.ActReads += o.ActReads
	a.MuxSelects += o.MuxSelects
	a.PsumAccesses += o.PsumAccesses
	a.OffsetEncodes += o.OffsetEncodes
}

// LayerResult is one layer's simulation outcome.
type LayerResult struct {
	Name string
	// Cycles is this configuration's execution time; DenseCycles is the
	// DaDianNao++ time for the same layer (the normalization basis).
	Cycles      int64
	DenseCycles int64
	// MACs is the layer's dense MAC count.
	MACs int64
	// FrontEnd is the schedule slot census (Figure 9 (a)–(g)).
	FrontEnd sched.Stats
	// BackEnd is the lane-time census (Figure 9 (h)–(n)); zero for
	// bit-parallel back-ends.
	BackEnd Breakdown
	// Activity drives the energy model.
	Activity Activity
}

// Speedup returns DenseCycles/Cycles.
func (r LayerResult) Speedup() float64 {
	if r.Cycles == 0 {
		return 1
	}
	return float64(r.DenseCycles) / float64(r.Cycles)
}

// Result aggregates a network.
type Result struct {
	Config string
	Layers []LayerResult
}

// TotalCycles sums layer cycles.
func (r *Result) TotalCycles() int64 {
	var t int64
	for _, l := range r.Layers {
		t += l.Cycles
	}
	return t
}

// TotalDenseCycles sums baseline cycles.
func (r *Result) TotalDenseCycles() int64 {
	var t int64
	for _, l := range r.Layers {
		t += l.DenseCycles
	}
	return t
}

// Speedup is the network-level speedup over the dense baseline.
func (r *Result) Speedup() float64 {
	c := r.TotalCycles()
	if c == 0 {
		return 1
	}
	return float64(r.TotalDenseCycles()) / float64(c)
}

// BackEnd aggregates the lane-time census over layers.
func (r *Result) BackEnd() Breakdown {
	var b Breakdown
	for _, l := range r.Layers {
		b.Add(l.BackEnd)
	}
	return b
}

// FrontEnd aggregates the schedule slot census over layers.
func (r *Result) FrontEnd() sched.Stats {
	var s sched.Stats
	for _, l := range r.Layers {
		s.Columns += l.FrontEnd.Columns
		s.DenseSteps += l.FrontEnd.DenseSteps
		for i := range s.Slots {
			s.Slots[i] += l.FrontEnd.Slots[i]
		}
	}
	return s
}

// Activity aggregates datapath events over layers.
func (r *Result) Activity() Activity {
	var a Activity
	for _, l := range r.Layers {
		a.Add(l.Activity)
	}
	return a
}
