package sim

import (
	"math/rand"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// testConv builds a small conv layer with pruned weights and mixed-sign
// activations, lowered at 16 lanes.
func testConv(t *testing.T, seed int64, k, c, r, s, in int, wSparsity, aZero float64) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := &nn.Layer{Name: "conv", Kind: nn.Conv, K: k, C: c, R: r, S: s, Stride: 1, Pad: 1, InH: in, InW: in}
	l.Weights = tensor.New(k, c, r, s)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, wSparsity)
	act := tensor.New(1, c, in, in)
	m := sparsity.ActModel{ZeroFrac: aZero, MeanLog2: 6, SigmaLog2: 2, NegFrac: 0.2}
	m.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

func testFC(t *testing.T, seed int64, k, c, steps int, wSparsity float64) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := &nn.Layer{Name: "fc", Kind: nn.FC, K: k, C: c, R: 1, S: 1, Timesteps: steps}
	l.Weights = tensor.New(k, c, 1, 1)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, wSparsity)
	w := 1
	if steps > 1 {
		w = steps
	}
	act := tensor.New(1, c, 1, w)
	m := sparsity.ActModel{ZeroFrac: 0.3, MeanLog2: 6, SigmaLog2: 2}
	m.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

func testDW(t *testing.T, seed int64, c, in int) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := &nn.Layer{Name: "dw", Kind: nn.Depthwise, K: c, C: c, R: 3, S: 3, Stride: 1, Pad: 1, InH: in, InW: in}
	l.Weights = tensor.New(c, 1, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.3)
	act := tensor.New(1, c, in, in)
	m := sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 6, SigmaLog2: 2}
	m.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

func allConfigs() []arch.Config {
	return []arch.Config{
		arch.DaDianNaoPP(),
		arch.FrontEndOnly(sched.T(2, 5)),
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
		arch.NewTCL(sched.L(1, 6), arch.TCLe),
		arch.NewTCL(sched.Pattern{}, arch.TCLe), // Pragmatic-like
		arch.NewTCL(sched.Pattern{}, arch.TCLp), // Dynamic-Stripes-like
	}
}

func TestGoldenConvAllConfigs(t *testing.T) {
	lw := testConv(t, 1, 20, 24, 3, 3, 6, 0.6, 0.4)
	for _, cfg := range allConfigs() {
		if err := ExecuteGolden(cfg, lw); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestGoldenFCAllConfigs(t *testing.T) {
	lw := testFC(t, 2, 20, 40, 18, 0.7)
	for _, cfg := range allConfigs() {
		if err := ExecuteGolden(cfg, lw); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestGoldenDepthwise(t *testing.T) {
	lw := testDW(t, 3, 20, 5)
	for _, cfg := range allConfigs() {
		if err := ExecuteGolden(cfg, lw); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestGoldenSingleWindowFC(t *testing.T) {
	lw := testFC(t, 4, 33, 64, 1, 0.5)
	for _, cfg := range allConfigs() {
		if err := ExecuteGolden(cfg, lw); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestDenseBaselineMatchesReference(t *testing.T) {
	// Simulating DaDianNao++ must yield exactly the DenseCycles reference.
	for _, lw := range []*nn.Lowered{
		testConv(t, 5, 20, 24, 3, 3, 6, 0.6, 0.4),
		testFC(t, 6, 20, 40, 18, 0.7),
		testDW(t, 7, 20, 5),
	} {
		r := SimulateLayer(arch.DaDianNaoPP(), lw)
		if r.Cycles != r.DenseCycles {
			t.Errorf("%s: baseline cycles %d != dense reference %d", lw.Name, r.Cycles, r.DenseCycles)
		}
		if r.Speedup() != 1.0 {
			t.Errorf("%s: baseline speedup %f != 1", lw.Name, r.Speedup())
		}
	}
}

func TestFrontEndSpeedupTracksSparsity(t *testing.T) {
	// Front-end-only speedup must grow with weight sparsity and never fall
	// below 1 (the schedule is never longer than dense).
	cfg := arch.FrontEndOnly(sched.T(2, 5))
	prev := 0.0
	for _, sp := range []float64{0.0, 0.5, 0.8} {
		lw := testConv(t, 8, 16, 32, 3, 3, 6, sp, 0.4)
		r := SimulateLayer(cfg, lw)
		got := r.Speedup()
		if got < 1.0 {
			t.Errorf("sparsity %.1f: front-end speedup %.3f < 1", sp, got)
		}
		if got < prev {
			t.Errorf("sparsity %.1f: speedup %.3f dropped below %.3f", sp, got, prev)
		}
		prev = got
	}
}

func TestBackEndsBeatBitParallelOnLowPrecision(t *testing.T) {
	// With small-magnitude activations, TCLp and TCLe must beat the
	// front-end-only configuration, and TCLe must beat TCLp (oneffsets ≤
	// precision bits).
	lw := testConv(t, 9, 32, 32, 3, 3, 8, 0.6, 0.4)
	fe := SimulateLayer(arch.FrontEndOnly(sched.T(2, 5)), lw).Speedup()
	p := SimulateLayer(arch.NewTCL(sched.T(2, 5), arch.TCLp), lw).Speedup()
	e := SimulateLayer(arch.NewTCL(sched.T(2, 5), arch.TCLe), lw).Speedup()
	if p <= fe {
		t.Errorf("TCLp %.2f should beat front-end-only %.2f", p, fe)
	}
	if e <= p {
		t.Errorf("TCLe %.2f should beat TCLp %.2f", e, p)
	}
}

func TestFrontEndBackEndNearMultiplicative(t *testing.T) {
	// Section 1: "the benefits of the front- and back-end are nearly
	// multiplicative". Allow generous tolerance for sync losses.
	lw := testConv(t, 10, 32, 32, 3, 3, 8, 0.7, 0.4)
	fe := SimulateLayer(arch.FrontEndOnly(sched.T(2, 5)), lw).Speedup()
	be := SimulateLayer(arch.NewTCL(sched.Pattern{}, arch.TCLe), lw).Speedup()
	both := SimulateLayer(arch.NewTCL(sched.T(2, 5), arch.TCLe), lw).Speedup()
	if both < 0.5*fe*be {
		t.Errorf("combined %.2f far below product %.2f × %.2f", both, fe, be)
	}
	if both > 1.3*fe*be {
		t.Errorf("combined %.2f implausibly above product %.2f × %.2f", both, fe, be)
	}
}

func TestBreakdownConservation(t *testing.T) {
	// The lane-time census must exactly cover rows×lanes×Σ(column duration)
	// summed over every window (W chosen as a multiple of the 16 columns).
	lw := testConv(t, 11, 20, 24, 3, 3, 7, 0.6, 0.4) // 7x7 in, pad 1 -> 7x7 out? stride1 pad1 k3: out 7 -> 49 windows
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	r := SimulateLayer(cfg, lw)
	if r.BackEnd.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
	if r.BackEnd.Useful == 0 {
		t.Error("no useful work recorded")
	}
	// All categories non-negative.
	for name, v := range map[string]int64{
		"useful": r.BackEnd.Useful, "colsync": r.BackEnd.ColumnSync,
		"tilesync": r.BackEnd.TileSync, "azero": r.BackEnd.AZero,
		"wzero": r.BackEnd.WZero, "bothzero": r.BackEnd.BothZero,
	} {
		if v < 0 {
			t.Errorf("%s negative: %d", name, v)
		}
	}
}

func TestBreakdownExactCoverage(t *testing.T) {
	// With a single filter group and W == wg, the census total equals
	// rows × lanes × wg × group cycles.
	lw := testConv(t, 12, 16, 24, 3, 3, 4, 0.5, 0.4) // out 4x4 = 16 windows
	if lw.WindowCount != 16 {
		t.Fatalf("want 16 windows, got %d", lw.WindowCount)
	}
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)
	r := SimulateLayer(cfg, lw)
	want := int64(cfg.FiltersPerTile) * int64(cfg.Lanes) * int64(cfg.WindowsPerTile) * r.Cycles
	if got := r.BackEnd.Total(); got != want {
		t.Errorf("census total %d != rows×lanes×wg×cycles %d", got, want)
	}
}

func TestFrontEndCensusConservation(t *testing.T) {
	lw := testConv(t, 13, 20, 20, 3, 3, 6, 0.6, 0.4)
	cfg := arch.FrontEndOnly(sched.T(2, 5))
	r := SimulateLayer(cfg, lw)
	var slots int64
	for _, v := range r.FrontEnd.Slots {
		slots += v
	}
	// Each column contributes rows(16) × lanes(16) slots (idle rows counted
	// as padding). Columns in the census are summed per filter.
	groups := (lw.Filters + 15) / 16
	perGroupCols := r.FrontEnd.Columns / lw.Filters // equal per filter within a group
	_ = groups
	if slots%int64(cfg.Lanes) != 0 {
		t.Errorf("census %d not a multiple of lane count", slots)
	}
	if perGroupCols == 0 {
		t.Error("no columns recorded")
	}
	// Effectual slots must equal the layer's non-zero weights.
	eff := r.FrontEnd.Slots[sched.SlotUnpromoted] + r.FrontEnd.Slots[sched.SlotLookahead] + r.FrontEnd.Slots[sched.SlotLookaside]
	if eff != int64(lw.Layer().Weights.NNZ()) {
		t.Errorf("effectual slots %d != nnz weights %d", eff, lw.Layer().Weights.NNZ())
	}
}

func TestPragmaticLikeIgnoresWeightSparsity(t *testing.T) {
	// Without a front-end, weight sparsity must not change cycles (the
	// value-agnostic schedule runs every column; only activations matter).
	rng := rand.New(rand.NewSource(14))
	mk := func(ws float64) *nn.Lowered {
		l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 16, C: 16, R: 3, S: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
		l.Weights = tensor.New(16, 16, 3, 3)
		sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, ws)
		act := tensor.New(1, 16, 8, 8)
		act.Fill(255) // uniform cost
		lw, _ := nn.Lower(l, act, 16)
		return lw
	}
	cfg := arch.NewTCL(sched.Pattern{}, arch.TCLe)
	a := SimulateLayer(cfg, mk(0.0)).Cycles
	b := SimulateLayer(cfg, mk(0.9)).Cycles
	if a != b {
		t.Errorf("no-front-end cycles vary with weight sparsity: %d vs %d", a, b)
	}
}

func TestTCLpCostIsGroupPrecision(t *testing.T) {
	// Uniform activations of value 255 need 8 bits: TCLp cycles per column
	// must be exactly 8× the bit-parallel count.
	rng := rand.New(rand.NewSource(15))
	l := &nn.Layer{Name: "c", Kind: nn.Conv, K: 16, C: 16, R: 1, S: 1, Stride: 1, Pad: 0, InH: 16, InW: 16}
	l.Weights = tensor.New(16, 16, 1, 1)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0)
	act := tensor.New(1, 16, 16, 16)
	act.Fill(255)
	lw, _ := nn.Lower(l, act, 16)
	r := SimulateLayer(arch.NewTCL(sched.Pattern{}, arch.TCLp), lw)
	// Dense: 1 column/window-group; 16 window groups ⇒ dense serial cycles
	// = 16 groups × 8 bits.
	if r.Cycles != 16*8 {
		t.Errorf("TCLp cycles = %d, want 128", r.Cycles)
	}
}

func TestReductionSplitFC(t *testing.T) {
	// A single-window FC on a 16-column tile splits the reduction: cycles
	// must be well below the serial single-column execution.
	lw := testFC(t, 16, 16, 512, 1, 0.0)
	cfg := arch.NewTCL(sched.Pattern{}, arch.TCLp)
	r := SimulateLayer(cfg, lw)
	// Single-column serial would cost ~32 columns × ~cost; split by 16.
	if r.Cycles >= r.DenseCycles*4 {
		t.Errorf("FC reduction split ineffective: %d cycles vs dense %d", r.Cycles, r.DenseCycles)
	}
}

func TestSimulateModelAggregates(t *testing.T) {
	cfg := nn.DefaultZoo()
	cfg.ChannelScale, cfg.SpatialScale = 0.1, 0.2
	m, err := nn.BuildModel("AlexNet-ES", cfg)
	if err != nil {
		t.Fatal(err)
	}
	acts := m.GenerateActs(1)
	res, err := SimulateModel(arch.NewTCL(sched.T(2, 5), arch.TCLe), m, acts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != len(m.Layers) {
		t.Fatalf("simulated %d of %d layers", len(res.Layers), len(m.Layers))
	}
	if res.Speedup() < 1.5 {
		t.Errorf("TCLe on sparse AlexNet-ES speedup %.2f implausibly low", res.Speedup())
	}
	if res.TotalCycles() <= 0 || res.TotalDenseCycles() <= res.TotalCycles() {
		t.Error("cycle totals inconsistent")
	}
}

func TestSimulateModelRejectsInvalidConfig(t *testing.T) {
	m, _ := nn.BuildModel("MobileNet", nn.DefaultZoo())
	acts := m.GenerateActs(1)
	bad := arch.DaDianNaoPP()
	bad.Tiles = 0
	if _, err := SimulateModel(bad, m, acts); err == nil {
		t.Error("accepted invalid config")
	}
}

func TestCostTableValues(t *testing.T) {
	e := newCostTable(arch.TCLe.Impl(), fixed.W16)
	if e.cost(0x008F) != 3 {
		t.Errorf("TCLe cost(0x8F) = %d, want 3", e.cost(0x008F))
	}
	if e.cost(0) != 0 {
		t.Error("TCLe cost(0) != 0")
	}
	if e.cost(-1) != 1 {
		t.Errorf("TCLe cost(-1) = %d, want 1", e.cost(-1))
	}
	p := newCostTable(arch.TCLp.Impl(), fixed.W16)
	if p.cost(0x008E) != 7 {
		t.Errorf("TCLp cost(0x8E) = %d, want 7", p.cost(0x008E))
	}
	bp := newCostTable(arch.BitParallel.Impl(), fixed.W16)
	if bp.cost(12345) != 1 || bp.cost(0) != 1 {
		t.Error("bit-parallel cost must be 1 for all values")
	}
	e8 := newCostTable(arch.TCLe.Impl(), fixed.W8)
	if e8.cost(127) != 2 { // 127 = +128-1
		t.Errorf("8b TCLe cost(127) = %d, want 2", e8.cost(127))
	}
}

func TestActivityCounts(t *testing.T) {
	lw := testConv(t, 17, 16, 16, 3, 3, 6, 0.5, 0.4)
	r := SimulateLayer(arch.NewTCL(sched.T(2, 5), arch.TCLe), lw)
	a := r.Activity
	if a.SerialLaneCycles <= 0 || a.WSColumnReads <= 0 || a.ActReads <= 0 ||
		a.MuxSelects <= 0 || a.PsumAccesses <= 0 || a.OffsetEncodes <= 0 {
		t.Errorf("activity has empty counters: %+v", a)
	}
	b := SimulateLayer(arch.DaDianNaoPP(), lw).Activity
	if b.ParallelMACs <= 0 {
		t.Error("baseline records no MACs")
	}
	if b.MuxSelects != 0 || b.OffsetEncodes != 0 {
		t.Error("baseline must not record TCL-only events")
	}
}

func TestGoldenGroupedConv(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	l := &nn.Layer{Name: "g", Kind: nn.Conv, K: 8, C: 32, R: 3, S: 3, Stride: 1,
		Pad: 1, InH: 5, InW: 5, Groups: 2}
	l.Weights = tensor.New(8, 16, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.5)
	act := tensor.New(1, 32, 5, 5)
	sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 6, SigmaLog2: 2}.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range allConfigs() {
		if err := ExecuteGolden(cfg, lw); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestResultAggregation(t *testing.T) {
	m, err := nn.BuildModel("AlexNet-ES", func() nn.ZooConfig {
		z := nn.DefaultZoo()
		z.ChannelScale, z.SpatialScale = 0.1, 0.25
		return z
	}())
	if err != nil {
		t.Fatal(err)
	}
	acts := m.GenerateActs(1)
	res, err := SimulateModel(arch.NewTCL(sched.T(2, 5), arch.TCLe), m, acts)
	if err != nil {
		t.Fatal(err)
	}
	fe := res.FrontEnd()
	if fe.Columns <= 0 || fe.DenseSteps <= 0 {
		t.Error("aggregated front-end census empty")
	}
	act := res.Activity()
	if act.SerialLaneCycles <= 0 || act.WSColumnReads <= 0 {
		t.Error("aggregated activity empty")
	}
	be := res.BackEnd()
	if be.Total() <= 0 {
		t.Error("aggregated back-end census empty")
	}
	var sum int64
	for _, l := range res.Layers {
		sum += l.Cycles
	}
	if sum != res.TotalCycles() {
		t.Error("TotalCycles disagrees with layer sum")
	}
}

func TestLayerResultSpeedupZeroCycles(t *testing.T) {
	if (LayerResult{Cycles: 0, DenseCycles: 5}).Speedup() != 1 {
		t.Error("zero-cycle layer speedup must be neutral")
	}
	if (&Result{}).Speedup() != 1 {
		t.Error("empty result speedup must be neutral")
	}
}

func TestSimulateLayerPanicsOnLaneMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("lane mismatch must panic (construction bug)")
		}
	}()
	lw := testConv(t, 40, 4, 16, 1, 1, 4, 0, 0)
	cfg := arch.DaDianNaoPP()
	cfg.Lanes = 8
	SimulateLayer(cfg, lw)
}
