package sim

import (
	"reflect"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	"bittactical/internal/bits"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// This file keeps the pre-registry back-end dispatch alive as test-only
// reference implementations: each legacy type transliterates the body one
// arm of the deleted switches (cost.go's cost table fill, golden.go's
// executePsum) used to run for that kind. The differential tests below run
// the full engine once with a registered back-end and once with its legacy
// twin and require bit-identical results — the pin that the refactor moved
// the semantics without changing them.

type legacyBitParallel struct{}

func (legacyBitParallel) Name() string                         { return "legacy-bit-parallel" }
func (legacyBitParallel) Serial() bool                         { return false }
func (legacyBitParallel) OffsetEncoder() bool                  { return false }
func (legacyBitParallel) Energy() backend.EnergyCoeffs         { return backend.EnergyCoeffs{} }
func (legacyBitParallel) Area() backend.AreaCoeffs             { return backend.AreaCoeffs{} }
func (legacyBitParallel) Cost(v int32, w fixed.Width) int      { return 1 }
func (legacyBitParallel) MAC(wt, a int32, w fixed.Width) int64 { return int64(wt) * int64(a) }
func (legacyBitParallel) Terms(a int32, w fixed.Width) []int64 {
	if a == 0 {
		return []int64{0}
	}
	return []int64{int64(a)}
}

type legacyTCLp struct{}

func (legacyTCLp) Name() string                 { return "legacy-TCLp" }
func (legacyTCLp) Serial() bool                 { return true }
func (legacyTCLp) OffsetEncoder() bool          { return false }
func (legacyTCLp) Energy() backend.EnergyCoeffs { return backend.EnergyCoeffs{} }
func (legacyTCLp) Area() backend.AreaCoeffs     { return backend.AreaCoeffs{} }

func (legacyTCLp) Cost(v int32, w fixed.Width) int {
	return bits.ValuePrecision(v, w).Bits()
}

func (legacyTCLp) MAC(wt, a int32, w fixed.Width) int64 {
	m := int64(a)
	neg := m < 0
	if neg {
		m = -m
	}
	var acc int64
	for b := 0; m != 0; b++ {
		if m&1 == 1 {
			acc += int64(wt) << uint(b)
		}
		m >>= 1
	}
	if neg {
		acc = -acc
	}
	return acc
}

func (legacyTCLp) Terms(a int32, w fixed.Width) []int64 {
	if a == 0 {
		return nil
	}
	neg := a < 0
	m := a
	if neg {
		m = -m
	}
	p := bits.ValuePrecision(a, w)
	out := make([]int64, 0, p.Bits())
	for b := p.Lo; b <= p.Hi; b++ {
		if m&(1<<uint(b)) != 0 {
			f := int64(1) << uint(b)
			if neg {
				f = -f
			}
			out = append(out, f)
		} else {
			out = append(out, 0)
		}
	}
	if neg {
		out = append(out, 0)
	}
	return out
}

type legacyTCLe struct{}

func (legacyTCLe) Name() string                 { return "legacy-TCLe" }
func (legacyTCLe) Serial() bool                 { return true }
func (legacyTCLe) OffsetEncoder() bool          { return true }
func (legacyTCLe) Energy() backend.EnergyCoeffs { return backend.EnergyCoeffs{} }
func (legacyTCLe) Area() backend.AreaCoeffs     { return backend.AreaCoeffs{} }

func (legacyTCLe) Cost(v int32, w fixed.Width) int {
	return bits.OneffsetCount(v, w)
}

func (legacyTCLe) MAC(wt, a int32, w fixed.Width) int64 {
	var psum int64
	for _, t := range bits.Booth(a, w) {
		term := int64(wt) << uint(t.Exp)
		if t.Sign < 0 {
			psum -= term
		} else {
			psum += term
		}
	}
	return psum
}

func (legacyTCLe) Terms(a int32, w fixed.Width) []int64 {
	ts := bits.Booth(a, w)
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.Value()
	}
	return out
}

// legacyPairs couples each registered paper back-end with its test-only
// reference.
func legacyPairs() []struct {
	registered, legacy backend.Backend
} {
	return []struct {
		registered, legacy backend.Backend
	}{
		{arch.BitParallel.Impl(), legacyBitParallel{}},
		{arch.TCLp.Impl(), legacyTCLp{}},
		{arch.TCLe.Impl(), legacyTCLe{}},
	}
}

// TestRegisteredMatchesLegacyPrimitives pins Cost/MAC/Terms of every
// registered paper back-end to the legacy switch bodies over the full code
// space at both widths.
func TestRegisteredMatchesLegacyPrimitives(t *testing.T) {
	for _, pair := range legacyPairs() {
		for _, w := range []fixed.Width{fixed.W16, fixed.W8} {
			n := 1 << uint(w)
			for i := 0; i < n; i++ {
				v := fixed.SignExtend(uint32(i), w)
				if got, want := pair.registered.Cost(v, w), pair.legacy.Cost(v, w); got != want {
					t.Fatalf("%s: Cost(%d, %s) = %d, legacy %d", pair.registered.Name(), v, w, got, want)
				}
				if got, want := pair.registered.MAC(-321, v, w), pair.legacy.MAC(-321, v, w); got != want {
					t.Fatalf("%s: MAC(-321, %d, %s) = %d, legacy %d", pair.registered.Name(), v, w, got, want)
				}
				if v%17 == 0 {
					got, want := pair.registered.Terms(v, w), pair.legacy.Terms(v, w)
					if len(got) != len(want) {
						t.Fatalf("%s: Terms(%d, %s) len %d, legacy %d", pair.registered.Name(), v, w, len(got), len(want))
					}
					for k := range got {
						if got[k] != want[k] {
							t.Fatalf("%s: Terms(%d, %s)[%d] = %d, legacy %d", pair.registered.Name(), v, w, k, got[k], want[k])
						}
					}
				}
			}
		}
	}
}

// TestEngineMatchesLegacyBackends runs the full engine — schedules, cost
// planes, censuses, cycle accounting — once per (config, layer) with the
// registered back-end and once with its legacy switch-body twin, and
// requires the LayerResults to be bit-identical. This is the end-to-end pin
// that every figure and table output survived the refactor unchanged.
func TestEngineMatchesLegacyBackends(t *testing.T) {
	lws := []*nn.Lowered{
		testConv(t, 61, 18, 20, 3, 3, 6, 0.6, 0.4),
		testFC(t, 62, 20, 40, 18, 0.7),
	}
	patterns := []sched.Pattern{sched.T(2, 5), sched.L(1, 6), {}}
	for _, pair := range legacyPairs() {
		for _, p := range patterns {
			cfgs := []arch.Config{arch.NewTCLBackend(p, pair.registered)}
			if !pair.registered.Serial() && !cfgs[0].HasFrontEnd() {
				cfgs = append(cfgs, arch.DaDianNaoPP())
			}
			for _, cfg := range cfgs {
				legacyCfg := cfg
				legacyCfg.Backend = pair.legacy
				for _, lw := range lws {
					opts := Options{Parallelism: 2, DisablePlaneCache: true}
					got := SimulateLayerOpts(cfg, lw, opts)
					want := SimulateLayerOpts(legacyCfg, lw, opts)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s on %s: registered result differs from legacy switch logic\nnew:    %+v\nlegacy: %+v",
							pair.registered.Name(), cfg.Name, lw.Name, got, want)
					}
					if err := ExecuteGolden(legacyCfg, lw); err != nil {
						t.Errorf("%s on %s: legacy golden model: %v", pair.legacy.Name(), lw.Name, err)
					}
					if err := ExecuteGolden(cfg, lw); err != nil {
						t.Errorf("%s on %s: golden model: %v", cfg.Name, lw.Name, err)
					}
				}
			}
		}
	}
}
