package sim

import (
	"context"
	"reflect"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	"bittactical/internal/backend/dstripes"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// serialConfigs are the back-end configurations that walk windows — the
// paths the plane and SWAR kernels serve — covering gated (front-end) and
// ungated variants at both widths.
func serialConfigs() []arch.Config {
	return []arch.Config{
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
		arch.NewTCL(sched.L(1, 6), arch.TCLe),
		arch.NewTCL(sched.Pattern{}, arch.TCLe), // no front-end: ungated masks
		arch.NewTCL(sched.Pattern{}, arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLp).WithWidth(fixed.W8),
		arch.NewTCL(sched.T(2, 5), arch.TCLe).WithWidth(fixed.W8),
	}
}

// TestPlaneMatchesPerRowRecompute is the differential test of the plane
// gather: for row-invariant layers, evalWindows with the precomputed plane
// must produce windowPartials identical to the nil-plane reference path
// that re-fetches every cost through lw.Act with the row's own filter
// index — across every filter group, not just the one the plane was built
// from (the ActRowInvariant guarantee).
func TestPlaneMatchesPerRowRecompute(t *testing.T) {
	for _, lw := range []*nn.Lowered{
		testConv(t, 21, 20, 24, 3, 3, 6, 0.6, 0.4),
		testFC(t, 22, 20, 40, 18, 0.7),
		testFC(t, 23, 33, 64, 1, 0.5),
	} {
		if !lw.ActRowInvariant() {
			t.Fatalf("%s: expected row-invariant layer", lw.Name)
		}
		for _, cfg := range serialConfigs() {
			ct := newCostTable(cfg.Backend, cfg.Width)
			plane := buildPlane(lw, ct, 0)
			pad := padMask(lw)
			for f0 := 0; f0 < lw.Filters; f0 += cfg.FiltersPerTile {
				f1 := min(f0+cfg.FiltersPerTile, lw.Filters)
				ctx := prepareGroup(cfg, lw, ct, pad, f0, f1, nil)
				if !ctx.needsWindows {
					t.Fatalf("%s/%s: serial config did not need windows", lw.Name, cfg.Name)
				}
				rp := make([]*costPlane, f1-f0)
				for i := range rp {
					rp[i] = plane
				}
				got := ctx.evalWindows(cfg, lw, ct, rp, 0, lw.WindowCount, nil)
				want := ctx.evalWindows(cfg, lw, ct, nil, 0, lw.WindowCount, nil)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s group [%d,%d): plane partial differs from per-row recompute\nplane: %+v\nref:   %+v",
						lw.Name, cfg.Name, f0, f1, got, want)
				}
			}
		}
	}
}

// TestDepthwiseNotRowInvariant pins the legality gate: the engine must
// never build a plane for a layer whose activation fetch depends on the
// filter row.
func TestDepthwiseNotRowInvariant(t *testing.T) {
	if lw := testDW(t, 24, 20, 5); lw.ActRowInvariant() {
		t.Fatal("depthwise layer reported row-invariant")
	}
}

// TestPlaneCacheSharing exercises the cache across the dimensions of its
// key: same (layer, back-end, width) hits; different back-end, width, or
// activations miss — including a plugin back-end the engine packages never
// name, which must key distinct planes at the same width.
func TestPlaneCacheSharing(t *testing.T) {
	c := NewPlaneCache(0)
	lw := testFC(t, 25, 20, 40, 18, 0.7)
	lw2 := testFC(t, 26, 20, 40, 18, 0.7) // same geometry, different values
	beE, beP := arch.TCLe.Impl(), arch.TCLp.Impl()
	beSM := backend.MustLookup(dstripes.Name)
	ctE := newCostTable(beE, fixed.W16)
	ctP := newCostTable(beP, fixed.W16)
	ctE8 := newCostTable(beE, fixed.W8)
	ctSM := newCostTable(beSM, fixed.W16)

	p1 := c.get(lw, beE, fixed.W16, ctE)
	p2 := c.get(lw, beE, fixed.W16, ctE)
	if p1 != p2 {
		t.Fatal("identical key returned distinct planes")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat get: %+v, want 1 hit / 1 miss", st)
	}
	c.get(lw, beP, fixed.W16, ctP)  // back-end differs
	c.get(lw, beE, fixed.W8, ctE8)  // width differs
	c.get(lw2, beE, fixed.W16, ctE) // activations differ
	pSM := c.get(lw, beSM, fixed.W16, ctSM)
	if pP := c.get(lw, beP, fixed.W16, ctP); pSM == pP {
		t.Fatal("plugin back-end collided with TCLp at identical width")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 5 || st.Entries != 5 {
		t.Fatalf("after distinct keys: %+v, want 2 hits / 5 misses / 5 entries", st)
	}
	if st.Bytes == 0 {
		t.Fatal("cache reports zero resident bytes")
	}

	c.Reset()
	if st := c.Stats(); st != (PlaneCacheStats{}) {
		t.Fatalf("after Reset: %+v, want zero stats", st)
	}
}

// TestPlaneCacheEviction forces the byte budget: the overflow drop keeps
// only the inserting entry and counts the rest as evictions.
func TestPlaneCacheEviction(t *testing.T) {
	lw := testFC(t, 27, 20, 40, 18, 0.7)
	beE, beP := arch.TCLe.Impl(), arch.TCLp.Impl()
	ct := newCostTable(beE, fixed.W16)
	one := buildPlane(lw, ct, 0).sizeBytes()
	c := NewPlaneCache(one + one/2) // fits one plane, not two
	c.get(lw, beE, fixed.W16, ct)
	c.get(lw, beP, fixed.W16, newCostTable(beP, fixed.W16))
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("after overflow: %+v, want 1 eviction / 1 resident entry", st)
	}
	if st.Bytes != one {
		t.Fatalf("after overflow: %d resident bytes, want %d", st.Bytes, one)
	}
}

// TestSimulateUsesSharedPlaneCache pins the default wiring: a model run
// populates SharedPlanes with one plane per (row-invariant layer,
// back-end, width), and a second config sharing those dimensions hits.
func TestSimulateUsesSharedPlaneCache(t *testing.T) {
	SharedPlanes.Reset()
	defer SharedPlanes.Reset()
	lw := testFC(t, 28, 20, 40, 18, 0.7)
	SimulateLayerOpts(arch.NewTCL(sched.T(2, 5), arch.TCLe), lw, Options{})
	if st := SharedPlanes.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after first run: %+v, want 1 miss / 1 entry", st)
	}
	// Different pattern, same back-end and width: must reuse the plane.
	SimulateLayerOpts(arch.NewTCL(sched.L(1, 6), arch.TCLe), lw, Options{})
	if st := SharedPlanes.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after second run: %+v, want 1 hit / 1 miss", st)
	}
	// A plugin back-end at the same width must key its own plane, not hit
	// the TCLe entry.
	SimulateLayerOpts(arch.NewTCLBackend(sched.T(2, 5), backend.MustLookup(dstripes.Name)), lw, Options{})
	if st := SharedPlanes.Stats(); st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("after plugin run: %+v, want 1 hit / 2 misses / 2 entries", st)
	}
}

// TestSweepMatchesIndividualRuns pins the sweep core's bit-identity
// guarantee: one SimulateSweepContext over several configs must reproduce
// each config's standalone SimulateModelContext result exactly, at every
// parallelism and with or without the plane cache.
func TestSweepMatchesIndividualRuns(t *testing.T) {
	zoo := nn.DefaultZoo()
	zoo.ChannelScale = 0.1
	zoo.SpatialScale = 0.25
	m, err := nn.BuildModel("AlexNet-ES", zoo)
	if err != nil {
		t.Fatal(err)
	}
	acts := m.GenerateActs(7)
	cfgs := []arch.Config{
		arch.DaDianNaoPP(),
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
		arch.NewTCL(sched.L(1, 6), arch.TCLe),
	}
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := SimulateModelContext(context.Background(), cfg, m, acts, Options{Parallelism: 1, DisablePlaneCache: true})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, par := range []int{1, 4} {
		for _, disable := range []bool{false, true} {
			opts := Options{Parallelism: par, DisablePlaneCache: disable}
			if !disable {
				opts.PlaneCache = NewPlaneCache(0)
			}
			got, err := SimulateSweepContext(context.Background(), cfgs, m, acts, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cfgs {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("par=%d disablePlanes=%v config %s: sweep result differs from standalone run",
						par, disable, cfgs[i].Name)
				}
			}
		}
	}
}
