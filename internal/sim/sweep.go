package sim

import (
	"context"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/tensor"
)

// SimulateSweep runs one model under several configurations as a single
// engine invocation with default options. See SimulateSweepContext.
func SimulateSweep(cfgs []arch.Config, m *nn.Model, acts []*tensor.T) ([]*Result, error) {
	return SimulateSweepContext(context.Background(), cfgs, m, acts, Options{})
}

// SimulateSweepContext runs one model under several configurations — the
// shape of a tclserve /v1/simulate request or a figure sweep — as a single
// engine invocation. Every config's (layer, filter-group, window-chunk)
// items are flattened into one queue on one worker pool, so independent
// configs overlap instead of executing back to back, and the tail of one
// config's largest layer no longer idles the pool before the next config
// starts. The model is lowered once per distinct lane count, and
// row-invariant layers' activation cost planes are resolved through the
// options' plane cache, so configs sharing a (back-end, width) share
// planes. Results are returned in config order, each bit-identical to a
// standalone SimulateModelContext run of that config.
//
// Cancellation matches SimulateModelContext: a done ctx stops the pool and
// returns (nil, ctx.Err()) with no partial results for any config.
func SimulateSweepContext(ctx context.Context, cfgs []arch.Config, m *nn.Model, acts []*tensor.T, opts Options) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	lwByLanes := make(map[int][]*nn.Lowered)
	lwss := make([][]*nn.Lowered, len(cfgs))
	for k, cfg := range cfgs {
		lws, ok := lwByLanes[cfg.Lanes]
		if !ok {
			var err error
			lws, err = m.Lowered(cfg.Lanes, acts)
			if err != nil {
				return nil, err
			}
			lwByLanes[cfg.Lanes] = lws
		}
		lwss[k] = lws
	}
	layerss, err := simulateSweep(ctx, cfgs, lwss, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(cfgs))
	for k, cfg := range cfgs {
		out[k] = &Result{Config: cfg.Name, Layers: layerss[k]}
	}
	return out, nil
}
