package sim

import (
	"context"
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/tensor"
)

// SimulateSweep runs one model under several configurations as a single
// engine invocation with default options. See SimulateSweepContext.
func SimulateSweep(cfgs []arch.Config, m *nn.Model, acts []*tensor.T) ([]*Result, error) {
	return SimulateSweepContext(context.Background(), cfgs, m, acts, Options{})
}

// SimulateSweepContext runs one model under several configurations — the
// shape of a tclserve /v1/simulate request or a figure sweep — as a single
// engine invocation. Every config's (layer, filter-group, window-chunk)
// items are flattened into one queue on one worker pool, so independent
// configs overlap instead of executing back to back, and the tail of one
// config's largest layer no longer idles the pool before the next config
// starts. The model is lowered once per distinct lane count, and
// row-invariant layers' activation cost planes are resolved through the
// options' plane cache, so configs sharing a (back-end, width) share
// planes. Results are returned in config order, each bit-identical to a
// standalone SimulateModelContext run of that config.
//
// Cancellation matches SimulateModelContext: a done ctx stops the pool and
// returns (nil, ctx.Err()) with no partial results for any config.
func SimulateSweepContext(ctx context.Context, cfgs []arch.Config, m *nn.Model, acts []*tensor.T, opts Options) ([]*Result, error) {
	layerss, err := simulateGrid(ctx, cfgs, m, acts, nil, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(cfgs))
	for k, cfg := range cfgs {
		out[k] = &Result{Config: cfg.Name, Layers: layerss[k]}
	}
	return out, nil
}

// SimulateLoweredSweepContext is the pre-lowered batch entry: cell k runs
// config cfgs[k] over exactly the lowered layers lwss[k], all flattened
// into one engine invocation on one worker pool. Unlike
// SimulateSweepContext the cells need not share a model — this is how a
// whole figure (every config × every zoo model) becomes one pool run
// instead of hundreds, which is what lets the experiment drivers hit the
// engine's zero-alloc steady state. Each cell's layer results are
// bit-identical to a standalone run of that (config, layers) pair at any
// Parallelism.
//
// Every lowered layer must have been lowered at its config's lane count;
// a mismatch returns an error. Cancellation matches SimulateModelContext.
func SimulateLoweredSweepContext(ctx context.Context, cfgs []arch.Config, lwss [][]*nn.Lowered, opts Options) ([][]LayerResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(cfgs) != len(lwss) {
		return nil, fmt.Errorf("sim: %d configs against %d layer lists", len(cfgs), len(lwss))
	}
	for k, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		for _, lw := range lwss[k] {
			if lw.Lanes != cfg.Lanes {
				return nil, fmt.Errorf("sim: config %q has %d lanes but layer %q was lowered at %d",
					cfg.Name, cfg.Lanes, lw.Name, lw.Lanes)
			}
		}
	}
	return simulateSweep(ctx, cfgs, lwss, opts)
}

// SimulateGridContext runs an arbitrary rectangle of the (config, layer)
// design-space grid: every config in cfgs against exactly the model layers
// named by layerIdx (indices into the lowered layer list, any order,
// duplicates allowed). The returned [config][i] cell corresponds to
// layerIdx[i].
//
// This is the shard-worker entry point: a coordinator that partitions a
// sweep's layers across processes has each worker simulate its slice of
// the grid. Each cell is computed by the same per-layer pipeline as a full
// sweep — a layer's result depends only on its own filter groups — so a
// cell is bit-identical however the grid is partitioned, which is what
// makes the coordinator's fixed-order merge reproduce single-process
// output exactly.
func SimulateGridContext(ctx context.Context, cfgs []arch.Config, m *nn.Model, acts []*tensor.T, layerIdx []int, opts Options) ([][]LayerResult, error) {
	return simulateGrid(ctx, cfgs, m, acts, layerIdx, opts)
}

// simulateGrid validates and lowers, then runs the engine over cfgs ×
// layers. A nil layerIdx means all layers; a non-nil one selects (and
// orders) the subset.
func simulateGrid(ctx context.Context, cfgs []arch.Config, m *nn.Model, acts []*tensor.T, layerIdx []int, opts Options) ([][]LayerResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	lwByLanes := make(map[int][]*nn.Lowered)
	lwss := make([][]*nn.Lowered, len(cfgs))
	for k, cfg := range cfgs {
		lws, ok := lwByLanes[cfg.Lanes]
		if !ok {
			var err error
			lws, err = m.Lowered(cfg.Lanes, acts)
			if err != nil {
				return nil, err
			}
			lwByLanes[cfg.Lanes] = lws
		}
		if layerIdx != nil {
			sub := make([]*nn.Lowered, len(layerIdx))
			for i, li := range layerIdx {
				if li < 0 || li >= len(lws) {
					return nil, fmt.Errorf("sim: layer index %d out of range (model %q has %d layers)", li, m.Name, len(lws))
				}
				sub[i] = lws[li]
			}
			lws = sub
		}
		lwss[k] = lws
	}
	return simulateSweep(ctx, cfgs, lwss, opts)
}
