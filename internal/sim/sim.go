package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bittactical/internal/arch"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/tensor"
)

// layerLatency records, per layer, the wall time from the first work item
// of that layer starting to its last filter group finishing — the quantity
// an operator of the evaluation service watches per request.
var layerLatency = metrics.Default.Histogram("sim_layer_latency")

// SimulateModel runs every layer of a model under the configuration with
// default engine options (GOMAXPROCS workers, shared schedule cache).
func SimulateModel(cfg arch.Config, m *nn.Model, acts []*tensor.T) (*Result, error) {
	return SimulateModelOpts(cfg, m, acts, Options{})
}

// SimulateModelOpts runs every layer of a model under the configuration,
// decomposed into independent (layer, filter-group) work items executed by
// the option's worker pool. Output is bit-identical at any Parallelism.
func SimulateModelOpts(cfg arch.Config, m *nn.Model, acts []*tensor.T, opts Options) (*Result, error) {
	return SimulateModelContext(context.Background(), cfg, m, acts, opts)
}

// SimulateModelContext is SimulateModelOpts under a context: when ctx is
// cancelled or its deadline passes, workers stop claiming (group,
// window-chunk) items — in-flight items finish first — and the call returns
// (nil, ctx.Err()) with no partial result. An uncancelled context yields
// output bit-identical to SimulateModelOpts.
func SimulateModelContext(ctx context.Context, cfg arch.Config, m *nn.Model, acts []*tensor.T, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lws, err := m.Lowered(cfg.Lanes, acts)
	if err != nil {
		return nil, err
	}
	layers, err := simulateLayers(ctx, cfg, lws, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Config: cfg.Name, Layers: layers}, nil
}

// SimulateLayer runs one lowered layer with default engine options.
//
// Mapping (Section 5.3): filters are assigned to tiles and PE rows; the
// serial back-ends process WindowsPerTile activation windows concurrently
// across PE columns. Layers with fewer windows than columns (CNN
// fully-connected layers) split the reduction across spare columns instead,
// combining partial sums over the per-row ring.
func SimulateLayer(cfg arch.Config, lw *nn.Lowered) LayerResult {
	return SimulateLayerOpts(cfg, lw, Options{})
}

// SimulateLayerOpts runs one lowered layer under the configuration and
// returns cycles, the Figure-9 censuses, and datapath activity.
func SimulateLayerOpts(cfg arch.Config, lw *nn.Lowered, opts Options) LayerResult {
	rs, err := simulateLayers(context.Background(), cfg, []*nn.Lowered{lw}, opts)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return rs[0]
}

// SimulateLayerContext is SimulateLayerOpts with the cancellation semantics
// of SimulateModelContext.
func SimulateLayerContext(ctx context.Context, cfg arch.Config, lw *nn.Lowered, opts Options) (LayerResult, error) {
	rs, err := simulateLayers(ctx, cfg, []*nn.Lowered{lw}, opts)
	if err != nil {
		return LayerResult{}, err
	}
	return rs[0], nil
}

// workItem is one unit of pool work: one window chunk [w0, w1) of one
// resident filter group of one layer of one sweep config. Most groups are a
// single chunk; when a load yields fewer filter groups than workers, groups
// split below the filter-group grain into contiguous window ranges (aligned
// to the tile's window-group size) so the pool stays busy on
// low-group-count layers — the fig8b scaling cliff.
type workItem struct {
	work         *configWork
	layer, group int
	f0, f1       int
	w0, w1       int
	chunk        int
}

// configWork is one sweep config's private slice of the shared pool run:
// its cost table, per-layer pad masks, lazily-resolved activation cost
// planes, and the per-group accumulators its chunks fold into. A sweep
// flattens every config's chunks into one queue, so independent configs
// overlap in the pool instead of executing back to back.
type configWork struct {
	idx    int // position in the sweep's config list (OnLayerResult's cfg)
	cfg    arch.Config
	lws    []*nn.Lowered
	ct     *costTable
	keyer  sched.Keyer // pre-keyed schedule-cache handle; valid iff hasKeyer
	hasKey bool
	layers []layerWork
}

// keyerPtr adapts the inline keyer to prepareGroupInto's nil-able view.
func (cw *configWork) keyerPtr() *sched.Keyer {
	if !cw.hasKey {
		return nil
	}
	return &cw.keyer
}

// layerWork is one layer's slice of a config's run state, kept in a single
// per-config array so engine entry costs one allocation for all of it.
type layerWork struct {
	pad    []bool
	planes layerPlanes
	accums []groupAccum
	// result is the layer's merged outcome, written by the worker that
	// finishes the layer's last group (and published to the caller by the
	// pool's WaitGroup barrier). Merging at completion time instead of
	// after the pool drains is what lets OnLayerResult stream a layer the
	// moment its shards fold; the merge consumes only the layer's own
	// complete accums, so the result is bit-identical either way.
	result LayerResult
	// Latency tracking: first-touch timestamp (CAS once) and a countdown
	// of unfinished groups; the worker finishing the layer's last group
	// observes the span.
	start     atomic.Int64
	remaining atomic.Int32
}

// planeSlot resolves one (layer, act group) activation cost plane at most
// once per run, whichever chunk worker gets there first; concurrent
// chunks of other groups of the same layer wait on the Once instead of
// duplicating the cache lookup (and, through the cache's own
// single-flight, the build).
type planeSlot struct {
	once  sync.Once
	plane *costPlane
}

// layerPlanes is one layer's plane slots, one per act group (a single
// slot for row-invariant layers), plus the lazily computed cache base key
// they share — a grouped layer must hash its input tensor once, not once
// per act group.
type layerPlanes struct {
	keyOnce sync.Once
	baseKey planeKey
	slots   []planeSlot
}

// planeFor returns the cost plane of layer li's act group, from the cache
// when one is configured, built privately otherwise. Only called under a
// serial back-end — the path the plane layout is defined for.
func (cw *configWork) planeFor(li, actGroup int, pc *PlaneCache) *costPlane {
	lp := &cw.layers[li].planes
	s := &lp.slots[actGroup]
	s.once.Do(func() {
		lw := cw.lws[li]
		if pc == nil {
			s.plane = buildPlane(lw, cw.ct, actGroup)
			return
		}
		lp.keyOnce.Do(func() {
			lp.baseKey = planeKeyOf(lw, cw.cfg.Backend, cw.cfg.Width)
		})
		key := lp.baseKey
		if len(lp.slots) > 1 {
			key.group = actGroup
		}
		s.plane = pc.getKeyed(key, lw, cw.ct, actGroup)
	})
	return s.plane
}

// groupAccum coordinates the chunks of one filter group. The first chunk
// worker to arrive prepares the shared group context (schedules, column
// references, window-independent censuses) under the Once; the last chunk to
// finish folds the window partials into the group's result shard and drops
// the context, keeping peak memory at the pre-chunking level. Every partial
// is a plain integer sum, so the fold is exact regardless of chunk count or
// completion order — parallel output stays bit-identical to serial at any
// worker count. The context lives inline (ctxStore) so group turnover
// costs no allocation; its pooled buffers return to the arena when the
// fold releases them.
type groupAccum struct {
	once      sync.Once
	ctx       *groupCtx
	ctxStore  groupCtx
	partials  []windowPartial
	remaining atomic.Int32
	result    groupResult
}

// layerChunks is the sweep's work-splitting arithmetic for one (config,
// layer): how many window chunks each filter group splits into, the
// layer's dense group count, and its window-group count. Sub-group
// splitting engages only when whole groups — across the whole sweep —
// cannot occupy the pool, and only for the serial back-ends whose
// per-window evaluation dominates (the bit-parallel path is already
// window-independent and cheap). Chunks stay aligned to the tile's
// window-group size so each chunk sees whole window groups (the unit the
// PE-total accumulation is indexed by).
func layerChunks(cfg arch.Config, lw *nn.Lowered, totalGroups, workers int) (nChunks, denseGroups, windowGroups int) {
	denseGroups = (lw.Filters + cfg.FiltersPerTile - 1) / cfg.FiltersPerTile
	windowGroups = (lw.WindowCount + cfg.WindowsPerTile - 1) / cfg.WindowsPerTile
	chunksPerGroup := 1
	if cfg.Serial() && totalGroups > 0 && totalGroups < workers {
		chunksPerGroup = (workers + totalGroups - 1) / totalGroups
	}
	nChunks = min(chunksPerGroup, windowGroups)
	if nChunks < 1 {
		nChunks = 1
	}
	return nChunks, denseGroups, windowGroups
}

// simulateLayers runs one config — the single-entry case of the sweep core.
func simulateLayers(ctx context.Context, cfg arch.Config, lws []*nn.Lowered, opts Options) ([]LayerResult, error) {
	rs, err := simulateSweep(ctx, []arch.Config{cfg}, [][]*nn.Lowered{lws}, opts)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// simulateSweep is the engine core shared by the layer, model, and sweep
// entry points: it flattens every config's (layer, filter group) work into
// one queue (splitting groups into window chunks when groups alone cannot
// fill the pool), executes the chunks on the option's pool, and merges each
// config's shards in (layer, group) order so no result depends on execution
// interleaving — per config, output is bit-identical to a serial run at any
// Parallelism and any sweep composition. A cancelled ctx stops the pool
// from claiming further chunks and returns (nil, ctx.Err()) — never a
// partial merge.
func simulateSweep(ctx context.Context, cfgs []arch.Config, lwss [][]*nn.Lowered, opts Options) ([][]LayerResult, error) {
	cache := opts.cache()
	planeCache := opts.planeCache()
	workers := opts.workers()
	onLayer := opts.OnLayerResult

	totalGroups := 0
	totalLayers := 0
	for k, cfg := range cfgs {
		totalLayers += len(lwss[k])
		for _, lw := range lwss[k] {
			if lw.Lanes != cfg.Lanes {
				panic(fmt.Sprintf("sim: lowered lanes %d != config lanes %d", lw.Lanes, cfg.Lanes))
			}
			totalGroups += (lw.Filters + cfg.FiltersPerTile - 1) / cfg.FiltersPerTile
		}
	}

	// Exact working-set sizes up front — chunking only expands the queue
	// when groups alone cannot fill the pool, and the expansion factor
	// depends on totalGroups, so this needs its own pass. layerChunks is
	// the single source of the per-layer chunk arithmetic the build loop
	// reuses. The totals size the pooled sweepState carves below: the
	// experiment drivers invoke the engine once per (config, layer), so
	// without the pool every invocation re-allocated this entire assembly.
	totalItems, totalAccums, totalPartials, totalSlots := 0, 0, 0, 0
	for k, cfg := range cfgs {
		for _, lw := range lwss[k] {
			nChunks, denseGroups, _ := layerChunks(cfg, lw, totalGroups, workers)
			totalItems += denseGroups * nChunks
			totalAccums += denseGroups
			totalPartials += denseGroups * nChunks
			if cfg.Serial() {
				totalSlots += lw.ActGroups()
			}
		}
	}

	st := sweepStatePool.Get().(*sweepState)
	defer sweepStatePool.Put(st)
	st.carve(len(cfgs), totalLayers, totalAccums, totalPartials, totalSlots, totalItems)
	items := st.items
	layerOff, accumOff, partialOff, slotOff := 0, 0, 0, 0
	for k, cfg := range cfgs {
		lws := lwss[k]
		cw := &st.works[k]
		cw.idx = k
		cw.cfg = cfg
		cw.lws = lws
		cw.ct = costTableFor(cfg.Backend, cfg.Width)
		cw.layers = st.layers[layerOff : layerOff+len(lws)]
		layerOff += len(lws)
		if cache != nil && cfg.HasFrontEnd() {
			// Key the cache once per (config): the pattern key and algorithm
			// tag are shared by every group lookup below, so per-group calls
			// hash only filter contents.
			cw.keyer = cache.Keyer(cfg.Pattern, cfg.Scheduler)
			cw.hasKey = true
		}
		rows := cfg.FiltersPerTile
		for li, lw := range lws {
			lwk := &cw.layers[li]
			lwk.pad = padMask(lw)
			if cfg.Serial() {
				lwk.planes.slots = st.slots[slotOff : slotOff+lw.ActGroups()]
				slotOff += lw.ActGroups()
			}
			nChunks, denseGroups, windowGroups := layerChunks(cfg, lw, totalGroups, workers)
			lwk.accums = st.accums[accumOff : accumOff+denseGroups]
			accumOff += denseGroups
			lwk.remaining.Store(int32(denseGroups))
			if denseGroups == 0 {
				// A layer with no filter groups never enters the pool; merge
				// its (empty) result here so callers and callbacks still see
				// every (config, layer) cell.
				lwk.result = mergeLayer(cfg, lw, nil)
				if onLayer != nil {
					onLayer(k, li, lwk.result)
				}
				continue
			}
			// One flat partial range per layer; each group views its chunk
			// range, so the per-group slice costs nothing.
			layerPartials := st.partials[partialOff : partialOff+denseGroups*nChunks]
			partialOff += denseGroups * nChunks
			for g := 0; g < denseGroups; g++ {
				f0 := g * rows
				f1 := min(f0+rows, lw.Filters)
				ga := &lwk.accums[g]
				ga.partials = layerPartials[g*nChunks : (g+1)*nChunks]
				ga.remaining.Store(int32(nChunks))
				for c := 0; c < nChunks; c++ {
					// Even split of window groups across chunks, in window units.
					wg0 := windowGroups * c / nChunks
					wg1 := windowGroups * (c + 1) / nChunks
					items = append(items, workItem{
						work: cw, layer: li, group: g, f0: f0, f1: f1,
						w0:    wg0 * cfg.WindowsPerTile,
						w1:    min(wg1*cfg.WindowsPerTile, lw.WindowCount),
						chunk: c,
					})
				}
			}
		}
	}
	wstates := st.workerStates(workers)
	completed := runPool(ctx.Done(), workers, len(items), func(w, i int) {
		ws := &wstates[w]
		it := items[i]
		cw := it.work
		lw := cw.lws[it.layer]
		lwk := &cw.layers[it.layer]
		if lwk.start.Load() == 0 {
			lwk.start.CompareAndSwap(0, time.Now().UnixNano())
		}
		ga := &lwk.accums[it.group]
		ga.once.Do(func() {
			prepareGroupInto(&ga.ctxStore, cw.cfg, lw, cw.ct, lwk.pad, it.f0, it.f1, len(ga.partials), cw.keyerPtr(), ws)
			ga.ctx = &ga.ctxStore
			if ga.ctx.needsWindows {
				// Resolve each PE row's act-group plane once per group; a
				// resident group of a grouped/depthwise layer can straddle an
				// act-group boundary, so rows index their own plane.
				for ri := range ga.ctx.rowPlanes {
					ga.ctx.rowPlanes[ri] = cw.planeFor(it.layer, lw.ActGroupOf(it.f0+ri), planeCache)
				}
			}
		})
		var wp windowPartial
		if ga.ctx.needsWindows {
			wp = ga.ctx.evalWindows(cw.cfg, lw, cw.ct, ga.ctx.rowPlanes, it.w0, it.w1, ga.ctx.peChunk(it.chunk))
		}
		ga.partials[it.chunk] = wp
		if ga.remaining.Add(-1) == 0 {
			ga.result = finishGroup(cw.cfg, ga.ctx, ga.partials, ws)
			ga.ctx = nil
			if lwk.remaining.Add(-1) == 0 {
				lwk.result = mergeLayer(cw.cfg, lw, lwk.accums)
				layerLatency.Observe(time.Duration(time.Now().UnixNano() - lwk.start.Load()))
				if onLayer != nil {
					onLayer(cw.idx, it.layer, lwk.result)
				}
			}
		}
	})
	if !completed {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Unreachable: the pool only stops early when ctx is done.
		return nil, context.Canceled
	}
	// The results escape to the caller, so they cannot come from the pooled
	// state: two flat allocations cover the whole sweep. Each layer was
	// merged by the worker that finished it; the pool's WaitGroup barrier
	// publishes those writes.
	flat := make([]LayerResult, totalLayers)
	out := make([][]LayerResult, len(cfgs))
	off := 0
	for k := range st.works {
		cw := &st.works[k]
		out[k] = flat[off : off+len(cw.lws) : off+len(cw.lws)]
		off += len(cw.lws)
		for li := range cw.lws {
			out[k][li] = cw.layers[li].result
		}
	}
	return out, nil
}

// mergeLayer folds the per-group shards into one LayerResult, in group
// order, reproducing exactly the accumulation the serial engine performs.
func mergeLayer(cfg arch.Config, lw *nn.Lowered, accums []groupAccum) LayerResult {
	r := LayerResult{Name: lw.Name, MACs: lw.Layer().MACs()}

	rows := cfg.FiltersPerTile
	steps, F, W := lw.Steps, lw.Filters, lw.WindowCount

	// Dense baseline reference (DaDianNao++ shares the rows/lanes geometry).
	denseGroups := (F + rows - 1) / rows
	denseRounds := (denseGroups + cfg.Tiles - 1) / cfg.Tiles
	r.DenseCycles = int64(denseRounds) * int64(steps) * int64(W)

	// Reduction-split factor for window-poor layers on multi-column tiles.
	split := 1
	if W < cfg.WindowsPerTile {
		split = cfg.WindowsPerTile / W
		if split < 1 {
			split = 1
		}
	}

	// Activation scratchpad fetches are value-agnostic and identical across
	// the design family: every input activation is buffered once per kernel
	// row (row-buffer reuse along x) in each tile that consumes the layer.
	rowsPerAct := int64(1)
	if l := lw.Layer(); l.Kind != nn.FC && l.Stride > 0 {
		rowsPerAct = int64((l.R + l.Stride - 1) / l.Stride)
	}
	tilesUsed := denseGroups
	if tilesUsed > cfg.Tiles {
		tilesUsed = cfg.Tiles
	}
	r.Activity.ActReads = int64(len(lw.Input().Data)) * rowsPerAct * int64(tilesUsed)

	// Tile counts are single digits in every modeled design; spill to the
	// heap only past 16.
	var ttBuf [16]int64
	tileTime := ttBuf[:]
	if cfg.Tiles <= len(ttBuf) {
		tileTime = ttBuf[:cfg.Tiles]
	} else {
		tileTime = make([]int64, cfg.Tiles)
	}
	for g := range accums {
		gr := &accums[g].result
		groupCycles := gr.cycles
		if split > 1 {
			groupCycles = (groupCycles + int64(split) - 1) / int64(split)
		}
		tileTime[g%cfg.Tiles] += groupCycles
		r.FrontEnd.Columns += gr.frontEnd.Columns
		r.FrontEnd.DenseSteps += gr.frontEnd.DenseSteps
		for k := range gr.frontEnd.Slots {
			r.FrontEnd.Slots[k] += gr.frontEnd.Slots[k]
		}
		r.BackEnd.Add(gr.backEnd)
		r.Activity.SerialLaneCycles += gr.activity.SerialLaneCycles
		r.Activity.ParallelMACs += gr.activity.ParallelMACs
		r.Activity.WSColumnReads += gr.activity.WSColumnReads
		r.Activity.MuxSelects += gr.activity.MuxSelects
		r.Activity.PsumAccesses += gr.activity.PsumAccesses
		r.Activity.OffsetEncodes += gr.activity.OffsetEncodes
	}
	for _, t := range tileTime {
		if t > r.Cycles {
			r.Cycles = t
		}
	}
	return r
}

// padMask is the channel-padding mask of the dense schedule, or nil when
// the layer has none — memoized on the lowering, shared across configs.
func padMask(lw *nn.Lowered) []bool {
	return lw.PadMask()
}

// laneRef is one lane's activation source in one schedule column: the
// promoted weight's dense position for effectual lanes, the window head for
// idle ones. flat is the precomputed step*lanes+lane plane offset so the
// window walk gathers straight out of a cost plane's window slice.
type laneRef struct {
	step, lane int32
	flat       int32
	weight     int32 // 0 for idle lanes
}

// groupResult is one filter group's private accumulation shard: everything
// simulateGroup learns about the group, free of shared state so groups can
// execute on any worker in any order.
type groupResult struct {
	cycles   int64
	frontEnd sched.Stats
	backEnd  Breakdown
	activity Activity
}

// groupCtx is the window-independent state of one filter group, built once
// per group (under the groupAccum's Once) and shared read-only by every
// window chunk of that group. Its grids live in one pooled arena
// (groupBufs), flattened: refs[(ci*nrows+ri)*lanes+ln] is lane ln's
// activation source in column ci of row ri's schedule.
type groupCtx struct {
	f0, f1       int
	nrows, cols  int
	needsWindows bool // serial back-ends walk windows; bit-parallel is done at prepare
	refs         []laneRef
	// masks holds the packed SWAR participation masks: 0xFF bytes for lanes
	// that join the column sync (effectual weights, or every lane when the
	// config has no front-end to gate the rest), 0x00 elsewhere. Gated
	// groups store one maskStride-word mask per (column, row) at
	// (ci*nrows+ri)*maskStride; gate-free groups set maskStride to 0 and
	// share the memoized all-lanes mask directly.
	masks      []uint64
	maskStride int
	// rowPlanes[ri] is PE row ri's activation cost plane (rows of one act
	// group share a plane; row-invariant layers share one across all
	// rows). Resolved by the engine under the groupAccum Once; nil only on
	// the differential tests' reference path.
	rowPlanes []*costPlane
	// peTotals is the engine's pre-zeroed per-chunk accumulator arena
	// (nChunks strides of peStride = nrows*WindowsPerTile); peChunk hands
	// each chunk its stride. Test-built contexts leave it nil and
	// evalWindows allocates per call.
	peTotals []int64
	peStride int
	bufs     *groupBufs // backing arena, returned to the pool at release
	gate     bool
	base     groupResult // window-independent accumulations (full result when !needsWindows)
}

// peChunk is window chunk c's view of the group's PE-total arena.
func (ctx *groupCtx) peChunk(c int) []int64 {
	if ctx.peTotals == nil {
		return nil
	}
	return ctx.peTotals[c*ctx.peStride : (c+1)*ctx.peStride]
}

// windowPartial is one chunk's contribution: per-(row, PE column) cycle
// totals plus the lane census and serial-cycle count over the chunk's
// windows. All fields are exact integer sums, so chunk partials fold
// element-wise into precisely the serial engine's accumulators.
type windowPartial struct {
	peTotals []int64
	backEnd  Breakdown
	serial   int64
}

// prepareGroup is prepareGroupInto for a fresh single-chunk context — the
// differential tests' entry point.
func prepareGroup(cfg arch.Config, lw *nn.Lowered, ct *costTable, pad []bool, f0, f1 int, keyer *sched.Keyer) *groupCtx {
	ctx := new(groupCtx)
	prepareGroupInto(ctx, cfg, lw, ct, pad, f0, f1, 1, keyer, nil)
	return ctx
}

// prepareGroupInto builds one resident filter group's shared context:
// filters, schedules, the front-end census, datapath activity that depends
// only on column structure, and the per-column lane references the window
// walk consumes. For the bit-parallel back-end the group's full result is
// computed here (its cost model is window-independent).
//
// Filter rows are materialized into the worker's private scratch arena
// (handed out at pool spin-up; the shared sync.Pool is the ws == nil
// fallback for tests) and recycled before returning — safe because
// schedules never retain their filters (sched.NewFilter wraps the row
// slice, and both the cache and the kernel copy entry data, not weights).
// The context's own grids carve from a second arena (the worker's
// freelist, or the shared pool) held until finishGroup releases it.
func prepareGroupInto(ctx *groupCtx, cfg arch.Config, lw *nn.Lowered, ct *costTable, pad []bool, f0, f1, nChunks int, keyer *sched.Keyer, ws *workerState) {
	lanes, rows, wg := cfg.Lanes, cfg.FiltersPerTile, cfg.WindowsPerTile
	steps, W := lw.Steps, lw.WindowCount
	nrows := f1 - f0
	*ctx = groupCtx{f0: f0, f1: f1, nrows: nrows}
	r := &ctx.base

	var sc *groupScratch
	if ws != nil {
		sc = ws.scratch()
	} else {
		sc = groupScratchPool.Get().(*groupScratch)
		defer groupScratchPool.Put(sc)
	}
	sc.weights = grow(sc.weights, nrows*steps*lanes)
	sc.filters = grow(sc.filters, nrows)
	filters := sc.filters[:nrows]
	for i := 0; i < nrows; i++ {
		row := sc.weights[i*steps*lanes : (i+1)*steps*lanes]
		lw.FilterRowInto(f0+i, row)
		filters[i] = sched.NewFilter(lanes, steps, row, pad)
	}
	var schedules []*sched.Schedule
	switch {
	case !cfg.HasFrontEnd():
		schedules = denseSchedules(sc, filters)
	case keyer != nil:
		h1, h2 := sched.HashFilters(filters)
		schedules = keyer.ScheduleGroup(h1, h2, filters)
	default:
		// Cache disabled: schedule in the scratch's own arena-mode kernel;
		// the schedules are read below and dropped, so arena reuse on the
		// next prepare is safe.
		if sc.sched == nil {
			sc.sched = sched.NewScheduler()
		}
		schedules = sc.sched.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler)
	}
	cols := 0
	if nrows > 0 {
		cols = schedules[0].Len()
	}
	ctx.cols = cols

	// Front-end census.
	for i, s := range schedules {
		st := s.Stats(filters[i])
		r.frontEnd.Columns += st.Columns
		r.frontEnd.DenseSteps += st.DenseSteps
		for k := range st.Slots {
			r.frontEnd.Slots[k] += st.Slots[k]
		}
	}
	// Filter-count padding: PE rows beyond the layer's filters idle.
	r.frontEnd.Slots[sched.SlotPad] += int64(rows-nrows) * int64(cols) * int64(lanes)

	numWGroups := (W + wg - 1) / wg
	r.activity.WSColumnReads += int64(cols) * ceilDiv64(int64(numWGroups), int64(cfg.PsumRegsPerPE))
	r.activity.MuxSelects += muxSelects(cfg, schedules, W)
	r.activity.PsumAccesses += int64(nrows) * int64(cols) * int64(W)

	if !cfg.Serial() {
		var macs int64
		if cfg.HasFrontEnd() {
			for _, s := range schedules {
				for _, col := range s.Columns {
					for _, e := range col.Entries {
						if e.Weight != 0 {
							macs++
						}
					}
				}
			}
		} else {
			// The dense baseline multiplies every lane every cycle.
			macs = int64(nrows) * int64(lanes) * int64(cols)
		}
		r.activity.ParallelMACs += macs * int64(W)
		r.cycles = int64(cols) * int64(W)
		return
	}
	ctx.needsWindows = true
	if cfg.Backend.OffsetEncoder() {
		r.activity.OffsetEncodes += int64(cols) * int64(lanes) * int64(W)
	}

	// Serial back-ends: column structure is window-independent; precompute
	// per-column, per-row lane references and SWAR participation masks once,
	// shared by every chunk. All grids carve from one pooled arena: refs and
	// rowPlanes are rebuilt wholesale (reused dirty); the |=-built gated
	// masks and +=-folded PE totals are zeroed at carve.
	ctx.gate = cfg.HasFrontEnd()
	var b *groupBufs
	if ws != nil {
		b = ws.getBufs()
	} else {
		b = groupBufsPool.Get().(*groupBufs)
	}
	ctx.bufs = b
	b.refs = grow(b.refs, cols*nrows*lanes)
	ctx.refs = b.refs[:cols*nrows*lanes]
	mw := laneWords(lanes)
	if ctx.gate {
		b.masks = grow(b.masks, cols*nrows*mw)
		ctx.masks = b.masks[:cols*nrows*mw]
		clear(ctx.masks)
		ctx.maskStride = mw
	} else {
		ctx.masks = fullLaneMaskShared(lanes)
		ctx.maskStride = 0
	}
	b.planes = grow(b.planes, nrows)
	ctx.rowPlanes = b.planes[:nrows]
	clear(ctx.rowPlanes)
	ctx.peStride = nrows * wg
	b.peTotals = grow(b.peTotals, nChunks*ctx.peStride)
	ctx.peTotals = b.peTotals[:nChunks*ctx.peStride]
	clear(ctx.peTotals)
	for ci := 0; ci < cols; ci++ {
		for ri := 0; ri < nrows; ri++ {
			col := schedules[ri].Columns[ci]
			refs := ctx.refs[(ci*nrows+ri)*lanes : (ci*nrows+ri+1)*lanes]
			var mask []uint64
			if ctx.gate {
				mask = ctx.masks[(ci*nrows+ri)*mw : (ci*nrows+ri+1)*mw]
			}
			for ln, e := range col.Entries {
				if e.Weight != 0 {
					refs[ln] = laneRef{
						step: int32(e.SrcStep), lane: int32(e.SrcLane),
						flat:   int32(e.SrcStep*lanes + e.SrcLane),
						weight: e.Weight,
					}
					if ctx.gate {
						mask[ln>>3] |= 0xff << (8 * uint(ln&7))
					}
				} else {
					refs[ln] = laneRef{
						step: int32(col.Head), lane: int32(ln),
						flat: int32(col.Head*lanes + ln),
					}
				}
			}
		}
	}
}

// evalWindows walks the serial back-end over the window range [w0, w1) —
// always whole window groups — and returns the chunk's partial sums.
//
// Lanes within a PE are lockstep every column (they feed one adder
// tree), so a PE's column duration is the max lane cost ("Column
// Sync"). PEs of a tile run decoupled — buffered weight columns and the
// per-PE psum registers absorb rate differences across windows and rows
// — and synchronize when the resident filter group completes ("implicit
// synchronization at the end of each group of concurrently processed
// activations", charged as "Tile Sync"). Each PE grid column owns the
// windows congruent to its position.
//
// Cost evaluation is single-pass: each lane's serial cost lands once per
// (column, row, window) in laneCost, feeding both the SWAR column-max
// (columnMax over the group's participation mask) and the census. When
// per-row cost planes are supplied, costs are gathered from the row's
// plane window slice by precomputed flat offset — no Act fetch, no
// costTable mask, no per-chunk grid build; rows of one act group share a
// plane, so row-invariant, grouped, and depthwise layers all take this
// path. planes == nil falls back to fetching each cost through lw.Act
// with the row's own filter index — the executable reference the plane
// gather is differentially pinned against.
func (ctx *groupCtx) evalWindows(cfg arch.Config, lw *nn.Lowered, ct *costTable, planes []*costPlane, wLo, wHi int, dst []int64) windowPartial {
	lanes, wg := cfg.Lanes, cfg.WindowsPerTile
	nrows, cols, f0 := ctx.nrows, ctx.cols, ctx.f0
	if dst == nil {
		dst = make([]int64, nrows*wg)
	}
	wp := windowPartial{peTotals: dst}
	// Lane costs live on the stack for every supported geometry; the slice
	// fallback only fires past 64 lanes.
	var lcBuf [64]uint8
	laneCost := lcBuf[:]
	if n := padLanes(lanes); n <= len(lcBuf) {
		laneCost = lcBuf[:n]
	} else {
		laneCost = make([]uint8, n)
	}
	for w0 := wLo; w0 < wHi; w0 += wg {
		w1 := w0 + wg
		if w1 > wHi {
			w1 = wHi
		}
		nw := w1 - w0
		for ci := 0; ci < cols; ci++ {
			for ri := 0; ri < nrows; ri++ {
				refs := ctx.refs[(ci*nrows+ri)*lanes : (ci*nrows+ri+1)*lanes]
				mask := ctx.masks
				if ctx.maskStride > 0 {
					mask = ctx.masks[(ci*nrows+ri)*ctx.maskStride : (ci*nrows+ri+1)*ctx.maskStride]
				}
				fIdx := f0 + ri
				var plane *costPlane
				if planes != nil {
					plane = planes[ri]
				}
				for wi := 0; wi < nw; wi++ {
					if plane != nil {
						g := plane.window(w0 + wi)
						for ln := 0; ln < lanes; ln++ {
							laneCost[ln] = g[refs[ln].flat]
						}
					} else {
						for ln := 0; ln < lanes; ln++ {
							rf := refs[ln]
							laneCost[ln] = ct.costU8(lw.Act(fIdx, w0+wi, int(rf.step), int(rf.lane)))
						}
					}
					peMax := columnMax(laneCost, mask)
					wp.peTotals[ri*wg+wi] += int64(peMax)
					// Lane census for this PE column, from the same costs.
					for ln := 0; ln < lanes; ln++ {
						rf := refs[ln]
						c := int(laneCost[ln])
						switch {
						case rf.weight != 0 && c > 0:
							wp.backEnd.Useful += int64(c)
							wp.backEnd.ColumnSync += int64(peMax - c)
							wp.serial += int64(c)
						case rf.weight != 0:
							wp.backEnd.AZero += int64(peMax)
						case c > 0:
							wp.backEnd.WZero += int64(peMax)
							if !ctx.gate {
								wp.serial += int64(c)
							}
						default:
							wp.backEnd.BothZero += int64(peMax)
						}
					}
				}
			}
		}
	}
	return wp
}

// finishGroup folds the chunk partials into the group's result shard. The
// fold order over chunks never matters: peTotals merge by element-wise
// addition and the census fields are sums, so the max/sync pass below sees
// exactly the accumulators the serial single-chunk walk would have built.
// The group's buffers return to the finishing worker's freelist (ws may be
// nil on test paths, which fall back to the shared pool).
func finishGroup(cfg arch.Config, ctx *groupCtx, partials []windowPartial, ws *workerState) groupResult {
	r := ctx.base
	if !ctx.needsWindows {
		ctx.releaseTo(ws)
		return r
	}
	lanes, rows, wg := cfg.Lanes, cfg.FiltersPerTile, cfg.WindowsPerTile
	defer ctx.releaseTo(ws)
	// Fold destructively into chunk 0's stride: the strides are disjoint
	// views of the group's arena, and nothing reads a chunk partial after
	// the fold.
	peTotals := partials[0].peTotals
	var serial int64
	for pi, wp := range partials {
		if pi > 0 {
			for i, t := range wp.peTotals {
				peTotals[i] += t
			}
		}
		r.backEnd.Add(wp.backEnd)
		serial += wp.serial
	}
	// Filter-group duration: the slowest PE of the tile.
	var groupCycles int64
	for _, t := range peTotals {
		if t > groupCycles {
			groupCycles = t
		}
	}
	// Tile-sync deficit for the PEs that carried work. PE columns with no
	// windows of their own are either serving reduction slices (the W < wg
	// split path — their lane time is already accounted on the owning
	// column) or idled by a partial final window group; neither is a sync
	// loss, so the census skips them. Absent rows burn the whole duration.
	for _, t := range peTotals {
		if t > 0 {
			r.backEnd.TileSync += (groupCycles - t) * int64(lanes)
		}
	}
	r.backEnd.WZero += int64(rows-ctx.nrows) * int64(wg) * int64(lanes) * groupCycles
	r.activity.SerialLaneCycles += serial
	r.cycles = groupCycles
	return r
}

// ceilDiv64 is ceil(a/b) for non-negative a. A non-positive divisor can
// only come from a misconfigured architecture parameter (e.g. a hand-built
// Config with PsumRegsPerPE = 0); returning a quietly would dress the
// misconfiguration up as a plausible cycle count, so it panics instead. The
// quotient-plus-remainder form cannot overflow for any a, unlike
// (a+b-1)/b.
func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("sim: ceilDiv64: non-positive divisor %d (misconfigured arch parameter?)", b))
	}
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// muxSelects counts activation-mux switch events: one per effectual entry
// per window for front-end configs.
func muxSelects(cfg arch.Config, schedules []*sched.Schedule, W int) int64 {
	if !cfg.HasFrontEnd() {
		return 0
	}
	var n int64
	for _, s := range schedules {
		for _, col := range s.Columns {
			for _, e := range col.Entries {
				if e.Weight != 0 {
					n++
				}
			}
		}
	}
	return n * int64(W)
}
