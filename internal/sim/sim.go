package sim

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/tensor"
)

// SimulateModel runs every layer of a model under the configuration with
// default engine options (GOMAXPROCS workers, shared schedule cache).
func SimulateModel(cfg arch.Config, m *nn.Model, acts []*tensor.T) (*Result, error) {
	return SimulateModelOpts(cfg, m, acts, Options{})
}

// SimulateModelOpts runs every layer of a model under the configuration,
// decomposed into independent (layer, filter-group) work items executed by
// the option's worker pool. Output is bit-identical at any Parallelism.
func SimulateModelOpts(cfg arch.Config, m *nn.Model, acts []*tensor.T, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lws, err := m.Lowered(cfg.Lanes, acts)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg.Name}
	res.Layers = simulateLayers(cfg, lws, opts)
	return res, nil
}

// SimulateLayer runs one lowered layer with default engine options.
//
// Mapping (Section 5.3): filters are assigned to tiles and PE rows; the
// serial back-ends process WindowsPerTile activation windows concurrently
// across PE columns. Layers with fewer windows than columns (CNN
// fully-connected layers) split the reduction across spare columns instead,
// combining partial sums over the per-row ring.
func SimulateLayer(cfg arch.Config, lw *nn.Lowered) LayerResult {
	return SimulateLayerOpts(cfg, lw, Options{})
}

// SimulateLayerOpts runs one lowered layer under the configuration and
// returns cycles, the Figure-9 censuses, and datapath activity.
func SimulateLayerOpts(cfg arch.Config, lw *nn.Lowered, opts Options) LayerResult {
	return simulateLayers(cfg, []*nn.Lowered{lw}, opts)[0]
}

// groupSpan is one work item: one resident filter group of one layer.
type groupSpan struct {
	layer  int
	f0, f1 int
}

// simulateLayers is the engine core shared by the layer and model entry
// points: it flattens every layer's filter groups into one work queue,
// executes them on the option's pool (each item accumulating a private
// groupResult shard), and merges the shards in (layer, group) order so the
// result does not depend on execution interleaving.
func simulateLayers(cfg arch.Config, lws []*nn.Lowered, opts Options) []LayerResult {
	for _, lw := range lws {
		if lw.Lanes != cfg.Lanes {
			panic(fmt.Sprintf("sim: lowered lanes %d != config lanes %d", lw.Lanes, cfg.Lanes))
		}
	}
	ct := newCostTable(cfg.BackEnd, cfg.Width)
	cache := opts.cache()
	rows := cfg.FiltersPerTile

	pads := make([][]bool, len(lws))
	outcomes := make([][]groupResult, len(lws))
	var items []groupSpan
	for li, lw := range lws {
		pads[li] = padMask(lw)
		denseGroups := (lw.Filters + rows - 1) / rows
		outcomes[li] = make([]groupResult, denseGroups)
		for g := 0; g < denseGroups; g++ {
			f0 := g * rows
			f1 := f0 + rows
			if f1 > lw.Filters {
				f1 = lw.Filters
			}
			items = append(items, groupSpan{layer: li, f0: f0, f1: f1})
		}
	}
	runPool(opts.workers(), len(items), func(i int) {
		it := items[i]
		outcomes[it.layer][it.f0/rows] = simulateGroup(cfg, lws[it.layer], ct, pads[it.layer], it.f0, it.f1, cache)
	})
	out := make([]LayerResult, len(lws))
	for li, lw := range lws {
		out[li] = mergeLayer(cfg, lw, outcomes[li])
	}
	return out
}

// mergeLayer folds the per-group shards into one LayerResult, in group
// order, reproducing exactly the accumulation the serial engine performs.
func mergeLayer(cfg arch.Config, lw *nn.Lowered, outcomes []groupResult) LayerResult {
	r := LayerResult{Name: lw.Name, MACs: lw.Layer().MACs()}

	rows := cfg.FiltersPerTile
	steps, F, W := lw.Steps, lw.Filters, lw.WindowCount

	// Dense baseline reference (DaDianNao++ shares the rows/lanes geometry).
	denseGroups := (F + rows - 1) / rows
	denseRounds := (denseGroups + cfg.Tiles - 1) / cfg.Tiles
	r.DenseCycles = int64(denseRounds) * int64(steps) * int64(W)

	// Reduction-split factor for window-poor layers on multi-column tiles.
	split := 1
	if W < cfg.WindowsPerTile {
		split = cfg.WindowsPerTile / W
		if split < 1 {
			split = 1
		}
	}

	// Activation scratchpad fetches are value-agnostic and identical across
	// the design family: every input activation is buffered once per kernel
	// row (row-buffer reuse along x) in each tile that consumes the layer.
	rowsPerAct := int64(1)
	if l := lw.Layer(); l.Kind != nn.FC && l.Stride > 0 {
		rowsPerAct = int64((l.R + l.Stride - 1) / l.Stride)
	}
	tilesUsed := denseGroups
	if tilesUsed > cfg.Tiles {
		tilesUsed = cfg.Tiles
	}
	r.Activity.ActReads = int64(len(lw.Input().Data)) * rowsPerAct * int64(tilesUsed)

	tileTime := make([]int64, cfg.Tiles)
	for g, gr := range outcomes {
		groupCycles := gr.cycles
		if split > 1 {
			groupCycles = (groupCycles + int64(split) - 1) / int64(split)
		}
		tileTime[g%cfg.Tiles] += groupCycles
		r.FrontEnd.Columns += gr.frontEnd.Columns
		r.FrontEnd.DenseSteps += gr.frontEnd.DenseSteps
		for k := range gr.frontEnd.Slots {
			r.FrontEnd.Slots[k] += gr.frontEnd.Slots[k]
		}
		r.BackEnd.Add(gr.backEnd)
		r.Activity.SerialLaneCycles += gr.activity.SerialLaneCycles
		r.Activity.ParallelMACs += gr.activity.ParallelMACs
		r.Activity.WSColumnReads += gr.activity.WSColumnReads
		r.Activity.MuxSelects += gr.activity.MuxSelects
		r.Activity.PsumAccesses += gr.activity.PsumAccesses
		r.Activity.OffsetEncodes += gr.activity.OffsetEncodes
	}
	for _, t := range tileTime {
		if t > r.Cycles {
			r.Cycles = t
		}
	}
	return r
}

// padMask materializes the channel-padding mask of the dense schedule, or
// nil when the layer has none.
func padMask(lw *nn.Lowered) []bool {
	pad := make([]bool, lw.Steps*lw.Lanes)
	any := false
	for st := 0; st < lw.Steps; st++ {
		for ln := 0; ln < lw.Lanes; ln++ {
			if lw.IsPad(st, ln) {
				pad[st*lw.Lanes+ln] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return pad
}

// laneRef is one lane's activation source in one schedule column: the
// promoted weight's dense position for effectual lanes, the window head for
// idle ones.
type laneRef struct {
	step, lane int32
	weight     int32 // 0 for idle lanes
}

// groupResult is one filter group's private accumulation shard: everything
// simulateGroup learns about the group, free of shared state so groups can
// execute on any worker in any order.
type groupResult struct {
	cycles   int64
	frontEnd sched.Stats
	backEnd  Breakdown
	activity Activity
}

// simulateGroup executes one resident filter group (one tile's PE rows)
// over all windows and returns the group's shard.
func simulateGroup(cfg arch.Config, lw *nn.Lowered, ct *costTable, pad []bool, f0, f1 int, cache *sched.Cache) groupResult {
	lanes, rows, wg := cfg.Lanes, cfg.FiltersPerTile, cfg.WindowsPerTile
	steps, W := lw.Steps, lw.WindowCount
	nrows := f1 - f0
	var r groupResult

	filters := make([]sched.Filter, nrows)
	for i := 0; i < nrows; i++ {
		filters[i] = sched.NewFilter(lanes, steps, lw.FilterRow(f0+i), pad)
	}
	var schedules []*sched.Schedule
	switch {
	case !cfg.HasFrontEnd():
		schedules = denseSchedules(filters)
	case cache != nil:
		schedules = cache.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler)
	default:
		schedules = sched.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler)
	}
	cols := 0
	if nrows > 0 {
		cols = schedules[0].Len()
	}

	// Front-end census.
	for i, s := range schedules {
		st := s.Stats(filters[i])
		r.frontEnd.Columns += st.Columns
		r.frontEnd.DenseSteps += st.DenseSteps
		for k := range st.Slots {
			r.frontEnd.Slots[k] += st.Slots[k]
		}
	}
	// Filter-count padding: PE rows beyond the layer's filters idle.
	r.frontEnd.Slots[sched.SlotPad] += int64(rows-nrows) * int64(cols) * int64(lanes)

	numWGroups := (W + wg - 1) / wg
	r.activity.WSColumnReads += int64(cols) * ceilDiv64(int64(numWGroups), int64(cfg.PsumRegsPerPE))
	r.activity.MuxSelects += muxSelects(cfg, schedules, W)
	r.activity.PsumAccesses += int64(nrows) * int64(cols) * int64(W)

	if cfg.BackEnd == arch.BitParallel {
		var macs int64
		if cfg.HasFrontEnd() {
			for _, s := range schedules {
				for _, col := range s.Columns {
					for _, e := range col.Entries {
						if e.Weight != 0 {
							macs++
						}
					}
				}
			}
		} else {
			// The dense baseline multiplies every lane every cycle.
			macs = int64(nrows) * int64(lanes) * int64(cols)
		}
		r.activity.ParallelMACs += macs * int64(W)
		r.cycles = int64(cols) * int64(W)
		return r
	}

	// Serial back-ends: column structure is window-independent; precompute
	// per-column, per-row lane references once.
	colRefs := make([][][]laneRef, cols)
	for ci := 0; ci < cols; ci++ {
		colRefs[ci] = make([][]laneRef, nrows)
		for ri := 0; ri < nrows; ri++ {
			col := schedules[ri].Columns[ci]
			refs := make([]laneRef, lanes)
			for ln, e := range col.Entries {
				if e.Weight != 0 {
					refs[ln] = laneRef{step: int32(e.SrcStep), lane: int32(e.SrcLane), weight: e.Weight}
				} else {
					refs[ln] = laneRef{step: int32(col.Head), lane: int32(ln)}
				}
			}
			colRefs[ci][ri] = refs
		}
	}

	// Lanes within a PE are lockstep every column (they feed one adder
	// tree), so a PE's column duration is the max lane cost ("Column
	// Sync"). PEs of a tile run decoupled — buffered weight columns and the
	// per-PE psum registers absorb rate differences across windows and rows
	// — and synchronize when the resident filter group completes ("implicit
	// synchronization at the end of each group of concurrently processed
	// activations", charged as "Tile Sync"). Each PE grid column owns the
	// windows congruent to its position.
	//
	// Cost evaluation is single-pass: each lane's serial cost is computed
	// once per (column, row, window) into laneCost, feeding both the
	// column-max and the census. Where the activation fetch is
	// row-independent (FC, ungrouped conv), costs are precomputed per
	// window group into a dense (window, step, lane) grid and shared across
	// all PE rows and schedule columns.
	gate := cfg.HasFrontEnd()
	rowInv := lw.ActRowInvariant()
	var serial int64
	peTotals := make([]int64, nrows*wg)
	laneCost := make([]uint8, lanes)
	var grid []uint8
	if rowInv {
		grid = make([]uint8, wg*steps*lanes)
	}
	for w0 := 0; w0 < W; w0 += wg {
		w1 := w0 + wg
		if w1 > W {
			w1 = W
		}
		nw := w1 - w0
		if rowInv {
			for wi := 0; wi < nw; wi++ {
				g := grid[wi*steps*lanes : (wi+1)*steps*lanes]
				for st := 0; st < steps; st++ {
					for ln := 0; ln < lanes; ln++ {
						g[st*lanes+ln] = ct.costU8(lw.Act(f0, w0+wi, st, ln))
					}
				}
			}
		}
		for ci := 0; ci < cols; ci++ {
			for ri := 0; ri < nrows; ri++ {
				refs := colRefs[ci][ri]
				fIdx := f0 + ri
				for wi := 0; wi < nw; wi++ {
					peMax := 1
					if rowInv {
						g := grid[wi*steps*lanes:]
						for ln := 0; ln < lanes; ln++ {
							rf := refs[ln]
							c := g[int(rf.step)*lanes+int(rf.lane)]
							laneCost[ln] = c
							if (rf.weight != 0 || !gate) && int(c) > peMax {
								peMax = int(c)
							}
						}
					} else {
						for ln := 0; ln < lanes; ln++ {
							rf := refs[ln]
							c := ct.costU8(lw.Act(fIdx, w0+wi, int(rf.step), int(rf.lane)))
							laneCost[ln] = c
							if (rf.weight != 0 || !gate) && int(c) > peMax {
								peMax = int(c)
							}
						}
					}
					peTotals[ri*wg+wi] += int64(peMax)
					// Lane census for this PE column, from the same costs.
					for ln := 0; ln < lanes; ln++ {
						rf := refs[ln]
						c := int(laneCost[ln])
						switch {
						case rf.weight != 0 && c > 0:
							r.backEnd.Useful += int64(c)
							r.backEnd.ColumnSync += int64(peMax - c)
							serial += int64(c)
						case rf.weight != 0:
							r.backEnd.AZero += int64(peMax)
						case c > 0:
							r.backEnd.WZero += int64(peMax)
							if !gate {
								serial += int64(c)
							}
						default:
							r.backEnd.BothZero += int64(peMax)
						}
					}
				}
			}
		}
	}
	// Filter-group duration: the slowest PE of the tile.
	var groupCycles int64
	for _, t := range peTotals {
		if t > groupCycles {
			groupCycles = t
		}
	}
	// Tile-sync deficit for the PEs that carried work. PE columns with no
	// windows of their own are either serving reduction slices (the W < wg
	// split path — their lane time is already accounted on the owning
	// column) or idled by a partial final window group; neither is a sync
	// loss, so the census skips them. Absent rows burn the whole duration.
	for _, t := range peTotals {
		if t > 0 {
			r.backEnd.TileSync += (groupCycles - t) * int64(lanes)
		}
	}
	r.backEnd.WZero += int64(rows-nrows) * int64(wg) * int64(lanes) * groupCycles
	r.activity.SerialLaneCycles += serial
	if cfg.BackEnd == arch.TCLe {
		r.activity.OffsetEncodes += int64(cols) * int64(lanes) * int64(W)
	}
	r.cycles = groupCycles
	return r
}

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// muxSelects counts activation-mux switch events: one per effectual entry
// per window for front-end configs.
func muxSelects(cfg arch.Config, schedules []*sched.Schedule, W int) int64 {
	if !cfg.HasFrontEnd() {
		return 0
	}
	var n int64
	for _, s := range schedules {
		for _, col := range s.Columns {
			for _, e := range col.Entries {
				if e.Weight != 0 {
					n++
				}
			}
		}
	}
	return n * int64(W)
}

// denseSchedules builds the value-agnostic dense schedule: one column per
// step, every weight in place, nothing skipped.
func denseSchedules(filters []sched.Filter) []*sched.Schedule {
	out := make([]*sched.Schedule, len(filters))
	for i, f := range filters {
		s := &sched.Schedule{Lanes: f.Lanes, DenseSteps: f.Steps}
		for st := 0; st < f.Steps; st++ {
			col := sched.Column{Head: st, Advance: 1, Entries: make([]sched.Entry, f.Lanes)}
			for ln := 0; ln < f.Lanes; ln++ {
				if w := f.At(st, ln); w != 0 {
					col.Entries[ln] = sched.Entry{Weight: w, SrcStep: st, SrcLane: ln}
				}
			}
			s.Columns = append(s.Columns, col)
		}
		out[i] = s
	}
	return out
}
