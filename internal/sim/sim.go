package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bittactical/internal/arch"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/tensor"
)

// layerLatency records, per layer, the wall time from the first work item
// of that layer starting to its last filter group finishing — the quantity
// an operator of the evaluation service watches per request.
var layerLatency = metrics.Default.Histogram("sim_layer_latency")

// SimulateModel runs every layer of a model under the configuration with
// default engine options (GOMAXPROCS workers, shared schedule cache).
func SimulateModel(cfg arch.Config, m *nn.Model, acts []*tensor.T) (*Result, error) {
	return SimulateModelOpts(cfg, m, acts, Options{})
}

// SimulateModelOpts runs every layer of a model under the configuration,
// decomposed into independent (layer, filter-group) work items executed by
// the option's worker pool. Output is bit-identical at any Parallelism.
func SimulateModelOpts(cfg arch.Config, m *nn.Model, acts []*tensor.T, opts Options) (*Result, error) {
	return SimulateModelContext(context.Background(), cfg, m, acts, opts)
}

// SimulateModelContext is SimulateModelOpts under a context: when ctx is
// cancelled or its deadline passes, workers stop claiming (group,
// window-chunk) items — in-flight items finish first — and the call returns
// (nil, ctx.Err()) with no partial result. An uncancelled context yields
// output bit-identical to SimulateModelOpts.
func SimulateModelContext(ctx context.Context, cfg arch.Config, m *nn.Model, acts []*tensor.T, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lws, err := m.Lowered(cfg.Lanes, acts)
	if err != nil {
		return nil, err
	}
	layers, err := simulateLayers(ctx, cfg, lws, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Config: cfg.Name, Layers: layers}, nil
}

// SimulateLayer runs one lowered layer with default engine options.
//
// Mapping (Section 5.3): filters are assigned to tiles and PE rows; the
// serial back-ends process WindowsPerTile activation windows concurrently
// across PE columns. Layers with fewer windows than columns (CNN
// fully-connected layers) split the reduction across spare columns instead,
// combining partial sums over the per-row ring.
func SimulateLayer(cfg arch.Config, lw *nn.Lowered) LayerResult {
	return SimulateLayerOpts(cfg, lw, Options{})
}

// SimulateLayerOpts runs one lowered layer under the configuration and
// returns cycles, the Figure-9 censuses, and datapath activity.
func SimulateLayerOpts(cfg arch.Config, lw *nn.Lowered, opts Options) LayerResult {
	rs, err := simulateLayers(context.Background(), cfg, []*nn.Lowered{lw}, opts)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return rs[0]
}

// SimulateLayerContext is SimulateLayerOpts with the cancellation semantics
// of SimulateModelContext.
func SimulateLayerContext(ctx context.Context, cfg arch.Config, lw *nn.Lowered, opts Options) (LayerResult, error) {
	rs, err := simulateLayers(ctx, cfg, []*nn.Lowered{lw}, opts)
	if err != nil {
		return LayerResult{}, err
	}
	return rs[0], nil
}

// workItem is one unit of pool work: one window chunk [w0, w1) of one
// resident filter group of one layer of one sweep config. Most groups are a
// single chunk; when a load yields fewer filter groups than workers, groups
// split below the filter-group grain into contiguous window ranges (aligned
// to the tile's window-group size) so the pool stays busy on
// low-group-count layers — the fig8b scaling cliff.
type workItem struct {
	work         *configWork
	layer, group int
	f0, f1       int
	w0, w1       int
	chunk        int
}

// configWork is one sweep config's private slice of the shared pool run:
// its cost table, per-layer pad masks, lazily-resolved activation cost
// planes, and the per-group accumulators its chunks fold into. A sweep
// flattens every config's chunks into one queue, so independent configs
// overlap in the pool instead of executing back to back.
type configWork struct {
	cfg    arch.Config
	lws    []*nn.Lowered
	ct     *costTable
	pads   [][]bool
	planes []planeSlot
	accums [][]groupAccum
	// Per-layer latency tracking: first-touch timestamp (CAS once) and a
	// countdown of unfinished groups; the worker finishing a layer's last
	// group observes the span.
	layerStart     []atomic.Int64
	layerRemaining []atomic.Int32
}

// planeSlot resolves one layer's activation cost plane at most once per
// run, whichever chunk worker gets there first; concurrent chunks of other
// groups of the same layer wait on the Once instead of duplicating the
// cache lookup (and, through the cache's own single-flight, the build).
type planeSlot struct {
	once  sync.Once
	plane *costPlane
}

// planeFor returns layer li's cost plane, from the cache when one is
// configured, built privately otherwise. Only called for row-invariant
// layers under a serial back-end — the combination the plane layout is
// defined for.
func (cw *configWork) planeFor(li int, pc *PlaneCache) *costPlane {
	s := &cw.planes[li]
	s.once.Do(func() {
		if pc != nil {
			s.plane = pc.get(cw.lws[li], cw.cfg.Backend, cw.cfg.Width, cw.ct)
		} else {
			s.plane = buildPlane(cw.lws[li], cw.ct)
		}
	})
	return s.plane
}

// groupAccum coordinates the chunks of one filter group. The first chunk
// worker to arrive prepares the shared group context (schedules, column
// references, window-independent censuses) under the Once; the last chunk to
// finish folds the window partials into the group's result shard and drops
// the context, keeping peak memory at the pre-chunking level. Every partial
// is a plain integer sum, so the fold is exact regardless of chunk count or
// completion order — parallel output stays bit-identical to serial at any
// worker count.
type groupAccum struct {
	once      sync.Once
	ctx       *groupCtx
	partials  []windowPartial
	remaining atomic.Int32
	result    groupResult
}

// simulateLayers runs one config — the single-entry case of the sweep core.
func simulateLayers(ctx context.Context, cfg arch.Config, lws []*nn.Lowered, opts Options) ([]LayerResult, error) {
	rs, err := simulateSweep(ctx, []arch.Config{cfg}, [][]*nn.Lowered{lws}, opts)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// simulateSweep is the engine core shared by the layer, model, and sweep
// entry points: it flattens every config's (layer, filter group) work into
// one queue (splitting groups into window chunks when groups alone cannot
// fill the pool), executes the chunks on the option's pool, and merges each
// config's shards in (layer, group) order so no result depends on execution
// interleaving — per config, output is bit-identical to a serial run at any
// Parallelism and any sweep composition. A cancelled ctx stops the pool
// from claiming further chunks and returns (nil, ctx.Err()) — never a
// partial merge.
func simulateSweep(ctx context.Context, cfgs []arch.Config, lwss [][]*nn.Lowered, opts Options) ([][]LayerResult, error) {
	cache := opts.cache()
	planeCache := opts.planeCache()
	workers := opts.workers()

	totalGroups := 0
	works := make([]*configWork, len(cfgs))
	for k, cfg := range cfgs {
		for _, lw := range lwss[k] {
			if lw.Lanes != cfg.Lanes {
				panic(fmt.Sprintf("sim: lowered lanes %d != config lanes %d", lw.Lanes, cfg.Lanes))
			}
			totalGroups += (lw.Filters + cfg.FiltersPerTile - 1) / cfg.FiltersPerTile
		}
	}

	var items []workItem
	for k, cfg := range cfgs {
		lws := lwss[k]
		cw := &configWork{
			cfg:            cfg,
			lws:            lws,
			ct:             newCostTable(cfg.Backend, cfg.Width),
			pads:           make([][]bool, len(lws)),
			planes:         make([]planeSlot, len(lws)),
			accums:         make([][]groupAccum, len(lws)),
			layerStart:     make([]atomic.Int64, len(lws)),
			layerRemaining: make([]atomic.Int32, len(lws)),
		}
		works[k] = cw
		rows := cfg.FiltersPerTile
		// Sub-group split factor: only when whole groups — across the whole
		// sweep — cannot occupy the pool, and only for the serial back-ends
		// whose per-window evaluation dominates (the bit-parallel path is
		// already window-independent and cheap).
		chunksPerGroup := 1
		if cfg.Serial() && totalGroups > 0 && totalGroups < workers {
			chunksPerGroup = (workers + totalGroups - 1) / totalGroups
		}
		for li, lw := range lws {
			cw.pads[li] = padMask(lw)
			denseGroups := (lw.Filters + rows - 1) / rows
			cw.accums[li] = make([]groupAccum, denseGroups)
			cw.layerRemaining[li].Store(int32(denseGroups))
			// Chunks are aligned to the tile's window-group size so each chunk
			// sees whole window groups (the unit the PE-total accumulation is
			// indexed by).
			windowGroups := (lw.WindowCount + cfg.WindowsPerTile - 1) / cfg.WindowsPerTile
			nChunks := min(chunksPerGroup, windowGroups)
			if nChunks < 1 {
				nChunks = 1
			}
			for g := 0; g < denseGroups; g++ {
				f0 := g * rows
				f1 := min(f0+rows, lw.Filters)
				ga := &cw.accums[li][g]
				ga.partials = make([]windowPartial, nChunks)
				ga.remaining.Store(int32(nChunks))
				for c := 0; c < nChunks; c++ {
					// Even split of window groups across chunks, in window units.
					wg0 := windowGroups * c / nChunks
					wg1 := windowGroups * (c + 1) / nChunks
					items = append(items, workItem{
						work: cw, layer: li, group: g, f0: f0, f1: f1,
						w0:    wg0 * cfg.WindowsPerTile,
						w1:    min(wg1*cfg.WindowsPerTile, lw.WindowCount),
						chunk: c,
					})
				}
			}
		}
	}
	completed := runPool(ctx.Done(), workers, len(items), func(i int) {
		it := items[i]
		cw := it.work
		lw := cw.lws[it.layer]
		if cw.layerStart[it.layer].Load() == 0 {
			cw.layerStart[it.layer].CompareAndSwap(0, time.Now().UnixNano())
		}
		ga := &cw.accums[it.layer][it.group]
		ga.once.Do(func() {
			ga.ctx = prepareGroup(cw.cfg, lw, cw.ct, cw.pads[it.layer], it.f0, it.f1, cache)
		})
		var wp windowPartial
		if ga.ctx.needsWindows {
			var plane *costPlane
			if ga.ctx.rowInv {
				plane = cw.planeFor(it.layer, planeCache)
			}
			wp = ga.ctx.evalWindows(cw.cfg, lw, cw.ct, plane, it.w0, it.w1)
		}
		ga.partials[it.chunk] = wp
		if ga.remaining.Add(-1) == 0 {
			ga.result = finishGroup(cw.cfg, ga.ctx, ga.partials)
			ga.ctx = nil
			if cw.layerRemaining[it.layer].Add(-1) == 0 {
				layerLatency.Observe(time.Duration(time.Now().UnixNano() - cw.layerStart[it.layer].Load()))
			}
		}
	})
	if !completed {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Unreachable: the pool only stops early when ctx is done.
		return nil, context.Canceled
	}
	out := make([][]LayerResult, len(works))
	for k, cw := range works {
		out[k] = make([]LayerResult, len(cw.lws))
		for li, lw := range cw.lws {
			outcomes := make([]groupResult, len(cw.accums[li]))
			for g := range cw.accums[li] {
				outcomes[g] = cw.accums[li][g].result
			}
			out[k][li] = mergeLayer(cw.cfg, lw, outcomes)
		}
	}
	return out, nil
}

// mergeLayer folds the per-group shards into one LayerResult, in group
// order, reproducing exactly the accumulation the serial engine performs.
func mergeLayer(cfg arch.Config, lw *nn.Lowered, outcomes []groupResult) LayerResult {
	r := LayerResult{Name: lw.Name, MACs: lw.Layer().MACs()}

	rows := cfg.FiltersPerTile
	steps, F, W := lw.Steps, lw.Filters, lw.WindowCount

	// Dense baseline reference (DaDianNao++ shares the rows/lanes geometry).
	denseGroups := (F + rows - 1) / rows
	denseRounds := (denseGroups + cfg.Tiles - 1) / cfg.Tiles
	r.DenseCycles = int64(denseRounds) * int64(steps) * int64(W)

	// Reduction-split factor for window-poor layers on multi-column tiles.
	split := 1
	if W < cfg.WindowsPerTile {
		split = cfg.WindowsPerTile / W
		if split < 1 {
			split = 1
		}
	}

	// Activation scratchpad fetches are value-agnostic and identical across
	// the design family: every input activation is buffered once per kernel
	// row (row-buffer reuse along x) in each tile that consumes the layer.
	rowsPerAct := int64(1)
	if l := lw.Layer(); l.Kind != nn.FC && l.Stride > 0 {
		rowsPerAct = int64((l.R + l.Stride - 1) / l.Stride)
	}
	tilesUsed := denseGroups
	if tilesUsed > cfg.Tiles {
		tilesUsed = cfg.Tiles
	}
	r.Activity.ActReads = int64(len(lw.Input().Data)) * rowsPerAct * int64(tilesUsed)

	tileTime := make([]int64, cfg.Tiles)
	for g, gr := range outcomes {
		groupCycles := gr.cycles
		if split > 1 {
			groupCycles = (groupCycles + int64(split) - 1) / int64(split)
		}
		tileTime[g%cfg.Tiles] += groupCycles
		r.FrontEnd.Columns += gr.frontEnd.Columns
		r.FrontEnd.DenseSteps += gr.frontEnd.DenseSteps
		for k := range gr.frontEnd.Slots {
			r.FrontEnd.Slots[k] += gr.frontEnd.Slots[k]
		}
		r.BackEnd.Add(gr.backEnd)
		r.Activity.SerialLaneCycles += gr.activity.SerialLaneCycles
		r.Activity.ParallelMACs += gr.activity.ParallelMACs
		r.Activity.WSColumnReads += gr.activity.WSColumnReads
		r.Activity.MuxSelects += gr.activity.MuxSelects
		r.Activity.PsumAccesses += gr.activity.PsumAccesses
		r.Activity.OffsetEncodes += gr.activity.OffsetEncodes
	}
	for _, t := range tileTime {
		if t > r.Cycles {
			r.Cycles = t
		}
	}
	return r
}

// padMask materializes the channel-padding mask of the dense schedule, or
// nil when the layer has none.
func padMask(lw *nn.Lowered) []bool {
	pad := make([]bool, lw.Steps*lw.Lanes)
	any := false
	for st := 0; st < lw.Steps; st++ {
		for ln := 0; ln < lw.Lanes; ln++ {
			if lw.IsPad(st, ln) {
				pad[st*lw.Lanes+ln] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return pad
}

// laneRef is one lane's activation source in one schedule column: the
// promoted weight's dense position for effectual lanes, the window head for
// idle ones. flat is the precomputed step*lanes+lane plane offset so the
// window walk gathers straight out of a cost plane's window slice.
type laneRef struct {
	step, lane int32
	flat       int32
	weight     int32 // 0 for idle lanes
}

// groupResult is one filter group's private accumulation shard: everything
// simulateGroup learns about the group, free of shared state so groups can
// execute on any worker in any order.
type groupResult struct {
	cycles   int64
	frontEnd sched.Stats
	backEnd  Breakdown
	activity Activity
}

// groupCtx is the window-independent state of one filter group, built once
// per group (under the groupAccum's Once) and shared read-only by every
// window chunk of that group.
type groupCtx struct {
	f0, f1       int
	nrows, cols  int
	needsWindows bool // serial back-ends walk windows; bit-parallel is done at prepare
	colRefs      [][][]laneRef
	// colMasks[ci][ri] is the packed SWAR participation mask of one (column,
	// row): 0xFF bytes for lanes that join the column sync (effectual
	// weights, or every lane when the config has no front-end to gate the
	// rest), 0x00 elsewhere. Gate-free groups share one fullLaneMask slice.
	colMasks     [][][]uint64
	gate, rowInv bool
	base         groupResult // window-independent accumulations (full result when !needsWindows)
}

// windowPartial is one chunk's contribution: per-(row, PE column) cycle
// totals plus the lane census and serial-cycle count over the chunk's
// windows. All fields are exact integer sums, so chunk partials fold
// element-wise into precisely the serial engine's accumulators.
type windowPartial struct {
	peTotals []int64
	backEnd  Breakdown
	serial   int64
}

// prepareGroup builds one resident filter group's shared context: filters,
// schedules, the front-end census, datapath activity that depends only on
// column structure, and the per-column lane references the window walk
// consumes. For the bit-parallel back-end the group's full result is
// computed here (its cost model is window-independent).
func prepareGroup(cfg arch.Config, lw *nn.Lowered, ct *costTable, pad []bool, f0, f1 int, cache *sched.Cache) *groupCtx {
	lanes, rows, wg := cfg.Lanes, cfg.FiltersPerTile, cfg.WindowsPerTile
	steps, W := lw.Steps, lw.WindowCount
	nrows := f1 - f0
	ctx := &groupCtx{f0: f0, f1: f1, nrows: nrows}
	r := &ctx.base

	filters := make([]sched.Filter, nrows)
	for i := 0; i < nrows; i++ {
		filters[i] = sched.NewFilter(lanes, steps, lw.FilterRow(f0+i), pad)
	}
	var schedules []*sched.Schedule
	switch {
	case !cfg.HasFrontEnd():
		schedules = denseSchedules(filters)
	case cache != nil:
		schedules = cache.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler)
	default:
		schedules = sched.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler)
	}
	cols := 0
	if nrows > 0 {
		cols = schedules[0].Len()
	}
	ctx.cols = cols

	// Front-end census.
	for i, s := range schedules {
		st := s.Stats(filters[i])
		r.frontEnd.Columns += st.Columns
		r.frontEnd.DenseSteps += st.DenseSteps
		for k := range st.Slots {
			r.frontEnd.Slots[k] += st.Slots[k]
		}
	}
	// Filter-count padding: PE rows beyond the layer's filters idle.
	r.frontEnd.Slots[sched.SlotPad] += int64(rows-nrows) * int64(cols) * int64(lanes)

	numWGroups := (W + wg - 1) / wg
	r.activity.WSColumnReads += int64(cols) * ceilDiv64(int64(numWGroups), int64(cfg.PsumRegsPerPE))
	r.activity.MuxSelects += muxSelects(cfg, schedules, W)
	r.activity.PsumAccesses += int64(nrows) * int64(cols) * int64(W)

	if !cfg.Serial() {
		var macs int64
		if cfg.HasFrontEnd() {
			for _, s := range schedules {
				for _, col := range s.Columns {
					for _, e := range col.Entries {
						if e.Weight != 0 {
							macs++
						}
					}
				}
			}
		} else {
			// The dense baseline multiplies every lane every cycle.
			macs = int64(nrows) * int64(lanes) * int64(cols)
		}
		r.activity.ParallelMACs += macs * int64(W)
		r.cycles = int64(cols) * int64(W)
		return ctx
	}
	ctx.needsWindows = true
	if cfg.Backend.OffsetEncoder() {
		r.activity.OffsetEncodes += int64(cols) * int64(lanes) * int64(W)
	}

	// Serial back-ends: column structure is window-independent; precompute
	// per-column, per-row lane references and SWAR participation masks once,
	// shared by every chunk.
	ctx.gate = cfg.HasFrontEnd()
	ctx.rowInv = lw.ActRowInvariant()
	var sharedMask []uint64
	if !ctx.gate {
		sharedMask = fullLaneMask(lanes)
	}
	ctx.colRefs = make([][][]laneRef, cols)
	ctx.colMasks = make([][][]uint64, cols)
	for ci := 0; ci < cols; ci++ {
		ctx.colRefs[ci] = make([][]laneRef, nrows)
		ctx.colMasks[ci] = make([][]uint64, nrows)
		for ri := 0; ri < nrows; ri++ {
			col := schedules[ri].Columns[ci]
			refs := make([]laneRef, lanes)
			mask := sharedMask
			if ctx.gate {
				mask = make([]uint64, laneWords(lanes))
			}
			for ln, e := range col.Entries {
				if e.Weight != 0 {
					refs[ln] = laneRef{
						step: int32(e.SrcStep), lane: int32(e.SrcLane),
						flat:   int32(e.SrcStep*lanes + e.SrcLane),
						weight: e.Weight,
					}
					if ctx.gate {
						mask[ln>>3] |= 0xff << (8 * uint(ln&7))
					}
				} else {
					refs[ln] = laneRef{
						step: int32(col.Head), lane: int32(ln),
						flat: int32(col.Head*lanes + ln),
					}
				}
			}
			ctx.colRefs[ci][ri] = refs
			ctx.colMasks[ci][ri] = mask
		}
	}
	return ctx
}

// evalWindows walks the serial back-end over the window range [w0, w1) —
// always whole window groups — and returns the chunk's partial sums.
//
// Lanes within a PE are lockstep every column (they feed one adder
// tree), so a PE's column duration is the max lane cost ("Column
// Sync"). PEs of a tile run decoupled — buffered weight columns and the
// per-PE psum registers absorb rate differences across windows and rows
// — and synchronize when the resident filter group completes ("implicit
// synchronization at the end of each group of concurrently processed
// activations", charged as "Tile Sync"). Each PE grid column owns the
// windows congruent to its position.
//
// Cost evaluation is single-pass: each lane's serial cost lands once per
// (column, row, window) in laneCost, feeding both the SWAR column-max
// (columnMax over the group's participation mask) and the census. When a
// cost plane is supplied (row-invariant layers), costs are gathered from
// the plane's window slice by precomputed flat offset — no Act fetch, no
// costTable mask, no per-chunk grid build. plane == nil falls back to
// fetching each cost through lw.Act with the row's own filter index; the
// engine takes that path for row-variant layers (grouped/depthwise conv),
// and the differential tests drive it on row-invariant layers too, as the
// executable reference the plane gather is pinned against.
func (ctx *groupCtx) evalWindows(cfg arch.Config, lw *nn.Lowered, ct *costTable, plane *costPlane, wLo, wHi int) windowPartial {
	lanes, wg := cfg.Lanes, cfg.WindowsPerTile
	nrows, cols, f0 := ctx.nrows, ctx.cols, ctx.f0
	wp := windowPartial{peTotals: make([]int64, nrows*wg)}
	laneCost := make([]uint8, padLanes(lanes))
	for w0 := wLo; w0 < wHi; w0 += wg {
		w1 := w0 + wg
		if w1 > wHi {
			w1 = wHi
		}
		nw := w1 - w0
		for ci := 0; ci < cols; ci++ {
			for ri := 0; ri < nrows; ri++ {
				refs := ctx.colRefs[ci][ri]
				mask := ctx.colMasks[ci][ri]
				fIdx := f0 + ri
				for wi := 0; wi < nw; wi++ {
					if plane != nil {
						g := plane.window(w0 + wi)
						for ln := 0; ln < lanes; ln++ {
							laneCost[ln] = g[refs[ln].flat]
						}
					} else {
						for ln := 0; ln < lanes; ln++ {
							rf := refs[ln]
							laneCost[ln] = ct.costU8(lw.Act(fIdx, w0+wi, int(rf.step), int(rf.lane)))
						}
					}
					peMax := columnMax(laneCost, mask)
					wp.peTotals[ri*wg+wi] += int64(peMax)
					// Lane census for this PE column, from the same costs.
					for ln := 0; ln < lanes; ln++ {
						rf := refs[ln]
						c := int(laneCost[ln])
						switch {
						case rf.weight != 0 && c > 0:
							wp.backEnd.Useful += int64(c)
							wp.backEnd.ColumnSync += int64(peMax - c)
							wp.serial += int64(c)
						case rf.weight != 0:
							wp.backEnd.AZero += int64(peMax)
						case c > 0:
							wp.backEnd.WZero += int64(peMax)
							if !ctx.gate {
								wp.serial += int64(c)
							}
						default:
							wp.backEnd.BothZero += int64(peMax)
						}
					}
				}
			}
		}
	}
	return wp
}

// finishGroup folds the chunk partials into the group's result shard. The
// fold order over chunks never matters: peTotals merge by element-wise
// addition and the census fields are sums, so the max/sync pass below sees
// exactly the accumulators the serial single-chunk walk would have built.
func finishGroup(cfg arch.Config, ctx *groupCtx, partials []windowPartial) groupResult {
	r := ctx.base
	if !ctx.needsWindows {
		return r
	}
	lanes, rows, wg := cfg.Lanes, cfg.FiltersPerTile, cfg.WindowsPerTile
	peTotals := make([]int64, ctx.nrows*wg)
	var serial int64
	for _, wp := range partials {
		for i, t := range wp.peTotals {
			peTotals[i] += t
		}
		r.backEnd.Add(wp.backEnd)
		serial += wp.serial
	}
	// Filter-group duration: the slowest PE of the tile.
	var groupCycles int64
	for _, t := range peTotals {
		if t > groupCycles {
			groupCycles = t
		}
	}
	// Tile-sync deficit for the PEs that carried work. PE columns with no
	// windows of their own are either serving reduction slices (the W < wg
	// split path — their lane time is already accounted on the owning
	// column) or idled by a partial final window group; neither is a sync
	// loss, so the census skips them. Absent rows burn the whole duration.
	for _, t := range peTotals {
		if t > 0 {
			r.backEnd.TileSync += (groupCycles - t) * int64(lanes)
		}
	}
	r.backEnd.WZero += int64(rows-ctx.nrows) * int64(wg) * int64(lanes) * groupCycles
	r.activity.SerialLaneCycles += serial
	r.cycles = groupCycles
	return r
}

// ceilDiv64 is ceil(a/b) for non-negative a. A non-positive divisor can
// only come from a misconfigured architecture parameter (e.g. a hand-built
// Config with PsumRegsPerPE = 0); returning a quietly would dress the
// misconfiguration up as a plausible cycle count, so it panics instead. The
// quotient-plus-remainder form cannot overflow for any a, unlike
// (a+b-1)/b.
func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("sim: ceilDiv64: non-positive divisor %d (misconfigured arch parameter?)", b))
	}
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// muxSelects counts activation-mux switch events: one per effectual entry
// per window for front-end configs.
func muxSelects(cfg arch.Config, schedules []*sched.Schedule, W int) int64 {
	if !cfg.HasFrontEnd() {
		return 0
	}
	var n int64
	for _, s := range schedules {
		for _, col := range s.Columns {
			for _, e := range col.Entries {
				if e.Weight != 0 {
					n++
				}
			}
		}
	}
	return n * int64(W)
}

// denseSchedules builds the value-agnostic dense schedule: one column per
// step, every weight in place, nothing skipped.
func denseSchedules(filters []sched.Filter) []*sched.Schedule {
	out := make([]*sched.Schedule, len(filters))
	for i, f := range filters {
		s := &sched.Schedule{Lanes: f.Lanes, DenseSteps: f.Steps}
		for st := 0; st < f.Steps; st++ {
			col := sched.Column{Head: st, Advance: 1, Entries: make([]sched.Entry, f.Lanes)}
			for ln := 0; ln < f.Lanes; ln++ {
				if w := f.At(st, ln); w != 0 {
					col.Entries[ln] = sched.Entry{Weight: w, SrcStep: st, SrcLane: ln}
				}
			}
			s.Columns = append(s.Columns, col)
		}
		out[i] = s
	}
	return out
}
