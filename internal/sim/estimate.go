package sim

import (
	"bittactical/internal/arch"
	"bittactical/internal/nn"
)

// EstimateLayerCost predicts the serial cycles layer l contributes to a
// sweep under cfg, from geometry alone — no activations, no scheduling, no
// simulation. It is exactly the dense-baseline arithmetic mergeLayer uses
// for LayerResult.DenseCycles (ceil(ceil(F/rows)/tiles) · Steps · Windows),
// so the prediction is pinned testable against real engine output.
//
// The serving tier's shard coordinator balances layer partitions on this
// value: the per-layer serial cost of every back-end in the family is the
// dense schedule length scaled by a value-dependent compaction factor that
// varies far less across layers than the orders-of-magnitude geometric
// spread between a conv1-class layer and a late fully-connected one, so the
// dense prediction ranks layers by cost well enough for LPT bin packing.
func EstimateLayerCost(cfg arch.Config, l *nn.Layer) (int64, error) {
	// Lower touches only layer geometry until an activation is fetched, so a
	// nil input tensor is safe here.
	lw, err := nn.Lower(l, nil, cfg.Lanes)
	if err != nil {
		return 0, err
	}
	denseGroups := (lw.Filters + cfg.FiltersPerTile - 1) / cfg.FiltersPerTile
	denseRounds := (denseGroups + cfg.Tiles - 1) / cfg.Tiles
	return int64(denseRounds) * int64(lw.Steps) * int64(lw.WindowCount), nil
}

// EstimateSweepLayerCosts predicts each layer's serial-cycle contribution to
// a whole sweep: EstimateLayerCost summed over the sweep's configs, indexed
// like m.Layers. This is the cost key the shard coordinator's LPT
// partitioner balances worker slices on — a worker simulates its layer
// slice under every config, so the per-layer key must aggregate the sweep.
func EstimateSweepLayerCosts(cfgs []arch.Config, m *nn.Model) ([]int64, error) {
	costs := make([]int64, len(m.Layers))
	for _, cfg := range cfgs {
		for i, l := range m.Layers {
			c, err := EstimateLayerCost(cfg, l)
			if err != nil {
				return nil, err
			}
			costs[i] += c
		}
	}
	return costs, nil
}
