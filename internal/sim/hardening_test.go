package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// cancellationModel builds a model big enough that cancellation lands
// mid-run at every realistic scheduling interleaving.
func cancellationModel(t *testing.T) (*nn.Model, []*nn.Lowered) {
	t.Helper()
	cfg := nn.DefaultZoo()
	cfg.ChannelScale, cfg.SpatialScale = 0.2, 0.3
	m, err := nn.BuildModel("AlexNet-ES", cfg)
	if err != nil {
		t.Fatal(err)
	}
	lws, err := m.Lowered(16, m.GenerateActs(7))
	if err != nil {
		t.Fatal(err)
	}
	return m, lws
}

// TestSimulateCancellation pins the tentpole contract: a context cancelled
// mid-model returns promptly with ctx.Err() and no partial result, leaks no
// goroutines, and a context that is never cancelled yields output
// bit-identical to the context-free path.
func TestSimulateCancellation(t *testing.T) {
	m, _ := cancellationModel(t)
	acts := m.GenerateActs(7)
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)

	want, err := SimulateModelOpts(cfg, m, acts, Options{Parallelism: 4, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}

	// Uncancelled context: bit-identical to the context-free run.
	got, err := SimulateModelContext(context.Background(), cfg, m, acts, Options{Parallelism: 4, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("uncancelled SimulateModelContext differs from SimulateModelOpts")
	}

	// Already-cancelled context: immediate ctx.Err(), nil result.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SimulateModelContext(pre, cfg, m, acts, Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-cancelled: got (%v, %v), want (nil, context.Canceled)", res, err)
	}

	// Cancellation mid-run: prompt partial-free return and no goroutine
	// leak. The deadline is far shorter than the model's simulate time
	// (hundreds of ms at this scale), so it always lands mid-run.
	before := runtime.NumGoroutine()
	ctx, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	start := time.Now()
	res, err = SimulateModelContext(ctx, cfg, m, acts, Options{Parallelism: 4, DisableCache: true})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run cancel: err = %v, want DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatal("mid-run cancel returned a partial result")
	}
	// Prompt: bounded by one in-flight chunk per worker, far below the
	// full-model wall time.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v, want prompt return", elapsed)
	}
	// Workers exit after their current item; give stragglers a moment.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after cancelled simulate", before, after)
	}
}

// TestSimulateLayerContextCancel covers the single-layer ctx entry point.
func TestSimulateLayerContextCancel(t *testing.T) {
	lw := testConv(t, 41, 40, 24, 3, 3, 6, 0.6, 0.4)
	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLe)

	want := SimulateLayerOpts(cfg, lw, Options{Parallelism: 1, DisableCache: true})
	got, err := SimulateLayerContext(context.Background(), cfg, lw, Options{Parallelism: 4, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("uncancelled SimulateLayerContext differs from serial")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateLayerContext(ctx, cfg, lw, Options{Parallelism: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled layer simulate: err = %v, want context.Canceled", err)
	}
}

// TestRunPoolPanicPoisonsQueue pins the satellite bugfix: after one worker
// panics, the remaining workers must stop claiming items promptly instead
// of draining the whole queue behind the boxed panic.
func TestRunPoolPanicPoisonsQueue(t *testing.T) {
	const n = 100000
	const workers = 4
	var executed atomic.Int64
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		runPool(nil, workers, n, func(_, i int) {
			if i == 0 {
				panic("boom at item 0")
			}
			executed.Add(1)
			time.Sleep(10 * time.Microsecond)
		})
	}()
	if recovered == nil {
		t.Fatal("worker panic was not re-raised")
	}
	// Without poisoning the surviving workers drain all ~100k items; with
	// it each stops at its next claim. A generous bound still proves the
	// queue was abandoned, not drained.
	if got := executed.Load(); got > n/10 {
		t.Errorf("%d items executed after the panic, want prompt poisoning (<%d)", got, n/10)
	}
}

// TestRunPoolPanicPreservesStack asserts the re-raised value carries the
// original panic payload and the worker goroutine's stack trace.
func TestRunPoolPanicPreservesStack(t *testing.T) {
	sentinel := errors.New("original cause")
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		runPool(nil, 4, 64, func(_, i int) {
			if i == 3 {
				panic(sentinel)
			}
		})
	}()
	wp, ok := recovered.(*WorkerPanic)
	if !ok {
		t.Fatalf("re-raised value is %T, want *WorkerPanic", recovered)
	}
	if wp.Value != sentinel {
		t.Errorf("boxed value = %v, want the original sentinel", wp.Value)
	}
	if !errors.Is(wp, sentinel) {
		t.Error("errors.Is cannot reach the original error through the box")
	}
	msg := wp.Error()
	if !strings.Contains(msg, "original cause") || !strings.Contains(msg, "worker stack:") {
		t.Errorf("message lacks cause or stack:\n%s", msg)
	}
	if !strings.Contains(msg, "runPool") {
		t.Errorf("preserved stack does not mention the worker frame:\n%s", msg)
	}
}

// TestRunPoolDoneStopsClaims covers the pool-level cancellation primitive
// directly, including the inline (workers=1) path.
func TestRunPoolDoneStopsClaims(t *testing.T) {
	for _, workers := range []int{1, 4} {
		done := make(chan struct{})
		close(done)
		var executed atomic.Int64
		completed := runPool(done, workers, 1000, func(_, i int) { executed.Add(1) })
		if completed {
			t.Errorf("workers=%d: pool reported completion under a closed done channel", workers)
		}
		// Closed before the first claim: at most the items already in
		// flight (zero here, since done is checked before each claim).
		if got := executed.Load(); got != 0 {
			t.Errorf("workers=%d: %d items ran after done closed before start", workers, got)
		}
	}
	// A nil done channel never fires: the pool must run to completion.
	var executed atomic.Int64
	if !runPool(nil, 4, 100, func(_, i int) { executed.Add(1) }) {
		t.Error("nil done: pool did not report completion")
	}
	if executed.Load() != 100 {
		t.Errorf("nil done: executed %d items, want 100", executed.Load())
	}
}

// TestCeilDiv64 pins the satellite bugfix: a non-positive divisor is a
// loud panic, not a silently plausible cycle count, and large dividends no
// longer risk the (a+b-1) overflow.
func TestCeilDiv64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 1, 0},
		{1, 1, 1},
		{7, 2, 4},
		{8, 2, 4},
		{9, 4, 3},
		// Overflow-adjacent: (a+b-1) would wrap for these.
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64, 2, math.MaxInt64/2 + 1},
		{math.MaxInt64 - 1, math.MaxInt64, 1},
		{math.MaxInt64, math.MaxInt64, 1},
	}
	for _, c := range cases {
		if got := ceilDiv64(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	for _, b := range []int64{0, -1, math.MinInt64} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("ceilDiv64(10, %d) did not panic", b)
					return
				}
				if !strings.Contains(fmt.Sprint(r), "non-positive divisor") {
					t.Errorf("ceilDiv64(10, %d) panic = %v, want descriptive message", b, r)
				}
			}()
			ceilDiv64(10, b)
		}()
	}
}
