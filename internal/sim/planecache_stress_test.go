package sim

import (
	"reflect"
	"sync"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
)

// TestPlaneCacheSingleFlight pins the fill contract under contention: N
// concurrent requesters of one fresh key produce exactly one build (one
// miss; everyone else hits) and share the identical plane pointer.
func TestPlaneCacheSingleFlight(t *testing.T) {
	c := NewPlaneCache(0)
	lw := testFC(t, 60, 20, 40, 18, 0.7)
	be := arch.TCLe.Impl()
	ct := newCostTable(be, fixed.W16)

	const n = 8
	start := make(chan struct{})
	planes := make([]*costPlane, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			planes[i] = c.get(lw, be, fixed.W16, ct)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 1; i < n; i++ {
		if planes[i] != planes[0] {
			t.Fatalf("requester %d got a distinct plane pointer: the build was duplicated", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d for one key under %d concurrent requesters, want 1", st.Misses, n)
	}
	if st.Hits != n-1 {
		t.Errorf("hits = %d, want %d waiters", st.Hits, n-1)
	}
}

// TestPlaneCacheEvictionUnderConcurrentPressure drives the overflow drop
// (which discards every entry but the one being inserted) concurrently
// with single-flight waiters on a hot key. Whatever the interleaving —
// including a waiter blocked on a build whose entry the drop already
// discarded — every requester must get a correct plane, and the byte
// accounting must agree with the resident entries once the dust settles.
func TestPlaneCacheEvictionUnderConcurrentPressure(t *testing.T) {
	hot := testFC(t, 61, 20, 40, 18, 0.7)
	cold := make([]*nn.Lowered, 6)
	for i := range cold {
		cold[i] = testFC(t, int64(70+i), 20, 40, 18, 0.7)
	}
	be := arch.TCLe.Impl()
	ct := newCostTable(be, fixed.W16)
	one := buildPlane(hot, ct, 0).sizeBytes()
	want := buildPlane(hot, ct, 0)

	// Budget for ~2 planes: every few cold fills trip the overflow drop,
	// which may discard the hot entry mid-wait.
	c := NewPlaneCache(one*2 + one/2)

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w%2 == 0 {
					// Hot path: repeatedly demand the same plane.
					p := c.get(hot, be, fixed.W16, ct)
					if p == nil {
						t.Error("hot get returned nil plane")
						return
					}
				} else {
					// Churn path: walk distinct keys to force overflow drops.
					lw := cold[(w*iters+i)%len(cold)]
					if p := c.get(lw, be, fixed.W16, ct); p == nil {
						t.Error("cold get returned nil plane")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under churn; budget pressure never materialized")
	}
	if got := c.get(hot, be, fixed.W16, ct); !reflect.DeepEqual(got, want) {
		t.Error("hot plane after churn differs from a direct build")
	}

	// All builds have completed; resident bytes must equal the sum of the
	// resident planes, and fit the budget (a lone entry may exceed it).
	var sum int64
	entries := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		entries += len(s.m)
		for _, e := range s.m {
			if e.plane == nil {
				t.Error("resident entry with nil plane after all gets returned")
				continue
			}
			sum += e.plane.sizeBytes()
		}
		s.mu.Unlock()
	}
	bytes, budget := c.bytes.Load(), c.maxBytes
	if bytes != sum {
		t.Errorf("accounted bytes %d != resident plane bytes %d", bytes, sum)
	}
	if bytes > budget && entries > 1 {
		t.Errorf("%d resident entries hold %d bytes over the %d budget", entries, bytes, budget)
	}
}
