package sim

import (
	"fmt"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
)

// ExecuteGolden runs a layer value-exactly through the modeled datapath —
// front-end weight/activation pairing plus the selected back-end's
// arithmetic — and checks every output against the lowering's reference dot
// product. It returns the first mismatch as an error.
//
// This is the semantic-preservation invariant of DESIGN.md §5: a schedule
// may reorder work arbitrarily within its constraints, but each filter's
// psum must come out bit-exact.
func ExecuteGolden(cfg arch.Config, lw *nn.Lowered) error {
	pad := padMask(lw)
	rows := cfg.FiltersPerTile
	for f0 := 0; f0 < lw.Filters; f0 += rows {
		f1 := f0 + rows
		if f1 > lw.Filters {
			f1 = lw.Filters
		}
		filters := make([]sched.Filter, f1-f0)
		for i := range filters {
			filters[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
		}
		var schedules []*sched.Schedule
		if cfg.HasFrontEnd() {
			schedules = sched.ScheduleGroup(filters, cfg.Pattern, cfg.Scheduler)
			for i, s := range schedules {
				if err := sched.Verify(filters[i], cfg.Pattern, s); err != nil {
					return fmt.Errorf("sim: filter %d: %w", f0+i, err)
				}
			}
		} else {
			schedules = denseSchedules(&groupScratch{}, filters)
		}
		for i, s := range schedules {
			f := f0 + i
			for win := 0; win < lw.WindowCount; win++ {
				got := executePsum(cfg, lw, s, f, win)
				want := lw.ReferenceOutput(f, win)
				if got != want {
					return fmt.Errorf("sim: %s: filter %d window %d: datapath %d != reference %d",
						lw.Name, f, win, got, want)
				}
			}
		}
	}
	return nil
}

// executePsum accumulates one output through the modeled datapath: the WSU
// selects each entry's activation by its (SrcStep, SrcLane) mux setting;
// the back-end forms the product through its own arithmetic — bit-parallel
// multiply, bit-serial AND-adds (TCLp), Booth shift-adds (TCLe), or
// whatever the registered Backend's MAC models.
func executePsum(cfg arch.Config, lw *nn.Lowered, s *sched.Schedule, f, win int) int64 {
	var psum int64
	for _, col := range s.Columns {
		for _, e := range col.Entries {
			if e.Weight == 0 {
				continue
			}
			a := lw.Act(f, win, e.SrcStep, e.SrcLane)
			psum += cfg.Backend.MAC(e.Weight, a, cfg.Width)
		}
	}
	return psum
}
