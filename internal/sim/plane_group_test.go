// Differential tests for the grouped/depthwise plane path: per-act-group
// cost planes must be bit-identical to the nil-plane reference that
// re-fetches every cost through lw.Act with the row's own filter index,
// and the engine must actually take the plane path for row-variant
// layers (visible through the PlaneCache group counters).
package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	"bittactical/internal/backend/dstripes"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// testGroupedConv builds a grouped convolution: 8 filters over 32 input
// channels in `groups` filter groups, 5x5 input, W16 values.
func testGroupedConv(t *testing.T, seed int64, groups int) *nn.Lowered {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := &nn.Layer{Name: "gconv", Kind: nn.Conv, K: 8, C: 32, R: 3, S: 3,
		Stride: 1, Pad: 1, InH: 5, InW: 5, Groups: groups}
	l.Weights = tensor.New(8, 32/groups, 3, 3)
	sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.5)
	act := tensor.New(1, 32, 5, 5)
	sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 6, SigmaLog2: 2, NegFrac: 0.2}.FillTensor(rng, act, fixed.W16)
	lw, err := nn.Lower(l, act, 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}

// groupSerialConfigs extends serialConfigs with the dstripes-sm plugin
// back-end (gated, ungated, and 8-bit): the plane path must be
// back-end-agnostic, including back-ends the engine packages never name.
func groupSerialConfigs() []arch.Config {
	sm := backend.MustLookup(dstripes.Name)
	return append(serialConfigs(),
		arch.NewTCLBackend(sched.T(2, 5), sm),
		arch.NewTCLBackend(sched.Pattern{}, sm),
		arch.NewTCLBackend(sched.T(2, 5), sm).WithWidth(fixed.W8),
	)
}

// TestGroupedPlaneMatchesPerRowRecompute is the row-variant counterpart
// of TestPlaneMatchesPerRowRecompute: for grouped (2 and 4 groups) and
// depthwise layers, evalWindows fed per-act-group planes — each row's
// plane selected by ActGroupOf, built from the group's representative
// filter — must produce windowPartials identical to the nil-plane
// reference, for every filter tile, serial back-end (including the
// dstripes-sm plugin), and width.
func TestGroupedPlaneMatchesPerRowRecompute(t *testing.T) {
	for _, lw := range []*nn.Lowered{
		testGroupedConv(t, 41, 2),
		testGroupedConv(t, 42, 4),
		testDW(t, 43, 20, 5),
	} {
		if lw.ActRowInvariant() {
			t.Fatalf("%s: expected row-variant layer", lw.Name)
		}
		for _, cfg := range groupSerialConfigs() {
			ct := newCostTable(cfg.Backend, cfg.Width)
			pad := padMask(lw)
			planes := make([]*costPlane, lw.ActGroups())
			for f0 := 0; f0 < lw.Filters; f0 += cfg.FiltersPerTile {
				f1 := min(f0+cfg.FiltersPerTile, lw.Filters)
				ctx := prepareGroup(cfg, lw, ct, pad, f0, f1, nil)
				if !ctx.needsWindows {
					t.Fatalf("%s/%s: serial config did not need windows", lw.Name, cfg.Name)
				}
				rp := make([]*costPlane, f1-f0)
				for ri := range rp {
					g := lw.ActGroupOf(f0 + ri)
					if planes[g] == nil {
						planes[g] = buildPlane(lw, ct, g)
					}
					rp[ri] = planes[g]
				}
				got := ctx.evalWindows(cfg, lw, ct, rp, 0, lw.WindowCount, nil)
				want := ctx.evalWindows(cfg, lw, ct, nil, 0, lw.WindowCount, nil)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s group [%d,%d): grouped-plane partial differs from per-row recompute",
						lw.Name, cfg.Name, f0, f1)
				}
			}
		}
	}
}

// TestGroupedLayersTakePlanePath asserts the engine routes row-variant
// layers through the plane fast path: a run over a grouped layer builds
// one plane per act group (the group counters tick), and a second config
// sharing (back-end, width) hits every one of them.
func TestGroupedLayersTakePlanePath(t *testing.T) {
	for _, tc := range []struct {
		name   string
		lw     *nn.Lowered
		groups int
	}{
		{"groups2", testGroupedConv(t, 44, 2), 2},
		{"groups4", testGroupedConv(t, 45, 4), 4},
		{"depthwise", testDW(t, 46, 20, 5), 20},
	} {
		pc := NewPlaneCache(0)
		SimulateLayerOpts(arch.NewTCL(sched.T(2, 5), arch.TCLe), tc.lw, Options{PlaneCache: pc})
		st := pc.Stats()
		if st.GroupBuilds != int64(tc.groups) || st.Entries != tc.groups {
			t.Fatalf("%s: after first run %+v, want %d group builds / entries", tc.name, st, tc.groups)
		}
		if st.GroupHits != 0 {
			t.Fatalf("%s: cold run reported group hits: %+v", tc.name, st)
		}
		// Different pattern, same back-end and width: every group plane hits.
		SimulateLayerOpts(arch.NewTCL(sched.L(1, 6), arch.TCLe), tc.lw, Options{PlaneCache: pc})
		st = pc.Stats()
		if st.GroupHits != int64(tc.groups) || st.GroupBuilds != int64(tc.groups) {
			t.Fatalf("%s: after second run %+v, want %d group hits", tc.name, st, tc.groups)
		}
		// A different back-end keys its own planes per group.
		SimulateLayerOpts(arch.NewTCLBackend(sched.T(2, 5), backend.MustLookup(dstripes.Name)), tc.lw, Options{PlaneCache: pc})
		st = pc.Stats()
		if st.GroupBuilds != int64(2*tc.groups) || st.Entries != 2*tc.groups {
			t.Fatalf("%s: after plugin run %+v, want %d group builds", tc.name, st, 2*tc.groups)
		}
	}
}

// TestGroupPlaneKeySharing pins the per-group key structure: planes of
// the same layer at the same (back-end, width) differ only in the group
// field, and overflow evictions of grouped planes tick the group counter.
func TestGroupPlaneKeySharing(t *testing.T) {
	lw := testGroupedConv(t, 47, 2)
	be := arch.TCLe.Impl()
	ct := newCostTable(be, fixed.W16)
	base := planeKeyOf(lw, be, fixed.W16)
	k0, k1 := base, base
	k0.group, k1.group = 0, 1
	if k0 == k1 {
		t.Fatal("distinct act groups share a key")
	}

	one := buildPlane(lw, ct, 0).sizeBytes()
	c := NewPlaneCache(one + one/2) // fits one plane, not two
	c.getKeyed(k0, lw, ct, 0)
	c.getKeyed(k1, lw, ct, 1)
	st := c.Stats()
	if st.GroupEvictions != 1 || st.Entries != 1 {
		t.Fatalf("after overflow: %+v, want 1 group eviction / 1 resident entry", st)
	}
	// The resident plane is the inserting group's; re-requesting it hits.
	c.getKeyed(k1, lw, ct, 1)
	if st := c.Stats(); st.GroupHits != 1 {
		t.Fatalf("resident group plane did not hit: %+v", st)
	}
}

// groupedModel is a small model exercising every row-variant layer kind
// (grouped conv at 2 and 4 groups, depthwise) alongside a row-invariant
// conv, for whole-engine equality runs.
func groupedModel(t *testing.T) (*nn.Model, []*tensor.T) {
	t.Helper()
	rng := rand.New(rand.NewSource(48))
	layers := []*nn.Layer{
		{Name: "conv", Kind: nn.Conv, K: 8, C: 16, R: 3, S: 3, Stride: 1, Pad: 1, InH: 6, InW: 6},
		{Name: "g2", Kind: nn.Conv, K: 8, C: 32, R: 3, S: 3, Stride: 1, Pad: 1, InH: 5, InW: 5, Groups: 2},
		{Name: "g4", Kind: nn.Conv, K: 8, C: 32, R: 3, S: 3, Stride: 1, Pad: 1, InH: 5, InW: 5, Groups: 4},
		{Name: "dw", Kind: nn.Depthwise, K: 20, C: 20, R: 3, S: 3, Stride: 1, Pad: 1, InH: 5, InW: 5},
	}
	for _, l := range layers {
		gc := l.C
		if l.Kind == nn.Conv {
			gc = l.GroupChannels()
		} else {
			gc = 1
		}
		l.Weights = tensor.New(l.K, gc, l.R, l.S)
		sparsity.WeightModel{Sigma: 300}.FillPruned(rng, l.Weights, fixed.W16, 0.5)
	}
	m := &nn.Model{
		Name:   "grouped-test",
		Width:  fixed.W16,
		Layers: layers,
		Act:    sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 6, SigmaLog2: 2, NegFrac: 0.2},
	}
	return m, m.GenerateActs(9)
}

// TestGroupedSweepMatchesIndividualRuns is the whole-engine differential
// for row-variant layers: sweeping a grouped/depthwise model — including
// through the dstripes-sm plugin back-end — must reproduce each config's
// standalone plane-less serial result exactly, at parallelism 1 and 4,
// with the plane cache on and off.
func TestGroupedSweepMatchesIndividualRuns(t *testing.T) {
	m, acts := groupedModel(t)
	cfgs := []arch.Config{
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
		arch.NewTCL(sched.T(2, 5), arch.TCLe).WithWidth(fixed.W8),
		arch.NewTCLBackend(sched.T(2, 5), backend.MustLookup(dstripes.Name)),
	}
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := SimulateModelContext(context.Background(), cfg, m, acts, Options{Parallelism: 1, DisablePlaneCache: true})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, par := range []int{1, 4} {
		for _, disable := range []bool{false, true} {
			opts := Options{Parallelism: par, DisablePlaneCache: disable}
			if !disable {
				opts.PlaneCache = NewPlaneCache(0)
			}
			got, err := SimulateSweepContext(context.Background(), cfgs, m, acts, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cfgs {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("par=%d disablePlanes=%v config %s: grouped sweep differs from standalone run",
						par, disable, cfgs[i].Name)
				}
			}
			if !disable {
				if st := opts.PlaneCache.Stats(); st.GroupBuilds == 0 {
					t.Errorf("par=%d: sweep over grouped model never took the grouped plane path (%+v)", par, st)
				}
			}
		}
	}
}
