// Activation cost planes. The serial cost of an activation value — dynamic
// precision bits for TCLp, Booth oneffsets for TCLe — depends only on the
// value and the datapath width, and the activation behind a (window, step,
// lane) slot depends on the PE row's filter index only through the
// filter's act group (nn.Lowered.ActGroups): not at all for FC and
// ungrouped conv (one group), through the input-channel slice for grouped
// conv (one group per filter group), and through the channel itself for
// depthwise (one group per filter). A costPlane precomputes that cost for
// every slot of one (layer, act group) exactly once, so the window walk
// gathers flat uint8s instead of re-deriving each cost through an Act
// fetch and a costTable mask for every (column, row, window, lane) tuple —
// work that previously repeated per filter group, per window chunk, and
// per sweep config, and that row-variant layers repeated per PE row.
//
// A plane is a pure function of (activations, lowering geometry, act
// group, back-end, width). It does not depend on the front-end pattern,
// the scheduling algorithm, tile geometry, or the weights, which is why
// one plane is shared across every config of a sweep that fixes the
// back-end and width (PlaneCache).
package sim

import (
	"bittactical/internal/nn"
)

// costPlane stores each activation's serial cost for one (lowered layer,
// act group) at one (back-end, width): a packed
// [WindowCount][Steps][Lanes]uint8, lane innermost, matching the
// dense-schedule coordinates the lane references index. Planes are
// immutable after build and shared read-only across goroutines, groups,
// chunks, and configs.
type costPlane struct {
	steps, lanes int
	data         []uint8
}

// buildPlane evaluates one act group's activation costs once per slot.
// The fetch uses the group's representative filter index, which
// ActGroupRep guarantees is representative of every PE row whose filter
// falls in the group.
func buildPlane(lw *nn.Lowered, ct *costTable, actGroup int) *costPlane {
	steps, lanes := lw.Steps, lw.Lanes
	rep := lw.ActGroupRep(actGroup)
	p := &costPlane{
		steps: steps,
		lanes: lanes,
		data:  make([]uint8, lw.WindowCount*steps*lanes),
	}
	i := 0
	for win := 0; win < lw.WindowCount; win++ {
		for st := 0; st < steps; st++ {
			for ln := 0; ln < lanes; ln++ {
				p.data[i] = ct.costU8(lw.Act(rep, win, st, ln))
				i++
			}
		}
	}
	return p
}

// window returns the (step, lane) cost grid of one output window.
func (p *costPlane) window(win int) []uint8 {
	n := p.steps * p.lanes
	return p.data[win*n : (win+1)*n]
}

// sizeBytes is the plane's resident size, the unit the PlaneCache budget is
// accounted in.
func (p *costPlane) sizeBytes() int64 { return int64(len(p.data)) }
