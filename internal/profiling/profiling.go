// Package profiling wires the standard pprof hooks into the command-line
// tools, so perf work on the simulator and scheduler hot paths can be
// measured (-cpuprofile) and allocation-audited (-memprofile) without
// per-tool boilerplate.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finalizes both profiles; memPath (when non-empty) receives a
// heap profile at stop time, after a final GC so it reflects live memory.
// Call the returned function before exiting, typically via defer.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: heap profile: %w", err)
			}
			// A full disk surfaces at Close, not WriteHeapProfile; an
			// unchecked error here would silently truncate the profile.
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
