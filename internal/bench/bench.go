// Package bench is the repo's benchmark baseline format and regression
// gate. One schema covers the four committed baselines — BENCH_sim.json
// (experiment runners through the engine), BENCH_sched.json (scheduling
// kernel vs reference), BENCH_kernel.json (SWAR column-max vs scalar),
// BENCH_serve.json (the tclserve HTTP tier under load) — and one
// comparison policy decides what counts as a regression:
//
//   - allocs/op compares everywhere: allocation counts are a property of
//     the code, not the host, so a >threshold growth fails the gate on any
//     machine, and a baseline of zero allocations must stay zero.
//   - ns/op — and the serve suite's p50/p99 latency percentiles — compare
//     only between runs of the same effective parallelism (equal
//     GOMAXPROCS) where neither side is contended; wall time measured on a
//     different host shape is noise, not signal.
//   - coalesce_hit_rate compares everywhere: the fraction of requests
//     served without their own engine run is a property of the serving
//     logic and load shape, not the host, so a drop fails the gate.
//   - alloc_parity compares everywhere against an absolute cap: a parallel
//     row's steady-state allocs/op must stay within AllocParityCap of its
//     suite's serial row, once the absolute excess clears AllocParityFloor
//     (the runtime's own O(workers) scheduler noise on a tiny base).
//     Allocation counts are host-independent, so a parallel path that
//     starts allocating per worker fails on any machine, threshold
//     notwithstanding.
//
// Baselines additionally refuse to be overwritten by a contended run
// (requested parallelism above the host's GOMAXPROCS) unless forced:
// a contended measurement is the serial engine plus scheduling overhead
// and would poison every later comparison.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema identifies the baseline layout; bump when Record changes shape.
// Schema 5 added the steady-state measurement fields (warmup_iterations,
// alloc_parity) and switched the sim suite from cold per-iteration cache
// rebuilds to warm steady-state measurement.
const Schema = 5

// Record is one benchmark measurement.
type Record struct {
	// ID uniquely names the measurement within its file, e.g.
	// "fig8a/j1", "sched/T8<2,5>/algorithm1/kernel", "kernel/lanes=16/swar".
	ID string `json:"id"`
	// Parallelism is the requested worker parallelism (engine suites; 0
	// when the benchmark has no worker pool).
	Parallelism int `json:"parallelism,omitempty"`
	// GoMaxProcs is the effective GOMAXPROCS during this measurement.
	GoMaxProcs  int     `json:"go_max_procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// WallNs and CPUNs are the totals over all iterations: wall clock and
	// process CPU time consumed. CPUNs > WallNs means real parallelism;
	// CPUNs ≈ WallNs on a serial or contended run.
	WallNs     int64 `json:"wall_ns"`
	CPUNs      int64 `json:"cpu_ns"`
	Iterations int   `json:"iterations"`
	// WarmupIterations is how many unmeasured iterations ran before the
	// measured window (steady-state suites; 0 = cold measurement). The
	// warmup pays the one-time costs — cache fills, arena growth, pool
	// warming — so Iterations and the per-op metrics describe pure steady
	// state.
	WarmupIterations int `json:"warmup_iterations,omitempty"`
	// AllocParity is this parallel row's steady-state allocs/op divided by
	// its suite's serial (j1) row — 1.0 means parallelism adds no
	// allocations. Emitted only on parallel rows whose serial sibling
	// allocated at all; gated everywhere against AllocParityCap.
	AllocParity float64 `json:"alloc_parity,omitempty"`
	// Speedup is ns/op of the suite's serial row over this row, emitted
	// only when the host could actually run workers concurrently.
	Speedup float64 `json:"speedup_vs_serial,omitempty"`
	// Contended marks measurements whose requested parallelism exceeds
	// the host's real concurrency (GOMAXPROCS, or NumCPU when GOMAXPROCS
	// overshoots it): workers time-slice cores, so ns/op is not comparable.
	Contended bool `json:"contended,omitempty"`

	// Serving-tier metrics (the serve suite; zero elsewhere). P50Ns/P99Ns
	// are client-observed request latency percentiles and follow the ns/op
	// comparison policy; RPS is informational (throughput is the inverse of
	// latency at fixed concurrency, so gating it would double-count);
	// CoalesceHitRate is the fraction of requests served without their own
	// engine run — a load-shape property, gated on every host.
	P50Ns           float64 `json:"p50_ns,omitempty"`
	P99Ns           float64 `json:"p99_ns,omitempty"`
	RPS             float64 `json:"rps,omitempty"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate,omitempty"`

	// Shard-balance metrics (the serve suite's partition rows; zero
	// elsewhere). Pure arithmetic over predicted per-layer costs — no
	// timing, so host-independent and gated everywhere. ShardImbalance is
	// max/mean predicted shard cost (1.0 = perfectly balanced, higher =
	// worse); Max and Mean are kept for context.
	ShardMaxCost   float64 `json:"shard_max_cost,omitempty"`
	ShardMeanCost  float64 `json:"shard_mean_cost,omitempty"`
	ShardImbalance float64 `json:"shard_imbalance,omitempty"`
}

// File is one committed baseline.
type File struct {
	Schema     int      `json:"schema"`
	Generated  string   `json:"generated"`
	GoMaxProcs int      `json:"go_max_procs"`
	NumCPU     int      `json:"num_cpu"`
	Context    string   `json:"context,omitempty"`
	Note       string   `json:"note,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// Contended reports whether any measurement in the file is contended.
func (f *File) Contended() bool {
	for _, r := range f.Benchmarks {
		if r.Contended {
			return true
		}
	}
	return false
}

// Load reads a baseline file.
func Load(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}

// Write stores the file unconditionally.
func (f *File) Write(path string) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// WriteBaseline stores f at path, refusing to overwrite an existing
// baseline with a contended run unless force is set. A fresh path (no
// baseline yet) always writes, but the contended taint is still recorded
// in the file for Compare to see.
func WriteBaseline(path string, f *File, force bool) error {
	if !force && f.Contended() {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("bench: refusing to overwrite %s with a contended run (parallelism beyond GOMAXPROCS=%d); rerun on a bigger host or pass -force", path, f.GoMaxProcs)
		}
	}
	return f.Write(path)
}

// AllocParityCap is the absolute alloc_parity bound: a parallel row may
// allocate at most this multiple of its serial sibling in steady state.
// The slack absorbs the honest per-pool-entry costs (spawning worker
// goroutines, per-worker metric folds) without admitting per-item or
// per-worker-per-chunk allocation amplification.
const AllocParityCap = 1.05

// AllocParityFloor is the minimum absolute allocs/op excess (parallel
// minus serial) before the parity cap fires. Running workers concurrently
// makes the Go runtime itself allocate a handful of objects per run —
// goroutine descriptors when the free list runs dry, sudog parking blocks
// under mutex contention — costs that are O(workers), not O(work). On a
// row whose serial base is tiny, that fixed noise alone can exceed 5%;
// the floor keeps such rows honest without letting real amplification
// through (amplification scales with the work, so it clears any floor).
const AllocParityFloor = 16

// Regression is one gate failure: a current metric more than threshold
// worse than its baseline.
type Regression struct {
	ID       string
	Metric   string // "ns/op", "allocs/op", "p50", "p99", "coalesce_hit_rate", "shard_imbalance", or "alloc_parity"
	Baseline float64
	Current  float64
	Ratio    float64 // Current / Baseline (+Inf for a zero baseline)
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)", r.ID, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// Result is the outcome of one baseline comparison.
type Result struct {
	Regressions []Regression
	// SkippedNs lists IDs whose ns/op comparison was skipped under the
	// matching-host policy (GOMAXPROCS mismatch or a contended side).
	SkippedNs []string
	// Missing lists baseline IDs absent from the current run — a silently
	// dropped benchmark must not pass the gate.
	Missing []string
}

// Fail reports whether the gate should fail: any regression or any
// baseline measurement missing from the current run.
func (r Result) Fail() bool { return len(r.Regressions) > 0 || len(r.Missing) > 0 }

// Compare applies the gate policy to a current run against its baseline.
// threshold is fractional: 0.10 fails anything more than 10% worse.
func Compare(baseline, current *File, threshold float64) Result {
	var res Result
	cur := make(map[string]Record, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.ID] = r
	}
	for _, b := range baseline.Benchmarks {
		c, ok := cur[b.ID]
		if !ok {
			res.Missing = append(res.Missing, b.ID)
			continue
		}
		// Allocation counts are host-independent; a zero baseline is a
		// zero-alloc guarantee and any allocation at all breaks it.
		switch {
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			res.Regressions = append(res.Regressions, Regression{
				ID: b.ID, Metric: "allocs/op",
				Baseline: 0, Current: float64(c.AllocsPerOp),
				Ratio: float64(c.AllocsPerOp),
			})
		case float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+threshold):
			res.Regressions = append(res.Regressions, Regression{
				ID: b.ID, Metric: "allocs/op",
				Baseline: float64(b.AllocsPerOp), Current: float64(c.AllocsPerOp),
				Ratio: float64(c.AllocsPerOp) / float64(b.AllocsPerOp),
			})
		}
		if b.Contended || c.Contended || b.GoMaxProcs != c.GoMaxProcs {
			res.SkippedNs = append(res.SkippedNs, b.ID)
		} else {
			for _, m := range []struct {
				name       string
				base, curr float64
			}{
				{"ns/op", b.NsPerOp, c.NsPerOp},
				{"p50", b.P50Ns, c.P50Ns},
				{"p99", b.P99Ns, c.P99Ns},
			} {
				if m.base > 0 && m.curr > m.base*(1+threshold) {
					res.Regressions = append(res.Regressions, Regression{
						ID: b.ID, Metric: m.name,
						Baseline: m.base, Current: m.curr,
						Ratio: m.curr / m.base,
					})
				}
			}
		}
		// The coalesce hit rate is a property of the serving logic and the
		// load shape, not of the host: a drop means requests stopped sharing
		// engine runs, and it gates everywhere (lower is worse).
		if b.CoalesceHitRate > 0 && c.CoalesceHitRate < b.CoalesceHitRate*(1-threshold) {
			res.Regressions = append(res.Regressions, Regression{
				ID: b.ID, Metric: "coalesce_hit_rate",
				Baseline: b.CoalesceHitRate, Current: c.CoalesceHitRate,
				Ratio: c.CoalesceHitRate / b.CoalesceHitRate,
			})
		}
		// Shard imbalance is pure arithmetic over predicted layer costs —
		// deterministic and host-independent — so a partitioner change that
		// skews shard loads fails the gate on any machine (higher is worse).
		if b.ShardImbalance > 0 && c.ShardImbalance > b.ShardImbalance*(1+threshold) {
			res.Regressions = append(res.Regressions, Regression{
				ID: b.ID, Metric: "shard_imbalance",
				Baseline: b.ShardImbalance, Current: c.ShardImbalance,
				Ratio: c.ShardImbalance / b.ShardImbalance,
			})
		}
		// Alloc parity is an absolute, host-independent bound, not a drift
		// check: allocation counts do not depend on core count or clock
		// speed, so a parallel row allocating more than AllocParityCap times
		// its serial sibling fails on every host, contended or not, and the
		// fractional threshold does not loosen it. The baseline row opts the
		// rule in by carrying a parity value (old-schema rows without one
		// are not retroactively gated). Rows whose absolute excess over the
		// serial base stays within AllocParityFloor pass regardless of the
		// ratio: on a near-zero-alloc base the runtime's own O(workers)
		// scheduler noise can exceed 5% without any amplification in the
		// measured code.
		if b.AllocParity > 0 && c.AllocParity > AllocParityCap {
			excess := float64(c.AllocsPerOp) - float64(c.AllocsPerOp)/c.AllocParity
			if excess > AllocParityFloor {
				res.Regressions = append(res.Regressions, Regression{
					ID: b.ID, Metric: "alloc_parity",
					Baseline: AllocParityCap, Current: c.AllocParity,
					Ratio: c.AllocParity / AllocParityCap,
				})
			}
		}
	}
	sort.Slice(res.Regressions, func(i, j int) bool {
		a, b := res.Regressions[i], res.Regressions[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Metric < b.Metric
	})
	return res
}
