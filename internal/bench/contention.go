package bench

import (
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"time"

	"bittactical/internal/experiments"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// contentionLevels is the parallelism ladder the contention profile walks:
// serial (establishes the no-contention baseline cost) up through the
// benchmark suite's standard j8.
var contentionLevels = []int{1, 2, 4, 8}

// RunContention profiles lock contention across the sweep pipeline: with
// mutex profiling at full fraction, it runs the fig8a runner — the
// heaviest user of the shared schedule cache, plane cache, and worker
// pool — once cold and once warm at parallelism 1, 2, 4 and 8, then dumps
// the accumulated top contended stacks to w (the standard mutex profile
// in debug text form: contention cycles and event counts per stack, most
// contended first).
//
// The profile is cumulative across all levels by design: a stripe or
// counter that only collapses under eight workers shows up attributed to
// its stack regardless of which rung exposed it. Wall time per rung is
// logged alongside so a contention-bound scaling curve is visible even
// before reading stacks.
func RunContention(logf Logf, w io.Writer) error {
	run := experiments.Registry["fig8a"]
	if run == nil {
		return fmt.Errorf("bench: fig8a runner not registered")
	}
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)
	for _, par := range contentionLevels {
		opts := simOptions()
		opts.Parallelism = par
		// Cold pass fills the shared caches (the fill path holds stripe
		// locks); warm pass is the steady-state lookup traffic.
		sched.Shared.Reset()
		sim.SharedPlanes.Reset()
		for _, pass := range []string{"cold", "warm"} {
			t0 := time.Now()
			if _, err := run(opts); err != nil {
				return fmt.Errorf("bench: contention fig8a/j%d: %w", par, err)
			}
			logf.printf("contention fig8a/j%d %s: %.0f ms", par, pass, float64(time.Since(t0).Nanoseconds())/1e6)
		}
	}
	p := pprof.Lookup("mutex")
	if p == nil {
		return fmt.Errorf("bench: mutex profile unavailable")
	}
	fmt.Fprintf(w, "== mutex profile (fig8a at parallelism %v, GOMAXPROCS=%d) ==\n", contentionLevels, runtime.GOMAXPROCS(0))
	return p.WriteTo(w, 1)
}
