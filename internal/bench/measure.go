package bench

import (
	"runtime"
	"testing"
	"time"
)

// RunOpts tunes how a suite measures.
type RunOpts struct {
	// MinTime is the minimum measured wall time per steady-state benchmark
	// row: the sim suite iterates until it has elapsed (always at least one
	// iteration), so a row's Iterations scales with the host instead of
	// being pinned at 1 by a fixed iteration count. Zero selects the
	// default. Suites measured through testing.Benchmark (kernel, sched)
	// calibrate to its own benchtime and ignore this.
	MinTime time.Duration
}

// defaultMinTime keeps the sim suite's measured window comparable to
// testing.Benchmark's default 1s benchtime.
const defaultMinTime = time.Second

func (o RunOpts) minTime() time.Duration {
	if o.MinTime > 0 {
		return o.MinTime
	}
	return defaultMinTime
}

// Measure runs fn under testing.Benchmark and packages the result as a
// Record. parallelism is the requested worker parallelism (0 when the
// benchmark has no worker pool); the record is tagged contended when it
// exceeds what the host can genuinely overlap. Wall and CPU time cover the
// whole calibration-and-measurement run — their ratio is what distinguishes
// a genuinely parallel measurement (CPU > wall) from a time-sliced one.
func Measure(id string, parallelism int, fn func(b *testing.B)) Record {
	wall0 := time.Now()
	cpu0 := processCPUNs()
	r := testing.Benchmark(fn)
	rec := Record{
		ID:          id,
		Parallelism: parallelism,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		AllocsPerOp: int64(r.AllocsPerOp()),
		WallNs:      time.Since(wall0).Nanoseconds(),
		CPUNs:       processCPUNs() - cpu0,
		Iterations:  r.N,
		Contended:   Contended(parallelism),
	}
	if r.N > 0 {
		rec.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return rec
}

// Contended reports whether a measurement at the requested parallelism
// would time-slice on this host: either the request exceeds GOMAXPROCS, or
// GOMAXPROCS itself overshoots the physical core count (an inflated
// GOMAXPROCS env on a small machine), in which case even "fitting" workers
// share cores.
func Contended(parallelism int) bool {
	procs := runtime.GOMAXPROCS(0)
	return parallelism > procs || (parallelism > 1 && procs > runtime.NumCPU())
}

// hostConcurrent reports whether this host can genuinely overlap workers.
func hostConcurrent() bool {
	return runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1
}

// NewFile starts a baseline file with the host header filled in.
func NewFile(context string) *File {
	f := &File{
		Schema:     Schema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Context:    context,
	}
	if f.GoMaxProcs == 1 {
		f.Note = "GOMAXPROCS=1: parallel runs cannot overlap on this host; speedup_vs_serial suppressed"
	} else if f.GoMaxProcs > f.NumCPU {
		f.Note = "GOMAXPROCS exceeds NumCPU: workers time-slice cores; parallel rows tagged contended and ns/op not comparable"
	}
	return f
}
