package bench

import (
	"runtime"
	"testing"
	"time"
)

// Measure runs fn under testing.Benchmark and packages the result as a
// Record. parallelism is the requested worker parallelism (0 when the
// benchmark has no worker pool); the record is tagged contended when it
// exceeds the host's GOMAXPROCS. Wall and CPU time cover the whole
// calibration-and-measurement run — their ratio is what distinguishes a
// genuinely parallel measurement (CPU > wall) from a time-sliced one.
func Measure(id string, parallelism int, fn func(b *testing.B)) Record {
	wall0 := time.Now()
	cpu0 := processCPUNs()
	r := testing.Benchmark(fn)
	rec := Record{
		ID:          id,
		Parallelism: parallelism,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		AllocsPerOp: int64(r.AllocsPerOp()),
		WallNs:      time.Since(wall0).Nanoseconds(),
		CPUNs:       processCPUNs() - cpu0,
		Iterations:  r.N,
		Contended:   parallelism > runtime.GOMAXPROCS(0),
	}
	if r.N > 0 {
		rec.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return rec
}

// NewFile starts a baseline file with the host header filled in.
func NewFile(context string) *File {
	f := &File{
		Schema:     Schema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Context:    context,
	}
	if f.GoMaxProcs == 1 {
		f.Note = "GOMAXPROCS=1: parallel runs cannot overlap on this host; speedup_vs_serial suppressed"
	}
	return f
}
