package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	"bittactical/internal/arch"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/serve"
	"bittactical/internal/sim"
)

// serveShape is one load shape the serve suite measures.
type serveShape struct {
	id          string
	requests    int
	concurrency int
	unique      bool // rotate act_seed: defeat coalescing and the result cache
	stream      bool
}

// RunServe measures the evaluation service end to end: a fresh in-process
// tclserve behind a real loopback HTTP listener, driven by the tclload
// machinery. Three load shapes bracket the serving tier:
//
//   - serve/engine: every request distinct — raw engine throughput through
//     the HTTP surface (coalesce hit rate 0 by construction).
//   - serve/hot: identical concurrent requests — the coalesce + result-LRU
//     path; exactly one engine run, hit rate (n-1)/n.
//   - serve/stream: the hot shape over NDJSON streaming responses.
//
// Latency percentiles follow the ns/op comparison policy (same-host only);
// the coalesce hit rate is a load-shape invariant and gates everywhere.
// allocs/op is the process-wide allocation count per request — client and
// server share the process, so it covers the full round trip.
func RunServe(logf Logf, _ RunOpts) (*File, error) {
	f := NewFile("AlexNet-ES channel scale 0.1, spatial scale 0.25, tcle:T8<2,5>, loopback HTTP")
	for _, sh := range []serveShape{
		{id: "serve/engine", requests: 6, concurrency: 2, unique: true},
		{id: "serve/hot", requests: 32, concurrency: 8},
		{id: "serve/stream", requests: 16, concurrency: 4, stream: true},
	} {
		rec, rep, err := measureServe(sh)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", sh.id, err)
		}
		f.Benchmarks = append(f.Benchmarks, rec)
		logf.printf("%s: p50 %.1fms, p99 %.1fms, %.1f req/s, hit rate %.3f, %d allocs/op",
			rec.ID, rep.P50Ms, rep.P99Ms, rep.RPS, rep.CoalesceHitRate, rec.AllocsPerOp)
	}
	shard, err := shardBalanceRecords(logf)
	if err != nil {
		return nil, err
	}
	f.Benchmarks = append(f.Benchmarks, shard...)
	return f, nil
}

// shardBalanceWorkers is the fleet size the balance rows model — a typical
// small shard deployment, and enough workers that round-robin's
// dominant-layer skew is visible on every zoo model.
const shardBalanceWorkers = 4

// shardBalanceRecords computes the coordinator's predicted shard balance —
// max and mean predicted shard cost plus their ratio — for every zoo model
// under the default sweep, for both the LPT partitioner and the round-robin
// baseline. Pure arithmetic (sim.EstimateSweepLayerCosts plus bin packing),
// no simulation and no timing, so the rows are deterministic,
// host-independent, and gate everywhere: a partitioner change that skews
// shard loads moves shard_imbalance on any machine. The LPT row must never
// pack worse than round-robin — that inversion fails the generation itself,
// not just the baseline compare.
func shardBalanceRecords(logf Logf) ([]Record, error) {
	cfgs, err := buildDefaultConfigs()
	if err != nil {
		return nil, err
	}
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.125, 0.35
	var out []Record
	for _, name := range nn.ModelNames {
		m, err := nn.BuildModel(name, z)
		if err != nil {
			return nil, fmt.Errorf("bench: shard-balance: %s: %w", name, err)
		}
		costs, err := sim.EstimateSweepLayerCosts(cfgs, m)
		if err != nil {
			return nil, fmt.Errorf("bench: shard-balance: %s: %w", name, err)
		}
		layers := make([]int, len(m.Layers))
		for i := range layers {
			layers[i] = i
		}
		lpt := serve.BalanceOf(serve.PartitionLPT(layers, costs, shardBalanceWorkers), costs)
		rr := serve.BalanceOf(serve.PartitionRoundRobin(layers, shardBalanceWorkers), costs)
		if lpt.Imbalance > rr.Imbalance {
			return nil, fmt.Errorf("bench: shard-balance: %s: LPT imbalance %.3f worse than round-robin %.3f", name, lpt.Imbalance, rr.Imbalance)
		}
		for _, row := range []struct {
			strategy string
			b        serve.ShardBalance
		}{{"lpt", lpt}, {"roundrobin", rr}} {
			out = append(out, Record{
				ID:             fmt.Sprintf("serve/shard-balance/%s/%s", name, row.strategy),
				GoMaxProcs:     runtime.GOMAXPROCS(0),
				ShardMaxCost:   row.b.Max,
				ShardMeanCost:  row.b.Mean,
				ShardImbalance: row.b.Imbalance,
			})
		}
		logf.printf("serve/shard-balance/%s: lpt %.3f vs roundrobin %.3f (max/mean over %d shards)",
			name, lpt.Imbalance, rr.Imbalance, shardBalanceWorkers)
	}
	return out, nil
}

// buildDefaultConfigs resolves the serving tier's default sweep into
// arch configs for cost estimation.
func buildDefaultConfigs() ([]arch.Config, error) {
	specs := serve.DefaultConfigs()
	cfgs := make([]arch.Config, len(specs))
	for i, spec := range specs {
		var err error
		if cfgs[i], err = spec.Build(); err != nil {
			return nil, fmt.Errorf("bench: shard-balance: configs[%d]: %w", i, err)
		}
	}
	return cfgs, nil
}

// measureServe runs one load shape against a fresh server (fresh result
// cache and coalescer; the process-wide schedule and plane caches are reset
// so every shape pays the same warm-up) and packages the report as a
// Record.
func measureServe(sh serveShape) (Record, *serve.LoadReport, error) {
	sched.Shared.Reset()
	sim.SharedPlanes.Reset()
	s := serve.New(serve.Config{
		MaxInFlight:    sh.concurrency,
		DefaultTimeout: 5 * time.Minute,
		MaxTimeout:     10 * time.Minute,
	})
	ts := httptest.NewServer(s.Routes())
	defer ts.Close()

	body := serve.SimulateRequest{
		Configs: []serve.ConfigSpec{{Backend: "tcle", Pattern: "T8<2,5>"}},
		Stream:  sh.stream,
	}
	body.Model = "AlexNet-ES"
	body.ChannelScale = 0.1
	body.SpatialScale = 0.25

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	cpu0 := processCPUNs()
	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL:     ts.URL,
		Requests:    sh.requests,
		Concurrency: sh.concurrency,
		Body:        body,
		UniqueSeeds: sh.unique,
	})
	cpuNs := processCPUNs() - cpu0
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Record{}, nil, err
	}
	if rep.Errors > 0 {
		return Record{}, nil, fmt.Errorf("%d of %d requests failed (statuses %v)", rep.Errors, rep.Requests, rep.StatusCount)
	}
	return Record{
		ID:              sh.id,
		Parallelism:     sh.concurrency,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NsPerOp:         rep.MeanMs * 1e6,
		AllocsPerOp:     int64(m1.Mallocs-m0.Mallocs) / int64(sh.requests),
		WallNs:          int64(rep.WallMs * 1e6),
		CPUNs:           cpuNs,
		Iterations:      sh.requests,
		Contended:       Contended(sh.concurrency),
		P50Ns:           rep.P50Ms * 1e6,
		P99Ns:           rep.P99Ms * 1e6,
		RPS:             rep.RPS,
		CoalesceHitRate: rep.CoalesceHitRate,
	}, rep, nil
}
