package bench

import (
	"math"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func file(recs ...Record) *File {
	return &File{Schema: Schema, GoMaxProcs: 1, NumCPU: 1, Benchmarks: recs}
}

func rec(id string, ns float64, allocs int64) Record {
	return Record{ID: id, GoMaxProcs: 1, NsPerOp: ns, AllocsPerOp: allocs, Iterations: 1}
}

// TestCompareInjectedRegression is the gate's negative test: a current
// run deliberately >10% worse than baseline on either metric must fail.
func TestCompareInjectedRegression(t *testing.T) {
	base := file(rec("fig8a/j1", 1000, 100))

	// 11% slower: ns/op regression.
	res := Compare(base, file(rec("fig8a/j1", 1110, 100)), 0.10)
	if !res.Fail() || len(res.Regressions) != 1 || res.Regressions[0].Metric != "ns/op" {
		t.Fatalf("11%% ns regression not caught: %+v", res)
	}
	if got := res.Regressions[0].Ratio; math.Abs(got-1.11) > 1e-9 {
		t.Fatalf("ratio = %v, want 1.11", got)
	}

	// 11% more allocations: allocs/op regression.
	res = Compare(base, file(rec("fig8a/j1", 1000, 111)), 0.10)
	if !res.Fail() || len(res.Regressions) != 1 || res.Regressions[0].Metric != "allocs/op" {
		t.Fatalf("11%% alloc regression not caught: %+v", res)
	}

	// Exactly at threshold passes; just under passes.
	res = Compare(base, file(rec("fig8a/j1", 1100, 110)), 0.10)
	if res.Fail() {
		t.Fatalf("at-threshold run failed the gate: %+v", res.Regressions)
	}
}

// TestCompareZeroAllocBaseline: a zero-alloc baseline is a guarantee —
// any allocation at all is a regression regardless of threshold.
func TestCompareZeroAllocBaseline(t *testing.T) {
	base := file(rec("sched/L4<1,2>/algorithm1/kernel", 500, 0))
	res := Compare(base, file(rec("sched/L4<1,2>/algorithm1/kernel", 500, 1)), 0.10)
	if !res.Fail() || len(res.Regressions) != 1 || res.Regressions[0].Metric != "allocs/op" {
		t.Fatalf("zero-alloc violation not caught: %+v", res)
	}
	res = Compare(base, file(rec("sched/L4<1,2>/algorithm1/kernel", 500, 0)), 0.10)
	if res.Fail() {
		t.Fatalf("zero-alloc hold failed the gate: %+v", res.Regressions)
	}
}

// TestCompareNsSkipPolicy: ns/op is skipped — but allocs still gated —
// when GOMAXPROCS differs or either side is contended.
func TestCompareNsSkipPolicy(t *testing.T) {
	base := file(rec("fig8a/j1", 1000, 100))

	hostMismatch := file(Record{ID: "fig8a/j1", GoMaxProcs: 4, NsPerOp: 5000, AllocsPerOp: 100})
	res := Compare(base, hostMismatch, 0.10)
	if res.Fail() {
		t.Fatalf("ns compared across GOMAXPROCS mismatch: %+v", res.Regressions)
	}
	if len(res.SkippedNs) != 1 || res.SkippedNs[0] != "fig8a/j1" {
		t.Fatalf("skip not recorded: %+v", res.SkippedNs)
	}

	contended := file(Record{ID: "fig8a/j1", GoMaxProcs: 1, NsPerOp: 5000, AllocsPerOp: 100, Contended: true})
	if res := Compare(base, contended, 0.10); res.Fail() || len(res.SkippedNs) != 1 {
		t.Fatalf("contended current not skipped: %+v", res)
	}

	// The alloc gate still applies on a skipped-ns row.
	worse := file(Record{ID: "fig8a/j1", GoMaxProcs: 4, NsPerOp: 5000, AllocsPerOp: 200})
	if res := Compare(base, worse, 0.10); !res.Fail() || res.Regressions[0].Metric != "allocs/op" {
		t.Fatalf("alloc regression hidden by ns skip: %+v", res)
	}
}

// TestCompareShardImbalance: the shard-balance rows gate everywhere —
// pure arithmetic over predicted costs, so neither GOMAXPROCS mismatch nor
// contention exempts them — and only growth (worse balance) fails.
func TestCompareShardImbalance(t *testing.T) {
	balance := func(imb float64, procs int) *File {
		return file(Record{
			ID: "serve/shard-balance/AlexNet-ES/lpt", GoMaxProcs: procs,
			ShardMaxCost: 100 * imb, ShardMeanCost: 100, ShardImbalance: imb,
		})
	}
	base := balance(1.2, 1)

	res := Compare(base, balance(1.4, 1), 0.10)
	if !res.Fail() || len(res.Regressions) != 1 || res.Regressions[0].Metric != "shard_imbalance" {
		t.Fatalf("17%% imbalance growth not caught: %+v", res)
	}

	// Host shape is irrelevant: the row still gates across a GOMAXPROCS
	// mismatch.
	if res := Compare(base, balance(1.4, 8), 0.10); !res.Fail() {
		t.Fatalf("imbalance growth hidden by host mismatch: %+v", res)
	}

	// Improvement and within-threshold drift pass.
	if res := Compare(base, balance(1.0, 1), 0.10); res.Fail() {
		t.Fatalf("imbalance improvement failed the gate: %+v", res.Regressions)
	}
	if res := Compare(base, balance(1.25, 1), 0.10); res.Fail() {
		t.Fatalf("within-threshold drift failed the gate: %+v", res.Regressions)
	}
}

// TestCompareAllocParity: the parallel-vs-serial allocation parity gates
// against the absolute cap on every host — like shard_imbalance it is a
// ratio of two same-process measurements, so host shape never exempts it —
// and only rows whose baseline opted in (carried a parity value) are gated.
func TestCompareAllocParity(t *testing.T) {
	parity := func(v float64, procs int) *File {
		return file(Record{
			ID: "fig8a/j8", GoMaxProcs: procs, Parallelism: 8,
			NsPerOp: 1000, AllocsPerOp: 1000, AllocParity: v, Contended: true,
		})
	}
	base := parity(1.02, 1)

	res := Compare(base, parity(1.20, 1), 0.10)
	if !res.Fail() || len(res.Regressions) != 1 || res.Regressions[0].Metric != "alloc_parity" {
		t.Fatalf("parity 1.20 over the %.2f cap not caught: %+v", AllocParityCap, res)
	}
	if r := res.Regressions[0]; r.Baseline != AllocParityCap || r.Current != 1.20 {
		t.Fatalf("regression reports (%v, %v), want the cap and the measured parity", r.Baseline, r.Current)
	}

	// The cap is absolute, not baseline-relative: a current run at the cap
	// passes even against a much better baseline, and just over fails.
	if res := Compare(base, parity(AllocParityCap, 1), 0.10); res.Fail() {
		t.Fatalf("at-cap parity failed the gate: %+v", res.Regressions)
	}
	if res := Compare(base, parity(AllocParityCap+0.001, 1), 0.10); !res.Fail() {
		t.Fatal("just-over-cap parity passed the gate")
	}

	// Host shape is irrelevant: the row still gates across a GOMAXPROCS
	// mismatch and on contended rows (parallel rows usually are).
	if res := Compare(base, parity(1.20, 8), 0.10); !res.Fail() {
		t.Fatalf("parity breach hidden by host mismatch: %+v", res)
	}

	// On a tiny serial base the runtime's own per-worker scheduler noise
	// (goroutine descriptors, sudog parking) can exceed the 5% cap without
	// any amplification: rows whose absolute excess stays within
	// AllocParityFloor pass, and the same ratio on a larger base (where 5%
	// means real per-item allocation) still fails.
	tiny := file(Record{
		ID: "fig8a/j8", GoMaxProcs: 1, Parallelism: 8,
		NsPerOp: 1000, AllocsPerOp: 165, AllocParity: 1.065, Contended: true,
	})
	if res := Compare(base, tiny, 0.10); res.Fail() {
		t.Fatalf("sub-floor excess (~10 allocs) failed the gate: %+v", res.Regressions)
	}
	if res := Compare(base, parity(1.065, 1), 0.10); !res.Fail() {
		t.Fatal("1.065 parity on a 1000-alloc base (excess ~61) passed the gate")
	}

	// A baseline without parity (old schema, or a serial row) does not gate:
	// current rows are only held to the cap once a baseline opted in.
	old := file(Record{ID: "fig8a/j8", GoMaxProcs: 1, Parallelism: 8, NsPerOp: 1000, AllocsPerOp: 1000, Contended: true})
	if res := Compare(old, parity(1.20, 1), 0.10); res.Fail() {
		t.Fatalf("parity gated without baseline opt-in: %+v", res.Regressions)
	}
}

// TestCompareMissingRow: silently dropping a benchmark must not pass.
func TestCompareMissingRow(t *testing.T) {
	base := file(rec("fig8a/j1", 1000, 100), rec("fig8b/j1", 1000, 100))
	res := Compare(base, file(rec("fig8a/j1", 1000, 100)), 0.10)
	if !res.Fail() || len(res.Missing) != 1 || res.Missing[0] != "fig8b/j1" {
		t.Fatalf("missing row not caught: %+v", res)
	}
}

// TestWriteBaselineContendedRefusal: a contended run may seed a fresh
// baseline (taint recorded in the file) but not replace an existing one
// without -force.
func TestWriteBaselineContendedRefusal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_sim.json")

	clean := file(rec("fig8a/j1", 1000, 100))
	if err := WriteBaseline(path, clean, false); err != nil {
		t.Fatalf("fresh clean write: %v", err)
	}

	tainted := file(Record{ID: "fig8a/j8", GoMaxProcs: 1, Parallelism: 8, NsPerOp: 900, Contended: true})
	err := WriteBaseline(path, tainted, false)
	if err == nil || !strings.Contains(err.Error(), "contended") {
		t.Fatalf("contended overwrite not refused: %v", err)
	}
	if got, _ := Load(path); len(got.Benchmarks) != 1 || got.Benchmarks[0].ID != "fig8a/j1" {
		t.Fatalf("refused write still mutated the baseline: %+v", got)
	}

	if err := WriteBaseline(path, tainted, true); err != nil {
		t.Fatalf("forced overwrite: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contended() {
		t.Fatal("taint lost on round-trip")
	}

	// A fresh path takes a contended run without force.
	fresh := filepath.Join(dir, "BENCH_new.json")
	if err := WriteBaseline(fresh, tainted, false); err != nil {
		t.Fatalf("fresh contended write refused: %v", err)
	}
}

// TestLoadRoundTrip pins the JSON schema field names.
func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	f := NewFile("test context")
	f.Benchmarks = []Record{{
		ID: "x/j1", Parallelism: 1, GoMaxProcs: 1,
		NsPerOp: 123.5, AllocsPerOp: 7, WallNs: 1000, CPUNs: 900,
		Iterations: 3, WarmupIterations: 1, Speedup: 1.5, AllocParity: 1.04,
	}}
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Context != "test context" || len(got.Benchmarks) != 1 {
		t.Fatalf("header round-trip: %+v", got)
	}
	if got.Benchmarks[0] != f.Benchmarks[0] {
		t.Fatalf("record round-trip: %+v != %+v", got.Benchmarks[0], f.Benchmarks[0])
	}
}

// TestMeasureRecordsHostShape sanity-checks the testing.Benchmark wrapper:
// iterations run, wall time accumulates, and contention tagging follows
// the requested parallelism.
func TestMeasureRecordsHostShape(t *testing.T) {
	n := 0
	rec := Measure("m/j1", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n++
		}
	})
	if rec.ID != "m/j1" || rec.Iterations <= 0 || n < rec.Iterations {
		t.Fatalf("measure did not run: %+v (n=%d)", rec, n)
	}
	if rec.WallNs <= 0 {
		t.Fatalf("wall time not recorded: %+v", rec)
	}
	if rec.Contended {
		t.Fatalf("parallelism 1 tagged contended: %+v", rec)
	}
	beyond := runtime.GOMAXPROCS(0) + 1
	if over := Measure("m/over", beyond, func(b *testing.B) {}); !over.Contended {
		t.Fatalf("parallelism %d not tagged contended on this host: %+v", beyond, over)
	}
}
