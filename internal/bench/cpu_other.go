//go:build !unix

package bench

// processCPUNs is unavailable off unix; records carry cpu_ns 0 and the
// wall/CPU parallelism signal is simply absent.
func processCPUNs() int64 { return 0 }
