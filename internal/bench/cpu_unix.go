//go:build unix

package bench

import "syscall"

// processCPUNs returns the process's cumulative user+system CPU time.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
