package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"bittactical/internal/experiments"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
	"bittactical/internal/sparsity"
)

// Logf is the progress callback the suites report through (one line per
// measurement); nil silences them.
type Logf func(format string, args ...any)

func (l Logf) printf(format string, args ...any) {
	if l != nil {
		l(format, args...)
	}
}

// benchSink defeats dead-code elimination of the kernel benchmark loops.
var benchSink int

// simOptions sizes the zoo exactly like the repo's benchmark suite
// (bench_test.go): all seven networks and every layer type in minutes.
func simOptions() experiments.Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.125, 0.35
	return experiments.Options{Zoo: z, Trials: 25}
}

// RunSim measures the fig8/fig11 experiment runners through the whole
// engine at parallelism 1 and 8. The shared schedule and plane caches are
// reset before every iteration so each configuration pays its own build
// cost; speedup_vs_serial is emitted only when the host can actually
// overlap workers.
func RunSim(logf Logf) (*File, error) {
	f := NewFile("zoo channel scale 0.125, spatial scale 0.35, 25 trials")
	concurrent := hostConcurrent()
	serialNs := map[string]float64{}
	for _, id := range []string{"fig8a", "fig8b", "fig11a", "fig11b"} {
		run := experiments.Registry[id]
		if run == nil {
			return nil, fmt.Errorf("bench: unknown experiment %q", id)
		}
		for _, par := range []int{1, 8} {
			opts := simOptions()
			opts.Parallelism = par
			var benchErr error
			rec := Measure(fmt.Sprintf("%s/j%d", id, par), par, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sched.Shared.Reset()
					sim.SharedPlanes.Reset()
					if _, err := run(opts); err != nil {
						benchErr = err
						b.Fatal(err)
					}
				}
			})
			if benchErr != nil {
				return nil, benchErr
			}
			if par == 1 {
				serialNs[id] = rec.NsPerOp
			} else if s := serialNs[id]; concurrent && s > 0 && rec.NsPerOp > 0 {
				rec.Speedup = s / rec.NsPerOp
			}
			f.Benchmarks = append(f.Benchmarks, rec)
			logf.printf("%s: %.0f ns/op, %d allocs/op (%d iters)", rec.ID, rec.NsPerOp, rec.AllocsPerOp, rec.Iterations)
		}
	}
	return f, nil
}

// schedGroup is the Table-2-sized filter group the scheduler suite runs
// on: 16 filters (one tile's PE rows) × 16 lanes × 54 dense steps at 70%
// sparsity — the geometry and density regime of the paper's pruned conv
// layers.
func schedGroup(seed int64) []sched.Filter {
	rng := rand.New(rand.NewSource(seed))
	const lanes, steps, nf = 16, 54, 16
	filters := make([]sched.Filter, nf)
	for i := range filters {
		filters[i] = sched.NewFilter(lanes, steps, sparsity.RandomSparseFilter(rng, steps, lanes, 0.7), nil)
	}
	return filters
}

// RunSched measures the scheduling kernel per (pattern, algorithm): the
// arena-mode kernel in steady state (the zero-alloc hot path), the pooled
// fresh-copy entry point (the cache-fill path), and the reference
// scheduler it is differentially tested against.
func RunSched(logf Logf) (*File, error) {
	f := NewFile("16 filters x 16 lanes x 54 steps, 70% sparsity")
	filters := schedGroup(1)
	for _, p := range []sched.Pattern{sched.L(1, 2), sched.L(2, 5), sched.T(2, 5), sched.T(1, 6)} {
		for _, alg := range []sched.Algorithm{sched.Algorithm1, sched.GreedySimple, sched.Matching} {
			base := fmt.Sprintf("sched/%s/%s", p.Name, alg)
			sc := sched.NewScheduler()
			sc.ScheduleGroup(filters, p, alg) // warm the arena
			for _, v := range []struct {
				name string
				fn   func()
			}{
				{"kernel", func() { sc.ScheduleGroup(filters, p, alg) }},
				{"fresh", func() { sched.ScheduleGroup(filters, p, alg) }},
				{"reference", func() { sched.ScheduleGroupReference(filters, p, alg) }},
			} {
				rec := Measure(base+"/"+v.name, 0, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						v.fn()
					}
				})
				f.Benchmarks = append(f.Benchmarks, rec)
				logf.printf("%s: %.0f ns/op, %d allocs/op", rec.ID, rec.NsPerOp, rec.AllocsPerOp)
			}
		}
	}
	return f, nil
}

// kernelColumn builds one random (cost, mask) column in the packed SWAR
// layout: padLanes-sized costs <= 127, word-packed 0x00/0xFF lane masks.
func kernelColumn(rng *rand.Rand, lanes int) ([]uint8, []uint64) {
	words := (lanes + 7) / 8
	cost := make([]uint8, words*8)
	mask := make([]uint64, words)
	for ln := 0; ln < lanes; ln++ {
		cost[ln] = uint8(rng.Intn(128))
		if rng.Intn(2) == 0 {
			mask[ln>>3] |= 0xff << (8 * uint(ln&7))
		}
	}
	return cost, mask
}

// RunKernel measures the SWAR column-max against its scalar reference
// per lane count over 256 random columns cycled per op.
func RunKernel(logf Logf) (*File, error) {
	f := NewFile("256 random (cost, mask) columns cycled per op")
	for _, lanes := range []int{8, 16, 32, 64} {
		rng := rand.New(rand.NewSource(7))
		const n = 256
		costs := make([][]uint8, n)
		masks := make([][]uint64, n)
		for i := range costs {
			costs[i], masks[i] = kernelColumn(rng, lanes)
		}
		for _, v := range []struct {
			name string
			fn   func(cost []uint8, mask []uint64) int
		}{
			{"swar", sim.ColumnMax},
			{"scalar", sim.ColumnMaxScalar},
		} {
			fn := v.fn
			var sink int
			rec := Measure(fmt.Sprintf("kernel/lanes=%d/%s", lanes, v.name), 0, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := i & 255
					sink += fn(costs[j], masks[j])
				}
			})
			benchSink = sink
			f.Benchmarks = append(f.Benchmarks, rec)
			logf.printf("%s: %.2f ns/op, %d allocs/op", rec.ID, rec.NsPerOp, rec.AllocsPerOp)
		}
	}
	return f, nil
}

// Suite names a runnable benchmark suite and its committed baseline file.
type Suite struct {
	Name string
	File string // baseline filename relative to the repo root
	Run  func(Logf) (*File, error)
}

// Suites are the repo's four committed baselines in gate order.
var Suites = []Suite{
	{Name: "kernel", File: "BENCH_kernel.json", Run: RunKernel},
	{Name: "sched", File: "BENCH_sched.json", Run: RunSched},
	{Name: "sim", File: "BENCH_sim.json", Run: RunSim},
	{Name: "serve", File: "BENCH_serve.json", Run: RunServe},
}

// SuiteByName returns the named suite, or nil.
func SuiteByName(name string) *Suite {
	for i := range Suites {
		if Suites[i].Name == name {
			return &Suites[i]
		}
	}
	return nil
}
