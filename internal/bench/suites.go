package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"bittactical/internal/experiments"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
	"bittactical/internal/sparsity"
)

// Logf is the progress callback the suites report through (one line per
// measurement); nil silences them.
type Logf func(format string, args ...any)

func (l Logf) printf(format string, args ...any) {
	if l != nil {
		l(format, args...)
	}
}

// benchSink defeats dead-code elimination of the kernel benchmark loops.
var benchSink int

// simOptions sizes the zoo exactly like the repo's benchmark suite
// (bench_test.go): all seven networks and every layer type in minutes.
func simOptions() experiments.Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.125, 0.35
	return experiments.Options{Zoo: z, Trials: 25}
}

// RunSim measures the fig8/fig11 experiment runners through the whole
// engine at parallelism 1 and 8, in steady state: the shared schedule and
// plane caches are reset once per row, unmeasured warmup iterations
// rebuild them (and warm every arena and pool) with the GC already
// pinned off — repeating until per-run allocations settle, since
// parallel rows converge over a few runs as per-worker arenas ratchet up
// under the racing claim order — and the measured window then iterates
// until opts.MinTime has elapsed (and at least steadyMinIters iterations
// have run). allocs/op is therefore the exact per-run steady-state
// malloc count (ReadMemStats deltas, not sampled), undiluted by warmup
// and undisturbed by pool-clearing GC cycles; warmup_iterations records
// how many runs convergence took. Parallel rows carry alloc_parity (their
// allocs/op over the serial row's) gated against AllocParityCap;
// speedup_vs_serial is emitted only when the host can actually overlap
// workers.
func RunSim(logf Logf, opts RunOpts) (*File, error) {
	f := NewFile("zoo channel scale 0.125, spatial scale 0.35, 25 trials; steady state (adaptive warmup, caches warm, GC pinned)")
	concurrent := hostConcurrent()
	serial := map[string]Record{}
	for _, id := range []string{"fig8a", "fig8b", "fig11a", "fig11b", "attn-fig8"} {
		if experiments.Registry[id] == nil {
			return nil, fmt.Errorf("bench: unknown experiment %q", id)
		}
		for _, par := range []int{1, 8} {
			rec, err := measureSteadySim(id, par, opts.minTime())
			if err != nil {
				return nil, err
			}
			if par == 1 {
				serial[id] = rec
			} else {
				s := serial[id]
				if concurrent && s.NsPerOp > 0 && rec.NsPerOp > 0 {
					rec.Speedup = s.NsPerOp / rec.NsPerOp
				}
				if s.AllocsPerOp > 0 {
					rec.AllocParity = float64(rec.AllocsPerOp) / float64(s.AllocsPerOp)
				}
			}
			f.Benchmarks = append(f.Benchmarks, rec)
			logf.printf("%s: %.0f ns/op, %d allocs/op (%d iters, %d warmup, parity %.3f)",
				rec.ID, rec.NsPerOp, rec.AllocsPerOp, rec.Iterations, rec.WarmupIterations, rec.AllocParity)
		}
	}
	return f, nil
}

// steadyMinIters is the floor on measured iterations per steady-state
// row, independent of the time floor: a slow host where one run exceeds
// MinTime would otherwise measure a single iteration, and any one-time
// residual warm-up allocation would land on it undiluted.
const steadyMinIters = 3

// steadyMaxWarmups caps the adaptive warmup. One warmup fills the caches;
// the rest exist because parallel rows converge gradually: per-worker
// arenas ratchet up to the largest group each worker happens to claim,
// and the racing claim order means a worker can first meet its largest
// group several runs in. Warmup therefore repeats until two consecutive
// runs allocate the same to within steadySettled (so the ratchet has
// stopped moving), bounded here so a genuinely noisy workload cannot
// warm up forever.
const steadyMaxWarmups = 8

// steadySettled is the per-run malloc-delta tolerance under which two
// consecutive warmup runs count as converged: within 2% or 8 allocations,
// whichever is larger (tiny rows jitter by a few allocs from scheduler
// timing; large rows by a fraction of a percent).
func steadySettled(prev, cur int64) bool {
	d := cur - prev
	if d < 0 {
		d = -d
	}
	tol := prev / 50
	if tol < 8 {
		tol = 8
	}
	return d <= tol
}

// measureSteadySim is one steady-state row: cold reset, then — with the
// GC already pinned off — warmup runs until per-run allocations settle,
// and a measured window of at least minTime and at least steadyMinIters
// iterations.
func measureSteadySim(id string, par int, minTime time.Duration) (Record, error) {
	run := experiments.Registry[id]
	opts := simOptions()
	opts.Parallelism = par
	sched.Shared.Reset()
	sim.SharedPlanes.Reset()
	wall0 := time.Now()
	cpu0 := processCPUNs()
	// Pin the GC off before the warmup, not just the measured window: a
	// collection clears the sync.Pools (arenas, worker state, pooled
	// coordination blocks), so one mid-warmup or post-warmup collection
	// would charge the refill to whichever measured iteration happened to
	// follow — allocation counts would depend on GC timing instead of the
	// code. With the GC pinned the warmup leaves every pool maximally
	// warm and the window measures the true steady state.
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	var m0, m1 runtime.MemStats
	warmups, prev := 0, int64(-1)
	for warmups < steadyMaxWarmups {
		runtime.ReadMemStats(&m0)
		if _, err := run(opts); err != nil {
			return Record{}, err
		}
		runtime.ReadMemStats(&m1)
		warmups++
		d := int64(m1.Mallocs - m0.Mallocs)
		if prev >= 0 && steadySettled(prev, d) {
			break
		}
		prev = d
	}
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	iters := 0
	for iters < steadyMinIters || time.Since(t0) < minTime {
		if _, err := run(opts); err != nil {
			return Record{}, err
		}
		iters++
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return Record{
		ID:               fmt.Sprintf("%s/j%d", id, par),
		Parallelism:      par,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NsPerOp:          float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp:      int64(m1.Mallocs-m0.Mallocs) / int64(iters),
		WallNs:           time.Since(wall0).Nanoseconds(),
		CPUNs:            processCPUNs() - cpu0,
		Iterations:       iters,
		WarmupIterations: warmups,
		Contended:        Contended(par),
	}, nil
}

// schedGroup is the Table-2-sized filter group the scheduler suite runs
// on: 16 filters (one tile's PE rows) × 16 lanes × 54 dense steps at 70%
// sparsity — the geometry and density regime of the paper's pruned conv
// layers.
func schedGroup(seed int64) []sched.Filter {
	rng := rand.New(rand.NewSource(seed))
	const lanes, steps, nf = 16, 54, 16
	filters := make([]sched.Filter, nf)
	for i := range filters {
		filters[i] = sched.NewFilter(lanes, steps, sparsity.RandomSparseFilter(rng, steps, lanes, 0.7), nil)
	}
	return filters
}

// RunSched measures the scheduling kernel per (pattern, algorithm): the
// arena-mode kernel in steady state (the zero-alloc hot path), the pooled
// fresh-copy entry point (the cache-fill path), and the reference
// scheduler it is differentially tested against.
func RunSched(logf Logf, _ RunOpts) (*File, error) {
	f := NewFile("16 filters x 16 lanes x 54 steps, 70% sparsity")
	filters := schedGroup(1)
	for _, p := range []sched.Pattern{sched.L(1, 2), sched.L(2, 5), sched.T(2, 5), sched.T(1, 6)} {
		for _, alg := range []sched.Algorithm{sched.Algorithm1, sched.GreedySimple, sched.Matching} {
			base := fmt.Sprintf("sched/%s/%s", p.Name, alg)
			sc := sched.NewScheduler()
			sc.ScheduleGroup(filters, p, alg) // warm the arena
			for _, v := range []struct {
				name string
				fn   func()
			}{
				{"kernel", func() { sc.ScheduleGroup(filters, p, alg) }},
				{"fresh", func() { sched.ScheduleGroup(filters, p, alg) }},
				{"reference", func() { sched.ScheduleGroupReference(filters, p, alg) }},
			} {
				rec := Measure(base+"/"+v.name, 0, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						v.fn()
					}
				})
				f.Benchmarks = append(f.Benchmarks, rec)
				logf.printf("%s: %.0f ns/op, %d allocs/op", rec.ID, rec.NsPerOp, rec.AllocsPerOp)
			}
		}
	}
	return f, nil
}

// kernelColumn builds one random (cost, mask) column in the packed SWAR
// layout: padLanes-sized costs <= 127, word-packed 0x00/0xFF lane masks.
func kernelColumn(rng *rand.Rand, lanes int) ([]uint8, []uint64) {
	words := (lanes + 7) / 8
	cost := make([]uint8, words*8)
	mask := make([]uint64, words)
	for ln := 0; ln < lanes; ln++ {
		cost[ln] = uint8(rng.Intn(128))
		if rng.Intn(2) == 0 {
			mask[ln>>3] |= 0xff << (8 * uint(ln&7))
		}
	}
	return cost, mask
}

// RunKernel measures the SWAR column-max against its scalar reference
// per lane count over 256 random columns cycled per op.
func RunKernel(logf Logf, _ RunOpts) (*File, error) {
	f := NewFile("256 random (cost, mask) columns cycled per op")
	for _, lanes := range []int{8, 16, 32, 64} {
		rng := rand.New(rand.NewSource(7))
		const n = 256
		costs := make([][]uint8, n)
		masks := make([][]uint64, n)
		for i := range costs {
			costs[i], masks[i] = kernelColumn(rng, lanes)
		}
		for _, v := range []struct {
			name string
			fn   func(cost []uint8, mask []uint64) int
		}{
			{"swar", sim.ColumnMax},
			{"scalar", sim.ColumnMaxScalar},
		} {
			fn := v.fn
			var sink int
			rec := Measure(fmt.Sprintf("kernel/lanes=%d/%s", lanes, v.name), 0, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := i & 255
					sink += fn(costs[j], masks[j])
				}
			})
			benchSink = sink
			f.Benchmarks = append(f.Benchmarks, rec)
			logf.printf("%s: %.2f ns/op, %d allocs/op", rec.ID, rec.NsPerOp, rec.AllocsPerOp)
		}
	}
	return f, nil
}

// Suite names a runnable benchmark suite and its committed baseline file.
type Suite struct {
	Name string
	File string // baseline filename relative to the repo root
	Run  func(Logf, RunOpts) (*File, error)
}

// Suites are the repo's four committed baselines in gate order.
var Suites = []Suite{
	{Name: "kernel", File: "BENCH_kernel.json", Run: RunKernel},
	{Name: "sched", File: "BENCH_sched.json", Run: RunSched},
	{Name: "sim", File: "BENCH_sim.json", Run: RunSim},
	{Name: "serve", File: "BENCH_serve.json", Run: RunServe},
}

// SuiteByName returns the named suite, or nil.
func SuiteByName(name string) *Suite {
	for i := range Suites {
		if Suites[i].Name == name {
			return &Suites[i]
		}
	}
	return nil
}
