// Package attention registers a transformer-era workload zoo against the
// internal/nn workload registry — entirely from outside the engine, the
// way internal/backend/dstripes plugs a back-end into the back-end
// registry. Nothing in internal/nn names these models; importing this
// package (for side effects) is what makes them buildable.
//
// Every attention primitive lowers onto the FC machinery the engine
// already has (weight-stationary matmuls with Timesteps as the token/query
// window axis), per DESIGN.md §15:
//
//   - QKV/output projections and FFN layers are FC layers with one
//     timestep per token (× batch);
//   - the Q·Kᵀ score matmul is an FC layer whose "filters" are the keys
//     (K = seq, reduction = head dim) applied once per (query, head);
//   - the attention×V matmul is an FC layer reducing over keys
//     (K = head dim, reduction = seq) whose *input* is overridden to the
//     softmax-row distribution (Layer.Act) — probability rows with
//     emergent underflow sparsity;
//   - everything else sees the model's GELU-shaped signed law.
//
// ZooConfig.Batch multiplies the token windows of every FC-lowered layer,
// the transformer batch-size knob (spatial CNN layers ignore it).
package attention

import (
	"fmt"

	"bittactical/internal/nn"
	"bittactical/internal/sparsity"
)

// ModelNames lists the registered transformer-era workloads in evaluation
// order: three attention-block models and one depthwise/group-conv stress
// model.
var ModelNames = []string{"BERT-Attn", "GPT2-Attn", "ViT-Attn", "ConvNeXt-DW"}

// headDim is the per-head reduction depth, fixed at the value every
// BERT/GPT2/ViT family uses; the head count scales with the hidden width.
const headDim = 64

func init() {
	for _, e := range []nn.Entry{
		// BERT-small encoder blocks over a 128-token sequence. Weight
		// sparsity per movement-pruning results on BERT (≈60% with no
		// accuracy loss); GELU activations carry a wide positive lobe and a
		// bounded negative lobe.
		{Name: "BERT-Attn", WeightSparsity: 0.60,
			Act:   sparsity.GELUAct{ZeroFrac: 0.12, MeanLog2: 10.8, SigmaLog2: 2.2, NegFrac: 0.35, SigBits: 5},
			Build: func(cfg nn.ZooConfig) *nn.Model { return buildEncoder(cfg, 512, 128, 2048, 2) }},
		// GPT2-small decoder blocks over a 256-token context.
		{Name: "GPT2-Attn", WeightSparsity: 0.50,
			Act:   sparsity.GELUAct{ZeroFrac: 0.10, MeanLog2: 11.0, SigmaLog2: 2.4, NegFrac: 0.33, SigBits: 6},
			Build: func(cfg nn.ZooConfig) *nn.Model { return buildEncoder(cfg, 768, 256, 3072, 2) }},
		// ViT-small: a 16×16 patch-embedding convolution feeds encoder
		// blocks whose sequence length is the patch count.
		{Name: "ViT-Attn", WeightSparsity: 0.45,
			Act:   sparsity.GELUAct{ZeroFrac: 0.15, MeanLog2: 10.5, SigmaLog2: 2.0, NegFrac: 0.30, SigBits: 5},
			Build: buildViT},
		// ConvNeXt-style depthwise/group-conv stress shapes: 7×7 depthwise
		// kernels, 4× pointwise expansion, and ResNeXt-style grouped 3×3
		// convolutions — the layer geometries the paper's CNN zoo touches
		// only lightly (MobileNet's 3×3 depthwise).
		{Name: "ConvNeXt-DW", WeightSparsity: 0.55,
			Act:   sparsity.GELUAct{ZeroFrac: 0.25, MeanLog2: 11.0, SigmaLog2: 1.9, NegFrac: 0.25, SigBits: 6},
			Build: buildConvNeXt},
	} {
		nn.Register(e)
	}
}

// softmaxRows is the attention-probability input law shared by every
// attention×V layer: Q12 probability codes, rows normalized over the keys.
var softmaxRows = sparsity.SoftmaxAct{FracBits: 12, SigBits: 6}

// fcT is a weight-sharing FC layer over `windows` token positions.
func fcT(name string, k, c, windows int) *nn.Layer {
	return &nn.Layer{Name: name, Kind: nn.FC, K: k, C: c, R: 1, S: 1, InH: 1, InW: 1, Timesteps: windows}
}

// attnBlock appends one pre-norm attention block: QKV and output
// projections, per-head score and attention×V matmuls, and the FFN pair.
// seq tokens, h hidden width, ffn inner width; every FC window count is
// multiplied by the batch size.
func attnBlock(m *nn.Model, prefix string, h, seq, ffn, batch int) {
	heads := h / headDim
	if heads < 1 {
		heads = 1
	}
	dHead := h / heads
	tok := seq * batch
	m.Layers = append(m.Layers,
		fcT(prefix+"/q_proj", h, h, tok),
		fcT(prefix+"/k_proj", h, h, tok),
		fcT(prefix+"/v_proj", h, h, tok),
		// Q·Kᵀ: one dot product of depth dHead per (query, key, head); the
		// key axis plays the filter role, the (query, head) axis the window
		// role.
		fcT(prefix+"/scores", seq, dHead, seq*heads*batch),
	)
	// Attention×V reduces each query's probability row over the keys; its
	// input is the softmax output, not a GELU activation.
	av := fcT(prefix+"/attnv", dHead, seq, seq*heads*batch)
	av.Act = softmaxRows
	m.Layers = append(m.Layers,
		av,
		fcT(prefix+"/out_proj", h, h, tok),
		fcT(prefix+"/ffn1", ffn, h, tok),
		fcT(prefix+"/ffn2", h, ffn, tok),
	)
}

// buildEncoder is the shared BERT/GPT2 geometry: `blocks` attention blocks
// at native hidden width h, sequence length seq, and FFN width ffn, scaled
// through the zoo's rules.
func buildEncoder(cfg nn.ZooConfig, h, seq, ffn, blocks int) *nn.Model {
	hs := cfg.ScaleChannels(h)
	fs := cfg.ScaleChannels(ffn)
	ss := cfg.ScaleSpatial(seq, 16)
	m := &nn.Model{}
	for b := 1; b <= blocks; b++ {
		attnBlock(m, fmt.Sprintf("blk%d", b), hs, ss, fs, cfg.BatchSize())
	}
	return m
}

// buildViT embeds 16×16 image patches with a strided convolution, then
// runs encoder blocks over the patch sequence.
func buildViT(cfg nn.ZooConfig) *nn.Model {
	const patch = 16
	in := cfg.ScaleSpatial(224, 64)
	in = in / patch * patch // whole patches
	hs := cfg.ScaleChannels(384)
	fs := cfg.ScaleChannels(1536)
	m := &nn.Model{}
	m.Layers = append(m.Layers, &nn.Layer{
		Name: "patch_embed", Kind: nn.Conv, K: hs, C: 3, R: patch, S: patch,
		Stride: patch, InH: in, InW: in,
	})
	seq := (in / patch) * (in / patch)
	for b := 1; b <= 2; b++ {
		attnBlock(m, fmt.Sprintf("blk%d", b), hs, seq, fs, cfg.BatchSize())
	}
	return m
}

// buildConvNeXt is the depthwise/group-conv stress model: a patchify stem,
// then stages of 7×7 depthwise + 1×1 expand/reduce blocks with a grouped
// 3×3 convolution, downsampling between stages.
func buildConvNeXt(cfg nn.ZooConfig) *nn.Model {
	m := &nn.Model{}
	in := cfg.ScaleSpatial(224, 64)
	c := cfg.ScaleChannels(96)
	m.Layers = append(m.Layers, &nn.Layer{
		Name: "stem", Kind: nn.Conv, K: c, C: 3, R: 4, S: 4, Stride: 4, InH: in, InW: in,
	})
	d := in / 4
	for stage := 1; stage <= 2; stage++ {
		p := fmt.Sprintf("st%d", stage)
		// ConvNeXt block: 7×7 depthwise, 1×1 expand ×4, 1×1 reduce.
		m.Layers = append(m.Layers,
			&nn.Layer{Name: p + "/dw7", Kind: nn.Depthwise, K: c, C: c, R: 7, S: 7, Stride: 1, Pad: 3, InH: d, InW: d},
			&nn.Layer{Name: p + "/pw_expand", Kind: nn.Conv, K: 4 * c, C: c, R: 1, S: 1, Stride: 1, InH: d, InW: d},
			&nn.Layer{Name: p + "/pw_reduce", Kind: nn.Conv, K: c, C: 4 * c, R: 1, S: 1, Stride: 1, InH: d, InW: d},
			// ResNeXt-style grouped 3×3: cross-channel reduction restricted
			// to 4 channel groups.
			&nn.Layer{Name: p + "/group3", Kind: nn.Conv, K: c, C: c, R: 3, S: 3, Stride: 1, Pad: 1, Groups: 4, InH: d, InW: d},
		)
		if stage < 2 {
			next := cfg.ScaleChannels(192)
			m.Layers = append(m.Layers, &nn.Layer{
				Name: p + "/down", Kind: nn.Conv, K: next, C: c, R: 2, S: 2, Stride: 2, InH: d, InW: d,
			})
			c = next
			d /= 2
		}
	}
	return m
}
