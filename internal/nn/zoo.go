package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bittactical/internal/fixed"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// ZooConfig controls model-zoo instantiation.
type ZooConfig struct {
	Width fixed.Width
	// ChannelScale and SpatialScale shrink the native topologies for
	// tractable simulation (DESIGN.md §6). 1.0 reproduces native shapes.
	ChannelScale float64
	SpatialScale float64
	// Seed drives weight generation and pruning.
	Seed int64
	// Batch multiplies the timestep/token count of sequence workloads
	// (FC-lowered layers gain window parallelism; spatial layers are
	// untouched). 0 means 1. The CNN builders ignore it — batching images
	// through a conv layer only repeats identical per-image timing.
	Batch int
}

// BatchSize is the canonical batch: Batch with the zero value mapped to 1.
func (c ZooConfig) BatchSize() int {
	if c.Batch < 1 {
		return 1
	}
	return c.Batch
}

// ScaleChannels applies the zoo's channel scaling rule (multiple-of-16
// rounding with a 32-channel floor) — exported so workload packages outside
// internal/nn scale their native topologies exactly as the paper zoo does.
func (c ZooConfig) ScaleChannels(ch int) int { return scaleC(ch, c) }

// ScaleSpatial applies the zoo's spatial scaling rule, keeping at least
// minDim.
func (c ZooConfig) ScaleSpatial(d, minDim int) int { return scaleS(d, minDim, c) }

// DefaultZoo is the configuration the experiment harness uses: every layer
// type and the paper's relative orderings are preserved at ~1/30 the MACs.
func DefaultZoo() ZooConfig {
	return ZooConfig{Width: fixed.W16, ChannelScale: 0.25, SpatialScale: 0.5, Seed: 1}
}

// ModelNames lists the seven paper evaluation networks in the paper's
// order — the default set the figure runners sweep. The full registered
// set, including workload zoos from outside this package, is Names().
var ModelNames = []string{
	"AlexNet-ES", "AlexNet-SS", "GoogLeNet-ES", "GoogLeNet-SS",
	"ResNet50-SS", "MobileNet", "Bi-LSTM",
}

// BuildModel instantiates a registered workload by name (case-insensitive):
// geometry from the entry's builder, then deterministic weight synthesis,
// pruning to the entry's target, and — for 8-bit configs — range-oblivious
// requantization.
func BuildModel(name string, cfg ZooConfig) (*Model, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	m := e.Build(cfg)
	m.Name = e.Name
	m.Width = fixed.W16
	m.Act = e.Act
	m.TargetWeightSparsity = e.WeightSparsity
	fillWeights(m, cfg, e.WeightSparsity)
	if cfg.Width == fixed.W8 {
		m = m.Quantize8()
		m.Name = e.Name // experiments address 8b models by the plain name
	}
	return m, nil
}

// BuildAll instantiates the paper's seven-network zoo.
func BuildAll(cfg ZooConfig) ([]*Model, error) {
	out := make([]*Model, 0, len(ModelNames))
	for _, n := range ModelNames {
		m, err := BuildModel(n, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// The paper's seven networks register like any other workload. The
// per-network calibration targets derive from the paper's Table 1
// potentials (DESIGN.md §2): aggregate weight sparsity from the W column
// (1 − 1/W), activation zero fraction from the A column, and the
// log-magnitude law matched to the Ap/Ae columns.
func init() {
	for _, e := range []Entry{
		{Name: "AlexNet-ES", Build: buildAlexNet, WeightSparsity: 0.77,
			Act: sparsity.ActModel{ZeroFrac: 0.33, MeanLog2: 11.0, SigmaLog2: 2.0, SigBits: 5}},
		{Name: "AlexNet-SS", Build: buildAlexNet, WeightSparsity: 0.85,
			Act: sparsity.ActModel{ZeroFrac: 0.38, MeanLog2: 11.0, SigmaLog2: 2.0, SigBits: 4}},
		{Name: "GoogLeNet-ES", Build: buildGoogLeNet, WeightSparsity: 0.60,
			Act: sparsity.ActModel{ZeroFrac: 0.47, MeanLog2: 11.2, SigmaLog2: 2.0, SigBits: 5}},
		{Name: "GoogLeNet-SS", Build: buildGoogLeNet, WeightSparsity: 0.77,
			Act: sparsity.ActModel{ZeroFrac: 0.44, MeanLog2: 11.0, SigmaLog2: 2.0, SigBits: 4}},
		{Name: "ResNet50-SS", Build: buildResNet50, WeightSparsity: 0.41,
			Act: sparsity.ActModel{ZeroFrac: 0.60, MeanLog2: 10.6, SigmaLog2: 1.8, SigBits: 3}},
		{Name: "MobileNet", Build: buildMobileNet, WeightSparsity: 0.55,
			Act: sparsity.ActModel{ZeroFrac: 0.44, MeanLog2: 11.4, SigmaLog2: 1.9, SigBits: 8}},
		{Name: "Bi-LSTM", Build: buildBiLSTM, WeightSparsity: 0.73,
			Act: sparsity.ActModel{ZeroFrac: 0.38, MeanLog2: 11.2, SigmaLog2: 1.9, SigBits: 8}},
	} {
		Register(e)
	}
}

// ---- geometry helpers ----

// scaleC scales a channel count, rounding to a multiple of 16 so the scaled
// topologies keep the native networks' property that channel depths fill the
// 16 weight lanes exactly (network input channel counts such as RGB's 3 are
// passed through unscaled by callers). A 32-channel floor keeps scheduling
// windows meaningful (a 16-channel 1×1 layer has a single-step schedule).
func scaleC(c int, cfg ZooConfig) int {
	s := int(math.Round(float64(c)*cfg.ChannelScale/16)) * 16
	if s < 32 {
		s = 32
	}
	if s > c && c >= 16 {
		s = c / 16 * 16
	}
	return s
}

// scaleS scales a spatial dimension, keeping at least minDim.
func scaleS(d, minDim int, cfg ZooConfig) int {
	s := int(math.Round(float64(d) * cfg.SpatialScale))
	if s < minDim {
		s = minDim
	}
	if s > d {
		s = d
	}
	return s
}

func conv(name string, k, c, r, s, stride, pad, inH, inW int) *Layer {
	return &Layer{Name: name, Kind: Conv, K: k, C: c, R: r, S: s, Stride: stride, Pad: pad, InH: inH, InW: inW}
}

func dwconv(name string, c, r, s, stride, pad, inH, inW int) *Layer {
	return &Layer{Name: name, Kind: Depthwise, K: c, C: c, R: r, S: s, Stride: stride, Pad: pad, InH: inH, InW: inW}
}

func fc(name string, k, c int) *Layer {
	return &Layer{Name: name, Kind: FC, K: k, C: c, R: 1, S: 1, InH: 1, InW: 1}
}

func fcT(name string, k, c, timesteps int) *Layer {
	l := fc(name, k, c)
	l.Timesteps = timesteps
	return l
}

// outDim is the conv output size for input d, kernel r, stride, pad.
func outDim(d, r, stride, pad int) int { return (d+2*pad-r)/stride + 1 }

// ---- network builders (native topologies, scaled) ----

func buildAlexNet(cfg ZooConfig) *Model {
	m := &Model{}
	in := scaleS(227, 31, cfg)
	c1 := scaleC(96, cfg)
	m.Layers = append(m.Layers, conv("conv1", c1, 3, 11, 11, 4, 0, in, in))
	d := outDim(in, 11, 4, 0)
	d = outDim(d, 3, 2, 0) // pool1 3x3/2
	c2 := scaleC(256, cfg)
	conv2 := conv("conv2", c2, c1, 5, 5, 1, 2, d, d)
	conv2.Groups = 2 // the Caffe AlexNet splits conv2/4/5 across two GPUs
	m.Layers = append(m.Layers, conv2)
	d = outDim(d, 3, 2, 0) // pool2
	c3 := scaleC(384, cfg)
	m.Layers = append(m.Layers, conv("conv3", c3, c2, 3, 3, 1, 1, d, d))
	c4 := scaleC(384, cfg)
	conv4 := conv("conv4", c4, c3, 3, 3, 1, 1, d, d)
	conv4.Groups = 2
	m.Layers = append(m.Layers, conv4)
	c5 := scaleC(256, cfg)
	conv5 := conv("conv5", c5, c4, 3, 3, 1, 1, d, d)
	conv5.Groups = 2
	m.Layers = append(m.Layers, conv5)
	d = outDim(d, 3, 2, 0) // pool5
	f6 := scaleC(4096, cfg)
	m.Layers = append(m.Layers, fc("fc6", f6, c5*d*d))
	f7 := scaleC(4096, cfg)
	m.Layers = append(m.Layers, fc("fc7", f7, f6))
	m.Layers = append(m.Layers, fc("fc8", scaleC(1000, cfg), f7))
	return m
}

func buildGoogLeNet(cfg ZooConfig) *Model {
	m := &Model{}
	in := scaleS(224, 31, cfg)
	c1 := scaleC(64, cfg)
	m.Layers = append(m.Layers, conv("conv1", c1, 3, 7, 7, 2, 3, in, in))
	d := outDim(in, 7, 2, 3)
	d = outDim(d, 3, 2, 0) // pool1
	cr := scaleC(64, cfg)
	m.Layers = append(m.Layers, conv("conv2/red", cr, c1, 1, 1, 1, 0, d, d))
	c2 := scaleC(192, cfg)
	m.Layers = append(m.Layers, conv("conv2", c2, cr, 3, 3, 1, 1, d, d))
	d = outDim(d, 3, 2, 0) // pool2

	type icp struct {
		name                         string
		b1, b2r, b2, b3r, b3, b4, in int
	}
	cin := c2
	add := func(i icp, dim int) int {
		s := func(c int) int { return scaleC(c, cfg) }
		m.Layers = append(m.Layers,
			conv(i.name+"/1x1", s(i.b1), cin, 1, 1, 1, 0, dim, dim),
			conv(i.name+"/3x3red", s(i.b2r), cin, 1, 1, 1, 0, dim, dim),
			conv(i.name+"/3x3", s(i.b2), s(i.b2r), 3, 3, 1, 1, dim, dim),
			conv(i.name+"/5x5red", s(i.b3r), cin, 1, 1, 1, 0, dim, dim),
			conv(i.name+"/5x5", s(i.b3), s(i.b3r), 5, 5, 1, 2, dim, dim),
			conv(i.name+"/poolproj", s(i.b4), cin, 1, 1, 1, 0, dim, dim),
		)
		return s(i.b1) + s(i.b2) + s(i.b3) + s(i.b4)
	}
	mods3 := []icp{
		{"icp1", 64, 96, 128, 16, 32, 32, 0},
		{"icp2", 128, 128, 192, 32, 96, 64, 0},
	}
	for _, md := range mods3 {
		cin2 := add(md, d)
		cin = cin2
	}
	d = outDim(d, 3, 2, 0) // pool3
	mods4 := []icp{
		{"icp3", 192, 96, 208, 16, 48, 64, 0},
		{"icp4", 160, 112, 224, 24, 64, 64, 0},
		{"icp5", 128, 128, 256, 24, 64, 64, 0},
		{"icp6", 112, 144, 288, 32, 64, 64, 0},
		{"icp7", 256, 160, 320, 32, 128, 128, 0},
	}
	for _, md := range mods4 {
		cin = add(md, d)
	}
	d = outDim(d, 3, 2, 0) // pool4
	mods5 := []icp{
		{"icp8", 256, 160, 320, 32, 128, 128, 0},
		{"icp9", 384, 192, 384, 48, 128, 128, 0},
	}
	for _, md := range mods5 {
		cin = add(md, d)
	}
	m.Layers = append(m.Layers, fc("fc", scaleC(1000, cfg), cin))
	return m
}

func buildResNet50(cfg ZooConfig) *Model {
	m := &Model{}
	in := scaleS(224, 31, cfg)
	c1 := scaleC(64, cfg)
	m.Layers = append(m.Layers, conv("conv1", c1, 3, 7, 7, 2, 3, in, in))
	d := outDim(in, 7, 2, 3)
	d = outDim(d, 3, 2, 1) // pool1 3x3/2 pad1
	cin := c1
	stage := func(prefix string, blocks, mid, out, dim, firstStride int) int {
		s := func(c int) int { return scaleC(c, cfg) }
		for b := 0; b < blocks; b++ {
			name := fmt.Sprintf("%s%c", prefix, 'a'+b)
			stride := 1
			if b == 0 {
				stride = firstStride
				m.Layers = append(m.Layers,
					conv(name+"_br1", s(out), cin, 1, 1, stride, 0, dim, dim))
			}
			m.Layers = append(m.Layers,
				conv(name+"_br2a", s(mid), cin, 1, 1, stride, 0, dim, dim))
			dim2 := outDim(dim, 1, stride, 0)
			m.Layers = append(m.Layers,
				conv(name+"_br2b", s(mid), s(mid), 3, 3, 1, 1, dim2, dim2),
				conv(name+"_br2c", s(out), s(mid), 1, 1, 1, 0, dim2, dim2))
			cin = s(out)
			dim = dim2
		}
		return dim
	}
	d = stage("2", 3, 64, 256, d, 1)
	d = stage("3", 4, 128, 512, d, 2)
	d = stage("4", 6, 256, 1024, d, 2)
	d = stage("5", 3, 512, 2048, d, 2)
	m.Layers = append(m.Layers, fc("fc", scaleC(1000, cfg), cin))
	return m
}

func buildMobileNet(cfg ZooConfig) *Model {
	m := &Model{}
	in := scaleS(224, 31, cfg)
	c := scaleC(32, cfg)
	m.Layers = append(m.Layers, conv("conv1", c, 3, 3, 3, 2, 1, in, in))
	d := outDim(in, 3, 2, 1)
	type blk struct {
		out, stride int
	}
	blocks := []blk{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for i, b := range blocks {
		n := i + 1
		m.Layers = append(m.Layers, dwconv(fmt.Sprintf("dw%d", n), c, 3, 3, b.stride, 1, d, d))
		d = outDim(d, 3, b.stride, 1)
		out := scaleC(b.out, cfg)
		m.Layers = append(m.Layers, conv(fmt.Sprintf("sep%d", n), out, c, 1, 1, 1, 0, d, d))
		c = out
	}
	m.Layers = append(m.Layers, fc("fc", scaleC(1000, cfg), c))
	return m
}

func buildBiLSTM(cfg ZooConfig) *Model {
	// DeepSpeech2-style speech model (paper ref [28]): two conv layers over
	// the spectrogram, four bidirectional LSTM layers, a character FC.
	m := &Model{}
	// The 41-tap then 21-tap frequency kernels need at least 81 input bins.
	freq := scaleS(161, 81, cfg)
	// Utterances are long: keep enough timesteps after the strided conv
	// front-end that LSTM weights amortize over real window parallelism.
	t := scaleS(480, 120, cfg)
	c1 := scaleC(32, cfg)
	m.Layers = append(m.Layers, conv("conv1", c1, 1, 41, 11, 2, 0, freq, t))
	fd := outDim(freq, 41, 2, 0)
	td := outDim(t, 11, 2, 0)
	c2 := scaleC(32, cfg)
	m.Layers = append(m.Layers, conv("conv5", c2, c1, 21, 11, 2, 0, fd, td))
	fd = outDim(fd, 21, 2, 0)
	td = outDim(td, 11, 2, 0)
	h := scaleC(512, cfg)
	d := c2 * fd
	for layer := 1; layer <= 4; layer++ {
		for _, dir := range []string{"fwd", "bwd"} {
			m.Layers = append(m.Layers,
				fcT(fmt.Sprintf("lstm%d/%s/x", layer, dir), 4*h, d, td),
				fcT(fmt.Sprintf("lstm%d/%s/h", layer, dir), 4*h, h, td))
		}
		d = 2 * h
	}
	m.Layers = append(m.Layers, fcT("fc8", 29, 2*h, td))
	return m
}

// ---- weight generation & pruning ----

// fillWeights allocates and fills every layer's weights, then prunes to
// per-layer targets whose reuse-weighted aggregate matches the network
// target. Per-layer multipliers follow the paper's observations: first conv
// layers and depthwise kernels prune least, FC layers most.
func fillWeights(m *Model, cfg ZooConfig, target float64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	wm := sparsity.WeightModel{Sigma: 400}
	for _, l := range m.Layers {
		switch l.Kind {
		case Depthwise:
			l.Weights = tensor.New(l.C, 1, l.R, l.S)
		case Conv:
			l.Weights = tensor.New(l.K, l.GroupChannels(), l.R, l.S)
		default:
			l.Weights = tensor.New(l.K, l.C, l.R, l.S)
		}
		l.WFrac = 12
	}
	fracs := assignSparsity(m.Layers, target)
	for i, l := range m.Layers {
		wm.FillPruned(rng, l.Weights, fixed.W16, fracs[i])
	}
}

// layerMult returns the relative pruning aggressiveness of a layer.
func layerMult(l *Layer, index int) float64 {
	switch {
	case l.Kind == Depthwise:
		return 0.45
	case l.Kind == FC:
		return 1.10
	case index == 0:
		return 0.45 // first conv layer retains most weights
	default:
		return 1.0
	}
}

// assignSparsity solves for per-layer pruning fractions alpha*mult_l
// (clamped to 0.95) whose reuse-weighted mean equals target.
func assignSparsity(layers []*Layer, target float64) []float64 {
	if target <= 0 {
		return make([]float64, len(layers))
	}
	weights := make([]float64, len(layers))
	mults := make([]float64, len(layers))
	var totalW float64
	for i, l := range layers {
		weights[i] = float64(l.MACs())
		mults[i] = layerMult(l, i)
		totalW += weights[i]
	}
	agg := func(alpha float64) float64 {
		var s float64
		for i := range layers {
			f := alpha * mults[i]
			if f > 0.95 {
				f = 0.95
			}
			s += weights[i] * f
		}
		return s / totalW
	}
	// Bisection on alpha: agg is monotone non-decreasing.
	lo, hi := 0.0, 2.5
	if agg(hi) < target {
		// Even max clamping cannot reach the target; saturate.
		out := make([]float64, len(layers))
		for i := range out {
			out[i] = math.Min(0.95, hi*mults[i])
		}
		return out
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if agg(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	out := make([]float64, len(layers))
	for i := range out {
		out[i] = math.Min(0.95, hi*mults[i])
	}
	return out
}

// SortedLayerNames returns the model's layer names sorted, a convenience for
// stable CLI output.
func (m *Model) SortedLayerNames() []string {
	names := make([]string, len(m.Layers))
	for i, l := range m.Layers {
		names[i] = l.Name
	}
	sort.Strings(names)
	return names
}
