package nn

import (
	"fmt"

	"bittactical/internal/fixed"
	"bittactical/internal/tensor"
)

// This file implements the fixed-point LSTM cell behind the Bi-LSTM
// workload: the reference forward pass for the recurrent layers whose gate
// projections the zoo exposes to the accelerators as weight-sharing FC
// layers. The accelerator sees only the projections (the element-wise gate
// arithmetic is a negligible fraction of the work, Section 5.3 — the paper
// suggests a small vector unit for it); this cell provides the golden
// functional semantics and generates self-consistent per-timestep
// activation streams.

// rescaleQ converts a Q(from) value to Q(to), truncating toward negative
// infinity on narrowing (the hardware's arithmetic shift).
func rescaleQ(x int64, from, to int) int64 {
	if from >= to {
		return x >> uint(from-to)
	}
	return x << uint(to-from)
}

// sigmoidQ is a piecewise-linear fixed-point sigmoid on Q(frac) inputs,
// producing Q15 outputs in [0, 1) — the standard hard-sigmoid of embedded
// inference: σ(x) ≈ clamp(0.25·x + 0.5, 0, 1).
func sigmoidQ(x int64, frac int) int32 {
	half := int64(1) << 14            // 0.5 in Q15
	v := rescaleQ(x, frac, 13) + half // 0.25·x in Q15 = x·2^(13-frac)
	if v < 0 {
		return 0
	}
	if v > (1<<15)-1 {
		return (1 << 15) - 1
	}
	return int32(v)
}

// tanhQ is the matching hard-tanh: clamp(x, -1, 1) in Q15.
func tanhQ(x int64, frac int) int32 {
	v := rescaleQ(x, frac, 15)
	if v > (1<<15)-1 {
		return (1 << 15) - 1
	}
	if v < -(1<<15)+1 {
		return -(1 << 15) + 1
	}
	return int32(v)
}

// LSTMCell is one direction of a recurrent layer in fixed point.
type LSTMCell struct {
	// Hidden is the state width; Input the input feature width.
	Hidden, Input int
	// Wx projects the input (4·Hidden × Input), Wh the recurrent state
	// (4·Hidden × Hidden); gate order is [input, forget, cell, output].
	Wx, Wh *tensor.T
	// WFrac is the weight scale; AFrac the input scale.
	WFrac, AFrac int
}

// NewLSTMCell allocates a cell with zero weights.
func NewLSTMCell(input, hidden, wFrac, aFrac int) *LSTMCell {
	return &LSTMCell{
		Hidden: hidden, Input: input,
		Wx:    tensor.New(4*hidden, input, 1, 1),
		Wh:    tensor.New(4*hidden, hidden, 1, 1),
		WFrac: wFrac, AFrac: aFrac,
	}
}

// Validate checks shapes.
func (c *LSTMCell) Validate() error {
	if c.Wx.Shape != (tensor.Shape{4 * c.Hidden, c.Input, 1, 1}) {
		return fmt.Errorf("nn: lstm Wx shape %v", c.Wx.Shape)
	}
	if c.Wh.Shape != (tensor.Shape{4 * c.Hidden, c.Hidden, 1, 1}) {
		return fmt.Errorf("nn: lstm Wh shape %v", c.Wh.Shape)
	}
	return nil
}

// State is the cell's recurrent state: h in Q(AFrac) codes, cLong in Q15.
type State struct {
	H []int32
	C []int32
}

// NewState returns the zero state.
func (c *LSTMCell) NewState() State {
	return State{H: make([]int32, c.Hidden), C: make([]int32, c.Hidden)}
}

// Step consumes one input vector (Q(AFrac) codes, length Input) and
// advances the state, returning the new hidden vector in Q(AFrac) codes at
// width w. This is the golden model: the accelerator computes the same
// Wx·x and Wh·h projections through its datapath; everything after the
// projections is element-wise.
func (c *LSTMCell) Step(x []int32, s *State, w fixed.Width) ([]int32, error) {
	if len(x) != c.Input {
		return nil, fmt.Errorf("nn: lstm input %d, want %d", len(x), c.Input)
	}
	if len(s.H) != c.Hidden || len(s.C) != c.Hidden {
		return nil, fmt.Errorf("nn: lstm state size mismatch")
	}
	accFrac := c.WFrac + c.AFrac
	out := make([]int32, c.Hidden)
	for j := 0; j < c.Hidden; j++ {
		var gates [4]int64
		for g := 0; g < 4; g++ {
			row := g*c.Hidden + j
			var acc int64
			for i := 0; i < c.Input; i++ {
				acc += int64(c.Wx.At(row, i, 0, 0)) * int64(x[i])
			}
			for i := 0; i < c.Hidden; i++ {
				acc += int64(c.Wh.At(row, i, 0, 0)) * int64(s.H[i])
			}
			gates[g] = acc
		}
		iG := int64(sigmoidQ(gates[0], accFrac)) // Q15
		fG := int64(sigmoidQ(gates[1], accFrac))
		cG := int64(tanhQ(gates[2], accFrac)) // Q15
		oG := int64(sigmoidQ(gates[3], accFrac))
		// c' = f·c + i·g, all Q15: products are Q30, renormalize.
		cNew := (fG*int64(s.C[j]) + iG*cG) >> 15
		if cNew > (1<<15)-1 {
			cNew = (1 << 15) - 1
		}
		if cNew < -(1<<15)+1 {
			cNew = -(1 << 15) + 1
		}
		s.C[j] = int32(cNew)
		// h' = o·tanh(c'), Q30 -> Q(AFrac) codes at width w.
		hQ30 := oG * int64(tanhQ(cNew<<15, 30))
		h := fixed.RequantizeProduct(hQ30, 30-c.AFrac, w)
		s.H[j] = h
		out[j] = h
	}
	return out, nil
}

// Run processes a sequence (timesteps × Input) and returns the hidden
// sequence (timesteps × Hidden).
func (c *LSTMCell) Run(xs [][]int32, w fixed.Width) ([][]int32, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := c.NewState()
	out := make([][]int32, len(xs))
	for t, x := range xs {
		h, err := c.Step(x, &s, w)
		if err != nil {
			return nil, err
		}
		out[t] = h
	}
	return out, nil
}

// BiLSTMRun runs a forward and a backward cell over the sequence and
// concatenates their hidden vectors per timestep, the Bi-LSTM layer
// semantics.
func BiLSTMRun(fwd, bwd *LSTMCell, xs [][]int32, w fixed.Width) ([][]int32, error) {
	hf, err := fwd.Run(xs, w)
	if err != nil {
		return nil, err
	}
	rev := make([][]int32, len(xs))
	for i := range xs {
		rev[i] = xs[len(xs)-1-i]
	}
	hbRev, err := bwd.Run(rev, w)
	if err != nil {
		return nil, err
	}
	out := make([][]int32, len(xs))
	for t := range xs {
		hb := hbRev[len(xs)-1-t]
		cat := make([]int32, 0, len(hf[t])+len(hb))
		cat = append(cat, hf[t]...)
		cat = append(cat, hb...)
		out[t] = cat
	}
	return out, nil
}
