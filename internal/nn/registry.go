package nn

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"bittactical/internal/sparsity"
)

// Entry is one registered workload: a geometry builder plus the sparsity
// profile BuildModel applies to it. Builders return geometry only — weight
// synthesis, pruning to WeightSparsity, and 8-bit requantization are
// BuildModel's job, so an externally registered workload (a package under
// internal/workloads, a test) gets the zoo's full deterministic pipeline by
// supplying nothing but shapes and a distribution.
type Entry struct {
	// Name is the display name models are addressed by (case-insensitive
	// on lookup, preserved in output).
	Name string
	// Build returns the layer geometry for one zoo configuration. Builders
	// may set per-layer activation overrides (Layer.Act); everything else
	// on the returned model is overwritten by BuildModel.
	Build func(ZooConfig) *Model
	// WeightSparsity is the aggregate reuse-weighted pruning target.
	WeightSparsity float64
	// Act is the model-default activation distribution.
	Act sparsity.ActivationModel
}

// The process-wide workload registry, the model-side twin of
// internal/backend's registry: the seven paper networks register from this
// package's init, transformer-era workloads from internal/workloads/*, and
// tests may register late under the mutex.
var (
	workloadMu       sync.RWMutex
	workloadRegistry = make(map[string]Entry) // keyed by lowercased name
)

// Register adds a workload to the process-wide registry. It panics on an
// empty name, a nil builder or activation model, or a duplicate
// (case-insensitive) registration — all programming errors a process must
// fail loudly on at init, not race to win.
func Register(e Entry) {
	if e.Name == "" {
		panic("nn: Register with empty name")
	}
	if e.Build == nil {
		panic(fmt.Sprintf("nn: Register(%q) with nil builder", e.Name))
	}
	if e.Act == nil {
		panic(fmt.Sprintf("nn: Register(%q) with nil activation model", e.Name))
	}
	key := strings.ToLower(e.Name)
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if prev, ok := workloadRegistry[key]; ok {
		panic(fmt.Sprintf("nn: duplicate registration of %q (already registered as %q)", e.Name, prev.Name))
	}
	workloadRegistry[key] = e
}

// Lookup resolves a registered workload by name, case-insensitively. A miss
// returns an error listing every registered name.
func Lookup(name string) (Entry, error) {
	workloadMu.RLock()
	e, ok := workloadRegistry[strings.ToLower(name)]
	workloadMu.RUnlock()
	if !ok {
		return Entry{}, fmt.Errorf("nn: unknown model %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return e, nil
}

// Names returns the display names of every registered workload, sorted.
// ModelNames remains the paper's seven in the paper's order; Names is the
// full set including externally registered zoos.
func Names() []string {
	workloadMu.RLock()
	out := make([]string, 0, len(workloadRegistry))
	for _, e := range workloadRegistry {
		out = append(out, e.Name)
	}
	workloadMu.RUnlock()
	sort.Strings(out)
	return out
}
