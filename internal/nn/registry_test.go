package nn

import (
	"strings"
	"testing"

	"bittactical/internal/sparsity"
)

func testEntry(name string) Entry {
	return Entry{
		Name: name,
		Build: func(cfg ZooConfig) *Model {
			m := &Model{}
			m.Layers = append(m.Layers, &Layer{Name: "fc", Kind: FC, K: 4, C: 8, R: 1, S: 1, InH: 1, InW: 1, Stride: 1})
			return m
		},
		WeightSparsity: 0.5,
		Act:            sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 10, SigmaLog2: 2, SigBits: 5},
	}
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one mentioning %q", r, want)
		}
	}()
	fn()
}

func TestRegisterValidation(t *testing.T) {
	mustPanic(t, "empty name", func() { Register(testEntry("")) })
	e := testEntry("Reg-NilBuild")
	e.Build = nil
	mustPanic(t, "nil builder", func() { Register(e) })
	e = testEntry("Reg-NilAct")
	e.Act = nil
	mustPanic(t, "nil activation model", func() { Register(e) })
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(testEntry("Reg-Dup"))
	// The collision is case-insensitive: a different spelling of a taken
	// name must still fail loudly.
	mustPanic(t, "duplicate registration", func() { Register(testEntry("reg-dup")) })
}

func TestLookupCaseInsensitive(t *testing.T) {
	Register(testEntry("Reg-Case"))
	for _, name := range []string{"Reg-Case", "reg-case", "REG-CASE"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if e.Name != "Reg-Case" {
			t.Errorf("Lookup(%q).Name = %q, want the registered spelling Reg-Case", name, e.Name)
		}
	}
	// BuildModel resolves through the same path and applies the entry's
	// profile: display name, sparsity target, and activation law.
	m, err := BuildModel("reg-case", DefaultZoo())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Reg-Case" {
		t.Errorf("BuildModel name = %q, want Reg-Case", m.Name)
	}
	if m.TargetWeightSparsity != 0.5 {
		t.Errorf("TargetWeightSparsity = %v, want the entry's 0.5", m.TargetWeightSparsity)
	}
	if m.Act == nil || m.Act.Name() != "relu-lognormal" {
		t.Errorf("model act = %v, want the entry's relu-lognormal law", m.Act)
	}
}

func TestLookupMissListsNames(t *testing.T) {
	_, err := Lookup("No-Such-Net")
	if err == nil {
		t.Fatal("Lookup of an unknown model succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"No-Such-Net"`) {
		t.Errorf("miss error does not echo the name: %s", msg)
	}
	for _, name := range ModelNames {
		if !strings.Contains(msg, name) {
			t.Errorf("miss error does not list registered model %q: %s", name, msg)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) < len(ModelNames) {
		t.Fatalf("Names() = %v, shorter than the paper zoo", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for _, n := range ModelNames {
		if !got[n] {
			t.Errorf("paper model %q missing from Names()", n)
		}
	}
}
