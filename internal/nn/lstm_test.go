package nn

import (
	"math/rand"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/sparsity"
)

func mkCell(t *testing.T, seed int64, input, hidden int) *LSTMCell {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := NewLSTMCell(input, hidden, 12, 8)
	sparsity.WeightModel{Sigma: 200}.FillPruned(rng, c.Wx, fixed.W16, 0.5)
	sparsity.WeightModel{Sigma: 200}.FillPruned(rng, c.Wh, fixed.W16, 0.5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSigmoidQEndpoints(t *testing.T) {
	// σ(0) = 0.5; large positive saturates at ~1; large negative at 0.
	if got := sigmoidQ(0, 20); got != 1<<14 {
		t.Errorf("sigmoid(0) = %d, want %d (0.5 in Q15)", got, 1<<14)
	}
	if got := sigmoidQ(1<<30, 20); got != (1<<15)-1 {
		t.Errorf("sigmoid(+inf) = %d", got)
	}
	if got := sigmoidQ(-(1 << 30), 20); got != 0 {
		t.Errorf("sigmoid(-inf) = %d", got)
	}
	// Monotone.
	prev := int32(-1)
	for x := int64(-1 << 22); x <= 1<<22; x += 1 << 18 {
		v := sigmoidQ(x, 20)
		if v < prev {
			t.Fatalf("sigmoid not monotone at %d", x)
		}
		prev = v
	}
}

func TestTanhQEndpoints(t *testing.T) {
	if got := tanhQ(0, 20); got != 0 {
		t.Errorf("tanh(0) = %d", got)
	}
	if got := tanhQ(1<<40, 20); got != (1<<15)-1 {
		t.Errorf("tanh(+inf) = %d", got)
	}
	if got := tanhQ(-(1 << 40), 20); got != -(1<<15)+1 {
		t.Errorf("tanh(-inf) = %d", got)
	}
	// Identity region: tanh(0.25) ≈ 0.25 in Q15 (hard-tanh).
	q := int64(1) << 18 // 0.25 in Q20
	if got := tanhQ(q, 20); got != 1<<13 {
		t.Errorf("hard-tanh(0.25) = %d, want %d", got, 1<<13)
	}
}

func TestLSTMStepShapes(t *testing.T) {
	c := mkCell(t, 1, 12, 8)
	s := c.NewState()
	x := make([]int32, 12)
	h, err := c.Step(x, &s, fixed.W16)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 8 {
		t.Fatalf("hidden size %d", len(h))
	}
	if _, err := c.Step(make([]int32, 5), &s, fixed.W16); err == nil {
		t.Error("accepted wrong input size")
	}
}

func TestLSTMZeroInputZeroStateGates(t *testing.T) {
	// All-zero input and state: gates see 0 → σ=0.5, tanh=0 → c'=0, h'=0.
	c := mkCell(t, 2, 6, 4)
	s := c.NewState()
	h, err := c.Step(make([]int32, 6), &s, fixed.W16)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range h {
		if v != 0 {
			t.Errorf("h[%d] = %d, want 0", j, v)
		}
		if s.C[j] != 0 {
			t.Errorf("c[%d] = %d, want 0", j, s.C[j])
		}
	}
}

func TestLSTMStateEvolves(t *testing.T) {
	c := mkCell(t, 3, 10, 6)
	rng := rand.New(rand.NewSource(4))
	xs := make([][]int32, 12)
	for t := range xs {
		xs[t] = make([]int32, 10)
		for i := range xs[t] {
			xs[t][i] = int32(rng.Intn(512) - 256)
		}
	}
	hs, err := c.Run(xs, fixed.W16)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 12 {
		t.Fatalf("got %d outputs", len(hs))
	}
	nonZero := 0
	for _, h := range hs {
		for _, v := range h {
			if v != 0 {
				nonZero++
			}
			if v > 32767 || v < -32767 {
				t.Fatalf("hidden value %d out of 16b range", v)
			}
		}
	}
	if nonZero == 0 {
		t.Error("LSTM produced an all-zero hidden sequence on non-zero input")
	}
}

func TestLSTMCellStateBounded(t *testing.T) {
	// Saturating arithmetic: the cell state stays in Q15 range under a long
	// constant drive (the classic unbounded-integrator failure mode).
	c := mkCell(t, 5, 4, 4)
	s := c.NewState()
	x := []int32{200, -150, 100, 250}
	for t2 := 0; t2 < 200; t2++ {
		if _, err := c.Step(x, &s, fixed.W16); err != nil {
			t.Fatal(err)
		}
	}
	for j, v := range s.C {
		if v > (1<<15)-1 || v < -(1<<15)+1 {
			t.Errorf("cell state %d unbounded: %d", j, v)
		}
	}
}

func TestBiLSTMConcatenation(t *testing.T) {
	fwd := mkCell(t, 6, 8, 5)
	bwd := mkCell(t, 7, 8, 5)
	rng := rand.New(rand.NewSource(8))
	xs := make([][]int32, 9)
	for t2 := range xs {
		xs[t2] = make([]int32, 8)
		for i := range xs[t2] {
			xs[t2][i] = int32(rng.Intn(256) - 128)
		}
	}
	out, err := BiLSTMRun(fwd, bwd, xs, fixed.W16)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 9 || len(out[0]) != 10 {
		t.Fatalf("bi-lstm output %dx%d, want 9x10", len(out), len(out[0]))
	}
	// The forward half of timestep 0 equals a fresh forward run's first
	// output; the backward half equals the reverse run's last state.
	fh, _ := mkCellClone(fwd).Run(xs, fixed.W16)
	for i := 0; i < 5; i++ {
		if out[0][i] != fh[0][i] {
			t.Fatalf("forward half mismatch at %d", i)
		}
	}
}

// mkCellClone deep-copies a cell (fresh state semantics are in Run already;
// weights are shared safely since Run never mutates them, but be explicit).
func mkCellClone(c *LSTMCell) *LSTMCell {
	n := NewLSTMCell(c.Input, c.Hidden, c.WFrac, c.AFrac)
	copy(n.Wx.Data, c.Wx.Data)
	copy(n.Wh.Data, c.Wh.Data)
	return n
}

func TestLSTMValidate(t *testing.T) {
	c := NewLSTMCell(6, 4, 12, 8) // Input != Hidden so the shapes differ
	c.Wx = c.Wh                   // wrong shape for Wx
	if c.Validate() == nil {
		t.Error("Validate accepted mismatched Wx")
	}
}
