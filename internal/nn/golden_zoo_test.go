package nn_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/tensor"
)

// zooGolden pins every legacy zoo model bit-identical across refactors of
// the build path: one SHA-256 per (model, width) over the fully-resolved
// layer geometry, the pruned weight codes, and the synthesized activation
// tensors. The hashes were captured from the pre-registry zooEntry switch;
// the registry path must reproduce them exactly (weights AND acts), which
// in turn pins every figure output — each experiment is a deterministic
// function of exactly these tensors.
//
// Regenerate (after an intentional distribution change only) with:
//
//	TCL_ZOO_GOLDEN_PRINT=1 go test ./internal/nn -run TestZooGolden -v
var zooGolden = map[string]string{
	"AlexNet-ES/w16":   "1e4efb0879886395036ffb800efea249c25091cb373f705107c7007ce96889fb",
	"AlexNet-SS/w16":   "f1d08fa1ea551890b304a27addb352702a54f83d04d82fb8075c3ce733f4adeb",
	"GoogLeNet-ES/w16": "74b5976bda77ca0a44904ad6df2bc2f392da57b10d1154f957e8704660fc2324",
	"GoogLeNet-SS/w16": "30765b461fe987d62fca89b42f66bf3031bdb67a4f3825fa6e60f28c694ee522",
	"ResNet50-SS/w16":  "b013fc7cd119ad84fd42fd7ef6d87ceb14751535c81331a7f897980f79db6d17",
	"MobileNet/w16":    "030e962617cab18e2e4ac40ad5bdf79b1c07071519f8b9e60c681220f9e8250c",
	"Bi-LSTM/w16":      "04f890359ba673f4a200bedaa952f6e93a34f0023c1f2427148c2638f03c5adb",
	"AlexNet-ES/w8":    "91909195f3f2710f4e43fbf4efbc2763b43031c8f60f9584f8fa585b6caa59e5",
	"AlexNet-SS/w8":    "f44ffa94bca5ce26978fd7a0bcf7157caa5445fd7a63569e20a9095b42f0c49e",
	"GoogLeNet-ES/w8":  "289e53ae0dd524f6d100bc1b68c97f74fddf06dd2a6170cf363054ac38c114c9",
	"GoogLeNet-SS/w8":  "3771f2e7e5a0cbda3489b2843f1d088d3031c2d0405b55e40541a4d294fa309d",
	"ResNet50-SS/w8":   "9b7717f848ec2e491060e8ae3075d4004e02ac31efae3b1f1a1b72ed9bbf267b",
	"MobileNet/w8":     "f141bffae5e6aa4444dedf7ac6816e898c6c0e8f6d2046d539beb128e6f8ad59",
	"Bi-LSTM/w8":       "179d68d5e17db28936662f331494d86b3524b77e80a5dbd4ec87f261589954a1",
}

func hashTensor(h interface{ Write(p []byte) (int, error) }, t *tensor.T) {
	var buf [4]byte
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(buf[:], uint32(d))
		h.Write(buf[:])
	}
	for _, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
}

// zooModelHash digests everything a figure runner consumes from a built
// workload: per-layer geometry, weight codes, and the activation tensors.
func zooModelHash(m *nn.Model, actSeed int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s w=%d layers=%d\n", m.Name, m.Width, len(m.Layers))
	for _, l := range m.Layers {
		fmt.Fprintf(h, "%s kind=%d K=%d C=%d R=%d S=%d st=%d pad=%d g=%d in=%dx%d ts=%d wf=%d af=%d\n",
			l.Name, l.Kind, l.K, l.C, l.R, l.S, l.Stride, l.Pad, l.Groups,
			l.InH, l.InW, l.Timesteps, l.WFrac, l.AFrac)
		if l.Weights != nil {
			hashTensor(h, l.Weights)
		}
	}
	for _, t := range m.GenerateActs(actSeed) {
		hashTensor(h, t)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestZooGolden(t *testing.T) {
	printMode := os.Getenv("TCL_ZOO_GOLDEN_PRINT") == "1"
	for _, width := range []fixed.Width{fixed.W16, fixed.W8} {
		cfg := nn.DefaultZoo()
		cfg.Width = width
		for _, name := range nn.ModelNames {
			m, err := nn.BuildModel(name, cfg)
			if err != nil {
				t.Fatalf("BuildModel(%s, w%d): %v", name, width, err)
			}
			key := fmt.Sprintf("%s/w%d", name, width)
			got := zooModelHash(m, 7)
			if printMode {
				fmt.Printf("\t%q: %q,\n", key, got)
				continue
			}
			want, ok := zooGolden[key]
			if !ok {
				t.Errorf("%s: no golden hash recorded", key)
				continue
			}
			if got != want {
				t.Errorf("%s: model+acts hash %s, golden %s — the registry path no longer reproduces the legacy zoo bit-identically", key, got, want)
			}
		}
	}
}
