package nn

import (
	"math/rand"
	"testing"

	"bittactical/internal/fixed"
	"bittactical/internal/tensor"
)

func TestLayerOutDims(t *testing.T) {
	l := &Layer{Name: "c", Kind: Conv, K: 8, C: 4, R: 3, S: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	if h, w := l.OutDims(); h != 8 || w != 8 {
		t.Errorf("same-pad conv dims = %dx%d, want 8x8", h, w)
	}
	l2 := &Layer{Name: "p", Kind: MaxPool, C: 4, R: 3, S: 3, Stride: 2, InH: 13, InW: 13}
	if h, w := l2.OutDims(); h != 6 || w != 6 {
		t.Errorf("pool dims = %dx%d, want 6x6", h, w)
	}
}

func TestLayerCounts(t *testing.T) {
	l := &Layer{Name: "c", Kind: Conv, K: 8, C: 4, R: 3, S: 3, Stride: 1, Pad: 0, InH: 6, InW: 6}
	if l.Reduction() != 36 {
		t.Errorf("Reduction = %d, want 36", l.Reduction())
	}
	if l.Windows() != 16 {
		t.Errorf("Windows = %d, want 16", l.Windows())
	}
	if l.MACs() != 8*36*16 {
		t.Errorf("MACs = %d", l.MACs())
	}
	f := &Layer{Name: "f", Kind: FC, K: 10, C: 20, R: 1, S: 1, Timesteps: 5}
	if f.MACs() != 10*20*5 {
		t.Errorf("FC MACs = %d", f.MACs())
	}
	p := &Layer{Name: "p", Kind: MaxPool, C: 4, R: 2, S: 2, Stride: 2, InH: 4, InW: 4}
	if p.MACs() != 0 || p.HasCompute() {
		t.Error("pool layers have no MACs")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Conv: "conv", Depthwise: "dwconv", FC: "fc", MaxPool: "maxpool", AvgPool: "avgpool"} {
		if k.String() != want {
			t.Errorf("Kind %d String = %q, want %q", int(k), k.String(), want)
		}
	}
}

// buildTinyNet makes a small conv->pool->fc network with random weights.
func buildTinyNet(t *testing.T, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := NewNetwork("tiny", fixed.W16, 3, 8, 8)
	c1 := n.Add(&Layer{Name: "conv1", Kind: Conv, K: 6, R: 3, S: 3, Stride: 1, Pad: 1, WFrac: 10})
	c1.Weights = tensor.New(6, 3, 3, 3)
	c1.Weights.FillGaussian(rng, 200, 2000)
	n.Add(&Layer{Name: "pool1", Kind: MaxPool, R: 2, S: 2, Stride: 2})
	c2 := n.Add(&Layer{Name: "conv2", Kind: Conv, K: 4, R: 3, S: 3, Stride: 1, Pad: 0, WFrac: 10})
	c2.Weights = tensor.New(4, 6, 3, 3)
	c2.Weights.FillGaussian(rng, 200, 2000)
	f := n.Add(&Layer{Name: "fc", Kind: FC, K: 5, WFrac: 10})
	f.Weights = tensor.New(5, f.C, 1, 1)
	f.Weights.FillGaussian(rng, 200, 2000)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkShapesChain(t *testing.T) {
	n := buildTinyNet(t, 1)
	// conv1: 8x8 (pad 1) -> pool: 4x4 -> conv2: 2x2 -> fc C = 4*2*2.
	fc := n.Layers[3]
	if fc.C != 16 {
		t.Errorf("fc input = %d, want 16", fc.C)
	}
	if got := n.TotalMACs(); got != int64(6*27*64+4*54*4+5*16) {
		t.Errorf("TotalMACs = %d", got)
	}
}

func TestForwardRunsAndQuantizes(t *testing.T) {
	n := buildTinyNet(t, 2)
	in := tensor.New(1, 3, 8, 8)
	rng := rand.New(rand.NewSource(3))
	in.FillRandom(rng, 5000)
	acts, err := n.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 4 {
		t.Fatalf("got %d act tensors", len(acts))
	}
	// Post-ReLU layer inputs are non-negative and within width.
	for i := 1; i < len(acts); i++ {
		for _, v := range acts[i].Data {
			if v < 0 || v > 32767 {
				t.Fatalf("layer %d input %d out of post-ReLU range", i, v)
			}
		}
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	n := buildTinyNet(t, 4)
	if _, err := n.Forward(tensor.New(1, 3, 4, 4)); err == nil {
		t.Error("Forward accepted wrong input shape")
	}
}

func TestLowerConvGeometry(t *testing.T) {
	l := &Layer{Name: "c", Kind: Conv, K: 4, C: 20, R: 3, S: 3, Stride: 1, Pad: 1, InH: 5, InW: 5}
	l.Weights = tensor.New(4, 20, 3, 3)
	in := tensor.New(1, 20, 5, 5)
	lw, err := Lower(l, in, 16)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(20/16) = 2 channel groups × 9 kernel positions.
	if lw.Steps != 18 {
		t.Errorf("Steps = %d, want 18", lw.Steps)
	}
	if lw.WindowCount != 25 {
		t.Errorf("Windows = %d, want 25", lw.WindowCount)
	}
	// Lane 4 of the second channel group is channel 20 — padding.
	if !lw.IsPad(1, 4) {
		t.Error("channel 20 position should be padding")
	}
	if lw.IsPad(0, 4) {
		t.Error("channel 4 should not be padding")
	}
}

func TestLowerWeightActConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := &Layer{Name: "c", Kind: Conv, K: 3, C: 18, R: 3, S: 3, Stride: 2, Pad: 1, InH: 7, InW: 7}
	l.Weights = tensor.New(3, 18, 3, 3)
	l.Weights.FillGaussian(rng, 300, 3000)
	in := tensor.New(1, 18, 7, 7)
	in.FillRandom(rng, 1000)
	lw, err := Lower(l, in, 16)
	if err != nil {
		t.Fatal(err)
	}
	// ReferenceOutput must equal the direct convolution at every window.
	oh, ow := l.OutDims()
	for f := 0; f < 3; f++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var want int64
				for c := 0; c < 18; c++ {
					for r := 0; r < 3; r++ {
						for s := 0; s < 3; s++ {
							want += int64(l.Weights.At(f, c, r, s)) *
								int64(in.AtPadded(0, c, oy*2+r-1, ox*2+s-1))
						}
					}
				}
				got := lw.ReferenceOutput(f, oy*ow+ox)
				if got != want {
					t.Fatalf("filter %d window (%d,%d): lowered %d != direct %d", f, oy, ox, got, want)
				}
			}
		}
	}
}

func TestLowerFCTimesteps(t *testing.T) {
	l := &Layer{Name: "f", Kind: FC, K: 4, C: 10, R: 1, S: 1, Timesteps: 6}
	l.Weights = tensor.New(4, 10, 1, 1)
	in := tensor.New(1, 10, 1, 6)
	for i := range in.Data {
		in.Data[i] = int32(i)
	}
	lw, err := Lower(l, in, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lw.WindowCount != 6 {
		t.Fatalf("WindowCount = %d, want 6", lw.WindowCount)
	}
	// Channel c at timestep w is stored at (0, c, 0, w).
	if got := lw.Act(0, 3, 0, 2); got != in.At(0, 2, 0, 3) {
		t.Errorf("FC act(win=3, lane=2) = %d, want %d", got, in.At(0, 2, 0, 3))
	}
}

func TestLowerDepthwise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := &Layer{Name: "dw", Kind: Depthwise, K: 8, C: 8, R: 3, S: 3, Stride: 1, Pad: 1, InH: 4, InW: 4}
	l.Weights = tensor.New(8, 1, 3, 3)
	l.Weights.FillGaussian(rng, 300, 3000)
	in := tensor.New(1, 8, 4, 4)
	in.FillRandom(rng, 500)
	lw, err := Lower(l, in, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lw.Steps != 1 {
		t.Errorf("Steps = %d, want 1 (9 positions in 16 lanes)", lw.Steps)
	}
	// Lanes 9..15 are padding.
	if !lw.IsPad(0, 9) || lw.IsPad(0, 8) {
		t.Error("depthwise padding misplaced")
	}
	for f := 0; f < 8; f++ {
		for win := 0; win < 16; win++ {
			var want int64
			oy, ox := win/4, win%4
			for r := 0; r < 3; r++ {
				for s := 0; s < 3; s++ {
					want += int64(l.Weights.At(f, 0, r, s)) *
						int64(in.AtPadded(0, f, oy+r-1, ox+s-1))
				}
			}
			if got := lw.ReferenceOutput(f, win); got != want {
				t.Fatalf("dw filter %d win %d: %d != %d", f, win, got, want)
			}
		}
	}
}

func TestLowerRejects(t *testing.T) {
	l := &Layer{Name: "p", Kind: MaxPool, C: 4, R: 2, S: 2, Stride: 2, InH: 4, InW: 4}
	if _, err := Lower(l, tensor.New(1, 4, 4, 4), 16); err == nil {
		t.Error("Lower accepted a pool layer")
	}
	c := &Layer{Name: "c", Kind: Conv, K: 1, C: 1, R: 1, S: 1, Stride: 1, InH: 1, InW: 1}
	c.Weights = tensor.New(1, 1, 1, 1)
	if _, err := Lower(c, tensor.New(1, 1, 1, 1), 0); err == nil {
		t.Error("Lower accepted zero lanes")
	}
}

func TestFilterRowMatchesWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := &Layer{Name: "c", Kind: Conv, K: 2, C: 5, R: 2, S: 2, Stride: 1, Pad: 0, InH: 3, InW: 3}
	l.Weights = tensor.New(2, 5, 2, 2)
	l.Weights.FillGaussian(rng, 300, 3000)
	lw, _ := Lower(l, tensor.New(1, 5, 3, 3), 4)
	row := lw.FilterRow(1)
	if len(row) != lw.Steps*4 {
		t.Fatalf("row len = %d", len(row))
	}
	for st := 0; st < lw.Steps; st++ {
		for ln := 0; ln < 4; ln++ {
			if row[st*4+ln] != lw.Weight(1, st, ln) {
				t.Fatalf("FilterRow disagrees with Weight at (%d,%d)", st, ln)
			}
		}
	}
}

func TestZooModels(t *testing.T) {
	cfg := DefaultZoo()
	ms, err := BuildAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 7 {
		t.Fatalf("zoo has %d models, want 7", len(ms))
	}
	for _, m := range ms {
		if m.TotalMACs() < 1e6 {
			t.Errorf("%s suspiciously small: %d MACs", m.Name, m.TotalMACs())
		}
		for _, l := range m.Layers {
			if err := l.Validate(); err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		}
		got := m.WeightSparsity()
		if diff := got - m.TargetWeightSparsity; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: weight sparsity %.3f, target %.2f", m.Name, got, m.TargetWeightSparsity)
		}
	}
}

func TestZooDeterministic(t *testing.T) {
	cfg := DefaultZoo()
	a, err := BuildModel("AlexNet-SS", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildModel("AlexNet-SS", cfg)
	for i := range a.Layers {
		if !tensor.Equal(a.Layers[i].Weights, b.Layers[i].Weights) {
			t.Fatalf("layer %d weights differ across builds with same seed", i)
		}
	}
}

func TestZooUnknownModel(t *testing.T) {
	if _, err := BuildModel("VGG-19", DefaultZoo()); err == nil {
		t.Error("BuildModel accepted unknown name")
	}
}

func TestZoo8Bit(t *testing.T) {
	cfg := DefaultZoo()
	cfg.Width = fixed.W8
	m, err := BuildModel("AlexNet-ES", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != fixed.W8 {
		t.Fatal("width not 8b")
	}
	for _, l := range m.Layers {
		for _, v := range l.Weights.Data {
			if v > 127 || v < -127 {
				t.Fatalf("8b weight %d out of range", v)
			}
		}
	}
	acts := m.GenerateActs(9)
	for _, a := range acts {
		for _, v := range a.Data {
			if v > 127 || v < -127 {
				t.Fatalf("8b activation %d out of range", v)
			}
		}
	}
}

func TestGenerateActsShapes(t *testing.T) {
	m, err := BuildModel("Bi-LSTM", DefaultZoo())
	if err != nil {
		t.Fatal(err)
	}
	acts := m.GenerateActs(1)
	for i, l := range m.Layers {
		a := acts[i]
		if l.Kind == FC {
			if a.Shape != (tensor.Shape{1, l.C, 1, l.Windows()}) {
				t.Errorf("%s act shape %v", l.Name, a.Shape)
			}
		} else if a.Shape != (tensor.Shape{1, l.C, l.InH, l.InW}) {
			t.Errorf("%s act shape %v", l.Name, a.Shape)
		}
	}
	// Deterministic in seed.
	acts2 := m.GenerateActs(1)
	if !tensor.Equal(acts[0], acts2[0]) {
		t.Error("GenerateActs not deterministic")
	}
}

func TestModelLowered(t *testing.T) {
	m, err := BuildModel("MobileNet", DefaultZoo())
	if err != nil {
		t.Fatal(err)
	}
	acts := m.GenerateActs(2)
	lws, err := m.Lowered(16, acts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lws) != len(m.Layers) {
		t.Fatalf("lowered %d of %d layers", len(lws), len(m.Layers))
	}
	if _, err := m.Lowered(16, acts[:1]); err == nil {
		t.Error("Lowered accepted mismatched act count")
	}
}

func TestAssignSparsityAggregate(t *testing.T) {
	m, _ := BuildModel("GoogLeNet-SS", DefaultZoo())
	fracs := assignSparsity(m.Layers, 0.77)
	var agg, tot float64
	for i, l := range m.Layers {
		agg += float64(l.MACs()) * fracs[i]
		tot += float64(l.MACs())
	}
	if got := agg / tot; got < 0.76 || got > 0.78 {
		t.Errorf("aggregate assigned sparsity %.3f, want 0.77", got)
	}
	// First conv prunes less than mid-network convs.
	if fracs[0] >= fracs[5] {
		t.Errorf("conv1 frac %.2f should be below mid-layer frac %.2f", fracs[0], fracs[5])
	}
}

func TestAssignSparsityZeroTarget(t *testing.T) {
	m, _ := BuildModel("AlexNet-ES", DefaultZoo())
	for _, f := range assignSparsity(m.Layers, 0) {
		if f != 0 {
			t.Fatal("zero target must assign zero fractions")
		}
	}
}

func TestGroupedConvLowering(t *testing.T) {
	// A 2-group conv: filters in the second group must read the second half
	// of the channels; ReferenceOutput must match a direct grouped conv.
	rng := rand.New(rand.NewSource(31))
	l := &Layer{Name: "g", Kind: Conv, K: 8, C: 32, R: 3, S: 3, Stride: 1, Pad: 1,
		InH: 5, InW: 5, Groups: 2}
	l.Weights = tensor.New(8, 16, 3, 3)
	l.Weights.FillGaussian(rng, 300, 3000)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Reduction() != 16*9 {
		t.Errorf("Reduction = %d, want 144", l.Reduction())
	}
	if l.MACs() != 8*144*25 {
		t.Errorf("MACs = %d", l.MACs())
	}
	in := tensor.New(1, 32, 5, 5)
	in.FillRandom(rng, 500)
	lw, err := Lower(l, in, 16)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 8; f++ {
		off := (f / 4) * 16
		for win := 0; win < 25; win += 6 {
			oy, ox := win/5, win%5
			var want int64
			for c := 0; c < 16; c++ {
				for r := 0; r < 3; r++ {
					for s := 0; s < 3; s++ {
						want += int64(l.Weights.At(f, c, r, s)) *
							int64(in.AtPadded(0, off+c, oy+r-1, ox+s-1))
					}
				}
			}
			if got := lw.ReferenceOutput(f, win); got != want {
				t.Fatalf("filter %d window %d: %d != %d", f, win, got, want)
			}
		}
	}
}

func TestGroupedConvForward(t *testing.T) {
	// The chained forward pass agrees with the lowered reference on the
	// accumulator level: second-group filters ignore first-group channels.
	rng := rand.New(rand.NewSource(32))
	l := &Layer{Name: "g", Kind: Conv, K: 4, C: 8, R: 1, S: 1, Stride: 1, Pad: 0,
		InH: 2, InW: 2, Groups: 2, WFrac: 8}
	l.Weights = tensor.New(4, 4, 1, 1)
	l.Weights.FillGaussian(rng, 100, 1000)
	in := tensor.New(1, 8, 2, 2)
	in.FillRandom(rng, 50)
	out, _ := forwardLayer(l, in, 8, fixed.W16)
	// Zero the unused half of the input for filter 0's group: the output of
	// group-0 filters must not change.
	in2 := in.Clone()
	for c := 4; c < 8; c++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				in2.Set(0, c, y, x, 0)
			}
		}
	}
	out2, _ := forwardLayer(l, in2, 8, fixed.W16)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			for k := 0; k < 2; k++ { // group-0 filters
				if out.At(0, k, y, x) != out2.At(0, k, y, x) {
					t.Fatalf("group-0 filter %d depends on group-1 channels", k)
				}
			}
		}
	}
}

func TestAlexNetGroupedConvs(t *testing.T) {
	m, err := BuildModel("AlexNet-ES", DefaultZoo())
	if err != nil {
		t.Fatal(err)
	}
	grouped := 0
	for _, l := range m.Layers {
		if l.Groups > 1 {
			grouped++
			if err := l.Validate(); err != nil {
				t.Errorf("%s: %v", l.Name, err)
			}
		}
	}
	if grouped != 3 {
		t.Errorf("AlexNet has %d grouped convs, want 3 (conv2/4/5)", grouped)
	}
}

func TestModelMisc(t *testing.T) {
	m, _ := BuildModel("MobileNet", DefaultZoo())
	names := m.SortedLayerNames()
	if len(names) != len(m.Layers) {
		t.Error("SortedLayerNames wrong length")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
	q := m.Quantize8()
	if q.Name != "MobileNet-8b" || q.Width != fixed.W8 {
		t.Errorf("Quantize8 name/width: %s %v", q.Name, q.Width)
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestScaleHelpers(t *testing.T) {
	cfg := DefaultZoo()
	if got := scaleC(8, cfg); got != 32 {
		t.Errorf("scaleC floor = %d, want 32", got)
	}
	if got := scaleC(2048, cfg); got != 512 {
		t.Errorf("scaleC(2048) = %d", got)
	}
	if got := scaleS(10, 31, cfg); got != 10 {
		t.Errorf("scaleS must not exceed native: %d", got)
	}
	if got := scaleS(200, 31, cfg); got != 100 {
		t.Errorf("scaleS(200) = %d", got)
	}
}

func TestDenseColumnsAccessor(t *testing.T) {
	lw := mustLower(t)
	if lw.DenseColumns() != lw.Steps {
		t.Error("DenseColumns != Steps")
	}
	if lw.Input() == nil || lw.Layer() == nil {
		t.Error("accessors nil")
	}
}

func mustLower(t *testing.T) *Lowered {
	t.Helper()
	l := &Layer{Name: "c", Kind: Conv, K: 1, C: 16, R: 1, S: 1, Stride: 1, InH: 2, InW: 2}
	l.Weights = tensor.New(1, 16, 1, 1)
	lw, err := Lower(l, tensor.New(1, 16, 2, 2), 16)
	if err != nil {
		t.Fatal(err)
	}
	return lw
}
