package nn

import (
	"fmt"

	"bittactical/internal/fixed"
	"bittactical/internal/tensor"
)

// Network is an ordered pipeline of layers with resolved shapes.
type Network struct {
	Name  string
	Width fixed.Width
	// InC, InH, InW describe the network input.
	InC, InH, InW int
	Layers        []*Layer
}

// NewNetwork creates an empty network with the given input shape.
func NewNetwork(name string, w fixed.Width, inC, inH, inW int) *Network {
	return &Network{Name: name, Width: w, InC: inC, InH: inH, InW: inW}
}

// Add appends a layer, resolving its input dimensions from the pipeline so
// far, and returns the layer for further configuration. It panics on
// inconsistent shapes — zoo construction bugs, not runtime conditions.
func (n *Network) Add(l *Layer) *Layer {
	c, h, w := n.outShape()
	switch l.Kind {
	case FC:
		// FC consumes the flattened previous output unless C already set to
		// a timestep feature size by the caller.
		if l.C == 0 {
			l.C = c * h * w
		}
		l.InH, l.InW = 1, 1
	default:
		if l.C == 0 {
			l.C = c
		} else if l.C != c && len(n.Layers) > 0 {
			panic(fmt.Sprintf("nn: %s: channel mismatch: layer wants %d, pipeline provides %d", l.Name, l.C, c))
		}
		l.InH, l.InW = h, w
	}
	if l.Kind == Depthwise {
		l.K = l.C
	}
	n.Layers = append(n.Layers, l)
	return l
}

// outShape returns the (C, H, W) produced by the last layer, or the network
// input if no layers exist yet.
func (n *Network) outShape() (c, h, w int) {
	if len(n.Layers) == 0 {
		return n.InC, n.InH, n.InW
	}
	last := n.Layers[len(n.Layers)-1]
	if last.Kind == FC {
		return last.K, 1, 1
	}
	h, w = last.OutDims()
	return last.OutChannels(), h, w
}

// Validate checks every layer.
func (n *Network) Validate() error {
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalMACs sums dense MACs over all compute layers.
func (n *Network) TotalMACs() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.MACs()
	}
	return total
}

// ComputeLayers returns the layers that perform MACs.
func (n *Network) ComputeLayers() []*Layer {
	var out []*Layer
	for _, l := range n.Layers {
		if l.HasCompute() {
			out = append(out, l)
		}
	}
	return out
}

// WeightSparsity returns the MAC-weighted fraction of zero weights across
// compute layers (the paper's headline "45%–87% sparse" metric).
func (n *Network) WeightSparsity() float64 {
	var zero, total float64
	for _, l := range n.Layers {
		if !l.HasCompute() {
			continue
		}
		reuse := float64(l.Windows())
		e := float64(l.Weights.Shape.Elems())
		total += e * reuse
		zero += e * reuse * l.Weights.Sparsity()
	}
	if total == 0 {
		return 0
	}
	return zero / total
}

// Forward runs the fixed-point reference forward pass on input (shape
// (1, InC, InH, InW)) and returns the per-layer *input* activation tensors:
// out[i] is what layer i consumes. Each compute layer's output is ReLU'd
// and requantized to the network width with a fresh fractional scale
// (range-oblivious per-layer linear quantization, Section 6.5), recorded in
// the consumer layer's AFrac.
//
// FC layers with Timesteps > 1 are fed the same vector at every timestep for
// reference purposes; timing simulations substitute per-timestep streams.
func (n *Network) Forward(input *tensor.T) ([]*tensor.T, error) {
	if input.Shape != (tensor.Shape{1, n.InC, n.InH, n.InW}) {
		return nil, fmt.Errorf("nn: %s: input shape %v, want 1x%dx%dx%d",
			n.Name, input.Shape, n.InC, n.InH, n.InW)
	}
	ins := make([]*tensor.T, len(n.Layers))
	cur := input
	curFrac := 8 // input activations arrive at a mid-range scale
	for i, l := range n.Layers {
		l.AFrac = curFrac
		// FC layers flatten whatever spatial shape precedes them.
		if l.Kind == FC && cur.Shape.Elems() != l.C {
			return nil, fmt.Errorf("nn: %s: fc input has %d elems, want %d", l.Name, cur.Shape.Elems(), l.C)
		}
		ins[i] = cur
		out, outFrac := forwardLayer(l, cur, curFrac, n.Width)
		cur, curFrac = out, outFrac
	}
	return ins, nil
}

// forwardLayer computes one layer on codes at inFrac, returning output codes
// and their fractional scale.
func forwardLayer(l *Layer, in *tensor.T, inFrac int, w fixed.Width) (*tensor.T, int) {
	switch l.Kind {
	case Conv:
		return convForward(l, in, inFrac, w, false)
	case Depthwise:
		return convForward(l, in, inFrac, w, true)
	case FC:
		return fcForward(l, in, inFrac, w)
	case MaxPool:
		return poolForward(l, in, true), inFrac
	case AvgPool:
		return poolForward(l, in, false), inFrac
	default:
		panic("nn: unknown layer kind")
	}
}

func convForward(l *Layer, in *tensor.T, inFrac int, w fixed.Width, depthwise bool) (*tensor.T, int) {
	oh, ow := l.OutDims()
	acc := make([]int64, l.OutChannels()*oh*ow)
	idx := 0
	for k := 0; k < l.OutChannels(); k++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum int64
				for r := 0; r < l.R; r++ {
					iy := oy*l.Stride + r - l.Pad
					if iy < 0 || iy >= l.InH {
						continue
					}
					for s := 0; s < l.S; s++ {
						ix := ox*l.Stride + s - l.Pad
						if ix < 0 || ix >= l.InW {
							continue
						}
						if depthwise {
							sum += int64(l.Weights.At(k, 0, r, s)) * int64(in.At(0, k, iy, ix))
						} else {
							gc := l.GroupChannels()
							off := 0
							if l.Groups > 1 {
								off = (k / (l.K / l.Groups)) * gc
							}
							for c := 0; c < gc; c++ {
								sum += int64(l.Weights.At(k, c, r, s)) * int64(in.At(0, off+c, iy, ix))
							}
						}
					}
				}
				acc[idx] = sum
				idx++
			}
		}
	}
	return requantizeReLU(acc, l.OutChannels(), oh, ow, inFrac+l.WFrac, w)
}

func fcForward(l *Layer, in *tensor.T, inFrac int, w fixed.Width) (*tensor.T, int) {
	acc := make([]int64, l.K)
	for k := 0; k < l.K; k++ {
		var sum int64
		for c := 0; c < l.C; c++ {
			sum += int64(l.Weights.At(k, c, 0, 0)) * int64(in.Data[c])
		}
		acc[k] = sum
	}
	return requantizeReLU(acc, l.K, 1, 1, inFrac+l.WFrac, w)
}

// requantizeReLU applies ReLU to the wide accumulators, picks the largest
// output scale that avoids saturation, and narrows to width w.
func requantizeReLU(acc []int64, c, h, wd int, accFrac int, w fixed.Width) (*tensor.T, int) {
	var maxAbs int64
	for i, v := range acc {
		if v < 0 {
			acc[i] = 0 // ReLU
			v = 0
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	// Choose outFrac so maxAbs >> (accFrac-outFrac) fits in width w.
	outFrac := accFrac
	for maxAbs>>uint(accFrac-outFrac) > int64(w.MaxInt()) {
		outFrac--
	}
	out := tensor.New(1, c, h, wd)
	shift := accFrac - outFrac
	for i, v := range acc {
		out.Data[i] = fixed.RequantizeProduct(v, shift, w)
	}
	return out, outFrac
}

func poolForward(l *Layer, in *tensor.T, isMax bool) *tensor.T {
	oh, ow := l.OutDims()
	out := tensor.New(1, l.C, oh, ow)
	for c := 0; c < l.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var best int32
				var sum, count int64
				first := true
				for r := 0; r < l.R; r++ {
					iy := oy*l.Stride + r - l.Pad
					if iy < 0 || iy >= l.InH {
						continue
					}
					for s := 0; s < l.S; s++ {
						ix := ox*l.Stride + s - l.Pad
						if ix < 0 || ix >= l.InW {
							continue
						}
						v := in.At(0, c, iy, ix)
						if first || v > best {
							best = v
						}
						first = false
						sum += int64(v)
						count++
					}
				}
				if isMax {
					out.Set(0, c, oy, ox, best)
				} else if count > 0 {
					out.Set(0, c, oy, ox, int32(sum/count))
				}
			}
		}
	}
	return out
}
