package nn

import (
	"fmt"
	"math/rand"

	"bittactical/internal/fixed"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// Model is the evaluation-facing form of a network: an explicit list of
// compute layers with fully-resolved geometry (branching topologies such as
// GoogLeNet's inception modules flatten to their layer lists — accelerator
// timing and energy depend only on per-layer geometry and values), plus the
// calibrated activation distribution that stands in for real traces.
//
// Pooling layers are omitted: the paper states TCL matches the bit-parallel
// baseline on them, so they are timing-neutral in every relative result.
type Model struct {
	Name   string
	Width  fixed.Width
	Layers []*Layer
	// Act is the calibrated per-network input-activation distribution
	// (DESIGN.md §2 substitution for real IMAGENET/speech activations).
	// Individual layers may override it via Layer.Act.
	Act sparsity.ActivationModel
	// TargetWeightSparsity is the aggregate pruning level the zoo aimed for.
	TargetWeightSparsity float64
}

// TotalMACs sums dense MACs over all layers.
func (m *Model) TotalMACs() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.MACs()
	}
	return t
}

// WeightSparsity returns the reuse-weighted zero-weight fraction.
func (m *Model) WeightSparsity() float64 {
	var zero, total float64
	for _, l := range m.Layers {
		reuse := float64(l.Windows())
		e := float64(l.Weights.Shape.Elems())
		total += e * reuse
		zero += e * reuse * l.Weights.Sparsity()
	}
	if total == 0 {
		return 0
	}
	return zero / total
}

// GenerateActs synthesizes each layer's input activation tensor from the
// model's activation distribution. Conv/Depthwise layers receive a
// (1, C, InH, InW) tensor; FC layers a (1, C, 1, Timesteps) tensor so every
// timestep sees distinct values. Deterministic in seed.
//
// The distribution is calibrated at 16 bits; an 8-bit model samples the
// same law and requantizes range-obliviously (Section 6.5): the value range
// maps onto the 8-bit grid, dropping the low 8 bits. Because activations
// carry a bounded number of significant bits (ActModel.SigBits), the
// precision window survives requantization mostly intact — the reason
// Figure 13's speedups shrink by the width ratio but remain considerable —
// while values below the new LSB round to zero.
func (m *Model) GenerateActs(seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	outs := make([]*tensor.T, len(m.Layers))
	for i, l := range m.Layers {
		var t *tensor.T
		switch l.Kind {
		case FC:
			t = tensor.New(1, l.C, 1, l.Windows())
		default:
			t = tensor.New(1, l.C, l.InH, l.InW)
		}
		law := m.Act
		if l.Act != nil {
			law = l.Act
		}
		law.FillTensor(rng, t, fixed.W16)
		if m.Width == fixed.W8 {
			t = sparsity.Requantize8(t)
		}
		outs[i] = t
	}
	return outs
}

// Lowered lowers every layer against the given activation tensors.
func (m *Model) Lowered(lanes int, acts []*tensor.T) ([]*Lowered, error) {
	if len(acts) != len(m.Layers) {
		return nil, fmt.Errorf("nn: %s: %d act tensors for %d layers", m.Name, len(acts), len(m.Layers))
	}
	outs := make([]*Lowered, len(m.Layers))
	for i, l := range m.Layers {
		lw, err := Lower(l, acts[i], lanes)
		if err != nil {
			return nil, err
		}
		outs[i] = lw
	}
	return outs, nil
}

// Quantize8 returns a copy of the model with weights requantized to 8 bits
// by the paper's range-oblivious rule (Section 6.5). Activation width
// switches to 8 bits as well; GenerateActs on the result draws codes whose
// log-magnitude distribution is the 16-bit distribution shifted down 8 bits
// (exactly what requantizing the same real values produces).
func (m *Model) Quantize8() *Model {
	q := &Model{
		Name:                 m.Name + "-8b",
		Width:                fixed.W8,
		Act:                  m.Act,
		TargetWeightSparsity: m.TargetWeightSparsity,
	}
	for _, l := range m.Layers {
		nl := *l
		nl.Weights = sparsity.Requantize8(l.Weights)
		q.Layers = append(q.Layers, &nl)
	}
	return q
}
