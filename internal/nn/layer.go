// Package nn models the neural networks Bit-Tactical accelerates: layer
// types, a fixed-point reference forward pass (the golden model every
// accelerator simulation is checked against), the "lowered" GEMM view that
// maps a layer onto the accelerator's weight lanes and schedule steps, and
// the model zoo with the seven networks of the paper's evaluation.
package nn

import (
	"fmt"

	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

// Kind enumerates the layer types the paper's workloads use.
type Kind int

const (
	// Conv is a standard convolution: K filters over C channels, R×S kernel.
	Conv Kind = iota
	// Depthwise is a depthwise convolution (MobileNet): one R×S kernel per
	// channel, no cross-channel reduction. The paper notes TCL's adder-tree
	// CEs are underutilized here because activations are not reused across
	// filters (Section 5.3).
	Depthwise
	// FC is a fully-connected layer; Windows > 1 models timesteps (LSTM) or
	// batched vectors that reuse the same weights.
	FC
	// MaxPool and AvgPool perform no MACs; the paper states TCL matches the
	// bit-parallel baseline for pooling, so they are timing-neutral.
	MaxPool
	AvgPool
)

func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case Depthwise:
		return "dwconv"
	case FC:
		return "fc"
	case MaxPool:
		return "maxpool"
	case AvgPool:
		return "avgpool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Layer describes one layer of a network. Spatial input dimensions are
// resolved when the layer is added to a Network.
type Layer struct {
	Name string
	Kind Kind

	// K is the number of filters (output channels). For Depthwise, K == C.
	K int
	// C is the number of input channels.
	C int
	// R, S are the kernel height and width (1 for FC).
	R, S int
	// Stride and Pad apply to Conv/Depthwise/pool layers.
	Stride, Pad int
	// Groups splits a Conv into independent channel groups (AlexNet's
	// grouped convolutions); 0 or 1 means a standard convolution. Filters
	// are split evenly: filter k reads channels [g·C/Groups, (g+1)·C/Groups)
	// with g = k / (K/Groups).
	Groups int

	// InH, InW are the input spatial dimensions (1 for FC).
	InH, InW int
	// Timesteps is the number of weight-sharing input vectors for FC layers
	// (e.g. LSTM gate projections applied at every timestep). Zero means 1.
	Timesteps int

	// Weights holds the fixed-point weight codes: shape (K, C, R, S) for
	// Conv/FC, (C, 1, R, S) for Depthwise, nil for pools.
	Weights *tensor.T

	// WFrac and AFrac are the fractional-bit counts of the weight codes and
	// of this layer's *input* activation codes.
	WFrac, AFrac int

	// Act overrides the model-default activation distribution for this
	// layer's *input* tensor (nil = use Model.Act). Attention workloads use
	// it to feed softmax-shaped probability rows into attention×V layers
	// while the rest of the block sees the model's GELU-shaped law.
	Act sparsity.ActivationModel
}

// OutDims returns the output spatial dimensions.
func (l *Layer) OutDims() (h, w int) {
	switch l.Kind {
	case FC:
		return 1, 1
	case Conv, Depthwise, MaxPool, AvgPool:
		h = (l.InH+2*l.Pad-l.R)/l.Stride + 1
		w = (l.InW+2*l.Pad-l.S)/l.Stride + 1
		return h, w
	default:
		panic("nn: unknown layer kind")
	}
}

// OutChannels returns the number of output channels.
func (l *Layer) OutChannels() int {
	switch l.Kind {
	case MaxPool, AvgPool:
		return l.C
	default:
		return l.K
	}
}

// Windows returns the number of output positions that share weights: spatial
// positions for convolutions, timesteps for FC layers.
func (l *Layer) Windows() int {
	switch l.Kind {
	case FC:
		if l.Timesteps > 1 {
			return l.Timesteps
		}
		return 1
	default:
		h, w := l.OutDims()
		return h * w
	}
}

// groups returns the effective group count.
func (l *Layer) groups() int {
	if l.Groups > 1 {
		return l.Groups
	}
	return 1
}

// GroupChannels returns the channels each filter reduces over.
func (l *Layer) GroupChannels() int { return l.C / l.groups() }

// Reduction returns the length of the dot-product each output value needs:
// C/Groups*R*S for Conv, R*S for Depthwise, C for FC, 0 for pools.
func (l *Layer) Reduction() int {
	switch l.Kind {
	case Conv:
		return l.GroupChannels() * l.R * l.S
	case Depthwise:
		return l.R * l.S
	case FC:
		return l.C
	default:
		return 0
	}
}

// MACs returns the number of multiply-accumulate operations in the layer's
// dense (unpruned, value-agnostic) execution.
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case Conv, FC:
		return int64(l.K) * int64(l.Reduction()) * int64(l.Windows())
	case Depthwise:
		return int64(l.C) * int64(l.R*l.S) * int64(l.Windows())
	default:
		return 0
	}
}

// HasCompute reports whether the layer performs MACs (is visible to the
// accelerators' timing models).
func (l *Layer) HasCompute() bool { return l.Kind == Conv || l.Kind == Depthwise || l.Kind == FC }

// WeightAt returns the weight code for filter f, channel c, kernel position
// (r, s). For Depthwise, f selects the channel and c must be 0.
func (l *Layer) WeightAt(f, c, r, s int) int32 {
	return l.Weights.At(f, c, r, s)
}

// Validate checks internal consistency, returning a descriptive error.
func (l *Layer) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("nn: layer has no name")
	}
	switch l.Kind {
	case Conv:
		if l.Groups > 1 && (l.C%l.Groups != 0 || l.K%l.Groups != 0) {
			return fmt.Errorf("nn: %s: groups %d must divide C=%d and K=%d", l.Name, l.Groups, l.C, l.K)
		}
		if l.Weights == nil || l.Weights.Shape != (tensor.Shape{l.K, l.GroupChannels(), l.R, l.S}) {
			return fmt.Errorf("nn: %s: conv weights shape mismatch", l.Name)
		}
	case Depthwise:
		if l.K != l.C {
			return fmt.Errorf("nn: %s: depthwise needs K==C", l.Name)
		}
		if l.Weights == nil || l.Weights.Shape != (tensor.Shape{l.C, 1, l.R, l.S}) {
			return fmt.Errorf("nn: %s: depthwise weights shape mismatch", l.Name)
		}
	case FC:
		if l.Weights == nil || l.Weights.Shape != (tensor.Shape{l.K, l.C, 1, 1}) {
			return fmt.Errorf("nn: %s: fc weights shape mismatch", l.Name)
		}
	case MaxPool, AvgPool:
		if l.Weights != nil {
			return fmt.Errorf("nn: %s: pool layers carry no weights", l.Name)
		}
	}
	if l.Kind != FC {
		if l.Stride <= 0 {
			return fmt.Errorf("nn: %s: stride must be positive", l.Name)
		}
		if h, w := l.OutDims(); h <= 0 || w <= 0 {
			return fmt.Errorf("nn: %s: non-positive output dims", l.Name)
		}
	}
	return nil
}
