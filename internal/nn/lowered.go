package nn

import (
	"fmt"
	"sync"

	"bittactical/internal/tensor"
)

// Lowered is the accelerator-facing view of a compute layer: the layer's
// reduction is laid out over L weight lanes (input channels innermost,
// matching the paper's "16 weight and activation pairs, each from a
// different input channel") and Steps dense-schedule time steps. All
// front-end scheduling and back-end timing operate on this view.
//
// Dense-schedule coordinates: for Conv/FC the reduction element with channel
// c and kernel position (r,s) sits at
//
//	lane = c % L,  step = (r*S + s) * ceil(C/L) + c/L
//
// so a schedule column always draws its L activations from L distinct
// channels at one kernel offset. Positions with c >= C are channel padding:
// permanently ineffectual slots ("Padding" in Figure 9) that the scheduler
// may promote real weights into.
//
// For Depthwise the reduction is the R*S kernel alone:
//
//	lane = (r*S+s) % L,  step = (r*S+s) / L
//
// and the activation fetch depends on the filter (channel) index.
type Lowered struct {
	Name    string
	Kind    Kind
	Lanes   int
	Steps   int
	Filters int
	// WindowCount is the number of weight-sharing output positions.
	WindowCount int

	layer *Layer
	in    *tensor.T
	// chanGroups = ceil(C/L) for conv/fc lowering.
	chanGroups int
	outW       int
	// folded marks shallow-input convolutions (C < Lanes, e.g. the RGB
	// first layer): the whole C×R×S reduction is linearized across lanes so
	// the datapath is not starved to C of its L lanes — the standard
	// first-layer mapping in the DaDianNao accelerator family.
	folded bool

	padOnce sync.Once
	pad     []bool
}

// Lower produces the lowered view of layer l with its input activations.
// lanes is the number of weight lanes per PE (16 in all paper configs).
func Lower(l *Layer, in *tensor.T, lanes int) (*Lowered, error) {
	if !l.HasCompute() {
		return nil, fmt.Errorf("nn: cannot lower non-compute layer %s", l.Name)
	}
	if lanes <= 0 {
		return nil, fmt.Errorf("nn: lanes must be positive")
	}
	lw := &Lowered{
		Name:        l.Name,
		Kind:        l.Kind,
		Lanes:       lanes,
		Filters:     l.OutChannels(),
		WindowCount: l.Windows(),
		layer:       l,
		in:          in,
	}
	switch l.Kind {
	case Conv, FC:
		gc := l.C
		if l.Kind == Conv {
			gc = l.GroupChannels()
		}
		if l.Kind == Conv && gc < lanes {
			lw.folded = true
			lw.Steps = (gc*l.R*l.S + lanes - 1) / lanes
		} else {
			lw.chanGroups = (gc + lanes - 1) / lanes
			lw.Steps = l.R * l.S * lw.chanGroups
		}
	case Depthwise:
		lw.Steps = (l.R*l.S + lanes - 1) / lanes
	}
	if l.Kind != FC {
		_, lw.outW = l.OutDims()
	}
	return lw, nil
}

// Layer returns the underlying layer.
func (lw *Lowered) Layer() *Layer { return lw.layer }

// Input returns the input activation tensor the lowering reads.
func (lw *Lowered) Input() *tensor.T { return lw.in }

// coords resolves (step, lane) to (channel, r, s); ok=false for padding.
func (lw *Lowered) coords(step, lane int) (c, r, s int, ok bool) {
	l := lw.layer
	switch l.Kind {
	case Conv, FC:
		gc := l.C
		if l.Kind == Conv {
			gc = l.GroupChannels()
		}
		if lw.folded {
			// Linearized reduction: ρ walks (r, s) outer, c inner.
			rho := step*lw.Lanes + lane
			if rho >= gc*l.R*l.S {
				return 0, 0, 0, false
			}
			rs := rho / gc
			return rho % gc, rs / l.S, rs % l.S, true
		}
		rs := step / lw.chanGroups
		cg := step % lw.chanGroups
		c = cg*lw.Lanes + lane
		if c >= gc {
			return 0, 0, 0, false
		}
		return c, rs / l.S, rs % l.S, true
	case Depthwise:
		idx := step*lw.Lanes + lane
		if idx >= l.R*l.S {
			return 0, 0, 0, false
		}
		return 0, idx / l.S, idx % l.S, true
	default:
		panic("nn: coords on non-compute layer")
	}
}

// IsPad reports whether (step, lane) is a channel-padding slot in the dense
// schedule (always-zero, no weight or activation behind it).
func (lw *Lowered) IsPad(step, lane int) bool {
	_, _, _, ok := lw.coords(step, lane)
	return !ok
}

// PadMask returns the layer's channel-padding mask in dense-schedule
// layout (step*Lanes+lane), or nil when the layer has no padding. The mask
// is computed once and shared — every config sweeping the layer keys the
// same slots — so callers must treat it as read-only.
func (lw *Lowered) PadMask() []bool {
	lw.padOnce.Do(func() {
		any := false
		pad := make([]bool, lw.Steps*lw.Lanes)
		for st := 0; st < lw.Steps; st++ {
			for ln := 0; ln < lw.Lanes; ln++ {
				if lw.IsPad(st, ln) {
					pad[st*lw.Lanes+ln] = true
					any = true
				}
			}
		}
		if any {
			lw.pad = pad
		}
	})
	return lw.pad
}

// Weight returns the weight code of filter f at dense-schedule position
// (step, lane); padding slots return 0.
func (lw *Lowered) Weight(f, step, lane int) int32 {
	c, r, s, ok := lw.coords(step, lane)
	if !ok {
		return 0
	}
	if lw.Kind == Depthwise {
		return lw.layer.Weights.At(f, 0, r, s)
	}
	return lw.layer.Weights.At(f, c, r, s)
}

// FilterRow materializes filter f's dense schedule as a Steps×Lanes matrix
// (row-major), the input format the software scheduler consumes.
func (lw *Lowered) FilterRow(f int) []int32 {
	out := make([]int32, lw.Steps*lw.Lanes)
	lw.FilterRowInto(f, out)
	return out
}

// FilterRowInto is FilterRow into caller-provided storage of length
// Steps*Lanes, for engines that materialize many rows into a reused
// arena.
func (lw *Lowered) FilterRowInto(f int, out []int32) {
	for st := 0; st < lw.Steps; st++ {
		for ln := 0; ln < lw.Lanes; ln++ {
			out[st*lw.Lanes+ln] = lw.Weight(f, st, ln)
		}
	}
}

// Act returns the activation code paired with dense-schedule position
// (step, lane) for output window win and filter f. The filter index matters
// only for Depthwise layers, whose activation fetch is per-channel.
// Out-of-image positions (spatial zero padding) and padding slots return 0.
func (lw *Lowered) Act(f, win, step, lane int) int32 {
	c, r, s, ok := lw.coords(step, lane)
	if !ok {
		return 0
	}
	l := lw.layer
	switch l.Kind {
	case FC:
		// A (1, C, 1, Timesteps) input carries one vector per timestep;
		// a flattened feature tensor is replayed at every window.
		if lw.WindowCount > 1 && lw.in.Shape == (tensor.Shape{1, l.C, 1, lw.WindowCount}) {
			return lw.in.At(0, c, 0, win)
		}
		return lw.in.Data[c]
	case Conv:
		// Grouped convolutions offset the channel by the filter's group.
		if l.Groups > 1 {
			c += (f / (l.K / l.Groups)) * l.GroupChannels()
		}
		oy, ox := win/lw.outW, win%lw.outW
		return lw.in.AtPadded(0, c, oy*l.Stride+r-l.Pad, ox*l.Stride+s-l.Pad)
	case Depthwise:
		oy, ox := win/lw.outW, win%lw.outW
		return lw.in.AtPadded(0, f, oy*l.Stride+r-l.Pad, ox*l.Stride+s-l.Pad)
	default:
		panic("nn: act on non-compute layer")
	}
}

// ActRowInvariant reports whether Act is independent of the filter index:
// true for FC layers and ungrouped convolutions, where every PE row of a
// tile reads the same activation at a given (window, step, lane). Depthwise
// and grouped convolutions fetch per-channel activations, so their rows
// differ. Invariant layers let the simulator evaluate each activation's
// serial cost once per window and share it across all resident filters.
func (lw *Lowered) ActRowInvariant() bool {
	switch lw.Kind {
	case FC:
		return true
	case Conv:
		return lw.layer.Groups <= 1
	default:
		return false
	}
}

// ActGroups returns the number of distinct activation-fetch behaviors
// along the filter axis: Act(f, ·) is identical for every filter in one
// act group. Row-invariant layers (FC, ungrouped conv) are one group;
// a grouped convolution has one per filter group (the group selects the
// input-channel slice); depthwise has one per filter (the filter IS the
// channel). Together with ActGroupOf/ActGroupRep this is what lets the
// simulator precompute activation cost planes for row-VARIANT layers
// too: one plane per act group instead of one per layer.
func (lw *Lowered) ActGroups() int {
	switch lw.Kind {
	case Conv:
		if g := lw.layer.Groups; g > 1 {
			return g
		}
		return 1
	case Depthwise:
		return lw.Filters
	default:
		return 1
	}
}

// ActGroupOf returns the act group of filter f.
func (lw *Lowered) ActGroupOf(f int) int {
	switch lw.Kind {
	case Conv:
		if g := lw.layer.Groups; g > 1 {
			return f / (lw.layer.K / g)
		}
		return 0
	case Depthwise:
		return f
	default:
		return 0
	}
}

// ActGroupRep returns a representative filter index of act group g:
// Act(ActGroupRep(g), ·) equals Act(f, ·) for every f with
// ActGroupOf(f) == g.
func (lw *Lowered) ActGroupRep(g int) int {
	switch lw.Kind {
	case Conv:
		if gs := lw.layer.Groups; gs > 1 {
			return g * (lw.layer.K / gs)
		}
		return 0
	case Depthwise:
		return g
	default:
		return 0
	}
}

// DenseColumns returns the number of dense schedule columns a value-agnostic
// accelerator (DaDianNao++) issues for this layer per window: Steps.
func (lw *Lowered) DenseColumns() int { return lw.Steps }

// ReferenceOutput computes filter f's dot product at window win directly
// from the lowering — the golden value simulator runs are checked against.
func (lw *Lowered) ReferenceOutput(f, win int) int64 {
	var sum int64
	for st := 0; st < lw.Steps; st++ {
		for ln := 0; ln < lw.Lanes; ln++ {
			w := lw.Weight(f, st, ln)
			if w == 0 {
				continue
			}
			sum += int64(w) * int64(lw.Act(f, win, st, ln))
		}
	}
	return sum
}
