// Package energy prices the simulator's activity counts into the paper's
// energy results (Figure 8c) and reproduces the post-layout area accounting
// of Table 3.
//
// Substitution note (DESIGN.md §2): the paper measures energy over a TSMC
// 65 nm layout with CACTI-modeled SRAMs and Micron's DDR4 power calculator.
// Those flows reduce to (activity count × per-event cost); this package
// supplies 65 nm-calibrated per-event constants and applies them to the
// same activity counts the simulator produces.
package energy

import (
	"bittactical/internal/arch"
	"bittactical/internal/memory"
	"bittactical/internal/sim"
)

// Constants are per-event energies in pJ at 65 nm / 1 GHz. Back-end-specific
// serial-lane and offset-encode energies live on the registered
// backend.Backend's EnergyCoeffs; the fields below price the events every
// back-end shares.
type Constants struct {
	// MultMAC16 is a full 16-bit multiply plus its adder-tree share.
	MultMAC16 float64
	// SerialOpTCLe mirrors the registered TCLe back-end's SerialOpPJ.
	//
	// Deprecated: kept as a calibration reference; Price reads the
	// coefficient from the configuration's back-end.
	SerialOpTCLe float64
	// SerialOpTCLp mirrors the registered TCLp back-end's SerialOpPJ.
	//
	// Deprecated: kept as a calibration reference; Price reads the
	// coefficient from the configuration's back-end.
	SerialOpTCLp float64
	// Mux is one activation-multiplexer switch.
	Mux float64
	// OffsetEncode mirrors the registered TCLe back-end's OffsetEncodePJ.
	//
	// Deprecated: kept as a calibration reference; Price reads the
	// coefficient from the configuration's back-end.
	OffsetEncode float64
	// WSReadPerByte / ASReadPerByte price the banked scratchpads.
	WSReadPerByte float64
	ASReadPerByte float64
	// PsumAccess is one partial-sum register read+write.
	PsumAccess float64
}

// Defaults65nm returns the calibrated constants.
func Defaults65nm() Constants {
	return Constants{
		MultMAC16:     3.1,
		SerialOpTCLe:  0.55,
		SerialOpTCLp:  0.26,
		Mux:           0.03,
		OffsetEncode:  0.35,
		WSReadPerByte: 0.65,
		ASReadPerByte: 1.35,
		PsumAccess:    0.20,
	}
}

// Widths of an 8-bit datapath cost roughly a quarter of 16-bit multipliers
// and half of serial lanes; scaleForWidth adjusts the logic constants.
func (c Constants) scaleForWidth(bits int) Constants {
	if bits >= 16 {
		return c
	}
	s := float64(bits) / 16.0
	c.MultMAC16 *= s * s // multiplier area/energy ~ quadratic in width
	c.SerialOpTCLe *= s
	c.SerialOpTCLp *= s
	c.OffsetEncode *= s
	return c
}

// Breakdown is one run's energy split, in pJ, matching Figure 8c's stacks.
type Breakdown struct {
	LogicPJ   float64
	OnChipPJ  float64
	OffChipPJ float64
}

// TotalPJ sums the stacks.
func (b Breakdown) TotalPJ() float64 { return b.LogicPJ + b.OnChipPJ + b.OffChipPJ }

// MJPerImage converts to the paper's millijoules-per-frame unit.
func (b Breakdown) MJPerImage() float64 { return b.TotalPJ() * 1e-9 }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.LogicPJ += o.LogicPJ
	b.OnChipPJ += o.OnChipPJ
	b.OffChipPJ += o.OffChipPJ
}

// Price converts activity + traffic into an energy breakdown for the
// configuration under the given off-chip technology. The back-end-specific
// serial-lane and offset-encode coefficients come from the configuration's
// registered back-end, width-scaled like the shared constants.
func Price(cfg arch.Config, act sim.Activity, traffic memory.Traffic, tech memory.Tech, k Constants) Breakdown {
	k = k.scaleForWidth(int(cfg.Width))
	var b Breakdown

	// Logic.
	b.LogicPJ += float64(act.ParallelMACs) * k.MultMAC16
	if cfg.Backend != nil {
		ec := cfg.Backend.Energy()
		serialOp, offsetEncode := ec.SerialOpPJ, ec.OffsetEncodePJ
		if bits := int(cfg.Width); bits < 16 {
			s := float64(bits) / 16.0
			serialOp *= s
			offsetEncode *= s
		}
		if serialOp != 0 {
			b.LogicPJ += float64(act.SerialLaneCycles) * serialOp
		}
		if offsetEncode != 0 {
			b.LogicPJ += float64(act.OffsetEncodes) * offsetEncode
		}
	}
	b.LogicPJ += float64(act.MuxSelects) * k.Mux

	// On-chip buffers.
	bytesPerValue := float64(int(cfg.Width)) / 8
	wsColumnBytes := float64(cfg.Lanes) * bytesPerValue
	b.OnChipPJ += float64(act.WSColumnReads) * wsColumnBytes * k.WSReadPerByte
	b.OnChipPJ += float64(act.ActReads) * bytesPerValue * k.ASReadPerByte
	b.OnChipPJ += float64(act.PsumAccesses) * k.PsumAccess

	// Off-chip transfers.
	b.OffChipPJ += float64(traffic.Total()) * tech.PJPerByte
	return b
}

// ---- Table 3: area ----

// Area is the Table 3 breakdown in mm² at 65 nm.
type Area struct {
	ComputeCore    float64
	WeightMemory   float64
	ActSelectUnit  float64
	ActInputBuffer float64
	ActOutputBuf   float64
	ActMemory      float64
	Dispatcher     float64
	OffsetGen      float64
}

// Total sums the components.
func (a Area) Total() float64 {
	return a.ComputeCore + a.WeightMemory + a.ActSelectUnit + a.ActInputBuffer +
		a.ActOutputBuf + a.ActMemory + a.Dispatcher + a.OffsetGen
}

// AreaOf reproduces Table 3's accounting for a configuration. The itemized
// column values for TCLe/TCLp L8<1,6> and DaDianNao++ are calibration
// anchors; lookahead depth scales the ASU/ABR and activation-buffer terms
// (Table 2 sizes the activation buffer at 1KB × (h+1) per tile).
func AreaOf(cfg arch.Config) Area {
	a := Area{
		WeightMemory: 3.57,
		ActOutputBuf: 0.11,
		ActMemory:    54.25,
	}
	lanesTotal := float64(cfg.Tiles * cfg.FiltersPerTile * cfg.WindowsPerTile * cfg.Lanes)
	ac := cfg.Backend.Area()
	a.ComputeCore = lanesTotal * ac.ComputeCorePerLaneMM2
	a.Dispatcher = ac.DispatcherMM2
	a.OffsetGen = ac.OffsetGenMM2
	h := 0
	if cfg.HasFrontEnd() {
		h = cfg.Pattern.H
		if cfg.Pattern.Infinite {
			h = 15 // the impractical X design needs the full window
		}
	}
	// Activation buffer: one bank per lookahead position.
	a.ActInputBuffer = 0.085 * float64(h+1)
	if cfg.HasFrontEnd() {
		// ASU: ABRs + shuffling muxes, scaling with window depth and the
		// per-activation wire width (4-bit oneffsets vs single bit).
		wires := ac.ASUWireBits
		a.ActSelectUnit = 0.0094 * float64(cfg.Tiles) * float64(h+1) * wires
		// Sparse shuffling network: one (h+d+1)-input mux per lane.
		a.ComputeCore += 0.45e-4 * lanesTotal * float64(cfg.Pattern.MuxInputs()) / 8 * wires / 4
	}
	return a
}

// NormalizedArea returns the configuration's total area relative to
// DaDianNao++ (Table 3's bottom rows).
func NormalizedArea(cfg arch.Config) float64 {
	return AreaOf(cfg).Total() / AreaOf(arch.DaDianNaoPP()).Total()
}
