package energy

import (
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/fixed"
	"bittactical/internal/memory"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// The legacy pricers below transliterate the enum switches Price and AreaOf
// dispatched on before the backend registry, with the kind spelled as the
// back-end's registry name. The differential tests require exact float
// equality — the energy and area figures must be bit-identical across the
// refactor, not merely close.

func legacyPrice(cfg arch.Config, act sim.Activity, traffic memory.Traffic, tech memory.Tech, k Constants) Breakdown {
	k = k.scaleForWidth(int(cfg.Width))
	var b Breakdown
	b.LogicPJ += float64(act.ParallelMACs) * k.MultMAC16
	if cfg.Backend.Name() == "TCLe" {
		b.LogicPJ += float64(act.SerialLaneCycles) * k.SerialOpTCLe
		b.LogicPJ += float64(act.OffsetEncodes) * k.OffsetEncode
	} else if cfg.Backend.Name() == "TCLp" {
		b.LogicPJ += float64(act.SerialLaneCycles) * k.SerialOpTCLp
	}
	b.LogicPJ += float64(act.MuxSelects) * k.Mux

	bytesPerValue := float64(int(cfg.Width)) / 8
	wsColumnBytes := float64(cfg.Lanes) * bytesPerValue
	b.OnChipPJ += float64(act.WSColumnReads) * wsColumnBytes * k.WSReadPerByte
	b.OnChipPJ += float64(act.ActReads) * bytesPerValue * k.ASReadPerByte
	b.OnChipPJ += float64(act.PsumAccesses) * k.PsumAccess

	b.OffChipPJ += float64(traffic.Total()) * tech.PJPerByte
	return b
}

func legacyAreaOf(cfg arch.Config) Area {
	a := Area{
		WeightMemory: 3.57,
		ActOutputBuf: 0.11,
		ActMemory:    54.25,
	}
	lanesTotal := float64(cfg.Tiles * cfg.FiltersPerTile * cfg.WindowsPerTile * cfg.Lanes)
	if cfg.Backend.Name() == "TCLe" {
		a.ComputeCore = lanesTotal * 0.001132
		a.Dispatcher = 0.37
		a.OffsetGen = 2.89
	} else if cfg.Backend.Name() == "TCLp" {
		a.ComputeCore = lanesTotal * 0.000552
		a.Dispatcher = 0.39
	} else {
		a.ComputeCore = lanesTotal * 0.003193
	}
	h := 0
	if cfg.HasFrontEnd() {
		h = cfg.Pattern.H
		if cfg.Pattern.Infinite {
			h = 15
		}
	}
	a.ActInputBuffer = 0.085 * float64(h+1)
	if cfg.HasFrontEnd() {
		wires := 1.0
		if cfg.Backend.Name() == "TCLe" {
			wires = 4.0
		}
		if cfg.Backend.Name() == "bit-parallel" {
			wires = 16.0
		}
		a.ActSelectUnit = 0.0094 * float64(cfg.Tiles) * float64(h+1) * wires
		a.ComputeCore += 0.45e-4 * lanesTotal * float64(cfg.Pattern.MuxInputs()) / 8 * wires / 4
	}
	return a
}

func legacyConfigs() []arch.Config {
	cfgs := []arch.Config{
		arch.DaDianNaoPP(),
		arch.FrontEndOnly(sched.T(2, 5)),
		arch.FrontEndOnly(sched.X()),
	}
	for _, be := range []arch.BackEnd{arch.TCLp, arch.TCLe} {
		for _, p := range []sched.Pattern{sched.T(2, 5), sched.L(1, 6), sched.L(4, 3), {}} {
			cfgs = append(cfgs, arch.NewTCL(p, be))
			cfgs = append(cfgs, arch.NewTCL(p, be).WithWidth(fixed.W8))
		}
	}
	return cfgs
}

// TestPriceMatchesLegacySwitch pins the coefficient-driven Price to the old
// enum-switch pricing, bit for bit, across the design family and widths.
func TestPriceMatchesLegacySwitch(t *testing.T) {
	k := Defaults65nm()
	tech, _ := memory.TechByName("LPDDR4-3200")
	act := sim.Activity{
		SerialLaneCycles: 123457, ParallelMACs: 7701, WSColumnReads: 991,
		ActReads: 40404, MuxSelects: 5055, PsumAccesses: 2021, OffsetEncodes: 3103,
	}
	tr := memory.Traffic{WeightBytes: 1 << 17, ActInBytes: 1 << 16, ActOutBytes: 1 << 14}
	for _, cfg := range legacyConfigs() {
		got := Price(cfg, act, tr, tech, k)
		want := legacyPrice(cfg, act, tr, tech, k)
		if got != want {
			t.Errorf("%s: Price = %+v, legacy switch gives %+v", cfg.Name, got, want)
		}
	}
}

// TestAreaMatchesLegacySwitch pins AreaOf to the old enum-switch
// accounting, bit for bit.
func TestAreaMatchesLegacySwitch(t *testing.T) {
	for _, cfg := range legacyConfigs() {
		got := AreaOf(cfg)
		want := legacyAreaOf(cfg)
		if got != want {
			t.Errorf("%s: AreaOf = %+v, legacy switch gives %+v", cfg.Name, got, want)
		}
	}
}
