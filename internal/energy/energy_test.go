package energy

import (
	"math"
	"testing"

	"bittactical/internal/arch"
	"bittactical/internal/fixed"
	"bittactical/internal/memory"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

func TestDaDianNaoArea(t *testing.T) {
	// Table 3 anchor: DaDianNao++ totals 61.29 mm².
	got := AreaOf(arch.DaDianNaoPP()).Total()
	if math.Abs(got-61.29) > 0.15 {
		t.Errorf("DaDianNao++ area = %.2f, want ≈61.29", got)
	}
}

func TestTable3ItemizedAnchors(t *testing.T) {
	// TCLe / TCLp L8<1,6> column values.
	e := AreaOf(arch.NewTCL(sched.L(1, 6), arch.TCLe))
	if math.Abs(e.ComputeCore-19.28) > 0.5 {
		t.Errorf("TCLe compute core = %.2f, want ≈19.28", e.ComputeCore)
	}
	if e.OffsetGen != 2.89 {
		t.Errorf("TCLe offset generator = %.2f, want 2.89", e.OffsetGen)
	}
	if math.Abs(e.ActInputBuffer-0.17) > 0.01 {
		t.Errorf("TCLe act input buffer = %.3f, want ≈0.17", e.ActInputBuffer)
	}
	p := AreaOf(arch.NewTCL(sched.L(1, 6), arch.TCLp))
	if math.Abs(p.ComputeCore-9.22) > 0.3 {
		t.Errorf("TCLp compute core = %.2f, want ≈9.22", p.ComputeCore)
	}
	if p.OffsetGen != 0 {
		t.Error("TCLp has no offset generator")
	}
}

func TestTable3NormalizedTotals(t *testing.T) {
	// Paper: TCLe 1.32–1.37×, TCLp 1.10–1.11×.
	for _, pat := range []sched.Pattern{sched.L(1, 6), sched.L(2, 5), sched.L(4, 3), sched.T(2, 5)} {
		ne := NormalizedArea(arch.NewTCL(pat, arch.TCLe))
		np := NormalizedArea(arch.NewTCL(pat, arch.TCLp))
		if ne < 1.28 || ne > 1.42 {
			t.Errorf("%s TCLe normalized area %.3f outside paper band", pat.Name, ne)
		}
		if np < 1.07 || np > 1.15 {
			t.Errorf("%s TCLp normalized area %.3f outside paper band", pat.Name, np)
		}
	}
}

func TestAreaGrowsWithLookahead(t *testing.T) {
	prev := 0.0
	for _, h := range []int{1, 2, 4} {
		a := AreaOf(arch.NewTCL(sched.L(h, 6-h+1), arch.TCLe)).Total()
		if a <= prev {
			t.Errorf("area must grow with lookahead: h=%d gives %.2f after %.2f", h, a, prev)
		}
		prev = a
	}
}

func TestPriceComponents(t *testing.T) {
	k := Defaults65nm()
	tech, _ := memory.TechByName("LPDDR4-3200")
	act := sim.Activity{
		SerialLaneCycles: 1000, ParallelMACs: 0, WSColumnReads: 10,
		ActReads: 100, MuxSelects: 50, PsumAccesses: 20, OffsetEncodes: 30,
	}
	tr := memory.Traffic{WeightBytes: 100, ActInBytes: 100}
	e := Price(arch.NewTCL(sched.T(2, 5), arch.TCLe), act, tr, tech, k)
	if e.LogicPJ <= 0 || e.OnChipPJ <= 0 || e.OffChipPJ <= 0 {
		t.Errorf("missing energy components: %+v", e)
	}
	wantOff := 200.0 * tech.PJPerByte
	if math.Abs(e.OffChipPJ-wantOff) > 1e-9 {
		t.Errorf("off-chip = %v, want %v", e.OffChipPJ, wantOff)
	}
	// TCLe pays for offset encoding; TCLp does not.
	p := Price(arch.NewTCL(sched.T(2, 5), arch.TCLp), act, tr, tech, k)
	if p.LogicPJ >= e.LogicPJ {
		t.Errorf("TCLp logic %v should be below TCLe logic %v at equal activity", p.LogicPJ, e.LogicPJ)
	}
}

func TestPriceBaselineUsesMultipliers(t *testing.T) {
	k := Defaults65nm()
	tech, _ := memory.TechByName("infinite")
	act := sim.Activity{ParallelMACs: 1000, SerialLaneCycles: 5000}
	b := Price(arch.DaDianNaoPP(), act, memory.Traffic{}, tech, k)
	if math.Abs(b.LogicPJ-1000*k.MultMAC16) > 1e-9 {
		t.Errorf("baseline logic %v should price only multipliers", b.LogicPJ)
	}
}

func TestWidthScaling(t *testing.T) {
	k := Defaults65nm()
	k8 := k.scaleForWidth(8)
	if k8.MultMAC16 >= k.MultMAC16/3 {
		t.Errorf("8b multiply %v should be ~quadratically cheaper than %v", k8.MultMAC16, k.MultMAC16)
	}
	if k8.SerialOpTCLe >= k.SerialOpTCLe {
		t.Error("8b serial op should be cheaper")
	}
	if got := k.scaleForWidth(16); got != k {
		t.Error("16b scaling must be identity")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{LogicPJ: 1, OnChipPJ: 2, OffChipPJ: 3}
	a.Add(Breakdown{LogicPJ: 1, OnChipPJ: 1, OffChipPJ: 1})
	if a.TotalPJ() != 9 {
		t.Errorf("TotalPJ = %v, want 9", a.TotalPJ())
	}
	if math.Abs(a.MJPerImage()-9e-9) > 1e-18 {
		t.Errorf("MJPerImage = %v", a.MJPerImage())
	}
}

func TestXPatternAreaIsImpractical(t *testing.T) {
	x := AreaOf(arch.FrontEndOnly(sched.X()))
	l := AreaOf(arch.FrontEndOnly(sched.T(2, 5)))
	if x.Total() <= l.Total() {
		t.Errorf("X<inf,15> area %.2f should exceed T8<2,5> %.2f", x.Total(), l.Total())
	}
}

func TestPeakTOPSAnchors(t *testing.T) {
	// Table 2: DaDianNao++ peak compute 2 TOPS.
	if got := arch.DaDianNaoPP().PeakTOPS(); math.Abs(got-2.048) > 0.06 {
		t.Errorf("DaDianNao++ peak = %.2f TOPS, want ≈2", got)
	}
	_ = fixed.W16
}
