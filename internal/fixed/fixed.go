// Package fixed implements the fixed-point number representation used
// throughout the Bit-Tactical simulator.
//
// The paper's datapath operates on 16-bit (and, in Section 6.5, 8-bit)
// fixed-point activations and weights. A value is stored as a signed
// integer of configurable width together with a power-of-two scale
// (the number of fractional bits). Quantization saturates symmetrically,
// matching common inference quantizers.
package fixed

import (
	"fmt"
	"math"
)

// Width describes a fixed-point data width in bits, including sign.
type Width int

// Supported data widths. The paper evaluates 16-bit models throughout and
// 8-bit models in Section 6.5 (Figure 13).
const (
	W16 Width = 16
	W8  Width = 8
)

// MaxInt returns the largest representable integer at width w.
func (w Width) MaxInt() int32 { return int32(1)<<(int(w)-1) - 1 }

// MinInt returns the smallest representable integer at width w.
// Symmetric quantization is used, so MinInt == -MaxInt; the most negative
// two's-complement code is unused, which keeps Booth term counts bounded.
func (w Width) MinInt() int32 { return -w.MaxInt() }

// Mask returns a bit mask with the low w bits set.
func (w Width) Mask() uint32 { return uint32(1)<<uint(w) - 1 }

func (w Width) String() string { return fmt.Sprintf("%db", int(w)) }

// Valid reports whether w is one of the supported widths.
func (w Width) Valid() bool { return w == W16 || w == W8 }

// Quantizer maps real values to fixed-point codes at a given width and
// fractional precision.
type Quantizer struct {
	Width Width
	// Frac is the number of fractional bits: code = round(x * 2^Frac).
	Frac int
}

// NewQuantizer returns a quantizer with the given width and fractional bits.
func NewQuantizer(w Width, frac int) Quantizer { return Quantizer{Width: w, Frac: frac} }

// Scale returns the multiplicative scale 2^Frac.
func (q Quantizer) Scale() float64 { return math.Ldexp(1, q.Frac) }

// Quantize converts a real value to its saturated fixed-point code.
func (q Quantizer) Quantize(x float64) int32 {
	v := math.RoundToEven(x * q.Scale())
	max, min := float64(q.Width.MaxInt()), float64(q.Width.MinInt())
	if v > max {
		v = max
	}
	if v < min {
		v = min
	}
	return int32(v)
}

// Dequantize converts a fixed-point code back to a real value.
func (q Quantizer) Dequantize(v int32) float64 { return float64(v) / q.Scale() }

// QuantizeSlice quantizes xs into a fresh slice of codes.
func (q Quantizer) QuantizeSlice(xs []float64) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = q.Quantize(x)
	}
	return out
}

// FitFrac chooses the largest fractional bit count such that maxAbs fits
// without saturation at width w. This mirrors the paper's "range-oblivious"
// per-layer linear quantization (Section 6.5): the integer range is expanded
// exactly as far as the layer's largest magnitude requires.
func FitFrac(w Width, maxAbs float64) int {
	if maxAbs <= 0 {
		return int(w) - 1
	}
	frac := int(w) - 1
	for frac > -32 {
		if maxAbs*math.Ldexp(1, frac) <= float64(w.MaxInt()) {
			return frac
		}
		frac--
	}
	return frac
}

// SignExtend reinterprets the low w bits of code as a two's-complement
// signed value: bit w-1 is the sign. This is the inverse of masking a code
// with w.Mask() — for any value v representable at width w,
// SignExtend(uint32(v)&w.Mask(), w) == v. Cost-table and plane builders use
// it to reconstruct the signed activation behind each table index.
func SignExtend(code uint32, w Width) int32 {
	shift := 32 - uint(w)
	return int32(code<<shift) >> shift
}

// Sat saturates v to width w.
func Sat(v int64, w Width) int32 {
	max, min := int64(w.MaxInt()), int64(w.MinInt())
	if v > max {
		return int32(max)
	}
	if v < min {
		return int32(min)
	}
	return int32(v)
}

// RequantizeProduct narrows a 2w-bit accumulator value back to width w,
// dropping frac fractional bits with round-to-nearest-even.
func RequantizeProduct(acc int64, frac int, w Width) int32 {
	if frac <= 0 {
		return Sat(acc<<uint(-frac), w)
	}
	half := int64(1) << uint(frac-1)
	q := (acc + half) >> uint(frac)
	// Round half to even.
	if acc&(half*2-1) == half && q&1 == 1 {
		q--
	}
	return Sat(q, w)
}
