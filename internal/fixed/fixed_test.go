package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWidthBounds(t *testing.T) {
	if got := W16.MaxInt(); got != 32767 {
		t.Errorf("W16.MaxInt() = %d, want 32767", got)
	}
	if got := W16.MinInt(); got != -32767 {
		t.Errorf("W16.MinInt() = %d, want -32767 (symmetric)", got)
	}
	if got := W8.MaxInt(); got != 127 {
		t.Errorf("W8.MaxInt() = %d, want 127", got)
	}
	if got := W8.Mask(); got != 0xFF {
		t.Errorf("W8.Mask() = %#x, want 0xff", got)
	}
	if !W16.Valid() || !W8.Valid() || Width(13).Valid() {
		t.Error("Valid() misclassifies widths")
	}
}

func TestWidthString(t *testing.T) {
	if W16.String() != "16b" || W8.String() != "8b" {
		t.Errorf("String() = %q, %q", W16.String(), W8.String())
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	q := NewQuantizer(W16, 8)
	for _, x := range []float64{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 100.0} {
		v := q.Quantize(x)
		back := q.Dequantize(v)
		if math.Abs(back-x) > 1.0/q.Scale() {
			t.Errorf("round trip %v -> %d -> %v error too large", x, v, back)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q := NewQuantizer(W8, 0)
	if got := q.Quantize(1e9); got != 127 {
		t.Errorf("positive saturation = %d, want 127", got)
	}
	if got := q.Quantize(-1e9); got != -127 {
		t.Errorf("negative saturation = %d, want -127", got)
	}
}

func TestQuantizeSlice(t *testing.T) {
	q := NewQuantizer(W16, 4)
	got := q.QuantizeSlice([]float64{0, 1, -1})
	want := []int32{0, 16, -16}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("QuantizeSlice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFitFrac(t *testing.T) {
	cases := []struct {
		w      Width
		maxAbs float64
		want   int
	}{
		{W16, 1.0, 15},   // 1.0 * 2^15 = 32768 > 32767, so 14? check below
		{W8, 1.0, 6},     // 1*2^7=128>127 -> 6
		{W16, 0, 15},     // degenerate
		{W16, 100.0, 8},  // 100*2^8=25600 <= 32767
		{W8, 1000.0, -3}, // 1000*2^-3 = 125 <= 127
	}
	for _, c := range cases {
		got := FitFrac(c.w, c.maxAbs)
		// Verify the invariant rather than exact values for the 1.0 case.
		if c.maxAbs > 0 {
			if c.maxAbs*math.Ldexp(1, got) > float64(c.w.MaxInt()) {
				t.Errorf("FitFrac(%v,%v)=%d overflows", c.w, c.maxAbs, got)
			}
			if c.maxAbs*math.Ldexp(1, got+1) <= float64(c.w.MaxInt()) {
				t.Errorf("FitFrac(%v,%v)=%d not maximal", c.w, c.maxAbs, got)
			}
		} else if got != int(c.w)-1 {
			t.Errorf("FitFrac(%v,0)=%d, want %d", c.w, got, int(c.w)-1)
		}
	}
}

func TestFitFracProperty(t *testing.T) {
	f := func(x float64) bool {
		maxAbs := math.Abs(x)
		if math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) || maxAbs == 0 || maxAbs > 1e30 {
			return true
		}
		frac := FitFrac(W16, maxAbs)
		return maxAbs*math.Ldexp(1, frac) <= float64(W16.MaxInt())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSat(t *testing.T) {
	if Sat(1<<40, W16) != 32767 {
		t.Error("Sat should clamp high")
	}
	if Sat(-(1<<40), W16) != -32767 {
		t.Error("Sat should clamp low")
	}
	if Sat(123, W16) != 123 {
		t.Error("Sat should pass through in-range values")
	}
}

func TestRequantizeProduct(t *testing.T) {
	// 300 >> 4 with RNE: 300/16 = 18.75 -> 19
	if got := RequantizeProduct(300, 4, W16); got != 19 {
		t.Errorf("RequantizeProduct(300,4) = %d, want 19", got)
	}
	// Half-to-even: 24/16 = 1.5 -> 2; 40/16 = 2.5 -> 2
	if got := RequantizeProduct(24, 4, W16); got != 2 {
		t.Errorf("RequantizeProduct(24,4) = %d, want 2", got)
	}
	if got := RequantizeProduct(40, 4, W16); got != 2 {
		t.Errorf("RequantizeProduct(40,4) = %d, want 2 (half to even)", got)
	}
	// Negative frac shifts left.
	if got := RequantizeProduct(3, -2, W16); got != 12 {
		t.Errorf("RequantizeProduct(3,-2) = %d, want 12", got)
	}
}

func TestQuantizerScale(t *testing.T) {
	if NewQuantizer(W16, 8).Scale() != 256 {
		t.Error("Scale(frac=8) != 256")
	}
	if NewQuantizer(W16, -2).Scale() != 0.25 {
		t.Error("Scale(frac=-2) != 0.25")
	}
}

func TestSignExtend(t *testing.T) {
	for _, tc := range []struct {
		code uint32
		w    Width
		want int32
	}{
		{0, W8, 0},
		{1, W8, 1},
		{0x7F, W8, 127},
		{0x80, W8, -128},
		{0xFF, W8, -1},
		{0xAB, W8, -85},
		{0x1FF, W8, -1}, // bits above the width are ignored
		{0, W16, 0},
		{0x7FFF, W16, 32767},
		{0x8000, W16, -32768},
		{0xFFFF, W16, -1},
		{0x12345678, W16, 0x5678},
	} {
		if got := SignExtend(tc.code, tc.w); got != tc.want {
			t.Errorf("SignExtend(%#x, %s) = %d, want %d", tc.code, tc.w, got, tc.want)
		}
	}
}

func TestSignExtendRoundTrips(t *testing.T) {
	// Every representable value survives a mask-then-extend round trip at
	// both widths — the property the simulator's cost tables rely on when
	// they index by masked code.
	for _, w := range []Width{W8, W16} {
		for v := w.MinInt(); v <= w.MaxInt(); v++ {
			if got := SignExtend(uint32(v)&w.Mask(), w); got != v {
				t.Fatalf("width %s: round trip of %d gave %d", w, v, got)
			}
		}
	}
}
