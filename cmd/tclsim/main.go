// Command tclsim regenerates the paper's tables and figures.
//
// Usage:
//
//	tclsim -exp fig8a                 # one experiment
//	tclsim -exp all                   # everything (writes the full report)
//	tclsim -exp fig12 -models AlexNet-ES,ResNet50-SS
//	tclsim -exp table1 -cscale 0.5 -sscale 0.5   # larger instantiation
//	tclsim -exp fig8b -j 8 -cpuprofile cpu.out   # bounded parallelism + pprof
//	tclsim -exp all -schedstats       # report schedule-cache effectiveness
//	tclsim -backend dstripes-sm       # ad-hoc sweep of one registered back-end
//	tclsim -backend dstripes-sm -models AlexNet-ES,GoogLeNet-ES
//	tclsim -exp attn-fig8 -batch 4    # transformer-era zoo at batch 4
//	tclsim -list                      # experiment ids, back-end and model names
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bittactical/internal/backend"
	_ "bittactical/internal/backend/dstripes" // register the plugin back-end
	"bittactical/internal/experiments"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
	"bittactical/internal/profiling"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		beName  = flag.String("backend", "", "run an ad-hoc speedup sweep of one registered back-end, e.g. dstripes-sm (see -list)")
		models  = flag.String("models", "", "comma-separated model subset")
		cscale  = flag.Float64("cscale", 0.25, "channel scale of the model zoo")
		sscale  = flag.Float64("sscale", 0.5, "spatial scale of the model zoo")
		seed    = flag.Int64("seed", 1, "weight seed")
		batch   = flag.Int("batch", 1, "sequence batch size (FC token windows multiply)")
		aseed   = flag.Int64("actseed", 7, "activation seed")
		trials  = flag.Int("trials", 100, "filters per point for fig11")
		par     = flag.Int("j", 0, "worker parallelism (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		sstats  = flag.Bool("schedstats", false, "print schedule-cache hit/miss stats on exit")
		pstats  = flag.Bool("planestats", false, "print activation-plane-cache hit/miss stats on exit")
		mstats  = flag.Bool("metrics", false, "dump the engine metrics snapshot (JSON) after the run")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		fmt.Println("back-ends (for -backend):", strings.Join(backend.Names(), ", "))
		fmt.Println("models (for -models):", strings.Join(nn.Names(), ", "))
		return
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tclsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tclsim:", err)
		}
	}()

	zoo := nn.DefaultZoo()
	zoo.ChannelScale, zoo.SpatialScale, zoo.Seed = *cscale, *sscale, *seed
	zoo.Batch = *batch
	opts := experiments.Options{Zoo: zoo, ActSeed: *aseed, Trials: *trials, Parallelism: *par}
	if *models != "" {
		opts.Models = strings.Split(*models, ",")
	}

	type runner struct {
		id  string
		run func(experiments.Options) (*experiments.Table, error)
	}
	var runs []runner
	if *beName != "" {
		name := *beName
		runs = []runner{{"backend:" + name, func(o experiments.Options) (*experiments.Table, error) {
			return experiments.BackendSpeedup(o, name)
		}}}
	} else {
		ids := []string{*exp}
		if *exp == "all" {
			ids = experiments.IDs()
		}
		for _, id := range ids {
			run, ok := experiments.Registry[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "tclsim: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runs = append(runs, runner{id, run})
		}
	}
	for _, r := range runs {
		id := r.id
		start := time.Now()
		tab, err := r.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tclsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "tclsim: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
	if *sstats {
		st := sched.Shared.Stats()
		total := st.Hits + st.Misses
		var rate float64
		if total > 0 {
			rate = 100 * float64(st.Hits) / float64(total)
		}
		fmt.Printf("schedule cache: %d hits / %d misses (%.1f%% hit rate), %d evictions, %d resident entries\n",
			st.Hits, st.Misses, rate, st.Evictions, st.Entries)
	}
	if *pstats {
		st := sim.SharedPlanes.Stats()
		total := st.Hits + st.Misses
		var rate float64
		if total > 0 {
			rate = 100 * float64(st.Hits) / float64(total)
		}
		fmt.Printf("plane cache: %d hits / %d misses (%.1f%% hit rate), %d evictions, %d resident entries (%.1f MiB)\n",
			st.Hits, st.Misses, rate, st.Evictions, st.Entries, float64(st.Bytes)/(1<<20))
		fmt.Printf("grouped planes: %d builds / %d hits / %d evictions\n",
			st.GroupBuilds, st.GroupHits, st.GroupEvictions)
	}
	if *mstats {
		if err := metrics.Default.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tclsim:", err)
			os.Exit(1)
		}
	}
}

// writeCSV stores the table as <dir>/<id>.csv for plotting. Flush and Close
// errors are the ones a full disk actually surfaces — the buffered writes
// almost always succeed — so both are checked and the file is removed
// rather than left truncated.
func writeCSV(dir string, tab *experiments.Table) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, tab.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(path)
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(tab.Header); err != nil {
		return err
	}
	for _, r := range tab.Rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
