// Command tclzoo prints the instantiated model zoo: per-network layer
// geometry, MAC counts, weight sparsity, and activation statistics — the
// workload inventory behind every experiment. Models resolve through the
// process-wide workload registry, so externally registered zoos (the
// transformer-era attention workloads) are addressable alongside the
// paper's seven.
//
// Usage:
//
//	tclzoo                      # summary of the paper's seven networks
//	tclzoo -list                # every registered model name
//	tclzoo -all                 # summary of every registered model
//	tclzoo -model BERT-Attn -layers -batch 4
//	tclzoo -cscale 1 -sscale 1  # native-scale shapes
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/potential"
	"bittactical/internal/sparsity"
	_ "bittactical/internal/workloads/attention" // register the transformer-era zoo
)

func main() {
	var (
		model  = flag.String("model", "", "single model (default: the paper's seven)")
		list   = flag.Bool("list", false, "print every registered model name and exit")
		all    = flag.Bool("all", false, "summarize every registered model")
		layers = flag.Bool("layers", false, "print per-layer geometry")
		cscale = flag.Float64("cscale", 0.25, "channel scale")
		sscale = flag.Float64("sscale", 0.5, "spatial scale")
		seed   = flag.Int64("seed", 1, "weight seed")
		batch  = flag.Int("batch", 1, "sequence batch size (FC token windows multiply)")
		w8     = flag.Bool("w8", false, "8-bit quantized zoo")
		pot    = flag.Bool("potential", false, "print Table-1 potentials per model")
		planes = flag.Bool("planes", false, "print the per-bit-plane activation zero fractions")
		par    = flag.Int("j", 0, "model-build parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, n := range nn.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := nn.DefaultZoo()
	cfg.ChannelScale, cfg.SpatialScale, cfg.Seed = *cscale, *sscale, *seed
	cfg.Batch = *batch
	if *w8 {
		cfg.Width = fixed.W8
	}
	names := nn.ModelNames
	if *all {
		names = nn.Names()
	}
	if *model != "" {
		names = []string{*model}
	}
	// Instantiate in parallel, print in zoo order.
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	built := make([]*nn.Model, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			built[i], errs[i] = nn.BuildModel(name, cfg)
		}(i, name)
	}
	wg.Wait()
	for i := range names {
		m, err := built[i], errs[i]
		if err != nil {
			fmt.Fprintln(os.Stderr, "tclzoo:", err)
			os.Exit(2)
		}
		fmt.Printf("%-14s %s  layers=%-3d MACs=%6.1fM  weight sparsity=%.3f (target %.2f)\n",
			m.Name, m.Width, len(m.Layers), float64(m.TotalMACs())/1e6,
			m.WeightSparsity(), m.TargetWeightSparsity)
		if *layers {
			for _, l := range m.Layers {
				h, w := l.OutDims()
				fmt.Printf("  %-14s %-7s K=%-5d C=%-5d %dx%d s%d in %dx%d out %dx%d  MACs=%8.2fM  wsp=%.2f\n",
					l.Name, l.Kind, l.K, l.C, l.R, l.S, l.Stride, l.InH, l.InW, h, w,
					float64(l.MACs())/1e6, l.Weights.Sparsity())
			}
		}
		if *pot {
			tal, err := potential.AnalyzeModel(m, m.GenerateActs(7))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tclzoo:", err)
				os.Exit(1)
			}
			fmt.Println("  " + potential.FormatRow("potential:", tal.Potentials()))
		}
		if *planes {
			var p sparsity.SliceProfile
			for _, t := range m.GenerateActs(7) {
				p.AddTensor(t)
			}
			fmt.Printf("  act planes (zero frac, value=%.3f bit=%.3f neg=%.3f):",
				p.ValueSparsity(), p.BitSparsity(),
				float64(p.NegValues)/float64(p.Values))
			for i := 0; i < sparsity.BitPlanes; i++ {
				fmt.Printf(" %d:%.2f", i, p.PlaneSparsity(i))
			}
			fmt.Println()
		}
	}
}
