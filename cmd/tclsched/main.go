// Command tclsched schedules a randomly sparsified filter and prints the
// resulting schedule, its verification status, and its compaction
// statistics — a workbench for exploring connectivity patterns and the
// scheduling algorithm.
//
// Usage:
//
//	tclsched -pattern 'T8<2,5>' -sparsity 0.7 -steps 18 -dump
//	tclsched -pattern 'L8<1,6>' -alg greedy -sparsity 0.9
//	tclsched -steps 288 -repeat 1000 -cpuprofile sched.out   # profile Algorithm 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bittactical/internal/profiling"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
)

func main() {
	var (
		patName  = flag.String("pattern", "T8<2,5>", "connectivity pattern (see -patterns)")
		alg      = flag.String("alg", "algorithm1", "scheduler: algorithm1 | greedy")
		sp       = flag.Float64("sparsity", 0.7, "weight sparsity in [0,1]")
		steps    = flag.Int("steps", 18, "dense schedule steps (3x3x512/16 = 288 in fig11)")
		lanes    = flag.Int("lanes", 16, "weight lanes")
		seed     = flag.Int64("seed", 1, "filter seed")
		repeat   = flag.Int("repeat", 1, "schedule the filter this many times (profiling workloads)")
		dump     = flag.Bool("dump", false, "print every schedule column")
		patterns = flag.Bool("patterns", false, "list known patterns and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tclsched:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tclsched:", err)
		}
	}()

	if *patterns {
		for _, n := range sched.KnownPatternNames() {
			fmt.Println(n)
		}
		return
	}

	p, err := sched.ByName(*patName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tclsched:", err)
		os.Exit(2)
	}
	a := sched.Algorithm1
	if *alg == "greedy" {
		a = sched.GreedySimple
	} else if *alg != "algorithm1" {
		fmt.Fprintf(os.Stderr, "tclsched: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	w := sparsity.RandomSparseFilter(rng, *steps, *lanes, *sp)
	f := sched.NewFilter(*lanes, *steps, w, nil)
	s := sched.ScheduleFilter(f, p, a)
	// Extra repetitions give the profiler a hot Algorithm 1 to sample.
	for i := 1; i < *repeat; i++ {
		sched.ScheduleFilter(f, p, a)
	}
	if err := sched.Verify(f, p, s); err != nil {
		fmt.Fprintln(os.Stderr, "tclsched: schedule verification FAILED:", err)
		os.Exit(1)
	}

	st := s.Stats(f)
	fmt.Printf("pattern %s (%d-input mux), scheduler %s\n", p.Name, p.MuxInputs(), a)
	fmt.Printf("filter: %d steps x %d lanes, %d effectual weights (%.0f%% sparse)\n",
		*steps, *lanes, f.NNZ(), *sp*100)
	fmt.Printf("schedule: %d columns (dense %d) -> speedup %.2fx; lower bound %d columns\n",
		s.Len(), *steps, float64(*steps)/float64(max(1, s.Len())), (f.NNZ()+*lanes-1)/(*lanes))
	fmt.Printf("slots: unpromoted %d, lookahead %d, lookaside %d, zero %d, pad %d\n",
		st.Slots[sched.SlotUnpromoted], st.Slots[sched.SlotLookahead],
		st.Slots[sched.SlotLookaside], st.Slots[sched.SlotZero], st.Slots[sched.SlotPad])

	if *dump {
		for ci, col := range s.Columns {
			fmt.Printf("col %3d head %3d adv %d |", ci, col.Head, col.Advance)
			for _, e := range col.Entries {
				switch {
				case e.Weight == 0:
					fmt.Print("  .   ")
				case e.Dt == 0 && e.Dl == 0:
					fmt.Print("  =   ")
				default:
					fmt.Printf(" %+d%+d  ", e.Dt, e.Dl)
				}
			}
			fmt.Println()
		}
	}
}
