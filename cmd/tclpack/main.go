// Command tclpack is the offline middleware pipeline end-to-end: it builds
// a model, schedules every filter group under a connectivity pattern,
// verifies each schedule against the hardware invariants, packs the results
// into weight-scratchpad images (the binary artifact the silicon consumes),
// round-trips each image through the decoder, and reports footprints.
//
// Usage:
//
//	tclpack -model AlexNet-ES -pattern 'T8<2,5>' -o /tmp/alexnet.tclw
//	tclpack -model MobileNet -stats
//	tclpack -model ResNet50-SS -j 8      # parallel scheduling + packing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/wsformat"

	_ "bittactical/internal/workloads/attention" // register the transformer-era zoo
)

func main() {
	var (
		model   = flag.String("model", "AlexNet-ES", "zoo model to pack")
		patName = flag.String("pattern", "T8<2,5>", "connectivity pattern")
		out     = flag.String("o", "", "write the concatenated WS images here")
		cscale  = flag.Float64("cscale", 0.25, "channel scale")
		sscale  = flag.Float64("sscale", 0.5, "spatial scale")
		par     = flag.Int("j", 0, "worker parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()

	p, err := sched.ByName(*patName)
	if err != nil {
		fatal(err)
	}
	cfg := nn.DefaultZoo()
	cfg.ChannelScale, cfg.SpatialScale = *cscale, *sscale
	m, err := nn.BuildModel(*model, cfg)
	if err != nil {
		fatal(err)
	}
	acts := m.GenerateActs(1)
	lws, err := m.Lowered(16, acts)
	if err != nil {
		fatal(err)
	}

	// The offline pipeline is embarrassingly parallel across filter groups
	// (each group schedules, verifies, and encodes independently); groups go
	// into one shared queue and idle workers steal the next index, then the
	// per-group images concatenate in deterministic order.
	type job struct {
		lw     *nn.Lowered
		pad    []bool
		f0, f1 int
	}
	var jobs []job
	for _, lw := range lws {
		pad := make([]bool, lw.Steps*lw.Lanes)
		for st := 0; st < lw.Steps; st++ {
			for ln := 0; ln < lw.Lanes; ln++ {
				pad[st*lw.Lanes+ln] = lw.IsPad(st, ln)
			}
		}
		for f0 := 0; f0 < lw.Filters; f0 += 16 {
			f1 := f0 + 16
			if f1 > lw.Filters {
				f1 = lw.Filters
			}
			jobs = append(jobs, job{lw: lw, pad: pad, f0: f0, f1: f1})
		}
	}
	type packed struct {
		blob             []byte
		rawBits, imgBits int64
		filters, columns int
		denseCols        int
		err              error
	}
	results := make([]packed, len(jobs))
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a scheduler kernel: tclpack visits every group
			// exactly once, so memoizing through the shared cache buys nothing
			// — arena mode schedules allocation-free, and each group's
			// schedules are fully consumed (verify, encode, round-trip) before
			// the worker's next ScheduleGroup call invalidates them.
			sc := sched.NewScheduler()
			for {
				ji := int(next.Add(1)) - 1
				if ji >= len(jobs) {
					return
				}
				j := jobs[ji]
				r := &results[ji]
				lw := j.lw
				group := make([]sched.Filter, j.f1-j.f0)
				for i := range group {
					group[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(j.f0+i), j.pad)
				}
				for i, s := range sc.ScheduleGroup(group, p, sched.Algorithm1) {
					if err := sched.Verify(group[i], p, s); err != nil {
						r.err = fmt.Errorf("%s filter %d: %w", lw.Name, j.f0+i, err)
						return
					}
					buf, err := wsformat.Encode(p, s, m.Width)
					if err != nil {
						r.err = err
						return
					}
					if err := wsformat.RoundTrip(p, s, m.Width); err != nil {
						r.err = fmt.Errorf("%s filter %d: %w", lw.Name, j.f0+i, err)
						return
					}
					r.blob = append(r.blob, buf...)
					r.rawBits += int64(lw.Steps) * int64(lw.Lanes) * int64(m.Width)
					r.imgBits += wsformat.SizeBits(p, s, m.Width)
					r.filters++
					r.columns += s.Len()
					r.denseCols += lw.Steps
				}
			}
		}()
	}
	wg.Wait()

	var blob []byte
	var rawBits, imgBits int64
	var filters, columns, denseCols int
	for i := range results {
		r := &results[i]
		if r.err != nil {
			fatal(r.err)
		}
		blob = append(blob, r.blob...)
		rawBits += r.rawBits
		imgBits += r.imgBits
		filters += r.filters
		columns += r.columns
		denseCols += r.denseCols
	}
	fmt.Printf("%s under %s: %d filters scheduled and verified\n", m.Name, p.Name, filters)
	fmt.Printf("schedule: %d columns vs %d dense steps (%.2fx front-end compaction)\n",
		columns, denseCols, float64(denseCols)/float64(columns))
	fmt.Printf("WS images: %.1f KB (raw dense weights: %.1f KB; ws+ALC overhead included)\n",
		float64(imgBits)/8/1024, float64(rawBits)/8/1024)
	_ = fixed.W16
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tclpack:", err)
	os.Exit(1)
}
