// Command tclpack is the offline middleware pipeline end-to-end: it builds
// a model, schedules every filter group under a connectivity pattern,
// verifies each schedule against the hardware invariants, packs the results
// into weight-scratchpad images (the binary artifact the silicon consumes),
// round-trips each image through the decoder, and reports footprints.
//
// Usage:
//
//	tclpack -model AlexNet-ES -pattern 'T8<2,5>' -o /tmp/alexnet.tclw
//	tclpack -model MobileNet -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/wsformat"
)

func main() {
	var (
		model   = flag.String("model", "AlexNet-ES", "zoo model to pack")
		patName = flag.String("pattern", "T8<2,5>", "connectivity pattern")
		out     = flag.String("o", "", "write the concatenated WS images here")
		cscale  = flag.Float64("cscale", 0.25, "channel scale")
		sscale  = flag.Float64("sscale", 0.5, "spatial scale")
	)
	flag.Parse()

	p, err := sched.ByName(*patName)
	if err != nil {
		fatal(err)
	}
	cfg := nn.DefaultZoo()
	cfg.ChannelScale, cfg.SpatialScale = *cscale, *sscale
	m, err := nn.BuildModel(*model, cfg)
	if err != nil {
		fatal(err)
	}
	acts := m.GenerateActs(1)
	lws, err := m.Lowered(16, acts)
	if err != nil {
		fatal(err)
	}

	var blob []byte
	var rawBits, imgBits int64
	var filters, columns, denseCols int
	for _, lw := range lws {
		pad := make([]bool, lw.Steps*lw.Lanes)
		for st := 0; st < lw.Steps; st++ {
			for ln := 0; ln < lw.Lanes; ln++ {
				pad[st*lw.Lanes+ln] = lw.IsPad(st, ln)
			}
		}
		for f0 := 0; f0 < lw.Filters; f0 += 16 {
			f1 := f0 + 16
			if f1 > lw.Filters {
				f1 = lw.Filters
			}
			group := make([]sched.Filter, f1-f0)
			for i := range group {
				group[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
			}
			for i, s := range sched.ScheduleGroup(group, p, sched.Algorithm1) {
				if err := sched.Verify(group[i], p, s); err != nil {
					fatal(fmt.Errorf("%s filter %d: %w", lw.Name, f0+i, err))
				}
				buf, err := wsformat.Encode(p, s, m.Width)
				if err != nil {
					fatal(err)
				}
				if err := wsformat.RoundTrip(p, s, m.Width); err != nil {
					fatal(fmt.Errorf("%s filter %d: %w", lw.Name, f0+i, err))
				}
				blob = append(blob, buf...)
				rawBits += int64(lw.Steps) * int64(lw.Lanes) * int64(m.Width)
				imgBits += wsformat.SizeBits(p, s, m.Width)
				filters++
				columns += s.Len()
				denseCols += lw.Steps
			}
		}
	}
	fmt.Printf("%s under %s: %d filters scheduled and verified\n", m.Name, p.Name, filters)
	fmt.Printf("schedule: %d columns vs %d dense steps (%.2fx front-end compaction)\n",
		columns, denseCols, float64(denseCols)/float64(columns))
	fmt.Printf("WS images: %.1f KB (raw dense weights: %.1f KB; ws+ALC overhead included)\n",
		float64(imgBits)/8/1024, float64(rawBits)/8/1024)
	_ = fixed.W16
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tclpack:", err)
	os.Exit(1)
}
