package main

import (
	"reflect"
	"testing"
)

// TestSplitConfigs pins the -configs grammar: commas separate specs except
// inside a pattern's angle brackets, so the default "tcle:T8<2,5>" is one
// config, not two broken halves.
func TestSplitConfigs(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"tcle", []string{"tcle"}},
		{"tcle:T8<2,5>", []string{"tcle:T8<2,5>"}},
		{"tcle:T8<2,5>,tclp:L4<1,2>", []string{"tcle:T8<2,5>", "tclp:L4<1,2>"}},
		{" tcle , bitparallel ", []string{"tcle", "bitparallel"}},
		{",,tcle,", []string{"tcle"}},
		{"tcle:T8<2,5", []string{"tcle:T8<2,5"}}, // unbalanced: server rejects, not us
	} {
		if got := splitConfigs(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitConfigs(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
