// Command tclload drives a running tclserve with concurrent /v1/simulate
// traffic and reports client-observed latency percentiles alongside the
// server's coalesce and result-cache deltas — the load-shape companion to
// cmd/tclserve.
//
//	tclload -addr http://127.0.0.1:8371 -n 64 -c 8
//
// By default every request is identical, the hot-path shape that measures
// request coalescing and the finished-result LRU (expect a coalesce hit
// rate near 1). With -unique each request rotates its activation seed,
// defeating both — the cold-path shape that measures raw engine throughput.
// The report is one JSON object on stdout; a nonzero exit means the drive
// itself failed (unreachable server), not that individual requests did
// (those are counted in the report).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bittactical/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8371", "tclserve base URL")
		n        = flag.Int("n", 32, "total request count")
		conc     = flag.Int("c", 4, "concurrent in-flight requests")
		model    = flag.String("model", "AlexNet-ES", "model to simulate")
		cscale   = flag.Float64("channel-scale", 0.1, "zoo channel scale (0 = server default)")
		sscale   = flag.Float64("spatial-scale", 0.25, "zoo spatial scale (0 = server default)")
		backends = flag.String("configs", "tcle:T8<2,5>",
			"comma-separated backend[:pattern] config list (empty = server default sweep)")
		stream    = flag.Bool("stream", false, "request NDJSON streaming responses")
		unique    = flag.Bool("unique", false, "rotate act_seed per request (defeat coalescing and the result cache)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request server deadline")
		waitReady = flag.Duration("wait-ready", 0,
			"poll the server's /healthz for up to this long before driving (0 = no wait)")
	)
	flag.Parse()

	body := serve.SimulateRequest{Stream: *stream, TimeoutMs: timeout.Milliseconds()}
	body.Model = *model
	body.ChannelScale = *cscale
	body.SpatialScale = *sscale
	for _, spec := range splitConfigs(*backends) {
		cs := serve.ConfigSpec{Backend: spec}
		if be, pat, ok := strings.Cut(spec, ":"); ok {
			cs = serve.ConfigSpec{Backend: be, Pattern: pat}
		}
		body.Configs = append(body.Configs, cs)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	base := strings.TrimSuffix(*addr, "/")
	if *waitReady > 0 {
		if err := awaitReady(ctx, base, *waitReady); err != nil {
			fmt.Fprintln(os.Stderr, "tclload:", err)
			os.Exit(1)
		}
	}
	rep, err := serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL:     base,
		Requests:    *n,
		Concurrency: *conc,
		Body:        body,
		UniqueSeeds: *unique,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tclload:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "tclload:", err)
		os.Exit(1)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tclload: %d of %d requests failed\n", rep.Errors, rep.Requests)
		os.Exit(2)
	}
}

// awaitReady polls base/healthz until it answers 200, the deadline passes,
// or ctx is cancelled — so scripted drives (the shard smoke test's
// mid-kill scenario) can start the moment a freshly-spawned fleet is up
// instead of sleeping a guessed amount.
func awaitReady(ctx context.Context, base string, d time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server at %s not ready after %s", base, d)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// splitConfigs splits a comma-separated backend[:pattern] list on commas
// outside angle brackets — pattern names like T8<2,5> carry their own.
func splitConfigs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i <= len(s); i++ {
		switch {
		case i == len(s) || (s[i] == ',' && depth == 0):
			if spec := strings.TrimSpace(s[start:i]); spec != "" {
				out = append(out, spec)
			}
			start = i + 1
		case i < len(s) && s[i] == '<':
			depth++
		case i < len(s) && s[i] == '>' && depth > 0:
			depth--
		}
	}
	return out
}
