// Command tclreport runs the full experiment suite and writes a single
// markdown report — the machine-generated companion to EXPERIMENTS.md.
//
// Usage:
//
//	tclreport -o report.md
//	tclreport -o report.md -quick        # small zoo, fast smoke report
//	tclreport -o report.md -include fig8a,fig12
//	tclreport -o report.md -j 4 -memprofile heap.out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bittactical/internal/experiments"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
	"bittactical/internal/profiling"
)

func main() {
	var (
		out     = flag.String("o", "report.md", "output file")
		quick   = flag.Bool("quick", false, "small zoo for a fast smoke report")
		include = flag.String("include", "", "comma-separated experiment subset")
		cscale  = flag.Float64("cscale", 0.25, "channel scale")
		sscale  = flag.Float64("sscale", 0.5, "spatial scale")
		par     = flag.Int("j", 0, "worker parallelism (0 = GOMAXPROCS)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mstats  = flag.Bool("metrics", false, "dump the engine metrics snapshot (JSON) after the run")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tclreport:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tclreport:", err)
		}
	}()

	opts := experiments.Options{}
	zoo := nn.DefaultZoo()
	zoo.ChannelScale, zoo.SpatialScale = *cscale, *sscale
	opts.Zoo = zoo
	if *quick {
		opts = experiments.Quick()
	}
	opts.Parallelism = *par

	ids := experiments.IDs()
	if *include != "" {
		ids = strings.Split(*include, ",")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Bit-Tactical reproduction report\n\n")
	fmt.Fprintf(&b, "Generated %s; zoo channel scale %.3g, spatial scale %.3g.\n\n",
		time.Now().Format(time.RFC3339), opts.Zoo.ChannelScale, opts.Zoo.SpatialScale)
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "tclreport: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tclreport: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "## %s — %s\n\n", tab.ID, tab.Title)
		writeMarkdownTable(&b, tab)
		fmt.Fprintf(&b, "_%.1fs_\n\n", time.Since(start).Seconds())
		fmt.Fprintf(os.Stderr, "tclreport: %s done (%.1fs)\n", id, time.Since(start).Seconds())
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tclreport:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
	if *mstats {
		if err := metrics.Default.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tclreport:", err)
			os.Exit(1)
		}
	}
}

func writeMarkdownTable(b *strings.Builder, t *experiments.Table) {
	row := func(cells []string) {
		b.WriteString("| ")
		b.WriteString(strings.Join(cells, " | "))
		b.WriteString(" |\n")
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(b, "> %s\n", n)
	}
	b.WriteByte('\n')
}
