// tclbench is the benchmark baseline tool and regression gate.
//
// Emit (regenerate a committed baseline on a quiet host):
//
//	tclbench -emit kernel            # or sched, sim, all
//	tclbench -emit sim -force        # overwrite even with contended rows
//
// Gate (compare fresh measurements against the committed baselines; the
// `make bench-gate` target wired into `make check` and CI):
//
//	tclbench -compare                # all suites, exit 1 on >10% regression
//	tclbench -compare -suite kernel -threshold 0.05
//	tclbench -compare -ids fig8a     # only baseline rows matching a prefix
//
// Offline gate (compare two recorded runs without re-measuring — CI legs
// hand artifacts to each other this way, and the negative test injects a
// doctored run):
//
//	tclbench -compare -current /path/to/fresh/dir
//
// Promote (adopt baselines recorded elsewhere — typically CI artifacts from
// a genuinely multi-core runner — after validating they are clean: emitted
// at GOMAXPROCS > 1 on a host with at least that many cores, with no
// contended rows):
//
//	tclbench -promote /path/to/artifact/dir
//
// Contention profile (where do parallel sweeps wait?):
//
//	tclbench -contention             # fig8a at parallelism 1,2,4,8, top mutex stacks
//
// Comparison policy (internal/bench): allocs/op gates on every host — a
// zero-alloc baseline must stay zero — while ns/op gates only between
// non-contended runs at equal GOMAXPROCS. The sim suite measures steady
// state (one warmup iteration, then a GC-pinned window of at least
// -mintime) and its parallel rows carry alloc_parity — parallel allocs/op
// over serial — gated everywhere against the absolute 1.05 cap. Baseline
// rows missing from the current run fail the gate too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bittactical/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tclbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		emit       = fs.String("emit", "", "regenerate baselines: kernel, sched, sim, serve, or all")
		compare    = fs.Bool("compare", false, "measure and compare against committed baselines; exit 1 on regression")
		suite      = fs.String("suite", "", "restrict to one suite (kernel, sched, sim, serve)")
		threshold  = fs.Float64("threshold", 0.10, "fractional regression threshold")
		force      = fs.Bool("force", false, "overwrite a baseline even with contended measurements")
		ids        = fs.String("ids", "", "comma-separated ID prefixes; only matching baseline rows are compared")
		dir        = fs.String("dir", ".", "directory holding the committed BENCH_*.json baselines")
		current    = fs.String("current", "", "compare pre-recorded BENCH_*.json from this directory instead of measuring")
		promote    = fs.String("promote", "", "adopt validated multi-core baselines from this directory into -dir")
		minTime    = fs.Duration("mintime", 0, "minimum measured wall time per steady-state benchmark row (default 1s)")
		contention = fs.Bool("contention", false, "profile mutex contention: fig8a at parallelism 1,2,4,8 with full mutex profiling, top contended stacks to stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *emit == "" && !*compare && *promote == "" && !*contention {
		fmt.Fprintln(stderr, "tclbench: nothing to do; pass -emit <suite|all>, -compare, -promote <dir>, or -contention")
		fs.Usage()
		return 2
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stdout, format+"\n", a...) }
	runOpts := bench.RunOpts{MinTime: *minTime}

	if *contention {
		if err := bench.RunContention(logf, stdout); err != nil {
			fmt.Fprintf(stderr, "tclbench: contention: %v\n", err)
			return 2
		}
		return 0
	}

	if *promote != "" {
		return promoteBaselines(*promote, *dir, *suite, logf, stderr)
	}

	if *emit != "" {
		for _, s := range selectSuites(*emit) {
			if s == nil {
				fmt.Fprintf(stderr, "tclbench: unknown suite %q\n", *emit)
				return 2
			}
			logf("== emit %s ==", s.Name)
			f, err := s.Run(logf, runOpts)
			if err != nil {
				fmt.Fprintf(stderr, "tclbench: %s: %v\n", s.Name, err)
				return 2
			}
			path := filepath.Join(*dir, s.File)
			if err := bench.WriteBaseline(path, f, *force); err != nil {
				fmt.Fprintf(stderr, "tclbench: %v\n", err)
				return 2
			}
			logf("wrote %s (%d benchmarks)", path, len(f.Benchmarks))
		}
	}

	if !*compare {
		return 0
	}

	suites := selectSuites(*suite)
	if *suite != "" && suites[0] == nil {
		fmt.Fprintf(stderr, "tclbench: unknown suite %q\n", *suite)
		return 2
	}
	fail := false
	for _, s := range suites {
		baseline, err := bench.Load(filepath.Join(*dir, s.File))
		if err != nil {
			fmt.Fprintf(stderr, "tclbench: baseline %s: %v\n", s.File, err)
			return 2
		}
		filterIDs(baseline, *ids)
		if len(baseline.Benchmarks) == 0 {
			logf("== %s: no baseline rows match -ids %q, skipped ==", s.Name, *ids)
			continue
		}
		var cur *bench.File
		if *current != "" {
			cur, err = bench.Load(filepath.Join(*current, s.File))
		} else {
			logf("== measure %s ==", s.Name)
			cur, err = s.Run(logf, runOpts)
		}
		if err != nil {
			fmt.Fprintf(stderr, "tclbench: current %s: %v\n", s.Name, err)
			return 2
		}
		res := bench.Compare(baseline, cur, *threshold)
		// Wall time is noisy under co-located load; a real regression
		// reproduces, a noise spike does not. When a live measurement fails
		// on ns/op alone, measure once more and keep each record's best
		// time before concluding. Alloc regressions are deterministic and
		// never retried; offline (-current) runs are never re-measured.
		if *current == "" && res.Fail() && len(res.Missing) == 0 && nsOnly(res) {
			logf("== %s: ns/op over threshold, re-measuring to rule out noise ==", s.Name)
			again, err := s.Run(logf, runOpts)
			if err != nil {
				fmt.Fprintf(stderr, "tclbench: current %s: %v\n", s.Name, err)
				return 2
			}
			mergeBestNs(cur, again)
			res = bench.Compare(baseline, cur, *threshold)
		}
		for _, id := range res.SkippedNs {
			logf("%s: %s: ns/op not comparable (contended or GOMAXPROCS mismatch), allocs still gated", s.Name, id)
		}
		for _, id := range res.Missing {
			fmt.Fprintf(stderr, "FAIL %s: %s missing from current run\n", s.Name, id)
		}
		for _, r := range res.Regressions {
			if r.Metric == "alloc_parity" {
				fmt.Fprintf(stderr, "FAIL %s: %s exceeds the absolute cap %.2f\n", s.Name, r, bench.AllocParityCap)
			} else {
				fmt.Fprintf(stderr, "FAIL %s: %s exceeds threshold %.0f%%\n", s.Name, r, *threshold*100)
			}
		}
		if res.Fail() {
			fail = true
		} else {
			logf("== %s: OK (%d rows, %d ns-skipped) ==", s.Name, len(baseline.Benchmarks), len(res.SkippedNs))
		}
	}
	if fail {
		fmt.Fprintln(stderr, "tclbench: regression gate FAILED")
		return 1
	}
	logf("tclbench: regression gate passed")
	return 0
}

// selectSuites resolves a suite selector: "" or "all" means every suite;
// an unknown name yields [nil] for the caller to report.
func selectSuites(name string) []*bench.Suite {
	if name == "" || name == "all" {
		out := make([]*bench.Suite, len(bench.Suites))
		for i := range bench.Suites {
			out[i] = &bench.Suites[i]
		}
		return out
	}
	return []*bench.Suite{bench.SuiteByName(name)}
}

// promoteBaselines copies pre-recorded baselines from src into dst after
// validating each is a clean multi-core measurement: GOMAXPROCS > 1, at
// least as many physical cores as GOMAXPROCS, and no contended rows. This
// is how a single-core dev host adopts CI artifacts as the committed
// baselines without ever being able to fabricate them locally.
func promoteBaselines(src, dst, suite string, logf func(string, ...any), stderr io.Writer) int {
	suites := selectSuites(suite)
	if suite != "" && suites[0] == nil {
		fmt.Fprintf(stderr, "tclbench: unknown suite %q\n", suite)
		return 2
	}
	promoted := 0
	for _, s := range suites {
		path := filepath.Join(src, s.File)
		f, err := bench.Load(path)
		if err != nil {
			if os.IsNotExist(err) {
				logf("promote: %s absent in %s, skipped", s.File, src)
				continue
			}
			fmt.Fprintf(stderr, "tclbench: promote %s: %v\n", s.File, err)
			return 2
		}
		switch {
		case f.GoMaxProcs < 2:
			fmt.Fprintf(stderr, "tclbench: refusing to promote %s: recorded at GOMAXPROCS=%d, want a multi-core run\n", s.File, f.GoMaxProcs)
			return 1
		case f.NumCPU < f.GoMaxProcs:
			fmt.Fprintf(stderr, "tclbench: refusing to promote %s: GOMAXPROCS=%d exceeds the recording host's %d cores (time-sliced)\n", s.File, f.GoMaxProcs, f.NumCPU)
			return 1
		case f.Contended():
			fmt.Fprintf(stderr, "tclbench: refusing to promote %s: contains contended rows\n", s.File)
			return 1
		}
		if err := f.Write(filepath.Join(dst, s.File)); err != nil {
			fmt.Fprintf(stderr, "tclbench: promote %s: %v\n", s.File, err)
			return 2
		}
		logf("promoted %s (GOMAXPROCS=%d, %d cores, %d benchmarks)", s.File, f.GoMaxProcs, f.NumCPU, len(f.Benchmarks))
		promoted++
	}
	if promoted == 0 {
		fmt.Fprintf(stderr, "tclbench: nothing to promote in %s\n", src)
		return 1
	}
	return 0
}

// latencyMetric reports whether a regression metric is a wall-time one —
// noisy under co-located load, hence worth one re-measurement.
func latencyMetric(m string) bool { return m == "ns/op" || m == "p50" || m == "p99" }

// nsOnly reports whether every regression in res is a wall-time one.
func nsOnly(res bench.Result) bool {
	for _, r := range res.Regressions {
		if !latencyMetric(r.Metric) {
			return false
		}
	}
	return len(res.Regressions) > 0
}

// mergeBestNs folds a re-measurement into cur, keeping each record's
// fastest latency metrics (noise only ever adds time). Allocation counts
// and hit rates are left as first measured — they are deterministic, and
// quietly taking a best-of would mask a real regression that reproduced
// only once.
func mergeBestNs(cur, again *bench.File) {
	byID := make(map[string]bench.Record, len(again.Benchmarks))
	for _, r := range again.Benchmarks {
		byID[r.ID] = r
	}
	for i := range cur.Benchmarks {
		r, ok := byID[cur.Benchmarks[i].ID]
		if !ok {
			continue
		}
		c := &cur.Benchmarks[i]
		if r.NsPerOp > 0 && r.NsPerOp < c.NsPerOp {
			c.NsPerOp = r.NsPerOp
		}
		if r.P50Ns > 0 && r.P50Ns < c.P50Ns {
			c.P50Ns = r.P50Ns
		}
		if r.P99Ns > 0 && r.P99Ns < c.P99Ns {
			c.P99Ns = r.P99Ns
		}
	}
}

// filterIDs drops baseline rows not matching any of the comma-separated
// ID prefixes; an empty filter keeps everything.
func filterIDs(f *bench.File, ids string) {
	if ids == "" {
		return
	}
	var prefixes []string
	start := 0
	for i := 0; i <= len(ids); i++ {
		if i == len(ids) || ids[i] == ',' {
			if i > start {
				prefixes = append(prefixes, ids[start:i])
			}
			start = i + 1
		}
	}
	kept := f.Benchmarks[:0]
	for _, r := range f.Benchmarks {
		for _, p := range prefixes {
			if len(r.ID) >= len(p) && r.ID[:len(p)] == p {
				kept = append(kept, r)
				break
			}
		}
	}
	f.Benchmarks = kept
}
