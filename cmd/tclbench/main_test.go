package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"bittactical/internal/bench"
)

func writeFile(t *testing.T, dir, name string, recs ...bench.Record) {
	t.Helper()
	f := &bench.File{Schema: bench.Schema, GoMaxProcs: 1, NumCPU: 1, Benchmarks: recs}
	if err := f.Write(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

func r(id string, ns float64, allocs int64) bench.Record {
	return bench.Record{ID: id, GoMaxProcs: 1, NsPerOp: ns, AllocsPerOp: allocs, Iterations: 1}
}

// fixture lays out matching baseline and current directories covering all
// three suites, with the kernel suite carrying the interesting rows.
func fixture(t *testing.T, kernelBase, kernelCur bench.Record) (baseDir, curDir string) {
	t.Helper()
	baseDir, curDir = t.TempDir(), t.TempDir()
	for _, d := range []string{baseDir, curDir} {
		writeFile(t, d, "BENCH_sched.json", r("sched/L4<1,2>/algorithm1/kernel", 500, 0))
		writeFile(t, d, "BENCH_sim.json", r("fig8a/j1", 1e9, 50000))
	}
	writeFile(t, baseDir, "BENCH_kernel.json", kernelBase)
	writeFile(t, curDir, "BENCH_kernel.json", kernelCur)
	return baseDir, curDir
}

// TestGateFailsOnInjectedRegression is the end-to-end negative test the
// issue requires: a deliberately injected >10% regression must exit 1.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 120, 0)) // 20% slower
	var out, errOut bytes.Buffer
	code := run([]string{"-compare", "-dir", baseDir, "-current", curDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "kernel/lanes=16/swar") || !strings.Contains(errOut.String(), "ns/op") {
		t.Fatalf("failure not attributed: %s", errOut.String())
	}
}

// TestGatePassesWithinThreshold: the same layout inside threshold exits 0.
func TestGatePassesWithinThreshold(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 105, 0))
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, errOut.String())
	}
}

// TestGateIDFilter: -ids restricts which baseline rows gate, so a
// regression outside the filter is ignored and one inside still fails.
func TestGateIDFilter(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 200, 0))
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-dir", baseDir, "-current", curDir, "-ids", "fig8a,sched/"}, &out, &errOut); code != 0 {
		t.Fatalf("filtered-out regression still failed: %s", errOut.String())
	}
	if code := run([]string{"-compare", "-dir", baseDir, "-current", curDir, "-ids", "kernel/"}, &out, &errOut); code != 1 {
		t.Fatalf("filtered-in regression passed")
	}
}

// TestGateSuiteRestriction: -suite compares only that suite's file.
func TestGateSuiteRestriction(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 200, 0))
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-suite", "sim", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 0 {
		t.Fatalf("sim-only compare hit the kernel regression: %s", errOut.String())
	}
	if code := run([]string{"-compare", "-suite", "kernel", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 1 {
		t.Fatalf("kernel-only compare missed the regression")
	}
	if code := run([]string{"-compare", "-suite", "nope", "-dir", baseDir}, &out, &errOut); code != 2 {
		t.Fatalf("unknown suite not a usage error")
	}
}

// TestGateMissingRowFails: dropping a benchmark from the current run is a
// gate failure, not a silent pass.
func TestGateMissingRowFails(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=32/swar", 100, 0)) // different ID: 16-lane row missing
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-suite", "kernel", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 1 {
		t.Fatalf("missing baseline row passed the gate")
	}
	if !strings.Contains(errOut.String(), "missing") {
		t.Fatalf("missing row not reported: %s", errOut.String())
	}
}

// TestRetryMerge pins the noise-retry helpers: only all-ns failures
// qualify for a re-measure, and the merge keeps the fastest time per
// record while never touching allocation counts.
func TestRetryMerge(t *testing.T) {
	nsReg := bench.Result{Regressions: []bench.Regression{{ID: "a", Metric: "ns/op"}}}
	allocReg := bench.Result{Regressions: []bench.Regression{
		{ID: "a", Metric: "ns/op"}, {ID: "b", Metric: "allocs/op"},
	}}
	if !nsOnly(nsReg) || nsOnly(allocReg) || nsOnly(bench.Result{}) {
		t.Fatal("nsOnly misclassifies")
	}

	cur := &bench.File{Benchmarks: []bench.Record{r("a", 200, 10), r("b", 100, 10)}}
	again := &bench.File{Benchmarks: []bench.Record{
		{ID: "a", GoMaxProcs: 1, NsPerOp: 150, AllocsPerOp: 99},
		{ID: "b", GoMaxProcs: 1, NsPerOp: 300, AllocsPerOp: 10},
	}}
	mergeBestNs(cur, again)
	if cur.Benchmarks[0].NsPerOp != 150 || cur.Benchmarks[0].AllocsPerOp != 10 {
		t.Fatalf("record a after merge: %+v, want ns 150 / allocs 10", cur.Benchmarks[0])
	}
	if cur.Benchmarks[1].NsPerOp != 100 {
		t.Fatalf("record b took the slower re-measure: %+v", cur.Benchmarks[1])
	}
}

// TestUsageErrors: no action and unparseable flags are usage errors.
func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-op invocation exit %d, want 2", code)
	}
	if code := run([]string{"-threshold", "x"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
}
